// Extension ablation: online threshold adaptation. The paper keeps CCth and
// CDth "deterministic for simplicity" and notes their best values depend on
// congestion; this bench implements the deferred congestion-aware variant
// and compares static vs adaptive thresholds across load levels.
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "ablation_adaptive");
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: static vs adaptive confidence thresholds",
                      base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  const std::vector<double> loads = {1.0, 2.0, 3.0, 4.0};
  // Row per load level, (static, adaptive) cells inside; both variants of a
  // row share a seed so they see identical traffic.
  std::vector<sim::SweepCell> cells;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    workload::BenchmarkProfile profile = workload::profile_by_name("canneal");
    profile.mem_op_rate *= loads[l];
    for (const bool adaptive : {false, true}) {
      sim::SweepCell c{base, profile, opt};
      c.cfg.disco.adaptive_thresholds = adaptive;
      c.group = l;
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"load (x nominal)", "variant", "NUCA latency", "router ops",
                  "aborts (comp+decomp)", "abort rate"});
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const auto rs = bench::grid_row(sweep, l * 2, 2);
    if (rs.empty()) continue;
    for (std::size_t v = 0; v < 2; ++v) {
      const sim::CellResult& r = *rs[v];
      const std::uint64_t aborts =
          r.compression_aborts + r.decompression_aborts;
      const double ops = static_cast<double>(
          r.inflight_compressions + r.inflight_decompressions + aborts);
      t.add_row({TablePrinter::fmt(loads[l], 1),
                 v == 1 ? "adaptive" : "static",
                 TablePrinter::fmt(r.avg_nuca_latency, 2),
                 std::to_string(r.inflight_compressions +
                                r.inflight_decompressions),
                 std::to_string(r.compression_aborts) + "+" +
                     std::to_string(r.decompression_aborts),
                 ops > 0 ? TablePrinter::pct(static_cast<double>(aborts) / ops)
                         : "-"});
    }
  }
  t.print(std::cout);
  std::printf("\nreading: the adaptive controller raises thresholds when the "
              "abort rate shows hasty decisions and lowers them when engines "
              "starve, tracking the congestion level the paper says the best "
              "static setting depends on.\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
