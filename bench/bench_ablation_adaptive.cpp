// Extension ablation: online threshold adaptation. The paper keeps CCth and
// CDth "deterministic for simplicity" and notes their best values depend on
// congestion; this bench implements the deferred congestion-aware variant
// and compares static vs adaptive thresholds across load levels.
#include "bench_util.h"

using namespace disco;

int main() {
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: static vs adaptive confidence thresholds",
                      base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  TablePrinter t({"load (x nominal)", "variant", "NUCA latency", "router ops",
                  "aborts", "abort rate"});
  for (const double load : {1.0, 2.0, 3.0, 4.0}) {
    workload::BenchmarkProfile profile = workload::profile_by_name("canneal");
    profile.mem_op_rate *= load;

    for (const bool adaptive : {false, true}) {
      SystemConfig cfg = base;
      cfg.disco.adaptive_thresholds = adaptive;
      const auto r = sim::run_cell(cfg, profile, opt);
      const double ops = static_cast<double>(
          r.inflight_compressions + r.inflight_decompressions +
          r.compression_aborts);
      t.add_row({TablePrinter::fmt(load, 1), adaptive ? "adaptive" : "static",
                 TablePrinter::fmt(r.avg_nuca_latency, 2),
                 std::to_string(r.inflight_compressions +
                                r.inflight_decompressions),
                 std::to_string(r.compression_aborts),
                 ops > 0 ? TablePrinter::pct(r.compression_aborts / ops) : "-"});
    }
    std::printf("  load %.1fx done\n", load);
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nreading: the adaptive controller raises thresholds when the "
              "abort rate shows hasty decisions and lowers them when engines "
              "starve, tracking the congestion level the paper says the best "
              "static setting depends on.\n");
  return 0;
}
