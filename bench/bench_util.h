// Shared plumbing for the figure/table benches: standard run options, the
// Table-2 banner, and normalization helpers. Every bench prints through
// TablePrinter so outputs are uniform and diffable against EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "sim/experiment.h"
#include "workload/profile.h"

namespace disco::bench {

inline sim::RunOptions standard_options() {
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 24000;
  opt.warmup_cycles = 15000;
  opt.measure_cycles = 80000;
  return opt;
}

inline void print_banner(const char* title, const SystemConfig& cfg) {
  std::printf("=== %s ===\n", title);
  std::printf("system: %s\n", cfg.summary().c_str());
  std::printf("router: %u-stage pipeline, wormhole, %u-flit VCs | L1 32KB/4-way"
              " | L2 %u-way NUCA, 4-cycle hit | DRAM %u cycles\n\n",
              cfg.noc.router_pipeline_stages, cfg.noc.vc_depth_flits,
              cfg.l2.ways, cfg.mem.access_latency);
}

/// Shorthand for the 13 PARSEC-like workloads.
inline const std::vector<workload::BenchmarkProfile>& workloads() {
  return workload::parsec_profiles();
}

}  // namespace disco::bench
