// Shared plumbing for the figure/table benches: standard run options, the
// Table-2 banner, sweep-cell grid builders and normalization helpers. Every
// bench prints through TablePrinter so outputs are uniform and diffable
// against EXPERIMENTS.md, and every bench runs its cells through the
// parallel sweep engine (--threads N, --shard i/k; see sim/sweep.h).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/interrupt.h"
#include "common/table.h"
#include "compress/registry.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "workload/profile.h"

namespace disco::bench {

inline sim::RunOptions standard_options() {
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 24000;
  opt.warmup_cycles = 15000;
  opt.measure_cycles = 80000;
  return opt;
}

/// Parse the standard sweep flags; benches take no other arguments, so any
/// positional argument is an error. Also installs the SIGINT/SIGTERM
/// handlers so an interrupted bench flushes partial results + checkpoint
/// manifest and exits with code 130 instead of dying mid-write.
inline sim::SweepOptions sweep_options(int argc, char** argv,
                                       const char* label) {
  std::vector<std::string> positional;
  sim::SweepOptions opt = sim::parse_sweep_flags(argc, argv, positional);
  if (!positional.empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s' (try --help)\n",
                 argv[0], positional.front().c_str());
    std::exit(2);
  }
  opt.progress_label = label;
  sim::install_interrupt_handlers();
  return opt;
}

/// Standard bench exit code: 0 all ok, 130 interrupted (partial results were
/// still flushed), 1 any cell failed/crashed/timed out.
inline int exit_code(const sim::SweepResult& r) {
  if (r.interrupted) return 130;
  return r.failed == 0 ? 0 : 1;
}

/// Exit code for run_indexed-based benches, which have no SweepResult: 130
/// when a SIGINT/SIGTERM cut the run short, else 0.
inline int exit_code_indexed() { return interrupt_requested() ? 130 : 0; }

/// Copy the sweep's --fault-* knobs into a cell config. No-op (and
/// byte-identical outputs) when no fault flag was given.
inline void configure_faults(SystemConfig& cfg, const sim::SweepOptions& opt) {
  cfg.fault = opt.fault;
}

/// Validate a user-supplied algorithm name up front, turning the registry's
/// std::invalid_argument (which lists the valid names) into a clean usage
/// error instead of an uncaught exception or a per-cell sweep failure.
inline void check_algorithm_or_exit(const char* prog, const std::string& name) {
  try {
    (void)compress::make_algorithm(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", prog, e.what());
    std::exit(2);
  }
}

inline void print_banner(const char* title, const SystemConfig& cfg) {
  std::printf("=== %s ===\n", title);
  std::printf("system: %s\n", cfg.summary().c_str());
  std::printf("router: %u-stage pipeline, wormhole, %u-flit VCs | L1 32KB/4-way"
              " | L2 %u-way NUCA, 4-cycle hit | DRAM %u cycles\n\n",
              cfg.noc.router_pipeline_stages, cfg.noc.vc_depth_flits,
              cfg.l2.ways, cfg.mem.access_latency);
}

/// Shorthand for the 13 PARSEC-like workloads.
inline const std::vector<workload::BenchmarkProfile>& workloads() {
  return workload::parsec_profiles();
}

/// (workload x scheme) cell grid in row-major order. Each workload is one
/// sweep group, so its schemes share a seed (identical traffic — required
/// for per-row normalization) and are never split across shards.
inline std::vector<sim::SweepCell> scheme_grid(
    const SystemConfig& base,
    const std::vector<workload::BenchmarkProfile>& profiles,
    const std::vector<Scheme>& schemes, const sim::RunOptions& opt) {
  std::vector<sim::SweepCell> cells;
  cells.reserve(profiles.size() * schemes.size());
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (const Scheme s : schemes) {
      sim::SweepCell c{base, profiles[w], opt};
      c.cfg.scheme = s;
      c.group = w;
      cells.push_back(std::move(c));
    }
  }
  return cells;
}

/// The `count` results of a grid row starting at cell `first`, or an empty
/// vector when any of them failed or fell outside this shard (the bench
/// then skips that row instead of printing a half-normalized one).
inline std::vector<const sim::CellResult*> grid_row(const sim::SweepResult& r,
                                                    std::size_t first,
                                                    std::size_t count) {
  std::vector<const sim::CellResult*> row;
  row.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const sim::CellResult* cell = r.ok(first + i);
    if (!cell) return {};
    row.push_back(cell);
  }
  return row;
}

/// Footer every bench prints: failed/skipped accounting for sharded runs,
/// plus the invariant-checker verdict when --check-invariants was given.
inline void print_sweep_summary(const sim::SweepResult& r) {
  std::printf("\nsweep: %zu cells ok, %zu failed (%zu crashed), %zu skipped "
              "(other shards), %.1fs wall\n",
              r.completed, r.failed, r.crashed, r.skipped, r.wall_ms / 1000.0);
  if (r.interrupted)
    std::printf("sweep: INTERRUPTED — partial results above; rerun with "
                "--resume <dir>/manifest.jsonl to finish\n");
  std::size_t checked = 0, dirty = 0;
  std::uint64_t events = 0, violations = 0;
  std::string first;
  for (const auto& c : r.cells) {
    if (!c.ok() || !c.result.invariants.enabled) continue;
    ++checked;
    events += c.result.invariants.events_checked;
    violations += c.result.invariants.violations;
    if (!c.result.invariants.clean()) {
      ++dirty;
      if (first.empty()) first = c.result.invariants.first_violation;
    }
  }
  if (checked > 0) {
    std::printf("invariants: %zu cells checked, %llu events, %llu violations"
                " in %zu cells\n",
                checked, static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(violations), dirty);
    if (!first.empty())
      std::printf("invariants: first violation: %s\n", first.c_str());
  }
}

}  // namespace disco::bench
