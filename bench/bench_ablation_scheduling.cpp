// Section 3.3B ablation: the packet-scheduling rule that gives
// compressible-but-uncompressed packets the lowest priority so they idle
// (and get compressed) more often. On/off comparison across workloads.
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "ablation_scheduling");
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: low priority for compressible packets (3.3B)",
                      base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  const std::vector<std::string> names = {"canneal", "dedup", "streamcluster",
                                          "x264", "swaptions", "vips"};
  // Row per workload with (rule on, rule off) cells sharing a seed.
  std::vector<sim::SweepCell> cells;
  for (std::size_t w = 0; w < names.size(); ++w) {
    // The rule only matters under contention: stress the workload to 3x its
    // nominal intensity so packets actually compete for ports.
    workload::BenchmarkProfile profile = workload::profile_by_name(names[w]);
    profile.mem_op_rate *= 3.0;
    for (const bool rule_on : {true, false}) {
      sim::SweepCell c{base, profile, opt};
      c.cfg.noc.deprioritize_compressible = rule_on;
      c.group = w;
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"Workload", "NUCA lat (rule on)", "NUCA lat (rule off)",
                  "router comp on", "router comp off", "delta"});
  for (std::size_t w = 0; w < names.size(); ++w) {
    const auto rs = bench::grid_row(sweep, w * 2, 2);
    if (rs.empty()) continue;
    const sim::CellResult& r_on = *rs[0];
    const sim::CellResult& r_off = *rs[1];
    t.add_row({names[w], TablePrinter::fmt(r_on.avg_nuca_latency, 2),
               TablePrinter::fmt(r_off.avg_nuca_latency, 2),
               std::to_string(r_on.inflight_compressions),
               std::to_string(r_off.inflight_compressions),
               TablePrinter::pct((r_off.avg_nuca_latency - r_on.avg_nuca_latency) /
                                 r_off.avg_nuca_latency)});
  }
  t.print(std::cout);
  std::printf("\nreading: the rule trades a little raw-packet progress for "
              "more compression opportunities; it pays off when traffic is "
              "heavy enough that compression actually fires.\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
