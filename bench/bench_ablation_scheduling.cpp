// Section 3.3B ablation: the packet-scheduling rule that gives
// compressible-but-uncompressed packets the lowest priority so they idle
// (and get compressed) more often. On/off comparison across workloads.
#include "bench_util.h"

using namespace disco;

int main() {
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: low priority for compressible packets (3.3B)",
                      base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  TablePrinter t({"Workload", "NUCA lat (rule on)", "NUCA lat (rule off)",
                  "router comp on", "router comp off", "delta"});
  for (const auto& name :
       {"canneal", "dedup", "streamcluster", "x264", "swaptions", "vips"}) {
    // The rule only matters under contention: stress the workload to 3x its
    // nominal intensity so packets actually compete for ports.
    workload::BenchmarkProfile profile = workload::profile_by_name(name);
    profile.mem_op_rate *= 3.0;
    SystemConfig on = base;
    on.noc.deprioritize_compressible = true;
    SystemConfig off = base;
    off.noc.deprioritize_compressible = false;
    const auto r_on = sim::run_cell(on, profile, opt);
    const auto r_off = sim::run_cell(off, profile, opt);
    t.add_row({name, TablePrinter::fmt(r_on.avg_nuca_latency, 2),
               TablePrinter::fmt(r_off.avg_nuca_latency, 2),
               std::to_string(r_on.inflight_compressions),
               std::to_string(r_off.inflight_compressions),
               TablePrinter::pct((r_off.avg_nuca_latency - r_on.avg_nuca_latency) /
                                 r_off.avg_nuca_latency)});
    std::printf("  %-14s done\n", name);
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nreading: the rule trades a little raw-packet progress for "
              "more compression opportunities; it pays off when traffic is "
              "heavy enough that compression actually fires.\n");
  return 0;
}
