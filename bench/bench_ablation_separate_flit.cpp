// Section 3.3A ablation: separate-flit compression under wormhole flow
// control (the mode DISCO adopts) vs whole-packet-only compression. The
// separate mode starts compressing with the first flit group instead of
// waiting for full residency, at a small encoding-size penalty for the
// group-concatenation tags.
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt =
      bench::sweep_options(argc, argv, "ablation_separate_flit");
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: separate-flit compression (3.3A)", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  const std::vector<std::string> names = {"canneal", "dedup", "streamcluster",
                                          "x264"};
  std::vector<sim::SweepCell> cells;
  for (std::size_t w = 0; w < names.size(); ++w) {
    // In-router compression needs contention: stress to 3x nominal rate.
    workload::BenchmarkProfile profile = workload::profile_by_name(names[w]);
    profile.mem_op_rate *= 3.0;
    for (const bool separate : {true, false}) {
      sim::SweepCell c{base, profile, opt};
      c.cfg.disco.separate_flit_compression = separate;
      c.group = w;
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"Workload", "NUCA lat (separate)", "NUCA lat (whole-pkt)",
                  "router comp sep", "router comp whole", "aborts sep",
                  "aborts whole"});
  for (std::size_t w = 0; w < names.size(); ++w) {
    const auto rs = bench::grid_row(sweep, w * 2, 2);
    if (rs.empty()) continue;
    const sim::CellResult& r_sep = *rs[0];
    const sim::CellResult& r_whole = *rs[1];
    t.add_row({names[w], TablePrinter::fmt(r_sep.avg_nuca_latency, 2),
               TablePrinter::fmt(r_whole.avg_nuca_latency, 2),
               std::to_string(r_sep.inflight_compressions),
               std::to_string(r_whole.inflight_compressions),
               std::to_string(r_sep.compression_aborts +
                              r_sep.decompression_aborts),
               std::to_string(r_whole.compression_aborts +
                              r_whole.decompression_aborts)});
  }
  t.print(std::cout);
  std::printf("\nreading: whole-packet compression requires the full packet "
              "resident in one VC (rare for streaming 8-flit packets); the "
              "separate mode starts earlier and completes more operations "
              "(paper: 'which is adopted in DISCO').\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
