// Section 3.3A ablation: separate-flit compression under wormhole flow
// control (the mode DISCO adopts) vs whole-packet-only compression. The
// separate mode starts compressing with the first flit group instead of
// waiting for full residency, at a small encoding-size penalty for the
// group-concatenation tags.
#include "bench_util.h"

using namespace disco;

int main() {
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: separate-flit compression (3.3A)", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;

  TablePrinter t({"Workload", "NUCA lat (separate)", "NUCA lat (whole-pkt)",
                  "router comp sep", "router comp whole", "aborts sep",
                  "aborts whole"});
  for (const auto& name : {"canneal", "dedup", "streamcluster", "x264"}) {
    // In-router compression needs contention: stress to 3x nominal rate.
    workload::BenchmarkProfile profile = workload::profile_by_name(name);
    profile.mem_op_rate *= 3.0;
    SystemConfig sep = base;
    sep.disco.separate_flit_compression = true;
    SystemConfig whole = base;
    whole.disco.separate_flit_compression = false;
    const auto r_sep = sim::run_cell(sep, profile, opt);
    const auto r_whole = sim::run_cell(whole, profile, opt);
    t.add_row({name, TablePrinter::fmt(r_sep.avg_nuca_latency, 2),
               TablePrinter::fmt(r_whole.avg_nuca_latency, 2),
               std::to_string(r_sep.inflight_compressions),
               std::to_string(r_whole.inflight_compressions),
               std::to_string(r_sep.compression_aborts),
               std::to_string(r_whole.compression_aborts)});
    std::printf("  %-14s done\n", name);
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nreading: whole-packet compression requires the full packet "
              "resident in one VC (rare for streaming 8-flit packets); the "
              "separate mode starts earlier and completes more operations "
              "(paper: 'which is adopted in DISCO').\n");
  return 0;
}
