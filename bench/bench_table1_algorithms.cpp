// Table 1 reproduction: per-algorithm compression/decompression latency,
// hardware overhead, and measured compression ratio over the full PARSEC
// value corpus (all 13 workloads' value mixes, uniformly sampled).
//
// Paper values for reference: FPC -/5cy 8% 1.5 | SFPC -/4cy 8% 1.33 |
// BDI 1/1-5cy 2.3% 1.57 | SC2 6/8-14cy 1.5-3.9% 2.4 | C-Pack -/8cy - -.
#include "bench_util.h"
#include "compress/registry.h"
#include "compress/sc2.h"
#include "workload/value_synth.h"

using namespace disco;

int main() {
  SystemConfig cfg;
  bench::print_banner("Table 1: compression scheme parameters", cfg);

  // Corpus: blocks drawn from every workload's value population.
  std::vector<BlockBytes> corpus;
  for (const auto& profile : bench::workloads()) {
    workload::ValueSynthesizer synth(profile.values, 7);
    for (Addr a = 0; a < 400 * kBlockBytes; a += kBlockBytes)
      corpus.push_back(synth.block_for(a));
  }

  TablePrinter t({"Method", "Comp. Lat.", "Decomp. Lat.", "HW Overhead",
                  "Comp. Ratio (measured)", "Compressible blocks"});
  for (const auto& name : compress::algorithm_names()) {
    auto algo = compress::make_algorithm(name);
    if (auto* sc2 = dynamic_cast<compress::Sc2Algorithm*>(algo.get())) {
      sc2->retrain(std::span<const BlockBytes>(corpus.data(), corpus.size() / 2));
    }
    double bytes = 0;
    std::size_t compressible = 0;
    for (const BlockBytes& b : corpus) {
      const auto enc = algo->compress(b);
      bytes += static_cast<double>(enc.size());
      compressible += enc.size() < kBlockBytes ? 1 : 0;
    }
    const double ratio = static_cast<double>(kBlockBytes) *
                         static_cast<double>(corpus.size()) / bytes;
    const auto lat = algo->latency();
    t.add_row({std::string(algo->name()),
               std::to_string(lat.comp_cycles) + " cycles",
               std::to_string(lat.decomp_cycles) + " cycles",
               TablePrinter::pct(algo->hardware_overhead()),
               TablePrinter::fmt(ratio, 2),
               TablePrinter::pct(static_cast<double>(compressible) /
                                 static_cast<double>(corpus.size()))});
  }
  t.print(std::cout);
  std::printf("\ncorpus: %zu blocks across 13 PARSEC-like value mixes\n",
              corpus.size());
  return 0;
}
