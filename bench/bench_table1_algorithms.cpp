// Table 1 reproduction: per-algorithm compression/decompression latency,
// hardware overhead, and measured compression ratio over the full PARSEC
// value corpus (all 13 workloads' value mixes, uniformly sampled).
//
// Paper values for reference: FPC -/5cy 8% 1.5 | SFPC -/4cy 8% 1.33 |
// BDI 1/1-5cy 2.3% 1.57 | SC2 6/8-14cy 1.5-3.9% 2.4 | C-Pack -/8cy - -.
#include "bench_util.h"
#include "compress/registry.h"
#include "compress/sc2.h"
#include "workload/value_synth.h"

using namespace disco;

int main(int argc, char** argv) {
  auto sweep_opt = bench::sweep_options(argc, argv, "table1");
  SystemConfig cfg;
  bench::print_banner("Table 1: compression scheme parameters", cfg);

  // Corpus: blocks drawn from every workload's value population, the
  // per-workload slices synthesized in parallel (pure function of address
  // and seed, so the corpus is identical at any thread count).
  const auto& profiles = bench::workloads();
  constexpr std::size_t kBlocksPerWorkload = 400;
  std::vector<BlockBytes> corpus(profiles.size() * kBlocksPerWorkload);
  sim::run_indexed(
      profiles.size(),
      [&](std::size_t w) {
        workload::ValueSynthesizer synth(profiles[w].values, 7);
        for (std::size_t b = 0; b < kBlocksPerWorkload; ++b)
          corpus[w * kBlocksPerWorkload + b] =
              synth.block_for(static_cast<Addr>(b) * kBlockBytes);
      },
      sweep_opt);

  // One task per algorithm: compress the whole corpus, record the row.
  const auto names = compress::algorithm_names();
  struct Row {
    std::string method, comp, decomp, overhead, ratio, compressible;
  };
  std::vector<Row> rows(names.size());
  sim::run_indexed(
      names.size(),
      [&](std::size_t i) {
        auto algo = compress::make_algorithm(names[i]);
        if (auto* sc2 = dynamic_cast<compress::Sc2Algorithm*>(algo.get())) {
          sc2->retrain(
              std::span<const BlockBytes>(corpus.data(), corpus.size() / 2));
        }
        double bytes = 0;
        std::size_t compressible = 0;
        for (const BlockBytes& b : corpus) {
          const auto enc = algo->compress(b);
          bytes += static_cast<double>(enc.size());
          compressible += enc.size() < kBlockBytes ? 1 : 0;
        }
        const double ratio = static_cast<double>(kBlockBytes) *
                             static_cast<double>(corpus.size()) / bytes;
        const auto lat = algo->latency();
        rows[i] = {std::string(algo->name()),
                   std::to_string(lat.comp_cycles) + " cycles",
                   std::to_string(lat.decomp_cycles) + " cycles",
                   TablePrinter::pct(algo->hardware_overhead()),
                   TablePrinter::fmt(ratio, 2),
                   TablePrinter::pct(static_cast<double>(compressible) /
                                     static_cast<double>(corpus.size()))};
      },
      sweep_opt);

  TablePrinter t({"Method", "Comp. Lat.", "Decomp. Lat.", "HW Overhead",
                  "Comp. Ratio (measured)", "Compressible blocks"});
  for (const Row& r : rows)
    t.add_row({r.method, r.comp, r.decomp, r.overhead, r.ratio, r.compressible});
  t.print(std::cout);
  std::printf("\ncorpus: %zu blocks across 13 PARSEC-like value mixes\n",
              corpus.size());
  return bench::exit_code_indexed();
}
