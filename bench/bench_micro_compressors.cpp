// Microbenchmarks (google-benchmark): software throughput of each
// compression algorithm's encode/decode over the PARSEC-like value corpus.
// These measure the simulator's algorithm implementations (host-side cost),
// complementing the modeled hardware latencies of Table 1.
#include <benchmark/benchmark.h>

#include "compress/registry.h"
#include "workload/value_synth.h"

using namespace disco;

namespace {

std::vector<BlockBytes> corpus() {
  static const std::vector<BlockBytes> blocks = [] {
    workload::ValueMix mix{0.2, 0.25, 0.2, 0.15, 0.1, 0.1};
    workload::ValueSynthesizer synth(mix, 99);
    std::vector<BlockBytes> out;
    for (Addr a = 0; a < 512 * kBlockBytes; a += kBlockBytes)
      out.push_back(synth.block_for(a));
    return out;
  }();
  return blocks;
}

void BM_Compress(benchmark::State& state, const std::string& name) {
  auto algo = compress::make_algorithm(name);
  const auto blocks = corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo->compress(blocks[i++ % blocks.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}

void BM_Decompress(benchmark::State& state, const std::string& name) {
  auto algo = compress::make_algorithm(name);
  const auto blocks = corpus();
  std::vector<compress::Encoded> encoded;
  encoded.reserve(blocks.size());
  for (const auto& b : blocks) encoded.push_back(algo->compress(b));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& e = encoded[i++ % encoded.size()];
    benchmark::DoNotOptimize(
        algo->decompress(std::span<const std::uint8_t>(e.bytes)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBlockBytes));
}

void BM_RoundTrip(benchmark::State& state, const std::string& name) {
  auto algo = compress::make_algorithm(name);
  const auto blocks = corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto e = algo->compress(blocks[i++ % blocks.size()]);
    benchmark::DoNotOptimize(
        algo->decompress(std::span<const std::uint8_t>(e.bytes)));
  }
}

const int kRegistered = [] {
  for (const auto& name : compress::algorithm_names()) {
    benchmark::RegisterBenchmark(("compress/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Compress(s, name); });
    benchmark::RegisterBenchmark(("decompress/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_Decompress(s, name); });
    benchmark::RegisterBenchmark(("roundtrip/" + name).c_str(),
                                 [name](benchmark::State& s) { BM_RoundTrip(s, name); });
  }
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
