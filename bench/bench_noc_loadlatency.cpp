// Booksim-style network-only load-latency curves (the paper used Booksim
// for cycle-accurate NoC modeling): synthetic uniform-random data traffic
// swept over injection rates, for wormhole vs virtual cut-through and with
// vs without DISCO routers. Shows the saturation point and where the
// in-network compressor buys headroom.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "noc/network.h"
#include "trace/invariants.h"
#include "trace/trace.h"
#include "workload/synthetic.h"

using namespace disco;

namespace {

class CountingSink final : public noc::PacketSink {
 public:
  void deliver(noc::PacketPtr pkt, Cycle now) override {
    ++delivered;
    total_latency += static_cast<double>(now - pkt->injected);
  }
  std::uint64_t delivered = 0;
  double total_latency = 0;
};

double run_point(FlowControl fc, bool with_disco, double rate,
                 const TraceConfig& tc, trace::InvariantSummary* inv_out) {
  NocConfig cfg;
  cfg.flow_control = fc;
  noc::NocStats stats;
  auto algo = compress::make_algorithm("delta");
  DiscoConfig dcfg;

  noc::NiPolicy policy;
  policy.algo = algo.get();
  policy.decompress_for_raw_consumers = true;
  policy.decomp_cycles = algo->latency().decomp_cycles;
  if (with_disco) {
    policy.compress_when_source_queued = true;
    policy.comp_cycles = algo->latency().comp_cycles;
  }

  noc::Network::ExtensionFactory factory;
  if (with_disco) {
    factory = [&](noc::Router& r) {
      return std::make_unique<core::DiscoUnit>(r, dcfg, *algo, algo->latency(),
                                               stats);
    };
  }
  noc::Network net(cfg, policy, stats, factory);
  std::vector<CountingSink> sinks(cfg.num_nodes());
  for (NodeId n = 0; n < cfg.num_nodes(); ++n)
    net.register_sink(n, UnitKind::Core, &sinks[n]);

  // Network-only runs bypass CmpSystem, so the trace layer is wired here.
  std::unique_ptr<trace::Tracer> tracer;
  std::unique_ptr<trace::InvariantChecker> checker;
  if (tc.active()) {
    tracer = std::make_unique<trace::Tracer>(tc);
    if (tc.check_invariants) {
      trace::InvariantParams p;
      p.nodes = cfg.num_nodes();
      p.ports = noc::kNumPorts;
      p.local_port = static_cast<std::uint32_t>(noc::Port::Local);
      p.num_vcs = cfg.num_vcs();
      p.vc_depth = cfg.vc_depth_flits;
      p.max_hops = (cfg.mesh_cols - 1) + (cfg.mesh_rows - 1);
      p.block_flits = 1 + static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
      p.gamma = dcfg.gamma;
      p.alpha = dcfg.alpha;
      p.beta = dcfg.beta;
      checker = std::make_unique<trace::InvariantChecker>(p);
      tracer->set_checker(checker.get());
    }
    net.set_tracer(tracer.get());
  }

  Rng rng(77);
  workload::TrafficChooser chooser(workload::TrafficPattern::UniformRandom, 4, 3);
  std::uint64_t id = 1;
  Cycle clock = 0;
  for (; clock < 20000; ++clock) {
    for (NodeId src = 0; src < cfg.num_nodes(); ++src) {
      if (!rng.chance(rate)) continue;
      net.inject(src,
                 workload::make_synthetic_packet(src, chooser.pick(src), id++,
                                                 clock, 0.8, rng),
                 clock);
    }
    net.tick(clock);
    if (checker) checker->end_of_cycle(clock, net.inflight_flits());
  }
  for (Cycle i = 0; i < 100000 && !net.quiescent(); ++i) {
    net.tick(++clock);
    if (checker) checker->end_of_cycle(clock, net.inflight_flits());
  }
  if (checker && inv_out != nullptr) *inv_out = checker->summary();

  double total = 0;
  std::uint64_t n = 0;
  for (const auto& s : sinks) {
    total += s.total_latency;
    n += s.delivered;
  }
  return n ? total / static_cast<double>(n) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "noc_loadlatency");
  SystemConfig cfg;
  bench::print_banner("NoC load-latency curves (network-only, uniform random)",
                      cfg);

  // Every (rate x variant) point is an independent network simulation; run
  // the whole grid on the pool via the generic parallel map.
  const std::vector<double> rates = {0.005, 0.01, 0.02, 0.04, 0.06, 0.08};
  struct Variant {
    FlowControl fc;
    bool disco;
  };
  const std::vector<Variant> variants = {
      {FlowControl::Wormhole, false},
      {FlowControl::Wormhole, true},
      {FlowControl::VirtualCutThrough, false},
      {FlowControl::VirtualCutThrough, true},
  };
  std::vector<double> lat(rates.size() * variants.size(), -1.0);
  std::vector<trace::InvariantSummary> inv(lat.size());
  sim::run_indexed(
      lat.size(),
      [&](std::size_t i) {
        const Variant& v = variants[i % variants.size()];
        lat[i] = run_point(v.fc, v.disco, rates[i / variants.size()],
                           sweep_opt.trace, &inv[i]);
      },
      sweep_opt);

  TablePrinter t({"inject rate", "wormhole", "wormhole+DISCO", "VCT",
                  "VCT+DISCO"});
  for (std::size_t r = 0; r < rates.size(); ++r) {
    const double* row = &lat[r * variants.size()];
    t.add_row({TablePrinter::fmt(rates[r], 3), TablePrinter::fmt(row[0], 1),
               TablePrinter::fmt(row[1], 1), TablePrinter::fmt(row[2], 1),
               TablePrinter::fmt(row[3], 1)});
  }
  t.print(std::cout);
  std::printf("\nreading: DISCO's compression postpones saturation (its curve "
              "bends later); VCT trades a slightly earlier knee for whole-"
              "packet residency at every hop.\n");
  if (sweep_opt.trace.check_invariants) {
    std::uint64_t events = 0, violations = 0;
    std::string first;
    for (const auto& s : inv) {
      events += s.events_checked;
      violations += s.violations;
      if (!s.clean() && first.empty()) first = s.first_violation;
    }
    std::printf("invariants: %zu points checked, %llu events, %llu "
                "violations\n",
                inv.size(), static_cast<unsigned long long>(events),
                static_cast<unsigned long long>(violations));
    if (!first.empty())
      std::printf("invariants: first violation: %s\n", first.c_str());
    if (violations > 0) return 1;
  }
  return bench::exit_code_indexed();
}
