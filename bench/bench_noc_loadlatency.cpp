// Booksim-style network-only load-latency curves (the paper used Booksim
// for cycle-accurate NoC modeling): synthetic uniform-random data traffic
// swept over injection rates, for wormhole vs virtual cut-through and with
// vs without DISCO routers. Shows the saturation point and where the
// in-network compressor buys headroom.
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "noc/network.h"
#include "workload/synthetic.h"

using namespace disco;

namespace {

class CountingSink final : public noc::PacketSink {
 public:
  void deliver(noc::PacketPtr pkt, Cycle now) override {
    ++delivered;
    total_latency += static_cast<double>(now - pkt->injected);
  }
  std::uint64_t delivered = 0;
  double total_latency = 0;
};

double run_point(FlowControl fc, bool with_disco, double rate) {
  NocConfig cfg;
  cfg.flow_control = fc;
  noc::NocStats stats;
  auto algo = compress::make_algorithm("delta");
  DiscoConfig dcfg;

  noc::NiPolicy policy;
  policy.algo = algo.get();
  policy.decompress_for_raw_consumers = true;
  policy.decomp_cycles = algo->latency().decomp_cycles;
  if (with_disco) {
    policy.compress_when_source_queued = true;
    policy.comp_cycles = algo->latency().comp_cycles;
  }

  noc::Network::ExtensionFactory factory;
  if (with_disco) {
    factory = [&](noc::Router& r) {
      return std::make_unique<core::DiscoUnit>(r, dcfg, *algo, algo->latency(),
                                               stats);
    };
  }
  noc::Network net(cfg, policy, stats, factory);
  std::vector<CountingSink> sinks(cfg.num_nodes());
  for (NodeId n = 0; n < cfg.num_nodes(); ++n)
    net.register_sink(n, UnitKind::Core, &sinks[n]);

  Rng rng(77);
  workload::TrafficChooser chooser(workload::TrafficPattern::UniformRandom, 4, 3);
  std::uint64_t id = 1;
  Cycle clock = 0;
  for (; clock < 20000; ++clock) {
    for (NodeId src = 0; src < cfg.num_nodes(); ++src) {
      if (!rng.chance(rate)) continue;
      net.inject(src,
                 workload::make_synthetic_packet(src, chooser.pick(src), id++,
                                                 clock, 0.8, rng),
                 clock);
    }
    net.tick(clock);
  }
  for (Cycle i = 0; i < 100000 && !net.quiescent(); ++i) net.tick(++clock);

  double total = 0;
  std::uint64_t n = 0;
  for (const auto& s : sinks) {
    total += s.total_latency;
    n += s.delivered;
  }
  return n ? total / static_cast<double>(n) : -1.0;
}

}  // namespace

int main() {
  SystemConfig cfg;
  bench::print_banner("NoC load-latency curves (network-only, uniform random)",
                      cfg);

  TablePrinter t({"inject rate", "wormhole", "wormhole+DISCO", "VCT",
                  "VCT+DISCO"});
  for (const double rate : {0.005, 0.01, 0.02, 0.04, 0.06, 0.08}) {
    t.add_row({TablePrinter::fmt(rate, 3),
               TablePrinter::fmt(run_point(FlowControl::Wormhole, false, rate), 1),
               TablePrinter::fmt(run_point(FlowControl::Wormhole, true, rate), 1),
               TablePrinter::fmt(run_point(FlowControl::VirtualCutThrough, false, rate), 1),
               TablePrinter::fmt(run_point(FlowControl::VirtualCutThrough, true, rate), 1)});
    std::printf("  rate %.3f done\n", rate);
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nreading: DISCO's compression postpones saturation (its curve "
              "bends later); VCT trades a slightly earlier knee for whole-"
              "packet residency at every hop.\n");
  return 0;
}
