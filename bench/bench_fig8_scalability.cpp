// Figure 8 reproduction: scalability of DISCO with CMP size — normalized
// NUCA access latency of DISCO vs CC on 2x2 (4 banks), 4x4 (16 banks) and
// 8x8 (64 banks) meshes. Paper claim: the DISCO-over-CC gain grows from
// insignificant at 4 banks to ~22% at 64 banks (deeper networks expose
// more queuing to hide and more hops to keep compressed).
#include "bench_util.h"

using namespace disco;

int main() {
  SystemConfig base;
  base.algorithm = "delta";
  bench::print_banner("Figure 8: scalability with CMP size", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;
  // A representative subset keeps the 64-router runs affordable.
  const std::vector<std::string> names = {"canneal", "dedup", "streamcluster",
                                          "x264"};
  const std::vector<std::uint32_t> sides = {2, 4, 8};

  TablePrinter t({"Mesh", "Banks", "CC/Ideal", "DISCO/Ideal",
                  "DISCO gain over CC"});
  for (const std::uint32_t side : sides) {
    SystemConfig cfg = base;
    cfg.noc.mesh_cols = side;
    cfg.noc.mesh_rows = side;
    // The NUCA scales with the tile count (256KB per bank, as in 4MB/16).
    cfg.l2.total_size_bytes = 256ULL * 1024 * side * side;
    cfg.mem.num_controllers = side >= 8 ? 4 : 1;

    std::vector<double> cc_n, disco_n;
    for (const auto& name : names) {
      const auto& profile = workload::profile_by_name(name);
      const auto rs = sim::run_schemes(
          cfg, profile, {Scheme::Ideal, Scheme::CC, Scheme::DISCO}, opt);
      cc_n.push_back(rs[1].avg_nuca_latency / rs[0].avg_nuca_latency);
      disco_n.push_back(rs[2].avg_nuca_latency / rs[0].avg_nuca_latency);
      std::printf("  %ux%u %-14s done\n", side, side, name.c_str());
    }
    const double cc_g = sim::geomean(cc_n);
    const double disco_g = sim::geomean(disco_n);
    t.add_row({std::to_string(side) + "x" + std::to_string(side),
               std::to_string(side * side), TablePrinter::fmt(cc_g, 3),
               TablePrinter::fmt(disco_g, 3),
               TablePrinter::pct((cc_g - disco_g) / cc_g)});
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nexpected shape: the DISCO-over-CC gain grows with mesh size "
              "(paper: ~10%% at 16 banks -> ~22%% at 64 banks)\n");
  return 0;
}
