// Figure 8 reproduction: scalability of DISCO with CMP size — normalized
// NUCA access latency of DISCO vs CC on 2x2 (4 banks), 4x4 (16 banks) and
// 8x8 (64 banks) meshes. Paper claim: the DISCO-over-CC gain grows from
// insignificant at 4 banks to ~22% at 64 banks (deeper networks expose
// more queuing to hide and more hops to keep compressed).
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "fig8");
  SystemConfig base;
  base.algorithm = "delta";
  bench::configure_faults(base, sweep_opt);
  bench::print_banner("Figure 8: scalability with CMP size", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;
  // A representative subset keeps the 64-router runs affordable.
  const std::vector<std::string> names = {"canneal", "dedup", "streamcluster",
                                          "x264"};
  const std::vector<std::uint32_t> sides = {2, 4, 8};
  const std::vector<Scheme> schemes = {Scheme::Ideal, Scheme::CC, Scheme::DISCO};

  // Grid: (mesh size x workload) rows of (Ideal, CC, DISCO). One group per
  // (mesh, workload) row so its three schemes share traffic and a shard.
  std::vector<sim::SweepCell> cells;
  std::vector<workload::BenchmarkProfile> profiles;
  for (const auto& name : names)
    profiles.push_back(workload::profile_by_name(name));
  for (std::size_t m = 0; m < sides.size(); ++m) {
    const std::uint32_t side = sides[m];
    SystemConfig cfg = base;
    cfg.noc.mesh_cols = side;
    cfg.noc.mesh_rows = side;
    // The NUCA scales with the tile count (256KB per bank, as in 4MB/16).
    cfg.l2.total_size_bytes = 256ULL * 1024 * side * side;
    cfg.mem.num_controllers = side >= 8 ? 4 : 1;
    auto block = bench::scheme_grid(cfg, profiles, schemes, opt);
    for (auto& c : block) {
      c.group += m * profiles.size();
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"Mesh", "Banks", "CC/Ideal", "DISCO/Ideal",
                  "DISCO gain over CC"});
  for (std::size_t m = 0; m < sides.size(); ++m) {
    const std::uint32_t side = sides[m];
    std::vector<double> cc_n, disco_n;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      const std::size_t first = (m * profiles.size() + w) * schemes.size();
      const auto rs = bench::grid_row(sweep, first, schemes.size());
      if (rs.empty()) continue;
      cc_n.push_back(rs[1]->avg_nuca_latency / rs[0]->avg_nuca_latency);
      disco_n.push_back(rs[2]->avg_nuca_latency / rs[0]->avg_nuca_latency);
    }
    if (disco_n.empty()) continue;
    const double cc_g = sim::geomean(cc_n);
    const double disco_g = sim::geomean(disco_n);
    t.add_row({std::to_string(side) + "x" + std::to_string(side),
               std::to_string(side * side), TablePrinter::fmt(cc_g, 3),
               TablePrinter::fmt(disco_g, 3),
               TablePrinter::pct((cc_g - disco_g) / cc_g)});
  }
  t.print(std::cout);
  std::printf("\nexpected shape: the DISCO-over-CC gain grows with mesh size "
              "(paper: ~10%% at 16 banks -> ~22%% at 64 banks)\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
