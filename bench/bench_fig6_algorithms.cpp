// Figure 6 reproduction: the same comparison with the slower, higher-ratio
// algorithms (FPC and SC2). The paper's claim: DISCO's advantage grows with
// de/compression latency — "DISCO achieves the best performance boost with
// SC2: 16.7% average latency reduction over CNC and 15.5% over CC".
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "fig6");
  SystemConfig base;
  bench::configure_faults(base, sweep_opt);
  bench::print_banner("Figure 6: performance with FPC and SC2", base);

  const auto opt = bench::standard_options();
  const std::vector<Scheme> schemes = {Scheme::Ideal, Scheme::CC, Scheme::CNC,
                                       Scheme::DISCO};
  const std::vector<std::string> algos = {"fpc", "sc2"};
  const auto& profiles = bench::workloads();

  // One grid over both algorithms; group numbering continues across the
  // algorithm blocks so shards split the whole bench evenly.
  std::vector<sim::SweepCell> cells;
  for (std::size_t a = 0; a < algos.size(); ++a) {
    SystemConfig cfg = base;
    cfg.algorithm = algos[a];
    auto block = bench::scheme_grid(cfg, profiles, schemes, opt);
    for (auto& c : block) {
      c.group += a * profiles.size();
      c.seed_group = c.group;
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  bool all_rows = true;
  for (std::size_t a = 0; a < algos.size(); ++a) {
    std::printf("--- algorithm: %s ---\n", algos[a].c_str());
    TablePrinter t({"Workload", "CC/Ideal", "CNC/Ideal", "DISCO/Ideal"});
    std::vector<double> cc_norm, cnc_norm, disco_norm;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      const std::size_t first = (a * profiles.size() + w) * schemes.size();
      const auto rs = bench::grid_row(sweep, first, schemes.size());
      if (rs.empty()) continue;
      const double ideal = rs[0]->avg_nuca_latency;
      cc_norm.push_back(rs[1]->avg_nuca_latency / ideal);
      cnc_norm.push_back(rs[2]->avg_nuca_latency / ideal);
      disco_norm.push_back(rs[3]->avg_nuca_latency / ideal);
      t.add_row({profiles[w].name, TablePrinter::fmt(cc_norm.back(), 3),
                 TablePrinter::fmt(cnc_norm.back(), 3),
                 TablePrinter::fmt(disco_norm.back(), 3)});
    }
    t.print(std::cout);
    if (disco_norm.empty()) {
      all_rows = false;
      continue;
    }
    const double cc_g = sim::geomean(cc_norm);
    const double cnc_g = sim::geomean(cnc_norm);
    const double d_g = sim::geomean(disco_norm);
    std::printf("geomean: CC %.3f  CNC %.3f  DISCO %.3f | DISCO vs CC %.1f%%, "
                "vs CNC %.1f%%\n\n",
                cc_g, cnc_g, d_g, (cc_g - d_g) / cc_g * 100.0,
                (cnc_g - d_g) / cnc_g * 100.0);
  }
  if (all_rows)
    std::printf("expected shape: DISCO's margin over CC/CNC grows from delta "
                "(Fig 5) to FPC to SC2 as de/compression latency rises.\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
