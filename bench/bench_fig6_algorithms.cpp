// Figure 6 reproduction: the same comparison with the slower, higher-ratio
// algorithms (FPC and SC2). The paper's claim: DISCO's advantage grows with
// de/compression latency — "DISCO achieves the best performance boost with
// SC2: 16.7% average latency reduction over CNC and 15.5% over CC".
#include "bench_util.h"

using namespace disco;

int main() {
  SystemConfig base;
  bench::print_banner("Figure 6: performance with FPC and SC2", base);

  const auto opt = bench::standard_options();
  const std::vector<Scheme> schemes = {Scheme::Ideal, Scheme::CC, Scheme::CNC,
                                       Scheme::DISCO};

  for (const std::string algo : {"fpc", "sc2"}) {
    SystemConfig cfg = base;
    cfg.algorithm = algo;
    std::printf("--- algorithm: %s ---\n", algo.c_str());

    TablePrinter t({"Workload", "CC/Ideal", "CNC/Ideal", "DISCO/Ideal"});
    std::vector<double> cc_norm, cnc_norm, disco_norm;
    for (const auto& profile : bench::workloads()) {
      const auto rs = sim::run_schemes(cfg, profile, schemes, opt);
      const double ideal = rs[0].avg_nuca_latency;
      cc_norm.push_back(rs[1].avg_nuca_latency / ideal);
      cnc_norm.push_back(rs[2].avg_nuca_latency / ideal);
      disco_norm.push_back(rs[3].avg_nuca_latency / ideal);
      t.add_row({profile.name, TablePrinter::fmt(cc_norm.back(), 3),
                 TablePrinter::fmt(cnc_norm.back(), 3),
                 TablePrinter::fmt(disco_norm.back(), 3)});
      std::printf("  %-14s done\n", profile.name.c_str());
    }
    t.print(std::cout);
    const double cc_g = sim::geomean(cc_norm);
    const double cnc_g = sim::geomean(cnc_norm);
    const double d_g = sim::geomean(disco_norm);
    std::printf("geomean: CC %.3f  CNC %.3f  DISCO %.3f | DISCO vs CC %.1f%%, "
                "vs CNC %.1f%%\n\n",
                cc_g, cnc_g, d_g, (cc_g - d_g) / cc_g * 100.0,
                (cnc_g - d_g) / cnc_g * 100.0);
  }
  std::printf("expected shape: DISCO's margin over CC/CNC grows from delta "
              "(Fig 5) to FPC to SC2 as de/compression latency rises.\n");
  return 0;
}
