// Figure 7 reproduction: on-chip memory-subsystem energy (NoC + NUCA L2 +
// compression hardware) under delta compression, normalized to the baseline
// CMP without any compression. Paper claims: DISCO consumes 73.3% of the
// baseline on average, ~8.3% below CC and ~9.1% below CNC.
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "fig7");
  SystemConfig cfg;
  cfg.algorithm = "delta";
  bench::configure_faults(cfg, sweep_opt);
  bench::print_banner("Figure 7: memory-subsystem energy, delta compression", cfg);

  const auto opt = bench::standard_options();
  const std::vector<Scheme> schemes = {Scheme::Baseline, Scheme::CC,
                                       Scheme::CNC, Scheme::DISCO};
  const auto& profiles = bench::workloads();
  const auto sweep =
      sim::run_sweep(bench::scheme_grid(cfg, profiles, schemes, opt), sweep_opt);

  TablePrinter t({"Workload", "Baseline (uJ)", "CC/Base", "CNC/Base",
                  "DISCO/Base", "DISCO dyn NoC/Base"});
  std::vector<double> cc_n, cnc_n, disco_n;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    const auto rs = bench::grid_row(sweep, w * schemes.size(), schemes.size());
    if (rs.empty()) continue;
    // Energy for the same amount of work: normalize per core memory op.
    auto per_op = [](const sim::CellResult& r) {
      return r.energy.subsystem_nj() / static_cast<double>(r.core_ops);
    };
    const double base = per_op(*rs[0]);
    cc_n.push_back(per_op(*rs[1]) / base);
    cnc_n.push_back(per_op(*rs[2]) / base);
    disco_n.push_back(per_op(*rs[3]) / base);
    const double noc_dyn_ratio =
        (rs[3]->energy.noc_dynamic_nj / static_cast<double>(rs[3]->core_ops)) /
        (rs[0]->energy.noc_dynamic_nj / static_cast<double>(rs[0]->core_ops));
    t.add_row({profiles[w].name,
               TablePrinter::fmt(rs[0]->energy.subsystem_nj() / 1000.0, 1),
               TablePrinter::fmt(cc_n.back(), 3),
               TablePrinter::fmt(cnc_n.back(), 3),
               TablePrinter::fmt(disco_n.back(), 3),
               TablePrinter::fmt(noc_dyn_ratio, 3)});
  }
  t.print(std::cout);
  if (!disco_n.empty()) {
    std::printf("\ngeomean energy vs baseline: CC %.3f  CNC %.3f  DISCO %.3f "
                "(paper: DISCO 0.733, ~8-9%% below CC/CNC)\n",
                sim::geomean(cc_n), sim::geomean(cnc_n), sim::geomean(disco_n));
  }
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
