// Figure 5 reproduction: average on-chip (NUCA) data access latency under
// delta-based compression for CC, CNC and DISCO across the PARSEC-like
// workloads, normalized to the Ideal system (compression with zero
// de/compression overhead), plus the headline averages the paper quotes:
// "DISCO surpasses CC by 12% and beats CNC by 10.1%".
#include "bench_util.h"

using namespace disco;

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "fig5");
  SystemConfig cfg;
  cfg.algorithm = "delta";
  bench::configure_faults(cfg, sweep_opt);
  bench::print_banner("Figure 5: performance with delta-based compression", cfg);

  const auto opt = bench::standard_options();
  const std::vector<Scheme> schemes = {Scheme::Ideal, Scheme::CC, Scheme::CNC,
                                       Scheme::DISCO};

  const auto& profiles = bench::workloads();
  const auto sweep =
      sim::run_sweep(bench::scheme_grid(cfg, profiles, schemes, opt), sweep_opt);

  TablePrinter t({"Workload", "Ideal (cycles)", "CC", "CNC", "DISCO",
                  "CC/Ideal", "CNC/Ideal", "DISCO/Ideal"});
  std::vector<double> cc_norm, cnc_norm, disco_norm;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    const auto rs = bench::grid_row(sweep, w * schemes.size(), schemes.size());
    if (rs.empty()) continue;
    const double ideal = rs[0]->avg_nuca_latency;
    const double cc = rs[1]->avg_nuca_latency / ideal;
    const double cnc = rs[2]->avg_nuca_latency / ideal;
    const double dsc = rs[3]->avg_nuca_latency / ideal;
    cc_norm.push_back(cc);
    cnc_norm.push_back(cnc);
    disco_norm.push_back(dsc);
    t.add_row({profiles[w].name, TablePrinter::fmt(ideal, 1),
               TablePrinter::fmt(rs[1]->avg_nuca_latency, 1),
               TablePrinter::fmt(rs[2]->avg_nuca_latency, 1),
               TablePrinter::fmt(rs[3]->avg_nuca_latency, 1),
               TablePrinter::fmt(cc, 3), TablePrinter::fmt(cnc, 3),
               TablePrinter::fmt(dsc, 3)});
  }
  t.print(std::cout);

  if (!disco_norm.empty()) {
    const double cc_g = sim::geomean(cc_norm);
    const double cnc_g = sim::geomean(cnc_norm);
    const double disco_g = sim::geomean(disco_norm);
    std::printf("\ngeomean normalized latency: CC %.3f  CNC %.3f  DISCO %.3f\n",
                cc_g, cnc_g, disco_g);
    std::printf("DISCO improves on CC by %.1f%% (paper: 12%%), on CNC by %.1f%% "
                "(paper: 10.1%%)\n",
                (cc_g - disco_g) / cc_g * 100.0,
                (cnc_g - disco_g) / cnc_g * 100.0);
  }
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
