// Section 4.3 reproduction: hardware (area) overhead of DISCO vs CC/CNC.
// Paper claims: the delta-based DISCO de/compressor + arbitrator adds 17.2%
// of the router area, which is <1% of the 4MB NUCA array, and is about half
// of CNC's overhead (bank + NI units).
//
// Pure analytical tables (no simulation cells), but it accepts the standard
// sweep flags so every bench driver shares one CLI.
#include "bench_util.h"
#include "compress/registry.h"
#include "energy/energy_model.h"
#include "energy/params.h"

using namespace disco;

int main(int argc, char** argv) {
  (void)bench::sweep_options(argc, argv, "overhead_area");
  SystemConfig cfg;
  bench::print_banner("Section 4.3: area overhead", cfg);

  TablePrinter t({"Scheme", "Units", "Compression HW (mm^2)",
                  "vs all routers", "vs NUCA array"});
  for (const Scheme s : {Scheme::CC, Scheme::CNC, Scheme::DISCO}) {
    const auto a = energy::compute_area(s, 16, /*delta datapath=*/1.0);
    t.add_row({to_string(s),
               std::to_string(energy::compressor_units(s, 16)),
               TablePrinter::fmt(a.compression_mm2, 3),
               TablePrinter::pct(a.overhead_vs_router),
               TablePrinter::pct(a.overhead_vs_nuca, 2)});
  }
  t.print(std::cout);

  std::printf("\nper-algorithm DISCO unit area (scaled by datapath complexity"
              " relative to the delta unit):\n");
  TablePrinter t2({"Algorithm", "DISCO HW (mm^2, 16 routers)", "vs NUCA"});
  for (const auto& name : compress::algorithm_names()) {
    auto algo = compress::make_algorithm(name);
    const double scale = algo->hardware_overhead() / 0.023;
    const auto a = energy::compute_area(Scheme::DISCO, 16, scale);
    t2.add_row({name, TablePrinter::fmt(a.compression_mm2, 3),
                TablePrinter::pct(a.overhead_vs_nuca, 2)});
  }
  t2.print(std::cout);
  std::printf("\npaper: DISCO adds 17.2%% of a router, <1%% of the 4MB NUCA, "
              "~half of CNC's overhead.\n");
  return 0;
}
