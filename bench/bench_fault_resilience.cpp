// Fault-resilience sweep: delivered-block integrity and latency overhead of
// the DISCO system under injected faults. Each row is one fault-rate point
// (bit flips on links and LLC readout at the stated rate; flit drops and
// duplicates at rate/10; engine faults/stalls at the stated rate), run over
// a representative workload subset and compared against the fault-free run
// of the same traffic.
//
// The bench exits nonzero if any delivered block was silently corrupt —
// the invariant the CI fault-smoke job asserts.
//
// A second table measures graceful degradation under permanent hardware
// failure: k = 0..4 staggered mid-run kills (DISCO engine, link, LLC bank,
// whole router tile — the mesh stays connected throughout), reporting
// latency/energy relative to the healthy run of the same traffic plus the
// reroute / severed-recovery / synthesized-completion counters.
#include "bench_util.h"

#include "fault/fault.h"

using namespace disco;

namespace {

FaultConfig faults_at(double rate, const FaultConfig& knobs) {
  FaultConfig f = knobs;  // keep --fault-crc/--fault-retries/--fault-backoff
  f.enabled = true;       // enabled even at rate 0: the zero-rate row checks
                          // that the recovery machinery itself is neutral
  f.link_bit_flip_rate = rate;
  f.llc_bit_flip_rate = rate;
  f.flit_drop_rate = rate / 10.0;
  f.flit_duplicate_rate = rate / 10.0;
  f.engine_fault_rate = rate;
  f.engine_stall_rate = rate;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "fault");
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Fault resilience: integrity and overhead vs fault rate",
                      base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;
  const std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
  const std::vector<std::string> names = {"canneal", "dedup", "streamcluster"};
  std::vector<workload::BenchmarkProfile> profiles;
  for (const auto& name : names)
    profiles.push_back(workload::profile_by_name(name));

  // Grid: (workload x rate) cells. One group per workload, so every rate
  // point replays identical traffic against its own fault-free sibling.
  std::vector<sim::SweepCell> cells;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (const double rate : rates) {
      sim::SweepCell c{base, profiles[w], opt};
      c.cfg.fault = faults_at(rate, sweep_opt.fault);
      c.group = w;
      cells.push_back(std::move(c));
    }
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"Rate", "Faults", "Detected", "Retransmit", "Recovered %",
                  "Unrecovered", "Silent", "Timeouts", "Quarantined",
                  "Latency/clean"});
  std::uint64_t total_silent = 0;
  bool all_rows = true;
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    sim::FaultSummary agg;
    double lat = 0, lat_clean = 0;
    std::size_t rows = 0;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      const auto rs = bench::grid_row(sweep, w * rates.size(), rates.size());
      if (rs.empty()) continue;
      const sim::FaultSummary& f = rs[ri]->fault;
      agg.link_bit_flips += f.link_bit_flips;
      agg.llc_bit_flips += f.llc_bit_flips;
      agg.flit_drops += f.flit_drops;
      agg.flit_duplicates += f.flit_duplicates;
      agg.engine_faults += f.engine_faults;
      agg.corruptions_detected += f.corruptions_detected;
      agg.silent_corruptions += f.silent_corruptions;
      agg.flit_loss_timeouts += f.flit_loss_timeouts;
      agg.retransmissions += f.retransmissions;
      agg.retransmit_deliveries += f.retransmit_deliveries;
      agg.unrecovered_deliveries += f.unrecovered_deliveries;
      agg.engines_quarantined += f.engines_quarantined;
      lat += rs[ri]->avg_nuca_latency;
      lat_clean += rs[0]->avg_nuca_latency;
      ++rows;
    }
    if (rows == 0) {
      all_rows = false;
      continue;
    }
    total_silent += agg.silent_corruptions;
    const std::uint64_t affected =
        agg.corruptions_detected + agg.flit_loss_timeouts;
    const double recovered =
        affected > 0 ? 100.0 *
                           static_cast<double>(affected -
                                               agg.unrecovered_deliveries) /
                           static_cast<double>(affected)
                     : 100.0;
    char rate_s[32];
    std::snprintf(rate_s, sizeof rate_s, "%g", rates[ri]);
    t.add_row({rate_s, std::to_string(agg.payload_faults() + agg.flit_drops +
                                      agg.flit_duplicates),
               std::to_string(agg.corruptions_detected),
               std::to_string(agg.retransmissions),
               TablePrinter::fmt(recovered, 2),
               std::to_string(agg.unrecovered_deliveries),
               std::to_string(agg.silent_corruptions),
               std::to_string(agg.flit_loss_timeouts),
               std::to_string(agg.engines_quarantined),
               TablePrinter::fmt(lat / lat_clean, 3)});
  }
  t.print(std::cout);

  // --- graceful degradation under permanent failures -----------------------
  // Staggered kills inside the measurement window (warmup ends at cycle
  // 15000): each row k applies the first k of these. Node 6's router, the
  // node 9 east link, node 10's bank and node 5's engines leave the 4x4
  // mesh connected, so every surviving tile stays reachable.
  const std::vector<HardFaultEvent> kills = fault::parse_hard_fault_spec(
      "engine@22000:5,link@30000:9:E,llc@38000:10,router@46000:6");

  std::vector<sim::SweepCell> hard_cells;
  for (std::size_t w = 0; w < profiles.size(); ++w) {
    for (std::size_t k = 0; k <= kills.size(); ++k) {
      sim::SweepCell c{base, profiles[w], opt};
      c.cfg.fault = sweep_opt.fault;
      c.cfg.fault.enabled = true;  // k = 0: recovery layer live, nothing dies
      c.cfg.fault.hard_faults.assign(kills.begin(), kills.begin() + k);
      c.group = w;
      hard_cells.push_back(std::move(c));
    }
  }
  auto hard_opt = sweep_opt;
  hard_opt.progress_label = "hard-fault";
  const auto hard_sweep = sim::run_sweep(hard_cells, hard_opt);

  std::printf("\nGraceful degradation: %zu staggered permanent kills "
              "(engine, link, LLC bank, router tile)\n", kills.size());
  TablePrinter ht({"Dead", "Last kill", "Reroutes", "Severed", "Synth",
                   "Drops", "BypassRetx", "Silent", "Latency/clean",
                   "Energy/clean"});
  const std::size_t hk = kills.size() + 1;
  bool all_hard_rows = true;
  for (std::size_t k = 0; k < hk; ++k) {
    sim::FaultSummary agg;
    double lat = 0, lat_clean = 0, nj = 0, nj_clean = 0;
    std::size_t rows = 0;
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      const auto rs = bench::grid_row(hard_sweep, w * hk, hk);
      if (rs.empty()) continue;
      const sim::FaultSummary& f = rs[k]->fault;
      agg.reroutes += f.reroutes;
      agg.severed_packets += f.severed_packets;
      agg.synth_completions += f.synth_completions;
      agg.unreachable_drops += f.unreachable_drops;
      agg.dead_component_drops += f.dead_component_drops;
      agg.bypass_retransmits += f.bypass_retransmits;
      agg.silent_corruptions += f.silent_corruptions;
      lat += rs[k]->avg_nuca_latency;
      lat_clean += rs[0]->avg_nuca_latency;
      nj += rs[k]->energy.subsystem_nj();
      nj_clean += rs[0]->energy.subsystem_nj();
      ++rows;
    }
    if (rows == 0) {
      all_hard_rows = false;
      continue;
    }
    total_silent += agg.silent_corruptions;
    ht.add_row({std::to_string(k),
                k == 0 ? "-" : to_string(kills[k - 1].kind),
                std::to_string(agg.reroutes),
                std::to_string(agg.severed_packets),
                std::to_string(agg.synth_completions),
                std::to_string(agg.unreachable_drops +
                               agg.dead_component_drops),
                std::to_string(agg.bypass_retransmits),
                std::to_string(agg.silent_corruptions),
                TablePrinter::fmt(lat / lat_clean, 3),
                TablePrinter::fmt(nj / nj_clean, 3)});
  }
  ht.print(std::cout);

  std::printf("\nend-to-end check: every delivered block is CRC-verified "
              "against its ground truth;\nsilent corruptions found: %llu\n",
              static_cast<unsigned long long>(total_silent));
  bench::print_sweep_summary(sweep);
  bench::print_sweep_summary(hard_sweep);
  if (total_silent > 0) {
    std::fprintf(stderr, "FAIL: %llu silently corrupt block(s) delivered\n",
                 static_cast<unsigned long long>(total_silent));
    return 1;
  }
  if (const int rc = bench::exit_code(sweep); rc != 0) return rc;
  if (const int rc = bench::exit_code(hard_sweep); rc != 0) return rc;
  return all_rows && all_hard_rows ? 0 : 1;
}
