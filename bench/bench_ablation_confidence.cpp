// Section 3.2 ablation: the confidence mechanism's thresholds (CCth, CDth)
// and coefficients (beta). The paper trains these empirically on NoC
// traces; this sweep is that training experiment — it reports performance
// and engine efficiency (completions vs aborted hasty decisions) per
// setting on a congested workload.
#include "bench_util.h"

using namespace disco;

namespace {

struct Point {
  double ccth, cdth, beta;
};

}  // namespace

int main(int argc, char** argv) {
  const auto sweep_opt = bench::sweep_options(argc, argv, "ablation_confidence");
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: DISCO confidence thresholds (Eq.1/Eq.2)", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;
  // The confidence mechanism only has work to do under contention: stress
  // the workload to 3x its nominal intensity.
  workload::BenchmarkProfile profile = workload::profile_by_name("canneal");
  profile.mem_op_rate *= 3.0;

  const std::vector<Point> points = {
      {-100, -100, 0},  // hair-trigger: compress/decompress on any stall
      {0.5, 0.5, 1},    {1, 1, 1},       {2, 2, 1},
      {4, 4, 1},        {1, 1, 2},       {1, 1, 4},
      {8, 8, 2},        {1e18, 1e18, 1},  // engines disabled
  };

  // Every point must replay identical traffic (the sweep compares NUCA
  // latency across settings), so all cells share seed_group 0; each point
  // is still its own shard group.
  std::vector<sim::SweepCell> cells;
  for (std::size_t p = 0; p < points.size(); ++p) {
    sim::SweepCell c{base, profile, opt};
    c.cfg.disco.cc_threshold = points[p].ccth;
    c.cfg.disco.cd_threshold = points[p].cdth;
    c.cfg.disco.beta = points[p].beta;
    c.group = p;
    c.seed_group = 0;
    cells.push_back(std::move(c));
  }
  const auto sweep = sim::run_sweep(cells, sweep_opt);

  TablePrinter t({"CCth", "CDth", "beta", "NUCA latency", "router comp",
                  "router decomp", "hidden", "aborts (c+d)", "abort rate"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const sim::CellResult* rp = sweep.ok(i);
    if (!rp) continue;
    const sim::CellResult& r = *rp;
    const std::uint64_t aborts = r.compression_aborts + r.decompression_aborts;
    const double ops = static_cast<double>(
        r.inflight_compressions + r.inflight_decompressions + aborts);
    t.add_row({p.ccth < -1 ? "-inf" : (p.ccth > 1e9 ? "+inf" : TablePrinter::fmt(p.ccth, 1)),
               p.cdth < -1 ? "-inf" : (p.cdth > 1e9 ? "+inf" : TablePrinter::fmt(p.cdth, 1)),
               TablePrinter::fmt(p.beta, 1),
               TablePrinter::fmt(r.avg_nuca_latency, 2),
               std::to_string(r.inflight_compressions),
               std::to_string(r.inflight_decompressions),
               std::to_string(r.hidden_decomp_ops),
               std::to_string(r.compression_aborts) + "+" +
                   std::to_string(r.decompression_aborts),
               ops > 0 ? TablePrinter::pct(static_cast<double>(aborts) / ops)
                       : "-"});
  }
  t.print(std::cout);
  std::printf("\nreading: low thresholds compress eagerly but waste engine "
              "energy on aborted hasty decisions; high thresholds forgo "
              "hiding entirely (the paper's 'trained empirically' point sits "
              "between).\n");
  bench::print_sweep_summary(sweep);
  return bench::exit_code(sweep);
}
