// Section 3.2 ablation: the confidence mechanism's thresholds (CCth, CDth)
// and coefficients (beta). The paper trains these empirically on NoC
// traces; this sweep is that training experiment — it reports performance
// and engine efficiency (completions vs aborted hasty decisions) per
// setting on a congested workload.
#include "bench_util.h"

using namespace disco;

namespace {

struct Point {
  double ccth, cdth, beta;
};

}  // namespace

int main() {
  SystemConfig base;
  base.algorithm = "delta";
  base.scheme = Scheme::DISCO;
  bench::print_banner("Ablation: DISCO confidence thresholds (Eq.1/Eq.2)", base);

  auto opt = bench::standard_options();
  opt.measure_cycles = 60000;
  // The confidence mechanism only has work to do under contention: stress
  // the workload to 3x its nominal intensity.
  workload::BenchmarkProfile profile = workload::profile_by_name("canneal");
  profile.mem_op_rate *= 3.0;

  const std::vector<Point> points = {
      {-100, -100, 0},  // hair-trigger: compress/decompress on any stall
      {0.5, 0.5, 1},    {1, 1, 1},       {2, 2, 1},
      {4, 4, 1},        {1, 1, 2},       {1, 1, 4},
      {8, 8, 2},        {1e18, 1e18, 1},  // engines disabled
  };

  TablePrinter t({"CCth", "CDth", "beta", "NUCA latency", "router comp",
                  "router decomp", "hidden", "aborts", "abort rate"});
  for (const Point& p : points) {
    SystemConfig cfg = base;
    cfg.disco.cc_threshold = p.ccth;
    cfg.disco.cd_threshold = p.cdth;
    cfg.disco.beta = p.beta;
    const auto r = sim::run_cell(cfg, profile, opt);
    const double ops = static_cast<double>(r.inflight_compressions +
                                           r.inflight_decompressions +
                                           r.compression_aborts);
    t.add_row({p.ccth < -1 ? "-inf" : (p.ccth > 1e9 ? "+inf" : TablePrinter::fmt(p.ccth, 1)),
               p.cdth < -1 ? "-inf" : (p.cdth > 1e9 ? "+inf" : TablePrinter::fmt(p.cdth, 1)),
               TablePrinter::fmt(p.beta, 1),
               TablePrinter::fmt(r.avg_nuca_latency, 2),
               std::to_string(r.inflight_compressions),
               std::to_string(r.inflight_decompressions),
               std::to_string(r.hidden_decomp_ops),
               std::to_string(r.compression_aborts),
               ops > 0 ? TablePrinter::pct(r.compression_aborts / ops) : "-"});
  }
  t.print(std::cout);
  std::printf("\nreading: low thresholds compress eagerly but waste engine "
              "energy on aborted hasty decisions; high thresholds forgo "
              "hiding entirely (the paper's 'trained empirically' point sits "
              "between).\n");
  return 0;
}
