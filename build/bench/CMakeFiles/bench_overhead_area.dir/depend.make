# Empty dependencies file for bench_overhead_area.
# This may be replaced when dependencies are built.
