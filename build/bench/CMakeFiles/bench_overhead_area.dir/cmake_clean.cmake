file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_area.dir/bench_overhead_area.cpp.o"
  "CMakeFiles/bench_overhead_area.dir/bench_overhead_area.cpp.o.d"
  "bench_overhead_area"
  "bench_overhead_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
