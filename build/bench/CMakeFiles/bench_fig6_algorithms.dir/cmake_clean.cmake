file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_algorithms.dir/bench_fig6_algorithms.cpp.o"
  "CMakeFiles/bench_fig6_algorithms.dir/bench_fig6_algorithms.cpp.o.d"
  "bench_fig6_algorithms"
  "bench_fig6_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
