# Empty dependencies file for bench_fig6_algorithms.
# This may be replaced when dependencies are built.
