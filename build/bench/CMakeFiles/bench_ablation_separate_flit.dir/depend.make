# Empty dependencies file for bench_ablation_separate_flit.
# This may be replaced when dependencies are built.
