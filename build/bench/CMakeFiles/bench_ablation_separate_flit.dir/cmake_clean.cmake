file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_separate_flit.dir/bench_ablation_separate_flit.cpp.o"
  "CMakeFiles/bench_ablation_separate_flit.dir/bench_ablation_separate_flit.cpp.o.d"
  "bench_ablation_separate_flit"
  "bench_ablation_separate_flit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_separate_flit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
