
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_compressors.cpp" "bench/CMakeFiles/bench_micro_compressors.dir/bench_micro_compressors.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_compressors.dir/bench_micro_compressors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compress/CMakeFiles/disco_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/disco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/disco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/disco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
