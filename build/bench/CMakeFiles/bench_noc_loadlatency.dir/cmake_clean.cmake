file(REMOVE_RECURSE
  "CMakeFiles/bench_noc_loadlatency.dir/bench_noc_loadlatency.cpp.o"
  "CMakeFiles/bench_noc_loadlatency.dir/bench_noc_loadlatency.cpp.o.d"
  "bench_noc_loadlatency"
  "bench_noc_loadlatency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noc_loadlatency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
