# Empty compiler generated dependencies file for bench_noc_loadlatency.
# This may be replaced when dependencies are built.
