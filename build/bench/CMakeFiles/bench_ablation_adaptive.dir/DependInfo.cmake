
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_adaptive.cpp" "bench/CMakeFiles/bench_ablation_adaptive.dir/bench_ablation_adaptive.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_adaptive.dir/bench_ablation_adaptive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/disco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/disco_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/disco/CMakeFiles/disco_core_unit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/disco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/disco_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/disco_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/disco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/disco_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/disco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
