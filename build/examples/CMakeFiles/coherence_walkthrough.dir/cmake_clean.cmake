file(REMOVE_RECURSE
  "CMakeFiles/coherence_walkthrough.dir/coherence_walkthrough.cpp.o"
  "CMakeFiles/coherence_walkthrough.dir/coherence_walkthrough.cpp.o.d"
  "coherence_walkthrough"
  "coherence_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
