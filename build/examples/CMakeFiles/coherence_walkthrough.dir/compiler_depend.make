# Empty compiler generated dependencies file for coherence_walkthrough.
# This may be replaced when dependencies are built.
