file(REMOVE_RECURSE
  "CMakeFiles/noc_traffic_explorer.dir/noc_traffic_explorer.cpp.o"
  "CMakeFiles/noc_traffic_explorer.dir/noc_traffic_explorer.cpp.o.d"
  "noc_traffic_explorer"
  "noc_traffic_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noc_traffic_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
