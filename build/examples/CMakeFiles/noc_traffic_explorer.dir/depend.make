# Empty dependencies file for noc_traffic_explorer.
# This may be replaced when dependencies are built.
