# Empty compiler generated dependencies file for compression_studio.
# This may be replaced when dependencies are built.
