file(REMOVE_RECURSE
  "CMakeFiles/compression_studio.dir/compression_studio.cpp.o"
  "CMakeFiles/compression_studio.dir/compression_studio.cpp.o.d"
  "compression_studio"
  "compression_studio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_studio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
