file(REMOVE_RECURSE
  "CMakeFiles/disco_compress.dir/algorithm.cpp.o"
  "CMakeFiles/disco_compress.dir/algorithm.cpp.o.d"
  "CMakeFiles/disco_compress.dir/bdi.cpp.o"
  "CMakeFiles/disco_compress.dir/bdi.cpp.o.d"
  "CMakeFiles/disco_compress.dir/cpack.cpp.o"
  "CMakeFiles/disco_compress.dir/cpack.cpp.o.d"
  "CMakeFiles/disco_compress.dir/delta.cpp.o"
  "CMakeFiles/disco_compress.dir/delta.cpp.o.d"
  "CMakeFiles/disco_compress.dir/fpc.cpp.o"
  "CMakeFiles/disco_compress.dir/fpc.cpp.o.d"
  "CMakeFiles/disco_compress.dir/fvc.cpp.o"
  "CMakeFiles/disco_compress.dir/fvc.cpp.o.d"
  "CMakeFiles/disco_compress.dir/huffman.cpp.o"
  "CMakeFiles/disco_compress.dir/huffman.cpp.o.d"
  "CMakeFiles/disco_compress.dir/registry.cpp.o"
  "CMakeFiles/disco_compress.dir/registry.cpp.o.d"
  "CMakeFiles/disco_compress.dir/sc2.cpp.o"
  "CMakeFiles/disco_compress.dir/sc2.cpp.o.d"
  "CMakeFiles/disco_compress.dir/zerobit.cpp.o"
  "CMakeFiles/disco_compress.dir/zerobit.cpp.o.d"
  "libdisco_compress.a"
  "libdisco_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
