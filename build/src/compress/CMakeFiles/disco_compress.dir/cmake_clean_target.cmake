file(REMOVE_RECURSE
  "libdisco_compress.a"
)
