
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/algorithm.cpp" "src/compress/CMakeFiles/disco_compress.dir/algorithm.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/algorithm.cpp.o.d"
  "/root/repo/src/compress/bdi.cpp" "src/compress/CMakeFiles/disco_compress.dir/bdi.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/bdi.cpp.o.d"
  "/root/repo/src/compress/cpack.cpp" "src/compress/CMakeFiles/disco_compress.dir/cpack.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/cpack.cpp.o.d"
  "/root/repo/src/compress/delta.cpp" "src/compress/CMakeFiles/disco_compress.dir/delta.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/delta.cpp.o.d"
  "/root/repo/src/compress/fpc.cpp" "src/compress/CMakeFiles/disco_compress.dir/fpc.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/fpc.cpp.o.d"
  "/root/repo/src/compress/fvc.cpp" "src/compress/CMakeFiles/disco_compress.dir/fvc.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/fvc.cpp.o.d"
  "/root/repo/src/compress/huffman.cpp" "src/compress/CMakeFiles/disco_compress.dir/huffman.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/huffman.cpp.o.d"
  "/root/repo/src/compress/registry.cpp" "src/compress/CMakeFiles/disco_compress.dir/registry.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/registry.cpp.o.d"
  "/root/repo/src/compress/sc2.cpp" "src/compress/CMakeFiles/disco_compress.dir/sc2.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/sc2.cpp.o.d"
  "/root/repo/src/compress/zerobit.cpp" "src/compress/CMakeFiles/disco_compress.dir/zerobit.cpp.o" "gcc" "src/compress/CMakeFiles/disco_compress.dir/zerobit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/disco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
