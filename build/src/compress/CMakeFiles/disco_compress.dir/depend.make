# Empty dependencies file for disco_compress.
# This may be replaced when dependencies are built.
