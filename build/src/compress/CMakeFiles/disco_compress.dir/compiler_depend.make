# Empty compiler generated dependencies file for disco_compress.
# This may be replaced when dependencies are built.
