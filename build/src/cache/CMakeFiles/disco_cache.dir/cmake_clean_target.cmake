file(REMOVE_RECURSE
  "libdisco_cache.a"
)
