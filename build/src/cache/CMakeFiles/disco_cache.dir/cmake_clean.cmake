file(REMOVE_RECURSE
  "CMakeFiles/disco_cache.dir/arrays.cpp.o"
  "CMakeFiles/disco_cache.dir/arrays.cpp.o.d"
  "CMakeFiles/disco_cache.dir/l1_cache.cpp.o"
  "CMakeFiles/disco_cache.dir/l1_cache.cpp.o.d"
  "CMakeFiles/disco_cache.dir/l2_bank.cpp.o"
  "CMakeFiles/disco_cache.dir/l2_bank.cpp.o.d"
  "CMakeFiles/disco_cache.dir/mem_ctrl.cpp.o"
  "CMakeFiles/disco_cache.dir/mem_ctrl.cpp.o.d"
  "CMakeFiles/disco_cache.dir/protocol.cpp.o"
  "CMakeFiles/disco_cache.dir/protocol.cpp.o.d"
  "libdisco_cache.a"
  "libdisco_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
