# Empty dependencies file for disco_cache.
# This may be replaced when dependencies are built.
