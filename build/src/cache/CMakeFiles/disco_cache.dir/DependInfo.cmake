
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/arrays.cpp" "src/cache/CMakeFiles/disco_cache.dir/arrays.cpp.o" "gcc" "src/cache/CMakeFiles/disco_cache.dir/arrays.cpp.o.d"
  "/root/repo/src/cache/l1_cache.cpp" "src/cache/CMakeFiles/disco_cache.dir/l1_cache.cpp.o" "gcc" "src/cache/CMakeFiles/disco_cache.dir/l1_cache.cpp.o.d"
  "/root/repo/src/cache/l2_bank.cpp" "src/cache/CMakeFiles/disco_cache.dir/l2_bank.cpp.o" "gcc" "src/cache/CMakeFiles/disco_cache.dir/l2_bank.cpp.o.d"
  "/root/repo/src/cache/mem_ctrl.cpp" "src/cache/CMakeFiles/disco_cache.dir/mem_ctrl.cpp.o" "gcc" "src/cache/CMakeFiles/disco_cache.dir/mem_ctrl.cpp.o.d"
  "/root/repo/src/cache/protocol.cpp" "src/cache/CMakeFiles/disco_cache.dir/protocol.cpp.o" "gcc" "src/cache/CMakeFiles/disco_cache.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/noc/CMakeFiles/disco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/disco_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/disco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
