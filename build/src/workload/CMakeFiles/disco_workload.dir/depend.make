# Empty dependencies file for disco_workload.
# This may be replaced when dependencies are built.
