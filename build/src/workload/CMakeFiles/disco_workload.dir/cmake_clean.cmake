file(REMOVE_RECURSE
  "CMakeFiles/disco_workload.dir/profile.cpp.o"
  "CMakeFiles/disco_workload.dir/profile.cpp.o.d"
  "CMakeFiles/disco_workload.dir/synthetic.cpp.o"
  "CMakeFiles/disco_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/disco_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/disco_workload.dir/trace_gen.cpp.o.d"
  "CMakeFiles/disco_workload.dir/trace_io.cpp.o"
  "CMakeFiles/disco_workload.dir/trace_io.cpp.o.d"
  "CMakeFiles/disco_workload.dir/value_synth.cpp.o"
  "CMakeFiles/disco_workload.dir/value_synth.cpp.o.d"
  "libdisco_workload.a"
  "libdisco_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
