file(REMOVE_RECURSE
  "libdisco_workload.a"
)
