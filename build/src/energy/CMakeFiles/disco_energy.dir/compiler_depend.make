# Empty compiler generated dependencies file for disco_energy.
# This may be replaced when dependencies are built.
