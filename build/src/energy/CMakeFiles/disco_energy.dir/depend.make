# Empty dependencies file for disco_energy.
# This may be replaced when dependencies are built.
