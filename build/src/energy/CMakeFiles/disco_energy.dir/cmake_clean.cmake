file(REMOVE_RECURSE
  "CMakeFiles/disco_energy.dir/energy_model.cpp.o"
  "CMakeFiles/disco_energy.dir/energy_model.cpp.o.d"
  "libdisco_energy.a"
  "libdisco_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
