file(REMOVE_RECURSE
  "libdisco_energy.a"
)
