file(REMOVE_RECURSE
  "libdisco_cmp.a"
)
