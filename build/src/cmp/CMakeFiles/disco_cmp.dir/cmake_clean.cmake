file(REMOVE_RECURSE
  "CMakeFiles/disco_cmp.dir/core.cpp.o"
  "CMakeFiles/disco_cmp.dir/core.cpp.o.d"
  "CMakeFiles/disco_cmp.dir/system.cpp.o"
  "CMakeFiles/disco_cmp.dir/system.cpp.o.d"
  "libdisco_cmp.a"
  "libdisco_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
