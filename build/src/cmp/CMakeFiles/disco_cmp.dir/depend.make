# Empty dependencies file for disco_cmp.
# This may be replaced when dependencies are built.
