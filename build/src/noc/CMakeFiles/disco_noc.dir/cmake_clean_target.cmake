file(REMOVE_RECURSE
  "libdisco_noc.a"
)
