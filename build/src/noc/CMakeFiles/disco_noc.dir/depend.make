# Empty dependencies file for disco_noc.
# This may be replaced when dependencies are built.
