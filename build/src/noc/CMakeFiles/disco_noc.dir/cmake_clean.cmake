file(REMOVE_RECURSE
  "CMakeFiles/disco_noc.dir/network.cpp.o"
  "CMakeFiles/disco_noc.dir/network.cpp.o.d"
  "CMakeFiles/disco_noc.dir/ni.cpp.o"
  "CMakeFiles/disco_noc.dir/ni.cpp.o.d"
  "CMakeFiles/disco_noc.dir/router.cpp.o"
  "CMakeFiles/disco_noc.dir/router.cpp.o.d"
  "libdisco_noc.a"
  "libdisco_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
