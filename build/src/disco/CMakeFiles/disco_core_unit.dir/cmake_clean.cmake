file(REMOVE_RECURSE
  "CMakeFiles/disco_core_unit.dir/unit.cpp.o"
  "CMakeFiles/disco_core_unit.dir/unit.cpp.o.d"
  "libdisco_core_unit.a"
  "libdisco_core_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_core_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
