# Empty compiler generated dependencies file for disco_core_unit.
# This may be replaced when dependencies are built.
