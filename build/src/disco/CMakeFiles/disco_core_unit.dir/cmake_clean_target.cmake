file(REMOVE_RECURSE
  "libdisco_core_unit.a"
)
