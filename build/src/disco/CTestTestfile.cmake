# CMake generated Testfile for 
# Source directory: /root/repo/src/disco
# Build directory: /root/repo/build/src/disco
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
