# Empty dependencies file for disco_common.
# This may be replaced when dependencies are built.
