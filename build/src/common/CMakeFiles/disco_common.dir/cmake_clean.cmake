file(REMOVE_RECURSE
  "CMakeFiles/disco_common.dir/config.cpp.o"
  "CMakeFiles/disco_common.dir/config.cpp.o.d"
  "CMakeFiles/disco_common.dir/stats.cpp.o"
  "CMakeFiles/disco_common.dir/stats.cpp.o.d"
  "CMakeFiles/disco_common.dir/table.cpp.o"
  "CMakeFiles/disco_common.dir/table.cpp.o.d"
  "CMakeFiles/disco_common.dir/types.cpp.o"
  "CMakeFiles/disco_common.dir/types.cpp.o.d"
  "libdisco_common.a"
  "libdisco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
