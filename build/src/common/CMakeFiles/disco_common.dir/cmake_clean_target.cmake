file(REMOVE_RECURSE
  "libdisco_common.a"
)
