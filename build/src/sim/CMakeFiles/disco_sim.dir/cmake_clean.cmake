file(REMOVE_RECURSE
  "CMakeFiles/disco_sim.dir/experiment.cpp.o"
  "CMakeFiles/disco_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/disco_sim.dir/json_export.cpp.o"
  "CMakeFiles/disco_sim.dir/json_export.cpp.o.d"
  "CMakeFiles/disco_sim.dir/report.cpp.o"
  "CMakeFiles/disco_sim.dir/report.cpp.o.d"
  "libdisco_sim.a"
  "libdisco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
