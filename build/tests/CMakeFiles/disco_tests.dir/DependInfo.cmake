
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_arrays.cpp" "tests/CMakeFiles/disco_tests.dir/test_cache_arrays.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_cache_arrays.cpp.o.d"
  "/root/repo/tests/test_coherence.cpp" "tests/CMakeFiles/disco_tests.dir/test_coherence.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_coherence.cpp.o.d"
  "/root/repo/tests/test_compress_ratios.cpp" "tests/CMakeFiles/disco_tests.dir/test_compress_ratios.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_compress_ratios.cpp.o.d"
  "/root/repo/tests/test_compress_roundtrip.cpp" "tests/CMakeFiles/disco_tests.dir/test_compress_roundtrip.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_compress_roundtrip.cpp.o.d"
  "/root/repo/tests/test_compressed_cache.cpp" "tests/CMakeFiles/disco_tests.dir/test_compressed_cache.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_compressed_cache.cpp.o.d"
  "/root/repo/tests/test_core_model.cpp" "tests/CMakeFiles/disco_tests.dir/test_core_model.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_core_model.cpp.o.d"
  "/root/repo/tests/test_disco_unit.cpp" "tests/CMakeFiles/disco_tests.dir/test_disco_unit.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_disco_unit.cpp.o.d"
  "/root/repo/tests/test_energy_area.cpp" "tests/CMakeFiles/disco_tests.dir/test_energy_area.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_energy_area.cpp.o.d"
  "/root/repo/tests/test_huffman.cpp" "tests/CMakeFiles/disco_tests.dir/test_huffman.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_huffman.cpp.o.d"
  "/root/repo/tests/test_infra.cpp" "tests/CMakeFiles/disco_tests.dir/test_infra.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_infra.cpp.o.d"
  "/root/repo/tests/test_mem_and_l1.cpp" "tests/CMakeFiles/disco_tests.dir/test_mem_and_l1.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_mem_and_l1.cpp.o.d"
  "/root/repo/tests/test_ni_policies.cpp" "tests/CMakeFiles/disco_tests.dir/test_ni_policies.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_ni_policies.cpp.o.d"
  "/root/repo/tests/test_noc_basic.cpp" "tests/CMakeFiles/disco_tests.dir/test_noc_basic.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_noc_basic.cpp.o.d"
  "/root/repo/tests/test_scale_stress.cpp" "tests/CMakeFiles/disco_tests.dir/test_scale_stress.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_scale_stress.cpp.o.d"
  "/root/repo/tests/test_segmented_fuzz.cpp" "tests/CMakeFiles/disco_tests.dir/test_segmented_fuzz.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_segmented_fuzz.cpp.o.d"
  "/root/repo/tests/test_synthetic_traffic.cpp" "tests/CMakeFiles/disco_tests.dir/test_synthetic_traffic.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_synthetic_traffic.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/disco_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_system_matrix.cpp" "tests/CMakeFiles/disco_tests.dir/test_system_matrix.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_system_matrix.cpp.o.d"
  "/root/repo/tests/test_trace_io_json.cpp" "tests/CMakeFiles/disco_tests.dir/test_trace_io_json.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_trace_io_json.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/disco_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/disco_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/disco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cmp/CMakeFiles/disco_cmp.dir/DependInfo.cmake"
  "/root/repo/build/src/disco/CMakeFiles/disco_core_unit.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/disco_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/disco_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/disco_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/disco_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/disco_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/disco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
