# Empty dependencies file for disco_tests.
# This may be replaced when dependencies are built.
