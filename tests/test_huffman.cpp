// Unit tests for the canonical Huffman coder underlying SC².
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/huffman.h"
#include <cmath>

namespace disco::compress {
namespace {

TEST(Huffman, TwoSymbolAlphabet) {
  HuffmanCode code = HuffmanCode::build({10, 90});
  EXPECT_EQ(code.code(0).length, 1);
  EXPECT_EQ(code.code(1).length, 1);

  BitWriter bw;
  code.encode(bw, 0);
  code.encode(bw, 1);
  code.encode(bw, 1);
  const auto bytes = bw.bytes();
  BitReader br{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(code.decode(br), 0u);
  EXPECT_EQ(code.decode(br), 1u);
  EXPECT_EQ(code.decode(br), 1u);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  HuffmanCode code = HuffmanCode::build({0, 5, 0});
  EXPECT_FALSE(code.has_code(0));
  EXPECT_TRUE(code.has_code(1));
  EXPECT_EQ(code.code(1).length, 1);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  HuffmanCode code = HuffmanCode::build({1000, 10, 10, 10, 1, 1});
  EXPECT_LE(code.code(0).length, code.code(1).length);
  EXPECT_LE(code.code(1).length, code.code(4).length);
}

TEST(Huffman, RoundTripSkewedDistribution) {
  std::vector<std::uint64_t> freqs(64);
  for (std::size_t i = 0; i < freqs.size(); ++i) freqs[i] = 1 + (i * i * 7) % 1000;
  HuffmanCode code = HuffmanCode::build(freqs);

  Rng rng(5);
  std::vector<std::size_t> symbols;
  BitWriter bw;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t s = rng.next_below(freqs.size());
    symbols.push_back(s);
    code.encode(bw, s);
  }
  const auto bytes = bw.bytes();
  BitReader br{std::span<const std::uint8_t>(bytes)};
  for (const std::size_t expected : symbols) EXPECT_EQ(code.decode(br), expected);
}

TEST(Huffman, KraftInequalityHolds) {
  std::vector<std::uint64_t> freqs(256);
  Rng rng(77);
  for (auto& f : freqs) f = 1 + rng.next_below(10000);
  HuffmanCode code = HuffmanCode::build(freqs);
  long double kraft = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    ASSERT_TRUE(code.has_code(s));
    kraft += std::pow(2.0L, -static_cast<long double>(code.code(s).length));
  }
  EXPECT_NEAR(static_cast<double>(kraft), 1.0, 1e-9)
      << "a Huffman code is a complete prefix code";
}

TEST(Huffman, CodesArePrefixFree) {
  std::vector<std::uint64_t> freqs = {50, 20, 10, 10, 5, 3, 1, 1};
  HuffmanCode code = HuffmanCode::build(freqs);
  for (std::size_t a = 0; a < freqs.size(); ++a) {
    for (std::size_t b = 0; b < freqs.size(); ++b) {
      if (a == b) continue;
      const auto& ca = code.code(a);
      const auto& cb = code.code(b);
      if (ca.length > cb.length) continue;
      const std::uint64_t prefix = cb.bits >> (cb.length - ca.length);
      EXPECT_FALSE(prefix == ca.bits && ca.length <= cb.length && a != b &&
                   ca.length == cb.length)
          << "equal-length duplicate code";
      if (ca.length < cb.length) {
        EXPECT_NE(prefix, ca.bits) << "code " << a << " prefixes code " << b;
      }
    }
  }
}

TEST(Bitstream, WriterReaderAgreeOnOddWidths) {
  BitWriter bw;
  bw.put(0b101, 3);
  bw.put(0x7FFF, 15);
  bw.put(1, 1);
  bw.put(0xDEADBEEFCAFEBABEULL, 64);
  const auto bytes = bw.bytes();
  BitReader br{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(br.get(3), 0b101u);
  EXPECT_EQ(br.get(15), 0x7FFFu);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(64), 0xDEADBEEFCAFEBABEULL);
}

TEST(Bitstream, BitCountTracksExactly) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put_bit(true);
  EXPECT_EQ(bw.bit_count(), 1u);
  bw.put(0, 12);
  EXPECT_EQ(bw.bit_count(), 13u);
}

}  // namespace
}  // namespace disco::compress
