// Full-CMP graceful-degradation tests: killing one component of every class
// mid-run must leave a system that completes with zero silent corruptions
// and drains in bounded time; hard-fault runs must be deterministic and
// thread-count invariant down to the aggregate JSON and the canonical
// trace stream; and an armed-but-never-firing kill schedule must be
// metric-neutral (zero behavior change at defaults).
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "cmp/system.h"
#include "fault/fault.h"
#include "sim/json_export.h"
#include "sim/sweep.h"
#include "workload/profile.h"

namespace disco {
namespace {

sim::RunOptions tiny_run() {
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 2000;
  opt.measure_cycles = 8000;
  return opt;
}

sim::SweepOptions quiet(unsigned threads) {
  sim::SweepOptions opt;
  opt.threads = threads;
  opt.progress = false;
  return opt;
}

std::string as_json(const sim::SweepResult& r) {
  std::ostringstream os;
  sim::write_json(os, r.ok_results());
  return os.str();
}

// One kill of every component class, staggered mid-run on the default 4x4
// mesh. Node 6's router, node 9's east link, node 10's bank and node 5's
// engines leave the mesh connected.
const char* kEveryClassSpec =
    "engine@4000:5,link@6000:9:E,llc@8000:10,router@10000:6";

TEST(HardFaultSystem, KillingEveryComponentClassDegradesGracefully) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.algorithm = "delta";
  cfg.fault.hard_faults = fault::parse_hard_fault_spec(kEveryClassSpec);
  cmp::CmpSystem sys(cfg, workload::profile_by_name("canneal"));
  sys.functional_warmup(3000);
  sys.run(12000);
  EXPECT_EQ(sys.hard_faults_applied(), 4u) << "every scheduled kill fired";

  const auto& ns = sys.noc_stats();
  EXPECT_EQ(ns.engines_hard_failed, 1u);
  EXPECT_EQ(ns.links_killed, 1u);
  EXPECT_EQ(ns.banks_killed, 1u);
  EXPECT_EQ(ns.routers_killed, 1u);
  EXPECT_EQ(ns.silent_corruptions, 0u)
      << "a kill must never surface as silently corrupt data";
  EXPECT_GT(ns.reroutes, 0u) << "traffic must detour around the dead tile";
  EXPECT_TRUE(sys.drain(100000))
      << "the degraded system must still reach quiescence";
  EXPECT_EQ(ns.silent_corruptions, 0u);
}

TEST(HardFaultSystem, DegradedRunsAreDeterministic) {
  auto run_once = [] {
    SystemConfig cfg;
    cfg.scheme = Scheme::DISCO;
    cfg.algorithm = "delta";
    cfg.fault.hard_faults = fault::parse_hard_fault_spec(kEveryClassSpec);
    cmp::CmpSystem sys(cfg, workload::profile_by_name("vips"));
    sys.functional_warmup(2000);
    sys.run(12000);
    const auto& ns = sys.noc_stats();
    return std::tuple{sys.hard_faults_applied(), ns.reroutes,
                      ns.severed_packets,        ns.synth_completions,
                      ns.unreachable_drops,      ns.link_flits,
                      sys.total_core_ops()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(HardFaultSweep, AggregateJsonIsThreadCountInvariant) {
  std::vector<sim::SweepCell> cells;
  std::size_t group = 0;
  for (const char* name : {"canneal", "swaptions"}) {
    const auto& profile = workload::profile_by_name(name);
    // One explicit-schedule cell and one rate-based cell per workload.
    SystemConfig cfg;
    cfg.scheme = Scheme::DISCO;
    cfg.fault.hard_faults =
        fault::parse_hard_fault_spec("engine@3000:1,router@6000:2");
    sim::SweepCell a{cfg, profile, tiny_run()};
    a.group = group;
    cells.push_back(std::move(a));
    SystemConfig rate_cfg;
    rate_cfg.scheme = Scheme::DISCO;
    rate_cfg.fault.hard_fault_rate = 2e-6;
    sim::SweepCell b{rate_cfg, profile, tiny_run()};
    b.group = group;
    cells.push_back(std::move(b));
    ++group;
  }
  const sim::SweepResult serial = sim::run_sweep(cells, quiet(1));
  const sim::SweepResult parallel = sim::run_sweep(cells, quiet(4));
  ASSERT_EQ(serial.completed, cells.size());
  ASSERT_EQ(parallel.completed, cells.size());
  EXPECT_EQ(as_json(serial), as_json(parallel))
      << "hard-fault schedules must not depend on the thread count";
  for (const auto& cell : serial.cells) {
    EXPECT_TRUE(cell.result.fault.hard_enabled);
    EXPECT_EQ(cell.result.fault.silent_corruptions, 0u);
  }
  EXPECT_GT(serial.cells[0].result.fault.hard_faults_applied, 0u);
  EXPECT_NE(as_json(serial).find("\"hard_fault\""), std::string::npos);
}

TEST(HardFaultSweep, DegradedTraceIsThreadCountInvariantAndInvariantClean) {
  // Stronger than metric equality: with tracing and invariant checking on,
  // the canonical event stream of a run that kills an engine and a router
  // mid-flight must be byte-identical between a serial and a 4-thread run,
  // and every degraded-mode invariant must hold.
  std::vector<sim::SweepCell> cells;
  std::size_t group = 0;
  for (const char* name : {"canneal", "swaptions"}) {
    SystemConfig cfg;
    cfg.scheme = Scheme::DISCO;
    cfg.noc.mesh_cols = 2;
    cfg.noc.mesh_rows = 2;
    cfg.l2.total_size_bytes = 256ULL * 1024;
    cfg.fault.hard_faults =
        fault::parse_hard_fault_spec("engine@2500:3,router@5000:1");
    sim::SweepCell c{cfg, workload::profile_by_name(name), tiny_run()};
    c.group = group++;
    cells.push_back(std::move(c));
  }
  sim::SweepOptions serial = quiet(1);
  serial.trace.enabled = true;
  serial.trace.check_invariants = true;
  sim::SweepOptions parallel = quiet(4);
  parallel.trace = serial.trace;
  const sim::SweepResult a = sim::run_sweep(cells, serial);
  const sim::SweepResult b = sim::run_sweep(cells, parallel);
  ASSERT_EQ(a.completed, cells.size());
  ASSERT_EQ(b.completed, cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::CellResult& ra = a.cells[i].result;
    ASSERT_FALSE(ra.trace_text.empty()) << "cell " << i;
    EXPECT_EQ(ra.trace_text, b.cells[i].result.trace_text)
        << "degraded trace of cell " << i << " depends on the thread count";
    EXPECT_NE(ra.trace_text.find("TKL"), std::string::npos)
        << "kills must appear as TopoKill events in the stream";
    EXPECT_TRUE(ra.invariants.enabled);
    EXPECT_TRUE(ra.invariants.clean())
        << "cell " << i << ": " << ra.invariants.first_violation;
    EXPECT_EQ(ra.fault.hard_faults_applied, 2u);
    EXPECT_EQ(ra.fault.silent_corruptions, 0u);
  }
}

TEST(HardFaultSweep, ArmedButIdleScheduleIsMetricNeutral) {
  // A kill scheduled beyond the end of the run arms the whole degradation
  // machinery (topology, gating, unreachable handler) without ever firing:
  // the run must reproduce the plain fault-layer metrics exactly — the
  // "zero behavior change at defaults" guarantee. Timeout knobs are pushed
  // out of reach as in the soft-fault neutrality test so the loss scanner
  // provably never fires.
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  const auto& profile = workload::profile_by_name("canneal");
  std::vector<sim::SweepCell> cells(2, sim::SweepCell{cfg, profile, tiny_run()});
  for (auto& c : cells) {
    c.cfg.fault.enabled = true;
    c.cfg.fault.reassembly_timeout_cycles = 1u << 30;
    c.cfg.fault.nack_retry_interval = 1u << 30;
    c.group = 0;  // same seed -> identical traffic
  }
  cells[1].cfg.fault.hard_faults = {
      {HardFaultKind::Router, std::uint64_t{1} << 40, 5, 0}};
  const sim::SweepResult r = sim::run_sweep(cells, quiet(2));
  ASSERT_EQ(r.completed, 2u);
  const sim::CellResult& plain = r.cells[0].result;
  const sim::CellResult& armed = r.cells[1].result;
  EXPECT_EQ(plain.core_ops, armed.core_ops);
  EXPECT_EQ(plain.l1_misses, armed.l1_misses);
  EXPECT_EQ(plain.link_flits, armed.link_flits);
  EXPECT_EQ(plain.avg_nuca_latency, armed.avg_nuca_latency);
  EXPECT_EQ(plain.avg_packet_latency, armed.avg_packet_latency);
  EXPECT_EQ(plain.energy.subsystem_nj(), armed.energy.subsystem_nj());
  EXPECT_TRUE(armed.fault.hard_enabled);
  EXPECT_EQ(armed.fault.hard_faults_applied, 0u);
  EXPECT_EQ(armed.fault.reroutes, 0u);
  EXPECT_EQ(armed.fault.components_killed(), 0u);
  // The soft-fault-only cell's JSON carries no hard_fault object at all.
  std::ostringstream plain_os;
  sim::write_json(plain_os, plain);
  EXPECT_EQ(plain_os.str().find("\"hard_fault\""), std::string::npos);
  std::ostringstream armed_os;
  sim::write_json(armed_os, armed);
  EXPECT_NE(armed_os.str().find("\"hard_fault\""), std::string::npos);
}

}  // namespace
}  // namespace disco
