// Permanent-failure (hard-fault) tests at the component level: the kill
// spec grammar and its round-trip formatter, deterministic seed-derived
// schedule construction, SystemConfig::validate() rejection of degenerate
// meshes and out-of-mesh kill targets, and the live-topology routing model:
// byte-identical XY while routing-healthy, legal terminating up*/down*
// reroutes after router/link deaths, and network-level kill semantics
// (reroute around a dead tile, source-NI drop of unreachable packets).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/config.h"
#include "fault/fault.h"
#include "noc/network.h"
#include "noc/topology.h"
#include "noc_test_util.h"

namespace disco {
namespace {

using noc::Port;
using noc::testutil::CollectingSink;
using noc::testutil::make_packet;
using noc::testutil::run_until_quiescent;

TEST(HardFaultSpec, ParserAcceptsTheFullGrammarAndSortsByCycle) {
  const auto ev = fault::parse_hard_fault_spec(
      "engine@5000:3,link@9000:5:E,router@12000:10,llc@100:0");
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].kind, HardFaultKind::LlcBank);
  EXPECT_EQ(ev[0].at, 100u);
  EXPECT_EQ(ev[0].node, 0u);
  EXPECT_EQ(ev[1].kind, HardFaultKind::DiscoEngine);
  EXPECT_EQ(ev[1].at, 5000u);
  EXPECT_EQ(ev[1].node, 3u);
  EXPECT_EQ(ev[2].kind, HardFaultKind::Link);
  EXPECT_EQ(ev[2].at, 9000u);
  EXPECT_EQ(ev[2].node, 5u);
  EXPECT_EQ(ev[2].dir, static_cast<std::uint8_t>(Port::East));
  EXPECT_EQ(ev[3].kind, HardFaultKind::Router);
  EXPECT_EQ(ev[3].at, 12000u);
  EXPECT_EQ(ev[3].node, 10u);
}

TEST(HardFaultSpec, FormatterRoundTripsThroughTheParser) {
  const auto ev = fault::parse_hard_fault_spec(
      "link@1:0:N,link@2:0:S,link@3:0:E,link@4:0:W,router@5:15,engine@6:7");
  EXPECT_EQ(fault::parse_hard_fault_spec(fault::format_hard_fault_spec(ev)),
            ev);
}

TEST(HardFaultSpec, ParserRejectsMalformedTokens) {
  EXPECT_THROW(fault::parse_hard_fault_spec("bogus@5:1"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_hard_fault_spec("router@5"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_hard_fault_spec("router@x:1"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_hard_fault_spec("link@5:1"),
               std::invalid_argument)
      << "link kills need a direction";
  EXPECT_THROW(fault::parse_hard_fault_spec("link@5:1:Q"),
               std::invalid_argument);
  EXPECT_THROW(fault::parse_hard_fault_spec("engine@5:1:E"),
               std::invalid_argument)
      << "only link kills take a direction";
}

TEST(HardFaultSchedule, IsAPureFunctionOfSeedRateAndMesh) {
  FaultConfig fc;
  fc.hard_fault_rate = 1e-4;
  const auto a = fault::build_hard_fault_schedule(fc, 42, 4, 4, 100000);
  const auto b = fault::build_hard_fault_schedule(fc, 42, 4, 4, 100000);
  EXPECT_EQ(a, b) << "same seed must replay bit-exactly";
  ASSERT_FALSE(a.empty()) << "rate 1e-4 over 100k cycles must draw kills";
  for (std::size_t i = 1; i < a.size(); ++i)
    EXPECT_LE(a[i - 1].at, a[i].at) << "schedule must be sorted by cycle";
  for (const auto& e : a) EXPECT_LT(e.at, 100000u) << "horizon must bound it";
  const auto c = fault::build_hard_fault_schedule(fc, 43, 4, 4, 100000);
  EXPECT_NE(a, c) << "another seed must draw another schedule";
}

TEST(HardFaultSchedule, MergesExplicitEventsAndRespectsTheHorizon) {
  FaultConfig fc;
  fc.hard_faults = fault::parse_hard_fault_spec("router@7000:1,engine@500:2");
  const auto s = fault::build_hard_fault_schedule(fc, 9, 4, 4, 1000000);
  ASSERT_EQ(s.size(), 2u) << "rate 0: only the explicit events";
  EXPECT_EQ(s[0].kind, HardFaultKind::DiscoEngine) << "sorted by cycle";
  EXPECT_EQ(s[1].kind, HardFaultKind::Router);
  EXPECT_TRUE(fault::build_hard_fault_schedule(fc, 9, 4, 4, 400).empty())
      << "events at or past the horizon are discarded";
}

TEST(HardFaultConfig, ValidateRejectsDegenerateSystems) {
  const SystemConfig ok;
  EXPECT_NO_THROW(ok.validate());

  SystemConfig bad = ok;
  bad.noc.mesh_cols = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.noc.mesh_rows = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.noc.mesh_cols = 1u << 17;
  bad.noc.mesh_rows = 1u << 17;  // cols * rows overflows uint32
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.noc.mesh_cols = 9;
  bad.noc.mesh_rows = 8;  // 72 tiles > the 64-bit sharer mask
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.noc.vcs_per_vnet = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.fault.hard_fault_rate = -0.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.fault.hard_faults = fault::parse_hard_fault_spec("router@5:99");
  EXPECT_THROW(bad.validate(), std::invalid_argument)
      << "kill target outside the mesh";
  bad = ok;
  bad.fault.hard_faults = {{HardFaultKind::Link, 5, 1, 7}};
  EXPECT_THROW(bad.validate(), std::invalid_argument)
      << "link direction must be N/S/E/W";
}

TEST(HardFaultTopology, HealthyRoutingIsExactlyXY) {
  const noc::MeshShape mesh{4, 4};
  noc::Topology t(mesh);
  EXPECT_TRUE(t.routing_healthy());
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      std::uint8_t phase = 0;
      EXPECT_EQ(t.route(s, d, phase), noc::xy_route(mesh, s, d))
          << s << "->" << d;
    }
  }
  // Engine and bank deaths leave the wires alone: routing stays on the XY
  // fast path (the golden-trace byte-identity guarantee).
  EXPECT_TRUE(t.kill_engine(3));
  EXPECT_TRUE(t.kill_bank(7));
  EXPECT_TRUE(t.routing_healthy());
  std::uint8_t phase = 0;
  EXPECT_EQ(t.route(0, 15, phase), noc::xy_route(mesh, 0, 15));
  EXPECT_FALSE(t.engine_alive(3));
  EXPECT_FALSE(t.bank_alive(7));
  EXPECT_FALSE(t.unit_alive(7, UnitKind::L2Bank));
  EXPECT_TRUE(t.unit_alive(7, UnitKind::Core));
}

TEST(HardFaultTopology, DegradedRoutesAreLegalAndTerminate) {
  const noc::MeshShape mesh{4, 4};
  noc::Topology t(mesh);
  EXPECT_TRUE(t.kill_router(5));
  EXPECT_FALSE(t.kill_router(5)) << "double kill is a no-op";
  EXPECT_TRUE(t.kill_link(9, Port::East));
  EXPECT_FALSE(t.kill_link(9, Port::East));
  EXPECT_FALSE(t.routing_healthy());
  EXPECT_EQ(t.epoch(), 2u);
  EXPECT_EQ(t.dead_routers(), 1u);
  EXPECT_EQ(t.dead_links(), 1u);
  // A router kill takes the whole tile down.
  EXPECT_FALSE(t.engine_alive(5));
  EXPECT_FALSE(t.bank_alive(5));
  EXPECT_FALSE(t.reachable(0, 5));
  EXPECT_FALSE(t.reachable(5, 5));
  // Every live pair must still be reachable (this cut keeps the mesh
  // connected), and walking the tables must traverse only live links and
  // routers and reach the destination in a bounded number of hops.
  for (NodeId s = 0; s < mesh.num_nodes(); ++s) {
    for (NodeId d = 0; d < mesh.num_nodes(); ++d) {
      if (!t.router_alive(s) || !t.router_alive(d)) continue;
      ASSERT_TRUE(t.reachable(s, d)) << s << "->" << d;
      NodeId here = s;
      std::uint8_t phase = 0;
      int hops = 0;
      while (here != d) {
        const Port p = t.route(here, d, phase);
        ASSERT_NE(p, Port::Local) << s << "->" << d << " stuck at " << here;
        ASSERT_TRUE(t.link_alive(here, p))
            << s << "->" << d << " crosses the dead link at " << here;
        const NodeId next = mesh.neighbor(here, p);
        ASSERT_NE(next, kInvalidNode);
        ASSERT_TRUE(t.router_alive(next))
            << s << "->" << d << " enters the dead router";
        here = next;
        ASSERT_LT(++hops, 32) << s << "->" << d << " does not terminate";
      }
    }
  }
}

TEST(HardFaultTopology, DisconnectionIsDetected) {
  noc::Topology t(noc::MeshShape{2, 2});
  EXPECT_TRUE(t.kill_router(1));
  EXPECT_TRUE(t.kill_router(2));
  EXPECT_TRUE(t.reachable(0, 0));
  EXPECT_TRUE(t.reachable(3, 3));
  EXPECT_FALSE(t.reachable(0, 3)) << "0 and 3 are in separate islands";
  EXPECT_FALSE(t.reachable(3, 0));
}

TEST(HardFaultNetwork, ReroutesAroundADeadTileAndDropsUnreachable) {
  noc::NocStats stats;
  noc::Network net(NocConfig{}, noc::NiPolicy{}, stats);
  std::vector<CollectingSink> sinks(16);
  for (NodeId n = 0; n < 16; ++n)
    net.register_sink(n, UnitKind::Core, &sinks[n]);
  std::vector<std::uint64_t> doomed;
  net.set_unreachable_handler(
      [&doomed](const noc::PacketPtr& p, Cycle) { doomed.push_back(p->id); });
  Cycle clock = 0;

  // Healthy baseline delivery.
  net.inject(0, make_packet(0, 15, VNet::Response, true, clock, 1), clock);
  ASSERT_TRUE(run_until_quiescent(net, clock, 2000));
  ASSERT_EQ(sinks[15].arrivals.size(), 1u);

  const HardFaultEvent kill{HardFaultKind::Router, 0, 5, 0};
  EXPECT_TRUE(net.apply_hard_fault(kill, clock));
  EXPECT_FALSE(net.apply_hard_fault(kill, clock)) << "already dead";
  EXPECT_TRUE(net.node_dead(5));
  EXPECT_FALSE(net.topology().routing_healthy());
  EXPECT_EQ(stats.routers_killed, 1u);

  // 4 -> 7 rides the dead tile under XY (4,5,6,7 share a row): the packet
  // must arrive intact over a detour instead.
  auto pkt = make_packet(4, 7, VNet::Response, true, clock, 2);
  const BlockBytes truth = pkt->data;
  net.inject(4, std::move(pkt), clock);
  ASSERT_TRUE(run_until_quiescent(net, clock, 2000));
  ASSERT_EQ(sinks[7].arrivals.size(), 1u);
  EXPECT_EQ(sinks[7].arrivals[0].pkt->data, truth);
  EXPECT_GT(stats.reroutes, 0u);

  // A packet addressed to the dead tile is dropped at the source NI and
  // resolved through the unreachable handler, never delivered.
  net.inject(0, make_packet(0, 5, VNet::Response, true, clock, 3), clock);
  ASSERT_TRUE(run_until_quiescent(net, clock, 2000));
  EXPECT_TRUE(sinks[5].arrivals.empty());
  EXPECT_EQ(doomed, (std::vector<std::uint64_t>{3}));
  EXPECT_GT(stats.unreachable_drops, 0u);
}

TEST(HardFaultNetwork, EngineKillFlipsTheNiToBypass) {
  noc::NocStats stats;
  noc::Network net(NocConfig{}, noc::NiPolicy{}, stats);
  std::vector<CollectingSink> sinks(16);
  for (NodeId n = 0; n < 16; ++n)
    net.register_sink(n, UnitKind::Core, &sinks[n]);
  Cycle clock = 0;

  EXPECT_TRUE(net.apply_hard_fault({HardFaultKind::DiscoEngine, 0, 6, 0},
                                   clock));
  EXPECT_EQ(stats.engines_hard_failed, 1u);
  EXPECT_FALSE(net.node_dead(6)) << "the tile keeps forwarding traffic";
  EXPECT_TRUE(net.topology().routing_healthy())
      << "engine deaths never perturb routing";
  EXPECT_FALSE(net.topology().engine_alive(6));

  // Raw traffic through and to the bypassed tile still flows.
  auto pkt = make_packet(4, 6, VNet::Response, true, clock, 1);
  const BlockBytes truth = pkt->data;
  net.inject(4, std::move(pkt), clock);
  ASSERT_TRUE(run_until_quiescent(net, clock, 2000));
  ASSERT_EQ(sinks[6].arrivals.size(), 1u);
  EXPECT_EQ(sinks[6].arrivals[0].pkt->data, truth);
}

}  // namespace
}  // namespace disco
