// Trace-driven core model tests: issue pacing against the profile's memory
// op rate, window-limited stalling, and counter bookkeeping.
#include <gtest/gtest.h>

#include "cmp/system.h"
#include "workload/profile.h"

namespace disco::cmp {
namespace {

TEST(CoreModel, IssueRateTracksProfile) {
  SystemConfig cfg;
  cfg.scheme = Scheme::Ideal;  // fastest misses -> least window throttling
  const auto& profile = workload::profile_by_name("swaptions");
  CmpSystem sys(cfg, profile);
  sys.functional_warmup(8000);
  sys.run(30000);
  const double per_core_rate =
      static_cast<double>(sys.total_core_ops()) / (16.0 * 30000.0);
  // Under a warm cache the issue rate approaches the trace's op rate.
  EXPECT_GT(per_core_rate, profile.mem_op_rate * 0.7);
  EXPECT_LE(per_core_rate, profile.mem_op_rate * 1.1);
}

TEST(CoreModel, LoadsAndStoresSplitLikeWriteRatio) {
  SystemConfig cfg;
  const auto& profile = workload::profile_by_name("x264");  // 0.40 writes
  CmpSystem sys(cfg, profile);
  sys.functional_warmup(3000);
  sys.run(20000);
  std::uint64_t loads = 0, stores = 0;
  for (NodeId n = 0; n < 16; ++n) {
    loads += sys.core(n).loads_issued();
    stores += sys.core(n).stores_issued();
  }
  ASSERT_GT(loads + stores, 1000u);
  EXPECT_NEAR(static_cast<double>(stores) / static_cast<double>(loads + stores),
              profile.write_ratio, 0.06);
}

TEST(CoreModel, OutstandingNeverExceedsWindow) {
  SystemConfig cfg;
  cfg.scheme = Scheme::Baseline;
  CmpSystem sys(cfg, workload::profile_by_name("canneal"));
  sys.functional_warmup(2000);
  for (int chunk = 0; chunk < 50; ++chunk) {
    sys.run(200);
    for (NodeId n = 0; n < 16; ++n) {
      EXPECT_LE(sys.core(n).outstanding(), 8u);
    }
  }
}

TEST(CoreModel, ResetCountersClearsIssueStats) {
  SystemConfig cfg;
  CmpSystem sys(cfg, workload::profile_by_name("vips"));
  sys.functional_warmup(2000);
  sys.run(5000);
  ASSERT_GT(sys.core(0).ops_issued(), 0u);
  sys.reset_stats();
  EXPECT_EQ(sys.core(0).ops_issued(), 0u);
  EXPECT_EQ(sys.core(0).stall_cycles(), 0u);
}

TEST(CoreModel, StallAccountingConsistent) {
  SystemConfig cfg;
  cfg.scheme = Scheme::CC;
  CmpSystem sys(cfg, workload::profile_by_name("dedup"));
  sys.functional_warmup(4000);
  sys.reset_stats();
  sys.run(10000);
  for (NodeId n = 0; n < 16; ++n) {
    const auto& core = sys.core(n);
    EXPECT_EQ(core.stall_cycles(),
              core.window_stalls() + core.blocked_stalls());
  }
}

}  // namespace
}  // namespace disco::cmp
