// Energy/area model tests: monotonicity, scheme-dependent hardware counts,
// and the paper's section-4.3 area arithmetic.
#include <gtest/gtest.h>

#include "energy/energy_model.h"
#include "energy/params.h"

namespace disco::energy {
namespace {

noc::NocStats traffic(std::uint64_t flits) {
  noc::NocStats s;
  s.link_flits = flits;
  s.buffer_writes = flits;
  s.buffer_reads = flits;
  s.crossbar_traversals = flits;
  s.alloc_ops = flits / 2;
  return s;
}

TEST(Energy, MoreTrafficMoreEnergy) {
  SystemConfig cfg;
  cache::CacheStats cs;
  const auto lo = compute_energy(traffic(1000), cs, cfg, 10000, 1.0);
  const auto hi = compute_energy(traffic(5000), cs, cfg, 10000, 1.0);
  EXPECT_GT(hi.noc_dynamic_nj, lo.noc_dynamic_nj);
  EXPECT_EQ(hi.noc_leakage_nj, lo.noc_leakage_nj) << "leakage is time-based";
}

TEST(Energy, LeakageScalesWithTime) {
  SystemConfig cfg;
  cache::CacheStats cs;
  noc::NocStats ns;
  const auto t1 = compute_energy(ns, cs, cfg, 10000, 1.0);
  const auto t2 = compute_energy(ns, cs, cfg, 20000, 1.0);
  EXPECT_NEAR(t2.noc_leakage_nj, 2 * t1.noc_leakage_nj, 1e-9);
  EXPECT_NEAR(t2.l2_leakage_nj, 2 * t1.l2_leakage_nj, 1e-9);
}

TEST(Energy, CompressorUnitsPerScheme) {
  EXPECT_EQ(compressor_units(Scheme::Baseline, 16), 0u);
  EXPECT_EQ(compressor_units(Scheme::CC, 16), 16u);
  EXPECT_EQ(compressor_units(Scheme::CNC, 16), 32u);
  EXPECT_EQ(compressor_units(Scheme::DISCO, 16), 16u);
}

TEST(Energy, CncLeaksMoreCompressorPowerThanDisco) {
  cache::CacheStats cs;
  noc::NocStats ns;
  SystemConfig cnc;
  cnc.scheme = Scheme::CNC;
  SystemConfig disco;
  disco.scheme = Scheme::DISCO;
  const auto e_cnc = compute_energy(ns, cs, cnc, 50000, 1.0);
  const auto e_disco = compute_energy(ns, cs, disco, 50000, 1.0);
  EXPECT_GT(e_cnc.compressor_leakage_nj, e_disco.compressor_leakage_nj);
}

TEST(Energy, DramReportedSeparately) {
  SystemConfig cfg;
  noc::NocStats ns;
  cache::CacheStats cs;
  cs.dram_reads = 100;
  const auto e = compute_energy(ns, cs, cfg, 1000, 1.0);
  EXPECT_GT(e.dram_nj, 0.0);
  // On-chip subsystem energy excludes DRAM.
  cache::CacheStats cs2;
  const auto e2 = compute_energy(ns, cs2, cfg, 1000, 1.0);
  EXPECT_NEAR(e.subsystem_nj(), e2.subsystem_nj(), 1e-9);
}

TEST(Area, DiscoAddsPaperFractionOfRouter) {
  const AreaReport a = compute_area(Scheme::DISCO, 16, 1.0);
  EXPECT_NEAR(a.overhead_vs_router, kDiscoUnitAreaFraction, 1e-9)
      << "section 4.3: +17.2% of the router area";
}

TEST(Area, DiscoUnderOnePercentOfNuca) {
  const AreaReport a = compute_area(Scheme::DISCO, 16, 1.0);
  EXPECT_LT(a.overhead_vs_nuca, 0.01) << "section 4.3: <1% of the 4MB NUCA";
}

TEST(Area, DiscoSavesAboutHalfOfCnc) {
  const AreaReport disco = compute_area(Scheme::DISCO, 16, 1.0);
  const AreaReport cnc = compute_area(Scheme::CNC, 16, 1.0);
  EXPECT_NEAR(disco.compression_mm2 / cnc.compression_mm2, 0.5, 0.05)
      << "section 4.3: DISCO saves about half of CNC's overhead";
}

TEST(Area, ScalesWithMeshSize) {
  const AreaReport a16 = compute_area(Scheme::DISCO, 16, 1.0);
  const AreaReport a64 = compute_area(Scheme::DISCO, 64, 1.0);
  EXPECT_NEAR(a64.compression_mm2 / a16.compression_mm2, 4.0, 1e-9);
  EXPECT_NEAR(a64.overhead_vs_nuca, a16.overhead_vs_nuca, 1e-9)
      << "relative overhead is scale-invariant when the NUCA scales too";
}

TEST(Stats, AccumulatorBasics) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
  a.add(2);
  a.add(4);
  a.add(9);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.mean(), 5.0, 1e-12);
  EXPECT_EQ(a.min(), 2.0);
  EXPECT_EQ(a.max(), 9.0);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(1000);
  EXPECT_LE(h.approx_quantile(0.5), 16u);
  EXPECT_GE(h.approx_quantile(0.95), 512u);
}

}  // namespace
}  // namespace disco::energy
