// Network-interface policy tests: per-scheme NI behaviour in isolation —
// CNC-style inject-compress/eject-decompress, DISCO-style raw-consumer
// decompression, source-queue idle compression, and latency accounting.
#include <gtest/gtest.h>

#include "compress/registry.h"
#include "noc_test_util.h"

namespace disco::noc {
namespace {

using testutil::CollectingSink;
using testutil::make_packet;
using testutil::run_until_quiescent;

class NiPolicyFixture : public ::testing::Test {
 protected:
  void build(NiPolicy policy) {
    net_ = std::make_unique<Network>(NocConfig{}, policy, stats_);
    sinks_.clear();
    sinks_.resize(16);
    bank_sinks_.clear();
    for (NodeId n = 0; n < 16; ++n) {
      net_->register_sink(n, UnitKind::Core, &sinks_[n]);
      net_->register_sink(n, UnitKind::L2Bank, &bank_sinks_.emplace_back());
    }
  }

  std::unique_ptr<compress::Algorithm> algo_ = compress::make_algorithm("delta");
  NocStats stats_;
  std::unique_ptr<Network> net_;
  std::vector<CollectingSink> sinks_;
  std::deque<CollectingSink> bank_sinks_;
  Cycle clock_ = 0;
};

TEST_F(NiPolicyFixture, CncCompressesOnInjectAndDecompressesOnEject) {
  NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_on_eject_all = true;
  p.comp_cycles = 1;
  p.decomp_cycles = 3;
  build(p);

  auto pkt = make_packet(0, 15, VNet::Response, true, clock_, 1);
  const BlockBytes truth = pkt->data;
  net_->inject(0, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  ASSERT_EQ(sinks_[15].arrivals.size(), 1u);
  EXPECT_EQ(sinks_[15].arrivals[0].pkt->data, truth);
  EXPECT_FALSE(sinks_[15].arrivals[0].pkt->compressed());
  EXPECT_EQ(stats_.ni_compressions, 1u);
  EXPECT_EQ(stats_.ni_decompressions, 1u);
  EXPECT_EQ(stats_.exposed_comp_cycles, 1u);
  EXPECT_EQ(stats_.exposed_decomp_cycles, 3u);
  // Compressed on the wire: far fewer flits than the raw 8.
  EXPECT_LT(stats_.flits_injected, 8u);
}

TEST_F(NiPolicyFixture, CncDecompressDelaysDelivery) {
  NiPolicy with;
  with.algo = algo_.get();
  with.compress_on_inject = true;
  with.decompress_on_eject_all = true;
  with.decomp_cycles = 3;
  build(with);
  net_->inject(0, make_packet(0, 15, VNet::Response, true, clock_, 1), clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  const Cycle with_lat =
      sinks_[15].arrivals[0].when - sinks_[15].arrivals[0].pkt->injected;

  NiPolicy zero = with;
  zero.decomp_cycles = 0;
  stats_ = NocStats{};
  clock_ = 0;
  build(zero);
  net_->inject(0, make_packet(0, 15, VNet::Response, true, clock_, 2), clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  const Cycle zero_lat =
      sinks_[15].arrivals[0].when - sinks_[15].arrivals[0].pkt->injected;
  EXPECT_EQ(with_lat, zero_lat + 3);
}

TEST_F(NiPolicyFixture, RawConsumerPolicyLeavesBankPacketsCompressed) {
  NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_for_raw_consumers = true;
  build(p);

  auto to_core = make_packet(0, 15, VNet::Response, true, clock_, 1);
  auto to_bank = make_packet(0, 14, VNet::Response, true, clock_, 2);
  to_bank->dst_unit = UnitKind::L2Bank;
  net_->inject(0, to_core, clock_);
  net_->inject(0, to_bank, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 500));

  ASSERT_EQ(sinks_[15].arrivals.size(), 1u);
  EXPECT_FALSE(sinks_[15].arrivals[0].pkt->compressed())
      << "core consumers get raw data";
  ASSERT_EQ(bank_sinks_[14].arrivals.size(), 1u);
  EXPECT_TRUE(bank_sinks_[14].arrivals[0].pkt->compressed())
      << "bank consumers keep the wire form for direct storage";
}

TEST_F(NiPolicyFixture, SourceQueueCompressionKicksInWhenBackedUp) {
  NiPolicy p;
  p.algo = algo_.get();
  p.decompress_for_raw_consumers = true;
  p.compress_when_source_queued = true;
  p.comp_cycles = 1;
  p.decomp_cycles = 3;
  build(p);

  // Flood one NI so its injection queue backs up.
  for (std::uint64_t id = 1; id <= 20; ++id) {
    net_->inject(0, make_packet(0, 15, VNet::Response, true, clock_, id), clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 5000));
  EXPECT_EQ(sinks_[15].arrivals.size(), 20u);
  EXPECT_GT(stats_.source_compressions, 10u)
      << "queued packets must be compressed while waiting";
  for (const auto& a : sinks_[15].arrivals) {
    EXPECT_FALSE(a.pkt->compressed());
  }
}

TEST_F(NiPolicyFixture, IncompressiblePacketMarkedAndTravelsRaw) {
  NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_on_eject_all = true;
  build(p);

  auto pkt = make_packet(0, 15, VNet::Response, true, clock_, 1);
  Rng rng(555);
  for (auto& byte : pkt->data) byte = static_cast<std::uint8_t>(rng.next_u64());
  net_->inject(0, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  EXPECT_EQ(stats_.flits_injected, 8u) << "raw fallback keeps full size";
  EXPECT_EQ(sinks_[15].arrivals.at(0).pkt->data, pkt->data);
}

}  // namespace
}  // namespace disco::noc
