// Infrastructure tests: RNG determinism/quality smoke checks, table
// printing, config summaries, and scheme-setup wiring.
#include <gtest/gtest.h>

#include <sstream>

#include "cmp/scheme.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "compress/registry.h"

namespace disco {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformityRough) {
  Rng rng(123);
  int buckets[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[b], n / 8, n / 8 * 0.1) << "bucket " << b;
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, SplitmixIsStatelessHash) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Rng, SplitmixStreamDerivationSeparatesCells) {
  // The sweep engine's per-cell seeds: pure function of (base, index),
  // distinct across indices and across bases.
  EXPECT_EQ(splitmix64(1, 0), splitmix64(1, 0));
  EXPECT_NE(splitmix64(1, 0), splitmix64(1, 1));
  EXPECT_NE(splitmix64(1, 7), splitmix64(2, 7));
  // Not the trivial composition of either single-arg hash.
  EXPECT_NE(splitmix64(1, 0), splitmix64(1));
  EXPECT_NE(splitmix64(1, 0), splitmix64(0));
}

TEST(Histogram, QuantileEdgeCases) {
  // Bucket convention: add() files v into the bucket whose exclusive upper
  // bound 2^i is the smallest power of two > v; approx_quantile reports
  // that upper bound for the sample of rank ceil(q * count).
  Histogram h;
  h.add(0);    // bucket 0 -> reports 1
  h.add(3);    // bucket 2 -> reports 4
  h.add(3);
  h.add(100);  // bucket 7 -> reports 128
  EXPECT_EQ(h.approx_quantile(0.0), 1u) << "q=0 is the minimum's bucket";
  EXPECT_EQ(h.approx_quantile(0.5), 4u);
  EXPECT_EQ(h.approx_quantile(0.99), 128u);
  EXPECT_EQ(h.approx_quantile(1.0), 128u) << "q=1 is the maximum's bucket";
  // Out-of-range q clamps instead of under/overflowing the rank.
  EXPECT_EQ(h.approx_quantile(-0.5), 1u);
  EXPECT_EQ(h.approx_quantile(2.0), 128u);
}

TEST(Histogram, QuantileSingleSampleAndEmpty) {
  Histogram empty;
  EXPECT_EQ(empty.approx_quantile(0.5), 0u);
  Histogram one;
  one.add(9);  // bucket (8..15] -> reports 16
  for (const double q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_EQ(one.approx_quantile(q), 16u) << "q=" << q;
}

TEST(Table, RendersAlignedGrid) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("| 22222 |"), std::string::npos);
  EXPECT_EQ(out.find('\t'), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::pct(0.1234), "12.3%");
}

TEST(Config, SummaryMentionsKeyParameters) {
  SystemConfig cfg;
  const std::string s = cfg.summary();
  EXPECT_NE(s.find("4x4"), std::string::npos);
  EXPECT_NE(s.find("4MB"), std::string::npos);
  EXPECT_NE(s.find("DISCO"), std::string::npos);
}

TEST(Config, BankSizeDerived) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.l2_bank_size_bytes(), 256u * 1024u);
  cfg.noc.mesh_cols = 8;
  cfg.noc.mesh_rows = 8;
  cfg.l2.total_size_bytes = 16ULL << 20;
  EXPECT_EQ(cfg.l2_bank_size_bytes(), 256u * 1024u);
}

TEST(SchemeSetup, WiringMatchesDesignTable) {
  auto algo = compress::make_algorithm("delta");
  const auto lat = algo->latency();

  const auto base = cmp::make_scheme_setup(Scheme::Baseline, *algo);
  EXPECT_FALSE(base.bank.store_compressed);
  EXPECT_FALSE(base.use_disco_units);

  const auto cc = cmp::make_scheme_setup(Scheme::CC, *algo);
  EXPECT_TRUE(cc.bank.store_compressed);
  EXPECT_EQ(cc.bank.read_decomp_cycles, lat.decomp_cycles);
  EXPECT_FALSE(cc.bank.inject_stored_wire);
  EXPECT_FALSE(cc.ni.compress_on_inject);

  const auto cnc = cmp::make_scheme_setup(Scheme::CNC, *algo);
  EXPECT_TRUE(cnc.ni.compress_on_inject);
  EXPECT_TRUE(cnc.ni.decompress_on_eject_all);
  EXPECT_EQ(cnc.ni.decomp_cycles, lat.decomp_cycles);

  const auto dsc = cmp::make_scheme_setup(Scheme::DISCO, *algo);
  EXPECT_TRUE(dsc.use_disco_units);
  EXPECT_TRUE(dsc.bank.inject_stored_wire);
  EXPECT_EQ(dsc.bank.read_decomp_cycles, 0u);
  EXPECT_TRUE(dsc.ni.decompress_for_raw_consumers);
  EXPECT_TRUE(dsc.ni.compress_when_source_queued);

  const auto ideal = cmp::make_scheme_setup(Scheme::Ideal, *algo);
  EXPECT_EQ(ideal.ni.comp_cycles, 0u);
  EXPECT_EQ(ideal.ni.decomp_cycles, 0u);
  EXPECT_FALSE(ideal.use_disco_units);
}

TEST(SchemeSetup, TimingOverrideApplies) {
  auto algo = compress::make_algorithm("sc2");
  CompressionTimingConfig timing;
  timing.override_algorithm = true;
  timing.comp_cycles = 0;
  timing.decomp_cycles = 0;
  const auto cnc = cmp::make_scheme_setup(Scheme::CNC, *algo, timing);
  EXPECT_EQ(cnc.ni.comp_cycles, 0u);
  EXPECT_EQ(cnc.bank.read_decomp_cycles, 0u);
}

TEST(Types, ToStringCoversEnums) {
  EXPECT_STREQ(to_string(Scheme::DISCO), "DISCO");
  EXPECT_STREQ(to_string(UnitKind::MemCtrl), "MemCtrl");
  EXPECT_STREQ(to_string(VNet::Coherence), "Coherence");
}

}  // namespace
}  // namespace disco
