// Overflow regression tests for cycle-indexed statistics. Long saturated
// runs accumulate per-packet idle cycles and latency samples far past
// 2^32; every counter on that path must be 64-bit. Packet::idle_cycles was
// the one 32-bit holdout (it silently wrapped); these tests pin the widened
// types so a refactor cannot narrow them again.
#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "noc/noc_stats.h"
#include "noc/packet.h"

namespace disco {
namespace {

TEST(StatsOverflow, PacketIdleCyclesIsSixtyFourBit) {
  static_assert(std::is_same_v<decltype(noc::Packet::idle_cycles),
                               std::uint64_t>,
                "Packet::idle_cycles must not be narrowed back to 32 bits");
  noc::Packet p;
  p.idle_cycles = (1ULL << 33) + 5;  // would wrap to 5 as uint32_t
  p.idle_cycles += 1ULL << 33;
  EXPECT_EQ(p.idle_cycles, (1ULL << 34) + 5);
}

TEST(StatsOverflow, HistogramTakesBeyond32BitSamples) {
  static_assert(std::is_same_v<decltype(std::declval<const Histogram&>()
                                            .bucket(0)),
                               std::uint64_t>);
  Histogram h;
  const std::uint64_t big = (1ULL << 40) + 123;
  h.add(big);
  h.add(3);
  EXPECT_EQ(h.summary().count(), 2u);
  EXPECT_DOUBLE_EQ(h.summary().max(), static_cast<double>(big));
  // The large sample clamps into the top bucket; a 32-bit wrap would have
  // dropped it into a low bucket (2^40 + 123 wraps to 123, bucket 7).
  EXPECT_EQ(h.bucket(Histogram::num_buckets() - 1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(7), 0u);
  EXPECT_EQ(h.approx_quantile(1.0),
            1ULL << (Histogram::num_buckets() - 1));
}

TEST(StatsOverflow, AccumulatorSumsBeyond32Bits) {
  Accumulator a;
  for (int i = 0; i < 64; ++i) a.add(static_cast<double>(1ULL << 32));
  EXPECT_EQ(a.count(), 64u);
  EXPECT_DOUBLE_EQ(a.sum(), 64.0 * 4294967296.0);
}

TEST(StatsOverflow, QueueingHistogramAcceptsWideIdleCounts) {
  // The NI records Packet::idle_cycles into this histogram at delivery; a
  // saturated multi-million-cycle run can exceed 2^32 accumulated stalls.
  noc::NocStats s;
  s.queueing_cycles.add((1ULL << 36) + 7);
  EXPECT_EQ(s.queueing_cycles.summary().count(), 1u);
  // The exact value survives in the accumulator; the bucket clamps to the
  // histogram's top bin instead of wrapping into a low one.
  EXPECT_DOUBLE_EQ(s.queueing_cycles.summary().max(),
                   static_cast<double>((1ULL << 36) + 7));
  EXPECT_EQ(s.queueing_cycles.bucket(Histogram::num_buckets() - 1), 1u);
}

}  // namespace
}  // namespace disco
