// Golden-trace regression tests: every scenario in the golden library must
// reproduce its checked-in canonical trace byte-for-byte (ignoring blank
// and '#' comment lines). A mismatch means router arbitration, credit
// flow, DISCO scheduling or cache fill order changed; if the change is
// intentional, regenerate with
//   ./tools/trace_record --all --out <repo>/tests/golden
// and review the diff.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/golden.h"

namespace disco {
namespace {

std::vector<std::string> event_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(DISCO_TEST_DATA_DIR) + "/golden/" + name + ".trace";
}

class GoldenTrace : public ::testing::TestWithParam<sim::GoldenScenario> {};

TEST_P(GoldenTrace, MatchesCheckedInReference) {
  const auto& scenario = GetParam();
  std::ifstream is(golden_path(scenario.name));
  ASSERT_TRUE(is) << "missing golden file for " << scenario.name
                  << " — regenerate with tools/trace_record";
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto expect = event_lines(buf.str());
  ASSERT_FALSE(expect.empty()) << "empty golden file for " << scenario.name;

  const auto run = scenario.run();
  ASSERT_TRUE(run.invariants.clean())
      << scenario.name << ": " << run.invariants.first_violation;
  const auto actual = event_lines(run.trace);

  ASSERT_EQ(actual.size(), expect.size())
      << scenario.name << ": event count changed";
  for (std::size_t i = 0; i < expect.size(); ++i) {
    ASSERT_EQ(actual[i], expect[i])
        << scenario.name << ": first divergence at event " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, GoldenTrace, ::testing::ValuesIn(sim::golden_scenarios()),
    [](const ::testing::TestParamInfo<sim::GoldenScenario>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace disco
