// Randomized fuzz of the segmented compressed array: arbitrary sequences
// of install / erase / resize / touch with a shadow model, checking the
// segment-accounting invariants after every operation.
#include <gtest/gtest.h>

#include <map>

#include "cache/arrays.h"
#include "common/rng.h"

namespace disco::cache {
namespace {

TEST(SegmentedFuzz, AccountingMatchesShadowModel) {
  SegmentedArray arr(64 * 1024, 8, 4, /*index_shift=*/0);
  Rng rng(2024);
  // Shadow: addr -> segments.
  std::map<Addr, std::uint32_t> shadow;
  const auto total_capacity = [&] {
    return static_cast<std::uint64_t>(arr.sets()) * arr.segment_capacity();
  };

  Cycle now = 1;
  for (int step = 0; step < 20000; ++step) {
    const Addr addr = rng.next_below(4096) * kBlockBytes;
    const auto it = shadow.find(addr);
    const int action = static_cast<int>(rng.next_below(4));
    ++now;

    if (it == shadow.end()) {
      const auto segs = 1 + static_cast<std::uint32_t>(rng.next_below(8));
      if (arr.fits(addr, segs)) {
        arr.install(addr, segs, now);
        shadow[addr] = segs;
      } else {
        // Full set: evict the array's victim to stay in sync.
        L2Line* victim = arr.lru_victim(addr, addr);
        if (victim != nullptr) {
          shadow.erase(victim->addr);
          arr.erase(victim->addr);
        }
      }
    } else if (action == 0) {
      arr.erase(addr);
      shadow.erase(it);
    } else if (action == 1) {
      L2Line* line = arr.lookup(addr);
      ASSERT_NE(line, nullptr);
      const auto new_segs = 1 + static_cast<std::uint32_t>(rng.next_below(8));
      const std::uint32_t extra =
          new_segs > line->segments ? new_segs - line->segments : 0;
      if (arr.free_segments(addr) >= extra) {
        arr.resize(*line, new_segs);
        it->second = new_segs;
      }
    } else {
      L2Line* line = arr.lookup(addr);
      ASSERT_NE(line, nullptr);
      line->lru = now;
    }

    // Invariants after every step.
    if (step % 256 == 0) {
      std::uint64_t shadow_segs = 0;
      for (const auto& [a, s] : shadow) shadow_segs += s;
      EXPECT_EQ(arr.used_segments(), shadow_segs);
      EXPECT_EQ(arr.valid_lines(), shadow.size());
      EXPECT_LE(arr.used_segments(), total_capacity());
    }
  }

  // Final exact sweep: every shadow line present with the right size.
  for (const auto& [addr, segs] : shadow) {
    const L2Line* line = arr.lookup(addr);
    ASSERT_NE(line, nullptr) << std::hex << addr;
    EXPECT_EQ(line->segments, segs);
  }
}

}  // namespace
}  // namespace disco::cache
