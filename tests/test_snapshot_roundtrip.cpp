// Mid-cell checkpointing: snapshot primitives, per-component roundtrips and
// the full-system determinism contract. The core properties:
//   - save -> restore -> save produces byte-identical snapshots, and
//   - a restored system's next K cycles are trace-identical to the
//     uninterrupted system's,
// so a SIGKILLed-and-resumed cell emits byte-identical metrics, traces and
// invariant summaries versus a run that never died.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cmp/system.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "common/stats.h"
#include "sim/experiment.h"
#include "sim/wire.h"
#include "trace/trace.h"
#include "workload/profile.h"
#include "workload/trace_gen.h"

namespace disco {
namespace {

/// Unique scratch dir per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("disco-snap-" + tag + "-" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

// ---------------------------------------------------------------------------
// Primitives + envelope
// ---------------------------------------------------------------------------

TEST(SnapshotPrimitives, WriterReaderRoundTrip) {
  snap::Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.b(true);
  w.b(false);
  w.f64(-0.0);
  w.f64(3.14159);
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  w.bytes(blob);
  w.str("hello\0world");
  const std::uint8_t fixed[3] = {9, 8, 7};
  w.raw(std::span<const std::uint8_t>(fixed, 3));

  snap::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.b());
  EXPECT_FALSE(r.b());
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero)) << "bit pattern must survive";
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_EQ(r.str(), "hello\0world");
  std::uint8_t out[3]{};
  r.raw(std::span<std::uint8_t>(out, 3));
  EXPECT_EQ(out[0], 9);
  EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotPrimitives, TruncatedReadThrows) {
  snap::Writer w;
  w.u32(7);
  snap::Reader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), snap::SnapshotError);
  EXPECT_THROW(r.expect_end(), snap::SnapshotError);
}

TEST(SnapshotEnvelope, FileRoundTripAndAtomicity) {
  ScratchDir dir("envelope");
  const std::string path = dir.file("s.bin");
  snap::Writer w;
  for (std::uint64_t i = 0; i < 100; ++i) w.u64(i * 0x9E3779B97F4A7C15ull);
  snap::write_snapshot_file(path, w.data());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "tmp file must be renamed away";
  EXPECT_EQ(snap::read_snapshot_file(path), w.data());

  // Overwrite supersedes in place: one good snapshot file, never two.
  snap::Writer w2;
  w2.u64(1);
  snap::write_snapshot_file(path, w2.data());
  EXPECT_EQ(snap::read_snapshot_file(path), w2.data());

  EXPECT_THROW(snap::read_snapshot_file(dir.file("missing.bin")),
               snap::SnapshotError);
}

// ---------------------------------------------------------------------------
// Per-component roundtrips: restored state continues the exact stream
// ---------------------------------------------------------------------------

TEST(ComponentSnapshot, RngStreamContinuesExactly) {
  Rng a(123);
  for (int i = 0; i < 1000; ++i) a.next_u64();

  snap::Writer w;
  for (const std::uint64_t s : a.state()) w.u64(s);
  snap::Reader r(w.data());
  Rng b(999);  // different seed: state must come wholly from the snapshot
  std::array<std::uint64_t, 4> st{};
  for (auto& v : st) v = r.u64();
  b.set_state(st);

  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(ComponentSnapshot, TraceGeneratorStreamContinuesExactly) {
  const auto& profile = workload::profile_by_name("canneal");
  workload::TraceGenerator a(profile, 3, 42);
  for (int i = 0; i < 500; ++i) a.next();

  snap::Writer w;
  a.save_state(w);
  workload::TraceGenerator b(profile, 3, 42);
  snap::Reader r(w.data());
  b.restore_state(r);
  EXPECT_NO_THROW(r.expect_end());

  for (int i = 0; i < 500; ++i) {
    const auto oa = a.next();
    const auto ob = b.next();
    EXPECT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(oa.is_store, ob.is_store);
    EXPECT_EQ(oa.gap, ob.gap);
  }
}

TEST(ComponentSnapshot, StatsRoundTripIsByteIdentical) {
  Accumulator acc;
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    acc.add(rng.next_double() * 1e6 - 5e5);
    h.add(rng.next_below(1 << 20));
  }
  snap::Writer w1;
  acc.save_state(w1);
  h.save_state(w1);

  Accumulator acc2;
  Histogram h2;
  snap::Reader r(w1.data());
  acc2.restore_state(r);
  h2.restore_state(r);
  EXPECT_NO_THROW(r.expect_end());

  snap::Writer w2;
  acc2.save_state(w2);
  h2.save_state(w2);
  EXPECT_EQ(w1.data(), w2.data());
  EXPECT_EQ(acc.mean(), acc2.mean());
  EXPECT_EQ(h.approx_quantile(0.9), h2.approx_quantile(0.9));
}

TEST(ComponentSnapshot, TracerRingRoundTrip) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 64;  // force wrap-around
  trace::Tracer a(cfg);
  for (std::uint64_t i = 0; i < 200; ++i)
    a.emit(i, static_cast<NodeId>(i % 16), trace::Event::BufferWrite, 1, 2,
           0x1000 + i, static_cast<std::int64_t>(i));

  snap::Writer w;
  a.save_state(w);
  trace::Tracer b(cfg);
  snap::Reader r(w.data());
  b.restore_state(r);
  EXPECT_NO_THROW(r.expect_end());

  EXPECT_EQ(a.total_events(), b.total_events());
  std::ostringstream ca, cb;
  a.write_canonical(ca);
  b.write_canonical(cb);
  EXPECT_EQ(ca.str(), cb.str());

  // The restored ring keeps rotating identically.
  a.emit(500, 1, trace::Event::NiDeliver, 0, 0, 1, 2);
  b.emit(500, 1, trace::Event::NiDeliver, 0, 0, 1, 2);
  std::ostringstream ca2, cb2;
  a.write_canonical(ca2);
  b.write_canonical(cb2);
  EXPECT_EQ(ca2.str(), cb2.str());
}

// ---------------------------------------------------------------------------
// Full system: save -> restore -> save byte identity + trace-identical run
// ---------------------------------------------------------------------------

SystemConfig traced_config() {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.seed = 77;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.ring_capacity = 1 << 14;
  // Soft faults exercise the injector RNG, CRC/NACK/retransmit machinery and
  // the NI recovery scans — the states most likely to drift on restore.
  cfg.fault.enabled = true;
  cfg.fault.link_bit_flip_rate = 2e-4;
  cfg.fault.flit_drop_rate = 1e-4;
  return cfg;
}

TEST(SystemSnapshot, SaveRestoreSaveIsByteIdentical) {
  ScratchDir dir("sys-roundtrip");
  const auto& profile = workload::profile_by_name("canneal");
  const SystemConfig cfg = traced_config();

  cmp::CmpSystem sys(cfg, profile);
  sys.functional_warmup(2000);
  sys.run(6000);
  const std::string f1 = dir.file("a.bin");
  sys.save_snapshot(f1, 4000, 0xC0FFEE);

  cmp::CmpSystem restored(cfg, profile);
  EXPECT_EQ(restored.restore_snapshot(f1, 0xC0FFEE), 4000u);
  const std::string f2 = dir.file("b.bin");
  restored.save_snapshot(f2, 4000, 0xC0FFEE);

  EXPECT_EQ(snap::read_snapshot_file(f1), snap::read_snapshot_file(f2))
      << "save -> restore -> save must reproduce identical bytes";
}

TEST(SystemSnapshot, RestoredRunIsTraceIdenticalForNextKCycles) {
  ScratchDir dir("sys-continue");
  const auto& profile = workload::profile_by_name("swaptions");
  const SystemConfig cfg = traced_config();

  cmp::CmpSystem a(cfg, profile);
  a.functional_warmup(2000);
  a.run(5000);
  const std::string path = dir.file("mid.bin");
  a.save_snapshot(path, 0, 1);

  cmp::CmpSystem b(cfg, profile);
  b.restore_snapshot(path, 1);
  ASSERT_EQ(b.now(), a.now());

  constexpr Cycle kContinue = 4000;
  a.run(kContinue);
  b.run(kContinue);

  EXPECT_EQ(a.total_core_ops(), b.total_core_ops());
  EXPECT_EQ(a.noc_stats().link_flits, b.noc_stats().link_flits);
  std::ostringstream ta, tb;
  a.tracer()->write_canonical(ta);
  b.tracer()->write_canonical(tb);
  EXPECT_EQ(ta.str(), tb.str())
      << "restored system diverged from the uninterrupted one";
  // Soft faults drop flits, and a dropped flit is *supposed* to trip the
  // conservation invariant (see TraceSystem.SeededFaultRunTripsInvariants),
  // so we don't expect clean() here — we expect the restored system to
  // report the exact same violations as the uninterrupted one.
  ASSERT_NE(a.invariant_checker(), nullptr);
  const auto& sa = a.invariant_checker()->summary();
  const auto& sb = b.invariant_checker()->summary();
  EXPECT_EQ(sa.events_checked, sb.events_checked);
  EXPECT_EQ(sa.cycles_checked, sb.cycles_checked);
  EXPECT_EQ(sa.violations, sb.violations);
  EXPECT_EQ(sa.conservation_violations, sb.conservation_violations);
  EXPECT_EQ(sa.credit_violations, sb.credit_violations);
  EXPECT_EQ(sa.first_violation, sb.first_violation);
}

TEST(SystemSnapshot, MismatchedDigestAndGeometryAreRejected) {
  ScratchDir dir("sys-reject");
  const auto& profile = workload::profile_by_name("canneal");
  const SystemConfig cfg = traced_config();
  cmp::CmpSystem sys(cfg, profile);
  sys.functional_warmup(500);
  sys.run(1000);
  const std::string path = dir.file("s.bin");
  sys.save_snapshot(path, 100, 42);

  cmp::CmpSystem other(cfg, profile);
  EXPECT_THROW(other.restore_snapshot(path, 43), snap::SnapshotError)
      << "a snapshot must never restore into a different cell";

  SystemConfig small = cfg;
  small.noc.mesh_cols = 2;
  small.noc.mesh_rows = 2;
  cmp::CmpSystem tiny(small, profile);
  EXPECT_THROW(tiny.restore_snapshot(path, 42), snap::SnapshotError)
      << "geometry mismatches must be rejected, not crash";
}

// ---------------------------------------------------------------------------
// run_cell chunked measurement: identical results, real mid-cell resume
// ---------------------------------------------------------------------------

sim::RunOptions tiny_run() {
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 2000;
  opt.measure_cycles = 8000;
  return opt;
}

TEST(ChunkedRunCell, SnapshotIntervalDoesNotChangeResults) {
  ScratchDir dir("chunked");
  const auto& profile = workload::profile_by_name("canneal");
  const SystemConfig cfg = traced_config();

  const sim::CellResult plain = sim::run_cell(cfg, profile, tiny_run());

  sim::RunOptions chunked = tiny_run();
  chunked.snapshot_interval = 2500;  // 4 uneven chunks
  chunked.snapshot_path = dir.file("snap.bin");
  std::uint64_t resumed = 99;
  chunked.resumed_from_cycles = &resumed;
  const sim::CellResult r = sim::run_cell(cfg, profile, chunked);

  EXPECT_EQ(resumed, 0u) << "no prior snapshot: must run from cycle 0";
  EXPECT_EQ(sim::wire::encode_result(plain), sim::wire::encode_result(r))
      << "chunked measurement must be bit-identical to a single run() call";
}

TEST(ChunkedRunCell, ResumesFromSnapshotByteIdentically) {
  ScratchDir dir("resume");
  const auto& profile = workload::profile_by_name("swaptions");
  const SystemConfig cfg = traced_config();

  sim::RunOptions opt = tiny_run();
  opt.snapshot_interval = 3000;
  opt.snapshot_path = dir.file("snap.bin");
  const sim::CellResult first = sim::run_cell(cfg, profile, opt);
  // The run completed, leaving its last mid-cell snapshot (at 6000 of 8000)
  // behind; a rerun must adopt it and still produce identical output.
  ASSERT_TRUE(std::filesystem::exists(opt.snapshot_path));

  std::uint64_t resumed = 0;
  opt.resumed_from_cycles = &resumed;
  const sim::CellResult second = sim::run_cell(cfg, profile, opt);
  EXPECT_EQ(resumed, 6000u);
  EXPECT_EQ(sim::wire::encode_result(first), sim::wire::encode_result(second))
      << "a resumed cell must be byte-identical to the from-zero run";
}

TEST(ChunkedRunCell, ForeignSnapshotFallsBackToFromZeroRun) {
  ScratchDir dir("foreign");
  const auto& profile = workload::profile_by_name("canneal");
  SystemConfig cfg = traced_config();

  sim::RunOptions opt = tiny_run();
  opt.snapshot_interval = 3000;
  opt.snapshot_path = dir.file("snap.bin");
  sim::run_cell(cfg, profile, opt);  // leaves a snapshot for seed 77

  cfg.seed = 78;  // different cell digest now
  const sim::CellResult clean = sim::run_cell(cfg, profile, tiny_run());
  std::uint64_t resumed = 99;
  opt.resumed_from_cycles = &resumed;
  const sim::CellResult r = sim::run_cell(cfg, profile, opt);
  EXPECT_EQ(resumed, 0u) << "digest mismatch must fall back to cycle 0";
  EXPECT_EQ(sim::wire::encode_result(clean), sim::wire::encode_result(r));
}

}  // namespace
}  // namespace disco
