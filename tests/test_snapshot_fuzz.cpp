// Snapshot + wire corruption fuzzing: mutate valid snapshot files and
// manifest/pipe payloads — bit flips, truncations, zeroed spans — and assert
// every malformed input surfaces as a structured error (snap::SnapshotError
// / std::runtime_error), never UB, a crash, or a silently-accepted restore.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cmp/system.h"
#include "common/rng.h"
#include "common/snapshot.h"
#include "sim/experiment.h"
#include "sim/wire.h"
#include "workload/profile.h"

namespace disco {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("disco-snapfuzz-" + tag + "-" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Build one real full-system snapshot to mutate.
std::vector<std::uint8_t> make_valid_snapshot(const std::string& path) {
  SystemConfig cfg;
  cfg.seed = 11;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.ring_capacity = 4096;
  const auto& profile = workload::profile_by_name("canneal");
  cmp::CmpSystem sys(cfg, profile);
  sys.functional_warmup(1000);
  sys.run(3000);
  sys.save_snapshot(path, 1500, 7);
  return slurp(path);
}

TEST(SnapshotFuzz, BitFlipsNeverCrashAndNeverRestore) {
  ScratchDir dir("bitflip");
  const std::string good = dir.file("good.bin");
  const std::vector<std::uint8_t> valid = make_valid_snapshot(good);
  ASSERT_GT(valid.size(), 64u);

  SystemConfig cfg;
  cfg.seed = 11;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.ring_capacity = 4096;
  const auto& profile = workload::profile_by_name("canneal");

  Rng rng(0xF00D);
  const std::string mutated = dir.file("mutated.bin");
  for (int trial = 0; trial < 150; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t pos = rng.next_below(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    spit(mutated, bytes);

    cmp::CmpSystem sys(cfg, profile);
    // Every single-bit flip lands in the magic, version, length, CRC or the
    // checksummed payload — all of which must be rejected structurally.
    EXPECT_THROW(sys.restore_snapshot(mutated, 7), snap::SnapshotError)
        << "flipped bit " << pos << " was silently accepted";
  }
}

TEST(SnapshotFuzz, TruncationsNeverCrash) {
  ScratchDir dir("trunc");
  const std::string good = dir.file("good.bin");
  const std::vector<std::uint8_t> valid = make_valid_snapshot(good);

  SystemConfig cfg;
  cfg.seed = 11;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.ring_capacity = 4096;
  const auto& profile = workload::profile_by_name("canneal");

  Rng rng(0xBEEF);
  const std::string mutated = dir.file("mutated.bin");
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t keep = rng.next_below(valid.size());
    spit(mutated, std::vector<std::uint8_t>(valid.begin(),
                                            valid.begin() +
                                                static_cast<long>(keep)));
    cmp::CmpSystem sys(cfg, profile);
    EXPECT_THROW(sys.restore_snapshot(mutated, 7), snap::SnapshotError);
  }
  spit(mutated, {});
  cmp::CmpSystem sys(cfg, profile);
  EXPECT_THROW(sys.restore_snapshot(mutated, 7), snap::SnapshotError);
}

TEST(SnapshotFuzz, ZeroedSpansAndGarbageNeverCrash) {
  ScratchDir dir("spans");
  const std::string good = dir.file("good.bin");
  std::vector<std::uint8_t> valid = make_valid_snapshot(good);

  SystemConfig cfg;
  cfg.seed = 11;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.ring_capacity = 4096;
  const auto& profile = workload::profile_by_name("canneal");

  Rng rng(0xCAFE);
  const std::string mutated = dir.file("mutated.bin");
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::uint8_t> bytes = valid;
    const std::size_t start = rng.next_below(bytes.size());
    const std::size_t len =
        std::min<std::size_t>(1 + rng.next_below(256), bytes.size() - start);
    for (std::size_t i = 0; i < len; ++i) bytes[start + i] = 0;
    // Zeroing a span that was already all zeros is the identity mutation;
    // that file is still valid and *should* restore.
    if (bytes == valid) continue;
    spit(mutated, bytes);
    cmp::CmpSystem sys(cfg, profile);
    EXPECT_THROW(sys.restore_snapshot(mutated, 7), snap::SnapshotError);
  }

  // Pure garbage of assorted sizes.
  for (const std::size_t n : {1ul, 3ul, 16ul, 20ul, 4096ul}) {
    std::vector<std::uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    spit(mutated, bytes);
    cmp::CmpSystem sys(cfg, profile);
    EXPECT_THROW(sys.restore_snapshot(mutated, 7), snap::SnapshotError);
  }
}

// ---------------------------------------------------------------------------
// Wire-format (pipe payload / manifest line) mutation fuzzing
// ---------------------------------------------------------------------------

TEST(WireFuzz, MutatedResultPayloadsNeverCrash) {
  sim::CellResult r;
  r.workload = "canneal";
  r.algorithm = "delta";
  r.scheme = Scheme::DISCO;
  r.measured_cycles = 100000;
  r.avg_nuca_latency = 23.75;
  r.trace_text = "1 2 buffer_write 0 0 99 3\n";
  const std::string valid = sim::wire::encode_result(r);
  ASSERT_NO_THROW(sim::wire::decode_result(sim::wire::parse_object(valid)));

  Rng rng(0xD00F);
  for (int trial = 0; trial < 500; ++trial) {
    std::string s = valid;
    switch (rng.next_below(3)) {
      case 0:  // bit flip
        s[rng.next_below(s.size())] ^=
            static_cast<char>(1u << rng.next_below(8));
        break;
      case 1:  // truncation
        s.resize(rng.next_below(s.size()));
        break;
      default:  // splice a random printable character
        s.insert(rng.next_below(s.size()),
                 1, static_cast<char>(' ' + rng.next_below(95)));
        break;
    }
    // Either parses to an equivalent-shaped object or throws a structured
    // error; it must never crash or corrupt memory.
    try {
      (void)sim::wire::decode_result(sim::wire::parse_object(s));
    } catch (const std::exception&) {
      // structured failure path: fine
    }
  }
}

}  // namespace
}  // namespace disco
