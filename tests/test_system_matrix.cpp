// System-level matrix sweeps: every compression algorithm through the full
// DISCO stack (the in-flight losslessness asserts make each run an
// end-to-end property check), flow-control variants, and the detailed
// report renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "cmp/system.h"
#include "sim/report.h"
#include "workload/profile.h"

namespace disco::cmp {
namespace {

class AlgorithmMatrix : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmMatrix, FullSystemRunsAndDrainsUnderDisco) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.algorithm = GetParam();
  CmpSystem sys(cfg, workload::profile_by_name("freqmine"));
  sys.functional_warmup(3000);
  sys.run(10000);
  EXPECT_TRUE(sys.drain(40000)) << GetParam();
  EXPECT_GT(sys.cache_stats().l1_misses, 0u);
  // Compressed storage must be in effect for every algorithm.
  EXPECT_GT(sys.cache_stats().stored_line_bytes.count(), 0u);
  EXPECT_LT(sys.cache_stats().stored_line_bytes.mean(),
            static_cast<double>(kBlockBytes) + 1.0);
}

TEST_P(AlgorithmMatrix, FullSystemRunsUnderCnc) {
  SystemConfig cfg;
  cfg.scheme = Scheme::CNC;
  cfg.algorithm = GetParam();
  CmpSystem sys(cfg, workload::profile_by_name("bodytrack"));
  sys.functional_warmup(2000);
  sys.run(8000);
  EXPECT_TRUE(sys.drain(40000)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmMatrix,
                         ::testing::Values("delta", "bdi", "fpc", "sfpc",
                                           "cpack", "sc2", "fvc", "zerobit"),
                         [](const auto& info) { return info.param; });

TEST(FlowControlMatrix, VctSystemDrainsAndMatchesSemantics) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.noc.flow_control = FlowControl::VirtualCutThrough;
  CmpSystem sys(cfg, workload::profile_by_name("dedup"));
  sys.functional_warmup(4000);
  sys.run(12000);
  EXPECT_TRUE(sys.drain(40000));
  EXPECT_GT(sys.cache_stats().nuca_latency.count(), 0u);
}

TEST(FlowControlMatrix, VctNoSlowerThanWormholeAtLowLoad) {
  auto run = [](FlowControl fc) {
    SystemConfig cfg;
    cfg.scheme = Scheme::Baseline;
    cfg.noc.flow_control = fc;
    CmpSystem sys(cfg, workload::profile_by_name("swaptions"));
    sys.functional_warmup(6000);
    sys.run(4000);
    sys.reset_stats();
    sys.run(20000);
    return sys.cache_stats().nuca_latency.mean();
  };
  const double wh = run(FlowControl::Wormhole);
  const double vct = run(FlowControl::VirtualCutThrough);
  // At low load VCT's whole-packet credit requirement costs little; allow
  // a modest bound rather than equality.
  EXPECT_LT(vct, wh * 1.3);
  EXPECT_GT(vct, wh * 0.7);
}

TEST(Report, ContainsAllSections) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  CmpSystem sys(cfg, workload::profile_by_name("vips"));
  sys.functional_warmup(3000);
  sys.run(8000);
  std::ostringstream os;
  sim::print_system_report(os, sys, 8000);
  const std::string out = os.str();
  for (const char* needle :
       {"L1-miss latency", "NUCA-served", "cache hierarchy", "network",
        "DISCO machinery", "energy", "subsystem total"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

TEST(Adaptive, SystemLevelRunIsStable) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.disco.adaptive_thresholds = true;
  CmpSystem sys(cfg, workload::profile_by_name("canneal"));
  sys.functional_warmup(4000);
  sys.run(15000);
  EXPECT_TRUE(sys.drain(40000));
}

}  // namespace
}  // namespace disco::cmp
