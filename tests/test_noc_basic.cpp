// Router/mesh fundamentals: geometry, XY routing, zero-load delivery,
// multi-flit wormhole transfer, and per-link bandwidth discipline.
#include <gtest/gtest.h>

#include "noc_test_util.h"

namespace disco::noc {
namespace {

using testutil::CollectingSink;
using testutil::make_packet;
using testutil::run_until_quiescent;

TEST(MeshShape, GeometryAndNeighbours) {
  MeshShape mesh{4, 4};
  EXPECT_EQ(mesh.num_nodes(), 16u);
  EXPECT_EQ(mesh.node_at(2, 3), 14);
  EXPECT_EQ(mesh.x_of(14), 2u);
  EXPECT_EQ(mesh.y_of(14), 3u);
  EXPECT_EQ(mesh.neighbor(5, Port::East), 6);
  EXPECT_EQ(mesh.neighbor(5, Port::West), 4);
  EXPECT_EQ(mesh.neighbor(5, Port::North), 1);
  EXPECT_EQ(mesh.neighbor(5, Port::South), 9);
  EXPECT_EQ(mesh.neighbor(0, Port::West), kInvalidNode);
  EXPECT_EQ(mesh.neighbor(0, Port::North), kInvalidNode);
  EXPECT_EQ(mesh.neighbor(15, Port::East), kInvalidNode);
  EXPECT_EQ(mesh.hops(0, 15), 6u);
  EXPECT_EQ(mesh.hops(3, 3), 0u);
}

TEST(XyRouting, XThenY) {
  MeshShape mesh{4, 4};
  EXPECT_EQ(xy_route(mesh, 0, 3), Port::East);
  EXPECT_EQ(xy_route(mesh, 3, 0), Port::West);
  EXPECT_EQ(xy_route(mesh, 0, 12), Port::South);
  EXPECT_EQ(xy_route(mesh, 12, 0), Port::North);
  EXPECT_EQ(xy_route(mesh, 5, 5), Port::Local);
  // Diagonal: X dimension resolves first.
  EXPECT_EQ(xy_route(mesh, 0, 15), Port::East);
  EXPECT_EQ(xy_route(mesh, 3, 12), Port::West);
}

class NocFixture : public ::testing::Test {
 protected:
  void build(NocConfig cfg, NiPolicy policy = {}) {
    net_ = std::make_unique<Network>(cfg, policy, stats_);
    sinks_.resize(cfg.num_nodes());
    for (NodeId n = 0; n < cfg.num_nodes(); ++n)
      net_->register_sink(n, UnitKind::Core, &sinks_[n]);
  }

  NocStats stats_;
  std::unique_ptr<Network> net_;
  std::vector<CollectingSink> sinks_;
  Cycle clock_ = 0;
};

TEST_F(NocFixture, SingleControlPacketDelivered) {
  build(NocConfig{});
  auto pkt = make_packet(0, 15, VNet::Request, false, clock_, 1);
  net_->inject(0, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 200));
  ASSERT_EQ(sinks_[15].arrivals.size(), 1u);
  EXPECT_EQ(sinks_[15].arrivals[0].pkt->id, 1u);
  EXPECT_EQ(stats_.packets_injected, 1u);
  EXPECT_EQ(stats_.packets_ejected, 1u);
}

TEST_F(NocFixture, ZeroLoadLatencyMatchesPipelineModel) {
  build(NocConfig{});
  auto pkt = make_packet(0, 3, VNet::Request, false, clock_, 7);
  net_->inject(0, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 200));
  const auto& arr = sinks_[3].arrivals.at(0);
  const Cycle latency = arr.when - arr.pkt->injected;
  // 3 hops x 3-stage pipeline + link/NI overheads: 9..18 cycles.
  EXPECT_GE(latency, 9u);
  EXPECT_LE(latency, 18u);
}

TEST_F(NocFixture, LatencyGrowsWithDistance) {
  build(NocConfig{});
  auto near = make_packet(5, 6, VNet::Request, false, clock_, 1);
  auto far = make_packet(0, 15, VNet::Request, false, clock_, 2);
  net_->inject(5, near, clock_);
  net_->inject(0, far, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  const Cycle near_lat =
      sinks_[6].arrivals.at(0).when - sinks_[6].arrivals.at(0).pkt->injected;
  const Cycle far_lat =
      sinks_[15].arrivals.at(0).when - sinks_[15].arrivals.at(0).pkt->injected;
  EXPECT_LT(near_lat, far_lat);
}

TEST_F(NocFixture, DataPacketCarriesEightFlits) {
  build(NocConfig{});
  auto pkt = make_packet(0, 5, VNet::Response, true, clock_, 3);
  EXPECT_EQ(pkt->flit_count(), 8u);
  const BlockBytes expected = pkt->data;
  net_->inject(0, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 300));
  ASSERT_EQ(sinks_[5].arrivals.size(), 1u);
  EXPECT_EQ(sinks_[5].arrivals[0].pkt->data, expected);
  EXPECT_EQ(stats_.flits_injected, 8u);
}

TEST_F(NocFixture, SelfDeliveryThroughLocalPort) {
  build(NocConfig{});
  auto pkt = make_packet(4, 4, VNet::Coherence, false, clock_, 9);
  net_->inject(4, pkt, clock_);
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 100));
  EXPECT_EQ(sinks_[4].arrivals.size(), 1u);
}

TEST_F(NocFixture, ManyPacketsAllDeliveredExactlyOnce) {
  build(NocConfig{});
  Rng rng(42);
  std::map<std::uint64_t, NodeId> expected;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    const auto dst = static_cast<NodeId>(rng.next_below(16));
    const auto vnet = static_cast<VNet>(rng.next_below(3));
    expected[id] = dst;
    net_->inject(src, make_packet(src, dst, vnet, rng.chance(0.5), clock_, id),
                 clock_);
    clock_ += 1 + rng.next_below(2);
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 5000));
  EXPECT_TRUE(net_->credits_quiescent()) << "credit leak under random traffic";

  std::map<std::uint64_t, int> seen;
  for (NodeId n = 0; n < 16; ++n) {
    for (const auto& a : sinks_[n].arrivals) {
      EXPECT_EQ(expected.at(a.pkt->id), n) << "misrouted packet " << a.pkt->id;
      ++seen[a.pkt->id];
    }
  }
  EXPECT_EQ(seen.size(), expected.size());
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "packet " << id;
}

TEST_F(NocFixture, WormholeBackpressureDoesNotLoseFlits) {
  // Flood one destination from all nodes; the ejection port serializes.
  build(NocConfig{});
  std::uint64_t id = 1;
  for (int round = 0; round < 4; ++round) {
    for (NodeId src = 0; src < 16; ++src) {
      net_->inject(src, make_packet(src, 9, VNet::Response, true, clock_, id++),
                   clock_);
    }
    ++clock_;
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 10000));
  EXPECT_TRUE(net_->credits_quiescent()) << "credit leak under backpressure";
  EXPECT_EQ(sinks_[9].arrivals.size(), 64u);
  EXPECT_EQ(stats_.packets_ejected, 64u);
}

TEST_F(NocFixture, TwoByTwoMeshWorks) {
  NocConfig cfg;
  cfg.mesh_cols = 2;
  cfg.mesh_rows = 2;
  build(cfg);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    net_->inject(static_cast<NodeId>(id % 4),
                 make_packet(static_cast<NodeId>(id % 4),
                             static_cast<NodeId>((id + 1) % 4), VNet::Request,
                             true, clock_, id),
                 clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 3000));
  EXPECT_EQ(stats_.packets_ejected, 20u);
}

TEST_F(NocFixture, EightByEightMeshWorks) {
  NocConfig cfg;
  cfg.mesh_cols = 8;
  cfg.mesh_rows = 8;
  build(cfg);
  sinks_.resize(64);
  Rng rng(3);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    const auto src = static_cast<NodeId>(rng.next_below(64));
    const auto dst = static_cast<NodeId>(rng.next_below(64));
    net_->inject(src, make_packet(src, dst, VNet::Response, true, clock_, id),
                 clock_);
    ++clock_;
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 10000));
  EXPECT_EQ(stats_.packets_ejected, 100u);
}


TEST_F(NocFixture, VirtualCutThroughDeliversAll) {
  NocConfig cfg;
  cfg.flow_control = FlowControl::VirtualCutThrough;
  build(cfg);
  Rng rng(9);
  for (std::uint64_t id = 1; id <= 150; ++id) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    const auto dst = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, dst, VNet::Response, true, clock_, id),
                 clock_);
    clock_ += 1 + rng.next_below(2);
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 20000));
  EXPECT_EQ(stats_.packets_ejected, 150u);
}

TEST(PacketModel, FlitCountTracksPayload) {
  Packet p;
  p.has_data = false;
  EXPECT_EQ(p.flit_count(), 1u);
  p.has_data = true;
  EXPECT_EQ(p.flit_count(), 8u);  // 64B at 8B per flit, head carries 8B
  compress::Encoded enc;
  enc.bytes.assign(17, 0);  // delta-compressed size
  p.encoded = enc;
  EXPECT_EQ(p.flit_count(), 3u);
  p.encoded->bytes.assign(8, 0);
  EXPECT_EQ(p.flit_count(), 1u);
  p.encoded->bytes.assign(9, 0);
  EXPECT_EQ(p.flit_count(), 2u);
}

TEST(PipelinedChannelModel, OneCycleDelay) {
  PipelinedChannel<int> chan;
  chan.push(10, 42);
  int out = 0;
  EXPECT_FALSE(chan.try_pop(10, out)) << "value must not be visible same cycle";
  EXPECT_TRUE(chan.try_pop(11, out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(chan.try_pop(12, out));
}

}  // namespace
}  // namespace disco::noc
