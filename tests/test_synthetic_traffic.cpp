// Synthetic traffic pattern tests: destination-map properties per pattern
// and the packet factory's compressibility contract.
#include <gtest/gtest.h>

#include <map>

#include "compress/registry.h"
#include "workload/synthetic.h"

namespace disco::workload {
namespace {

TEST(Synthetic, PatternNames) {
  EXPECT_EQ(traffic_pattern_from_name("uniform"), TrafficPattern::UniformRandom);
  EXPECT_EQ(traffic_pattern_from_name("hotspot"), TrafficPattern::Hotspot);
  EXPECT_THROW(traffic_pattern_from_name("tornado"), std::invalid_argument);
  EXPECT_STREQ(to_string(TrafficPattern::Transpose), "transpose");
}

TEST(Synthetic, TransposeIsAnInvolutionOnTheMesh) {
  TrafficChooser chooser(TrafficPattern::Transpose, 4, 1);
  for (NodeId src = 0; src < 16; ++src) {
    const NodeId dst = chooser.pick(src);
    EXPECT_EQ(chooser.pick(dst), src);
  }
  // Diagonal nodes map to themselves.
  EXPECT_EQ(chooser.pick(0), 0);
  EXPECT_EQ(chooser.pick(5), 5);
}

TEST(Synthetic, BitComplementIsDeterministicMirror) {
  TrafficChooser chooser(TrafficPattern::BitComplement, 4, 1);
  EXPECT_EQ(chooser.pick(0), 15);
  EXPECT_EQ(chooser.pick(15), 0);
  EXPECT_EQ(chooser.pick(3), 12);
}

TEST(Synthetic, NeighborWrapsWithinRow) {
  TrafficChooser chooser(TrafficPattern::Neighbor, 4, 1);
  EXPECT_EQ(chooser.pick(0), 1);
  EXPECT_EQ(chooser.pick(3), 0);   // wraps to row start
  EXPECT_EQ(chooser.pick(7), 4);
}

TEST(Synthetic, HotspotConcentration) {
  TrafficChooser chooser(TrafficPattern::Hotspot, 4, 7, /*hotspot=*/5,
                         /*fraction=*/0.4);
  std::map<NodeId, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[chooser.pick(static_cast<NodeId>(i % 16))];
  EXPECT_NEAR(static_cast<double>(counts[5]) / n, 0.4 + 0.6 / 16, 0.03);
}

TEST(Synthetic, UniformCoversAllNodes) {
  TrafficChooser chooser(TrafficPattern::UniformRandom, 4, 3);
  std::map<NodeId, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[chooser.pick(0)];
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [node, c] : counts) EXPECT_GT(c, 8000 / 16 / 2) << node;
}

TEST(Synthetic, PacketFactoryCompressibilityContract) {
  Rng rng(11);
  auto delta = compress::make_algorithm("delta");
  int compressible = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const auto pkt = make_synthetic_packet(0, 1, i, 0, 0.7, rng);
    EXPECT_TRUE(pkt->has_data);
    EXPECT_TRUE(pkt->compressible);
    EXPECT_EQ(pkt->flit_count(), 8u);
    compressible += delta->compress(pkt->data).size() < kBlockBytes / 2 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(compressible) / n, 0.7, 0.08);
}

}  // namespace
}  // namespace disco::workload
