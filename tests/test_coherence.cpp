// Coherence-protocol correctness on the mini CMP: single-core semantics,
// sharing, invalidation, ownership migration, writeback races, inclusive
// evictions — each scenario drains fully and checks data values end-to-end.
#include <gtest/gtest.h>

#include "cache_test_util.h"

namespace disco::cache {
namespace {

using testutil::MiniCmp;
using testutil::word_at;

TEST(Coherence, LoadReturnsMemoryContent) {
  MiniCmp cmp;
  const Addr addr = 0x1000;
  const BlockBytes expected = cmp.mem_->read_block(addr);
  EXPECT_EQ(cmp.load(0, addr), expected);
  EXPECT_EQ(cmp.stats_.l1_misses, 1u);
  EXPECT_EQ(cmp.stats_.l2_misses, 1u);
  EXPECT_EQ(cmp.stats_.dram_reads, 1u);
}

TEST(Coherence, SecondLoadHitsL1) {
  MiniCmp cmp;
  const Addr addr = 0x2000;
  cmp.load(0, addr);
  const auto misses = cmp.stats_.l1_misses;
  cmp.load(0, addr);
  EXPECT_EQ(cmp.stats_.l1_misses, misses);
  EXPECT_EQ(cmp.stats_.l1_hits, 1u);
}

TEST(Coherence, StoreThenLoadSameCore) {
  MiniCmp cmp;
  const Addr addr = 0x3000;
  cmp.store(0, addr, 0xABCDULL);
  const BlockBytes b = cmp.load(0, addr);
  EXPECT_EQ(word_at(b, 0), 0xABCDULL);
}

TEST(Coherence, StoreVisibleToOtherCore) {
  MiniCmp cmp;
  const Addr addr = 0x4000;
  cmp.store(0, addr + 8, 0x1234'5678ULL);
  const BlockBytes b = cmp.load(1, addr);
  EXPECT_EQ(word_at(b, 8), 0x1234'5678ULL)
      << "ownership must migrate through the home";
}

TEST(Coherence, FirstReaderGetsExclusive) {
  MiniCmp cmp;
  const Addr addr = 0x5000;
  cmp.load(0, addr);
  EXPECT_EQ(cmp.l1s_[0]->peek(addr)->state, L1State::E);
}

TEST(Coherence, SecondReaderShares) {
  MiniCmp cmp;
  const Addr addr = 0x6000;
  cmp.load(0, addr);
  cmp.load(1, addr);
  // Core 0 was recalled (home-mediated downgrade); core 1 holds the block.
  EXPECT_NE(cmp.l1s_[1]->peek(addr), nullptr);
  EXPECT_GE(cmp.stats_.recalls_sent, 1u);
}

TEST(Coherence, WriterInvalidatesSharers) {
  MiniCmp cmp;
  const Addr addr = 0x7000;
  cmp.load(0, addr);
  cmp.load(1, addr);
  cmp.load(2, addr);
  cmp.store(3, addr, 99);
  // All previous sharers lose their copies.
  const L1Line* l0 = cmp.l1s_[0]->peek(addr);
  const L1Line* l1 = cmp.l1s_[1]->peek(addr);
  const L1Line* l2 = cmp.l1s_[2]->peek(addr);
  EXPECT_TRUE(l0 == nullptr || l0->state == L1State::I);
  EXPECT_TRUE(l1 == nullptr || l1->state == L1State::I);
  EXPECT_TRUE(l2 == nullptr || l2->state == L1State::I);
  EXPECT_EQ(word_at(cmp.load(0, addr), 0), 99u);
}

TEST(Coherence, SilentEToMUpgrade) {
  MiniCmp cmp;
  const Addr addr = 0x8000;
  cmp.load(0, addr);  // E grant
  const auto misses = cmp.stats_.l1_misses;
  cmp.store(0, addr, 5);  // silent upgrade, no new miss
  EXPECT_EQ(cmp.stats_.l1_misses, misses);
  EXPECT_EQ(cmp.l1s_[0]->peek(addr)->state, L1State::M);
}

TEST(Coherence, DirtyDataSurvivesL1Eviction) {
  MiniCmp cmp;
  const Addr addr = 0x9000;
  cmp.store(0, addr, 0xFEEDULL);
  // Evict by filling the same L1 set (128 sets, 4 ways).
  const Addr stride = 128 * kBlockBytes;
  for (int i = 1; i <= 6; ++i) cmp.load(0, addr + i * stride);
  cmp.drain();
  // The dirty block must now live in L2 (or memory) with the stored value.
  const BlockBytes b = cmp.load(1, addr);
  EXPECT_EQ(word_at(b, 0), 0xFEEDULL);
}

TEST(Coherence, PingPongOwnership) {
  MiniCmp cmp;
  const Addr addr = 0xA000;
  for (std::uint64_t round = 1; round <= 6; ++round) {
    const NodeId writer = round % 2;
    cmp.store(writer, addr, round);
    const BlockBytes b = cmp.load(1 - writer, addr);
    EXPECT_EQ(word_at(b, 0), round) << "round " << round;
  }
}

TEST(Coherence, ReadAfterEvictionReRequestIsCorrect) {
  // Exercises the writeback/re-request path (eviction buffer + Recall).
  MiniCmp cmp;
  const Addr addr = 0xB000;
  cmp.store(0, addr, 0x77);
  const Addr stride = 128 * kBlockBytes;
  for (int i = 1; i <= 4; ++i) cmp.load(0, addr + i * stride);
  // Immediately re-access without draining: the PutM may still be in flight.
  cmp.issue(0, addr, false, 0);
  ASSERT_TRUE(cmp.drain());
  EXPECT_EQ(word_at(cmp.l1s_[0]->peek(addr)->data, 0), 0x77u);
}

TEST(Coherence, L2InclusiveEvictionRecallsOwner) {
  MiniCmp cmp(Scheme::Baseline);
  // Make an L2 set overflow: baseline bank, 8 ways of raw lines. The mini
  // CMP has 4 nodes; pick addresses sharing home bank 0 and one L2 set.
  const auto& arr = cmp.l2s_[0]->array();
  std::vector<Addr> same_set;
  const std::size_t target_set = arr.set_of(0);
  for (Addr idx = 0; same_set.size() < 12; ++idx) {
    const Addr a = idx * kBlockBytes;
    if ((idx % 4) != 0) continue;           // home bank 0
    if (arr.set_of(a) != target_set) continue;
    same_set.push_back(a);
  }
  // Dirty the first one in an L1, then overflow the set.
  cmp.store(1, same_set[0], 0xBEEF);
  for (std::size_t i = 1; i < same_set.size(); ++i) cmp.load(2, same_set[i]);
  ASSERT_TRUE(cmp.drain());
  EXPECT_GE(cmp.stats_.l2_evictions, 1u);
  // The dirty value must be recoverable regardless of where it ended up.
  EXPECT_EQ(word_at(cmp.load(3, same_set[0]), 0), 0xBEEFu);
}

TEST(Coherence, ManyRandomAccessesMatchGoldenModel) {
  MiniCmp cmp;
  Rng rng(606);
  std::map<Addr, std::uint64_t> golden;  // last stored word0 per block
  for (int i = 0; i < 300; ++i) {
    const Addr addr = (rng.next_below(64)) * kBlockBytes;
    const auto node = static_cast<NodeId>(rng.next_below(4));
    if (rng.chance(0.4)) {
      const std::uint64_t v = rng.next_u64();
      cmp.store(node, addr, v);
      golden[addr] = v;
    } else {
      const BlockBytes b = cmp.load(node, addr);
      if (auto it = golden.find(addr); it != golden.end()) {
        EXPECT_EQ(word_at(b, 0), it->second) << "block " << std::hex << addr;
      }
    }
  }
}

}  // namespace
}  // namespace disco::cache
