// Trace record/replay and JSON export tests.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/json_export.h"
#include "workload/profile.h"
#include "workload/trace_io.h"

namespace disco::workload {
namespace {

TEST(TraceIo, RecordWriteReadRoundTrip) {
  const auto& profile = profile_by_name("vips");
  const auto trace = record_trace(profile, 4, 50, 42);
  ASSERT_EQ(trace.size(), 200u);

  std::stringstream ss;
  write_trace(ss, trace);
  const auto back = read_trace(ss);
  ASSERT_EQ(back.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back[i].core, trace[i].core);
    EXPECT_EQ(back[i].op.addr, trace[i].op.addr);
    EXPECT_EQ(back[i].op.is_store, trace[i].op.is_store);
    EXPECT_EQ(back[i].op.gap, trace[i].op.gap);
  }
}

TEST(TraceIo, RecordingMatchesLiveGenerators) {
  const auto& profile = profile_by_name("dedup");
  const auto trace = record_trace(profile, 2, 30, 7);
  TraceGenerator live0(profile, 0, 7);
  TraceReplayer replay0(trace, 0);
  for (int i = 0; i < 30; ++i) {
    const TraceOp a = live0.next();
    const TraceOp b = replay0.next();
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.is_store, b.is_store);
    EXPECT_EQ(a.gap, b.gap);
  }
}

TEST(TraceIo, ReplayerLoops) {
  std::vector<RecordedOp> trace = {{0, {0x1000, false, 2}}, {0, {0x2000, true, 0}}};
  TraceReplayer r(trace, 0);
  EXPECT_EQ(r.next().addr, 0x1000u);
  EXPECT_EQ(r.next().addr, 0x2000u);
  EXPECT_EQ(r.next().addr, 0x1000u) << "replay wraps around";
}

TEST(TraceIo, RejectsMalformedLines) {
  std::stringstream ss("0 X deadbeef 3\n");
  EXPECT_THROW(read_trace(ss), std::runtime_error);
  std::stringstream ss2("# only a comment\n");
  EXPECT_TRUE(read_trace(ss2).empty());
}

TEST(TraceIo, FiltersPerCore) {
  std::vector<RecordedOp> trace = {
      {0, {0x10, false, 0}}, {1, {0x20, false, 0}}, {0, {0x30, true, 1}}};
  TraceReplayer r0(trace, 0);
  TraceReplayer r1(trace, 1);
  EXPECT_EQ(r0.ops_for_core(), 2u);
  EXPECT_EQ(r1.ops_for_core(), 1u);
  EXPECT_EQ(r1.next().addr, 0x20u);
}

}  // namespace
}  // namespace disco::workload

namespace disco::sim {
namespace {

CellResult sample_result() {
  CellResult r;
  r.workload = "canneal";
  r.algorithm = "delta";
  r.scheme = Scheme::DISCO;
  r.measured_cycles = 1000;
  r.core_ops = 1234;
  r.avg_nuca_latency = 41.5;
  r.energy.noc_dynamic_nj = 10.0;
  r.energy.l2_dynamic_nj = 5.0;
  return r;
}

TEST(JsonExport, SingleObjectHasKeyFields) {
  std::stringstream ss;
  write_json(ss, sample_result());
  const std::string out = ss.str();
  EXPECT_NE(out.find("\"workload\":\"canneal\""), std::string::npos);
  EXPECT_NE(out.find("\"scheme\":\"DISCO\""), std::string::npos);
  EXPECT_NE(out.find("\"avg_nuca_latency\":41.5"), std::string::npos);
  EXPECT_NE(out.find("\"subsystem_nj\":15"), std::string::npos);
}

TEST(JsonExport, ArrayBracketsAndCommas) {
  std::stringstream ss;
  write_json(ss, std::vector<CellResult>{sample_result(), sample_result()});
  const std::string out = ss.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find("},\n"), std::string::npos);
  EXPECT_NE(out.find("]\n"), std::string::npos);
}

}  // namespace
}  // namespace disco::sim
