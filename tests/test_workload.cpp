// Workload substrate tests: profile table sanity, value-synthesizer
// determinism and pattern statistics, trace-generator locality/mix, and the
// page-frame scattering map.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <unordered_map>

#include "compress/registry.h"
#include "workload/profile.h"
#include "workload/trace_gen.h"
#include "workload/value_synth.h"

namespace disco::workload {
namespace {

Addr cache_align(Addr a) { return a & ~Addr{kBlockBytes - 1}; }

TEST(Profiles, ThirteenParsecWorkloads) {
  EXPECT_EQ(parsec_profiles().size(), 13u);
  std::set<std::string> names;
  for (const auto& p : parsec_profiles()) names.insert(p.name);
  for (const char* expected :
       {"blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
        "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
        "vips", "x264"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(Profiles, ParametersInSaneRanges) {
  for (const auto& p : parsec_profiles()) {
    EXPECT_NEAR(p.values.sum(), 1.0, 1e-9) << p.name;
    EXPECT_GT(p.footprint_blocks, 500u) << p.name;
    EXPECT_LT(p.footprint_blocks, 100000u) << p.name;
    EXPECT_GT(p.hot_fraction, 0.5) << p.name;
    EXPECT_LE(p.hot_fraction, 1.0) << p.name;
    EXPECT_GT(p.mem_op_rate, 0.0) << p.name;
    EXPECT_LT(p.mem_op_rate, 0.5) << p.name;
    EXPECT_GE(p.write_ratio, 0.0) << p.name;
    EXPECT_LE(p.write_ratio, 0.6) << p.name;
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(profile_by_name("canneal").name, "canneal");
  EXPECT_THROW(profile_by_name("doom"), std::invalid_argument);
}

TEST(ValueSynth, Deterministic) {
  ValueMix mix{0.2, 0.2, 0.2, 0.2, 0.1, 0.1};
  ValueSynthesizer a(mix, 42), b(mix, 42);
  for (Addr addr = 0; addr < 100 * kBlockBytes; addr += kBlockBytes) {
    EXPECT_EQ(a.block_for(addr), b.block_for(addr));
    EXPECT_EQ(a.kind_of(addr), b.kind_of(addr));
  }
}

TEST(ValueSynth, SeedChangesContent) {
  ValueMix mix{0.0, 0.0, 0.0, 0.0, 0.0, 1.0};
  ValueSynthesizer a(mix, 1), b(mix, 2);
  int diffs = 0;
  for (Addr addr = 0; addr < 50 * kBlockBytes; addr += kBlockBytes)
    diffs += a.block_for(addr) != b.block_for(addr);
  EXPECT_GT(diffs, 45);
}

TEST(ValueSynth, MixWeightsRespected) {
  ValueMix mix{0.5, 0.0, 0.0, 0.0, 0.0, 0.5};
  ValueSynthesizer synth(mix, 7);
  int zeros = 0, randoms = 0;
  const int n = 2000;
  for (Addr addr = 0; addr < Addr(n) * kBlockBytes; addr += kBlockBytes) {
    switch (synth.kind_of(addr)) {
      case PatternKind::Zero: ++zeros; break;
      case PatternKind::Random: ++randoms; break;
      default: FAIL() << "pattern outside the mix";
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, 0.5, 0.05);
}

TEST(ValueSynth, ZeroKindProducesZeroBlocks) {
  ValueMix mix{1.0, 0, 0, 0, 0, 0};
  ValueSynthesizer synth(mix, 3);
  EXPECT_EQ(synth.block_for(0), zero_block());
}

TEST(ValueSynth, StoreValuesPreserveCompressibility) {
  // Store values drawn for a low-delta block must stay near its base.
  ValueMix mix{0, 0, 1.0, 0, 0, 0};
  ValueSynthesizer synth(mix, 5);
  auto delta = compress::make_algorithm("delta");
  for (Addr addr = 0; addr < 50 * kBlockBytes; addr += kBlockBytes) {
    BlockBytes b = synth.block_for(addr);
    // Overwrite three words with synthesized store values.
    for (std::uint64_t s = 0; s < 3; ++s) {
      const std::uint64_t v = synth.store_value(addr, s);
      std::memcpy(b.data() + s * 8, &v, 8);
    }
    EXPECT_LT(delta->compress(b).size(), kBlockBytes / 2)
        << "stores destroyed the block's delta compressibility";
  }
}

TEST(TraceGen, DeterministicPerSeedAndCore) {
  const auto& p = profile_by_name("dedup");
  TraceGenerator a(p, 3, 99), b(p, 3, 99), c(p, 4, 99);
  bool same_core_diverges = false;
  for (int i = 0; i < 200; ++i) {
    const TraceOp oa = a.next(), ob = b.next(), oc = c.next();
    EXPECT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(oa.is_store, ob.is_store);
    same_core_diverges = same_core_diverges || oa.addr != oc.addr;
  }
  EXPECT_TRUE(same_core_diverges) << "different cores must get different streams";
}

TEST(TraceGen, WriteRatioApproximatelyRespected) {
  const auto& p = profile_by_name("x264");  // write_ratio 0.40
  TraceGenerator gen(p, 0, 1);
  int stores = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) stores += gen.next().is_store;
  EXPECT_NEAR(static_cast<double>(stores) / n, p.write_ratio, 0.05);
}

TEST(TraceGen, HotSetConcentratesAccesses) {
  const auto& p = profile_by_name("swaptions");
  TraceGenerator gen(p, 0, 1);
  std::unordered_map<Addr, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[cache_align(gen.next().addr)];
  // The top blocks must absorb a large share (hot_fraction ~0.96).
  std::vector<int> freq;
  freq.reserve(counts.size());
  for (const auto& [a, c] : counts) freq.push_back(c);
  std::sort(freq.rbegin(), freq.rend());
  const std::size_t hot =
      static_cast<std::size_t>(p.hot_set_fraction *
                               static_cast<double>(p.footprint_blocks));
  long hot_accesses = 0;
  for (std::size_t i = 0; i < std::min(hot, freq.size()); ++i)
    hot_accesses += freq[i];
  EXPECT_GT(static_cast<double>(hot_accesses) / n, 0.7);
}

TEST(TraceGen, GapsMatchOpRate) {
  const auto& p = profile_by_name("canneal");
  TraceGenerator gen(p, 0, 1);
  double total_cycles = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total_cycles += 1.0 + gen.next().gap;
  const double rate = n / total_cycles;
  EXPECT_NEAR(rate, p.mem_op_rate, p.mem_op_rate * 0.2);
}

TEST(PageMap, DeterministicAndPageAligned) {
  const Addr v = (Addr{7} << 30) | 0x1234;
  EXPECT_EQ(virtual_to_physical(v), virtual_to_physical(v));
  EXPECT_EQ(virtual_to_physical(v) & 0xFFF, v & 0xFFF)
      << "page offset preserved";
  EXPECT_LT(virtual_to_physical(v), Addr{1} << 32) << "4GB physical space";
}

TEST(PageMap, ScattersAlignedHeaps) {
  // Consecutive cores' GB-aligned bases must land on unrelated frames.
  std::set<Addr> frames;
  for (int core = 0; core < 16; ++core)
    frames.insert(virtual_to_physical(static_cast<Addr>(core + 1) << 30) >> 12);
  EXPECT_EQ(frames.size(), 16u);
}

}  // namespace
}  // namespace disco::workload
