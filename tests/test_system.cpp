// Full-system integration tests: the CmpSystem end to end, functional
// warmup consistency, scheme-level behavioural expectations, drain
// (deadlock-freedom) under every scheme, and stat plumbing.
#include <gtest/gtest.h>

#include "cmp/system.h"
#include "sim/experiment.h"
#include "workload/profile.h"

namespace disco::cmp {
namespace {

SystemConfig small_cfg(Scheme scheme, const std::string& algo = "delta") {
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.algorithm = algo;
  return cfg;
}

class SchemeRun : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeRun, RunsAndDrainsWithoutDeadlock) {
  CmpSystem sys(small_cfg(GetParam()), workload::profile_by_name("dedup"));
  sys.functional_warmup(4000);
  sys.run(15000);
  EXPECT_TRUE(sys.drain(30000)) << "scheme " << to_string(GetParam())
                                << " failed to drain (protocol deadlock?)";
  EXPECT_GT(sys.total_core_ops(), 0u);
  EXPECT_GT(sys.cache_stats().l1_misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeRun,
                         ::testing::Values(Scheme::Baseline, Scheme::CC,
                                           Scheme::CNC, Scheme::DISCO,
                                           Scheme::Ideal),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(System, DeterministicAcrossRuns) {
  auto run_once = [] {
    CmpSystem sys(small_cfg(Scheme::DISCO), workload::profile_by_name("vips"));
    sys.functional_warmup(4000);
    sys.run(10000);
    return std::tuple{sys.total_core_ops(), sys.cache_stats().l1_misses,
                      sys.noc_stats().link_flits,
                      sys.cache_stats().nuca_latency.mean()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(System, SeedChangesOutcome) {
  SystemConfig a = small_cfg(Scheme::DISCO);
  SystemConfig b = a;
  b.seed = 999;
  CmpSystem sa(a, workload::profile_by_name("vips"));
  CmpSystem sb(b, workload::profile_by_name("vips"));
  sa.functional_warmup(3000);
  sb.functional_warmup(3000);
  sa.run(8000);
  sb.run(8000);
  EXPECT_NE(sa.noc_stats().link_flits, sb.noc_stats().link_flits);
}

TEST(System, FunctionalWarmupPopulatesHierarchy) {
  CmpSystem sys(small_cfg(Scheme::DISCO), workload::profile_by_name("canneal"));
  sys.functional_warmup(8000);
  std::uint64_t lines = 0;
  for (NodeId n = 0; n < 16; ++n) lines += sys.l2(n).array().valid_lines();
  EXPECT_GT(lines, 5000u);
  // Warm caches mean the first measured window runs at steady-state hit
  // rates rather than cold-start rates.
  sys.run(10000);
  EXPECT_LT(sys.cache_stats().l1_miss_rate(), 0.5);
}

TEST(System, WarmupKeepsDirectoryConsistent) {
  // After functional warmup, timing simulation must proceed without any
  // protocol assertion and drain cleanly (the asserts enforce consistency).
  CmpSystem sys(small_cfg(Scheme::CC), workload::profile_by_name("x264"));
  sys.functional_warmup(10000);
  sys.run(20000);
  EXPECT_TRUE(sys.drain(30000));
}

TEST(System, CompressionExpandsL2Population) {
  CmpSystem base(small_cfg(Scheme::Baseline), workload::profile_by_name("canneal"));
  CmpSystem comp(small_cfg(Scheme::CC), workload::profile_by_name("canneal"));
  base.functional_warmup(20000);
  comp.functional_warmup(20000);
  std::uint64_t base_lines = 0, comp_lines = 0;
  for (NodeId n = 0; n < 16; ++n) {
    base_lines += base.l2(n).array().valid_lines();
    comp_lines += comp.l2(n).array().valid_lines();
  }
  EXPECT_GT(comp_lines, base_lines);
}

TEST(System, DiscoEnginesActive) {
  CmpSystem sys(small_cfg(Scheme::DISCO), workload::profile_by_name("canneal"));
  sys.functional_warmup(8000);
  sys.run(30000);
  const auto& ns = sys.noc_stats();
  EXPECT_GT(ns.engine_starts + ns.inflight_compressions, 0u)
      << "DISCO machinery never engaged";
}

TEST(System, OnlyDiscoUsesInNetworkEngines) {
  for (Scheme s : {Scheme::Baseline, Scheme::CC, Scheme::CNC, Scheme::Ideal}) {
    CmpSystem sys(small_cfg(s), workload::profile_by_name("dedup"));
    sys.functional_warmup(2000);
    sys.run(8000);
    EXPECT_EQ(sys.noc_stats().engine_starts, 0u) << to_string(s);
  }
}

TEST(System, StatsResetKeepsArchitecturalState) {
  CmpSystem sys(small_cfg(Scheme::DISCO), workload::profile_by_name("dedup"));
  sys.functional_warmup(5000);
  sys.run(5000);
  sys.reset_stats();
  EXPECT_EQ(sys.cache_stats().l1_misses, 0u);
  EXPECT_EQ(sys.noc_stats().link_flits, 0u);
  sys.run(5000);
  EXPECT_GT(sys.total_core_ops(), 0u);
}

TEST(System, EightByEightScalesUp) {
  SystemConfig cfg = small_cfg(Scheme::DISCO);
  cfg.noc.mesh_cols = 8;
  cfg.noc.mesh_rows = 8;
  cfg.l2.total_size_bytes = 16ULL * 1024 * 1024;  // 64 x 256KB banks
  cfg.mem.num_controllers = 4;
  CmpSystem sys(cfg, workload::profile_by_name("dedup"));
  sys.functional_warmup(2000);
  sys.run(8000);
  EXPECT_TRUE(sys.drain(30000));
  EXPECT_GT(sys.cache_stats().l1_misses, 0u);
}

TEST(Experiment, RunCellProducesCoherentMetrics) {
  SystemConfig cfg = small_cfg(Scheme::DISCO);
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 3000;
  opt.warmup_cycles = 3000;
  opt.measure_cycles = 15000;
  const sim::CellResult r =
      sim::run_cell(cfg, workload::profile_by_name("streamcluster"), opt);
  EXPECT_GT(r.avg_nuca_latency, 10.0);
  EXPECT_LT(r.avg_nuca_latency, 500.0);
  EXPECT_GT(r.core_ops, 0u);
  EXPECT_GT(r.avg_stored_ratio, 1.0);
  EXPECT_GT(r.energy.subsystem_nj(), 0.0);
}

TEST(Experiment, SchemeOrderingOnCompressibleWorkload) {
  // The paper's headline shape: Ideal <= DISCO < CC, on a compressible,
  // NUCA-bound workload.
  SystemConfig cfg = small_cfg(Scheme::DISCO);
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 12000;
  opt.warmup_cycles = 8000;
  opt.measure_cycles = 40000;
  const auto rs =
      sim::run_schemes(cfg, workload::profile_by_name("dedup"),
                       {Scheme::Ideal, Scheme::DISCO, Scheme::CC}, opt);
  EXPECT_LE(rs[0].avg_nuca_latency, rs[1].avg_nuca_latency * 1.02);
  EXPECT_LT(rs[1].avg_nuca_latency, rs[2].avg_nuca_latency);
}


TEST(Experiment, Sc2CrossoverCncLagsCc) {
  // Fig. 6's qualitative claim: with a slow algorithm (SC2, 6/14 cycles)
  // the two-level CNC becomes slower than plain cache compression, while
  // DISCO stays ahead of both.
  SystemConfig cfg = small_cfg(Scheme::DISCO, "sc2");
  sim::RunOptions opt;
  opt.warmup_ops_per_core = 10000;
  opt.warmup_cycles = 6000;
  opt.measure_cycles = 30000;
  const auto rs = sim::run_schemes(
      cfg, workload::profile_by_name("blackscholes"),
      {Scheme::CC, Scheme::CNC, Scheme::DISCO}, opt);
  EXPECT_LT(rs[2].avg_nuca_latency, rs[0].avg_nuca_latency) << "DISCO vs CC";
  EXPECT_LT(rs[2].avg_nuca_latency, rs[1].avg_nuca_latency) << "DISCO vs CNC";
  EXPECT_LT(rs[0].avg_nuca_latency, rs[1].avg_nuca_latency)
      << "CC must beat CNC under a high-latency algorithm";
}

TEST(Experiment, Geomean) {
  EXPECT_NEAR(sim::geomean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(sim::geomean({3.0}), 3.0, 1e-9);
  EXPECT_EQ(sim::geomean({}), 0.0);
}

}  // namespace
}  // namespace disco::cmp
