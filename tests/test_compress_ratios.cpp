// Compression-ratio behaviour per algorithm and per pattern class: the
// qualitative relationships Table 1 and the value synthesizer rely on.
#include <gtest/gtest.h>

#include <cstring>

#include "compress/registry.h"
#include "compress/sc2.h"
#include "workload/value_synth.h"

namespace disco::compress {
namespace {

double mean_ratio(const Algorithm& algo, workload::PatternKind kind,
                  std::size_t samples = 200) {
  // Build a synthesizer that emits only the requested pattern.
  workload::ValueMix mix;
  switch (kind) {
    case workload::PatternKind::Zero: mix.zero = 1; break;
    case workload::PatternKind::Narrow: mix.narrow = 1; break;
    case workload::PatternKind::LowDelta: mix.low_delta = 1; break;
    case workload::PatternKind::Pointer: mix.pointer = 1; break;
    case workload::PatternKind::Fp: mix.fp = 1; break;
    case workload::PatternKind::Random: mix.random = 1; break;
  }
  workload::ValueSynthesizer synth(mix, 4242);
  double bytes = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const BlockBytes b = synth.block_for(i * kBlockBytes);
    bytes += static_cast<double>(algo.compress(b).size());
  }
  return static_cast<double>(kBlockBytes) * static_cast<double>(samples) / bytes;
}

TEST(Ratios, DeltaCompressesLowDeltaBlocks) {
  auto algo = make_algorithm("delta");
  EXPECT_GT(mean_ratio(*algo, workload::PatternKind::LowDelta), 3.0);
}

TEST(Ratios, DeltaZeroBlocksNearMax) {
  auto algo = make_algorithm("delta");
  EXPECT_GT(mean_ratio(*algo, workload::PatternKind::Zero), 30.0);
}

TEST(Ratios, DeltaRandomIncompressible) {
  auto algo = make_algorithm("delta");
  EXPECT_LT(mean_ratio(*algo, workload::PatternKind::Random), 1.05);
}

TEST(Ratios, FpHardForDictionaryFreeSchemes) {
  for (const char* name : {"delta", "bdi", "fpc"}) {
    auto algo = make_algorithm(name);
    EXPECT_LT(mean_ratio(*algo, workload::PatternKind::Fp), 1.2)
        << name << " should not compress random-mantissa doubles";
  }
}

TEST(Ratios, NarrowCompressibleByAll) {
  for (const char* name : {"delta", "bdi", "fpc", "sfpc", "cpack", "sc2"}) {
    auto algo = make_algorithm(name);
    EXPECT_GT(mean_ratio(*algo, workload::PatternKind::Narrow), 1.8) << name;
  }
}

TEST(Ratios, BdiAtLeastAsGoodAsDeltaOnDeltaFriendly) {
  auto delta = make_algorithm("delta");
  auto bdi = make_algorithm("bdi");
  const double rd = mean_ratio(*delta, workload::PatternKind::LowDelta);
  const double rb = mean_ratio(*bdi, workload::PatternKind::LowDelta);
  EXPECT_GE(rb, rd * 0.85) << "BDI explores a superset of delta encodings";
}

TEST(Ratios, FpcBeatsSfpc) {
  // FPC's zero-run coding and richer pattern set must beat simplified FPC
  // on zero-heavy structured content (Table 1: 1.5 vs 1.33). Content where
  // zero words appear isolated (no runs) is where SFPC's cheap single-zero
  // code catches up — hence the run-friendly mix here.
  auto fpc = make_algorithm("fpc");
  auto sfpc = make_algorithm("sfpc");
  workload::ValueMix mix{0.45, 0.0, 0.2, 0.15, 0.0, 0.2};
  workload::ValueSynthesizer synth(mix, 11);
  double fpc_bytes = 0, sfpc_bytes = 0;
  for (Addr a = 0; a < 300 * kBlockBytes; a += kBlockBytes) {
    const BlockBytes b = synth.block_for(a);
    fpc_bytes += static_cast<double>(fpc->compress(b).size());
    sfpc_bytes += static_cast<double>(sfpc->compress(b).size());
  }
  EXPECT_LT(fpc_bytes, sfpc_bytes);
}

TEST(Ratios, Sc2TrainedBeatsGenericOnItsWorkload) {
  workload::ValueMix mix{0.1, 0.2, 0.3, 0.2, 0.1, 0.1};
  workload::ValueSynthesizer synth(mix, 9);
  std::vector<BlockBytes> sample;
  for (Addr a = 0; a < 1024 * kBlockBytes; a += kBlockBytes)
    sample.push_back(synth.block_for(a));

  Sc2Algorithm generic;
  Sc2Algorithm trained(std::span<const BlockBytes>(sample.data(), sample.size()));

  double generic_bytes = 0, trained_bytes = 0;
  for (Addr a = 2048 * kBlockBytes; a < 2448 * kBlockBytes; a += kBlockBytes) {
    const BlockBytes b = synth.block_for(a);
    generic_bytes += static_cast<double>(generic.compress(b).size());
    trained_bytes += static_cast<double>(trained.compress(b).size());
  }
  EXPECT_LT(trained_bytes, generic_bytes)
      << "the SC2 sampling phase must pay off on its own value population";
}

TEST(Ratios, Sc2HighestOnFrequentValueContent) {
  // SC2's headline feature (Table 1: ~2.4x where pattern schemes get ~1.5x)
  // shows on content dominated by recurring values (zeros, small integers).
  workload::ValueMix mix{0.3, 0.6, 0.0, 0.0, 0.0, 0.1};
  workload::ValueSynthesizer synth(mix, 5);
  std::vector<BlockBytes> sample;
  for (Addr a = 0; a < 1024 * kBlockBytes; a += kBlockBytes)
    sample.push_back(synth.block_for(a));
  Sc2Algorithm sc2(std::span<const BlockBytes>(sample.data(), sample.size()));
  auto delta = make_algorithm("delta");

  double sc2_bytes = 0, delta_bytes = 0;
  for (Addr a = 0; a < 400 * kBlockBytes; a += kBlockBytes) {
    const BlockBytes b = synth.block_for(a);
    sc2_bytes += static_cast<double>(sc2.compress(b).size());
    delta_bytes += static_cast<double>(delta->compress(b).size());
  }
  EXPECT_LT(sc2_bytes, delta_bytes);
}

TEST(Ratios, EncodedNeverLargerThanRawFallback) {
  workload::ValueMix mix{0.1, 0.1, 0.2, 0.2, 0.2, 0.2};
  workload::ValueSynthesizer synth(mix, 123);
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (Addr a = 0; a < 200 * kBlockBytes; a += kBlockBytes) {
      EXPECT_LE(algo->compress(synth.block_for(a)).size(), kBlockBytes + 1);
    }
  }
}

}  // namespace
}  // namespace disco::compress
