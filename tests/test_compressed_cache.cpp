// Compressed-L2 behaviour across schemes on the mini CMP: data integrity
// through every compression deployment, capacity expansion, bank-side
// energy events, and DRAM decompression guarantees.
#include <gtest/gtest.h>

#include "cache_test_util.h"

namespace disco::cache {
namespace {

using testutil::MiniCmp;
using testutil::word_at;

BlockBytes compressible_block(Addr a) {
  BlockBytes b{};
  const std::uint64_t base = splitmix64(a / kBlockBytes);
  for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
    const std::uint64_t v = base + (splitmix64(a + f) % 100);
    std::memcpy(b.data() + f * 8, &v, 8);
  }
  return b;
}

class SchemeParam : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeParam, LoadStoreIntegrityAcrossSchemes) {
  MiniCmp cmp(GetParam());
  cmp.set_memory_pattern(compressible_block);
  Rng rng(17);
  std::map<Addr, std::uint64_t> golden;
  for (int i = 0; i < 150; ++i) {
    const Addr addr = rng.next_below(48) * kBlockBytes;
    const auto node = static_cast<NodeId>(rng.next_below(4));
    if (rng.chance(0.4)) {
      const std::uint64_t v = rng.next_u64();
      cmp.store(node, addr, v);
      golden[addr] = v;
    } else {
      const BlockBytes b = cmp.load(node, addr);
      if (auto it = golden.find(addr); it != golden.end())
        EXPECT_EQ(word_at(b, 0), it->second);
      else
        EXPECT_EQ(b, compressible_block(addr)) << "clean load must see memory";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeParam,
                         ::testing::Values(Scheme::Baseline, Scheme::CC,
                                           Scheme::CNC, Scheme::DISCO,
                                           Scheme::Ideal),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(CompressedCache, StoredCompressedUnderCc) {
  MiniCmp cmp(Scheme::CC);
  cmp.set_memory_pattern(compressible_block);
  cmp.load(0, 0x100 * kBlockBytes);
  cmp.drain();
  // home of that addr: (0x100) % 4 == 0.
  const L2Line* line = cmp.l2s_[0]->array().lookup(0x100 * kBlockBytes);
  ASSERT_NE(line, nullptr);
  EXPECT_TRUE(line->stored.has_value());
  EXPECT_LT(line->segments, 8u);
  EXPECT_GT(cmp.stats_.bank_compressions, 0u);
}

TEST(CompressedCache, BaselineStoresRaw) {
  MiniCmp cmp(Scheme::Baseline);
  cmp.set_memory_pattern(compressible_block);
  cmp.load(0, 0x100 * kBlockBytes);
  cmp.drain();
  const L2Line* line = cmp.l2s_[0]->array().lookup(0x100 * kBlockBytes);
  ASSERT_NE(line, nullptr);
  EXPECT_FALSE(line->stored.has_value());
  EXPECT_EQ(line->segments, 8u);
  EXPECT_EQ(cmp.stats_.bank_compressions, 0u);
}

TEST(CompressedCache, CcPaysBankDecompressionOnReads) {
  MiniCmp cmp(Scheme::CC);
  cmp.set_memory_pattern(compressible_block);
  cmp.load(0, 64 * kBlockBytes);
  cmp.load(1, 64 * kBlockBytes);  // L2 hit -> bank decompression
  EXPECT_GT(cmp.stats_.bank_decompressions, 0u);
}

TEST(CompressedCache, DiscoInjectsStoredWireWithoutBankDecomp) {
  MiniCmp cmp(Scheme::DISCO);
  cmp.set_memory_pattern(compressible_block);
  cmp.load(0, 64 * kBlockBytes);
  cmp.load(1, 64 * kBlockBytes);
  EXPECT_EQ(cmp.stats_.bank_decompressions, 0u)
      << "DISCO banks never decompress on the read path";
  EXPECT_GT(cmp.noc_stats_.ni_decompressions, 0u)
      << "the consumer NI decompresses instead";
}

TEST(CompressedCache, CncDoubleCompressionEvents) {
  MiniCmp cmp(Scheme::CNC);
  cmp.set_memory_pattern(compressible_block);
  cmp.load(0, 64 * kBlockBytes);
  cmp.load(1, 64 * kBlockBytes);
  cmp.drain();
  EXPECT_GT(cmp.stats_.bank_decompressions, 0u);
  EXPECT_GT(cmp.noc_stats_.ni_compressions, 0u);
  EXPECT_GT(cmp.noc_stats_.ni_decompressions, 0u);
}

TEST(CompressedCache, DramNeverReceivesCompressedBlocks) {
  // The MemCtrl asserts this internally; exercise the eviction-writeback
  // path under DISCO where packets can travel compressed.
  MiniCmp cmp(Scheme::DISCO);
  cmp.set_memory_pattern(compressible_block);
  // Dirty blocks that all map to one L2 set of bank 0, overflowing it to
  // force dirty L2 evictions -> MemWB.
  const auto& arr = cmp.l2s_[0]->array();
  const std::size_t target_set = arr.set_of(0);
  Rng rng(5);
  int stored = 0;
  for (Addr idx = 0; stored < 80; ++idx) {
    const Addr addr = idx * kBlockBytes;
    if (idx % 4 != 0) continue;  // home bank 0
    if (arr.set_of(addr) != target_set) continue;
    cmp.store(static_cast<NodeId>(rng.next_below(4)), addr, rng.next_u64());
    ++stored;
  }
  ASSERT_TRUE(cmp.drain());
  // If a compressed block had reached DRAM, the assert would have fired.
  EXPECT_GT(cmp.stats_.dram_writes, 0u);
}

TEST(CompressedCache, EffectiveCapacityExceedsNominalUnderCompression) {
  MiniCmp cc(Scheme::CC);
  cc.set_memory_pattern(compressible_block);
  MiniCmp base(Scheme::Baseline);
  base.set_memory_pattern(compressible_block);

  // Touch far more blocks than nominal capacity of one set region.
  Rng rng(9);
  std::vector<Addr> addrs;
  for (int i = 0; i < 400; ++i) addrs.push_back(rng.next_below(20000) * kBlockBytes);
  for (const Addr a : addrs) {
    cc.load(static_cast<NodeId>(a / kBlockBytes % 4), a);
    base.load(static_cast<NodeId>(a / kBlockBytes % 4), a);
  }
  std::uint64_t cc_lines = 0, base_lines = 0;
  for (int n = 0; n < 4; ++n) {
    cc_lines += cc.l2s_[n]->array().valid_lines();
    base_lines += base.l2s_[n]->array().valid_lines();
  }
  EXPECT_GE(cc_lines, base_lines);
}

TEST(CompressedCache, FatUpdateResizesStoredLine) {
  MiniCmp cmp(Scheme::CC);
  // Memory block is all-zero (1 segment); the store makes it bigger.
  cmp.set_memory_pattern([](Addr) { return zero_block(); });
  const Addr addr = 4 * kBlockBytes;  // home bank 0
  cmp.load(0, addr);
  cmp.drain();
  const L2Line* before = cmp.l2s_[0]->array().lookup(addr);
  ASSERT_NE(before, nullptr);
  const auto segs_before = before->segments;

  cmp.store(0, addr, 0xFFFFFFFFFFFFFFFFULL);
  // Evict from L1 to force the dirty data back into L2.
  const Addr stride = 128 * kBlockBytes * 4;
  for (int i = 1; i <= 6; ++i) cmp.load(0, addr + i * stride);
  ASSERT_TRUE(cmp.drain());
  const L2Line* after = cmp.l2s_[0]->array().lookup(addr);
  if (after != nullptr) {
    EXPECT_GE(after->segments, segs_before);
    EXPECT_EQ(testutil::word_at(after->data, 0), 0xFFFFFFFFFFFFFFFFULL);
  }
}

}  // namespace
}  // namespace disco::cache
