// Property tests: every algorithm must losslessly round-trip every block —
// the invariant DISCO's in-flight transformations rely on. Parameterized
// over all registered algorithms x a corpus of pattern classes and random
// fuzz blocks.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "compress/registry.h"
#include "workload/value_synth.h"

namespace disco::compress {
namespace {

BlockBytes block_of_u64(std::initializer_list<std::uint64_t> words) {
  BlockBytes b{};
  std::size_t i = 0;
  for (std::uint64_t w : words) {
    std::memcpy(b.data() + i * 8, &w, 8);
    ++i;
  }
  return b;
}

class RoundTrip : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { algo_ = make_algorithm(GetParam()); }

  void expect_roundtrip(const BlockBytes& block) {
    const Encoded enc = algo_->compress(block);
    ASSERT_LE(enc.size(), kBlockBytes + 1) << "fallback must bound the encoding";
    ASSERT_GE(enc.size(), 1u);
    const BlockBytes out =
        algo_->decompress(std::span<const std::uint8_t>(enc.bytes));
    EXPECT_EQ(out, block) << "lossy round-trip in " << GetParam();
  }

  std::unique_ptr<Algorithm> algo_;
};

TEST_P(RoundTrip, ZeroBlock) { expect_roundtrip(zero_block()); }

TEST_P(RoundTrip, ZeroBlockCompressesWell) {
  const Encoded enc = algo_->compress(zero_block());
  EXPECT_LT(enc.size(), kBlockBytes / 2) << "all-zero block barely compressed";
}

TEST_P(RoundTrip, AllOnesBytes) {
  BlockBytes b;
  b.fill(0xFF);
  expect_roundtrip(b);
}

TEST_P(RoundTrip, RepeatedWord) {
  expect_roundtrip(block_of_u64({42, 42, 42, 42, 42, 42, 42, 42}));
}

TEST_P(RoundTrip, SmallDeltasFromBase) {
  const std::uint64_t base = 0xDEADBEEF12345678ULL;
  expect_roundtrip(block_of_u64({base, base + 1, base + 17, base + 250,
                                 base + 3, base + 99, base + 254, base + 128}));
}

TEST_P(RoundTrip, NegativeDeltas) {
  const std::uint64_t base = 1'000'000;
  expect_roundtrip(block_of_u64({base, base - 1, base - 100, base - 128,
                                 base + 127, base - 50, base, base - 2}));
}

TEST_P(RoundTrip, MixedZeroAndBase) {
  const std::uint64_t base = 0x7F0000001000ULL;
  expect_roundtrip(block_of_u64({base, 0, base + 5, 0, 3, base + 200, 0, 250}));
}

TEST_P(RoundTrip, PointerLikeValues) {
  const std::uint64_t heap = 0x00007F3A00000000ULL;
  expect_roundtrip(block_of_u64({heap + 0x10, heap + 0x40, heap + 0x88,
                                 heap + 0x100, heap + 0x148, heap + 0x1F0,
                                 heap + 0x238, heap + 0x280}));
}

TEST_P(RoundTrip, IncompressibleRandomFallsBackRaw) {
  Rng rng(99);
  BlockBytes b;
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
  expect_roundtrip(b);
}

TEST_P(RoundTrip, SignedBoundaryValues) {
  expect_roundtrip(block_of_u64(
      {0x8000000000000000ULL, 0x7FFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL, 1,
       0x80, 0x7F, 0xFF80, 0x10000}));
}

TEST_P(RoundTrip, FuzzRandomBlocks) {
  Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    BlockBytes b;
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
    expect_roundtrip(b);
  }
}

TEST_P(RoundTrip, FuzzStructuredBlocks) {
  // Mix of the value-synthesizer patterns at various weights.
  workload::ValueMix mix{0.2, 0.2, 0.2, 0.15, 0.15, 0.1};
  workload::ValueSynthesizer synth(mix, 777);
  for (Addr a = 0; a < 500 * kBlockBytes; a += kBlockBytes) {
    expect_roundtrip(synth.block_for(a));
  }
}

TEST_P(RoundTrip, FuzzSparseBlocks) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    BlockBytes b{};
    const int nonzero = 1 + static_cast<int>(rng.next_below(10));
    for (int i = 0; i < nonzero; ++i)
      b[rng.next_below(kBlockBytes)] = static_cast<std::uint8_t>(rng.next_u64());
    expect_roundtrip(b);
  }
}

TEST_P(RoundTrip, LatencyModelIsSane) {
  const LatencyModel lat = algo_->latency();
  EXPECT_GE(lat.comp_cycles, 1u);
  EXPECT_GE(lat.decomp_cycles, 1u);
  EXPECT_LE(lat.comp_cycles, 20u);
  EXPECT_LE(lat.decomp_cycles, 20u);
  EXPECT_GT(algo_->hardware_overhead(), 0.0);
  EXPECT_LT(algo_->hardware_overhead(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, RoundTrip,
                         ::testing::Values("delta", "bdi", "fpc", "sfpc",
                                           "cpack", "sc2", "fvc", "zerobit"),
                         [](const auto& info) { return info.param; });

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("lz4"), std::invalid_argument);
}

TEST(Registry, NamesAreConstructible) {
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    ASSERT_NE(algo, nullptr);
    EXPECT_EQ(algo->name(), name);
  }
}

}  // namespace
}  // namespace disco::compress
