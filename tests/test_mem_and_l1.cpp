// Memory-controller timing/content tests and focused L1 behaviours (MSHR
// limits, coalescing, store replay) on the mini CMP.
#include <gtest/gtest.h>

#include "cache_test_util.h"

namespace disco::cache {
namespace {

using testutil::MiniCmp;
using testutil::word_at;

TEST(MemCtrl, BackingStoreLazyAndSticky) {
  MiniCmp cmp;
  const BlockBytes first = cmp.mem_->read_block(0x1000);
  EXPECT_EQ(cmp.mem_->read_block(0x1000), first) << "content must be stable";
  BlockBytes changed = first;
  changed[0] ^= 0xFF;
  cmp.mem_->write_block(0x1000, changed);
  EXPECT_EQ(cmp.mem_->read_block(0x1000), changed);
}

TEST(MemCtrl, AccessLatencyRespected) {
  MiniCmp cmp;
  const Cycle start = cmp.clock_;
  cmp.load(0, 0x2000);
  // DRAM access latency (120) must dominate the round trip.
  EXPECT_GE(cmp.clock_ - start, Cycle{cmp.cfg_.mem.access_latency});
}

TEST(MemCtrl, BankContentionSerializes) {
  // Two fills to the same DRAM bank take longer than two to different banks.
  MiniCmp same;
  const Addr a0 = 0;  // bank_of uses (blk >> 4) % 8
  const Addr a1 = (8ULL << 4) * kBlockBytes;  // same bank, different block
  same.issue(0, a0, false, 0);
  same.issue(1, a1 + 0x40, false, 0);  // keep homes distinct
  same.drain();
  const Cycle same_time = same.clock_;

  MiniCmp diff;
  const Addr b1 = (1ULL << 4) * kBlockBytes;  // adjacent bank
  diff.issue(0, a0, false, 0);
  diff.issue(1, b1 + 0x40, false, 0);
  diff.drain();
  EXPECT_GE(same_time, diff.clock_);
}

TEST(L1, MshrLimitBlocks) {
  MiniCmp cmp;
  // Issue more distinct misses than MSHR entries without draining.
  const std::uint32_t limit = cmp.cfg_.l1.mshr_entries;
  std::uint32_t accepted = 0;
  for (std::uint32_t i = 0; i < limit + 4; ++i) {
    const auto out = cmp.l1s_[0]->access(1000 + i, (0x100 + i * 16) * kBlockBytes,
                                         false, 0, cmp.clock_);
    if (out == L1Cache::Outcome::Miss) ++accepted;
  }
  EXPECT_EQ(accepted, limit);
  EXPECT_EQ(cmp.l1s_[0]->mshr_in_use(), limit);
  ASSERT_TRUE(cmp.drain());
  EXPECT_EQ(cmp.l1s_[0]->mshr_in_use(), 0u);
}

TEST(L1, CoalescingSharesOneMshr) {
  MiniCmp cmp;
  const Addr blk = 0x5500 * kBlockBytes;
  EXPECT_EQ(cmp.l1s_[0]->access(1, blk, false, 0, cmp.clock_),
            L1Cache::Outcome::Miss);
  EXPECT_EQ(cmp.l1s_[0]->access(2, blk + 8, false, 0, cmp.clock_),
            L1Cache::Outcome::Miss);
  EXPECT_EQ(cmp.l1s_[0]->access(3, blk + 16, false, 0, cmp.clock_),
            L1Cache::Outcome::Miss);
  EXPECT_EQ(cmp.l1s_[0]->mshr_in_use(), 1u) << "same-block misses coalesce";
  ASSERT_TRUE(cmp.drain());
}

TEST(L1, StoreCoalescedOntoReadMissReplaysAsUpgrade) {
  MiniCmp cmp;
  const Addr blk = 0x7700 * kBlockBytes;
  // Make the block shared first so the read grant comes back DataS.
  cmp.load(1, blk);
  cmp.load(2, blk);
  // Now core 0: load-miss immediately followed by store to the same block.
  EXPECT_EQ(cmp.l1s_[0]->access(10, blk, false, 0, cmp.clock_),
            L1Cache::Outcome::Miss);
  EXPECT_EQ(cmp.l1s_[0]->access(11, blk + 8, true, 0xAB, cmp.clock_),
            L1Cache::Outcome::Miss)
      << "store must coalesce, not block";
  ASSERT_TRUE(cmp.drain());
  const L1Line* line = cmp.l1s_[0]->peek(blk);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, L1State::M);
  EXPECT_EQ(word_at(line->data, 8), 0xABu);
}

TEST(L1, ReaccessDuringWritebackSeesDirtyData) {
  MiniCmp cmp;
  const Addr blk = 0x9900 * kBlockBytes;
  cmp.store(0, blk, 0x11);
  // Evict it (dirty -> eviction buffer + PutM): fill the set and let the
  // grants install (each install evicts the then-LRU line).
  const Addr stride = 128 * kBlockBytes;
  for (int i = 1; i <= 5; ++i) cmp.load(0, blk + i * stride);
  // Re-access right away: the access() guard may return Blocked while the
  // writeback is un-acked; MiniCmp::issue retries until accepted, and the
  // reload must return the dirty value.
  EXPECT_EQ(word_at(cmp.load(0, blk), 0), 0x11u);
}

TEST(Delayed, InjectorPreservesFifoWithinCycle) {
  MiniCmp cmp;  // reuse an NI
  DelayedInjector inj(cmp.net_->ni(0));
  auto a = std::make_shared<noc::Packet>();
  a->id = 1;
  a->vnet = VNet::Request;
  auto b = std::make_shared<noc::Packet>();
  b->id = 2;
  b->vnet = VNet::Request;
  inj.schedule(a, 5);
  inj.schedule(b, 5);
  EXPECT_FALSE(inj.idle());
  inj.tick(4);
  EXPECT_FALSE(inj.idle());
  inj.tick(5);
  EXPECT_TRUE(inj.idle());
  EXPECT_EQ(cmp.net_->ni(0).pending_injections(), 2u);
}

}  // namespace
}  // namespace disco::cache
