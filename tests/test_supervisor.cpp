// Crash-resilient sweep supervisor: process isolation survives SIGSEGV,
// hang watchdog + SIGTERM/SIGKILL escalation, retry with backoff,
// checkpoint/resume byte-identity, in-sim deadlock/livelock/starvation
// classification, cooperative-cancellation thread reclamation, and the
// SIGINT flush-and-resume path. The deterministic debug fault hooks
// (--debug-crash-cell & co.) stand in for real crashes and hangs.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "cmp/system.h"
#include "common/interrupt.h"
#include "sim/json_export.h"
#include "sim/supervisor.h"
#include "sim/sweep.h"
#include "sim/sweep_internal.h"
#include "sim/wire.h"
#include "workload/profile.h"

namespace disco::sim {
namespace {

RunOptions tiny_run() {
  RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 2000;
  opt.measure_cycles = 8000;
  return opt;
}

std::vector<SweepCell> small_grid() {
  const RunOptions opt = tiny_run();
  std::vector<SweepCell> cells;
  std::size_t group = 0;
  for (const char* name : {"canneal", "swaptions"}) {
    const auto& profile = workload::profile_by_name(name);
    for (const Scheme s : {Scheme::CC, Scheme::DISCO}) {
      SystemConfig cfg;
      cfg.scheme = s;
      SweepCell c{cfg, profile, opt};
      c.group = group;
      cells.push_back(std::move(c));
    }
    ++group;
  }
  return cells;
}

std::string as_json(const SweepResult& r) {
  std::ostringstream os;
  write_json(os, r.ok_results());
  return os.str();
}

SweepOptions quiet(unsigned threads) {
  SweepOptions opt;
  opt.threads = threads;
  opt.progress = false;
  return opt;
}

/// Unique scratch dir per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("disco-supervisor-" + tag + "-" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  std::string manifest() const { return (path_ / "manifest.jsonl").string(); }
  bool has(const std::string& name) const {
    return std::filesystem::exists(path_ / name);
  }

 private:
  std::filesystem::path path_;
};

/// RAII guard: some tests raise the process interrupt flag; it must never
/// leak into later tests.
struct InterruptFlagGuard {
  ~InterruptFlagGuard() { interrupt_flag().store(false); }
};

// ---------------------------------------------------------------------------
// Stall classification + wire format (pure units)
// ---------------------------------------------------------------------------

TEST(StallClassification, ActivityWithoutRetirementIsLivelock) {
  EXPECT_EQ(cmp::classify_stall(true, 12, 0), cmp::StallKind::Livelock);
  EXPECT_EQ(cmp::classify_stall(true, 0, 5), cmp::StallKind::Livelock);
}

TEST(StallClassification, StuckInflightFlitsAreDeadlock) {
  EXPECT_EQ(cmp::classify_stall(false, 7, 0), cmp::StallKind::Deadlock);
  EXPECT_EQ(cmp::classify_stall(false, 1, 3), cmp::StallKind::Deadlock);
}

TEST(StallClassification, EmptyNetworkWithStarvedSourcesIsStarvation) {
  EXPECT_EQ(cmp::classify_stall(false, 0, 4), cmp::StallKind::Starvation);
  EXPECT_EQ(cmp::classify_stall(false, 0, 0), cmp::StallKind::Starvation);
}

TEST(WireFormat, RoundTripIsBitExact) {
  CellResult r;
  r.workload = "w\"ith \\escapes\nand\tcontrol\x01";
  r.algorithm = "delta";
  r.scheme = Scheme::CNC;
  r.measured_cycles = 123456789;
  r.l1_misses = ~0ULL;
  r.avg_nuca_latency = 0.1 + 0.2;  // a value with no exact decimal rendering
  r.avg_stored_ratio = 1.0 / 3.0;
  r.l2_miss_rate = -0.0;
  r.energy.dram_nj = 6.02214076e23;
  r.fault.enabled = true;
  r.fault.crc_checks = 42;
  r.invariants.enabled = true;
  r.invariants.first_violation = "cycle 7: credit pool underflow";
  r.trace_text = "line1\nline2\n";

  const std::string encoded = wire::encode_result(r);
  const CellResult d = wire::decode_result(wire::parse_object(encoded));
  EXPECT_EQ(d.workload, r.workload);
  EXPECT_EQ(d.scheme, r.scheme);
  EXPECT_EQ(d.l1_misses, r.l1_misses);
  // Bit patterns, not value comparison: distinguishes -0.0 from 0.0.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.avg_nuca_latency),
            std::bit_cast<std::uint64_t>(r.avg_nuca_latency));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.l2_miss_rate),
            std::bit_cast<std::uint64_t>(r.l2_miss_rate));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(d.energy.dram_nj),
            std::bit_cast<std::uint64_t>(r.energy.dram_nj));
  EXPECT_TRUE(d.fault.enabled);
  EXPECT_EQ(d.fault.crc_checks, 42u);
  EXPECT_EQ(d.invariants.first_violation, r.invariants.first_violation);
  EXPECT_EQ(d.trace_text, r.trace_text);
  // Re-encoding the decoded result reproduces the exact bytes.
  EXPECT_EQ(wire::encode_result(d), encoded);
}

TEST(WireFormat, RejectsTruncatedAndMalformedPayloads) {
  const std::string good = wire::encode_result(CellResult{});
  EXPECT_THROW(wire::parse_object(good.substr(0, good.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(wire::parse_object(""), std::runtime_error);
  EXPECT_THROW(wire::parse_object("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(wire::parse_object(good + "x"), std::runtime_error);
  EXPECT_THROW(wire::decode_result(wire::parse_object("{\"workload\":\"w\"}")),
               std::runtime_error)
      << "missing fields must be an error, not silently defaulted";
}

// ---------------------------------------------------------------------------
// Process isolation
// ---------------------------------------------------------------------------

TEST(Supervisor, IsolatedSweepIsByteIdenticalToInProcess) {
  const auto cells = small_grid();
  const SweepResult inproc = run_sweep(cells, quiet(2));
  SweepOptions iso = quiet(2);
  iso.supervisor.isolate = true;
  const SweepResult isolated = run_sweep(cells, iso);
  ASSERT_EQ(inproc.completed, cells.size());
  ASSERT_EQ(isolated.completed, cells.size());
  EXPECT_EQ(as_json(isolated), as_json(inproc))
      << "forked children must reproduce in-process metrics bit-for-bit";
}

TEST(Supervisor, SurvivesChildCrashAndRetriesWithBackoff) {
  ScratchDir dir("crash-retry");
  auto cells = small_grid();
  SweepOptions opt = quiet(2);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.max_retries = 2;
  opt.supervisor.retry_backoff_ms = 50;
  opt.supervisor.debug_crash_cell = 1;
  opt.supervisor.debug_crash_attempts = 1;  // attempt 2 succeeds
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.all_ok()) << "a crashing cell must be retried, not fatal";
  EXPECT_EQ(r.completed, cells.size());
  EXPECT_EQ(r.cells[1].attempts, 2u);
  EXPECT_GE(r.cells[1].wall_ms, 50.0) << "retry must wait out the backoff";
  for (const std::size_t i : {0UL, 2UL, 3UL})
    EXPECT_EQ(r.cells[i].attempts, 1u) << "cell " << i;
  EXPECT_TRUE(dir.has("postmortem-cell1-attempt1.txt"))
      << "the crashing attempt must leave a black box";
}

TEST(Supervisor, CrashRecordedWhenRetriesExhausted) {
  ScratchDir dir("crash-exhaust");
  auto cells = small_grid();
  SweepOptions opt = quiet(2);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.max_retries = 1;
  opt.supervisor.retry_backoff_ms = 10;
  opt.supervisor.debug_crash_cell = 2;
  opt.supervisor.debug_crash_attempts = 99;  // never recovers
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_FALSE(r.all_ok());
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.crashed, 1u);
  EXPECT_EQ(r.completed, cells.size() - 1) << "other cells must still finish";
  EXPECT_EQ(r.cells[2].status, CellStatus::Crashed);
  EXPECT_EQ(r.cells[2].attempts, 2u);
  EXPECT_NE(r.cells[2].error.find("SIGSEGV"), std::string::npos)
      << r.cells[2].error;
}

TEST(Supervisor, HungChildIsKilledAndRetried) {
  auto cells = small_grid();
  cells.resize(2);
  SweepOptions opt = quiet(2);
  opt.cell_timeout_ms = 250;
  opt.supervisor.isolate = true;
  opt.supervisor.max_retries = 1;
  opt.supervisor.retry_backoff_ms = 10;
  opt.supervisor.hang_grace_ms = 500;
  opt.supervisor.debug_hang_cell = 0;
  opt.supervisor.debug_crash_attempts = 1;  // the retry runs clean
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.all_ok())
      << "a hung child must be killed and retried, not hang the sweep";
  EXPECT_EQ(r.cells[0].attempts, 2u);
  EXPECT_TRUE(r.cells[1].ok());
}

TEST(Supervisor, NonStdExceptionBecomesStructuredError) {
  auto cells = small_grid();
  SweepOptions opt = quiet(2);
  opt.supervisor.debug_throw_cell = 1;  // throws the int 42, in-process
  opt.supervisor.max_retries = 0;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.cells[1].status, CellStatus::Failed);
  EXPECT_EQ(r.cells[1].error, "int exception: 42")
      << "a non-std::exception throw must not std::terminate the sweep";
  EXPECT_EQ(r.completed, cells.size() - 1);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume
// ---------------------------------------------------------------------------

TEST(Supervisor, ResumeSkipsDoneCellsAndReproducesByteIdenticalOutput) {
  ScratchDir dir("resume");
  const auto cells = small_grid();
  const std::string reference = as_json(run_sweep(cells, quiet(2)));

  // First run: cell 2 crashes out permanently; the rest are journaled Ok.
  SweepOptions first = quiet(2);
  first.supervisor.isolate = true;
  first.supervisor.checkpoint_dir = dir.str();
  first.supervisor.max_retries = 0;
  first.supervisor.debug_crash_cell = 2;
  first.supervisor.debug_crash_attempts = 99;
  const SweepResult r1 = run_sweep(cells, first);
  EXPECT_EQ(r1.completed, cells.size() - 1);
  EXPECT_EQ(r1.crashed, 1u);

  const Manifest m = load_manifest(dir.manifest());
  EXPECT_EQ(m.cells, cells.size());
  EXPECT_EQ(m.entries.size(), cells.size());

  // Resume: only the crashed cell reruns. Proof of skipping: cell 0 is now
  // booby-trapped — if the resume reran it, it would crash.
  SweepOptions second = quiet(2);
  second.supervisor.isolate = true;
  second.supervisor.resume_manifest = dir.manifest();
  second.supervisor.debug_crash_cell = 0;
  second.supervisor.debug_crash_attempts = 99;
  second.supervisor.max_retries = 0;
  const SweepResult r2 = run_sweep(cells, second);
  EXPECT_TRUE(r2.all_ok());
  EXPECT_EQ(r2.completed, cells.size());
  EXPECT_EQ(as_json(r2), reference)
      << "a resumed sweep must emit byte-identical aggregate output";
}

TEST(Supervisor, ResumeManifestMismatchThrows) {
  ScratchDir dir("mismatch");
  const auto cells = small_grid();
  SweepOptions first = quiet(1);
  first.supervisor.checkpoint_dir = dir.str();
  (void)run_sweep(cells, first);

  SweepOptions wrong_seed = quiet(1);
  wrong_seed.base_seed = 999;
  wrong_seed.supervisor.resume_manifest = dir.manifest();
  EXPECT_THROW(run_sweep(cells, wrong_seed), std::runtime_error);

  auto fewer = cells;
  fewer.resize(2);
  SweepOptions wrong_shape = quiet(1);
  wrong_shape.supervisor.resume_manifest = dir.manifest();
  EXPECT_THROW(run_sweep(fewer, wrong_shape), std::runtime_error);

  SweepOptions missing = quiet(1);
  missing.supervisor.resume_manifest = dir.str() + "/no-such-manifest.jsonl";
  EXPECT_THROW(run_sweep(cells, missing), std::runtime_error);
}

TEST(Supervisor, InterruptFlushesManifestAndResumeFinishesTheSweep) {
  InterruptFlagGuard guard;
  ScratchDir dir("interrupt");
  const auto cells = small_grid();
  const std::string reference = as_json(run_sweep(cells, quiet(2)));

  // Interrupt already pending when the sweep starts: no cell runs, but the
  // manifest is still written so the work is resumable.
  interrupt_flag().store(true);
  SweepOptions opt = quiet(2);
  opt.supervisor.checkpoint_dir = dir.str();
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.interrupted);
  EXPECT_FALSE(r.all_ok());
  EXPECT_EQ(r.completed, 0u);
  for (const auto& c : r.cells)
    EXPECT_EQ(c.status, CellStatus::Interrupted) << "cell " << c.index;

  interrupt_flag().store(false);
  const Manifest m = load_manifest(dir.manifest());
  EXPECT_EQ(m.cells, cells.size());
  for (const auto& e : m.entries) EXPECT_EQ(e.status, CellStatus::Interrupted);

  SweepOptions resume = quiet(2);
  resume.supervisor.resume_manifest = dir.manifest();
  const SweepResult done = run_sweep(cells, resume);
  EXPECT_TRUE(done.all_ok());
  EXPECT_EQ(as_json(done), reference);
}

// ---------------------------------------------------------------------------
// In-sim no-progress watchdog
// ---------------------------------------------------------------------------

/// Zero-credit NoC: NIs can never inject, so the watchdog must classify the
/// stall as starvation (empty network, starved sources).
SweepCell starved_cell() {
  SystemConfig cfg;
  cfg.scheme = Scheme::Baseline;
  cfg.noc.vc_depth_flits = 0;
  SweepCell c{cfg, workload::profile_by_name("canneal"), tiny_run()};
  return c;
}

TEST(Watchdog, TripsOnZeroCreditStarvationWithClassifiedError) {
  SweepOptions opt = quiet(1);
  opt.progress_watchdog_cycles = 2000;
  opt.max_attempts = 1;
  const SweepResult r = run_sweep({starved_cell()}, opt);
  ASSERT_EQ(r.cells[0].status, CellStatus::Failed);
  EXPECT_NE(r.cells[0].error.find("watchdog"), std::string::npos)
      << r.cells[0].error;
  EXPECT_NE(r.cells[0].error.find("starvation"), std::string::npos)
      << r.cells[0].error;
}

TEST(Watchdog, HealthyCellNeverTrips) {
  auto cells = small_grid();
  cells.resize(1);
  SweepOptions opt = quiet(1);
  opt.progress_watchdog_cycles = 2000;  // far below the cell's cycle count
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.all_ok()) << r.cells[0].error;
}

TEST(Watchdog, IsolatedTripWritesPostmortemBlackBox) {
  ScratchDir dir("watchdog-postmortem");
  SweepOptions opt = quiet(1);
  opt.progress_watchdog_cycles = 2000;
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.max_retries = 0;
  const SweepResult r = run_sweep({starved_cell()}, opt);
  ASSERT_EQ(r.cells[0].status, CellStatus::Failed);
  EXPECT_NE(r.cells[0].error.find("starvation"), std::string::npos);
  ASSERT_TRUE(dir.has("postmortem-cell0-attempt1.txt"));
  std::ifstream f(dir.str() + "/postmortem-cell0-attempt1.txt");
  std::stringstream body;
  body << f.rdbuf();
  EXPECT_NE(body.str().find("postmortem black box"), std::string::npos);
  EXPECT_NE(body.str().find("stall_census"), std::string::npos);
  EXPECT_NE(body.str().find("last_progress_cycle"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Timed-out-cell thread reclamation (the in-process pool-slot leak fix)
// ---------------------------------------------------------------------------

TEST(Cancellation, TimedOutCellReleasesItsAttemptThread) {
  auto cells = small_grid();
  cells.resize(1);
  cells[0].opt.measure_cycles = 50'000'000;  // far beyond the budget
  SweepOptions opt = quiet(1);
  opt.cell_timeout_ms = 50;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.cells[0].status, CellStatus::TimedOut);
  // The cancellation token is polled every 256 cycles, so the attempt thread
  // must unwind almost immediately — not run 50M cycles to completion.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (detail::live_attempt_threads() != 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(detail::live_attempt_threads(), 0u)
      << "timed-out attempt thread leaked (pool slot not reclaimed)";
}

TEST(Cancellation, SupervisedTimeoutIsRetriedAndRecovers) {
  auto cells = small_grid();
  cells.resize(1);
  SweepOptions opt = quiet(1);
  // Generous budget: attempt 1 is a *deliberate* hang so it times out at any
  // budget, while the healthy retry must never be killed by a slow machine.
  opt.cell_timeout_ms = 2000;
  opt.supervisor.debug_hang_cell = 0;  // in-process hang, attempt 1 only
  opt.supervisor.debug_crash_attempts = 1;
  opt.supervisor.max_retries = 1;
  opt.supervisor.retry_backoff_ms = 10;
  opt.supervisor.hang_grace_ms = 2000;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.all_ok()) << r.cells[0].error;
  EXPECT_EQ(r.cells[0].attempts, 2u)
      << "the supervisor retries timeouts (unlike the plain sweep)";
  EXPECT_EQ(detail::live_attempt_threads(), 0u);
}

// ---------------------------------------------------------------------------
// The acceptance drill: one crash + one hang in one isolated sweep
// ---------------------------------------------------------------------------

TEST(Supervisor, CrashAndHangInOneSweepRecoverEndToEnd) {
  InterruptFlagGuard guard;
  ScratchDir dir("acceptance");
  const auto cells = small_grid();
  const std::string reference = as_json(run_sweep(cells, quiet(2)));

  SweepOptions opt = quiet(2);
  opt.cell_timeout_ms = 300;
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.max_retries = 1;
  opt.supervisor.retry_backoff_ms = 10;
  opt.supervisor.hang_grace_ms = 500;
  opt.supervisor.debug_crash_cell = 1;
  opt.supervisor.debug_hang_cell = 3;
  opt.supervisor.debug_crash_attempts = 99;  // both cells exhaust retries
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.completed, cells.size() - 2)
      << "healthy cells must complete around the crash and the hang";
  EXPECT_EQ(r.cells[1].status, CellStatus::Crashed);
  EXPECT_EQ(r.cells[1].attempts, 2u) << "crash retried up to max_retries";
  EXPECT_EQ(r.cells[3].status, CellStatus::TimedOut);
  EXPECT_EQ(r.cells[3].attempts, 2u) << "hang retried up to max_retries";
  EXPECT_TRUE(dir.has("postmortem-cell1-attempt1.txt"));
  EXPECT_TRUE(dir.has("postmortem-cell3-attempt1.txt"));

  // Resume with the faults gone (the flaky machine rebooted): byte-identical
  // aggregate output vs the uninterrupted reference.
  SweepOptions resume = quiet(2);
  resume.supervisor.isolate = true;
  resume.supervisor.resume_manifest = dir.manifest();
  resume.supervisor.checkpoint_dir = dir.str();
  const SweepResult done = run_sweep(cells, resume);
  EXPECT_TRUE(done.all_ok());
  EXPECT_EQ(as_json(done), reference);

  // Resuming the completed manifest is a no-op that still reproduces it.
  SweepOptions again = quiet(2);
  again.supervisor.resume_manifest = dir.manifest();
  again.supervisor.debug_crash_cell = 0;  // would crash if anything reran
  again.supervisor.debug_crash_attempts = 99;
  again.supervisor.max_retries = 0;
  const SweepResult noop = run_sweep(cells, again);
  EXPECT_TRUE(noop.all_ok());
  EXPECT_EQ(as_json(noop), reference);
}

// ---------------------------------------------------------------------------
// Mid-cell checkpointing: SIGKILL between snapshots, byte-identical resume
// ---------------------------------------------------------------------------

TEST(MidCellCheckpoint, SigkilledWorkerResumesByteIdenticallyAnyThreadCount) {
  const auto cells = small_grid();
  const std::string reference = as_json(run_sweep(cells, quiet(1)));

  for (const unsigned threads : {1u, 2u}) {
    ScratchDir dir("snapkill-t" + std::to_string(threads));
    SweepOptions opt = quiet(threads);
    opt.supervisor.isolate = true;
    opt.supervisor.checkpoint_dir = dir.str();
    opt.supervisor.snapshot_interval_cycles = 2000;
    opt.supervisor.max_retries = 1;
    opt.supervisor.retry_backoff_ms = 10;
    // Cell 0 SIGKILLs itself right after the snapshot at measured cycle
    // 4000 (of 8000) on attempt 1 only; attempt 2 must resume mid-cell.
    opt.supervisor.debug_kill_cell = 0;
    opt.supervisor.debug_kill_cycle = 4000;
    const SweepResult r = run_sweep(cells, opt);
    ASSERT_TRUE(r.all_ok()) << "threads=" << threads << ": "
                            << r.cells[0].error;
    EXPECT_EQ(r.cells[0].attempts, 2u)
        << "the SIGKILL must cost exactly one attempt";
    EXPECT_EQ(r.cells[0].snap_saved_cycles, 4000u)
        << "the retry must resume from the cycle-4000 snapshot";
    EXPECT_EQ(as_json(r), reference)
        << "threads=" << threads
        << ": resumed sweep must be byte-identical to an uninterrupted run";

    // Manifest lineage: the journal records the cycles saved by recovery.
    const Manifest m = load_manifest(dir.manifest());
    bool found = false;
    for (const auto& e : m.entries) {
      if (e.cell != 0) continue;
      found = true;
      EXPECT_EQ(e.snap_saved_cycles, 4000u);
    }
    EXPECT_TRUE(found);

    // Snapshot-dir hygiene: terminal cells leave no snapshots behind.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_FALSE(dir.has("snap-cell" + std::to_string(i) + ".bin"))
          << "snapshot for completed cell " << i << " was not GCed";
    }
  }
}

TEST(MidCellCheckpoint, CorruptedSnapshotFallsBackToFromZeroRetry) {
  auto cells = small_grid();
  cells.resize(1);
  const std::string reference = as_json(run_sweep(cells, quiet(1)));

  ScratchDir dir("snapcorrupt");
  // A stale, corrupted snapshot is already sitting where cell 0 would
  // resume from (e.g. disk corruption after a crash).
  {
    std::ofstream f(dir.str() + "/snap-cell0.bin", std::ios::binary);
    f << "DSNPgarbage-not-a-valid-snapshot-payload";
  }
  SweepOptions opt = quiet(1);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.snapshot_interval_cycles = 2000;
  const SweepResult r = run_sweep(cells, opt);
  ASSERT_TRUE(r.all_ok()) << r.cells[0].error;
  EXPECT_EQ(r.cells[0].snap_saved_cycles, 0u)
      << "checksum rejection must fall back to a from-zero run";
  EXPECT_EQ(as_json(r), reference);
  EXPECT_FALSE(dir.has("snap-cell0.bin"));
}

TEST(MidCellCheckpoint, FreshSweepClearsStaleSnapshots) {
  auto cells = small_grid();
  cells.resize(1);
  ScratchDir dir("snapstale");
  {
    std::ofstream f(dir.str() + "/snap-cell0.bin", std::ios::binary);
    f << "stale";
    std::ofstream t(dir.str() + "/snap-cell0.bin.tmp", std::ios::binary);
    t << "torn";
  }
  SweepOptions opt = quiet(1);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_TRUE(r.all_ok());
  EXPECT_FALSE(dir.has("snap-cell0.bin"))
      << "a fresh (non-resume) sweep must invalidate leftover snapshots";
  EXPECT_FALSE(dir.has("snap-cell0.bin.tmp"));
}

// ---------------------------------------------------------------------------
// RSS watchdog: memory exhaustion is a distinct, retryable outcome
// ---------------------------------------------------------------------------

TEST(RssWatchdog, OverLimitWorkerIsKilledAndJournaledDistinctly) {
  auto cells = small_grid();
  cells.resize(1);
  cells[0].opt.measure_cycles = 50'000'000;  // long enough to get sampled
  ScratchDir dir("rss");
  SweepOptions opt = quiet(1);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  opt.supervisor.max_rss_mb = 1;  // any real worker exceeds 1 MiB instantly
  opt.supervisor.max_retries = 1;
  opt.supervisor.retry_backoff_ms = 10;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.cells[0].status, CellStatus::ResourceExhausted)
      << r.cells[0].error;
  EXPECT_EQ(r.cells[0].attempts, 2u)
      << "resource exhaustion honors retry/backoff like other failures";
  EXPECT_NE(r.cells[0].error.find("max-rss-mb"), std::string::npos);
  EXPECT_EQ(r.failed, 1u);

  // The distinct outcome survives the journal roundtrip.
  const Manifest m = load_manifest(dir.manifest());
  ASSERT_EQ(m.entries.size(), 1u);
  EXPECT_EQ(m.entries[0].status, CellStatus::ResourceExhausted);
  std::ifstream f(dir.manifest());
  std::stringstream body;
  body << f.rdbuf();
  EXPECT_NE(body.str().find("resource_exhausted"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Manifest corruption containment (per-entry, not whole-file)
// ---------------------------------------------------------------------------

TEST(ManifestHardening, CorruptedEntryIsDroppedNotFatal) {
  auto cells = small_grid();
  cells.resize(2);
  ScratchDir dir("mancorrupt");
  SweepOptions opt = quiet(1);
  opt.supervisor.isolate = true;
  opt.supervisor.checkpoint_dir = dir.str();
  const SweepResult r = run_sweep(cells, opt);
  ASSERT_TRUE(r.all_ok());

  // Corrupt cell 0's journal entry: unknown status name (a parseable line
  // whose content is bad — the torn-line path is covered elsewhere).
  std::stringstream body;
  {
    std::ifstream f(dir.manifest());
    body << f.rdbuf();
  }
  std::string text = body.str();
  const auto pos = text.find("\"ok\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 4, "\"ok!\"");
  {
    std::ofstream f(dir.manifest(), std::ios::trunc);
    f << text;
  }

  const Manifest m = load_manifest(dir.manifest());
  EXPECT_EQ(m.entries.size(), 1u)
      << "the corrupted entry is dropped; the healthy one survives";

  // Resume reruns only the dropped cell and reproduces the full sweep.
  const std::string reference = as_json(run_sweep(cells, quiet(1)));
  SweepOptions resume = quiet(1);
  resume.supervisor.isolate = true;
  resume.supervisor.resume_manifest = dir.manifest();
  resume.supervisor.checkpoint_dir = dir.str();
  const SweepResult done = run_sweep(cells, resume);
  EXPECT_TRUE(done.all_ok());
  EXPECT_EQ(as_json(done), reference);
}

}  // namespace
}  // namespace disco::sim
