// Fault-injection and recovery tests: checksum primitives, injector
// determinism, the NI-level detect/NACK/retransmit protocol in isolation,
// the flit-loss timeout + bounded-retry fallback, and full-system runs
// under injected faults (the "no silent corruption ever" invariant).
#include <gtest/gtest.h>

#include "cmp/system.h"
#include "compress/registry.h"
#include "fault/fault.h"
#include "noc_test_util.h"
#include "workload/profile.h"

namespace disco {
namespace {

using noc::testutil::CollectingSink;
using noc::testutil::make_packet;
using noc::testutil::run_until_quiescent;

TEST(FaultChecksum, Crc32CatchesEverySingleBitFlip) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    BlockBytes b;
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_u64());
    const std::uint32_t ref = fault::crc32(std::span<const std::uint8_t>(b));
    for (std::size_t bit = 0; bit < kBlockBytes * 8; bit += 37) {
      BlockBytes mut = b;
      mut[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      EXPECT_NE(fault::crc32(std::span<const std::uint8_t>(mut)), ref);
    }
  }
}

TEST(FaultChecksum, Fold8CatchesSingleBitFlipsAndFitsTheHeaderField) {
  BlockBytes b{};
  b[3] = 0xA5;
  b[60] = 0x5A;
  const std::uint8_t f = fault::fold8(std::span<const std::uint8_t>(b));
  EXPECT_EQ(f, 0xA5 ^ 0x5A);
  BlockBytes mut = b;
  mut[17] ^= 0x04;
  EXPECT_NE(fault::fold8(std::span<const std::uint8_t>(mut)), f);
  // The dispatch helper zero-extends fold8 into the shared 32-bit field.
  EXPECT_EQ(fault::checksum(std::span<const std::uint8_t>(b), CrcMode::Fold8),
            static_cast<std::uint32_t>(f));
  EXPECT_EQ(fault::checksum(std::span<const std::uint8_t>(b), CrcMode::Crc32),
            fault::crc32(std::span<const std::uint8_t>(b)));
}

TEST(FaultInjector, DeterministicForAGivenSeed) {
  FaultConfig fc;
  fc.enabled = true;
  fc.link_bit_flip_rate = 0.5;
  fc.flit_drop_rate = 0.25;
  auto run = [&fc](std::uint64_t seed) {
    fault::FaultInjector fi(fc, seed);
    std::vector<std::uint8_t> buf(24, 0xCD);
    std::uint64_t drops = 0;
    for (int i = 0; i < 200; ++i) {
      fi.corrupt_link_payload(buf);
      if (fi.should_drop_flit()) ++drops;
    }
    return std::tuple{buf, fi.counters().link_bit_flips, drops};
  };
  EXPECT_EQ(run(42), run(42)) << "same seed must replay bit-exactly";
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(FaultInjector, ZeroRatesInjectNothing) {
  FaultConfig fc;
  fc.enabled = true;
  fault::FaultInjector fi(fc, 1);
  std::vector<std::uint8_t> buf(16, 0x77);
  const std::vector<std::uint8_t> ref = buf;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(fi.corrupt_link_payload(buf));
    EXPECT_FALSE(fi.corrupt_llc_payload(buf));
    EXPECT_FALSE(fi.corrupt_engine_output(buf));
    EXPECT_FALSE(fi.should_drop_flit());
    EXPECT_FALSE(fi.should_duplicate_flit());
    EXPECT_FALSE(fi.should_stall_engine());
  }
  EXPECT_EQ(buf, ref);
  EXPECT_EQ(fi.counters().total(), 0u);
}

class FaultNiFixture : public ::testing::Test {
 protected:
  void build(noc::NiPolicy policy, const FaultConfig& fc) {
    injector_ = std::make_unique<fault::FaultInjector>(fc, 99);
    net_ = std::make_unique<noc::Network>(NocConfig{}, policy, stats_);
    net_->set_fault_injector(injector_.get());
    sinks_.clear();
    sinks_.resize(16);
    for (NodeId n = 0; n < 16; ++n) {
      net_->register_sink(n, UnitKind::Core, &sinks_[n]);
    }
  }

  void run_cycles(Cycle n) {
    for (Cycle i = 0; i < n; ++i) net_->tick(++clock_);
  }

  std::unique_ptr<compress::Algorithm> algo_ =
      compress::make_algorithm("delta");
  noc::NocStats stats_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<noc::Network> net_;
  std::vector<CollectingSink> sinks_;
  Cycle clock_ = 0;
};

TEST_F(FaultNiFixture, CorruptedPayloadIsDetectedAndRecoveredByRetransmission) {
  noc::NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_on_eject_all = true;
  FaultConfig fc;
  fc.enabled = true;  // all rates zero: this test corrupts by hand
  build(p, fc);

  auto pkt = make_packet(0, 15, VNet::Response, true, clock_, 1);
  const BlockBytes truth = pkt->data;
  net_->inject(0, pkt, clock_);
  // Corrupt the wire form in the payload region (not the padding bits of
  // the final byte): the dst NI must reject the stream or fail the CRC.
  ASSERT_TRUE(pkt->compressed());
  pkt->encoded->bytes[1] ^= 0x01;

  run_cycles(800);
  ASSERT_EQ(sinks_[15].arrivals.size(), 1u) << "exactly one delivery";
  EXPECT_EQ(sinks_[15].arrivals[0].pkt->data, truth);
  EXPECT_EQ(stats_.corruptions_detected, 1u);
  EXPECT_EQ(stats_.nacks_sent, 1u);
  EXPECT_EQ(stats_.retransmissions, 1u);
  EXPECT_EQ(stats_.retransmit_deliveries, 1u);
  EXPECT_EQ(stats_.silent_corruptions, 0u);
  EXPECT_EQ(stats_.unrecovered_deliveries, 0u);
  EXPECT_GT(stats_.backoff_cycles, 0u);
  EXPECT_TRUE(net_->quiescent());
  EXPECT_TRUE(net_->credits_quiescent());
}

TEST_F(FaultNiFixture, IntactTrafficPassesVerificationUntouched) {
  noc::NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_on_eject_all = true;
  FaultConfig fc;
  fc.enabled = true;
  build(p, fc);

  for (std::uint64_t id = 1; id <= 8; ++id) {
    net_->inject(static_cast<NodeId>(id % 16),
                 make_packet(static_cast<NodeId>(id % 16), 15, VNet::Response,
                             true, clock_, id),
                 clock_);
  }
  run_cycles(600);
  EXPECT_EQ(sinks_[15].arrivals.size(), 8u);
  EXPECT_EQ(stats_.crc_checks, 8u);
  EXPECT_EQ(stats_.corruptions_detected, 0u);
  EXPECT_EQ(stats_.nacks_sent, 0u);
  EXPECT_EQ(stats_.silent_corruptions, 0u);
}

TEST_F(FaultNiFixture, TotalFlitLossFallsBackToGroundTruthAfterBoundedRetries) {
  noc::NiPolicy p;  // no compression: 8-flit raw packets with body flits
  FaultConfig fc;
  fc.enabled = true;
  fc.flit_drop_rate = 1.0;  // every body flit dies: retries cannot succeed
  fc.reassembly_timeout_cycles = 32;
  fc.nack_retry_interval = 16;
  fc.max_retries = 2;
  fc.retry_backoff_base = 2;
  build(p, fc);

  auto pkt = make_packet(0, 15, VNet::Response, true, clock_, 1);
  const BlockBytes truth = pkt->data;
  net_->inject(0, pkt, clock_);
  run_cycles(1500);

  ASSERT_EQ(sinks_[15].arrivals.size(), 1u)
      << "liveness: the block must still be delivered exactly once";
  EXPECT_EQ(sinks_[15].arrivals[0].pkt->data, truth);
  EXPECT_GE(stats_.flit_loss_timeouts, 1u);
  EXPECT_EQ(stats_.unrecovered_deliveries, 1u);
  EXPECT_EQ(stats_.retransmissions, 2u) << "bounded by max_retries";
  EXPECT_GT(injector_->counters().flit_drops, 0u);
  EXPECT_EQ(stats_.silent_corruptions, 0u);
  EXPECT_TRUE(net_->credits_quiescent())
      << "dropped flits must not leak credits";
}

TEST_F(FaultNiFixture, DuplicatedFlitsAreDeduplicatedAndHarmless) {
  noc::NiPolicy p;
  p.algo = algo_.get();
  p.compress_on_inject = true;
  p.decompress_on_eject_all = true;
  FaultConfig fc;
  fc.enabled = true;
  fc.flit_duplicate_rate = 1.0;  // every ejected flit replayed once
  build(p, fc);

  for (std::uint64_t id = 1; id <= 6; ++id) {
    net_->inject(0, make_packet(0, 15, VNet::Response, true, clock_, id),
                 clock_);
  }
  run_cycles(800);
  EXPECT_EQ(sinks_[15].arrivals.size(), 6u) << "no double deliveries";
  EXPECT_GT(stats_.duplicate_flits_dropped, 0u);
  EXPECT_EQ(stats_.corruptions_detected, 0u);
  EXPECT_EQ(stats_.silent_corruptions, 0u);
}

SystemConfig fault_cfg(double link_rate, double llc_rate) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.algorithm = "delta";
  cfg.fault.enabled = true;
  cfg.fault.link_bit_flip_rate = link_rate;
  cfg.fault.llc_bit_flip_rate = llc_rate;
  return cfg;
}

TEST(FaultSystem, BitFlipsAreAllDetectedAndRecoveredEndToEnd) {
  cmp::CmpSystem sys(fault_cfg(2e-3, 2e-3),
                     workload::profile_by_name("canneal"));
  sys.functional_warmup(4000);
  sys.run(15000);
  const auto& ns = sys.noc_stats();
  const auto& fc = sys.fault_injector()->counters();
  ASSERT_GT(fc.payload_faults(), 0u) << "the run must actually inject faults";
  EXPECT_GT(ns.corruptions_detected, 0u);
  EXPECT_EQ(ns.silent_corruptions, 0u)
      << "a delivered block differed from ground truth undetected";
  EXPECT_GT(ns.retransmit_deliveries, 0u);
  EXPECT_EQ(ns.unrecovered_deliveries, 0u)
      << "raw retransmissions are immune to payload flips";
  EXPECT_TRUE(sys.drain(60000)) << "recovery must not deadlock the protocol";
}

TEST(FaultSystem, FaultRunsAreDeterministic) {
  auto run_once = [] {
    cmp::CmpSystem sys(fault_cfg(1e-3, 1e-3),
                       workload::profile_by_name("vips"));
    sys.functional_warmup(3000);
    sys.run(10000);
    const auto& ns = sys.noc_stats();
    return std::tuple{sys.fault_injector()->counters().total(),
                      ns.corruptions_detected, ns.retransmissions,
                      ns.link_flits, sys.total_core_ops()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(FaultSystem, FaultyEnginesSelfQuarantine) {
  SystemConfig cfg = fault_cfg(0.0, 1.0);  // every LLC readout corrupted
  cfg.fault.engine_quarantine_threshold = 1;
  cmp::CmpSystem sys(cfg, workload::profile_by_name("canneal"));
  sys.functional_warmup(4000);
  sys.run(15000);
  const auto& ns = sys.noc_stats();
  EXPECT_GT(ns.corruptions_detected, 0u);
  EXPECT_EQ(ns.silent_corruptions, 0u);
  if (ns.engine_decode_errors > 0) {
    EXPECT_GT(ns.engines_quarantined, 0u)
        << "threshold 1: the first decode error must quarantine the engine";
  }
  EXPECT_TRUE(sys.drain(60000));
}

}  // namespace
}  // namespace disco
