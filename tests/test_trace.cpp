// Unit tests of the event-tracing layer and the streaming invariant
// checker: ring/filter semantics, canonical formatting, and one synthetic
// violation per invariant family. The last two tests close the loop at
// system level: a clean cell must check clean end to end, and a seeded
// fault-injection run must trip the checker.
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/golden.h"
#include "trace/invariants.h"
#include "trace/trace.h"
#include "workload/profile.h"

namespace disco {
namespace {

using trace::Event;
using trace::InvariantChecker;
using trace::InvariantParams;
using trace::TraceEvent;
using trace::Tracer;

TEST(TraceFormat, StArgRoundtrip) {
  const std::int64_t a = trace::st_arg(true, 3, 5, 123456);
  EXPECT_TRUE(trace::st_tail(a));
  EXPECT_EQ(trace::st_out_port(a), 3);
  EXPECT_EQ(trace::st_out_vc(a), 5);
  EXPECT_EQ(trace::st_seq(a), 123456u);
  const std::int64_t b = trace::st_arg(false, 0, 0, 0);
  EXPECT_FALSE(trace::st_tail(b));
  EXPECT_EQ(trace::st_seq(b), 0u);
}

TEST(TraceFormat, CanonicalLine) {
  TraceEvent e;
  e.cycle = 38;
  e.node = 2;
  e.event = Event::BufferWrite;
  e.port = 1;
  e.vc = 4;
  e.pkt = 99;
  e.arg = -3;
  EXPECT_EQ(trace::canonical_line(e), "38 2 BW 1 4 99 -3");
}

TEST(TraceFormat, CategoryMaskSelectsAndRejects) {
  const auto all = trace::category_mask("");
  for (bool b : all) EXPECT_TRUE(b);
  const auto disco_only = trace::category_mask("disco");
  EXPECT_TRUE(disco_only[static_cast<std::size_t>(trace::Category::Disco)]);
  EXPECT_FALSE(disco_only[static_cast<std::size_t>(trace::Category::Noc)]);
  const auto two = trace::category_mask("noc,cache");
  EXPECT_TRUE(two[static_cast<std::size_t>(trace::Category::Noc)]);
  EXPECT_TRUE(two[static_cast<std::size_t>(trace::Category::Cache)]);
  EXPECT_FALSE(two[static_cast<std::size_t>(trace::Category::Credit)]);
  EXPECT_THROW((void)trace::category_mask("bogus"), std::invalid_argument);
}

TEST(Tracer, RingWrapKeepsNewestEvents) {
  TraceConfig tc;
  tc.enabled = true;
  tc.ring_capacity = 8;
  Tracer t(tc);
  for (std::uint64_t i = 0; i < 20; ++i)
    t.emit(i, 0, Event::BufferWrite, 0, 0, i, 0);
  EXPECT_EQ(t.total_events(), 20u);
  EXPECT_EQ(t.dropped_events(), 12u);
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::size_t i = 0; i < snap.size(); ++i)
    EXPECT_EQ(snap[i].pkt, 12 + i) << "oldest-first order broken at " << i;
  std::ostringstream os;
  t.write_canonical(os);
  EXPECT_NE(os.str().find("# 12 oldest events dropped"), std::string::npos);
}

TEST(Tracer, FilterSkipsRingButNotChecker) {
  TraceConfig tc;
  tc.enabled = true;
  tc.filter = "cache";
  tc.check_invariants = true;
  Tracer t(tc);
  InvariantChecker checker{InvariantParams{}};
  t.set_checker(&checker);
  t.emit(1, 0, Event::BufferWrite, 0, 0, 1, 0);     // noc: filtered out
  t.emit(2, 0, Event::L2Fill, 0, 0, 64, 64);        // cache: captured
  t.emit(3, 0, Event::CreditSend, 1, 0, 0, 0);      // credit: filtered out
  const auto snap = t.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].event, Event::L2Fill);
  // The checker saw all three regardless of the capture filter.
  EXPECT_EQ(checker.summary().events_checked, 3u);
  EXPECT_TRUE(checker.summary().clean());
}

TEST(Tracer, ChromeJsonExport) {
  TraceConfig tc;
  tc.enabled = true;
  Tracer t(tc);
  t.emit(5, 1, Event::NiInject, 0, 2, 7, 1);
  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"NIQ\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
}

/// Fixture for synthetic-event checker tests: tiny geometry so pools are
/// quick to drain, plus emit helpers.
class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : p_(make_params()), c_(p_) {}

  static InvariantParams make_params() {
    InvariantParams p;
    p.nodes = 4;
    p.ports = 5;
    p.local_port = 4;
    p.num_vcs = 2;
    p.vc_depth = 2;
    p.max_hops = 2;
    p.block_flits = 9;
    return p;
  }

  void emit(Event ev, std::uint8_t port, std::uint8_t vc, std::uint64_t pkt,
            std::int64_t arg) {
    TraceEvent e;
    e.cycle = cycle_++;
    e.node = 0;
    e.event = ev;
    e.port = port;
    e.vc = vc;
    e.pkt = pkt;
    e.arg = arg;
    c_.on_event(e);
  }

  /// Walk VC (port, vc) to Active legally.
  void activate(std::uint8_t port, std::uint8_t vc) {
    emit(Event::RouteCompute, port, vc, 1, 1);
    emit(Event::VcAllocGrant, port, vc, 1, 0);
  }

  InvariantParams p_;
  InvariantChecker c_;
  Cycle cycle_ = 0;
};

TEST_F(CheckerTest, CreditUnderflowOnSwitchTraversal) {
  activate(0, 0);
  // Non-tail STs toward out port 1 vc 0: depth legal, one more underflows.
  for (std::uint32_t i = 0; i < p_.vc_depth; ++i)
    emit(Event::SwitchTraversal, 0, 0, 1, trace::st_arg(false, 1, 0, i));
  EXPECT_TRUE(c_.summary().clean());
  emit(Event::SwitchTraversal, 0, 0, 1, trace::st_arg(false, 1, 0, 9));
  EXPECT_EQ(c_.summary().credit_violations, 1u);
}

TEST_F(CheckerTest, EjectionPortNeedsNoCredits) {
  activate(0, 0);
  // The local (ejection) port has infinite credits: far more STs than the
  // depth must stay clean.
  for (std::uint32_t i = 0; i < 4 * p_.vc_depth; ++i)
    emit(Event::SwitchTraversal, 0, 0, 1,
         trace::st_arg(false, static_cast<std::uint8_t>(p_.local_port), 0, i));
  EXPECT_TRUE(c_.summary().clean());
}

TEST_F(CheckerTest, CreditOverflowOnRecv) {
  emit(Event::CreditRecv, 1, 0, 0, 0);  // pool starts full at depth
  EXPECT_EQ(c_.summary().credit_violations, 1u);
}

TEST_F(CheckerTest, VcStateMachineLegality) {
  emit(Event::VcAllocGrant, 0, 0, 1, 0);  // VA without RC
  EXPECT_EQ(c_.summary().vc_state_violations, 1u);
  emit(Event::SwitchTraversal, 1, 0, 1, trace::st_arg(false, 4, 0, 0));
  EXPECT_EQ(c_.summary().vc_state_violations, 2u);  // ST from idle
  activate(2, 0);
  emit(Event::RouteCompute, 2, 0, 1, 1);  // RC again while allocated...
  EXPECT_EQ(c_.summary().vc_state_violations, 3u);
}

TEST_F(CheckerTest, TailStReturnsVcToIdle) {
  activate(0, 0);
  emit(Event::SwitchTraversal, 0, 0, 1, trace::st_arg(true, 1, 0, 0));
  EXPECT_TRUE(c_.summary().clean());
  activate(0, 0);  // a new packet may legally restart the pipeline
  EXPECT_TRUE(c_.summary().clean());
}

TEST_F(CheckerTest, NiInjectionCredits) {
  for (std::uint32_t i = 0; i < p_.vc_depth; ++i)
    emit(Event::NiFlitInject, 0, 0, 1, i);
  EXPECT_TRUE(c_.summary().clean());
  emit(Event::NiFlitInject, 0, 0, 1, 9);
  EXPECT_EQ(c_.summary().credit_violations, 1u);
  emit(Event::NiCreditRecv, 0, 0, 0, 0);
  emit(Event::NiCreditRecv, 0, 0, 0, 0);
  emit(Event::NiCreditRecv, 0, 0, 0, 0);  // pool back at depth: overflow
  EXPECT_EQ(c_.summary().credit_violations, 2u);
}

TEST_F(CheckerTest, ShadowLifetime) {
  emit(Event::CompStart, 0, 0, 10, 0);
  emit(Event::CompStart, 0, 0, 11, 0);  // double-arm
  EXPECT_EQ(c_.summary().shadow_violations, 1u);
  emit(Event::CompAbort, 0, 0, 11, 0);
  emit(Event::ShadowRetire, 0, 0, 11, 0);
  EXPECT_EQ(c_.summary().shadow_violations, 1u);  // legal after the rearm

  emit(Event::DecompStart, 1, 0, 20, 0);
  emit(Event::ShadowRetire, 1, 0, 20, 0);  // retire before abort-or-commit
  EXPECT_EQ(c_.summary().shadow_violations, 2u);

  emit(Event::CompAbort, 2, 0, 30, 0);  // decide without an armed shadow
  EXPECT_EQ(c_.summary().shadow_violations, 3u);

  emit(Event::CompStart, 3, 0, 40, 0);
  emit(Event::CompFinish, 3, 0, 40, -4);
  emit(Event::CompFinish, 3, 0, 40, -4);  // double decide
  EXPECT_EQ(c_.summary().shadow_violations, 4u);
}

TEST_F(CheckerTest, ConfidenceBounds) {
  // In-range: Eq.1 max is num_vcs*depth + gamma*ports*num_vcs = 4 + 10.
  emit(Event::ConfidenceComp, 0, 0, 1, static_cast<std::int64_t>(14 * 256));
  EXPECT_TRUE(c_.summary().clean());
  emit(Event::ConfidenceComp, 0, 0, 1, static_cast<std::int64_t>(15 * 256));
  EXPECT_EQ(c_.summary().confidence_violations, 1u);
  emit(Event::ConfidenceComp, 0, 0, 1, -256);  // Eq.1 is never negative
  EXPECT_EQ(c_.summary().confidence_violations, 2u);
  // Eq.2 may go as low as -beta * max_hops = -4.
  emit(Event::ConfidenceDecomp, 0, 0, 1, static_cast<std::int64_t>(-4 * 256));
  EXPECT_EQ(c_.summary().confidence_violations, 2u);
  emit(Event::ConfidenceDecomp, 0, 0, 1, static_cast<std::int64_t>(-5 * 256));
  EXPECT_EQ(c_.summary().confidence_violations, 3u);
}

TEST_F(CheckerTest, DuplicateEjection) {
  emit(Event::NiFlitEject, 4, 0, 7, 3);
  emit(Event::NiFlitEject, 4, 0, 7, 4);
  EXPECT_TRUE(c_.summary().clean());
  emit(Event::NiFlitEject, 4, 0, 7, 3);  // same packet, same seq
  EXPECT_EQ(c_.summary().eject_violations, 1u);
  emit(Event::NiReassembled, 4, 0, 7, 2);
  emit(Event::NiFlitEject, 4, 0, 7, 3);  // new lifetime for pkt 7: legal
  EXPECT_EQ(c_.summary().eject_violations, 1u);
}

TEST_F(CheckerTest, L2FillStoredSizePlausibility) {
  emit(Event::L2Fill, 0, 0, 0x1000, 1);
  emit(Event::L2Fill, 0, 0, 0x1040, kBlockBytes);
  emit(Event::L2Fill, 0, 0, 0x1080, kBlockBytes + 1);  // +1 for the tag flit
  EXPECT_TRUE(c_.summary().clean());
  emit(Event::L2Fill, 0, 0, 0x10c0, 0);
  EXPECT_EQ(c_.summary().cache_violations, 1u);
  emit(Event::L2Fill, 0, 0, 0x1100, kBlockBytes + 2);
  EXPECT_EQ(c_.summary().cache_violations, 2u);
}

TEST_F(CheckerTest, FlitConservationReconciliation) {
  emit(Event::NiFlitInject, 0, 0, 1, 0);
  c_.end_of_cycle(cycle_, 1);  // one flit in flight: balanced
  EXPECT_TRUE(c_.summary().clean());
  c_.end_of_cycle(cycle_, 0);  // modeled 1, structural 0: a flit vanished
  EXPECT_EQ(c_.summary().conservation_violations, 1u);
  EXPECT_NE(c_.summary().first_violation.find("flit conservation broken"),
            std::string::npos);
  emit(Event::Rebuild, 0, 0, 1, -1);  // compression shrank it away
  c_.end_of_cycle(cycle_, 0);
  EXPECT_EQ(c_.summary().conservation_violations, 1u);
}

TEST_F(CheckerTest, RebuildDeltaBeyondPacketSpan) {
  emit(Event::Rebuild, 0, 0, 1,
       static_cast<std::int64_t>(p_.block_flits) + 1);
  EXPECT_EQ(c_.summary().conservation_violations, 1u);
}

// --- system-level closure ---

TEST(TraceSystem, GoldenScenariosCheckClean) {
  for (const auto& s : sim::golden_scenarios()) {
    const auto run = sim::run_golden_scenario(s.name);
    EXPECT_TRUE(run.invariants.clean())
        << s.name << ": " << run.invariants.first_violation;
    EXPECT_GT(run.invariants.events_checked, 0u) << s.name;
    EXPECT_FALSE(run.trace.empty()) << s.name;
  }
  EXPECT_THROW((void)sim::run_golden_scenario("nope"), std::invalid_argument);
}

TEST(TraceSystem, SeededFaultRunTripsInvariants) {
  SystemConfig cfg;
  cfg.noc.mesh_cols = 2;
  cfg.noc.mesh_rows = 2;
  cfg.l2.total_size_bytes = 256ULL * 1024;
  cfg.trace.check_invariants = true;
  cfg.fault.enabled = true;
  cfg.fault.flit_drop_rate = 0.01;

  workload::BenchmarkProfile profile = workload::parsec_profiles().front();
  profile.footprint_blocks = 1 << 10;

  sim::RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 500;
  opt.measure_cycles = 4000;

  const auto r = sim::run_cell(cfg, profile, opt);
  EXPECT_TRUE(r.invariants.enabled);
  // A dropped flit never ejects, so the modeled-vs-structural balance stays
  // broken from the drop cycle onward: the checker must notice.
  EXPECT_GT(r.invariants.violations, 0u);
  EXPECT_GT(r.invariants.conservation_violations, 0u);
  EXPECT_FALSE(r.invariants.first_violation.empty());
}

}  // namespace
}  // namespace disco
