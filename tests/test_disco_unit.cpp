// DISCO in-router machinery: in-flight compression/decompression under
// randomized traffic, shadow-packet abort safety, credit-accounting
// integrity after in-place packet rebuilds, and the confidence equations.
#include <gtest/gtest.h>

#include "compress/registry.h"
#include "disco/unit.h"
#include "noc_test_util.h"

namespace disco::core {
namespace {

using disco::NocConfig;
using disco::VNet;
using noc::Network;
using noc::NocStats;
using noc::PacketPtr;
using noc::testutil::CollectingSink;
using noc::testutil::make_packet;
using noc::testutil::run_until_quiescent;

class DiscoNetFixture : public ::testing::Test {
 protected:
  void build(DiscoConfig dcfg, NocConfig cfg = {}) {
    algo_ = compress::make_algorithm("delta");
    noc::NiPolicy policy;
    policy.algo = algo_.get();
    policy.decompress_for_raw_consumers = true;
    policy.decomp_cycles = algo_->latency().decomp_cycles;
    net_ = std::make_unique<Network>(
        cfg, policy, stats_, [&](noc::Router& r) {
          return std::make_unique<DiscoUnit>(r, dcfg, *algo_, algo_->latency(),
                                             stats_);
        });
    sinks_.resize(cfg.num_nodes());
    for (NodeId n = 0; n < cfg.num_nodes(); ++n)
      net_->register_sink(n, UnitKind::Core, &sinks_[n]);
  }

  std::unique_ptr<compress::Algorithm> algo_;
  NocStats stats_;
  std::unique_ptr<Network> net_;
  std::vector<CollectingSink> sinks_;
  Cycle clock_ = 0;
};

TEST_F(DiscoNetFixture, HotspotTrafficTriggersInNetworkCompression) {
  DiscoConfig dcfg;
  dcfg.cc_threshold = 0.5;  // eager
  build(dcfg);
  // Saturate one column so packets idle in routers.
  std::uint64_t id = 1;
  for (int round = 0; round < 30; ++round) {
    for (NodeId src = 0; src < 16; ++src) {
      net_->inject(src, make_packet(src, 12, VNet::Response, true, clock_, id++),
                   clock_);
    }
    ++clock_;
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_EQ(stats_.packets_ejected, 30u * 16u);
  EXPECT_GT(stats_.engine_starts, 0u) << "idling packets must reach the engines";
  // Every packet must arrive with ground-truth data intact (asserted inside
  // apply_decompression as well).
  for (const auto& a : sinks_[12].arrivals) {
    EXPECT_FALSE(a.pkt->compressed()) << "raw consumer got a compressed block";
  }
}

TEST_F(DiscoNetFixture, RandomTrafficIntegrityUnderAggressiveEngines) {
  DiscoConfig dcfg;
  dcfg.cc_threshold = -100.0;  // compress on any stall
  dcfg.cd_threshold = -100.0;  // decompress on any stall
  dcfg.beta = 0.0;
  build(dcfg);
  Rng rng(11);
  std::uint64_t id = 1;
  std::map<std::uint64_t, BlockBytes> expected;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    const auto dst = static_cast<NodeId>(rng.next_below(16));
    auto pkt = make_packet(src, dst, VNet::Response, true, clock_, id);
    expected[id] = pkt->data;
    net_->inject(src, std::move(pkt), clock_);
    ++id;
    clock_ += 1 + rng.next_below(2);
    net_->tick(clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_TRUE(net_->credits_quiescent())
      << "in-flight de/compression leaked or double-returned credits";

  std::size_t delivered = 0;
  for (const auto& sink : sinks_) {
    for (const auto& a : sink.arrivals) {
      ++delivered;
      EXPECT_EQ(a.pkt->data, expected.at(a.pkt->id)) << "payload corrupted";
      EXPECT_FALSE(a.pkt->compressed());
    }
  }
  EXPECT_EQ(delivered, expected.size());
  EXPECT_GT(stats_.inflight_compressions + stats_.inflight_decompressions, 0u);
}

TEST_F(DiscoNetFixture, NonBlockingAbortsAreCounted) {
  DiscoConfig dcfg;
  dcfg.cc_threshold = -100.0;
  dcfg.cd_threshold = 1e18;  // decompression engines off: compression only
  dcfg.non_blocking = true;
  build(dcfg);
  Rng rng(21);
  std::uint64_t id = 1;
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    const auto dst = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, dst, VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_EQ(stats_.packets_ejected, 300u);
  // With hair-trigger thresholds many shadow packets depart mid-operation.
  EXPECT_GT(stats_.compression_aborts, 0u);
  // Only compressions ever started, so no abort may be booked against
  // decompression (the two counters are attributed by engine operation).
  EXPECT_EQ(stats_.decompression_aborts, 0u);
}

TEST_F(DiscoNetFixture, DecompressionAbortsAttributedSeparately) {
  // Compression engines off, hair-trigger decompression: packets enter the
  // network pre-compressed (source-queue policy), so every aborted engine
  // operation is a decompression and must land in decompression_aborts —
  // the counter the adaptive controller and Fig. 7 accounting read — and
  // never in compression_aborts.
  DiscoConfig dcfg;
  dcfg.cc_threshold = 1e18;
  dcfg.cd_threshold = -100.0;
  dcfg.beta = 0.0;
  dcfg.non_blocking = true;
  algo_ = compress::make_algorithm("delta");
  noc::NiPolicy policy;
  policy.algo = algo_.get();
  policy.compress_on_inject = true;  // every data packet travels compressed
  policy.decompress_for_raw_consumers = true;
  policy.decomp_cycles = algo_->latency().decomp_cycles;
  NocConfig cfg;
  net_ = std::make_unique<Network>(
      cfg, policy, stats_, [&](noc::Router& r) {
        return std::make_unique<DiscoUnit>(r, dcfg, *algo_, algo_->latency(),
                                           stats_);
      });
  sinks_.resize(cfg.num_nodes());
  for (NodeId n = 0; n < cfg.num_nodes(); ++n)
    net_->register_sink(n, UnitKind::Core, &sinks_[n]);

  Rng rng(29);
  std::uint64_t id = 1;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, 12, VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_EQ(stats_.packets_ejected, 400u);
  EXPECT_GT(stats_.engine_starts, 0u);
  EXPECT_GT(stats_.decompression_aborts, 0u)
      << "hair-trigger decompression under a hotspot must abort sometimes";
  EXPECT_EQ(stats_.compression_aborts, 0u)
      << "no compression ever started, so none may be booked as aborted";
}

TEST_F(DiscoNetFixture, MultipleEnginesDispatchMultipleLosersPerCycle) {
  // With k engines per router, up to k qualifying losers must start in the
  // same allocation cycle (top-k dispatch), not one per cycle. Under an
  // identical hotspot, two engines must complete strictly more in-router
  // operations than one.
  auto run = [&](std::uint32_t engines) {
    stats_ = NocStats{};
    clock_ = 0;
    DiscoConfig dcfg;
    dcfg.cc_threshold = -100.0;
    dcfg.cd_threshold = -100.0;
    dcfg.beta = 0.0;
    dcfg.non_blocking = false;  // operations run to completion
    dcfg.engines_per_router = engines;
    build(dcfg);
    Rng rng(33);
    std::uint64_t id = 1;
    for (int round = 0; round < 40; ++round) {
      for (NodeId src = 0; src < 16; ++src) {
        net_->inject(src,
                     make_packet(src, 12, VNet::Response, true, clock_, id++),
                     clock_);
      }
      net_->tick(++clock_);
    }
    EXPECT_TRUE(run_until_quiescent(*net_, clock_, 120000));
    EXPECT_EQ(stats_.packets_ejected, 40u * 16u);
    return stats_.engine_starts;
  };
  const std::uint64_t one = run(1);
  const std::uint64_t two = run(2);
  ASSERT_GT(one, 0u);
  EXPECT_GT(two, one)
      << "a second engine must absorb additional same-cycle candidates";
}

TEST_F(DiscoNetFixture, BlockingModeLetsOperationsComplete) {
  DiscoConfig dcfg;
  dcfg.cc_threshold = -100.0;
  dcfg.non_blocking = false;  // shadow locked until the engine finishes
  dcfg.separate_flit_compression = false;
  build(dcfg);
  Rng rng(22);
  std::uint64_t id = 1;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    const auto dst = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, dst, VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_EQ(stats_.packets_ejected, 200u);
  EXPECT_EQ(stats_.compression_aborts, 0u)
      << "a locked shadow can never depart mid-operation";
}

TEST_F(DiscoNetFixture, HighThresholdsDisableEngines) {
  DiscoConfig dcfg;
  dcfg.cc_threshold = 1e18;
  dcfg.cd_threshold = 1e18;
  build(dcfg);
  Rng rng(23);
  std::uint64_t id = 1;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, 12, VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  EXPECT_EQ(stats_.engine_starts, 0u);
  EXPECT_EQ(stats_.packets_ejected, 200u);
}

TEST_F(DiscoNetFixture, CompressedPacketsShrinkLinkTraffic) {
  DiscoConfig eager;
  eager.cc_threshold = -100.0;
  build(eager);
  Rng rng(31);
  std::uint64_t id = 1;
  for (int i = 0; i < 300; ++i) {
    net_->inject(static_cast<NodeId>(rng.next_below(16)),
                 make_packet(static_cast<NodeId>(rng.next_below(16)), 12,
                             VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  const std::uint64_t eager_flits = stats_.link_flits;
  const std::uint64_t eager_comp = stats_.inflight_compressions;

  // Same traffic with engines off.
  stats_ = NocStats{};
  clock_ = 0;
  DiscoConfig off;
  off.cc_threshold = 1e18;
  off.cd_threshold = 1e18;
  build(off);
  Rng rng2(31);
  id = 1;
  for (int i = 0; i < 300; ++i) {
    net_->inject(static_cast<NodeId>(rng2.next_below(16)),
                 make_packet(static_cast<NodeId>(rng2.next_below(16)), 12,
                             VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 60000));
  ASSERT_GT(eager_comp, 50u);
  EXPECT_LT(eager_flits, stats_.link_flits)
      << "in-network compression must reduce flit traffic at a hotspot";
}


TEST_F(DiscoNetFixture, AdaptiveThresholdsCurbAbortRate) {
  // Hair-trigger static thresholds abort often under bursty traffic; the
  // adaptive controller must push the abort rate down over time.
  auto run = [&](bool adaptive) {
    stats_ = NocStats{};
    clock_ = 0;
    DiscoConfig dcfg;
    dcfg.cc_threshold = 0.25;
    dcfg.cd_threshold = 0.25;
    dcfg.adaptive_thresholds = adaptive;
    dcfg.adapt_window_cycles = 512;
    build(dcfg);
    Rng rng(77);
    std::uint64_t id = 1;
    for (int i = 0; i < 1500; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      net_->inject(src, make_packet(src, 12, VNet::Response, true, clock_, id++),
                   clock_);
      net_->tick(++clock_);
    }
    EXPECT_TRUE(run_until_quiescent(*net_, clock_, 120000));
    const double decided = static_cast<double>(
        stats_.inflight_compressions + stats_.inflight_decompressions +
        stats_.compression_aborts);
    return decided > 0 ? static_cast<double>(stats_.compression_aborts) / decided
                       : 0.0;
  };
  const double static_rate = run(false);
  const double adaptive_rate = run(true);
  EXPECT_LE(adaptive_rate, static_rate)
      << "adaptation must not increase the abort rate";
}


TEST_F(DiscoNetFixture, CutThroughEnablesWholePacketCompression) {
  // Under virtual cut-through every packet sits whole in one node (section
  // 3.3A), so whole-packet-only compression gets chances that streaming
  // wormhole denies it.
  DiscoConfig dcfg;
  dcfg.cc_threshold = -100.0;
  dcfg.separate_flit_compression = false;
  NocConfig ncfg;
  ncfg.flow_control = FlowControl::VirtualCutThrough;
  build(dcfg, ncfg);
  Rng rng(41);
  std::uint64_t id = 1;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(rng.next_below(16));
    net_->inject(src, make_packet(src, 12, VNet::Response, true, clock_, id++),
                 clock_);
    net_->tick(++clock_);
  }
  ASSERT_TRUE(run_until_quiescent(*net_, clock_, 120000));
  EXPECT_EQ(stats_.packets_ejected, 400u);
  EXPECT_GT(stats_.inflight_compressions, 20u)
      << "whole packets must be compressible under VCT";
}

}  // namespace
}  // namespace disco::core
