// Thin alias kept for existing includes; the fixtures themselves moved to
// tests/sim_fixture.h (shared with the cache-level tests).
#pragma once

#include "sim_fixture.h"
