// Shared helpers for NoC-level tests: a collecting sink and packet factory.
#pragma once

#include <map>
#include <vector>

#include <cstring>

#include "common/rng.h"
#include "noc/network.h"

namespace disco::noc::testutil {

class CollectingSink final : public PacketSink {
 public:
  void deliver(PacketPtr pkt, Cycle now) override {
    arrivals.push_back({std::move(pkt), now});
  }
  struct Arrival {
    PacketPtr pkt;
    Cycle when;
  };
  std::vector<Arrival> arrivals;
};

inline PacketPtr make_packet(NodeId src, NodeId dst, VNet vnet, bool with_data,
                             Cycle now, std::uint64_t id) {
  auto pkt = std::make_shared<Packet>();
  pkt->id = id;
  pkt->src = src;
  pkt->dst = dst;
  pkt->src_unit = UnitKind::Core;
  pkt->dst_unit = UnitKind::Core;
  pkt->vnet = vnet;
  pkt->created = now;
  pkt->has_data = with_data;
  pkt->compressible = with_data;
  if (with_data) {
    // Compressible payload: base + small deltas.
    Rng rng(id);
    const std::uint64_t base = rng.next_u64();
    for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
      const std::uint64_t v = base + rng.next_below(100);
      std::memcpy(pkt->data.data() + f * 8, &v, 8);
    }
  }
  return pkt;
}

/// Tick until the network is quiescent; returns false on timeout.
inline bool run_until_quiescent(Network& net, Cycle& clock, Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles; ++i) {
    ++clock;
    net.tick(clock);
    if (net.quiescent()) return true;
  }
  return false;
}

}  // namespace disco::noc::testutil
