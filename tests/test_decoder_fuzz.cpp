// Decoder-hardening fuzz tests: every algorithm's try_decompress must
// survive arbitrary byte streams (random, truncated, overlong, and
// bit-flipped valid encodings) without crashing, asserting or reading out
// of bounds, and must reject anything that is not an exact encoding. Runs
// under the ASan/UBSan CI job, where a single stray read fails the suite.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "compress/registry.h"
#include "workload/value_synth.h"

namespace disco::compress {
namespace {

/// A corpus of compressible + incompressible blocks shared by all tests.
std::vector<BlockBytes> corpus() {
  std::vector<BlockBytes> blocks;
  workload::ValueMix mix{0.2, 0.2, 0.2, 0.15, 0.15, 0.1};
  workload::ValueSynthesizer synth(mix, 4242);
  for (Addr a = 0; a < 64 * kBlockBytes; a += kBlockBytes)
    blocks.push_back(synth.block_for(a));
  blocks.push_back(zero_block());
  Rng rng(0xBAD5EED);
  BlockBytes noise;
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  blocks.push_back(noise);
  return blocks;
}

TEST(DecoderFuzz, ValidStreamsRoundTripThroughTryDecompress) {
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (const BlockBytes& block : corpus()) {
      const Encoded enc = algo->compress(block);
      const auto dec =
          algo->try_decompress(std::span<const std::uint8_t>(enc.bytes));
      ASSERT_TRUE(dec.has_value()) << name;
      EXPECT_EQ(*dec, block) << name;
    }
  }
}

TEST(DecoderFuzz, EmptyStreamIsRejected) {
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    EXPECT_FALSE(algo->try_decompress({}).has_value()) << name;
    EXPECT_THROW(algo->decompress({}), DecodeError) << name;
  }
}

TEST(DecoderFuzz, TruncatedStreamsAreRejected) {
  // decompress() is deterministic in its prefix reads and every decoder
  // checks for trailing garbage, so any strict prefix of a valid encoding
  // must fail — it cannot quietly decode to a different block.
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (const BlockBytes& block : corpus()) {
      const Encoded enc = algo->compress(block);
      for (std::size_t len = 0; len < enc.size(); ++len) {
        const auto dec = algo->try_decompress(
            std::span<const std::uint8_t>(enc.bytes.data(), len));
        EXPECT_FALSE(dec.has_value())
            << name << ": accepted a " << len << "/" << enc.size()
            << "-byte prefix";
      }
    }
  }
}

TEST(DecoderFuzz, OverlongStreamsAreRejected) {
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (const BlockBytes& block : corpus()) {
      std::vector<std::uint8_t> padded = algo->compress(block).bytes;
      padded.push_back(0x00);
      EXPECT_FALSE(
          algo->try_decompress(std::span<const std::uint8_t>(padded))
              .has_value())
          << name << ": accepted a stream with a trailing byte";
    }
  }
}

TEST(DecoderFuzz, BitFlippedValidStreamsNeverCrash) {
  // Every single-bit corruption of a valid encoding: the decoder must
  // either reject it or return some block — never crash or overrun. A flip
  // that decodes successfully to the original bytes is impossible (the
  // stream differs), but decoding to a *different* block is legal; the
  // end-to-end CRC exists precisely because decoders cannot catch it all.
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (const BlockBytes& block : corpus()) {
      const Encoded enc = algo->compress(block);
      for (std::size_t bit = 0; bit < enc.size() * 8; ++bit) {
        std::vector<std::uint8_t> mut = enc.bytes;
        mut[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
        (void)algo->try_decompress(std::span<const std::uint8_t>(mut));
      }
    }
  }
}

TEST(DecoderFuzz, MultiBitFlippedStreamsNeverCrash) {
  Rng rng(0xF1177);
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    const auto blocks = corpus();
    for (int trial = 0; trial < 500; ++trial) {
      std::vector<std::uint8_t> mut =
          algo->compress(blocks[rng.next_below(blocks.size())]).bytes;
      const int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < flips; ++i) {
        const std::uint64_t bit = rng.next_below(mut.size() * 8);
        mut[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      }
      (void)algo->try_decompress(std::span<const std::uint8_t>(mut));
    }
  }
}

TEST(DecoderFuzz, RandomStreamsNeverCrash) {
  Rng rng(0xDEC0DE);
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<std::uint8_t> stream(rng.next_below(kBlockBytes + 8));
      for (auto& b : stream) b = static_cast<std::uint8_t>(rng.next_u64());
      (void)algo->try_decompress(std::span<const std::uint8_t>(stream));
    }
  }
}

TEST(DecoderFuzz, RandomStreamsWithValidTagNeverCrash) {
  // Force the first byte to each algorithm's own tag (taken from a real
  // encoding) so the fuzz exercises the per-algorithm decode loops instead
  // of bouncing off the tag check.
  Rng rng(0x7A6);
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    const Encoded probe = algo->compress(zero_block());
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<std::uint8_t> stream(1 + rng.next_below(kBlockBytes + 8));
      for (auto& b : stream) b = static_cast<std::uint8_t>(rng.next_u64());
      stream.front() = probe.bytes.front();
      (void)algo->try_decompress(std::span<const std::uint8_t>(stream));
    }
  }
}

TEST(DecoderFuzz, ThrowingDecompressReportsDecodeError) {
  // The throwing entry point must fail with DecodeError (not assert, not a
  // foreign exception type) on the same inputs try_decompress rejects.
  for (const auto& name : algorithm_names()) {
    auto algo = make_algorithm(name);
    const std::vector<std::uint8_t> junk = {0x00, 0x01, 0x02};
    if (!algo->try_decompress(std::span<const std::uint8_t>(junk))) {
      EXPECT_THROW(algo->decompress(std::span<const std::uint8_t>(junk)),
                   DecodeError)
          << name;
    }
  }
}

}  // namespace
}  // namespace disco::compress
