// Storage-structure unit tests: L1 set-associative LRU and the segmented
// compressed L2 array (decoupled tags, segment accounting, victim policy).
#include <gtest/gtest.h>

#include "cache/arrays.h"

namespace disco::cache {
namespace {

TEST(L1Array, GeometryFromConfig) {
  L1Array a(32 * 1024, 4);
  EXPECT_EQ(a.sets(), 128u);
  EXPECT_EQ(a.ways(), 4u);
}

TEST(L1Array, InstallLookupAndLru) {
  L1Array a(32 * 1024, 4);
  const Addr base = 0x10000;
  // Fill one set: addresses that differ by sets*64.
  const Addr stride = 128 * 64;
  for (int i = 0; i < 4; ++i) {
    a.install(base + i * stride, BlockBytes{}, L1State::S,
              static_cast<Cycle>(i + 1));
  }
  EXPECT_NE(a.lookup(base), nullptr);
  EXPECT_EQ(a.victim_for(base + 4 * stride)->addr, base)
      << "LRU victim must be the oldest line";
  // Touch the oldest; victim changes.
  a.lookup(base)->lru = 99;
  EXPECT_EQ(a.victim_for(base + 4 * stride)->addr, base + stride);
}

TEST(L1Array, VictimNullWhenFreeWayExists) {
  L1Array a(32 * 1024, 4);
  a.install(0, BlockBytes{}, L1State::E, 1);
  EXPECT_EQ(a.victim_for(0), nullptr);
}

TEST(SegmentedArray, UncompressedGeometryMatchesBaseline) {
  SegmentedArray a(256 * 1024, 8, /*tag_factor=*/1);
  EXPECT_EQ(a.sets(), 512u);
  EXPECT_EQ(a.segment_capacity(), 64u);
}

TEST(SegmentedArray, SegmentAccounting) {
  SegmentedArray a(256 * 1024, 8, 4);
  const Addr addr = 0x4000;
  EXPECT_EQ(a.free_segments(addr), 64u);
  L2Line& line = a.install(addr, 3, 1);
  EXPECT_EQ(line.segments, 3u);
  EXPECT_EQ(a.free_segments(addr), 61u);
  a.resize(line, 8);
  EXPECT_EQ(a.free_segments(addr), 56u);
  a.resize(line, 1);
  EXPECT_EQ(a.free_segments(addr), 63u);
  a.erase(addr);
  EXPECT_EQ(a.free_segments(addr), 64u);
  EXPECT_EQ(a.lookup(addr), nullptr);
}

TEST(SegmentedArray, CompressionExpandsEffectiveCapacity) {
  SegmentedArray a(256 * 1024, 8, 4);
  // 2-segment lines: a set should hold up to 32 (tag-limited), not 8.
  const std::size_t set0 = a.set_of(0);
  std::uint32_t installed = 0;
  for (Addr idx = 0; installed < 32; ++idx) {
    const Addr addr = idx * kBlockBytes;
    if (a.set_of(addr) != set0) continue;
    if (!a.fits(addr, 2)) break;
    a.install(addr, 2, 1);
    ++installed;
  }
  EXPECT_EQ(installed, 32u) << "tag_factor x ways compressed lines per set";
}

TEST(SegmentedArray, FitsRespectsBothTagsAndSegments) {
  SegmentedArray a(64 * 1024, 8, 2);
  const std::size_t set0 = a.set_of(0);
  // Fill with 8-segment (raw) lines until segments run out.
  std::uint32_t installed = 0;
  for (Addr idx = 0;; ++idx) {
    const Addr addr = idx * kBlockBytes;
    if (a.set_of(addr) != set0) continue;
    if (!a.fits(addr, 8)) break;
    a.install(addr, 8, 1);
    ++installed;
  }
  EXPECT_EQ(installed, 8u) << "raw lines are segment-limited to `ways`";
}

TEST(SegmentedArray, VictimPrefersLinesWithoutL1Copies) {
  SegmentedArray a(256 * 1024, 8, 4);
  const std::size_t set0 = a.set_of(0);
  Addr first = 0, second = 0;
  int found = 0;
  for (Addr idx = 0; found < 2; ++idx) {
    const Addr addr = idx * kBlockBytes;
    if (a.set_of(addr) != set0) continue;
    (found == 0 ? first : second) = addr;
    ++found;
  }
  L2Line& older = a.install(first, 4, /*lru=*/1);
  a.install(second, 4, /*lru=*/5);
  older.dir.kind = DirInfo::Kind::Shared;
  older.dir.add_sharer(3);
  // Older line has an L1 copy: the younger uncached one is preferred.
  EXPECT_EQ(a.lru_victim(first, ~Addr{0})->addr, second);
  older.dir = DirInfo{};
  EXPECT_EQ(a.lru_victim(first, ~Addr{0})->addr, first);
}

TEST(SegmentedArray, BusyLinesAreNotVictims) {
  SegmentedArray a(256 * 1024, 8, 4);
  L2Line& line = a.install(0, 4, 1);
  line.busy = true;
  EXPECT_EQ(a.lru_victim(0, ~Addr{0}), nullptr);
}

TEST(SegmentedArray, HashedIndexSpreadsAlignedStrides) {
  SegmentedArray a(256 * 1024, 8, 4, /*index_shift=*/4);
  // 1GB-aligned bases (per-core heaps) must not collapse onto one set.
  std::set<std::size_t> sets;
  for (int core = 0; core < 16; ++core)
    sets.insert(a.set_of((static_cast<Addr>(core + 1) << 30)));
  EXPECT_GT(sets.size(), 8u);
}

TEST(SegmentedArray, SegmentsForRounding) {
  EXPECT_EQ(SegmentedArray::segments_for(1), 1u);
  EXPECT_EQ(SegmentedArray::segments_for(8), 1u);
  EXPECT_EQ(SegmentedArray::segments_for(9), 2u);
  EXPECT_EQ(SegmentedArray::segments_for(17), 3u);
  EXPECT_EQ(SegmentedArray::segments_for(64), 8u);
  EXPECT_EQ(SegmentedArray::segments_for(65), 9u);
}

TEST(DirInfo, SharerBitmask) {
  DirInfo d;
  d.kind = DirInfo::Kind::Shared;
  d.add_sharer(0);
  d.add_sharer(63);
  d.add_sharer(5);
  EXPECT_EQ(d.sharer_count(), 3u);
  EXPECT_TRUE(d.is_sharer(63));
  d.remove_sharer(63);
  EXPECT_FALSE(d.is_sharer(63));
  EXPECT_EQ(d.sharer_count(), 2u);
}

}  // namespace
}  // namespace disco::cache
