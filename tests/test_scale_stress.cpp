// Larger-scale stress: golden-model coherence fuzz on a 16-node mini CMP
// (heavy sharing), and an 8x8 full system with the slowest algorithm —
// the configurations where protocol races and shadow-packet corner cases
// are most likely to surface.
#include <gtest/gtest.h>

#include "cache_test_util.h"
#include "cmp/system.h"
#include "workload/profile.h"

namespace disco::cache {
namespace {

using testutil::MiniCmp;
using testutil::word_at;

TEST(ScaleStress, SixteenNodeGoldenModelUnderDisco) {
  MiniCmp cmp(Scheme::DISCO, /*nodes_side=*/4);
  Rng rng(12021);
  std::map<Addr, std::uint64_t> golden;
  // Heavy sharing: 32 hot blocks hammered by all 16 nodes.
  for (int i = 0; i < 400; ++i) {
    const Addr addr = rng.next_below(32) * kBlockBytes;
    const auto node = static_cast<NodeId>(rng.next_below(16));
    if (rng.chance(0.5)) {
      const std::uint64_t v = rng.next_u64();
      cmp.store(node, addr, v);
      golden[addr] = v;
    } else {
      const BlockBytes b = cmp.load(node, addr);
      if (auto it = golden.find(addr); it != golden.end()) {
        EXPECT_EQ(word_at(b, 0), it->second)
            << "node " << node << " block " << std::hex << addr;
      }
    }
  }
  EXPECT_GT(cmp.stats_.invalidations_sent + cmp.stats_.recalls_sent, 100u)
      << "the fuzz must actually exercise coherence actions";
}

TEST(ScaleStress, SixteenNodeConcurrentBurstsDrain) {
  // Issue bursts from every node without draining in between: in-flight
  // transactions overlap across all banks at once.
  MiniCmp cmp(Scheme::DISCO, /*nodes_side=*/4, "bdi");
  Rng rng(5150);
  for (int burst = 0; burst < 20; ++burst) {
    for (NodeId node = 0; node < 16; ++node) {
      const Addr addr = rng.next_below(256) * kBlockBytes;
      cmp.issue(node, addr, rng.chance(0.4), rng.next_u64());
    }
    for (int t = 0; t < 5; ++t) cmp.tick();
  }
  ASSERT_TRUE(cmp.drain(100000)) << "overlapping transactions must converge";
  EXPECT_TRUE(cmp.net_->credits_quiescent());
}

}  // namespace
}  // namespace disco::cache

namespace disco::cmp {
namespace {

TEST(ScaleStress, EightByEightWithSlowAlgorithm) {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cfg.algorithm = "sc2";  // 6/14-cycle engines: longest shadow windows
  cfg.noc.mesh_cols = 8;
  cfg.noc.mesh_rows = 8;
  cfg.l2.total_size_bytes = 16ULL * 1024 * 1024;
  cfg.mem.num_controllers = 4;
  CmpSystem sys(cfg, workload::profile_by_name("canneal"));
  sys.functional_warmup(1500);
  sys.run(8000);
  EXPECT_TRUE(sys.drain(60000));
  EXPECT_TRUE(sys.network().credits_quiescent());
  EXPECT_GT(sys.cache_stats().nuca_latency.count(), 0u);
}

}  // namespace
}  // namespace disco::cmp
