// Property-style differential tests over every registered compression
// algorithm: exact roundtrip on structured block generators, agreement
// between the throwing and non-throwing decode paths, the raw-fallback
// size bound, and consistency between Encoded's byte accounting (payload +
// overhead_bytes) and the flit count the NoC would put on the wire.
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/registry.h"
#include "noc/packet.h"

namespace disco {
namespace {

using compress::Encoded;

void put_word(BlockBytes& b, std::size_t i, std::uint64_t v) {
  std::memcpy(b.data() + i * 8, &v, 8);
}

/// Mostly-zero blocks with short nonzero runs (zerobit/fpc territory).
BlockBytes gen_zero_runs(Rng& rng) {
  BlockBytes b{};
  const std::size_t run_start = rng.next_below(kBlockBytes);
  const std::size_t run_len = rng.next_below(9);
  for (std::size_t i = 0; i < run_len && run_start + i < kBlockBytes; ++i)
    b[run_start + i] = static_cast<std::uint8_t>(1 + rng.next_below(255));
  return b;
}

/// Base-plus-small-delta words (bdi/delta territory).
BlockBytes gen_narrow_deltas(Rng& rng) {
  BlockBytes b{};
  const std::uint64_t base = rng.next_u64();
  for (std::size_t w = 0; w < kWordsPerBlock; ++w)
    put_word(b, w, base + rng.next_below(128));
  return b;
}

/// Double-precision values sharing an exponent neighborhood with noisy
/// mantissa low bits (fpc/sfpc territory).
BlockBytes gen_fp_like(Rng& rng) {
  BlockBytes b{};
  for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
    const double base = 1000.0 + static_cast<double>(rng.next_below(100));
    const double v = base + static_cast<double>(rng.next_below(1024)) / 1024.0;
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    put_word(b, w, bits);
  }
  return b;
}

/// Incompressible noise: must take the raw fallback without corruption.
BlockBytes gen_random(Rng& rng) {
  BlockBytes b{};
  for (std::size_t w = 0; w < kWordsPerBlock; ++w)
    put_word(b, w, rng.next_u64());
  return b;
}

struct Generator {
  const char* name;
  BlockBytes (*gen)(Rng&);
};

const Generator kGenerators[] = {
    {"zero_runs", &gen_zero_runs},
    {"narrow_deltas", &gen_narrow_deltas},
    {"fp_like", &gen_fp_like},
    {"random", &gen_random},
};

constexpr int kBlocksPerGenerator = 64;

/// Flit count the NoC computes for a data packet carrying `payload` bytes
/// (head flit carries the first kFlitBytes; see Packet::flit_count).
std::uint32_t wire_flits(std::size_t payload) {
  if (payload <= kFlitBytes) return 1;
  return 1 + static_cast<std::uint32_t>((payload - 1) / kFlitBytes);
}

class CompressProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(CompressProperty, RoundTripIsExactOnStructuredBlocks) {
  const auto algo = compress::make_algorithm(GetParam());
  for (const Generator& g : kGenerators) {
    Rng rng(splitmix64(std::hash<std::string>{}(GetParam())) ^
            splitmix64(std::hash<std::string>{}(g.name)));
    for (int i = 0; i < kBlocksPerGenerator; ++i) {
      const BlockBytes block = g.gen(rng);
      const Encoded enc = algo->compress(block);
      // Raw-fallback contract: never larger than tag byte + raw block.
      ASSERT_LE(enc.size(), kBlockBytes + 1)
          << GetParam() << "/" << g.name << " block " << i;
      const BlockBytes back =
          algo->decompress(std::span<const std::uint8_t>(enc.bytes));
      ASSERT_EQ(back, block)
          << GetParam() << "/" << g.name << " roundtrip broke at block " << i;
    }
  }
}

TEST_P(CompressProperty, TryDecompressAgreesWithThrowingPath) {
  const auto algo = compress::make_algorithm(GetParam());
  for (const Generator& g : kGenerators) {
    Rng rng(splitmix64(std::hash<std::string>{}(GetParam())) ^
            splitmix64(std::hash<std::string>{}(g.name)) ^ 0x9E3779B9u);
    for (int i = 0; i < kBlocksPerGenerator; ++i) {
      const BlockBytes block = g.gen(rng);
      const Encoded enc = algo->compress(block);
      const auto maybe =
          algo->try_decompress(std::span<const std::uint8_t>(enc.bytes));
      ASSERT_TRUE(maybe.has_value())
          << GetParam() << "/" << g.name << " rejected its own output";
      ASSERT_EQ(*maybe, block) << GetParam() << "/" << g.name;
    }
  }
  // Malformed inputs must come back nullopt, never throw or crash.
  EXPECT_FALSE(algo->try_decompress({}).has_value()) << GetParam();
}

TEST_P(CompressProperty, EncodedSizeMatchesWireFlitCount) {
  const auto algo = compress::make_algorithm(GetParam());
  for (const Generator& g : kGenerators) {
    Rng rng(splitmix64(std::hash<std::string>{}(GetParam())) ^
            splitmix64(std::hash<std::string>{}(g.name)) ^ 0xDEADBEEFu);
    for (int i = 0; i < kBlocksPerGenerator; ++i) {
      const BlockBytes block = g.gen(rng);
      Encoded enc = algo->compress(block);
      const std::size_t total = enc.size();
      ASSERT_EQ(total, enc.bytes.size() + enc.overhead_bytes);

      noc::Packet pkt;
      pkt.has_data = true;
      std::memcpy(pkt.data.data(), block.data(), kBlockBytes);
      const std::uint32_t raw_flits = pkt.flit_count();
      EXPECT_EQ(raw_flits, wire_flits(kBlockBytes));

      pkt.apply_compression(std::move(enc));
      // The packet's wire footprint must follow the encoder's byte
      // accounting — overhead bytes included — and never exceed the raw
      // footprint by more than the single fallback tag flit.
      EXPECT_EQ(pkt.payload_bytes(), total);
      EXPECT_EQ(pkt.flit_count(), wire_flits(total));
      EXPECT_LE(pkt.flit_count(), raw_flits + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CompressProperty,
                         ::testing::ValuesIn(compress::algorithm_names()),
                         [](const ::testing::TestParamInfo<std::string>& p) {
                           return p.param;
                         });

TEST(CompressPropertySuite, CoversEveryRegisteredAlgorithm) {
  EXPECT_EQ(compress::algorithm_names().size(), 8u)
      << "new algorithm registered: confirm the property suite picks it up "
         "(it iterates algorithm_names()) and update this count";
}

}  // namespace
}  // namespace disco
