// Parallel sweep engine: thread-count invariance of the emitted metrics
// (the determinism guarantee benches rely on), group-based sharding,
// failure/timeout isolation, and the generic parallel map.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>

#include "sim/json_export.h"
#include "sim/sweep.h"
#include "workload/profile.h"

namespace disco::sim {
namespace {

RunOptions tiny_run() {
  RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 2000;
  opt.measure_cycles = 8000;
  return opt;
}

std::vector<SweepCell> small_grid() {
  const RunOptions opt = tiny_run();
  std::vector<SweepCell> cells;
  std::size_t group = 0;
  for (const char* name : {"canneal", "swaptions"}) {
    const auto& profile = workload::profile_by_name(name);
    for (const Scheme s : {Scheme::CC, Scheme::DISCO}) {
      SystemConfig cfg;
      cfg.scheme = s;
      SweepCell c{cfg, profile, opt};
      c.group = group;
      cells.push_back(std::move(c));
    }
    ++group;
  }
  return cells;
}

std::string as_json(const SweepResult& r) {
  std::ostringstream os;
  write_json(os, r.ok_results());
  return os.str();
}

SweepOptions quiet(unsigned threads) {
  SweepOptions opt;
  opt.threads = threads;
  opt.progress = false;
  return opt;
}

TEST(SweepEngine, ParallelRunIsBitIdenticalToSerial) {
  const auto cells = small_grid();
  const SweepResult serial = run_sweep(cells, quiet(1));
  const SweepResult parallel = run_sweep(cells, quiet(4));
  ASSERT_EQ(serial.completed, cells.size());
  ASSERT_EQ(parallel.completed, cells.size());
  EXPECT_EQ(as_json(serial), as_json(parallel))
      << "metrics must not depend on the thread count";
}

TEST(SweepEngine, CellsOfAGroupShareASeed) {
  // Cells of one seed_group get the same derived seed (required so a row's
  // schemes replay identical traffic for normalization): two identical
  // cells in the same group produce identical metrics, while the same cell
  // in another group draws different traffic.
  SystemConfig cfg;
  cfg.scheme = Scheme::CC;
  const auto& profile = workload::profile_by_name("canneal");
  std::vector<SweepCell> cells(3, SweepCell{cfg, profile, tiny_run()});
  cells[0].group = 0;
  cells[1].group = 0;
  cells[2].group = 1;
  const SweepResult r = run_sweep(cells, quiet(2));
  ASSERT_EQ(r.completed, 3u);
  std::ostringstream a, b, c;
  write_json(a, r.cells[0].result);
  write_json(b, r.cells[1].result);
  write_json(c, r.cells[2].result);
  EXPECT_EQ(a.str(), b.str()) << "same seed_group must replay identically";
  EXPECT_NE(a.str(), c.str()) << "another group must draw fresh traffic";
}

TEST(SweepEngine, ShardsPartitionByGroupAndUnionCoversAll) {
  const auto cells = small_grid();
  SweepOptions s0 = quiet(2);
  s0.shard_index = 0;
  s0.shard_count = 2;
  SweepOptions s1 = quiet(2);
  s1.shard_index = 1;
  s1.shard_count = 2;
  const SweepResult r0 = run_sweep(cells, s0);
  const SweepResult r1 = run_sweep(cells, s1);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_NE(r0.cells[i].ok(), r1.cells[i].ok())
        << "cell " << i << " must run in exactly one shard";
    // A group's cells never straddle shards.
    EXPECT_EQ(r0.cells[i].ok(), r0.cells[i ^ 1].ok());
  }
  EXPECT_EQ(r0.completed + r1.completed, cells.size());
  EXPECT_EQ(r0.skipped, r1.completed);
  // Shard results match the corresponding cells of an unsharded run.
  const SweepResult full = run_sweep(cells, quiet(2));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const SweepResult& owner = r0.cells[i].ok() ? r0 : r1;
    std::ostringstream a, b;
    write_json(a, owner.cells[i].result);
    write_json(b, full.cells[i].result);
    EXPECT_EQ(a.str(), b.str()) << "sharding must not change cell " << i;
  }
}

TEST(SweepEngine, FailedCellIsRecordedNotFatal) {
  auto cells = small_grid();
  cells[1].cfg.algorithm = "no-such-algorithm";  // make_algorithm throws
  SweepOptions opt = quiet(2);
  opt.max_attempts = 3;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_EQ(r.completed, cells.size() - 1);
  EXPECT_EQ(r.cells[1].status, CellStatus::Failed);
  EXPECT_EQ(r.cells[1].attempts, 3u) << "failed cells are retried";
  EXPECT_FALSE(r.cells[1].error.empty());
  for (const std::size_t i : {0UL, 2UL, 3UL}) {
    EXPECT_TRUE(r.cells[i].ok()) << "cell " << i;
    EXPECT_EQ(r.cells[i].attempts, 1u);
  }
  EXPECT_EQ(r.ok_results().size(), cells.size() - 1);
}

TEST(SweepEngine, TimedOutCellIsRecordedNotFatal) {
  auto cells = small_grid();
  cells.resize(1);
  cells[0].opt.measure_cycles = 200000;  // far beyond the budget below
  SweepOptions opt = quiet(1);
  opt.cell_timeout_ms = 25;
  const SweepResult r = run_sweep(cells, opt);
  EXPECT_EQ(r.cells[0].status, CellStatus::TimedOut);
  EXPECT_EQ(r.cells[0].attempts, 1u) << "timeouts are not retried";
  EXPECT_EQ(r.failed, 1u);
  EXPECT_TRUE(r.ok_results().empty());
}

TEST(SweepEngine, RunIndexedCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  run_indexed(hits.size(), [&](std::size_t i) { ++hits[i]; }, quiet(4));
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SweepEngine, ZeroRateFaultInjectionLeavesMetricsUntouched) {
  // The recovery machinery is a pure overlay: an enabled injector whose
  // rates are all zero must reproduce the exact metrics of a run without
  // one. (Timeout knobs are pushed out of reach so the loss scanner
  // provably never fires on slow-but-intact packets.)
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  const auto& profile = workload::profile_by_name("canneal");
  std::vector<SweepCell> cells(2, SweepCell{cfg, profile, tiny_run()});
  cells[1].cfg.fault.enabled = true;
  cells[1].cfg.fault.reassembly_timeout_cycles = 1u << 30;
  cells[1].cfg.fault.nack_retry_interval = 1u << 30;
  cells[0].group = 0;
  cells[1].group = 0;  // same seed -> identical traffic
  const SweepResult r = run_sweep(cells, quiet(2));
  ASSERT_EQ(r.completed, 2u);
  const CellResult& plain = r.cells[0].result;
  const CellResult& fault = r.cells[1].result;
  EXPECT_EQ(plain.core_ops, fault.core_ops);
  EXPECT_EQ(plain.l1_misses, fault.l1_misses);
  EXPECT_EQ(plain.link_flits, fault.link_flits);
  EXPECT_EQ(plain.avg_nuca_latency, fault.avg_nuca_latency);
  EXPECT_EQ(plain.avg_packet_latency, fault.avg_packet_latency);
  EXPECT_EQ(plain.energy.subsystem_nj(), fault.energy.subsystem_nj());
  // The integrity layer ran (checks) but never intervened (all else zero).
  EXPECT_FALSE(plain.fault.enabled);
  EXPECT_TRUE(fault.fault.enabled);
  EXPECT_GT(fault.fault.crc_checks, 0u);
  EXPECT_EQ(fault.fault.corruptions_detected, 0u);
  EXPECT_EQ(fault.fault.silent_corruptions, 0u);
  EXPECT_EQ(fault.fault.flit_loss_timeouts, 0u);
  EXPECT_EQ(fault.fault.nacks_sent, 0u);
  // JSON for the non-fault cell is byte-identical to a pre-fault-layer
  // build: no "fault" object is emitted.
  std::ostringstream os;
  write_json(os, plain);
  EXPECT_EQ(os.str().find("\"fault\""), std::string::npos);
  std::ostringstream fs;
  write_json(fs, fault);
  EXPECT_NE(fs.str().find("\"fault\""), std::string::npos);
}

TEST(SweepEngine, TraceReplayIsThreadCountInvariant) {
  // Stronger determinism than metric equality: with tracing and invariant
  // checking on, the per-cell canonical event streams — the full
  // microarchitectural interleaving, not just end-of-run aggregates — must
  // be byte-identical between a serial and a 4-thread run.
  auto cells = small_grid();
  cells.resize(2);
  for (auto& c : cells) {  // 2x2 keeps the captured streams small
    c.cfg.noc.mesh_cols = 2;
    c.cfg.noc.mesh_rows = 2;
    c.cfg.l2.total_size_bytes = 256ULL * 1024;
  }
  SweepOptions serial = quiet(1);
  serial.trace.enabled = true;
  serial.trace.check_invariants = true;
  SweepOptions parallel = quiet(4);
  parallel.trace = serial.trace;
  const SweepResult a = run_sweep(cells, serial);
  const SweepResult b = run_sweep(cells, parallel);
  ASSERT_EQ(a.completed, cells.size());
  ASSERT_EQ(b.completed, cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& ra = a.cells[i].result;
    const CellResult& rb = b.cells[i].result;
    ASSERT_FALSE(ra.trace_text.empty()) << "cell " << i;
    EXPECT_EQ(ra.trace_text, rb.trace_text)
        << "trace stream of cell " << i << " depends on the thread count";
    EXPECT_TRUE(ra.invariants.enabled);
    EXPECT_TRUE(ra.invariants.clean())
        << "cell " << i << ": " << ra.invariants.first_violation;
    EXPECT_EQ(ra.invariants.events_checked, rb.invariants.events_checked);
    EXPECT_EQ(ra.invariants.cycles_checked, rb.invariants.cycles_checked);
    EXPECT_EQ(ra.invariants.violations, rb.invariants.violations);
  }
  // The JSON gains an "invariants" object exactly when checking ran.
  std::ostringstream with;
  write_json(with, a.cells[0].result);
  EXPECT_NE(with.str().find("\"invariants\""), std::string::npos);
  const SweepResult plain = run_sweep({cells[0]}, quiet(1));
  std::ostringstream without;
  write_json(without, plain.cells[0].result);
  EXPECT_EQ(without.str().find("\"invariants\""), std::string::npos);
}

TEST(SweepEngine, EmptySweepIsANoop) {
  const SweepResult r = run_sweep({}, quiet(4));
  EXPECT_TRUE(r.cells.empty());
  EXPECT_TRUE(r.all_ok());
  run_indexed(0, [](std::size_t) { FAIL(); }, quiet(4));
}

}  // namespace
}  // namespace disco::sim
