// Shared simulation fixtures for the test suite. Everything that used to be
// duplicated between the NoC-level and cache-level test utilities lives here
// once: a collecting packet sink, a deterministic compressible-packet
// factory, quiescence drivers, and the MiniCmp substrate (mesh + L1s + L2
// banks + memory controller, no cores) that protocol tests drive directly.
// tests/noc_test_util.h and tests/cache_test_util.h remain as thin aliases
// so existing tests keep their includes.
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cache/l1_cache.h"
#include "cache/l2_bank.h"
#include "cache/mem_ctrl.h"
#include "common/rng.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "noc/network.h"

namespace disco::noc::testutil {

class CollectingSink final : public PacketSink {
 public:
  void deliver(PacketPtr pkt, Cycle now) override {
    arrivals.push_back({std::move(pkt), now});
  }
  struct Arrival {
    PacketPtr pkt;
    Cycle when;
  };
  std::vector<Arrival> arrivals;
};

inline PacketPtr make_packet(NodeId src, NodeId dst, VNet vnet, bool with_data,
                             Cycle now, std::uint64_t id) {
  auto pkt = std::make_shared<Packet>();
  pkt->id = id;
  pkt->src = src;
  pkt->dst = dst;
  pkt->src_unit = UnitKind::Core;
  pkt->dst_unit = UnitKind::Core;
  pkt->vnet = vnet;
  pkt->created = now;
  pkt->has_data = with_data;
  pkt->compressible = with_data;
  if (with_data) {
    // Compressible payload: base + small deltas.
    Rng rng(id);
    const std::uint64_t base = rng.next_u64();
    for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
      const std::uint64_t v = base + rng.next_below(100);
      std::memcpy(pkt->data.data() + f * 8, &v, 8);
    }
  }
  return pkt;
}

/// Tick until the network is quiescent; returns false on timeout.
inline bool run_until_quiescent(Network& net, Cycle& clock, Cycle max_cycles) {
  for (Cycle i = 0; i < max_cycles; ++i) {
    ++clock;
    net.tick(clock);
    if (net.quiescent()) return true;
  }
  return false;
}

}  // namespace disco::noc::testutil

namespace disco::cache::testutil {

class MiniCmp {
 public:
  explicit MiniCmp(Scheme scheme = Scheme::Baseline, std::uint32_t nodes_side = 2,
                   std::string algo_name = "delta") {
    cfg_.noc.mesh_cols = nodes_side;
    cfg_.noc.mesh_rows = nodes_side;
    cfg_.scheme = scheme;
    cfg_.l2.total_size_bytes = 256ULL * 1024 * nodes_side * nodes_side;
    algo_ = compress::make_algorithm(algo_name);

    L2BankPolicy bank;
    noc::NiPolicy ni;
    const auto lat = algo_->latency();
    switch (scheme) {
      case Scheme::Baseline:
        break;
      case Scheme::CC:
        bank = {true, lat.decomp_cycles, false, lat.comp_cycles};
        break;
      case Scheme::CNC:
        bank = {true, lat.decomp_cycles, false, lat.comp_cycles};
        ni = {algo_.get(), true, true, false, false, lat.comp_cycles,
              lat.decomp_cycles};
        break;
      case Scheme::DISCO:
      case Scheme::Ideal:
        bank = {true, 0, true, lat.comp_cycles};
        ni = {algo_.get(), false, false, true, true, lat.comp_cycles,
              lat.decomp_cycles};
        break;
    }

    noc::Network::ExtensionFactory factory;
    if (scheme == Scheme::DISCO) {
      factory = [this](noc::Router& r) {
        return std::make_unique<core::DiscoUnit>(r, cfg_.disco, *algo_,
                                                 algo_->latency(), noc_stats_);
      };
    }
    net_ = std::make_unique<noc::Network>(cfg_.noc, ni, noc_stats_, factory);

    const std::uint32_t n = cfg_.noc.num_nodes();
    auto home = [n](Addr a) { return static_cast<NodeId>((a / kBlockBytes) % n); };
    auto mem_node = [](Addr) { return NodeId{0}; };
    std::uint32_t shift = 0;
    while ((1u << shift) < n) ++shift;

    for (NodeId node = 0; node < n; ++node) {
      l1s_.push_back(std::make_unique<L1Cache>(node, cfg_.l1, net_->ni(node),
                                               home, stats_));
      net_->register_sink(node, UnitKind::Core, l1s_.back().get());
      l2s_.push_back(std::make_unique<L2Bank>(
          node, cfg_.l2, bank, algo_.get(), cfg_.l2_bank_size_bytes(), shift,
          net_->ni(node), mem_node, stats_));
      net_->register_sink(node, UnitKind::L2Bank, l2s_.back().get());
    }
    mem_ = std::make_unique<MemCtrl>(
        NodeId{0}, cfg_.mem, net_->ni(0),
        [this](Addr a) { return default_block_(a); }, stats_);
    net_->register_sink(0, UnitKind::MemCtrl, mem_.get());
  }

  void set_memory_pattern(std::function<BlockBytes(Addr)> fn) {
    default_block_ = std::move(fn);
  }

  void tick() {
    ++clock_;
    net_->tick(clock_);
    for (auto& l1 : l1s_) l1->tick(clock_);
    for (auto& l2 : l2s_) l2->tick(clock_);
    mem_->tick(clock_);
  }

  /// Run until all controllers and the network are idle (false on timeout).
  bool drain(Cycle max_cycles = 20000) {
    for (Cycle i = 0; i < max_cycles; ++i) {
      tick();
      bool quiet = net_->quiescent() && mem_->idle();
      for (auto& l1 : l1s_) quiet = quiet && l1->idle();
      for (auto& l2 : l2s_) quiet = quiet && l2->idle();
      if (quiet) return true;
    }
    return false;
  }

  /// Blocking load: issues through the L1 and drains the system.
  /// Returns the loaded block as seen by the L1 afterwards.
  BlockBytes load(NodeId node, Addr addr) {
    issue(node, addr, false, 0);
    drain();
    const L1Line* line = l1s_[node]->peek(block_align(addr));
    EXPECT_NE(line, nullptr) << "load did not install a line";
    return line != nullptr ? line->data : BlockBytes{};
  }

  void store(NodeId node, Addr addr, std::uint64_t value) {
    issue(node, addr, true, value);
    drain();
  }

  /// Issue an access, retrying while the L1 is Blocked.
  void issue(NodeId node, Addr addr, bool is_store, std::uint64_t value) {
    for (int tries = 0; tries < 10000; ++tries) {
      const auto outcome =
          l1s_[node]->access(next_op_++, addr, is_store, value, clock_);
      if (outcome != L1Cache::Outcome::Blocked) return;
      tick();
    }
    FAIL() << "access blocked forever";
  }

  SystemConfig cfg_;
  std::unique_ptr<compress::Algorithm> algo_;
  noc::NocStats noc_stats_;
  CacheStats stats_;
  std::unique_ptr<noc::Network> net_;
  std::vector<std::unique_ptr<L1Cache>> l1s_;
  std::vector<std::unique_ptr<L2Bank>> l2s_;
  std::unique_ptr<MemCtrl> mem_;
  Cycle clock_ = 0;
  std::uint64_t next_op_ = 1;

 private:
  std::function<BlockBytes(Addr)> default_block_ = [](Addr a) {
    BlockBytes b{};
    for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
      const std::uint64_t v = splitmix64(a + f);
      std::memcpy(b.data() + f * 8, &v, 8);
    }
    return b;
  };
};

using disco::Rng;
using disco::splitmix64;

inline std::uint64_t word_at(const BlockBytes& b, std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, b.data() + (offset & ~std::size_t{7}), 8);
  return v;
}

}  // namespace disco::cache::testutil
