// Cache-hierarchy statistics shared by all L1s, L2 banks and the memory
// controller of one simulated system.
#pragma once

#include <cstdint>

#include "common/stats.h"

namespace disco::cache {

struct CacheStats {
  // The paper's performance metric (Fig. 5/6/8): latency of L1-miss
  // NUCA data accesses — "NoC delay and cache bank access delay" — i.e.
  // requests served on-chip, from request creation at the L1 to data
  // delivery at the L1, including any exposed de/compression latency.
  // Requests that had to go to DRAM are tracked separately.
  Accumulator nuca_latency;
  Histogram nuca_latency_hist;
  Accumulator dram_latency;

  /// All L1 misses combined (NUCA + DRAM-served).
  Accumulator miss_latency;
  Histogram miss_latency_hist;

  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l1_evictions = 0;
  std::uint64_t l1_writebacks = 0;

  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l2_evictions = 0;
  std::uint64_t l2_fills = 0;

  std::uint64_t bank_compressions = 0;    ///< insert/update-time encodings
  std::uint64_t bank_decompressions = 0;  ///< read-path decodings (CC/CNC)

  std::uint64_t invalidations_sent = 0;
  std::uint64_t recalls_sent = 0;

  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;

  // Energy accounting events.
  std::uint64_t l1_array_reads = 0;
  std::uint64_t l1_array_writes = 0;
  std::uint64_t l2_array_reads = 0;
  std::uint64_t l2_array_writes = 0;

  /// Stored footprint (bytes) of L2 lines, sampled at insert/update time;
  /// effective compression ratio = kBlockBytes / stored_line_bytes.mean().
  Accumulator stored_line_bytes;

  double l2_miss_rate() const {
    const auto total = l2_hits + l2_misses;
    return total ? static_cast<double>(l2_misses) / static_cast<double>(total) : 0.0;
  }
  double l1_miss_rate() const {
    const auto total = l1_hits + l1_misses;
    return total ? static_cast<double>(l1_misses) / static_cast<double>(total) : 0.0;
  }

  void save_state(snap::Writer& w) const {
    nuca_latency.save_state(w);
    nuca_latency_hist.save_state(w);
    dram_latency.save_state(w);
    miss_latency.save_state(w);
    miss_latency_hist.save_state(w);
    for (const std::uint64_t v :
         {l1_hits, l1_misses, l1_evictions, l1_writebacks, l2_hits, l2_misses,
          l2_evictions, l2_fills, bank_compressions, bank_decompressions,
          invalidations_sent, recalls_sent, dram_reads, dram_writes,
          l1_array_reads, l1_array_writes, l2_array_reads, l2_array_writes})
      w.u64(v);
    stored_line_bytes.save_state(w);
  }
  void restore_state(snap::Reader& r) {
    nuca_latency.restore_state(r);
    nuca_latency_hist.restore_state(r);
    dram_latency.restore_state(r);
    miss_latency.restore_state(r);
    miss_latency_hist.restore_state(r);
    for (std::uint64_t* v :
         {&l1_hits, &l1_misses, &l1_evictions, &l1_writebacks, &l2_hits,
          &l2_misses, &l2_evictions, &l2_fills, &bank_compressions,
          &bank_decompressions, &invalidations_sent, &recalls_sent,
          &dram_reads, &dram_writes, &l1_array_reads, &l1_array_writes,
          &l2_array_reads, &l2_array_writes})
      *v = r.u64();
    stored_line_bytes.restore_state(r);
  }
};

}  // namespace disco::cache
