// Coherence protocol message vocabulary and packet construction helpers.
//
// The protocol is a blocking-directory invalidation protocol for a shared,
// inclusive NUCA L2: the home bank serializes transactions per block and
// mediates all ownership changes (owner data returns through the home).
// L1 lines hold MESI states; together with the home-resident dirty-shared
// data this provides MOESI-equivalent sharing behaviour while keeping every
// race window closed by home-side serialization (see DESIGN.md).
//
// Traffic classes (paper section 3.3C): Request vnet carries GetS/GetM and
// writebacks, Response vnet carries data responses and memory traffic,
// Coherence vnet carries invalidations/recalls and their acks.
#pragma once

#include <cstdint>
#include <cstring>

#include "noc/packet.h"

namespace disco::cache {

enum class Msg : std::uint8_t {
  // L1 -> home (Request vnet)
  GetS,      ///< read miss
  GetM,      ///< write miss / upgrade
  PutM,      ///< dirty writeback (data)
  PutE,      ///< clean-exclusive eviction notice
  // home -> L1 (Response vnet, data grants)
  DataS,     ///< data, shared grant
  DataE,     ///< data, exclusive-clean grant
  DataM,     ///< data, modified grant (all other copies invalidated)
  WBAck,     ///< writeback/eviction acknowledged
  // home -> L1 and back (Coherence vnet)
  Inv,       ///< invalidate shared copy
  InvAck,
  Recall,       ///< fetch/invalidate the exclusive copy
  RecallData,   ///< recall response with dirty data
  RecallAck,    ///< recall response, copy was clean
  // L2 <-> memory controller
  MemRead,   ///< fill request (Request vnet)
  MemData,   ///< fill data (Response vnet)
  MemWB,     ///< eviction writeback to DRAM (Request vnet, data)
};

inline const char* to_string(Msg m) {
  switch (m) {
    case Msg::GetS: return "GetS";
    case Msg::GetM: return "GetM";
    case Msg::PutM: return "PutM";
    case Msg::PutE: return "PutE";
    case Msg::DataS: return "DataS";
    case Msg::DataE: return "DataE";
    case Msg::DataM: return "DataM";
    case Msg::WBAck: return "WBAck";
    case Msg::Inv: return "Inv";
    case Msg::InvAck: return "InvAck";
    case Msg::Recall: return "Recall";
    case Msg::RecallData: return "RecallData";
    case Msg::RecallAck: return "RecallAck";
    case Msg::MemRead: return "MemRead";
    case Msg::MemData: return "MemData";
    case Msg::MemWB: return "MemWB";
  }
  return "?";
}

inline Msg msg_of(const noc::Packet& p) { return static_cast<Msg>(p.proto_msg); }

inline VNet vnet_of(Msg m) {
  switch (m) {
    case Msg::GetS:
    case Msg::GetM:
    case Msg::PutM:
    case Msg::PutE:
    case Msg::MemRead:
    case Msg::MemWB:
      return VNet::Request;
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
    case Msg::WBAck:
    case Msg::MemData:
      return VNet::Response;
    default:
      return VNet::Coherence;
  }
}

inline bool carries_data(Msg m) {
  switch (m) {
    case Msg::PutM:
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
    case Msg::RecallData:
    case Msg::MemData:
    case Msg::MemWB:
      return true;
    default:
      return false;
  }
}

inline bool is_read_critical(Msg m) {
  switch (m) {
    case Msg::GetS:
    case Msg::GetM:
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
      return true;
    default:
      return false;
  }
}

/// Build a protocol packet. Data-bearing messages are marked compressible
/// (section 3.3C: only response-class payloads are worth compressing).
/// `id` comes from the originating NI's mint_protocol_id(), so a cell's id
/// sequence is deterministic regardless of concurrent cells (ids appear in
/// trace streams, which must be thread-count invariant).
noc::PacketPtr make_packet(noc::PacketId id, Msg m, Addr addr, NodeId src,
                           UnitKind src_unit, NodeId dst, UnitKind dst_unit,
                           Cycle now);

inline Addr block_align(Addr a) { return a & ~static_cast<Addr>(kBlockBytes - 1); }

/// Write an 8-byte store value into its (8B-aligned) word within the block.
inline void apply_store_to_block(BlockBytes& block, Addr word_addr,
                                 std::uint64_t value) {
  const std::size_t offset = (word_addr & (kBlockBytes - 1)) & ~std::size_t{7};
  std::memcpy(block.data() + offset, &value, sizeof(value));
}

}  // namespace disco::cache
