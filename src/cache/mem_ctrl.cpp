#include "cache/mem_ctrl.h"

#include <algorithm>
#include <cassert>

namespace disco::cache {

MemCtrl::MemCtrl(NodeId node, const MemConfig& cfg, noc::NetworkInterface& ni,
                 ValueSynthFn synth, CacheStats& stats)
    : node_(node), cfg_(cfg), synth_(std::move(synth)), stats_(stats), out_(ni) {
  bank_free_at_.assign(cfg_.banks, 0);
}

const BlockBytes& MemCtrl::read_block(Addr addr) {
  const Addr a = block_align(addr);
  auto it = store_.find(a);
  if (it == store_.end()) it = store_.emplace(a, synth_(a)).first;
  return it->second;
}

void MemCtrl::write_block(Addr addr, const BlockBytes& data) {
  store_[block_align(addr)] = data;
}

void MemCtrl::deliver(noc::PacketPtr pkt, Cycle now) {
  switch (msg_of(*pkt)) {
    case Msg::MemRead: {
      ++stats_.dram_reads;
      const std::size_t bank = bank_of(pkt->addr);
      const Cycle start = std::max(now, bank_free_at_[bank]);
      const Cycle ready = start + cfg_.access_latency;
      bank_free_at_[bank] = start + cfg_.bank_busy_cycles;

      noc::PacketPtr resp =
          make_packet(out_.ni().mint_protocol_id(), Msg::MemData, pkt->addr,
                      node_, UnitKind::MemCtrl, pkt->src, UnitKind::L2Bank,
                      now);
      resp->data = read_block(pkt->addr);
      out_.schedule(std::move(resp), ready);
      break;
    }
    case Msg::MemWB: {
      ++stats_.dram_writes;
      const std::size_t bank = bank_of(pkt->addr);
      bank_free_at_[bank] =
          std::max(now, bank_free_at_[bank]) + cfg_.bank_busy_cycles;
      // DRAM cannot hold compressed lines (alignment/mapping, paper sec. 1):
      // the NI already decompressed the payload before delivery.
      assert(!pkt->compressed() && "compressed block reached DRAM");
      write_block(pkt->addr, pkt->data);
      break;
    }
    default:
      assert(false && "unexpected message at memory controller");
  }
}

void MemCtrl::tick(Cycle now) { out_.tick(now); }

}  // namespace disco::cache
