#include "cache/mem_ctrl.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "noc/snapshot.h"

namespace disco::cache {

MemCtrl::MemCtrl(NodeId node, const MemConfig& cfg, noc::NetworkInterface& ni,
                 ValueSynthFn synth, CacheStats& stats)
    : node_(node), cfg_(cfg), synth_(std::move(synth)), stats_(stats), out_(ni) {
  bank_free_at_.assign(cfg_.banks, 0);
}

const BlockBytes& MemCtrl::read_block(Addr addr) {
  const Addr a = block_align(addr);
  auto it = store_.find(a);
  if (it == store_.end()) it = store_.emplace(a, synth_(a)).first;
  return it->second;
}

void MemCtrl::write_block(Addr addr, const BlockBytes& data) {
  store_[block_align(addr)] = data;
}

void MemCtrl::deliver(noc::PacketPtr pkt, Cycle now) {
  switch (msg_of(*pkt)) {
    case Msg::MemRead: {
      ++stats_.dram_reads;
      const std::size_t bank = bank_of(pkt->addr);
      const Cycle start = std::max(now, bank_free_at_[bank]);
      const Cycle ready = start + cfg_.access_latency;
      bank_free_at_[bank] = start + cfg_.bank_busy_cycles;

      noc::PacketPtr resp =
          make_packet(out_.ni().mint_protocol_id(), Msg::MemData, pkt->addr,
                      node_, UnitKind::MemCtrl, pkt->src, UnitKind::L2Bank,
                      now);
      resp->data = read_block(pkt->addr);
      out_.schedule(std::move(resp), ready);
      break;
    }
    case Msg::MemWB: {
      ++stats_.dram_writes;
      const std::size_t bank = bank_of(pkt->addr);
      bank_free_at_[bank] =
          std::max(now, bank_free_at_[bank]) + cfg_.bank_busy_cycles;
      // DRAM cannot hold compressed lines (alignment/mapping, paper sec. 1):
      // the NI already decompressed the payload before delivery.
      assert(!pkt->compressed() && "compressed block reached DRAM");
      write_block(pkt->addr, pkt->data);
      break;
    }
    default:
      assert(false && "unexpected message at memory controller");
  }
}

void MemCtrl::tick(Cycle now) { out_.tick(now); }

void MemCtrl::save_state(snap::Writer& w, noc::PacketTable& t) const {
  out_.save_state(w, t);
  w.u64(bank_free_at_.size());
  for (const Cycle c : bank_free_at_) w.u64(c);

  std::vector<Addr> keys;
  keys.reserve(store_.size());
  for (const auto& [addr, blk] : store_) keys.push_back(addr);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Addr addr : keys) {
    w.u64(addr);
    w.raw(std::span<const std::uint8_t>(store_.at(addr)));
  }
}

void MemCtrl::restore_state(snap::Reader& r, const noc::PacketTable& t) {
  out_.restore_state(r, t);
  if (r.u64() != bank_free_at_.size())
    throw snap::SnapshotError("snapshot: DRAM bank-count mismatch");
  for (Cycle& c : bank_free_at_) c = r.u64();

  store_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Addr addr = r.u64();
    BlockBytes blk{};
    r.raw(std::span<std::uint8_t>(blk));
    store_.emplace(addr, blk);
  }
}

}  // namespace disco::cache
