// Private per-core L1 data cache controller: MESI states, MSHR-based miss
// handling with coalescing, eviction buffer for in-flight writebacks, and
// handling of the home bank's invalidations/recalls (including the
// grant-overtaken-by-coherence races, which park until the data arrives).
//
// The L1 is where the paper's performance metric is measured: every miss
// records request-creation -> data-delivery latency into CacheStats.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/arrays.h"
#include "cache/delayed.h"
#include "cache/protocol.h"
#include "cache/stats.h"
#include "common/config.h"
#include "noc/ni.h"

namespace disco::cache {

/// Maps a block address to its NUCA home bank node.
using HomeFn = std::function<NodeId(Addr)>;

class L1Cache final : public noc::PacketSink {
 public:
  /// Core-side completion callback: op_id of the finished access.
  using CompletionFn = std::function<void(std::uint64_t op_id, Cycle now)>;

  L1Cache(NodeId node, const L1Config& cfg, noc::NetworkInterface& ni,
          HomeFn home_of, CacheStats& stats);

  void set_completion_handler(CompletionFn fn) { on_complete_ = std::move(fn); }

  enum class Outcome {
    Hit,      ///< satisfied after hit_latency cycles (caller accounts it)
    Miss,     ///< MSHR allocated; completion callback fires later
    Blocked,  ///< MSHR full or conflicting access type: retry next cycle
  };

  /// Core access. For stores, `store_value` is written into the block's
  /// 8B-aligned word (changing the data that later flows through the NoC).
  Outcome access(std::uint64_t op_id, Addr addr, bool is_store,
                 std::uint64_t store_value, Cycle now);

  void deliver(noc::PacketPtr pkt, Cycle now) override;
  void tick(Cycle now);

  std::uint32_t hit_latency() const { return cfg_.hit_latency; }
  bool idle() const;
  std::size_t mshr_in_use() const { return mshrs_.size(); }

  /// True when a synthesized `m` for `addr` has a consumer here (an MSHR for
  /// data grants, an eviction-buffer entry for WBAck). Guards the system's
  /// hard-fault completion synthesis against double delivery.
  bool expects(Msg m, Addr addr) const;

  /// This L1's tile suffered a permanent failure: hand every pending
  /// outbound message (acks and writebacks live banks may be waiting on) to
  /// the caller and abandon all local state. The cache never ticks again.
  void hard_fail(std::vector<noc::PacketPtr>& orphans);

  /// Test hook: peek at a cached line.
  const L1Line* peek(Addr addr) { return array_.lookup(addr); }

  /// Checkpoint/restore of the full controller state (array, outbound
  /// queue, MSHRs, eviction buffer). Maps serialize sorted by address.
  void save_state(snap::Writer& w, noc::PacketTable& t) const;
  void restore_state(snap::Reader& r, const noc::PacketTable& t);

  // --- functional-warmup API (no timing, no messages; used only before
  // the timing phase to pre-populate cache and directory state) ---
  struct WarmVictim {
    Addr addr = 0;
    BlockBytes data{};
    bool dirty = false;
  };
  /// Install (or refresh) a line; returns the evicted line, if any.
  std::optional<WarmVictim> warm_install(Addr blk, const BlockBytes& data,
                                         L1State state, Cycle now);
  /// Drop a line; returns its data if it was dirty (M).
  std::optional<BlockBytes> warm_invalidate(Addr blk);
  L1Line* warm_lookup(Addr blk) { return array_.lookup(blk); }

 private:
  struct Waiter {
    std::uint64_t op_id;
    bool is_store;
    std::uint64_t store_value;
    Addr addr;  ///< full (word-granularity) address for the store target
  };
  struct Mshr {
    enum class Kind { IS, IM, SM } kind;
    std::vector<Waiter> waiters;
    bool inv_pending = false;     ///< Inv overtook the DataS grant
    bool recall_pending = false;  ///< Recall overtook the DataE/M grant
    Cycle issued = 0;
  };
  struct EvictEntry {
    BlockBytes data{};
    bool dirty = false;
  };

  void send(Msg m, Addr addr, NodeId dst_node, UnitKind dst_unit, Cycle now,
            const BlockBytes* data = nullptr, std::uint32_t extra_delay = 0);
  void apply_store(BlockBytes& block, Addr word_addr, std::uint64_t value);
  void handle_data_grant(const noc::PacketPtr& pkt, Cycle now);
  void handle_inv(Addr addr, Cycle now);
  void handle_recall(Addr addr, Cycle now);
  void make_room_for(Addr addr, Cycle now);
  void complete_waiters(Mshr& m, BlockBytes& block, bool from_dram, Cycle now);

  NodeId node_;
  L1Config cfg_;
  noc::NetworkInterface& ni_;
  HomeFn home_of_;
  CacheStats& stats_;
  CompletionFn on_complete_;

  L1Array array_;
  DelayedInjector out_;
  std::unordered_map<Addr, Mshr> mshrs_;
  std::unordered_map<Addr, EvictEntry> evict_buffer_;
};

}  // namespace disco::cache
