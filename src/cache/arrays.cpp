#include "cache/arrays.h"

#include <algorithm>

namespace disco::cache {

// ---------------------------------------------------------------------------
// L1Array

L1Array::L1Array(std::uint32_t size_bytes, std::uint32_t ways)
    : sets_(size_bytes / (ways * kBlockBytes)), ways_(ways) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 && "set count must be a power of two");
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

L1Line* L1Array::lookup(Addr addr) {
  const std::size_t base = set_of(addr) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (line.valid() && line.addr == addr) return &line;
  }
  return nullptr;
}

L1Line* L1Array::victim_for(Addr addr) {
  const std::size_t base = set_of(addr) * ways_;
  L1Line* lru = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (!line.valid()) return nullptr;  // free way available
    if (lru == nullptr || line.lru < lru->lru) lru = &line;
  }
  return lru;
}

L1Line& L1Array::install(Addr addr, const BlockBytes& data, L1State state, Cycle now) {
  const std::size_t base = set_of(addr) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (!line.valid()) {
      line.addr = addr;
      line.state = state;
      line.data = data;
      line.lru = now;
      return line;
    }
  }
  assert(false && "install without a free way (evict first)");
  return lines_[base];
}

// ---------------------------------------------------------------------------
// SegmentedArray

SegmentedArray::SegmentedArray(std::uint64_t size_bytes, std::uint32_t ways,
                               std::uint32_t tag_factor, std::uint32_t index_shift)
    : sets_(static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(ways) * kBlockBytes))),
      ways_(ways),
      tag_factor_(std::max(1u, tag_factor)),
      index_shift_(index_shift) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 && "set count must be a power of two");
  set_bits_ = 1;
  while ((1u << set_bits_) < sets_) ++set_bits_;
  sets_storage_.resize(sets_);
  for (auto& s : sets_storage_) s.resize(static_cast<std::size_t>(ways_) * tag_factor_);
  used_segments_.assign(sets_, 0);
}

L2Line* SegmentedArray::lookup(Addr addr) {
  for (L2Line& line : sets_storage_[set_of(addr)]) {
    if (line.valid && line.addr == addr) return &line;
  }
  return nullptr;
}

const L2Line* SegmentedArray::lookup(Addr addr) const {
  for (const L2Line& line : sets_storage_[set_of(addr)]) {
    if (line.valid && line.addr == addr) return &line;
  }
  return nullptr;
}

std::uint32_t SegmentedArray::free_segments(Addr addr) const {
  return segment_capacity() - used_segments_[set_of(addr)];
}

bool SegmentedArray::has_free_tag(Addr addr) const {
  for (const L2Line& line : sets_storage_[set_of(addr)]) {
    if (!line.valid) return true;
  }
  return false;
}

bool SegmentedArray::fits(Addr addr, std::uint32_t segments) const {
  return has_free_tag(addr) && free_segments(addr) >= segments;
}

L2Line* SegmentedArray::lru_victim(Addr addr, Addr exclude) {
  // Inclusion-victim protection: evicting a line with live L1 copies
  // invalidates hot L1 data (L1 hits do not refresh L2 recency), so prefer
  // LRU among lines with no L1 presence; fall back to any non-busy line.
  L2Line* lru_uncached = nullptr;
  L2Line* lru_any = nullptr;
  for (L2Line& line : sets_storage_[set_of(addr)]) {
    if (!line.valid || line.busy) continue;
    if (line.addr == exclude) continue;
    if (lru_any == nullptr || line.lru < lru_any->lru) lru_any = &line;
    if (line.dir.kind == DirInfo::Kind::Uncached &&
        (lru_uncached == nullptr || line.lru < lru_uncached->lru)) {
      lru_uncached = &line;
    }
  }
  return lru_uncached != nullptr ? lru_uncached : lru_any;
}

L2Line& SegmentedArray::install(Addr addr, std::uint32_t segments, Cycle now) {
  assert(lookup(addr) == nullptr && "double install");
  const std::size_t set = set_of(addr);
  assert(used_segments_[set] + segments <= segment_capacity());
  for (L2Line& line : sets_storage_[set]) {
    if (line.valid) continue;
    line = L2Line{};
    line.addr = addr;
    line.valid = true;
    line.segments = segments;
    line.lru = now;
    used_segments_[set] += segments;
    return line;
  }
  assert(false && "install without a free tag (evict first)");
  return sets_storage_[set].front();
}

void SegmentedArray::erase(Addr addr) {
  const std::size_t set = set_of(addr);
  for (L2Line& line : sets_storage_[set]) {
    if (line.valid && line.addr == addr) {
      assert(used_segments_[set] >= line.segments);
      used_segments_[set] -= line.segments;
      line = L2Line{};
      return;
    }
  }
  assert(false && "erase of absent line");
}

void SegmentedArray::resize(L2Line& line, std::uint32_t new_segments) {
  const std::size_t set = set_of(line.addr);
  assert(used_segments_[set] - line.segments + new_segments <= segment_capacity());
  used_segments_[set] = used_segments_[set] - line.segments + new_segments;
  line.segments = new_segments;
}

std::uint64_t SegmentedArray::valid_lines() const {
  std::uint64_t n = 0;
  for (const auto& set : sets_storage_)
    for (const auto& line : set) n += line.valid ? 1 : 0;
  return n;
}

std::uint64_t SegmentedArray::used_segments() const {
  std::uint64_t n = 0;
  for (const std::uint32_t u : used_segments_) n += u;
  return n;
}

}  // namespace disco::cache
