#include "cache/arrays.h"

#include <algorithm>
#include <span>

#include "noc/snapshot.h"

namespace disco::cache {

// ---------------------------------------------------------------------------
// L1Array

L1Array::L1Array(std::uint32_t size_bytes, std::uint32_t ways)
    : sets_(size_bytes / (ways * kBlockBytes)), ways_(ways) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 && "set count must be a power of two");
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
}

L1Line* L1Array::lookup(Addr addr) {
  const std::size_t base = set_of(addr) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (line.valid() && line.addr == addr) return &line;
  }
  return nullptr;
}

L1Line* L1Array::victim_for(Addr addr) {
  const std::size_t base = set_of(addr) * ways_;
  L1Line* lru = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (!line.valid()) return nullptr;  // free way available
    if (lru == nullptr || line.lru < lru->lru) lru = &line;
  }
  return lru;
}

L1Line& L1Array::install(Addr addr, const BlockBytes& data, L1State state, Cycle now) {
  const std::size_t base = set_of(addr) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& line = lines_[base + w];
    if (!line.valid()) {
      line.addr = addr;
      line.state = state;
      line.data = data;
      line.lru = now;
      return line;
    }
  }
  assert(false && "install without a free way (evict first)");
  return lines_[base];
}

// ---------------------------------------------------------------------------
// SegmentedArray

SegmentedArray::SegmentedArray(std::uint64_t size_bytes, std::uint32_t ways,
                               std::uint32_t tag_factor, std::uint32_t index_shift)
    : sets_(static_cast<std::uint32_t>(size_bytes / (static_cast<std::uint64_t>(ways) * kBlockBytes))),
      ways_(ways),
      tag_factor_(std::max(1u, tag_factor)),
      index_shift_(index_shift) {
  assert(sets_ > 0 && (sets_ & (sets_ - 1)) == 0 && "set count must be a power of two");
  set_bits_ = 1;
  while ((1u << set_bits_) < sets_) ++set_bits_;
  sets_storage_.resize(sets_);
  for (auto& s : sets_storage_) s.resize(static_cast<std::size_t>(ways_) * tag_factor_);
  used_segments_.assign(sets_, 0);
}

L2Line* SegmentedArray::lookup(Addr addr) {
  for (L2Line& line : sets_storage_[set_of(addr)]) {
    if (line.valid && line.addr == addr) return &line;
  }
  return nullptr;
}

const L2Line* SegmentedArray::lookup(Addr addr) const {
  for (const L2Line& line : sets_storage_[set_of(addr)]) {
    if (line.valid && line.addr == addr) return &line;
  }
  return nullptr;
}

std::uint32_t SegmentedArray::free_segments(Addr addr) const {
  return segment_capacity() - used_segments_[set_of(addr)];
}

bool SegmentedArray::has_free_tag(Addr addr) const {
  for (const L2Line& line : sets_storage_[set_of(addr)]) {
    if (!line.valid) return true;
  }
  return false;
}

bool SegmentedArray::fits(Addr addr, std::uint32_t segments) const {
  return has_free_tag(addr) && free_segments(addr) >= segments;
}

L2Line* SegmentedArray::lru_victim(Addr addr, Addr exclude) {
  // Inclusion-victim protection: evicting a line with live L1 copies
  // invalidates hot L1 data (L1 hits do not refresh L2 recency), so prefer
  // LRU among lines with no L1 presence; fall back to any non-busy line.
  L2Line* lru_uncached = nullptr;
  L2Line* lru_any = nullptr;
  for (L2Line& line : sets_storage_[set_of(addr)]) {
    if (!line.valid || line.busy) continue;
    if (line.addr == exclude) continue;
    if (lru_any == nullptr || line.lru < lru_any->lru) lru_any = &line;
    if (line.dir.kind == DirInfo::Kind::Uncached &&
        (lru_uncached == nullptr || line.lru < lru_uncached->lru)) {
      lru_uncached = &line;
    }
  }
  return lru_uncached != nullptr ? lru_uncached : lru_any;
}

L2Line& SegmentedArray::install(Addr addr, std::uint32_t segments, Cycle now) {
  assert(lookup(addr) == nullptr && "double install");
  const std::size_t set = set_of(addr);
  assert(used_segments_[set] + segments <= segment_capacity());
  for (L2Line& line : sets_storage_[set]) {
    if (line.valid) continue;
    line = L2Line{};
    line.addr = addr;
    line.valid = true;
    line.segments = segments;
    line.lru = now;
    used_segments_[set] += segments;
    return line;
  }
  assert(false && "install without a free tag (evict first)");
  return sets_storage_[set].front();
}

void SegmentedArray::erase(Addr addr) {
  const std::size_t set = set_of(addr);
  for (L2Line& line : sets_storage_[set]) {
    if (line.valid && line.addr == addr) {
      assert(used_segments_[set] >= line.segments);
      used_segments_[set] -= line.segments;
      line = L2Line{};
      return;
    }
  }
  assert(false && "erase of absent line");
}

void SegmentedArray::resize(L2Line& line, std::uint32_t new_segments) {
  const std::size_t set = set_of(line.addr);
  assert(used_segments_[set] - line.segments + new_segments <= segment_capacity());
  used_segments_[set] = used_segments_[set] - line.segments + new_segments;
  line.segments = new_segments;
}

std::uint64_t SegmentedArray::valid_lines() const {
  std::uint64_t n = 0;
  for (const auto& set : sets_storage_)
    for (const auto& line : set) n += line.valid ? 1 : 0;
  return n;
}

std::uint64_t SegmentedArray::used_segments() const {
  std::uint64_t n = 0;
  for (const std::uint32_t u : used_segments_) n += u;
  return n;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

void L1Array::save_state(snap::Writer& w) const {
  w.u32(sets_);
  w.u32(ways_);
  for (const L1Line& line : lines_) {
    w.b(line.valid());
    if (!line.valid()) continue;
    w.u64(line.addr);
    w.u8(static_cast<std::uint8_t>(line.state));
    w.raw(std::span<const std::uint8_t>(line.data));
    w.u64(line.lru);
  }
}

void L1Array::restore_state(snap::Reader& r) {
  if (r.u32() != sets_ || r.u32() != ways_)
    throw snap::SnapshotError("snapshot: L1 array geometry mismatch");
  for (L1Line& line : lines_) {
    line = L1Line{};
    if (!r.b()) continue;
    line.addr = r.u64();
    line.state = static_cast<L1State>(r.u8());
    r.raw(std::span<std::uint8_t>(line.data));
    line.lru = r.u64();
  }
}

void SegmentedArray::save_state(snap::Writer& w) const {
  w.u32(sets_);
  w.u32(ways_);
  w.u32(tag_factor_);
  for (const auto& set : sets_storage_) {
    for (const L2Line& line : set) {
      w.b(line.valid);
      if (!line.valid) continue;
      w.u64(line.addr);
      w.b(line.dirty);
      w.b(line.busy);
      w.u32(line.segments);
      w.u64(line.lru);
      w.raw(std::span<const std::uint8_t>(line.data));
      noc::save_opt_encoded(w, line.stored);
      w.u8(static_cast<std::uint8_t>(line.dir.kind));
      w.u64(line.dir.sharers);
      w.u16(line.dir.owner);
    }
  }
  for (const std::uint32_t u : used_segments_) w.u32(u);
}

void SegmentedArray::restore_state(snap::Reader& r) {
  if (r.u32() != sets_ || r.u32() != ways_ || r.u32() != tag_factor_)
    throw snap::SnapshotError("snapshot: L2 array geometry mismatch");
  for (auto& set : sets_storage_) {
    for (L2Line& line : set) {
      line = L2Line{};
      if (!r.b()) continue;
      line.valid = true;
      line.addr = r.u64();
      line.dirty = r.b();
      line.busy = r.b();
      line.segments = r.u32();
      line.lru = r.u64();
      r.raw(std::span<std::uint8_t>(line.data));
      line.stored = noc::load_opt_encoded(r);
      line.dir.kind = static_cast<DirInfo::Kind>(r.u8());
      line.dir.sharers = r.u64();
      line.dir.owner = r.u16();
    }
  }
  for (std::uint32_t& u : used_segments_) u = r.u32();
}

}  // namespace disco::cache
