// Shared NUCA L2 bank: compressed segmented storage + blocking directory.
//
// The bank serializes coherence transactions per block: while a transaction
// is in flight the block's line is `busy` and later requests queue behind
// it. Ownership transfers are home-mediated (Recall), invalidations are
// home-collected (Inv/InvAck), and evictions of lines with L1 copies run as
// child transactions that recall/invalidate before writing back — which
// closes every protocol race by construction (see DESIGN.md).
//
// Per-scheme behaviour is configured by three knobs:
//   store_compressed    — lines kept in encoded form (all schemes but Baseline)
//   read_decomp_cycles  — CC/CNC pay bank-side decompression on the read
//                         critical path before injecting raw data
//   inject_stored_wire  — DISCO/Ideal inject responses in the stored
//                         compressed form with no bank-side latency
#pragma once

#include <cstdio>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/arrays.h"
#include "cache/delayed.h"
#include "cache/protocol.h"
#include "cache/stats.h"
#include "common/config.h"
#include "fault/fault.h"
#include "noc/ni.h"
#include "trace/trace.h"

namespace disco::cache {

struct L2BankPolicy {
  bool store_compressed = false;
  std::uint32_t read_decomp_cycles = 0;
  bool inject_stored_wire = false;
  std::uint32_t insert_comp_cycles = 0;  ///< off-critical-path, modelled as energy only
  /// Optional fault injector: bit flips on compressed readouts (LLC site).
  fault::FaultInjector* injector = nullptr;
};

class L2Bank final : public noc::PacketSink {
 public:
  /// `index_shift` = log2(bank count): the NUCA interleave bits skipped by
  /// the set index (see SegmentedArray).
  L2Bank(NodeId node, const L2Config& cfg, L2BankPolicy policy,
         const compress::Algorithm* algo, std::uint64_t bank_size_bytes,
         std::uint32_t index_shift, noc::NetworkInterface& ni,
         std::function<NodeId(Addr)> mem_node_of, CacheStats& stats);

  void deliver(noc::PacketPtr pkt, Cycle now) override;
  void tick(Cycle now);

  /// Attach the system tracer (null = probes compile to a pointer check).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  bool idle() const;
  std::size_t active_transactions() const { return txns_.size(); }
  const SegmentedArray& array() const { return array_; }

  /// True when a synthesized `m` for `addr` has a waiting transaction in the
  /// matching phase. Guards the system's hard-fault completion synthesis
  /// against double delivery (the handlers assert on unexpected acks).
  bool expects(Msg m, Addr addr) const;

  /// This bank suffered a permanent failure: hand back every pending
  /// outbound message plus every unserviced request (active, queued and
  /// replaying) so the system can synthesize their completions, then
  /// abandon all transaction state. Stored lines are lost — later misses
  /// refill from the DRAM image, so dirty lines silently revert (the
  /// documented degraded-by-design data-loss window of a bank kill).
  void hard_fail(std::vector<noc::PacketPtr>& orphans);

  /// Diagnostic dump of in-flight transactions (one line each).
  void dump_transactions(std::FILE* out) const;

  /// Checkpoint/restore of the full bank state (segmented array, outbound
  /// queue, transaction table, replay/space-wait queues). The transaction
  /// table serializes sorted by address.
  void save_state(snap::Writer& w, noc::PacketTable& t) const;
  void restore_state(snap::Reader& r, const noc::PacketTable& t);

  // --- functional-warmup API (no timing, no messages) ---
  /// Callback invoked for lines functionally evicted to make room; the
  /// system invalidates their L1 copies and writes dirty data to DRAM.
  using WarmEvictFn = std::function<void(Addr addr, const BlockBytes& data,
                                         bool dirty, const DirInfo& dir)>;
  L2Line* warm_lookup(Addr blk) { return array_.lookup(blk); }
  L2Line& warm_install(Addr blk, const BlockBytes& data, bool dirty, Cycle now,
                       const WarmEvictFn& on_evict);
  /// Refresh a resident line's data (re-encodes; may evict neighbours).
  void warm_update(L2Line& line, const BlockBytes& data, bool dirty, Cycle now,
                   const WarmEvictFn& on_evict);

 private:
  struct Txn {
    enum class Kind { Request, PutAbsorb, Eviction };
    enum class Phase { Start, RecallWait, InvWait, MemWait, SpaceWait };
    Kind kind = Kind::Request;
    Phase phase = Phase::Start;
    Addr addr = 0;
    noc::PacketPtr req;                 ///< active request (Request/PutAbsorb)
    std::deque<noc::PacketPtr> queue;   ///< requests serialized behind this one
    std::uint32_t pending_acks = 0;
    Addr parent = ~Addr{0};             ///< eviction: transaction to resume

    // Data in hand (fill / recall result / writeback payload).
    BlockBytes data{};
    bool have_data = false;
    bool data_dirty = false;
    bool filled_from_mem = false;  ///< grant will be marked as DRAM-served
    /// Network-compressed image that matches `data` (reusable for storage).
    std::optional<compress::Encoded> wire;

    enum class After { None, InstallFill, UpdateThenGrant, AbsorbPut };
    After after_space = After::None;
  };

  // --- message handlers ---
  void handle_request(noc::PacketPtr pkt, Cycle now);
  void handle_put(noc::PacketPtr pkt, Cycle now);
  void handle_ack(noc::PacketPtr pkt, Cycle now);
  void handle_mem_data(noc::PacketPtr pkt, Cycle now);

  // --- transaction engine ---
  void start_request(Txn& t, Cycle now);
  void start_eviction(Txn& t, Cycle now);
  void advance_space_wait(Txn& t, Cycle now);
  void grant(Txn& t, Cycle now);
  void finish(Txn& t, Cycle now);
  void resume_parent(Addr parent, Cycle now);

  /// Try to make `extra_segments` available in addr's set; launches one
  /// eviction child transaction and returns false if not yet possible.
  bool ensure_space(Txn& t, std::uint32_t extra_segments, Cycle now);

  /// Write `data` (+optional matching wire encoding) into the line,
  /// re-encoding for storage. Returns false if the line grew and the set is
  /// out of segments — caller parks in SpaceWait.
  bool set_line_data(L2Line& line, const BlockBytes& data, bool dirty,
                     const std::optional<compress::Encoded>& wire, Cycle now);

  /// Encode `data` per storage policy. Counts energy. Returns nullopt when
  /// stored raw.
  std::optional<compress::Encoded> encode_for_store(
      const BlockBytes& data, const std::optional<compress::Encoded>& wire);

  void send(Msg m, Addr addr, NodeId dst, UnitKind dst_unit, Cycle now,
            std::uint32_t delay, const BlockBytes* data = nullptr,
            const std::optional<compress::Encoded>* wire = nullptr);

  NodeId node_;
  L2Config cfg_;
  L2BankPolicy policy_;
  const compress::Algorithm* algo_;
  std::function<NodeId(Addr)> mem_node_of_;
  CacheStats& stats_;
  trace::Tracer* tracer_ = nullptr;

  SegmentedArray array_;
  DelayedInjector out_;
  std::unordered_map<Addr, Txn> txns_;
  std::deque<noc::PacketPtr> replay_;   ///< queued requests re-dispatched next tick
  std::vector<Addr> space_waiters_;     ///< txns parked for segment space
};

}  // namespace disco::cache
