// Cache storage structures.
//
// L1Array: conventional set-associative array with true-LRU replacement,
// holding uncompressed lines with MESI states.
//
// SegmentedArray: the compressed NUCA L2 bank organization — a decoupled
// tag/data design: each set has ways*tag_factor tag entries but only
// ways*64B of data space, carved into 8-byte segments. A compressed line
// occupies ceil(size/8) segments, so good compression lets a set hold up to
// tag_factor times more lines (the cache-utility benefit the paper's
// schemes share). Directory state lives next to the tags.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "compress/algorithm.h"

namespace disco::cache {

// ---------------------------------------------------------------------------
// L1

enum class L1State : std::uint8_t { I, S, E, M };

struct L1Line {
  Addr addr = 0;
  L1State state = L1State::I;
  BlockBytes data{};
  Cycle lru = 0;

  bool valid() const { return state != L1State::I; }
};

class L1Array {
 public:
  L1Array(std::uint32_t size_bytes, std::uint32_t ways);

  L1Line* lookup(Addr addr);
  /// Least-recently-used valid line of addr's set (eviction candidate), or
  /// nullptr if the set has a free way.
  L1Line* victim_for(Addr addr);
  /// Install into a free way of addr's set (victim must be gone already).
  L1Line& install(Addr addr, const BlockBytes& data, L1State state, Cycle now);

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }
  std::size_t set_of(Addr addr) const { return (addr / kBlockBytes) % sets_; }

  /// Checkpoint/restore: geometry-checked; only valid lines carry content
  /// (invalid slots restore to the default line).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<L1Line> lines_;  // sets_ x ways_
};

// ---------------------------------------------------------------------------
// L2 (compressed, decoupled tag/data)

/// Directory record for an inclusive shared L2: which L1s hold the block.
struct DirInfo {
  enum class Kind : std::uint8_t { Uncached, Shared, Excl };
  Kind kind = Kind::Uncached;
  std::uint64_t sharers = 0;  ///< bitmask over nodes (mesh <= 64 nodes)
  NodeId owner = kInvalidNode;

  void add_sharer(NodeId n) { sharers |= (1ULL << n); }
  void remove_sharer(NodeId n) { sharers &= ~(1ULL << n); }
  bool is_sharer(NodeId n) const { return (sharers >> n) & 1ULL; }
  std::uint32_t sharer_count() const { return static_cast<std::uint32_t>(__builtin_popcountll(sharers)); }
};

struct L2Line {
  Addr addr = 0;
  bool valid = false;
  bool dirty = false;
  bool busy = false;  ///< owned by an in-flight transaction (not evictable)
  std::uint32_t segments = 0;
  Cycle lru = 0;
  BlockBytes data{};
  /// Compressed image when the bank stores compressed (absent => raw).
  std::optional<compress::Encoded> stored;
  DirInfo dir;
};

class SegmentedArray {
 public:
  /// tag_factor == 1 with segment capacity ways*8 reproduces a conventional
  /// uncompressed bank (the Baseline scheme). `index_shift` discards the
  /// low block-address bits used for NUCA bank interleaving, so every set
  /// of the bank is reachable (all blocks mapping to one bank share those
  /// low bits).
  SegmentedArray(std::uint64_t size_bytes, std::uint32_t ways,
                 std::uint32_t tag_factor, std::uint32_t index_shift = 0);

  L2Line* lookup(Addr addr);
  const L2Line* lookup(Addr addr) const;

  /// Free 8B data segments in addr's set.
  std::uint32_t free_segments(Addr addr) const;
  /// True if the set has a free tag entry.
  bool has_free_tag(Addr addr) const;
  std::uint32_t segment_capacity() const { return ways_ * (kBlockBytes / kFlitBytes); }

  /// Whether a line of `segments` size can be installed right now (assumes
  /// no line with this addr present).
  bool fits(Addr addr, std::uint32_t segments) const;

  /// LRU non-busy valid line in addr's set, excluding `exclude`; nullptr if
  /// every line is busy (caller must retry later).
  L2Line* lru_victim(Addr addr, Addr exclude);

  L2Line& install(Addr addr, std::uint32_t segments, Cycle now);
  void erase(Addr addr);

  /// Change the data-segment footprint of an existing line. Caller must
  /// have verified the delta fits via free_segments().
  void resize(L2Line& line, std::uint32_t new_segments);

  std::uint32_t sets() const { return sets_; }
  /// XOR-folded set index (standard hashed indexing): decorrelates the
  /// large-power-of-two strides real address spaces are full of — e.g.
  /// per-thread heaps at GB-aligned bases, which would otherwise alias
  /// every core onto the same few sets.
  std::size_t set_of(Addr addr) const {
    std::uint64_t idx = (addr / kBlockBytes) >> index_shift_;
    idx ^= (idx >> set_bits_) ^ (idx >> (2 * set_bits_));
    return idx % sets_;
  }

  /// Occupancy diagnostics: valid lines and used segments over the array.
  std::uint64_t valid_lines() const;
  std::uint64_t used_segments() const;

  static std::uint32_t segments_for(std::size_t bytes) {
    return static_cast<std::uint32_t>((bytes + kFlitBytes - 1) / kFlitBytes);
  }

  /// Checkpoint/restore: geometry-checked; tag-slot positions are preserved
  /// (install picks the first free way, so slot order is architectural).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::vector<L2Line>& set_lines(std::size_t set) { return sets_storage_[set]; }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t tag_factor_;
  std::uint32_t index_shift_;
  std::uint32_t set_bits_ = 1;
  std::vector<std::vector<L2Line>> sets_storage_;
  std::vector<std::uint32_t> used_segments_;  // per set
};

}  // namespace disco::cache
