// Memory controller + backing store (Table 2: 1 channel, 8 banks). DRAM
// holds uncompressed blocks; block content is materialized lazily on first
// touch by a workload-supplied value synthesizer, so the data flowing
// through the whole system has realistic, per-benchmark compressibility.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/delayed.h"
#include "cache/protocol.h"
#include "cache/stats.h"
#include "common/config.h"
#include "noc/ni.h"

namespace disco::cache {

/// Generates the initial content of a block. Deterministic in the address.
using ValueSynthFn = std::function<BlockBytes(Addr)>;

class MemCtrl final : public noc::PacketSink {
 public:
  MemCtrl(NodeId node, const MemConfig& cfg, noc::NetworkInterface& ni,
          ValueSynthFn synth, CacheStats& stats);

  void deliver(noc::PacketPtr pkt, Cycle now) override;
  void tick(Cycle now);

  bool idle() const { return out_.idle(); }

  /// This controller's tile suffered a permanent failure: hand back the
  /// pending fill responses (live banks are parked on them) and stop. The
  /// backing store stays readable — it is the simulation's ground-truth
  /// DRAM image, which the system consults to synthesize completions.
  void hard_fail(std::vector<noc::PacketPtr>& orphans) { out_.take_all(orphans); }

  /// Direct backing-store access (tests, golden-model checks).
  const BlockBytes& read_block(Addr addr);
  void write_block(Addr addr, const BlockBytes& data);

  /// Checkpoint/restore. The backing store serializes sorted by address
  /// (blocks never touched are never materialized, so the map holds exactly
  /// the touched set — deterministic across runs).
  void save_state(snap::Writer& w, noc::PacketTable& t) const;
  void restore_state(snap::Reader& r, const noc::PacketTable& t);

 private:
  std::size_t bank_of(Addr addr) const {
    // Skip the NUCA-interleave bits so DRAM banks stay decorrelated from
    // the L2 bank that issued the request.
    return static_cast<std::size_t>(((addr / kBlockBytes) >> 4) % cfg_.banks);
  }

  NodeId node_;
  MemConfig cfg_;
  ValueSynthFn synth_;
  CacheStats& stats_;
  DelayedInjector out_;
  std::vector<Cycle> bank_free_at_;
  std::unordered_map<Addr, BlockBytes> store_;
};

}  // namespace disco::cache
