// Helper used by every controller to model fixed processing latencies:
// packets scheduled for injection at a future cycle, drained into the NI by
// the controller's tick.
//
// Implemented as an explicit binary heap (vector + std::push_heap/pop_heap)
// rather than std::priority_queue so checkpointing can walk the entries: the
// snapshot serializes a (when, seq)-sorted copy — a canonical form that is
// byte-identical regardless of the heap's internal layout — and restore
// rebuilds the heap from it. Pop order depends only on the (when, seq) total
// order, so the restored queue drains exactly like the original.
#pragma once

#include <algorithm>
#include <vector>

#include "noc/ni.h"
#include "noc/snapshot.h"

namespace disco::cache {

class DelayedInjector {
 public:
  explicit DelayedInjector(noc::NetworkInterface& ni) : ni_(ni) {}

  noc::NetworkInterface& ni() { return ni_; }

  void schedule(noc::PacketPtr pkt, Cycle when) {
    queue_.push_back(Entry{when, seq_++, std::move(pkt)});
    std::push_heap(queue_.begin(), queue_.end(), Entry::later);
  }

  void tick(Cycle now) {
    while (!queue_.empty() && queue_.front().when <= now) {
      std::pop_heap(queue_.begin(), queue_.end(), Entry::later);
      noc::PacketPtr pkt = std::move(queue_.back().pkt);
      queue_.pop_back();
      ni_.inject(std::move(pkt), now);
    }
  }

  bool idle() const { return queue_.empty(); }

  /// Hard-fault drain: move every pending packet out (FIFO order) and clear
  /// the queue. The system resolves the orphans against the live topology.
  void take_all(std::vector<noc::PacketPtr>& out) {
    while (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), Entry::later);
      out.push_back(std::move(queue_.back().pkt));
      queue_.pop_back();
    }
  }

  void save_state(snap::Writer& w, noc::PacketTable& t) const {
    std::vector<const Entry*> sorted;
    sorted.reserve(queue_.size());
    for (const Entry& e : queue_) sorted.push_back(&e);
    std::sort(sorted.begin(), sorted.end(),
              [](const Entry* a, const Entry* b) { return Entry::later(*b, *a); });
    w.u64(sorted.size());
    for (const Entry* e : sorted) {
      w.u64(e->when);
      w.u64(e->seq);
      t.save_ref(w, e->pkt);
    }
    w.u64(seq_);
  }

  void restore_state(snap::Reader& r, const noc::PacketTable& t) {
    queue_.clear();
    const std::uint64_t n = r.u64();
    queue_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Entry e;
      e.when = r.u64();
      e.seq = r.u64();
      e.pkt = t.load_ref(r);
      queue_.push_back(std::move(e));
    }
    std::make_heap(queue_.begin(), queue_.end(), Entry::later);
    seq_ = r.u64();
  }

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;  ///< FIFO tie-break for same-cycle entries
    noc::PacketPtr pkt;

    /// Heap comparator: "a fires later than b" — keeps the earliest entry
    /// at the front of the max-heap the std heap algorithms maintain.
    static bool later(const Entry& a, const Entry& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  noc::NetworkInterface& ni_;
  std::vector<Entry> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace disco::cache
