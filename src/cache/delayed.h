// Helper used by every controller to model fixed processing latencies:
// packets scheduled for injection at a future cycle, drained into the NI by
// the controller's tick.
#pragma once

#include <queue>
#include <vector>

#include "noc/ni.h"

namespace disco::cache {

class DelayedInjector {
 public:
  explicit DelayedInjector(noc::NetworkInterface& ni) : ni_(ni) {}

  noc::NetworkInterface& ni() { return ni_; }

  void schedule(noc::PacketPtr pkt, Cycle when) {
    queue_.push(Entry{when, seq_++, std::move(pkt)});
  }

  void tick(Cycle now) {
    while (!queue_.empty() && queue_.top().when <= now) {
      ni_.inject(queue_.top().pkt, now);
      queue_.pop();
    }
  }

  bool idle() const { return queue_.empty(); }

  /// Hard-fault drain: move every pending packet out (FIFO order) and clear
  /// the queue. The system resolves the orphans against the live topology.
  void take_all(std::vector<noc::PacketPtr>& out) {
    while (!queue_.empty()) {
      out.push_back(queue_.top().pkt);
      queue_.pop();
    }
  }

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;  ///< FIFO tie-break for same-cycle entries
    noc::PacketPtr pkt;

    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };
  noc::NetworkInterface& ni_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::uint64_t seq_ = 0;
};

}  // namespace disco::cache
