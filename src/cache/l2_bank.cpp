#include "cache/l2_bank.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "noc/snapshot.h"

namespace disco::cache {

L2Bank::L2Bank(NodeId node, const L2Config& cfg, L2BankPolicy policy,
               const compress::Algorithm* algo, std::uint64_t bank_size_bytes,
               std::uint32_t index_shift, noc::NetworkInterface& ni,
               std::function<NodeId(Addr)> mem_node_of, CacheStats& stats)
    : node_(node),
      cfg_(cfg),
      policy_(policy),
      algo_(algo),
      mem_node_of_(std::move(mem_node_of)),
      stats_(stats),
      array_(bank_size_bytes, cfg.ways,
             policy.store_compressed ? cfg.tag_factor : 1, index_shift),
      out_(ni) {
  assert((!policy_.store_compressed || algo_ != nullptr) &&
         "compressed bank needs an algorithm");
}

void L2Bank::send(Msg m, Addr addr, NodeId dst, UnitKind dst_unit, Cycle now,
                  std::uint32_t delay, const BlockBytes* data,
                  const std::optional<compress::Encoded>* wire) {
  noc::PacketPtr pkt = make_packet(out_.ni().mint_protocol_id(), m, addr,
                                   node_, UnitKind::L2Bank, dst, dst_unit, now);
  if (data != nullptr) pkt->data = *data;
  if (wire != nullptr && wire->has_value()) {
    pkt->encoded = **wire;
    pkt->was_compressed = true;
  }
  out_.schedule(std::move(pkt), now + delay);
}

std::optional<compress::Encoded> L2Bank::encode_for_store(
    const BlockBytes& data, const std::optional<compress::Encoded>& wire) {
  if (!policy_.store_compressed) return std::nullopt;
  if (wire.has_value()) return wire;  // reuse the network-compressed image
  ++stats_.bank_compressions;
  compress::Encoded enc = algo_->compress(data);
  if (enc.size() >= kBlockBytes) return std::nullopt;  // stored raw
  return enc;
}

bool L2Bank::set_line_data(L2Line& line, const BlockBytes& data, bool dirty,
                           const std::optional<compress::Encoded>& wire, Cycle now) {
  std::optional<compress::Encoded> enc = encode_for_store(data, wire);
  const std::uint32_t new_segs =
      enc ? SegmentedArray::segments_for(enc->size())
          : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
  if (new_segs > line.segments &&
      array_.free_segments(line.addr) < new_segs - line.segments) {
    return false;  // fat update: the set must shed another line first
  }
  array_.resize(line, new_segs);
  line.data = data;
  line.stored = std::move(enc);
  line.dirty = line.dirty || dirty;
  line.lru = now;
  ++stats_.l2_array_writes;
  stats_.stored_line_bytes.add(line.stored
                                   ? static_cast<double>(line.stored->size())
                                   : static_cast<double>(kBlockBytes));
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::L2Fill, 0, 0, line.addr,
                  static_cast<std::int64_t>(
                      line.stored ? line.stored->size() : kBlockBytes));
  return true;
}

// ---------------------------------------------------------------------------
// Delivery dispatch

void L2Bank::deliver(noc::PacketPtr pkt, Cycle now) {
  switch (msg_of(*pkt)) {
    case Msg::GetS:
    case Msg::GetM:
      handle_request(std::move(pkt), now);
      break;
    case Msg::PutM:
    case Msg::PutE:
      handle_put(std::move(pkt), now);
      break;
    case Msg::InvAck:
    case Msg::RecallData:
    case Msg::RecallAck:
      handle_ack(std::move(pkt), now);
      break;
    case Msg::MemData:
      handle_mem_data(std::move(pkt), now);
      break;
    default:
      assert(false && "unexpected message at L2 bank");
  }
}

void L2Bank::handle_request(noc::PacketPtr pkt, Cycle now) {
  const Addr a = pkt->addr;
  if (auto it = txns_.find(a); it != txns_.end()) {
    it->second.queue.push_back(std::move(pkt));  // serialized behind busy block
    return;
  }
  Txn& t = txns_[a];
  t.kind = Txn::Kind::Request;
  t.addr = a;
  t.req = std::move(pkt);
  start_request(t, now);
}

void L2Bank::start_request(Txn& t, Cycle now) {
  const Addr a = t.addr;
  L2Line* line = array_.lookup(a);
  ++stats_.l2_array_reads;

  if (line == nullptr) {
    ++stats_.l2_misses;
    t.phase = Txn::Phase::MemWait;
    send(Msg::MemRead, a, mem_node_of_(a), UnitKind::MemCtrl, now, cfg_.hit_latency);
    return;
  }

  ++stats_.l2_hits;
  line->busy = true;
  line->lru = now;
  const NodeId requester = t.req->src;

  if (line->dir.kind == DirInfo::Kind::Excl) {
    // Home-mediated downgrade — also when the owner itself re-requests (its
    // writeback is in flight; the recall answers from its eviction buffer).
    ++stats_.recalls_sent;
    t.phase = Txn::Phase::RecallWait;
    send(Msg::Recall, a, line->dir.owner, UnitKind::Core, now, 1);
    return;
  }

  if (msg_of(*t.req) == Msg::GetM && line->dir.kind == DirInfo::Kind::Shared) {
    DirInfo others = line->dir;
    others.remove_sharer(requester);
    if (others.sharer_count() > 0) {
      t.phase = Txn::Phase::InvWait;
      t.pending_acks = others.sharer_count();
      for (NodeId n = 0; n < 64; ++n) {
        if (others.is_sharer(n)) {
          ++stats_.invalidations_sent;
          send(Msg::Inv, a, n, UnitKind::Core, now, 1);
        }
      }
      return;
    }
  }
  grant(t, now);
}

void L2Bank::handle_put(noc::PacketPtr pkt, Cycle now) {
  const Addr a = pkt->addr;
  const NodeId sender = pkt->src;
  const Msg m = msg_of(*pkt);

  if (txns_.count(a) != 0) {
    // Block busy: an in-flight recall already captured (or will capture)
    // this data from the sender's eviction buffer — the writeback is stale.
    send(Msg::WBAck, a, sender, UnitKind::Core, now, 1);
    return;
  }
  L2Line* line = array_.lookup(a);
  if (line == nullptr || line->dir.kind != DirInfo::Kind::Excl ||
      line->dir.owner != sender) {
    send(Msg::WBAck, a, sender, UnitKind::Core, now, 1);  // stale writeback
    return;
  }

  line->dir = DirInfo{};
  if (m == Msg::PutE) {
    send(Msg::WBAck, a, sender, UnitKind::Core, now, 1);
    return;
  }

  // PutM: absorb the dirty data (may grow the stored footprint).
  Txn& t = txns_[a];
  t.kind = Txn::Kind::PutAbsorb;
  t.addr = a;
  t.req = pkt;
  line->busy = true;
  if (set_line_data(*line, pkt->data, true, pkt->encoded, now)) {
    send(Msg::WBAck, a, sender, UnitKind::Core, now, cfg_.hit_latency);
    finish(t, now);
    return;
  }
  t.data = pkt->data;
  t.wire = pkt->encoded;
  t.phase = Txn::Phase::SpaceWait;
  t.after_space = Txn::After::AbsorbPut;
  space_waiters_.push_back(a);
}

void L2Bank::handle_ack(noc::PacketPtr pkt, Cycle now) {
  const Addr a = pkt->addr;
  auto it = txns_.find(a);
  assert(it != txns_.end() && "ack without a transaction");
  Txn& t = it->second;
  const Msg m = msg_of(*pkt);

  if (m == Msg::InvAck) {
    assert(t.phase == Txn::Phase::InvWait && t.pending_acks > 0);
    if (--t.pending_acks > 0) return;
  } else {
    assert(t.phase == Txn::Phase::RecallWait);
    if (m == Msg::RecallData) {
      t.data = pkt->data;
      t.have_data = true;
      t.data_dirty = true;
      t.wire = pkt->encoded;
    }
  }

  L2Line* line = array_.lookup(a);
  assert(line != nullptr && line->busy);

  if (t.kind == Txn::Kind::Eviction) {
    if (t.have_data) {
      line->data = t.data;
      line->dirty = true;
      line->stored.reset();  // about to leave; raw writeback below
    }
    // Fall through to writeback+erase.
    const bool dirty = line->dirty;
    const BlockBytes data = line->data;
    const Addr parent = t.parent;
    std::deque<noc::PacketPtr> queue = std::move(t.queue);
    array_.erase(a);
    ++stats_.l2_evictions;
    if (tracer_ != nullptr)
      tracer_->emit(now, node_, trace::Event::L2Evict, 0, 0, a,
                    dirty ? 1 : 0);
    txns_.erase(it);
    if (dirty)
      send(Msg::MemWB, a, mem_node_of_(a), UnitKind::MemCtrl, now, 1, &data);
    for (auto& q : queue) replay_.push_back(std::move(q));
    resume_parent(parent, now);
    return;
  }

  // Request transaction resuming after recall/invalidation.
  line->dir = DirInfo{};
  if (t.have_data) {
    if (!set_line_data(*line, t.data, true, t.wire, now)) {
      t.phase = Txn::Phase::SpaceWait;
      t.after_space = Txn::After::UpdateThenGrant;
      space_waiters_.push_back(a);
      return;
    }
  }
  grant(t, now);
}

void L2Bank::handle_mem_data(noc::PacketPtr pkt, Cycle now) {
  const Addr a = pkt->addr;
  auto it = txns_.find(a);
  assert(it != txns_.end() && it->second.phase == Txn::Phase::MemWait);
  Txn& t = it->second;
  t.data = pkt->data;
  t.wire = pkt->encoded;
  t.have_data = true;
  t.filled_from_mem = true;
  t.phase = Txn::Phase::SpaceWait;
  t.after_space = Txn::After::InstallFill;
  advance_space_wait(t, now);
  // advance_space_wait may have completed (and erased) the transaction.
  if (auto again = txns_.find(a);
      again != txns_.end() && again->second.phase == Txn::Phase::SpaceWait) {
    space_waiters_.push_back(a);
  }
}

// ---------------------------------------------------------------------------
// Space management and evictions

bool L2Bank::ensure_space(Txn& t, std::uint32_t extra_segments, Cycle now) {
  const bool need_tag =
      t.after_space == Txn::After::InstallFill && array_.lookup(t.addr) == nullptr;
  if ((!need_tag || array_.has_free_tag(t.addr)) &&
      array_.free_segments(t.addr) >= extra_segments) {
    return true;
  }
  L2Line* victim = array_.lru_victim(t.addr, t.addr);
  if (victim == nullptr) return false;  // every line busy: retry next tick

  const Addr vaddr = victim->addr;
  assert(txns_.count(vaddr) == 0 && "non-busy line with a live transaction");
  Txn& ev = txns_[vaddr];
  ev.kind = Txn::Kind::Eviction;
  ev.addr = vaddr;
  ev.parent = t.addr;
  start_eviction(ev, now);
  return false;
}

void L2Bank::start_eviction(Txn& t, Cycle now) {
  L2Line* line = array_.lookup(t.addr);
  assert(line != nullptr && !line->busy);
  line->busy = true;

  if (line->dir.kind == DirInfo::Kind::Excl) {
    ++stats_.recalls_sent;
    t.phase = Txn::Phase::RecallWait;
    send(Msg::Recall, t.addr, line->dir.owner, UnitKind::Core, now, 1);
    return;
  }
  if (line->dir.kind == DirInfo::Kind::Shared && line->dir.sharer_count() > 0) {
    t.phase = Txn::Phase::InvWait;
    t.pending_acks = line->dir.sharer_count();
    for (NodeId n = 0; n < 64; ++n) {
      if (line->dir.is_sharer(n)) {
        ++stats_.invalidations_sent;
        send(Msg::Inv, t.addr, n, UnitKind::Core, now, 1);
      }
    }
    return;
  }

  // No L1 copies: write back and vanish immediately.
  const bool dirty = line->dirty;
  const BlockBytes data = line->data;
  const Addr a = t.addr;
  const Addr parent = t.parent;
  std::deque<noc::PacketPtr> queue = std::move(t.queue);
  array_.erase(a);
  ++stats_.l2_evictions;
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::L2Evict, 0, 0, a, dirty ? 1 : 0);
  txns_.erase(a);
  if (dirty) send(Msg::MemWB, a, mem_node_of_(a), UnitKind::MemCtrl, now, 1, &data);
  for (auto& q : queue) replay_.push_back(std::move(q));
  resume_parent(parent, now);
}

void L2Bank::resume_parent(Addr parent, Cycle now) {
  if (parent == ~Addr{0}) return;
  auto it = txns_.find(parent);
  if (it == txns_.end()) return;
  if (it->second.phase == Txn::Phase::SpaceWait) advance_space_wait(it->second, now);
}

void L2Bank::advance_space_wait(Txn& t, Cycle now) {
  const Addr a = t.addr;
  switch (t.after_space) {
    case Txn::After::InstallFill: {
      std::optional<compress::Encoded> enc = encode_for_store(t.data, t.wire);
      const std::uint32_t segs =
          enc ? SegmentedArray::segments_for(enc->size())
              : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
      if (!ensure_space(t, segs, now)) return;  // still waiting
      L2Line& line = array_.install(a, segs, now);
      line.busy = true;
      line.data = t.data;
      line.stored = std::move(enc);
      line.dirty = false;
      ++stats_.l2_fills;
      ++stats_.l2_array_writes;
      stats_.stored_line_bytes.add(
          line.stored ? static_cast<double>(line.stored->size())
                      : static_cast<double>(kBlockBytes));
      if (tracer_ != nullptr)
        tracer_->emit(now, node_, trace::Event::L2Fill, 0, 0, line.addr,
                      static_cast<std::int64_t>(
                          line.stored ? line.stored->size() : kBlockBytes));
      grant(t, now);
      return;
    }
    case Txn::After::UpdateThenGrant: {
      L2Line* line = array_.lookup(a);
      assert(line != nullptr);
      std::optional<compress::Encoded> enc = encode_for_store(t.data, t.wire);
      const std::uint32_t segs =
          enc ? SegmentedArray::segments_for(enc->size())
              : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
      const std::uint32_t extra = segs > line->segments ? segs - line->segments : 0;
      if (!ensure_space(t, extra, now)) return;
      const bool ok = set_line_data(*line, t.data, true, t.wire, now);
      assert(ok);
      (void)ok;
      grant(t, now);
      return;
    }
    case Txn::After::AbsorbPut: {
      L2Line* line = array_.lookup(a);
      assert(line != nullptr);
      std::optional<compress::Encoded> enc = encode_for_store(t.data, t.wire);
      const std::uint32_t segs =
          enc ? SegmentedArray::segments_for(enc->size())
              : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
      const std::uint32_t extra = segs > line->segments ? segs - line->segments : 0;
      if (!ensure_space(t, extra, now)) return;
      const bool ok = set_line_data(*line, t.data, true, t.wire, now);
      assert(ok);
      (void)ok;
      send(Msg::WBAck, a, t.req->src, UnitKind::Core, now, cfg_.hit_latency);
      finish(t, now);
      return;
    }
    case Txn::After::None:
      assert(false && "SpaceWait without a continuation");
  }
}

// ---------------------------------------------------------------------------
// Grant and completion

void L2Bank::grant(Txn& t, Cycle now) {
  L2Line* line = array_.lookup(t.addr);
  assert(line != nullptr && "grant without a resident line");
  const NodeId requester = t.req->src;
  const Msg req = msg_of(*t.req);

  Msg gm;
  if (req == Msg::GetS) {
    if (line->dir.kind == DirInfo::Kind::Shared && line->dir.sharer_count() > 0) {
      gm = Msg::DataS;
      line->dir.add_sharer(requester);
    } else {
      gm = Msg::DataE;  // sole copy: exclusive-clean grant
      line->dir = DirInfo{DirInfo::Kind::Excl, 0, requester};
    }
  } else {
    gm = Msg::DataM;
    line->dir = DirInfo{DirInfo::Kind::Excl, 0, requester};
  }

  std::uint32_t delay = cfg_.hit_latency;
  if (policy_.read_decomp_cycles > 0 && line->stored.has_value()) {
    delay += policy_.read_decomp_cycles;  // CC/CNC: bank-side decompression
    ++stats_.bank_decompressions;
  }
  const bool wire = policy_.inject_stored_wire && line->stored.has_value();
  noc::PacketPtr pkt = make_packet(out_.ni().mint_protocol_id(), gm, t.addr,
                                   node_, UnitKind::L2Bank, requester,
                                   UnitKind::Core, now);
  pkt->data = line->data;
  pkt->from_dram = t.filled_from_mem;
  if (wire) {
    pkt->encoded = *line->stored;
    pkt->was_compressed = true;
    // LLC fault site: a transient readout error corrupts the wire image
    // handed to the network; the stored line itself stays intact.
    if (policy_.injector != nullptr && policy_.injector->enabled())
      policy_.injector->corrupt_llc_payload(pkt->encoded->bytes);
  }
  out_.schedule(std::move(pkt), now + delay);
  finish(t, now);
}

void L2Bank::finish(Txn& t, Cycle now) {
  (void)now;
  if (L2Line* line = array_.lookup(t.addr)) line->busy = false;
  for (auto& q : t.queue) replay_.push_back(std::move(q));
  txns_.erase(t.addr);
}

void L2Bank::tick(Cycle now) {
  out_.tick(now);

  if (!replay_.empty()) {
    std::deque<noc::PacketPtr> batch = std::move(replay_);
    replay_.clear();
    for (auto& pkt : batch) handle_request(std::move(pkt), now);
  }

  if (!space_waiters_.empty()) {
    std::vector<Addr> still;
    std::vector<Addr> batch = std::move(space_waiters_);
    space_waiters_.clear();
    for (const Addr a : batch) {
      auto it = txns_.find(a);
      if (it == txns_.end() || it->second.phase != Txn::Phase::SpaceWait) continue;
      advance_space_wait(it->second, now);
      auto again = txns_.find(a);
      if (again != txns_.end() && again->second.phase == Txn::Phase::SpaceWait)
        still.push_back(a);
    }
    for (const Addr a : still) space_waiters_.push_back(a);
  }
}

bool L2Bank::idle() const { return txns_.empty() && replay_.empty() && out_.idle(); }

bool L2Bank::expects(Msg m, Addr addr) const {
  auto it = txns_.find(addr);
  if (it == txns_.end()) return false;
  const Txn& t = it->second;
  switch (m) {
    case Msg::InvAck:
      return t.phase == Txn::Phase::InvWait && t.pending_acks > 0;
    case Msg::RecallData:
    case Msg::RecallAck:
      return t.phase == Txn::Phase::RecallWait;
    case Msg::MemData:
      return t.phase == Txn::Phase::MemWait;
    default:
      return true;
  }
}

void L2Bank::hard_fail(std::vector<noc::PacketPtr>& orphans) {
  out_.take_all(orphans);
  // Surrender transactions in sorted address order: the caller resolves the
  // orphans with further side effects, so hash-table iteration order must
  // not leak into the simulated schedule.
  std::vector<Addr> keys;
  keys.reserve(txns_.size());
  for (const auto& [addr, t] : txns_) keys.push_back(addr);
  std::sort(keys.begin(), keys.end());
  for (const Addr addr : keys) {
    Txn& t = txns_.at(addr);
    if (t.req != nullptr) orphans.push_back(std::move(t.req));
    for (auto& q : t.queue) orphans.push_back(std::move(q));
  }
  for (auto& pkt : replay_) orphans.push_back(std::move(pkt));
  txns_.clear();
  replay_.clear();
  space_waiters_.clear();
}

void L2Bank::dump_transactions(std::FILE* out) const {
  static const char* kind_names[] = {"Request", "PutAbsorb", "Eviction"};
  static const char* phase_names[] = {"Start", "RecallWait", "InvWait",
                                      "MemWait", "SpaceWait"};
  for (const auto& [addr, t] : txns_) {
    std::fprintf(out,
                 "  bank %u txn addr=%llx kind=%s phase=%s acks=%u queue=%zu "
                 "req=%s from=%u parent=%llx\n",
                 node_, static_cast<unsigned long long>(addr),
                 kind_names[static_cast<int>(t.kind)],
                 phase_names[static_cast<int>(t.phase)], t.pending_acks,
                 t.queue.size(), t.req ? to_string(msg_of(*t.req)) : "-",
                 t.req ? t.req->src : 0,
                 static_cast<unsigned long long>(t.parent));
  }
}

// ---------------------------------------------------------------------------
// Functional warmup

L2Line& L2Bank::warm_install(Addr blk, const BlockBytes& data, bool dirty,
                             Cycle now, const WarmEvictFn& on_evict) {
  assert(txns_.empty() && "functional warmup must precede timing simulation");
  assert(array_.lookup(blk) == nullptr);
  std::optional<compress::Encoded> enc = encode_for_store(data, std::nullopt);
  const std::uint32_t segs =
      enc ? SegmentedArray::segments_for(enc->size())
          : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
  while (!array_.fits(blk, segs)) {
    L2Line* victim = array_.lru_victim(blk, blk);
    assert(victim != nullptr && "warm install cannot find a victim");
    on_evict(victim->addr, victim->data, victim->dirty, victim->dir);
    array_.erase(victim->addr);
  }
  L2Line& line = array_.install(blk, segs, now);
  line.data = data;
  line.stored = std::move(enc);
  line.dirty = dirty;
  return line;
}

void L2Bank::warm_update(L2Line& line, const BlockBytes& data, bool dirty,
                         Cycle now, const WarmEvictFn& on_evict) {
  std::optional<compress::Encoded> enc = encode_for_store(data, std::nullopt);
  const std::uint32_t segs =
      enc ? SegmentedArray::segments_for(enc->size())
          : static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
  while (segs > line.segments &&
         array_.free_segments(line.addr) < segs - line.segments) {
    L2Line* victim = array_.lru_victim(line.addr, line.addr);
    assert(victim != nullptr && "warm update cannot find a victim");
    on_evict(victim->addr, victim->data, victim->dirty, victim->dir);
    array_.erase(victim->addr);
  }
  array_.resize(line, segs);
  line.data = data;
  line.stored = std::move(enc);
  line.dirty = line.dirty || dirty;
  line.lru = now;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

void L2Bank::save_state(snap::Writer& w, noc::PacketTable& t) const {
  array_.save_state(w);
  out_.save_state(w, t);

  std::vector<Addr> keys;
  keys.reserve(txns_.size());
  for (const auto& [addr, txn] : txns_) keys.push_back(addr);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Addr addr : keys) {
    const Txn& txn = txns_.at(addr);
    w.u64(addr);
    w.u8(static_cast<std::uint8_t>(txn.kind));
    w.u8(static_cast<std::uint8_t>(txn.phase));
    w.u64(txn.addr);
    t.save_ref(w, txn.req);
    w.u64(txn.queue.size());
    for (const noc::PacketPtr& q : txn.queue) t.save_ref(w, q);
    w.u32(txn.pending_acks);
    w.u64(txn.parent);
    w.raw(std::span<const std::uint8_t>(txn.data));
    w.b(txn.have_data);
    w.b(txn.data_dirty);
    w.b(txn.filled_from_mem);
    noc::save_opt_encoded(w, txn.wire);
    w.u8(static_cast<std::uint8_t>(txn.after_space));
  }

  w.u64(replay_.size());
  for (const noc::PacketPtr& p : replay_) t.save_ref(w, p);
  w.u64(space_waiters_.size());
  for (const Addr a : space_waiters_) w.u64(a);
}

void L2Bank::restore_state(snap::Reader& r, const noc::PacketTable& t) {
  array_.restore_state(r);
  out_.restore_state(r, t);

  txns_.clear();
  const std::uint64_t n_txns = r.u64();
  for (std::uint64_t i = 0; i < n_txns; ++i) {
    const Addr key = r.u64();
    Txn txn{};
    txn.kind = static_cast<Txn::Kind>(r.u8());
    txn.phase = static_cast<Txn::Phase>(r.u8());
    txn.addr = r.u64();
    txn.req = t.load_ref(r);
    const std::uint64_t n_q = r.u64();
    for (std::uint64_t j = 0; j < n_q; ++j) txn.queue.push_back(t.load_ref(r));
    txn.pending_acks = r.u32();
    txn.parent = r.u64();
    r.raw(std::span<std::uint8_t>(txn.data));
    txn.have_data = r.b();
    txn.data_dirty = r.b();
    txn.filled_from_mem = r.b();
    txn.wire = noc::load_opt_encoded(r);
    txn.after_space = static_cast<Txn::After>(r.u8());
    txns_.emplace(key, std::move(txn));
  }

  replay_.clear();
  const std::uint64_t n_replay = r.u64();
  for (std::uint64_t i = 0; i < n_replay; ++i) replay_.push_back(t.load_ref(r));
  space_waiters_.clear();
  const std::uint64_t n_sw = r.u64();
  for (std::uint64_t i = 0; i < n_sw; ++i) space_waiters_.push_back(r.u64());
}

}  // namespace disco::cache
