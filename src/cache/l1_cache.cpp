#include "cache/l1_cache.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>

#include "noc/snapshot.h"

namespace disco::cache {

L1Cache::L1Cache(NodeId node, const L1Config& cfg, noc::NetworkInterface& ni,
                 HomeFn home_of, CacheStats& stats)
    : node_(node),
      cfg_(cfg),
      ni_(ni),
      home_of_(std::move(home_of)),
      stats_(stats),
      array_(cfg.size_bytes, cfg.ways),
      out_(ni) {}

void L1Cache::send(Msg m, Addr addr, NodeId dst_node, UnitKind dst_unit,
                   Cycle now, const BlockBytes* data, std::uint32_t extra_delay) {
  noc::PacketPtr pkt = make_packet(ni_.mint_protocol_id(), m, addr, node_,
                                   UnitKind::Core, dst_node, dst_unit, now);
  if (data != nullptr) pkt->data = *data;
  out_.schedule(std::move(pkt), now + extra_delay);
}

void L1Cache::apply_store(BlockBytes& block, Addr word_addr, std::uint64_t value) {
  apply_store_to_block(block, word_addr, value);
}

L1Cache::Outcome L1Cache::access(std::uint64_t op_id, Addr addr, bool is_store,
                                 std::uint64_t store_value, Cycle now) {
  const Addr blk = block_align(addr);
  // A block with an un-acked writeback may not be re-requested yet: this
  // guarantees an eviction-buffer entry and an in-flight grant can never
  // coexist, which makes the Recall-vs-writeback race unambiguous (the
  // recalled node answers from whichever it holds).
  if (evict_buffer_.count(blk) != 0) return Outcome::Blocked;
  L1Line* line = array_.lookup(blk);
  ++stats_.l1_array_reads;

  if (line != nullptr) {
    const bool store_ok = line->state == L1State::M || line->state == L1State::E;
    if (!is_store || store_ok) {
      line->lru = now;
      if (is_store) {
        line->state = L1State::M;  // silent E->M upgrade
        apply_store(line->data, addr, store_value);
        ++stats_.l1_array_writes;
      }
      ++stats_.l1_hits;
      return Outcome::Hit;
    }
    // Store hit on a Shared line: upgrade (SM).
    auto it = mshrs_.find(blk);
    if (it != mshrs_.end()) {
      it->second.waiters.push_back({op_id, true, store_value, addr});
      return Outcome::Miss;
    }
    if (mshrs_.size() >= cfg_.mshr_entries) return Outcome::Blocked;
    Mshr m{Mshr::Kind::SM, {}, false, false, now};
    m.waiters.push_back({op_id, true, store_value, addr});
    mshrs_.emplace(blk, std::move(m));
    ++stats_.l1_misses;
    send(Msg::GetM, blk, home_of_(blk), UnitKind::L2Bank, now);
    return Outcome::Miss;
  }

  // Full miss: coalesce or allocate. Stores may coalesce onto an IS miss;
  // if the grant comes back shared they replay as an upgrade (GetM) instead
  // of head-of-line-blocking the core.
  auto it = mshrs_.find(blk);
  if (it != mshrs_.end()) {
    it->second.waiters.push_back({op_id, is_store, store_value, addr});
    return Outcome::Miss;
  }
  if (mshrs_.size() >= cfg_.mshr_entries) return Outcome::Blocked;

  Mshr m{is_store ? Mshr::Kind::IM : Mshr::Kind::IS, {}, false, false, now};
  m.waiters.push_back({op_id, is_store, store_value, addr});
  mshrs_.emplace(blk, std::move(m));
  ++stats_.l1_misses;
  send(is_store ? Msg::GetM : Msg::GetS, blk, home_of_(blk), UnitKind::L2Bank, now);
  return Outcome::Miss;
}

void L1Cache::make_room_for(Addr addr, Cycle now) {
  L1Line* victim = array_.victim_for(addr);
  if (victim == nullptr) return;  // free way exists
  ++stats_.l1_evictions;
  const Addr vaddr = victim->addr;
  if (victim->state == L1State::M) {
    evict_buffer_[vaddr] = {victim->data, true};
    send(Msg::PutM, vaddr, home_of_(vaddr), UnitKind::L2Bank, now, &victim->data);
    ++stats_.l1_writebacks;
  } else if (victim->state == L1State::E) {
    evict_buffer_[vaddr] = {victim->data, false};
    send(Msg::PutE, vaddr, home_of_(vaddr), UnitKind::L2Bank, now);
  }
  // Shared lines drop silently (home tolerates stale sharer bits).
  victim->state = L1State::I;
}

void L1Cache::complete_waiters(Mshr& m, BlockBytes& block, bool from_dram,
                               Cycle now) {
  for (const Waiter& w : m.waiters) {
    if (w.is_store) apply_store(block, w.addr, w.store_value);
    if (on_complete_) on_complete_(w.op_id, now);
  }
  const Cycle latency = now - m.issued;
  stats_.miss_latency.add(static_cast<double>(latency));
  stats_.miss_latency_hist.add(latency);
  if (from_dram) {
    stats_.dram_latency.add(static_cast<double>(latency));
  } else {
    stats_.nuca_latency.add(static_cast<double>(latency));
    stats_.nuca_latency_hist.add(latency);
  }
}

void L1Cache::handle_data_grant(const noc::PacketPtr& pkt, Cycle now) {
  const Addr blk = pkt->addr;
  auto it = mshrs_.find(blk);
  assert(it != mshrs_.end() && "data grant without an MSHR");
  Mshr m = std::move(it->second);
  mshrs_.erase(it);

  const Msg msg = msg_of(*pkt);
  BlockBytes block = pkt->data;
  // DataE and DataM both confer write permission (silent E->M upgrade).
  const bool exclusive = msg == Msg::DataE || msg == Msg::DataM;

  // A shared grant cannot satisfy coalesced stores: complete the loads now
  // and replay the stores as an upgrade (GetM) below.
  std::vector<Waiter> replay_stores;
  if (!exclusive) {
    std::vector<Waiter> loads;
    for (Waiter& w : m.waiters) {
      (w.is_store ? replay_stores : loads).push_back(w);
    }
    m.waiters = std::move(loads);
  }
  bool any_store = false;
  for (const Waiter& w : m.waiters) any_store = any_store || w.is_store;

  complete_waiters(m, block, pkt->from_dram, now);

  const bool must_replay = !replay_stores.empty();

  // Coherence that overtook the grant: honour it without installing.
  if (m.inv_pending || m.recall_pending) {
    if (m.inv_pending) {
      send(Msg::InvAck, blk, home_of_(blk), UnitKind::L2Bank, now);
    } else if (any_store) {
      send(Msg::RecallData, blk, home_of_(blk), UnitKind::L2Bank, now, &block);
    } else {
      send(Msg::RecallAck, blk, home_of_(blk), UnitKind::L2Bank, now);
    }
    if (must_replay) {
      // No line retained: the replayed stores are a fresh IM miss.
      Mshr rm{Mshr::Kind::IM, std::move(replay_stores), false, false, now};
      mshrs_.emplace(blk, std::move(rm));
      ++stats_.l1_misses;
      send(Msg::GetM, blk, home_of_(blk), UnitKind::L2Bank, now);
    }
    return;
  }

  // For an SM upgrade the line is already resident.
  L1Line* line = array_.lookup(blk);
  if (line == nullptr) {
    make_room_for(blk, now);
    line = &array_.install(blk, block,
                           exclusive ? L1State::E : L1State::S, now);
  } else {
    line->data = block;
    line->state = exclusive ? L1State::E : L1State::S;
    line->lru = now;
  }
  if (any_store) line->state = L1State::M;
  ++stats_.l1_array_writes;

  if (must_replay) {
    Mshr rm{Mshr::Kind::SM, std::move(replay_stores), false, false, now};
    mshrs_.emplace(blk, std::move(rm));
    ++stats_.l1_misses;
    send(Msg::GetM, blk, home_of_(blk), UnitKind::L2Bank, now);
  }
}

void L1Cache::handle_inv(Addr addr, Cycle now) {
  if (auto it = mshrs_.find(addr); it != mshrs_.end()) {
    // Grant may still be in flight: ack only after it arrives (keeps the
    // home's serialization sound).
    if (it->second.kind == Mshr::Kind::IS) {
      it->second.inv_pending = true;
      return;
    }
    // SM upgrade in flight: our S copy is invalidated; the DataM grant will
    // bring fresh data. Ack now — we hold no readable copy afterwards.
    if (L1Line* line = array_.lookup(addr)) line->state = L1State::I;
    send(Msg::InvAck, addr, home_of_(addr), UnitKind::L2Bank, now);
    return;
  }
  if (L1Line* line = array_.lookup(addr)) {
    assert(line->state == L1State::S && "home invalidated an owner");
    line->state = L1State::I;
  }
  send(Msg::InvAck, addr, home_of_(addr), UnitKind::L2Bank, now);
}

void L1Cache::handle_recall(Addr addr, Cycle now) {
  // Writeback in flight: answer the recall from the eviction buffer (the
  // home treats the eventual PutM/PutE as stale). Checked before the MSHR:
  // the access() guard ensures no grant can be in flight simultaneously.
  if (auto it = evict_buffer_.find(addr); it != evict_buffer_.end()) {
    if (it->second.dirty) {
      send(Msg::RecallData, addr, home_of_(addr), UnitKind::L2Bank, now,
           &it->second.data);
    } else {
      send(Msg::RecallAck, addr, home_of_(addr), UnitKind::L2Bank, now);
    }
    return;
  }
  if (auto it = mshrs_.find(addr); it != mshrs_.end()) {
    it->second.recall_pending = true;  // grant still in flight
    return;
  }
  if (L1Line* line = array_.lookup(addr); line != nullptr && line->valid()) {
    const bool dirty = line->state == L1State::M;
    if (dirty) {
      send(Msg::RecallData, addr, home_of_(addr), UnitKind::L2Bank, now, &line->data);
    } else {
      send(Msg::RecallAck, addr, home_of_(addr), UnitKind::L2Bank, now);
    }
    line->state = L1State::I;
    return;
  }
  send(Msg::RecallAck, addr, home_of_(addr), UnitKind::L2Bank, now);
}

void L1Cache::deliver(noc::PacketPtr pkt, Cycle now) {
  switch (msg_of(*pkt)) {
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
      handle_data_grant(pkt, now);
      break;
    case Msg::Inv:
      handle_inv(pkt->addr, now);
      break;
    case Msg::Recall:
      handle_recall(pkt->addr, now);
      break;
    case Msg::WBAck:
      evict_buffer_.erase(pkt->addr);
      break;
    default:
      assert(false && "unexpected message at L1");
  }
}

void L1Cache::tick(Cycle now) { out_.tick(now); }

bool L1Cache::expects(Msg m, Addr addr) const {
  switch (m) {
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
      return mshrs_.count(addr) != 0;
    case Msg::WBAck:
      return evict_buffer_.count(addr) != 0;
    default:
      return true;  // Inv/Recall are handled statelessly
  }
}

void L1Cache::hard_fail(std::vector<noc::PacketPtr>& orphans) {
  out_.take_all(orphans);
  mshrs_.clear();
  evict_buffer_.clear();
}

bool L1Cache::idle() const {
  return mshrs_.empty() && evict_buffer_.empty() && out_.idle();
}

// ---------------------------------------------------------------------------
// Functional warmup

std::optional<L1Cache::WarmVictim> L1Cache::warm_install(Addr blk,
                                                         const BlockBytes& data,
                                                         L1State state, Cycle now) {
  assert(mshrs_.empty() && "functional warmup must precede timing simulation");
  if (L1Line* line = array_.lookup(blk)) {
    line->data = data;
    line->state = state;
    line->lru = now;
    return std::nullopt;
  }
  std::optional<WarmVictim> out;
  if (L1Line* victim = array_.victim_for(blk)) {
    out = WarmVictim{victim->addr, victim->data, victim->state == L1State::M};
    victim->state = L1State::I;
  }
  array_.install(blk, data, state, now);
  return out;
}

std::optional<BlockBytes> L1Cache::warm_invalidate(Addr blk) {
  L1Line* line = array_.lookup(blk);
  if (line == nullptr) return std::nullopt;
  const bool dirty = line->state == L1State::M;
  line->state = L1State::I;
  if (dirty) return line->data;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

void L1Cache::save_state(snap::Writer& w, noc::PacketTable& t) const {
  array_.save_state(w);
  out_.save_state(w, t);

  std::vector<Addr> keys;
  keys.reserve(mshrs_.size());
  for (const auto& [addr, m] : mshrs_) keys.push_back(addr);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Addr addr : keys) {
    const Mshr& m = mshrs_.at(addr);
    w.u64(addr);
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u64(m.waiters.size());
    for (const Waiter& wt : m.waiters) {
      w.u64(wt.op_id);
      w.b(wt.is_store);
      w.u64(wt.store_value);
      w.u64(wt.addr);
    }
    w.b(m.inv_pending);
    w.b(m.recall_pending);
    w.u64(m.issued);
  }

  keys.clear();
  keys.reserve(evict_buffer_.size());
  for (const auto& [addr, e] : evict_buffer_) keys.push_back(addr);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const Addr addr : keys) {
    const EvictEntry& e = evict_buffer_.at(addr);
    w.u64(addr);
    w.raw(std::span<const std::uint8_t>(e.data));
    w.b(e.dirty);
  }
}

void L1Cache::restore_state(snap::Reader& r, const noc::PacketTable& t) {
  array_.restore_state(r);
  out_.restore_state(r, t);

  mshrs_.clear();
  const std::uint64_t n_mshr = r.u64();
  for (std::uint64_t i = 0; i < n_mshr; ++i) {
    const Addr addr = r.u64();
    Mshr m{};
    m.kind = static_cast<Mshr::Kind>(r.u8());
    const std::uint64_t n_waiters = r.u64();
    for (std::uint64_t j = 0; j < n_waiters; ++j) {
      Waiter wt{};
      wt.op_id = r.u64();
      wt.is_store = r.b();
      wt.store_value = r.u64();
      wt.addr = r.u64();
      m.waiters.push_back(wt);
    }
    m.inv_pending = r.b();
    m.recall_pending = r.b();
    m.issued = r.u64();
    mshrs_.emplace(addr, std::move(m));
  }

  evict_buffer_.clear();
  const std::uint64_t n_evict = r.u64();
  for (std::uint64_t i = 0; i < n_evict; ++i) {
    const Addr addr = r.u64();
    EvictEntry e{};
    r.raw(std::span<std::uint8_t>(e.data));
    e.dirty = r.b();
    evict_buffer_.emplace(addr, e);
  }
}

}  // namespace disco::cache
