#include "cache/protocol.h"

namespace disco::cache {

noc::PacketPtr make_packet(noc::PacketId id, Msg m, Addr addr, NodeId src,
                           UnitKind src_unit, NodeId dst, UnitKind dst_unit,
                           Cycle now) {
  auto pkt = std::make_shared<noc::Packet>();
  pkt->id = id;
  pkt->src = src;
  pkt->dst = dst;
  pkt->src_unit = src_unit;
  pkt->dst_unit = dst_unit;
  pkt->vnet = vnet_of(m);
  pkt->proto_msg = static_cast<std::uint8_t>(m);
  pkt->addr = block_align(addr);
  pkt->has_data = carries_data(m);
  pkt->compressible = pkt->has_data;
  pkt->critical = is_read_critical(m);
  pkt->created = now;
  return pkt;
}

}  // namespace disco::cache
