// System configuration: every architectural knob of the simulated CMP.
// Defaults reproduce Table 2 of the paper plus the DISCO parameters of
// section 3.2. Benches override fields per experiment cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace disco {

/// Flow-control discipline (paper section 3.3A). Wormhole is Table 2's
/// configuration; virtual cut-through only forwards a head flit when the
/// downstream VC can hold the whole packet, which keeps packets whole in
/// one node — the property whole-packet compression wants.
enum class FlowControl : std::uint8_t { Wormhole, VirtualCutThrough };

/// NoC/router microarchitecture (Table 2: 3 pipeline stages, wormhole flow
/// control, 8-flit deep buffers, 2 VCs per virtual network, XY routing).
struct NocConfig {
  std::uint32_t mesh_cols = 4;
  std::uint32_t mesh_rows = 4;
  std::uint32_t vcs_per_vnet = 2;
  std::uint32_t vc_depth_flits = 8;
  std::uint32_t router_pipeline_stages = 3;  // BW/RC -> VA/SA -> ST
  FlowControl flow_control = FlowControl::Wormhole;
  /// Section 3.3B: compressible-but-uncompressed packets get lowest priority.
  bool deprioritize_compressible = true;

  std::uint32_t num_nodes() const { return mesh_cols * mesh_rows; }
  std::uint32_t num_vcs() const { return vcs_per_vnet * kNumVNets; }
};

/// DISCO arbitrator + engine knobs (section 3.2, Eq. 1 and Eq. 2). The
/// coefficients/thresholds are "trained empirically" in the paper; defaults
/// here come from the sweep in bench_ablation_confidence.
struct DiscoConfig {
  // Defaults come from the training sweep in bench_ablation_confidence
  // (the paper's "trained empirically on NoC traces" step).
  double gamma = 1.0;    ///< local-pressure coefficient for compression (Eq.1)
  double alpha = 1.0;    ///< local-pressure coefficient for decompression (Eq.2)
  double beta = 2.0;     ///< distance coefficient for decompression (Eq.2)
  double cc_threshold = 1.0;  ///< CCth: confidence needed to start compressing
  double cd_threshold = 2.0;  ///< CDth: confidence needed to start decompressing
  bool non_blocking = true;   ///< shadow packets may be re-scheduled mid-operation
  /// Section 3.3A: compress partial packets flit-group by flit-group under
  /// wormhole instead of requiring whole-packet residency. The paper adopts
  /// this mode ("...which is adopted in DISCO"); whole-packet-only is the
  /// ablation.
  bool separate_flit_compression = true;
  std::uint32_t engines_per_router = 1;

  /// Extension (the paper defers "on-line threshold calculation" as future
  /// overhead): adapt CCth/CDth at runtime from the observed abort rate —
  /// aborts mean hasty decisions (thresholds too low), an idle engine under
  /// congestion means thresholds too high.
  bool adaptive_thresholds = false;
  double adapt_target_abort_rate = 0.25;
  std::uint32_t adapt_window_cycles = 2048;
};

/// Private L1 data cache per core.
struct L1Config {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t mshr_entries = 16;
  std::uint32_t hit_latency = 2;
};

/// Shared NUCA L2: Table 2 — 4MB total, 8-way, 64B lines, one bank per tile,
/// LRU, 4-cycle hit (NoC delay excluded).
struct L2Config {
  std::uint64_t total_size_bytes = 4ULL * 1024 * 1024;
  std::uint32_t ways = 8;
  std::uint32_t hit_latency = 4;
  /// Compressed banks use a decoupled tag/data organization: tag entries per
  /// set = ways * tag_factor; data space per set stays ways * 64B, carved
  /// into 8B segments. tag_factor bounds the achievable capacity gain.
  std::uint32_t tag_factor = 4;
};

/// Simple DRAM backend (Table 2: 4G, 1 rank, 1 channel, 8 banks).
struct MemConfig {
  std::uint32_t banks = 8;
  std::uint32_t access_latency = 120;  ///< row activate + CAS, in NoC cycles
  std::uint32_t bank_busy_cycles = 24; ///< per-request bank occupancy
  std::uint32_t num_controllers = 1;
};

/// Compression timing. By default every scheme uses the algorithm's own
/// Table-1 latencies; setting `override_algorithm` forces these values
/// instead (used by latency-sensitivity ablations).
struct CompressionTimingConfig {
  bool override_algorithm = false;
  std::uint32_t comp_cycles = 1;
  std::uint32_t decomp_cycles = 3;
};

/// Per-block integrity checksum carried in the packet header when fault
/// injection is enabled. CRC-32 catches every realistic corruption; the
/// 8-bit XOR fold is the cheap-hardware alternative (detects any single-bit
/// flip but can miss multi-bit patterns — the trade-off the resilience
/// bench quantifies).
enum class CrcMode : std::uint8_t { Crc32, Fold8 };

/// A permanently failing component class (hard faults, as opposed to the
/// transient bit flips/drops of the injector). Listed in spec-grammar order.
enum class HardFaultKind : std::uint8_t {
  Link,        ///< one mesh link, both directions severed
  Router,      ///< a whole tile: router + NI + core + L1 + L2 bank (+ mem ctrl)
  DiscoEngine, ///< all DISCO engines of one router; its NI goes to bypass mode
  LlcBank,     ///< one L2 bank; its router keeps forwarding traffic
};

const char* to_string(HardFaultKind k);

/// One scheduled permanent failure. `dir` is meaningful only for Link kills
/// (0=N 1=S 2=E 3=W, the port leaving `node`). Cycles are absolute
/// simulation cycles (warmup included), applied before the network tick.
struct HardFaultEvent {
  HardFaultKind kind = HardFaultKind::Link;
  std::uint64_t at = 0;
  std::uint32_t node = 0;
  std::uint8_t dir = 0;

  bool operator==(const HardFaultEvent&) const = default;
};

/// Deterministic fault injection + detect-and-recover machinery. Off by
/// default; when `enabled` is false no checksum is computed, no verifier
/// runs and all outputs are bit-identical to a build without the injector.
struct FaultConfig {
  bool enabled = false;

  // --- fault rates per injection site ---
  double link_bit_flip_rate = 0.0;   ///< per compressed-payload flit link traversal
  double llc_bit_flip_rate = 0.0;    ///< per compressed block injected from an L2 bank
  double flit_drop_rate = 0.0;       ///< per body flit link traversal (flit destroyed)
  double flit_duplicate_rate = 0.0;  ///< per flit ejection (replayed into the NI)
  double engine_stall_rate = 0.0;    ///< per DISCO engine start (transient slow-down)
  double engine_fault_rate = 0.0;    ///< per DISCO compression (corrupts the output)

  // --- recovery knobs ---
  CrcMode crc = CrcMode::Crc32;
  std::uint32_t engine_stall_cycles = 16;       ///< extra latency of a stalled engine
  std::uint32_t engine_quarantine_threshold = 4;///< decode errors before self-quarantine
  std::uint32_t max_retries = 4;                ///< retransmissions per corrupted block
  std::uint32_t retry_backoff_base = 16;        ///< cycles; doubles per retry
  std::uint32_t reassembly_timeout_cycles = 512;///< incomplete packet -> assume flit loss
  std::uint32_t nack_retry_interval = 1024;     ///< re-NACK a parked block after this long

  // --- permanent (hard) faults ---
  /// Explicit kill schedule (parse_hard_fault_spec / --hard-fault). The
  /// system sorts and applies these at their cycle; a hard fault forces
  /// `enabled` so the end-to-end recovery layer is live for severed packets.
  std::vector<HardFaultEvent> hard_faults;
  /// Rate-based schedule: per-component permanent-failure probability per
  /// cycle; each component draws one exponential failure time from the seed
  /// (--hard-fault-rate). 0 = off.
  double hard_fault_rate = 0.0;

  bool hard_enabled() const {
    return !hard_faults.empty() || hard_fault_rate > 0.0;
  }
};

/// Deterministic event tracing + streaming invariant checking. Off by
/// default; when inactive no probe fires (a null-pointer check per probe
/// site) and all outputs are bit-identical to a build without the tracer.
struct TraceConfig {
  /// Capture probe events into the ring buffer (canonical text / Chrome
  /// trace_event export). Independent of `check_invariants`.
  bool enabled = false;
  /// Feed every probe event (unfiltered) through the streaming invariant
  /// checker: credit conservation, flit conservation, VC state legality,
  /// Eq.1/Eq.2 confidence bounds, shadow-packet lifetime.
  bool check_invariants = false;
  /// Comma-separated capture categories (noc, credit, ni, disco, cache,
  /// topo); empty = all. Applies to the ring only, never to the checker feed.
  std::string filter;
  /// Chrome trace_event JSON output file; in sweeps this is a prefix and
  /// each cell writes <prefix>-cell<i>.json. Empty = no file.
  std::string out_path;
  /// Ring capacity in events; the oldest events are overwritten on wrap.
  std::uint64_t ring_capacity = 1ULL << 20;

  bool active() const { return enabled || check_invariants; }
};

struct SystemConfig {
  NocConfig noc;
  DiscoConfig disco;
  L1Config l1;
  L2Config l2;
  MemConfig mem;
  CompressionTimingConfig timing;
  FaultConfig fault;
  TraceConfig trace;
  Scheme scheme = Scheme::DISCO;
  std::string algorithm = "delta";  ///< key into compress::Registry
  std::uint64_t seed = 1;

  /// In-sim no-progress watchdog: if no packet is injected or ejected for
  /// this many cycles while work is outstanding, the run fails with a
  /// structured NoProgressError classifying deadlock / livelock / starvation
  /// from router state instead of spinning to the wall-clock budget. 0 = off.
  std::uint64_t progress_watchdog_cycles = 0;

  /// When non-empty, the system dumps a postmortem black box (last-progress
  /// cycle, stall census, invariant summary, tracer ring tail) to this file
  /// before failing on a watchdog trip; crash handlers in isolated sweep
  /// workers reuse the same path. Set per cell by the sweep supervisor.
  std::string postmortem_path;

  std::uint64_t l2_bank_size_bytes() const {
    return l2.total_size_bytes / noc.num_nodes();
  }

  /// Human-readable one-line summary for bench headers.
  std::string summary() const;

  /// Reject configurations the simulator cannot represent before they reach
  /// undefined behaviour (mesh_cols = 0 would hit `n % cols` in
  /// MeshShape::x_of; cols*rows overflow would wrap the node count; the
  /// directory sharer bitmask caps the mesh at 64 tiles). Also validates the
  /// hard-fault schedule against the mesh geometry. Throws
  /// std::invalid_argument with a precise message; entry points (sweep,
  /// benches, batch_runner) call this before constructing a system.
  void validate() const;
};

}  // namespace disco
