// ASCII table rendering for the benchmark harness: every figure/table bench
// prints its rows through TablePrinter so output format is uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace disco {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace disco
