// Versioned, checksummed binary snapshot primitives for full-system
// checkpoint/restore. The byte-level idiom matches src/sim/wire.{h,cpp}:
// every value is serialized as a lossless bit pattern (doubles travel as
// their IEEE-754 bit images, never as decimal text), so save -> restore ->
// save reproduces identical bytes and a resumed simulation replays
// bit-exactly.
//
// File envelope (little-endian):
//   magic   "DSNP"  (4 bytes)
//   version u32     (kSnapshotVersion; mismatches are rejected)
//   length  u64     (payload byte count)
//   crc     u32     (IEEE CRC-32 of the payload)
//   payload ...
//
// Writes are atomic: payload goes to <path>.tmp, is fsync'ed, then renamed
// over <path>, so a crash or SIGINT mid-write leaves only the previous good
// snapshot visible. Every malformed input (truncated file, bit flip, bad
// magic/version/length) is reported as a structured SnapshotError — never
// undefined behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace disco::snap {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Structured snapshot failure: corrupt/truncated/mismatched input or an
/// I/O error. Callers fall back to a from-zero run on catch.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// IEEE CRC-32 (reflected, poly 0xEDB88320) over raw bytes.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Append-only byte sink with fixed-width little-endian primitives.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// Lossless bit-pattern double (the wire.cpp idiom).
  void f64(double v);
  /// Length-prefixed raw bytes.
  void bytes(std::span<const std::uint8_t> v) {
    u64(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void str(const std::string& s) {
    bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  /// Fixed-size raw bytes (no length prefix; reader knows the size).
  void raw(std::span<const std::uint8_t> v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void append(const Writer& other) {
    buf_.insert(buf_.end(), other.buf_.begin(), other.buf_.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  void le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a snapshot payload. Every read that would run
/// past the end throws SnapshotError, so truncated or bit-flipped payloads
/// can never index out of bounds.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }
  bool b();
  double f64();
  std::vector<std::uint8_t> bytes();
  std::string str();
  /// Fixed-size raw bytes into `out`.
  void raw(std::span<std::uint8_t> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  /// Assert the payload was consumed exactly (trailing garbage => corrupt).
  void expect_end() const;

 private:
  std::span<const std::uint8_t> take(std::size_t n);
  std::uint64_t le(int n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Atomically write `payload` to `path` inside the versioned, checksummed
/// envelope: <path>.tmp + fsync + rename. Throws SnapshotError on I/O error
/// (the previous snapshot at `path`, if any, is left untouched).
void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> payload);

/// Read and validate a snapshot file: magic, version, length and CRC must
/// all match or SnapshotError is thrown. Returns the payload bytes.
std::vector<std::uint8_t> read_snapshot_file(const std::string& path);

}  // namespace disco::snap
