// Process-wide graceful-shutdown flag. SIGINT/SIGTERM handlers (installed by
// the sweep CLI / batch_runner via sim::install_interrupt_handlers) set it;
// the simulation loop polls it every few hundred cycles and unwinds with a
// structured cancellation instead of dying mid-cell, so supervisors can flush
// partial results and the checkpoint manifest before exiting. Lives in
// common/ so cmp can poll it without depending on the sim layer.
#pragma once

#include <atomic>

namespace disco {

inline std::atomic<bool>& interrupt_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool interrupt_requested() {
  return interrupt_flag().load(std::memory_order_relaxed);
}

}  // namespace disco
