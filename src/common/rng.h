// Deterministic, seedable pseudo-random number generation. All stochastic
// behaviour in the simulator flows through Rng so experiments replay exactly.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace disco {

/// splitmix64 — used to expand seeds and as a stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derive an independent stream seed from (base_seed, index). Used by the
/// sweep engine so every experiment cell gets a deterministic seed that
/// depends only on its position in the sweep, never on execution order.
constexpr std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(splitmix64(seed) ^ splitmix64(index + 0x632BE59BD9B4E019ULL));
}

/// xoshiro256** generator: fast, high quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDF00DULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = x = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // tiny modulo bias of a 64-bit generator is irrelevant for workloads.
    return next_u64() % bound;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Raw generator state, for checkpoint/restore. A restored Rng continues
  /// the exact stream the saved one would have produced.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace disco
