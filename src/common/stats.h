// Lightweight statistics primitives used across the simulator: counters,
// running means, and fixed-bucket histograms. All are plain value types so
// components can embed them without indirection in hot paths.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/snapshot.h"

namespace disco {

/// Running scalar accumulator: count / sum / min / max / mean.
class Accumulator {
 public:
  void add(double v) {
    count_ += 1;
    sum_ += v;
    min_ = count_ == 1 ? v : std::min(min_, v);
    max_ = count_ == 1 ? v : std::max(max_, v);
  }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  void reset() { *this = Accumulator{}; }

  void save_state(snap::Writer& w) const {
    w.u64(count_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
  }
  void restore_state(snap::Reader& r) {
    count_ = r.u64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency distributions.
class Histogram {
 public:
  void add(std::uint64_t v) {
    acc_.add(static_cast<double>(v));
    std::size_t bucket = 0;
    while ((1ULL << bucket) <= v && bucket + 1 < kBuckets) ++bucket;
    ++buckets_[bucket];
  }
  const Accumulator& summary() const { return acc_; }
  std::uint64_t bucket(std::size_t i) const { return i < kBuckets ? buckets_[i] : 0; }
  static constexpr std::size_t num_buckets() { return kBuckets; }
  void reset() { *this = Histogram{}; }

  /// Approximate quantile from bucket boundaries. Returns the exclusive
  /// upper bound (2^i) of the bucket holding the sample of rank
  /// ceil(q * count), with q clamped to [0, 1]: q=0 reports the minimum
  /// sample's bucket, q=1 the maximum sample's bucket, and a single-sample
  /// histogram reports that sample's bucket for every q.
  std::uint64_t approx_quantile(double q) const;

  void save_state(snap::Writer& w) const {
    for (const std::uint64_t b : buckets_) w.u64(b);
    acc_.save_state(w);
  }
  void restore_state(snap::Reader& r) {
    for (std::uint64_t& b : buckets_) b = r.u64();
    acc_.restore_state(r);
  }

 private:
  static constexpr std::size_t kBuckets = 24;
  std::uint64_t buckets_[kBuckets]{};
  Accumulator acc_;
};

/// Named counter bag; cheap to update, used for event bookkeeping that is
/// reported at end of run (not consulted in hot decision paths).
class StatSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) { counters_[name] += by; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace disco
