#include "common/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace disco::snap {

namespace {

constexpr std::array<char, 4> kMagic = {'D', 'S', 'N', 'P'};

[[noreturn]] void fail(const std::string& what) { throw SnapshotError(what); }

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc ^= byte;
    for (int i = 0; i < 8; ++i)
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return crc ^ 0xFFFFFFFFu;
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

bool Reader::b() {
  const std::uint8_t v = u8();
  if (v > 1) fail("snapshot: bool byte out of range");
  return v != 0;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::vector<std::uint8_t> Reader::bytes() {
  const std::uint64_t n = u64();
  if (n > remaining()) fail("snapshot: byte-array length past end of payload");
  const auto s = take(static_cast<std::size_t>(n));
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  if (n > remaining()) fail("snapshot: string length past end of payload");
  const auto s = take(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(s.data()), s.size());
}

void Reader::raw(std::span<std::uint8_t> out) {
  const auto s = take(out.size());
  std::memcpy(out.data(), s.data(), s.size());
}

void Reader::expect_end() const {
  if (pos_ != data_.size()) fail("snapshot: trailing bytes after payload");
}

std::span<const std::uint8_t> Reader::take(std::size_t n) {
  if (n > remaining()) fail("snapshot: truncated payload");
  const auto s = data_.subspan(pos_, n);
  pos_ += n;
  return s;
}

std::uint64_t Reader::le(int n) {
  const auto s = take(static_cast<std::size_t>(n));
  std::uint64_t v = 0;
  for (int i = n - 1; i >= 0; --i) v = (v << 8) | s[static_cast<std::size_t>(i)];
  return v;
}

void write_snapshot_file(const std::string& path,
                         std::span<const std::uint8_t> payload) {
  Writer head;
  head.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic.data()), kMagic.size()));
  head.u32(kSnapshotVersion);
  head.u64(payload.size());
  head.u32(crc32(payload));

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("snapshot: cannot open " + tmp + ": " + std::strerror(errno));
  auto write_all = [&](const std::uint8_t* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        const int e = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        fail("snapshot: write to " + tmp + " failed: " + std::strerror(e));
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  };
  write_all(head.data().data(), head.size());
  write_all(payload.data(), payload.size());
  if (::fsync(fd) != 0) {
    const int e = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("snapshot: fsync of " + tmp + " failed: " + std::strerror(e));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int e = errno;
    ::unlink(tmp.c_str());
    fail("snapshot: rename to " + path + " failed: " + std::strerror(e));
  }
}

std::vector<std::uint8_t> read_snapshot_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("snapshot: cannot open " + path + ": " + std::strerror(errno));
  std::vector<std::uint8_t> all;
  std::array<std::uint8_t, 1 << 16> chunk;
  for (;;) {
    const ssize_t r = ::read(fd, chunk.data(), chunk.size());
    if (r < 0) {
      if (errno == EINTR) continue;
      const int e = errno;
      ::close(fd);
      fail("snapshot: read of " + path + " failed: " + std::strerror(e));
    }
    if (r == 0) break;
    all.insert(all.end(), chunk.begin(), chunk.begin() + r);
  }
  ::close(fd);

  Reader r(all);
  std::array<std::uint8_t, 4> magic{};
  if (all.size() < 20) fail("snapshot: file too short for envelope");
  r.raw(magic);
  if (std::memcmp(magic.data(), kMagic.data(), 4) != 0)
    fail("snapshot: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion)
    fail("snapshot: version mismatch (file " + std::to_string(version) +
         ", expected " + std::to_string(kSnapshotVersion) + ")");
  const std::uint64_t len = r.u64();
  const std::uint32_t crc = r.u32();
  if (len != r.remaining()) fail("snapshot: payload length mismatch");
  std::vector<std::uint8_t> payload(all.begin() + 20, all.end());
  if (crc32(payload) != crc) fail("snapshot: payload checksum mismatch");
  return payload;
}

}  // namespace disco::snap
