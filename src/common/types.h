// Core scalar types and chip-wide constants shared by every DISCO module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace disco {

/// Simulation time in router clock cycles.
using Cycle = std::uint64_t;

/// Physical byte address.
using Addr = std::uint64_t;

/// Flat tile index on the mesh (row-major).
using NodeId = std::uint16_t;

inline constexpr NodeId kInvalidNode = 0xFFFF;

/// Cache line geometry fixed by the paper's Table 2 (64B lines, 8B flits).
inline constexpr std::size_t kBlockBytes = 64;
inline constexpr std::size_t kFlitBytes = 8;
inline constexpr std::size_t kWordsPerBlock = kBlockBytes / 8;

/// Raw contents of one cache line.
using BlockBytes = std::array<std::uint8_t, kBlockBytes>;

/// Zero-initialized block value.
inline BlockBytes zero_block() { return BlockBytes{}; }

/// Where a packet endpoint lives inside a tile. Every tile's router local
/// port multiplexes the core-side L1 NI and the L2-bank NI; edge tiles may
/// additionally host a memory-controller NI.
enum class UnitKind : std::uint8_t { Core = 0, L2Bank = 1, MemCtrl = 2 };

/// The three traffic classes of a cache-coherent CMP (paper section 3.3C).
/// Each maps to its own virtual network to avoid protocol deadlock.
enum class VNet : std::uint8_t { Request = 0, Response = 1, Coherence = 2 };
inline constexpr std::size_t kNumVNets = 3;

/// On-chip data compression deployment points compared in the evaluation.
enum class Scheme : std::uint8_t {
  Baseline,  ///< no compression anywhere
  CC,        ///< per-bank cache compression only
  CNC,       ///< cache compression + per-NI link compression
  DISCO,     ///< unified in-network compression (this paper)
  Ideal      ///< compression everywhere at zero latency (normalization basis)
};

const char* to_string(Scheme s);
const char* to_string(UnitKind k);
const char* to_string(VNet v);

}  // namespace disco
