#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace disco {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v * 100.0 << "%";
  return os.str();
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_sep = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::left << std::setw(static_cast<int>(width[c])) << cells[c] << " |";
    os << '\n';
  };

  print_sep();
  print_cells(headers_);
  print_sep();
  for (const auto& row : rows_) print_cells(row);
  print_sep();
}

}  // namespace disco
