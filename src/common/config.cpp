#include "common/config.h"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace disco {

const char* to_string(HardFaultKind k) {
  switch (k) {
    case HardFaultKind::Link: return "link";
    case HardFaultKind::Router: return "router";
    case HardFaultKind::DiscoEngine: return "engine";
    case HardFaultKind::LlcBank: return "llc";
  }
  return "?";
}

void SystemConfig::validate() const {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("invalid config: " + what);
  };
  if (noc.mesh_cols == 0 || noc.mesh_rows == 0)
    fail("mesh dimensions must be non-zero (got " +
         std::to_string(noc.mesh_cols) + "x" + std::to_string(noc.mesh_rows) +
         ")");
  if (noc.mesh_cols > std::numeric_limits<std::uint32_t>::max() / noc.mesh_rows)
    fail("mesh_cols * mesh_rows overflows the node count");
  if (noc.num_nodes() > 64)
    fail("mesh has " + std::to_string(noc.num_nodes()) +
         " tiles; the directory sharer bitmask caps it at 64");
  // vc_depth_flits == 0 stays legal: a zero-credit NoC is the canonical
  // starvation rig for the no-progress watchdog (it starves, it doesn't
  // crash), whereas zero VCs per vnet is not even structurally wirable.
  if (noc.vcs_per_vnet == 0) fail("vcs_per_vnet must be non-zero");
  if (fault.hard_fault_rate < 0.0)
    fail("hard_fault_rate must be non-negative");
  for (const HardFaultEvent& e : fault.hard_faults) {
    if (e.node >= noc.num_nodes())
      fail(std::string("hard fault '") + to_string(e.kind) + "' targets node " +
           std::to_string(e.node) + " outside the " +
           std::to_string(noc.num_nodes()) + "-tile mesh");
    if (e.kind == HardFaultKind::Link && e.dir > 3)
      fail("hard link fault direction must be N/S/E/W");
  }
}

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << noc.mesh_cols << "x" << noc.mesh_rows << " mesh, "
     << noc.num_nodes() << " tiles, " << noc.num_vcs() << " VCs ("
     << noc.vcs_per_vnet << "/vnet), " << noc.vc_depth_flits
     << "-flit buffers, L2 " << (l2.total_size_bytes >> 20) << "MB/"
     << l2.ways << "-way, scheme=" << to_string(scheme)
     << ", algo=" << algorithm;
  return os.str();
}

}  // namespace disco
