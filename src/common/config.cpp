#include "common/config.h"

#include <sstream>

namespace disco {

std::string SystemConfig::summary() const {
  std::ostringstream os;
  os << noc.mesh_cols << "x" << noc.mesh_rows << " mesh, "
     << noc.num_nodes() << " tiles, " << noc.num_vcs() << " VCs ("
     << noc.vcs_per_vnet << "/vnet), " << noc.vc_depth_flits
     << "-flit buffers, L2 " << (l2.total_size_bytes >> 20) << "MB/"
     << l2.ways << "-way, scheme=" << to_string(scheme)
     << ", algo=" << algorithm;
  return os.str();
}

}  // namespace disco
