#include "common/types.h"

namespace disco {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::Baseline: return "Baseline";
    case Scheme::CC: return "CC";
    case Scheme::CNC: return "CNC";
    case Scheme::DISCO: return "DISCO";
    case Scheme::Ideal: return "Ideal";
  }
  return "?";
}

const char* to_string(UnitKind k) {
  switch (k) {
    case UnitKind::Core: return "Core";
    case UnitKind::L2Bank: return "L2Bank";
    case UnitKind::MemCtrl: return "MemCtrl";
  }
  return "?";
}

const char* to_string(VNet v) {
  switch (v) {
    case VNet::Request: return "Request";
    case VNet::Response: return "Response";
    case VNet::Coherence: return "Coherence";
  }
  return "?";
}

}  // namespace disco
