#include "common/stats.h"

#include <cmath>

namespace disco {

std::uint64_t Histogram::approx_quantile(double q) const {
  const std::uint64_t total = acc_.count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample whose bucket we report: ceil(q * total), clamped to
  // [1, total] so q=0 lands on the minimum sample and q=1 on the maximum
  // (instead of falling through to the last bucket regardless of the data).
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  target = std::clamp<std::uint64_t>(target, 1, total);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) return 1ULL << i;
  }
  return 1ULL << (kBuckets - 1);
}

}  // namespace disco
