#include "common/stats.h"

namespace disco {

std::uint64_t Histogram::approx_quantile(double q) const {
  const std::uint64_t total = acc_.count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) return 1ULL << i;
  }
  return 1ULL << (kBuckets - 1);
}

}  // namespace disco
