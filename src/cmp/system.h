// The full simulated CMP (Table 2): a cols x rows mesh of tiles, each with
// a trace-driven core + private L1 + shared NUCA L2 bank behind one router,
// plus memory controller(s), assembled for one (scheme, algorithm,
// workload) experiment cell.
#pragma once

#include <atomic>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <vector>

#include "cache/l1_cache.h"
#include "cache/l2_bank.h"
#include "cache/mem_ctrl.h"
#include "cmp/core.h"
#include "cmp/scheme.h"
#include "common/config.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "fault/fault.h"
#include "noc/network.h"
#include "trace/invariants.h"
#include "trace/trace.h"
#include "workload/profile.h"

namespace disco::cmp {

/// What the no-progress watchdog concluded about a stalled system.
enum class StallKind : std::uint8_t {
  Deadlock,    ///< flits buffered in-network, nothing moves at all
  Livelock,    ///< flits still moving, but no packet ever retires
  Starvation,  ///< network empty, yet sources cannot inject (e.g. no credits)
};

const char* to_string(StallKind k);

/// Pure classification rule, unit-testable without a live network: called
/// when no packet was injected or ejected for the watchdog window.
inline StallKind classify_stall(bool activity_advanced,
                                std::uint64_t inflight_flits,
                                std::uint64_t pending_injections) {
  (void)pending_injections;
  if (activity_advanced) return StallKind::Livelock;
  if (inflight_flits > 0) return StallKind::Deadlock;
  return StallKind::Starvation;
}

/// Structured failure thrown by the no-progress watchdog instead of letting
/// a deadlocked/livelocked cell spin until its wall-clock budget.
class NoProgressError : public std::runtime_error {
 public:
  NoProgressError(StallKind kind, Cycle at, Cycle last_progress,
                  const std::string& what)
      : std::runtime_error(what), kind(kind), cycle(at),
        last_progress_cycle(last_progress) {}

  StallKind kind;
  Cycle cycle;
  Cycle last_progress_cycle;
};

/// Thrown by the simulation loop when its cooperative cancellation token is
/// set (cell timeout reclaiming its worker, or a SIGINT/SIGTERM shutdown).
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("cell cancelled") {}
};

class CmpSystem {
 public:
  CmpSystem(const SystemConfig& cfg, const workload::BenchmarkProfile& profile);

  /// Pre-populate caches, directory and backing store by functionally
  /// replaying `ops_per_core` references per core (round-robin, so sharing
  /// interleaves). Must run before any timing simulation; the timing phase
  /// then continues each core's reference stream.
  void functional_warmup(std::uint64_t ops_per_core);

  /// Cooperative cancellation: when `token` is non-null the simulation loop
  /// polls it every few hundred cycles and throws CancelledError once it is
  /// set, so an abandoned (timed-out / interrupted) cell actually stops
  /// instead of burning a pool slot to completion.
  void set_cancel_token(const std::atomic<bool>* token) { cancel_ = token; }

  /// Flush the postmortem black box — last-progress cycle, stall census,
  /// invariant summary, tracer ring tail — to `os`. Called on watchdog trips
  /// (to cfg.postmortem_path) and best-effort from crash handlers.
  void write_postmortem(std::ostream& os, const std::string& reason) const;

  /// The process's most recently constructed live system, for crash handlers
  /// in isolated sweep workers (one system per forked child). Null when no
  /// system is live or several are (first claim wins).
  static CmpSystem* current();

  /// Advance the whole chip by `cycles`.
  void run(Cycle cycles);
  /// Advance until every queue drains or `max_cycles` elapse; returns true
  /// if the system went quiescent (used by tests).
  bool drain(Cycle max_cycles);

  void reset_stats();

  Cycle now() const { return cycle_; }
  const SystemConfig& config() const { return cfg_; }
  /// Hard faults actually applied so far (survives reset_stats, unlike the
  /// per-phase NocStats kill counters).
  std::uint64_t hard_faults_applied() const { return hard_faults_applied_; }
  /// The materialized deterministic kill schedule (sorted; empty unless
  /// cfg.fault.hard_enabled()).
  const std::vector<HardFaultEvent>& hard_fault_schedule() const {
    return hard_schedule_;
  }
  const noc::NocStats& noc_stats() const { return noc_stats_; }
  const cache::CacheStats& cache_stats() const { return cache_stats_; }
  const compress::Algorithm& algorithm() const { return *algo_; }
  const workload::ValueSynthesizer& synthesizer() const { return synth_; }
  /// Null unless cfg.fault.enabled.
  const fault::FaultInjector* fault_injector() const { return injector_.get(); }

  /// Null unless cfg.trace.active().
  trace::Tracer* tracer() const { return tracer_.get(); }
  /// Null unless cfg.trace.check_invariants.
  const trace::InvariantChecker* invariant_checker() const {
    return checker_.get();
  }

  noc::Network& network() { return *network_; }
  cache::L1Cache& l1(NodeId n) { return *l1s_[n]; }
  cache::L2Bank& l2(NodeId n) { return *l2s_[n]; }
  Core& core(NodeId n) { return *cores_[n]; }

  std::uint64_t total_core_ops() const;
  std::uint64_t total_stall_cycles() const;

  /// Serialize the entire simulation state (cores, caches, memory, NoC,
  /// DISCO units, fault/workload RNG streams, tracer and checker) to `path`
  /// atomically (tmp + fsync + rename). `digest` identifies the (config,
  /// seed, workload, phase-parameter) cell this snapshot belongs to;
  /// `measured_done` is the caller's progress cursor (cycles of the
  /// measurement phase already simulated). A run restored from the file
  /// replays bit-exactly: byte-identical metrics, traces and invariant
  /// summaries versus the uninterrupted run.
  void save_snapshot(const std::string& path, std::uint64_t measured_done,
                     std::uint64_t digest) const;
  /// Restore from `path`, validating the envelope checksum/version and the
  /// cell `digest`. Returns the saved `measured_done`. Throws
  /// snap::SnapshotError on any mismatch or corruption (callers fall back
  /// to a from-zero run). Must be called on a freshly constructed system
  /// (same config and profile), before any warmup or timing simulation.
  std::uint64_t restore_snapshot(const std::string& path, std::uint64_t digest);

  NodeId home_of(Addr addr) const {
    return static_cast<NodeId>((addr / kBlockBytes) % cfg_.noc.num_nodes());
  }

  CmpSystem(const CmpSystem&) = delete;
  CmpSystem& operator=(const CmpSystem&) = delete;
  ~CmpSystem();

 private:
  void tick();
  void check_cancel() const;
  void check_progress();
  bool work_outstanding() const;
  /// Apply every scheduled hard fault due at the current cycle (called
  /// before the network tick, single-threaded: schedules replay bit-exactly
  /// under any thread count).
  void fire_hard_faults();
  /// A whole tile died: drain its L1/L2/mem-ctrl state and resolve the
  /// orphaned protocol messages against the surviving components.
  void on_tile_killed(NodeId n, Cycle at);
  /// Unified dead-component completion synthesis: a protocol message that
  /// provably cannot be serviced (doomed in-network, or orphaned inside a
  /// killed unit) is resolved here so the surviving requester/home makes
  /// forward progress instead of hanging into the watchdog. Ground-truth
  /// data comes from the DRAM image; the stale-data windows this opens are
  /// the documented degraded-by-design cost of losing a component.
  void resolve_protocol_orphan(const noc::PacketPtr& pkt, Cycle at);
  void warm_access(NodeId node, Addr addr, bool is_store, std::uint64_t value);
  cache::MemCtrl& mem_for(Addr addr) {
    return *mems_[(addr / kBlockBytes) % mems_.size()];
  }
  cache::L2Bank::WarmEvictFn warm_evict_fn();

  SystemConfig cfg_;
  std::unique_ptr<compress::Algorithm> algo_;
  workload::ValueSynthesizer synth_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<trace::Tracer> tracer_;
  std::unique_ptr<trace::InvariantChecker> checker_;

  noc::NocStats noc_stats_;
  cache::CacheStats cache_stats_;

  std::unique_ptr<noc::Network> network_;
  std::vector<std::unique_ptr<cache::L1Cache>> l1s_;
  std::vector<std::unique_ptr<cache::L2Bank>> l2s_;
  std::vector<std::unique_ptr<cache::MemCtrl>> mems_;
  std::vector<NodeId> mem_nodes_;
  std::vector<std::unique_ptr<Core>> cores_;

  Cycle cycle_ = 0;

  // Hard-fault (graceful degradation) state.
  std::vector<HardFaultEvent> hard_schedule_;  ///< sorted by (at, kind, node, dir)
  std::size_t next_hard_fault_ = 0;
  std::uint64_t hard_faults_applied_ = 0;
  bool any_node_dead_ = false;  ///< at least one whole tile is gone

  // Cooperative cancellation + no-progress watchdog state.
  const std::atomic<bool>* cancel_ = nullptr;
  std::uint64_t last_progress_sig_ = 0;
  std::uint64_t activity_sig_at_progress_ = 0;
  Cycle last_progress_cycle_ = 0;
};

}  // namespace disco::cmp
