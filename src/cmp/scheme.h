// Per-scheme wiring: where de/compression hardware sits and which
// latencies it exposes. This is the single place the five evaluated
// deployments (Baseline / CC / CNC / DISCO / Ideal) are defined; the table
// in DESIGN.md section 3 is implemented here.
#pragma once

#include "cache/l2_bank.h"
#include "common/config.h"
#include "compress/algorithm.h"
#include "noc/ni.h"

namespace disco::cmp {

struct SchemeSetup {
  noc::NiPolicy ni;
  cache::L2BankPolicy bank;
  bool use_disco_units = false;
};

inline SchemeSetup make_scheme_setup(Scheme scheme,
                                     const compress::Algorithm& algo,
                                     const CompressionTimingConfig& timing = {}) {
  compress::LatencyModel lat = algo.latency();
  if (timing.override_algorithm) {
    lat.comp_cycles = timing.comp_cycles;
    lat.decomp_cycles = timing.decomp_cycles;
  }
  SchemeSetup s;
  switch (scheme) {
    case Scheme::Baseline:
      break;
    case Scheme::CC:
      // Compressor at every bank: reads pay decompression before the NI,
      // inserts compress off the critical path; packets travel raw.
      s.bank = {true, lat.decomp_cycles, false, lat.comp_cycles};
      break;
    case Scheme::CNC:
      // CC plus a de/compressor in every NI (two-level compression).
      s.bank = {true, lat.decomp_cycles, false, lat.comp_cycles};
      s.ni.algo = &algo;
      s.ni.compress_on_inject = true;
      s.ni.decompress_on_eject_all = true;
      s.ni.comp_cycles = lat.comp_cycles;
      s.ni.decomp_cycles = lat.decomp_cycles;
      break;
    case Scheme::DISCO:
      // Banks inject stored compressed form; routers de/compress during
      // queuing; consumers pay decompression only when it was not hidden.
      s.bank = {true, 0, true, lat.comp_cycles};
      s.ni.algo = &algo;
      s.ni.decompress_for_raw_consumers = true;
      s.ni.compress_when_source_queued = true;
      s.ni.comp_cycles = lat.comp_cycles;
      s.ni.decomp_cycles = lat.decomp_cycles;
      s.use_disco_units = true;
      break;
    case Scheme::Ideal:
      // Compression everywhere at zero latency: the normalization basis.
      s.bank = {true, 0, true, 0};
      s.ni.algo = &algo;
      s.ni.compress_on_inject = true;
      s.ni.decompress_for_raw_consumers = true;
      s.ni.comp_cycles = 0;
      s.ni.decomp_cycles = 0;
      break;
  }
  return s;
}

}  // namespace disco::cmp
