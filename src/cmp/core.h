// Trace-driven core model: an out-of-order-core proxy that issues at most
// one memory reference per cycle, tolerates a bounded number of outstanding
// L1 misses (memory-level parallelism window), and stalls when the window
// or the L1 MSHRs fill. Store values come from the workload's value
// synthesizer so written data keeps the benchmark's compressibility.
#pragma once

#include <cstdint>
#include <optional>
#include <set>

#include "cache/l1_cache.h"
#include "workload/trace_gen.h"
#include "workload/value_synth.h"

namespace disco::cmp {

class Core {
 public:
  Core(NodeId node, cache::L1Cache& l1, workload::TraceGenerator gen,
       const workload::ValueSynthesizer& synth, std::uint32_t max_outstanding);

  void tick(Cycle now);

  /// Pull the next reference for functional warmup (advances the same
  /// stream the timing phase will continue from).
  workload::TraceOp next_warm_op() { return gen_.next(); }

  std::uint64_t ops_issued() const { return ops_; }
  std::uint64_t loads_issued() const { return loads_; }
  std::uint64_t stores_issued() const { return stores_; }
  std::uint64_t stall_cycles() const { return stalls_; }
  std::uint64_t window_stalls() const { return window_stalls_; }
  std::uint64_t blocked_stalls() const { return blocked_stalls_; }
  std::uint32_t outstanding() const { return outstanding_; }
  void reset_counters() {
    ops_ = loads_ = stores_ = stalls_ = 0;
    window_stalls_ = blocked_stalls_ = 0;
  }

 private:
  NodeId node_;
  cache::L1Cache& l1_;
  workload::TraceGenerator gen_;
  const workload::ValueSynthesizer& synth_;
  std::uint32_t max_outstanding_;

  std::optional<workload::TraceOp> pending_;
  std::uint32_t gap_left_ = 0;
  std::uint32_t outstanding_ = 0;
  std::set<std::uint64_t> inflight_ids_;  ///< window membership (invariant check)
  std::uint64_t next_op_id_;

  std::uint64_t ops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t blocked_stalls_ = 0;
};

}  // namespace disco::cmp
