// Trace-driven core model: an out-of-order-core proxy that issues at most
// one memory reference per cycle, tolerates a bounded number of outstanding
// L1 misses (memory-level parallelism window), and stalls when the window
// or the L1 MSHRs fill. Store values come from the workload's value
// synthesizer so written data keeps the benchmark's compressibility.
#pragma once

#include <cstdint>
#include <optional>
#include <set>

#include "cache/l1_cache.h"
#include "workload/trace_gen.h"
#include "workload/value_synth.h"

namespace disco::cmp {

class Core {
 public:
  Core(NodeId node, cache::L1Cache& l1, workload::TraceGenerator gen,
       const workload::ValueSynthesizer& synth, std::uint32_t max_outstanding);

  void tick(Cycle now);

  /// Pull the next reference for functional warmup (advances the same
  /// stream the timing phase will continue from).
  workload::TraceOp next_warm_op() { return gen_.next(); }

  std::uint64_t ops_issued() const { return ops_; }
  std::uint64_t loads_issued() const { return loads_; }
  std::uint64_t stores_issued() const { return stores_; }
  std::uint64_t stall_cycles() const { return stalls_; }
  std::uint64_t window_stalls() const { return window_stalls_; }
  std::uint64_t blocked_stalls() const { return blocked_stalls_; }
  std::uint32_t outstanding() const { return outstanding_; }
  void reset_counters() {
    ops_ = loads_ = stores_ = stalls_ = 0;
    window_stalls_ = blocked_stalls_ = 0;
  }

  /// Checkpoint/restore of the core's issue state and counters (the trace
  /// generator's stream position rides along).
  void save_state(snap::Writer& w) const {
    gen_.save_state(w);
    w.b(pending_.has_value());
    if (pending_.has_value()) {
      w.u64(pending_->addr);
      w.b(pending_->is_store);
      w.u32(pending_->gap);
    }
    w.u32(gap_left_);
    w.u32(outstanding_);
    w.u64(inflight_ids_.size());
    for (const std::uint64_t id : inflight_ids_) w.u64(id);  // std::set: sorted
    w.u64(next_op_id_);
    w.u64(ops_);
    w.u64(loads_);
    w.u64(stores_);
    w.u64(stalls_);
    w.u64(window_stalls_);
    w.u64(blocked_stalls_);
  }
  void restore_state(snap::Reader& r) {
    gen_.restore_state(r);
    pending_.reset();
    if (r.b()) {
      workload::TraceOp op;
      op.addr = r.u64();
      op.is_store = r.b();
      op.gap = r.u32();
      pending_ = op;
    }
    gap_left_ = r.u32();
    outstanding_ = r.u32();
    inflight_ids_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) inflight_ids_.insert(r.u64());
    next_op_id_ = r.u64();
    ops_ = r.u64();
    loads_ = r.u64();
    stores_ = r.u64();
    stalls_ = r.u64();
    window_stalls_ = r.u64();
    blocked_stalls_ = r.u64();
  }

 private:
  NodeId node_;
  cache::L1Cache& l1_;
  workload::TraceGenerator gen_;
  const workload::ValueSynthesizer& synth_;
  std::uint32_t max_outstanding_;

  std::optional<workload::TraceOp> pending_;
  std::uint32_t gap_left_ = 0;
  std::uint32_t outstanding_ = 0;
  std::set<std::uint64_t> inflight_ids_;  ///< window membership (invariant check)
  std::uint64_t next_op_id_;

  std::uint64_t ops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t window_stalls_ = 0;
  std::uint64_t blocked_stalls_ = 0;
};

}  // namespace disco::cmp
