#include "cmp/core.h"

#include <cassert>

namespace disco::cmp {

Core::Core(NodeId node, cache::L1Cache& l1, workload::TraceGenerator gen,
           const workload::ValueSynthesizer& synth, std::uint32_t max_outstanding)
    : node_(node),
      l1_(l1),
      gen_(std::move(gen)),
      synth_(synth),
      max_outstanding_(max_outstanding),
      next_op_id_(static_cast<std::uint64_t>(node) << 48) {
  l1_.set_completion_handler([this](std::uint64_t op_id, Cycle) {
    const bool known = inflight_ids_.erase(op_id) > 0;
    assert(known && "completion for an op the core never issued");
    (void)known;
    assert(outstanding_ > 0);
    --outstanding_;
  });
}

void Core::tick(Cycle now) {
  if (gap_left_ > 0) {
    --gap_left_;
    return;
  }
  if (!pending_) {
    pending_ = gen_.next();
    gap_left_ = pending_->gap;
    if (gap_left_ > 0) return;
  }
  if (outstanding_ >= max_outstanding_) {
    ++stalls_;
    ++window_stalls_;
    return;
  }

  const std::uint64_t value =
      pending_->is_store ? synth_.store_value(pending_->addr, next_op_id_) : 0;
  const auto outcome =
      l1_.access(next_op_id_, pending_->addr, pending_->is_store, value, now);
  if (outcome == cache::L1Cache::Outcome::Blocked) {
    ++stalls_;
    ++blocked_stalls_;
    return;
  }
  if (outcome == cache::L1Cache::Outcome::Miss) {
    ++outstanding_;
    inflight_ids_.insert(next_op_id_);
  }
  ++ops_;
  if (pending_->is_store) ++stores_; else ++loads_;
  ++next_op_id_;
  pending_.reset();
}

}  // namespace disco::cmp
