#include "cmp/system.h"

#include <cassert>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>

#include "noc/snapshot.h"

#include "common/interrupt.h"
#include "fault/fault.h"
#include "compress/sc2.h"
#include "trace/invariants.h"

namespace disco::cmp {
namespace {

/// Crash-handler registry: the first live system claims the slot so a forked
/// sweep worker (exactly one system per process) can be found from a signal
/// handler; concurrent in-process cells simply leave it to the first claimant.
std::atomic<CmpSystem*> g_current_system{nullptr};

}  // namespace

const char* to_string(StallKind k) {
  switch (k) {
    case StallKind::Deadlock: return "deadlock";
    case StallKind::Livelock: return "livelock";
    case StallKind::Starvation: return "starvation";
  }
  return "?";
}

CmpSystem* CmpSystem::current() {
  return g_current_system.load(std::memory_order_acquire);
}

namespace {

/// SC2's sampling phase: retrain the value-frequency table on blocks drawn
/// from the workload's own value population.
void maybe_retrain_sc2(compress::Algorithm& algo,
                       const workload::ValueSynthesizer& synth) {
  auto* sc2 = dynamic_cast<compress::Sc2Algorithm*>(&algo);
  if (sc2 == nullptr) return;
  std::vector<BlockBytes> sample;
  sample.reserve(2048);
  for (std::uint64_t i = 0; i < 2048; ++i)
    sample.push_back(synth.block_for(splitmix64(i) % (1ULL << 30) * kBlockBytes));
  sc2->retrain(sample);
}

}  // namespace

CmpSystem::CmpSystem(const SystemConfig& cfg,
                     const workload::BenchmarkProfile& profile)
    : cfg_(cfg),
      algo_(compress::make_algorithm(cfg.algorithm)),
      synth_(profile.values, cfg.seed) {
  cfg_.validate();
  const std::uint32_t n = cfg_.noc.num_nodes();
  assert(n <= 64 && "directory sharer bitmask limits the mesh to 64 tiles");
  maybe_retrain_sc2(*algo_, synth_);

  // A hard-fault schedule implies fault mode: severed packets ride the
  // end-to-end recovery layer, and exports gate degraded fields on it.
  if (cfg_.fault.hard_enabled()) {
    cfg_.fault.enabled = true;
    hard_schedule_ = fault::build_hard_fault_schedule(
        cfg_.fault, cfg_.seed, cfg_.noc.mesh_cols, cfg_.noc.mesh_rows,
        std::numeric_limits<std::uint64_t>::max());
  }

  if (cfg_.fault.enabled) {
    injector_ = std::make_unique<fault::FaultInjector>(
        cfg_.fault, splitmix64(cfg_.seed, 0xFA17C0DEULL));
  }

  SchemeSetup setup = make_scheme_setup(cfg_.scheme, *algo_, cfg_.timing);
  setup.bank.injector = injector_.get();

  // The low-priority rule for compressible-but-uncompressed packets
  // (section 3.3B) exists to create compression opportunities; it is part
  // of DISCO's scheduling policy, not of the baselines'.
  if (cfg_.scheme != Scheme::DISCO) cfg_.noc.deprioritize_compressible = false;

  noc::Network::ExtensionFactory factory;
  if (setup.use_disco_units) {
    compress::LatencyModel lat = algo_->latency();
    if (cfg_.timing.override_algorithm) {
      lat.comp_cycles = cfg_.timing.comp_cycles;
      lat.decomp_cycles = cfg_.timing.decomp_cycles;
    }
    factory = [this, lat](noc::Router& r) {
      return std::make_unique<core::DiscoUnit>(r, cfg_.disco, *algo_, lat,
                                               noc_stats_, injector_.get());
    };
  }
  network_ = std::make_unique<noc::Network>(cfg_.noc, setup.ni, noc_stats_, factory);
  if (injector_ != nullptr) network_->set_fault_injector(injector_.get());
  if (cfg_.fault.hard_enabled()) {
    network_->set_unreachable_handler(
        [this](const noc::PacketPtr& p, Cycle at) { resolve_protocol_orphan(p, at); });
  }

  if (cfg_.trace.active()) {
    tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);
    if (cfg_.trace.check_invariants) {
      trace::InvariantParams p;
      p.nodes = n;
      p.ports = noc::kNumPorts;
      p.local_port = static_cast<std::uint32_t>(noc::Port::Local);
      p.num_vcs = cfg_.noc.num_vcs();
      p.vc_depth = cfg_.noc.vc_depth_flits;
      p.max_hops = (cfg_.noc.mesh_cols - 1) + (cfg_.noc.mesh_rows - 1);
      p.block_flits = 1 + static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
      p.gamma = cfg_.disco.gamma;
      p.alpha = cfg_.disco.alpha;
      p.beta = cfg_.disco.beta;
      checker_ = std::make_unique<trace::InvariantChecker>(p);
      tracer_->set_checker(checker_.get());
    }
    network_->set_tracer(tracer_.get());
  }

  // Memory controllers, evenly spread over the mesh.
  const std::uint32_t ctrls = std::max(1u, cfg_.mem.num_controllers);
  for (std::uint32_t i = 0; i < ctrls; ++i)
    mem_nodes_.push_back(static_cast<NodeId>((i * n) / ctrls));
  auto mem_node_of = [this](Addr addr) {
    return mem_nodes_[(addr / kBlockBytes) % mem_nodes_.size()];
  };
  auto home_fn = [this](Addr addr) { return home_of(addr); };

  for (NodeId node = 0; node < n; ++node) {
    l1s_.push_back(std::make_unique<cache::L1Cache>(
        node, cfg_.l1, network_->ni(node), home_fn, cache_stats_));
    network_->register_sink(node, UnitKind::Core, l1s_.back().get());

    std::uint32_t index_shift = 0;
    while ((1u << index_shift) < n) ++index_shift;
    l2s_.push_back(std::make_unique<cache::L2Bank>(
        node, cfg_.l2, setup.bank, algo_.get(), cfg_.l2_bank_size_bytes(),
        index_shift, network_->ni(node), mem_node_of, cache_stats_));
    l2s_.back()->set_tracer(tracer_.get());
    network_->register_sink(node, UnitKind::L2Bank, l2s_.back().get());
  }

  for (const NodeId node : mem_nodes_) {
    mems_.push_back(std::make_unique<cache::MemCtrl>(
        node, cfg_.mem, network_->ni(node),
        [this](Addr a) { return synth_.block_for(a); }, cache_stats_));
    network_->register_sink(node, UnitKind::MemCtrl, mems_.back().get());
  }

  for (NodeId node = 0; node < n; ++node) {
    cores_.push_back(std::make_unique<Core>(
        node, *l1s_[node],
        workload::TraceGenerator(profile, node, cfg_.seed),
        synth_, /*max_outstanding=*/8));
  }

  CmpSystem* expected = nullptr;
  g_current_system.compare_exchange_strong(expected, this,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
}

CmpSystem::~CmpSystem() {
  CmpSystem* expected = this;
  g_current_system.compare_exchange_strong(expected, nullptr,
                                           std::memory_order_release,
                                           std::memory_order_relaxed);
}

cache::L2Bank::WarmEvictFn CmpSystem::warm_evict_fn() {
  return [this](Addr addr, const BlockBytes& data, bool dirty,
                const cache::DirInfo& dir) {
    BlockBytes final = data;
    bool final_dirty = dirty;
    if (dir.kind == cache::DirInfo::Kind::Excl) {
      if (auto d = l1s_[dir.owner]->warm_invalidate(addr)) {
        final = *d;
        final_dirty = true;
      }
    } else if (dir.kind == cache::DirInfo::Kind::Shared) {
      for (NodeId n = 0; n < cfg_.noc.num_nodes(); ++n)
        if (dir.is_sharer(n)) l1s_[n]->warm_invalidate(addr);
    }
    if (final_dirty) mem_for(addr).write_block(addr, final);
  };
}

void CmpSystem::warm_access(NodeId node, Addr addr, bool is_store,
                            std::uint64_t value) {
  const Addr blk = cache::block_align(addr);
  cache::L2Bank& bank = *l2s_[home_of(blk)];
  const auto on_evict = warm_evict_fn();

  cache::L2Line* line = bank.warm_lookup(blk);
  if (line == nullptr) {
    const BlockBytes& mem_data = mem_for(blk).read_block(blk);
    line = &bank.warm_install(blk, mem_data, false, cycle_, on_evict);
  }
  cache::L1Cache& l1 = *l1s_[node];
  using Kind = cache::DirInfo::Kind;

  std::optional<cache::L1Cache::WarmVictim> victim;
  if (is_store) {
    BlockBytes current = line->data;
    if (line->dir.kind == Kind::Excl && line->dir.owner != node) {
      if (auto d = l1s_[line->dir.owner]->warm_invalidate(blk)) {
        current = *d;
        bank.warm_update(*line, current, true, cycle_, on_evict);
      }
    } else if (line->dir.kind == Kind::Excl && line->dir.owner == node) {
      if (cache::L1Line* ll = l1.warm_lookup(blk)) {
        ll->state = cache::L1State::M;
        cache::apply_store_to_block(ll->data, addr, value);
        ll->lru = cycle_;
        return;
      }
    } else if (line->dir.kind == Kind::Shared) {
      for (NodeId n = 0; n < cfg_.noc.num_nodes(); ++n)
        if (line->dir.is_sharer(n) && n != node) l1s_[n]->warm_invalidate(blk);
    }
    line->dir = cache::DirInfo{Kind::Excl, 0, node};
    cache::apply_store_to_block(current, addr, value);
    victim = l1.warm_install(blk, current, cache::L1State::M, cycle_);
  } else {
    if (cache::L1Line* ll = l1.warm_lookup(blk)) {
      ll->lru = cycle_;
      return;
    }
    if (line->dir.kind == Kind::Excl && line->dir.owner != node) {
      if (auto d = l1s_[line->dir.owner]->warm_invalidate(blk))
        bank.warm_update(*line, *d, true, cycle_, on_evict);
      cache::DirInfo dir{Kind::Shared, 0, kInvalidNode};
      dir.add_sharer(node);
      line->dir = dir;
      victim = l1.warm_install(blk, line->data, cache::L1State::S, cycle_);
    } else if (line->dir.kind == Kind::Uncached ||
               (line->dir.kind == Kind::Excl && line->dir.owner == node)) {
      line->dir = cache::DirInfo{Kind::Excl, 0, node};
      victim = l1.warm_install(blk, line->data, cache::L1State::E, cycle_);
    } else {
      line->dir.add_sharer(node);
      victim = l1.warm_install(blk, line->data, cache::L1State::S, cycle_);
    }
  }

  if (victim.has_value()) {
    cache::L2Bank& vbank = *l2s_[home_of(victim->addr)];
    cache::L2Line* vline = vbank.warm_lookup(victim->addr);
    // Inclusive hierarchy: the L2 line must still exist for any L1 copy.
    assert(vline != nullptr);
    if (victim->dirty) vbank.warm_update(*vline, victim->data, true, cycle_, on_evict);
    if (vline->dir.kind == Kind::Excl && vline->dir.owner == node) {
      vline->dir = cache::DirInfo{};
    } else if (vline->dir.kind == Kind::Shared) {
      vline->dir.remove_sharer(node);
      if (vline->dir.sharer_count() == 0) vline->dir = cache::DirInfo{};
    }
  }
}

void CmpSystem::functional_warmup(std::uint64_t ops_per_core) {
  const std::uint32_t n = cfg_.noc.num_nodes();
  for (std::uint64_t i = 0; i < ops_per_core; ++i) {
    if ((i & 0x3FF) == 0) check_cancel();
    for (NodeId node = 0; node < n; ++node) {
      const workload::TraceOp op = cores_[node]->next_warm_op();
      const std::uint64_t value =
          op.is_store ? synth_.store_value(op.addr, i) : 0;
      warm_access(node, op.addr, op.is_store, value);
    }
  }
}

void CmpSystem::tick() {
  ++cycle_;
  if (next_hard_fault_ < hard_schedule_.size()) fire_hard_faults();
  network_->tick(cycle_);
  if (!any_node_dead_) {
    for (auto& l1 : l1s_) l1->tick(cycle_);
    for (auto& l2 : l2s_) l2->tick(cycle_);
    for (auto& mem : mems_) mem->tick(cycle_);
    for (auto& core : cores_) core->tick(cycle_);
  } else {
    const std::uint32_t n = cfg_.noc.num_nodes();
    for (NodeId i = 0; i < n; ++i) {
      if (network_->node_dead(i)) continue;
      l1s_[i]->tick(cycle_);
      l2s_[i]->tick(cycle_);
    }
    for (std::size_t i = 0; i < mems_.size(); ++i)
      if (!network_->node_dead(mem_nodes_[i])) mems_[i]->tick(cycle_);
    for (NodeId i = 0; i < n; ++i)
      if (!network_->node_dead(i)) cores_[i]->tick(cycle_);
  }
  if (checker_ != nullptr)
    checker_->end_of_cycle(cycle_, network_->inflight_flits());
  if ((cycle_ & 0xFF) == 0) check_cancel();
  if (cfg_.progress_watchdog_cycles > 0) check_progress();
}

void CmpSystem::check_cancel() const {
  if ((cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) ||
      interrupt_requested()) {
    throw CancelledError();
  }
}

bool CmpSystem::work_outstanding() const {
  if (network_->inflight_flits() > 0 || network_->pending_injections() > 0)
    return true;
  const std::uint32_t n = cfg_.noc.num_nodes();
  for (NodeId i = 0; i < n; ++i) {
    if (any_node_dead_ && network_->node_dead(i)) continue;
    if (!l1s_[i]->idle() || !l2s_[i]->idle()) return true;
  }
  for (std::size_t i = 0; i < mems_.size(); ++i) {
    if (any_node_dead_ && network_->node_dead(mem_nodes_[i])) continue;
    if (!mems_[i]->idle()) return true;
  }
  return false;
}

void CmpSystem::check_progress() {
  // Progress = end-to-end packet progress; activity = any flit movement.
  // reset_stats() between phases perturbs both signatures, which simply
  // re-arms the window — never a false trip.
  const std::uint64_t progress =
      noc_stats_.packets_injected + noc_stats_.packets_ejected;
  const std::uint64_t activity =
      noc_stats_.link_flits + noc_stats_.crossbar_traversals +
      noc_stats_.buffer_writes + noc_stats_.credits_sent;
  if (progress != last_progress_sig_) {
    last_progress_sig_ = progress;
    activity_sig_at_progress_ = activity;
    last_progress_cycle_ = cycle_;
    return;
  }
  if (cycle_ - last_progress_cycle_ < cfg_.progress_watchdog_cycles) return;
  if (!work_outstanding()) {
    // Genuinely idle (e.g. a compute-only phase): re-arm, don't trip.
    last_progress_cycle_ = cycle_;
    return;
  }

  const noc::StallCensus census = network_->stall_census();
  const std::uint64_t inflight = network_->inflight_flits();
  const StallKind kind = classify_stall(activity != activity_sig_at_progress_,
                                        inflight, census.pending_injections);
  std::ostringstream what;
  what << "watchdog: " << to_string(kind) << " at cycle " << cycle_
       << " (no packet progress since cycle " << last_progress_cycle_ << "; "
       << inflight << " flits in flight, " << census.blocked_vcs << "/"
       << census.active_vcs << " active VCs credit-blocked, "
       << census.waiting_alloc_vcs << " VCs waiting for allocation, "
       << census.pending_injections << " packets starved at NIs)";
  if (!cfg_.postmortem_path.empty()) {
    std::ofstream os(cfg_.postmortem_path);
    if (os) write_postmortem(os, what.str());
  }
  throw NoProgressError(kind, cycle_, last_progress_cycle_, what.str());
}

void CmpSystem::write_postmortem(std::ostream& os,
                                 const std::string& reason) const {
  os << "=== DISCO postmortem black box ===\n"
     << "reason: " << reason << "\n"
     << "cycle: " << cycle_ << "\n"
     << "last_progress_cycle: " << last_progress_cycle_ << "\n"
     << "config: " << cfg_.summary() << "\n";
  const noc::StallCensus c = network_->stall_census();
  os << "stall_census: buffered_flits=" << c.buffered_flits
     << " inflight_flits=" << network_->inflight_flits()
     << " active_vcs=" << c.active_vcs << " blocked_vcs=" << c.blocked_vcs
     << " waiting_alloc_vcs=" << c.waiting_alloc_vcs
     << " pending_injections=" << c.pending_injections << "\n"
     << "packets: injected=" << noc_stats_.packets_injected
     << " ejected=" << noc_stats_.packets_ejected
     << " link_flits=" << noc_stats_.link_flits << "\n";
  if (checker_ != nullptr) {
    const trace::InvariantSummary& s = checker_->summary();
    os << "invariants: events=" << s.events_checked
       << " violations=" << s.violations;
    if (!s.first_violation.empty()) os << " first=\"" << s.first_violation << '"';
    os << "\n";
  }
  if (tracer_ != nullptr) {
    os << "--- tracer ring tail ---\n";
    tracer_->write_canonical_tail(os, 256);
  }
  os.flush();
}

void CmpSystem::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) tick();
}

bool CmpSystem::drain(Cycle max_cycles) {
  const std::uint32_t n = cfg_.noc.num_nodes();
  for (Cycle i = 0; i < max_cycles; ++i) {
    ++cycle_;
    if (next_hard_fault_ < hard_schedule_.size()) fire_hard_faults();
    network_->tick(cycle_);
    for (NodeId j = 0; j < n; ++j) {
      if (any_node_dead_ && network_->node_dead(j)) continue;
      l1s_[j]->tick(cycle_);
      l2s_[j]->tick(cycle_);
    }
    for (std::size_t j = 0; j < mems_.size(); ++j)
      if (!(any_node_dead_ && network_->node_dead(mem_nodes_[j])))
        mems_[j]->tick(cycle_);
    // No core ticks: stop injecting new work.
    if (checker_ != nullptr)
      checker_->end_of_cycle(cycle_, network_->inflight_flits());
    const bool quiet = network_->quiescent() && !work_outstanding();
    if (quiet) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Permanent hardware failure (graceful degradation)

void CmpSystem::fire_hard_faults() {
  while (next_hard_fault_ < hard_schedule_.size() &&
         hard_schedule_[next_hard_fault_].at <= cycle_) {
    const HardFaultEvent e = hard_schedule_[next_hard_fault_++];
    if (!network_->apply_hard_fault(e, cycle_)) continue;  // already dead
    ++hard_faults_applied_;
    if (e.kind == HardFaultKind::Router) {
      any_node_dead_ = true;
      on_tile_killed(static_cast<NodeId>(e.node), cycle_);
    } else if (e.kind == HardFaultKind::LlcBank) {
      std::vector<noc::PacketPtr> orphans;
      l2s_[e.node]->hard_fail(orphans);
      for (const auto& p : orphans) resolve_protocol_orphan(p, cycle_);
    }
  }
}

void CmpSystem::on_tile_killed(NodeId n, Cycle at) {
  std::vector<noc::PacketPtr> orphans;
  l1s_[n]->hard_fail(orphans);
  l2s_[n]->hard_fail(orphans);
  for (std::size_t i = 0; i < mems_.size(); ++i)
    if (mem_nodes_[i] == n) mems_[i]->hard_fail(orphans);
  for (const auto& p : orphans) resolve_protocol_orphan(p, at);
}

void CmpSystem::resolve_protocol_orphan(const noc::PacketPtr& pkt, Cycle at) {
  using cache::Msg;
  if (pkt == nullptr || pkt->nack_for != 0) return;  // NACKs carry no state
  const noc::Topology& topo = network_->topology();
  const Msg m = cache::msg_of(*pkt);
  const Addr a = pkt->addr;

  auto synthesize = [&](Msg sm, NodeId from, UnitKind from_unit, NodeId to,
                        UnitKind to_unit, const BlockBytes* data,
                        noc::PacketSink& sink) {
    noc::PacketPtr resp =
        cache::make_packet(network_->ni(to).mint_protocol_id(), sm, a, from,
                           from_unit, to, to_unit, at);
    if (data != nullptr) resp->data = *data;
    ++noc_stats_.synth_completions;
    sink.deliver(std::move(resp), at);
  };

  switch (m) {
    // --- requests whose service component died: synthesize the completion
    // the home / memory would have produced, from the ground-truth DRAM
    // image. The expects() guards make resolution idempotent (a clone chain
    // or a late straggler resolves at most once).
    case Msg::GetS:
    case Msg::GetM: {
      if (!topo.unit_alive(pkt->src, UnitKind::Core)) return;
      cache::L1Cache& l1 = *l1s_[pkt->src];
      const Msg gm = m == Msg::GetS ? Msg::DataE : Msg::DataM;
      if (!l1.expects(gm, a)) return;
      synthesize(gm, pkt->dst, UnitKind::L2Bank, pkt->src, UnitKind::Core,
                 &mem_for(a).read_block(a), l1);
      return;
    }
    case Msg::PutM:
    case Msg::PutE: {
      // Preserve the dirty block in the DRAM image before acking.
      if (m == Msg::PutM) mem_for(a).write_block(a, pkt->data);
      if (!topo.unit_alive(pkt->src, UnitKind::Core)) return;
      cache::L1Cache& l1 = *l1s_[pkt->src];
      if (!l1.expects(Msg::WBAck, a)) return;
      synthesize(Msg::WBAck, pkt->dst, UnitKind::L2Bank, pkt->src,
                 UnitKind::Core, nullptr, l1);
      return;
    }
    case Msg::MemRead: {
      if (!topo.unit_alive(pkt->src, UnitKind::L2Bank)) return;
      cache::L2Bank& bank = *l2s_[pkt->src];
      if (!bank.expects(Msg::MemData, a)) return;
      synthesize(Msg::MemData, pkt->dst, UnitKind::MemCtrl, pkt->src,
                 UnitKind::L2Bank, &mem_for(a).read_block(a), bank);
      return;
    }
    case Msg::MemWB:
      mem_for(a).write_block(a, pkt->data);  // the DRAM image is ground truth
      return;
    case Msg::Inv:
    case Msg::Recall: {
      // The target L1 died before it could answer; its copy is gone with
      // the tile. Resolve the waiting home as a clean invalidation — a
      // dirty recalled line reverts to the home's copy, the documented
      // degraded-by-design loss window of a tile kill.
      if (!topo.unit_alive(pkt->src, UnitKind::L2Bank)) return;
      cache::L2Bank& bank = *l2s_[pkt->src];
      const Msg ack = m == Msg::Inv ? Msg::InvAck : Msg::RecallAck;
      if (!bank.expects(ack, a)) return;
      synthesize(ack, pkt->dst, UnitKind::Core, pkt->src, UnitKind::L2Bank,
                 nullptr, bank);
      return;
    }
    // --- responses already formed by a now-dead or cut-off component:
    // hand them to the waiting consumer directly while it is still alive
    // (models the repair path recovering in-flight completions; without it
    // every survivor parked on a dead ack hangs into the watchdog). ---
    case Msg::DataS:
    case Msg::DataE:
    case Msg::DataM:
    case Msg::WBAck: {
      if (!topo.unit_alive(pkt->dst, UnitKind::Core)) return;
      cache::L1Cache& l1 = *l1s_[pkt->dst];
      if (!l1.expects(m, a)) return;
      // An earlier transmission of this completion may sit parked at the
      // consumer's NI (corrupted arrival awaiting a retransmit that will now
      // never come): retire that recovery state, or the dead-peer fallback
      // would deliver the transaction a second time.
      network_->ni(pkt->dst).note_external_completion(
          pkt->retransmit_of != 0 ? pkt->retransmit_of : pkt->id);
      ++noc_stats_.synth_completions;
      l1.deliver(pkt, at);
      return;
    }
    case Msg::InvAck:
    case Msg::RecallAck:
    case Msg::RecallData:
    case Msg::MemData: {
      if (topo.unit_alive(pkt->dst, UnitKind::L2Bank) &&
          l2s_[pkt->dst]->expects(m, a)) {
        network_->ni(pkt->dst).note_external_completion(
            pkt->retransmit_of != 0 ? pkt->retransmit_of : pkt->id);
        ++noc_stats_.synth_completions;
        l2s_[pkt->dst]->deliver(pkt, at);
      } else if (m == Msg::RecallData) {
        // Last live copy of a dirty block: park it in the DRAM image.
        mem_for(a).write_block(a, pkt->data);
      }
      return;
    }
  }
}

void CmpSystem::reset_stats() {
  noc_stats_ = noc::NocStats{};
  cache_stats_ = cache::CacheStats{};
  for (auto& core : cores_) core->reset_counters();
  if (injector_ != nullptr) injector_->reset_counters();
}

std::uint64_t CmpSystem::total_core_ops() const {
  std::uint64_t n = 0;
  for (const auto& core : cores_) n += core->ops_issued();
  return n;
}

std::uint64_t CmpSystem::total_stall_cycles() const {
  std::uint64_t n = 0;
  for (const auto& core : cores_) n += core->stall_cycles();
  return n;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore

void CmpSystem::save_snapshot(const std::string& path,
                              std::uint64_t measured_done,
                              std::uint64_t digest) const {
  snap::Writer meta;
  meta.u64(digest);
  meta.u64(measured_done);
  meta.u64(cycle_);
  meta.u64(next_hard_fault_);
  meta.u64(hard_faults_applied_);
  meta.b(any_node_dead_);
  meta.u64(last_progress_sig_);
  meta.u64(activity_sig_at_progress_);
  meta.u64(last_progress_cycle_);

  // Component bodies intern packets into the table as they serialize; the
  // table itself (closed under nack_ref) is written between the metadata
  // and the bodies, so restore can materialize every packet first and then
  // resolve the bodies' references in a single pass.
  noc::PacketTable table;
  snap::Writer body;
  noc::save_noc_stats(body, noc_stats_);
  cache_stats_.save_state(body);
  body.b(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(body);
  body.b(tracer_ != nullptr);
  if (tracer_ != nullptr) tracer_->save_state(body);
  body.b(checker_ != nullptr);
  if (checker_ != nullptr) checker_->save_state(body);
  network_->save_state(body, table);
  for (const auto& l1 : l1s_) l1->save_state(body, table);
  for (const auto& l2 : l2s_) l2->save_state(body, table);
  for (const auto& m : mems_) m->save_state(body, table);
  for (const auto& c : cores_) c->save_state(body);

  snap::Writer payload;
  payload.append(meta);
  table.save_table(payload);
  payload.append(body);
  snap::write_snapshot_file(path, payload.data());
}

std::uint64_t CmpSystem::restore_snapshot(const std::string& path,
                                          std::uint64_t digest) {
  const std::vector<std::uint8_t> payload = snap::read_snapshot_file(path);
  snap::Reader r{std::span<const std::uint8_t>(payload)};

  if (r.u64() != digest)
    throw snap::SnapshotError("snapshot: cell digest mismatch (snapshot "
                              "belongs to a different cell or parameters)");
  const std::uint64_t measured_done = r.u64();
  cycle_ = r.u64();
  next_hard_fault_ = r.u64();
  if (next_hard_fault_ > hard_schedule_.size())
    throw snap::SnapshotError("snapshot: hard-fault cursor out of range");
  hard_faults_applied_ = r.u64();
  any_node_dead_ = r.b();
  last_progress_sig_ = r.u64();
  activity_sig_at_progress_ = r.u64();
  last_progress_cycle_ = r.u64();

  noc::PacketTable table;
  table.load_table(r);

  noc::load_noc_stats(r, noc_stats_);
  cache_stats_.restore_state(r);
  if (r.b() != (injector_ != nullptr))
    throw snap::SnapshotError("snapshot: fault-injector presence mismatch");
  if (injector_ != nullptr) injector_->restore_state(r);
  if (r.b() != (tracer_ != nullptr))
    throw snap::SnapshotError("snapshot: tracer presence mismatch");
  if (tracer_ != nullptr) tracer_->restore_state(r);
  if (r.b() != (checker_ != nullptr))
    throw snap::SnapshotError("snapshot: invariant-checker presence mismatch");
  if (checker_ != nullptr) checker_->restore_state(r);
  network_->restore_state(r, table);
  for (const auto& l1 : l1s_) l1->restore_state(r, table);
  for (const auto& l2 : l2s_) l2->restore_state(r, table);
  for (const auto& m : mems_) m->restore_state(r, table);
  for (const auto& c : cores_) c->restore_state(r);

  r.expect_end();
  return measured_done;
}

}  // namespace disco::cmp
