// Converts the event counters collected during a run into an energy
// breakdown of the on-chip memory subsystem (NoC + NUCA L2 + compression
// hardware), following the paper's Fig. 7 accounting. Compression-unit
// leakage scales with how many units a scheme instantiates (the CNC-vs-
// DISCO hardware argument of sections 1 and 4.3).
#pragma once

#include "cache/stats.h"
#include "common/config.h"
#include "noc/noc_stats.h"

namespace disco::energy {

struct EnergyBreakdown {
  double noc_dynamic_nj = 0;
  double noc_leakage_nj = 0;
  double l2_dynamic_nj = 0;
  double l2_leakage_nj = 0;
  double compressor_dynamic_nj = 0;
  double compressor_leakage_nj = 0;
  double dram_nj = 0;  ///< off-chip, reported separately

  /// On-chip memory-subsystem energy (the Fig. 7 metric).
  double subsystem_nj() const {
    return noc_dynamic_nj + noc_leakage_nj + l2_dynamic_nj + l2_leakage_nj +
           compressor_dynamic_nj + compressor_leakage_nj;
  }
};

/// Number of de/compressor units a scheme instantiates on a CMP with
/// `nodes` tiles: CC = one per bank, CNC = one per bank + one per NI,
/// DISCO = one per router (+ arbitrator), Baseline = none.
std::uint32_t compressor_units(Scheme scheme, std::uint32_t nodes);

EnergyBreakdown compute_energy(const noc::NocStats& noc,
                               const cache::CacheStats& cache,
                               const SystemConfig& cfg, Cycle cycles,
                               double algo_overhead_factor);

// --- area model (section 4.3) ---
struct AreaReport {
  double router_mm2 = 0;            ///< all routers, no compression HW
  double compression_mm2 = 0;       ///< all de/compressor + arbitrator units
  double nuca_mm2 = 0;
  double overhead_vs_router = 0;    ///< compression HW / router area
  double overhead_vs_nuca = 0;      ///< compression HW / NUCA array area
};

AreaReport compute_area(Scheme scheme, std::uint32_t nodes,
                        double algo_overhead_factor);

}  // namespace disco::energy
