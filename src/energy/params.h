// Energy and area constants for the 45nm models (paper section 4.2/4.3).
//
// The paper obtains router energy from Orion 2.0, cache energy from CACTI,
// and compressor power/area from Design Compiler synthesis with FreePDK45.
// Neither tool is usable here, so these constants are an analytic stand-in
// in the published ballpark for 45nm: Orion-class per-flit router event
// energies, CACTI-class per-access SRAM energies for a 256KB bank, and
// synthesis-class figures for a delta compressor datapath. All figures in
// the benches are *normalized*, so what matters is the relative magnitude
// of the terms, which these preserve (see DESIGN.md section 5).
#pragma once

namespace disco::energy {

// --- NoC router events (picojoules per 64-bit flit event) ---
inline constexpr double kBufferWritePj = 5.0;
inline constexpr double kBufferReadPj = 5.0;
inline constexpr double kCrossbarPj = 12.0;
inline constexpr double kLinkTraversalPj = 20.0;  // ~1.5mm tile-to-tile link
inline constexpr double kArbitrationPj = 1.0;
inline constexpr double kRouterLeakagePjPerCycle = 2.5;  // ~5mW @ 2GHz

// --- SRAM arrays (picojoules per 64B line access) ---
inline constexpr double kL2ReadPj = 300.0;   // 256KB bank, CACTI-class
inline constexpr double kL2WritePj = 350.0;
inline constexpr double kL1ReadPj = 50.0;    // 32KB
inline constexpr double kL1WritePj = 70.0;
inline constexpr double kL2BankLeakagePjPerCycle = 10.0;  // ~20mW per bank
inline constexpr double kL1LeakagePjPerCycle = 1.5;

// --- DRAM (off-chip; reported separately, not in the on-chip subsystem) ---
inline constexpr double kDramAccessPj = 15000.0;

// --- compressor units (delta datapath reference) ---
inline constexpr double kCompressOpPj = 40.0;
inline constexpr double kDecompressOpPj = 35.0;
inline constexpr double kCompressorLeakagePjPerCycle = 0.5;
/// The DISCO arbitrator (filter + confidence counters) per router.
inline constexpr double kArbitratorLeakagePjPerCycle = 0.2;
inline constexpr double kConfidenceEvalPj = 0.8;

// --- area (mm^2, 45nm) ---
/// 5-port, 6-VC, 64b 3-stage router — sized so the paper's section 4.3
/// arithmetic holds: 16 DISCO units at +17.2% of a router stay under 1% of
/// the 4MB NUCA array.
inline constexpr double kRouterAreaMm2 = 0.042;
/// DISCO de/compressor + arbitrator: +17.2% of the router (paper sec. 4.3).
inline constexpr double kDiscoUnitAreaFraction = 0.172;
inline constexpr double kNucaArea4MbMm2 = 12.0;  // CACTI-class 4MB @45nm
inline constexpr double kL1AreaMm2 = 0.30;
inline constexpr double kCoreAreaMm2 = 4.5;      // OoO x86-class core

}  // namespace disco::energy
