#include "energy/energy_model.h"

#include "energy/params.h"

namespace disco::energy {
namespace {
constexpr double kPjToNj = 1e-3;
}

std::uint32_t compressor_units(Scheme scheme, std::uint32_t nodes) {
  switch (scheme) {
    case Scheme::Baseline: return 0;
    case Scheme::CC: return nodes;          // one per L2 bank
    case Scheme::CNC: return 2 * nodes;     // per bank + per NI
    case Scheme::DISCO: return nodes;       // one per router
    case Scheme::Ideal: return nodes;
  }
  return 0;
}

EnergyBreakdown compute_energy(const noc::NocStats& noc,
                               const cache::CacheStats& cache,
                               const SystemConfig& cfg, Cycle cycles,
                               double algo_overhead_factor) {
  EnergyBreakdown e;
  const double nodes = cfg.noc.num_nodes();

  e.noc_dynamic_nj =
      kPjToNj * (static_cast<double>(noc.buffer_writes) * kBufferWritePj +
                 static_cast<double>(noc.buffer_reads) * kBufferReadPj +
                 static_cast<double>(noc.crossbar_traversals) * kCrossbarPj +
                 static_cast<double>(noc.link_flits) * kLinkTraversalPj +
                 static_cast<double>(noc.alloc_ops) * kArbitrationPj);
  e.noc_leakage_nj =
      kPjToNj * nodes * static_cast<double>(cycles) * kRouterLeakagePjPerCycle;

  e.l2_dynamic_nj =
      kPjToNj * (static_cast<double>(cache.l2_array_reads) * kL2ReadPj +
                 static_cast<double>(cache.l2_array_writes) * kL2WritePj);
  e.l2_leakage_nj = kPjToNj * nodes * static_cast<double>(cycles) *
                    kL2BankLeakagePjPerCycle;

  // Dynamic compression energy: every encode/decode event anywhere —
  // bank-side, NI-side, or in-router (engine starts count even when the
  // operation aborts: the pipeline still burned the energy) — scaled by the
  // algorithm's hardware complexity relative to the delta datapath.
  const double comp_ops = static_cast<double>(
      cache.bank_compressions + noc.ni_compressions + noc.source_compressions);
  const double decomp_ops = static_cast<double>(cache.bank_decompressions +
                                                noc.ni_decompressions);
  // Engine starts split by operation kind: decompression attempts are the
  // completed in-flight decompressions plus the aborted ones; everything
  // else that started was a compression attempt (including aborted and
  // incompressible ones — the datapath still burned the energy).
  const double decomp_engine_ops = static_cast<double>(
      noc.inflight_decompressions + noc.decompression_aborts);
  const double comp_engine_ops =
      static_cast<double>(noc.engine_starts) - decomp_engine_ops;
  const double scale = algo_overhead_factor;
  e.compressor_dynamic_nj =
      kPjToNj *
      (comp_ops * kCompressOpPj * scale + decomp_ops * kDecompressOpPj * scale +
       (comp_engine_ops * kCompressOpPj + decomp_engine_ops * kDecompressOpPj) *
           scale +
       static_cast<double>(noc.sa_idle_losses) * kConfidenceEvalPj *
           (cfg.scheme == Scheme::DISCO ? 1.0 : 0.0));

  const double units = compressor_units(cfg.scheme, cfg.noc.num_nodes());
  e.compressor_leakage_nj =
      kPjToNj * static_cast<double>(cycles) *
      (units * kCompressorLeakagePjPerCycle * scale +
       (cfg.scheme == Scheme::DISCO ? nodes * kArbitratorLeakagePjPerCycle : 0.0));

  e.dram_nj = kPjToNj * static_cast<double>(cache.dram_reads + cache.dram_writes) *
              kDramAccessPj;
  return e;
}

AreaReport compute_area(Scheme scheme, std::uint32_t nodes,
                        double algo_overhead_factor) {
  AreaReport a;
  a.router_mm2 = nodes * kRouterAreaMm2;
  const double unit = kRouterAreaMm2 * kDiscoUnitAreaFraction *
                      (algo_overhead_factor / 1.0);
  a.compression_mm2 = compressor_units(scheme, nodes) * unit;
  a.nuca_mm2 = kNucaArea4MbMm2 * (static_cast<double>(nodes) / 16.0);
  a.overhead_vs_router = a.router_mm2 > 0 ? a.compression_mm2 / a.router_mm2 : 0;
  a.overhead_vs_nuca = a.nuca_mm2 > 0 ? a.compression_mm2 / a.nuca_mm2 : 0;
  return a;
}

}  // namespace disco::energy
