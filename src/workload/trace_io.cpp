#include "workload/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace disco::workload {

std::vector<RecordedOp> record_trace(const BenchmarkProfile& profile,
                                     std::uint32_t cores,
                                     std::uint64_t ops_per_core,
                                     std::uint64_t seed) {
  std::vector<TraceGenerator> gens;
  gens.reserve(cores);
  for (NodeId c = 0; c < cores; ++c) gens.emplace_back(profile, c, seed);

  std::vector<RecordedOp> out;
  out.reserve(static_cast<std::size_t>(cores) * ops_per_core);
  for (std::uint64_t i = 0; i < ops_per_core; ++i) {
    for (NodeId c = 0; c < cores; ++c) {
      out.push_back({c, gens[c].next()});
    }
  }
  return out;
}

void write_trace(std::ostream& os, const std::vector<RecordedOp>& trace) {
  os << "# disco trace v1: <core> <L|S> <hex addr> <gap>\n";
  for (const RecordedOp& r : trace) {
    os << r.core << ' ' << (r.op.is_store ? 'S' : 'L') << ' ' << std::hex
       << r.op.addr << std::dec << ' ' << r.op.gap << '\n';
  }
}

std::vector<RecordedOp> read_trace(std::istream& is) {
  std::vector<RecordedOp> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    RecordedOp r;
    unsigned core;
    char kind;
    if (!(ls >> core >> kind >> std::hex >> r.op.addr >> std::dec >> r.op.gap) ||
        (kind != 'L' && kind != 'S')) {
      throw std::runtime_error("malformed trace line " + std::to_string(lineno) +
                               ": " + line);
    }
    r.core = static_cast<NodeId>(core);
    r.op.is_store = kind == 'S';
    out.push_back(r);
  }
  return out;
}

TraceReplayer::TraceReplayer(std::vector<RecordedOp> trace, NodeId core) {
  for (const RecordedOp& r : trace) {
    if (r.core == core) ops_.push_back(r.op);
  }
}

TraceOp TraceReplayer::next() {
  if (ops_.empty()) return TraceOp{};
  const TraceOp op = ops_[cursor_];
  cursor_ = (cursor_ + 1) % ops_.size();
  return op;
}

}  // namespace disco::workload
