#include "workload/profile.h"

#include <stdexcept>

namespace disco::workload {
namespace {

// Footprints are per-core private working sets in 64B blocks; the 16-core
// total plus the shared region determines L2 (4MB = 65536 blocks) pressure.
// Value mixes are tuned against the Table-1 compression ratios (see the
// table1 bench): integer/zero-heavy workloads compress well under FPC/SC2,
// array/index workloads favour delta/BDI, FP-heavy workloads compress
// poorly under everything but SC2's frequent-value table.
std::vector<BenchmarkProfile> build_profiles() {
  std::vector<BenchmarkProfile> p;

  auto add = [&](std::string name, std::uint64_t footprint, double hot_frac,
                 double hot_set, double seq, double wr, double shared_frac,
                 std::uint64_t shared_blocks, double rate, ValueMix mix) {
    BenchmarkProfile b;
    b.name = std::move(name);
    b.footprint_blocks = footprint;
    b.hot_fraction = hot_frac;
    b.hot_set_fraction = hot_set;
    b.sequential_prob = seq;
    b.write_ratio = wr;
    b.shared_fraction = shared_frac;
    b.shared_blocks = shared_blocks;
    b.mem_op_rate = rate;
    b.values = mix;
    p.push_back(std::move(b));
  };

  // Footprints put the 16-core total between ~0.4x and ~1.5x of the 4MB
  // nominal L2 (65536 blocks), so capacity-hungry workloads (canneal,
  // dedup, streamcluster, x264) benefit from the compression-expanded
  // cache while cache-friendly ones (swaptions, blackscholes) do not —
  // mirroring how the real suite spreads. Hot sets are a few hundred
  // blocks per core (L1 is 512 blocks), keeping L1 miss rates and DRAM
  // pressure in a realistic regime where on-chip latency dominates.
  //                                 foot   hot  hotset seq   wr    shf  shblk  rate  {zero  narrow ldelta ptr    fp     rand}
  add("blackscholes",                2048, 0.96, 0.28, 0.60, 0.15, 0.02, 1024, 0.07, {0.10, 0.15,  0.15,  0.05,  0.45,  0.10});
  add("bodytrack",                   2560, 0.95, 0.22, 0.50, 0.25, 0.05, 1536, 0.09, {0.15, 0.30,  0.20,  0.10,  0.15,  0.10});
  add("canneal",                     4096, 0.94, 0.16, 0.30, 0.20, 0.05, 3072, 0.07, {0.10, 0.15,  0.15,  0.40,  0.05,  0.15});
  add("dedup",                       3072, 0.95, 0.18, 0.55, 0.35, 0.04, 2048, 0.07, {0.30, 0.30,  0.20,  0.05,  0.00,  0.15});
  add("facesim",                     2560, 0.95, 0.22, 0.60, 0.30, 0.04, 1536, 0.08, {0.10, 0.12,  0.18,  0.05,  0.45,  0.10});
  add("ferret",                      2560, 0.94, 0.21, 0.45, 0.25, 0.06, 2048, 0.08, {0.15, 0.25,  0.15,  0.20,  0.10,  0.15});
  add("fluidanimate",                2560, 0.95, 0.22, 0.60, 0.35, 0.05, 1536, 0.09, {0.10, 0.15,  0.30,  0.05,  0.30,  0.10});
  add("freqmine",                    2816, 0.94, 0.20, 0.40, 0.20, 0.04, 1536, 0.08, {0.20, 0.40,  0.20,  0.05,  0.00,  0.15});
  add("raytrace",                    2048, 0.95, 0.25, 0.50, 0.15, 0.04, 1536, 0.07, {0.10, 0.15,  0.15,  0.15,  0.35,  0.10});
  add("streamcluster",               3584, 0.94, 0.17, 0.75, 0.25, 0.05, 2048, 0.07, {0.10, 0.20,  0.40,  0.05,  0.15,  0.10});
  add("swaptions",                   1536, 0.96, 0.30, 0.50, 0.20, 0.02, 1024, 0.06, {0.10, 0.15,  0.15,  0.05,  0.45,  0.10});
  add("vips",                        2560, 0.94, 0.22, 0.65, 0.30, 0.04, 1536, 0.09, {0.15, 0.30,  0.25,  0.05,  0.10,  0.15});
  add("x264",                        3072, 0.94, 0.19, 0.60, 0.40, 0.04, 2048, 0.07, {0.25, 0.30,  0.20,  0.05,  0.05,  0.15});
  return p;
}

}  // namespace

const std::vector<BenchmarkProfile>& parsec_profiles() {
  static const std::vector<BenchmarkProfile> profiles = build_profiles();
  return profiles;
}

const BenchmarkProfile& profile_by_name(const std::string& name) {
  for (const BenchmarkProfile& p : parsec_profiles()) {
    if (p.name == name) return p;
  }
  throw std::invalid_argument("unknown benchmark profile: " + name);
}

}  // namespace disco::workload
