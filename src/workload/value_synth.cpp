#include "workload/value_synth.h"

#include <cstring>

namespace disco::workload {
namespace {

/// Stateless per-address hash stream.
std::uint64_t h(std::uint64_t seed, Addr addr, std::uint64_t salt) {
  return splitmix64(seed ^ splitmix64(addr) ^ (salt * 0x9E3779B97F4A7C15ULL));
}

void put_u64(BlockBytes& b, std::size_t flit, std::uint64_t v) {
  std::memcpy(b.data() + flit * 8, &v, 8);
}

}  // namespace

ValueSynthesizer::ValueSynthesizer(const ValueMix& mix, std::uint64_t seed)
    : mix_(mix), seed_(seed) {}

PatternKind ValueSynthesizer::kind_of(Addr addr) const {
  const Addr blk = addr / kBlockBytes;
  const double u =
      static_cast<double>(h(seed_, blk, 0) >> 11) * (1.0 / 9007199254740992.0);
  const double total = mix_.sum();
  double acc = mix_.zero / total;
  if (u < acc) return PatternKind::Zero;
  acc += mix_.narrow / total;
  if (u < acc) return PatternKind::Narrow;
  acc += mix_.low_delta / total;
  if (u < acc) return PatternKind::LowDelta;
  acc += mix_.pointer / total;
  if (u < acc) return PatternKind::Pointer;
  acc += mix_.fp / total;
  if (u < acc) return PatternKind::Fp;
  return PatternKind::Random;
}

BlockBytes ValueSynthesizer::block_for(Addr addr) const {
  const Addr blk = addr / kBlockBytes;
  BlockBytes b{};
  switch (kind_of(addr)) {
    case PatternKind::Zero:
      break;
    case PatternKind::Narrow:
      // Small integers stored in 64-bit words (counters, sizes, indices):
      // the dominant pattern in integer-heavy heaps, compressible by every
      // scheme (zero-base deltas, FPC zero runs, frequent values).
      for (std::size_t f = 0; f < 8; ++f)
        put_u64(b, f, h(seed_, blk, f + 1) % 256);
      break;
    case PatternKind::LowDelta: {
      // 64-bit values clustered near a per-block base (array of offsets).
      const std::uint64_t base = h(seed_, blk, 100);
      for (std::size_t f = 0; f < 8; ++f)
        put_u64(b, f, base + h(seed_, blk, f + 101) % 120);
      break;
    }
    case PatternKind::Pointer: {
      // Heap pointers: shared high bits, spread over a 1MB region.
      const std::uint64_t region =
          0x00007F0000000000ULL + (h(seed_, blk, 200) % 64) * (1ULL << 20);
      for (std::size_t f = 0; f < 8; ++f)
        put_u64(b, f, region + (h(seed_, blk, f + 201) % (1ULL << 20)) * 8);
      break;
    }
    case PatternKind::Fp: {
      // Doubles in [1, 2): shared sign/exponent, random mantissae — poorly
      // compressible except via value-frequency schemes.
      for (std::size_t f = 0; f < 8; ++f) {
        const std::uint64_t mantissa = h(seed_, blk, f + 301) & ((1ULL << 52) - 1);
        put_u64(b, f, 0x3FF0000000000000ULL | mantissa);
      }
      break;
    }
    case PatternKind::Random:
      for (std::size_t f = 0; f < 8; ++f) put_u64(b, f, h(seed_, blk, f + 401));
      break;
  }
  return b;
}

std::uint64_t ValueSynthesizer::store_value(Addr addr, std::uint64_t salt) const {
  const Addr blk = addr / kBlockBytes;
  const std::uint64_t r = h(seed_, blk, 500 + salt);
  switch (kind_of(addr)) {
    case PatternKind::Zero:
      return r % 4 == 0 ? r % 16 : 0;  // zero pages gain a few small values
    case PatternKind::Narrow:
      return r % 256;  // stays a small 64-bit value
    case PatternKind::LowDelta:
      return h(seed_, blk, 100) + r % 120;  // stays near the block base
    case PatternKind::Pointer:
      return 0x00007F0000000000ULL + (r % (1ULL << 26));
    case PatternKind::Fp:
      return 0x3FF0000000000000ULL | (r & ((1ULL << 52) - 1));
    case PatternKind::Random:
      return r;
  }
  return r;
}

}  // namespace disco::workload
