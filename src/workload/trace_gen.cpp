#include "workload/trace_gen.h"

#include <algorithm>

namespace disco::workload {

TraceGenerator::TraceGenerator(const BenchmarkProfile& profile, NodeId core,
                               std::uint64_t seed)
    : profile_(profile),
      rng_(splitmix64(seed) ^ splitmix64(core + 1)),
      private_base_(static_cast<Addr>(core + 1) << 30) {}

Addr TraceGenerator::pick_block() {
  const bool shared = rng_.chance(profile_.shared_fraction);
  const Addr base = shared ? shared_base() : private_base_;
  const std::uint64_t span =
      shared ? profile_.shared_blocks : profile_.footprint_blocks;

  // The hot subset is the contiguous head of the region: contiguity keeps
  // sequential runs inside the hot set (like real array/stack reuse) and a
  // contiguous index range already maps uniformly across cache sets.
  std::uint64_t idx;
  if (rng_.chance(profile_.hot_fraction)) {
    const auto hot = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(profile_.hot_set_fraction *
                                      static_cast<double>(span)));
    idx = rng_.next_below(hot);
  } else {
    idx = rng_.next_below(span);
  }
  // Remember the region so sequential continuations wrap inside it.
  seq_region_base_ = base;
  seq_region_span_ = span;
  return base + idx * kBlockBytes;
}

TraceOp TraceGenerator::next() {
  TraceOp op;

  // Geometric compute gap with mean ~ (1 - rate) / rate.
  while (op.gap < 64 && !rng_.chance(profile_.mem_op_rate)) ++op.gap;

  if (seq_left_ > 0) {
    --seq_left_;
    const std::uint64_t idx = (seq_addr_ - seq_region_base_) / kBlockBytes;
    seq_addr_ = seq_region_base_ + ((idx + 1) % seq_region_span_) * kBlockBytes;
    op.addr = seq_addr_;
  } else {
    op.addr = pick_block();
    if (rng_.chance(profile_.sequential_prob)) {
      seq_left_ = 1 + static_cast<std::uint32_t>(rng_.next_below(7));
      seq_addr_ = op.addr;
    }
  }
  op.is_store = rng_.chance(profile_.write_ratio);
  op.addr = virtual_to_physical(op.addr);
  return op;
}

}  // namespace disco::workload
