// Deterministic block-content synthesizer. Every block address maps to a
// pattern class (weighted by the benchmark's ValueMix) and its bytes are a
// pure function of (address, seed) — so the same experiment always sees the
// same data, and the compressibility of traffic is a stable per-benchmark
// property, as it is for real applications.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "workload/profile.h"

namespace disco::workload {

enum class PatternKind : std::uint8_t { Zero, Narrow, LowDelta, Pointer, Fp, Random };

class ValueSynthesizer {
 public:
  ValueSynthesizer(const ValueMix& mix, std::uint64_t seed);

  /// Initial content of a block (used by the DRAM backing store).
  BlockBytes block_for(Addr addr) const;

  /// An 8-byte store value consistent with the block's pattern class, so
  /// writes do not destroy a workload's compressibility profile.
  std::uint64_t store_value(Addr addr, std::uint64_t salt) const;

  PatternKind kind_of(Addr addr) const;

 private:
  ValueMix mix_;
  std::uint64_t seed_;
};

}  // namespace disco::workload
