#include "workload/synthetic.h"

#include <cstring>
#include <stdexcept>

namespace disco::workload {

TrafficPattern traffic_pattern_from_name(const std::string& name) {
  if (name == "uniform") return TrafficPattern::UniformRandom;
  if (name == "transpose") return TrafficPattern::Transpose;
  if (name == "bitcomp") return TrafficPattern::BitComplement;
  if (name == "hotspot") return TrafficPattern::Hotspot;
  if (name == "neighbor") return TrafficPattern::Neighbor;
  throw std::invalid_argument("unknown traffic pattern: " + name);
}

const char* to_string(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::UniformRandom: return "uniform";
    case TrafficPattern::Transpose: return "transpose";
    case TrafficPattern::BitComplement: return "bitcomp";
    case TrafficPattern::Hotspot: return "hotspot";
    case TrafficPattern::Neighbor: return "neighbor";
  }
  return "?";
}

TrafficChooser::TrafficChooser(TrafficPattern pattern, std::uint32_t side,
                               std::uint64_t seed, NodeId hotspot,
                               double hotspot_fraction)
    : pattern_(pattern),
      side_(side),
      rng_(seed),
      hotspot_(hotspot),
      hotspot_fraction_(hotspot_fraction) {}

NodeId TrafficChooser::pick(NodeId src) {
  const std::uint32_t n = side_ * side_;
  switch (pattern_) {
    case TrafficPattern::UniformRandom:
      return static_cast<NodeId>(rng_.next_below(n));
    case TrafficPattern::Transpose: {
      const std::uint32_t x = src % side_, y = src / side_;
      return static_cast<NodeId>(x * side_ + y);
    }
    case TrafficPattern::BitComplement:
      return static_cast<NodeId>((n - 1) - src);
    case TrafficPattern::Hotspot:
      return rng_.chance(hotspot_fraction_)
                 ? hotspot_
                 : static_cast<NodeId>(rng_.next_below(n));
    case TrafficPattern::Neighbor: {
      const std::uint32_t x = src % side_, y = src / side_;
      return static_cast<NodeId>(y * side_ + (x + 1) % side_);
    }
  }
  return src;
}

noc::PacketPtr make_synthetic_packet(NodeId src, NodeId dst, std::uint64_t id,
                                     Cycle now, double compressible_fraction,
                                     Rng& rng) {
  auto pkt = std::make_shared<noc::Packet>();
  pkt->id = id;
  pkt->src = src;
  pkt->dst = dst;
  pkt->src_unit = UnitKind::Core;
  pkt->dst_unit = UnitKind::Core;
  pkt->vnet = VNet::Response;
  pkt->created = now;
  pkt->has_data = true;
  pkt->compressible = true;
  const bool compressible = rng.chance(compressible_fraction);
  const std::uint64_t base = rng.next_u64();
  for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
    const std::uint64_t v =
        compressible ? base + rng.next_below(120) : rng.next_u64();
    std::memcpy(pkt->data.data() + f * 8, &v, 8);
  }
  return pkt;
}

}  // namespace disco::workload
