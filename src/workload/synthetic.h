// Synthetic NoC traffic patterns for network-only studies (the classic
// kit: uniform random, transpose, bit-complement, hotspot, neighbour).
// Used by the traffic-explorer example and the NoC stress tests; the full
// CMP experiments use the PARSEC-like trace generators instead.
#pragma once

#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "noc/packet.h"

namespace disco::workload {

enum class TrafficPattern : std::uint8_t {
  UniformRandom,
  Transpose,
  BitComplement,
  Hotspot,
  Neighbor,
};

TrafficPattern traffic_pattern_from_name(const std::string& name);
const char* to_string(TrafficPattern p);

/// Destination chooser for a square mesh of `side x side` nodes.
class TrafficChooser {
 public:
  TrafficChooser(TrafficPattern pattern, std::uint32_t side,
                 std::uint64_t seed, NodeId hotspot = 5,
                 double hotspot_fraction = 0.4);

  NodeId pick(NodeId src);

 private:
  TrafficPattern pattern_;
  std::uint32_t side_;
  Rng rng_;
  NodeId hotspot_;
  double hotspot_fraction_;
};

/// Build a compressible data packet for synthetic traffic (base + small
/// deltas, so the delta family compresses it well).
noc::PacketPtr make_synthetic_packet(NodeId src, NodeId dst, std::uint64_t id,
                                     Cycle now, double compressible_fraction,
                                     Rng& rng);

}  // namespace disco::workload
