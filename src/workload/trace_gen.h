// Per-core memory-reference generator: hot/cold working sets, sequential
// runs, private + shared regions, geometric compute gaps. A generator is an
// infinite deterministic stream — cores pull the next reference when the
// previous gap has elapsed.
#pragma once

#include "common/rng.h"
#include "common/snapshot.h"
#include "common/types.h"
#include "workload/profile.h"

namespace disco::workload {

struct TraceOp {
  Addr addr = 0;
  bool is_store = false;
  std::uint32_t gap = 0;  ///< compute cycles before this reference issues
};

/// OS-style page-frame scattering: generators produce virtual addresses
/// (per-core heaps at large aligned bases, which would alias every core
/// onto the same cache sets); the page allocator maps each 4KB virtual page
/// to a pseudo-random frame in the 4GB physical space, exactly like a real
/// kernel's free-list does. Deterministic, identical for all cores (shared
/// pages land on shared frames).
inline Addr virtual_to_physical(Addr vaddr) {
  constexpr Addr kPageMask = 4096 - 1;
  constexpr std::uint64_t kFrames = 1ULL << 20;  // 4GB of 4KB frames
  const Addr vpage = vaddr >> 12;
  const Addr frame = splitmix64(vpage ^ 0xD15C0FA6E5ULL) % kFrames;
  return (frame << 12) | (vaddr & kPageMask);
}

class TraceGenerator {
 public:
  TraceGenerator(const BenchmarkProfile& profile, NodeId core,
                 std::uint64_t seed);

  TraceOp next();

  /// Region bases (tests and address-map sanity checks).
  Addr private_base() const { return private_base_; }
  static Addr shared_base() { return Addr{1} << 42; }

  /// Checkpoint/restore: RNG stream position + sequential-run cursor
  /// (private_base_ is a pure function of the constructor arguments).
  void save_state(snap::Writer& w) const {
    for (const std::uint64_t s : rng_.state()) w.u64(s);
    w.u64(seq_addr_);
    w.u32(seq_left_);
    w.u64(seq_region_base_);
    w.u64(seq_region_span_);
  }
  void restore_state(snap::Reader& r) {
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t& v : s) v = r.u64();
    rng_.set_state(s);
    seq_addr_ = r.u64();
    seq_left_ = r.u32();
    seq_region_base_ = r.u64();
    seq_region_span_ = r.u64();
  }

 private:
  Addr pick_block();

  const BenchmarkProfile& profile_;
  Rng rng_;
  Addr private_base_;
  Addr seq_addr_ = 0;
  std::uint32_t seq_left_ = 0;
  Addr seq_region_base_ = 0;
  std::uint64_t seq_region_span_ = 1;
};

}  // namespace disco::workload
