// Synthetic stand-ins for the PARSEC-2.1 benchmarks (paper section 4.1).
//
// gem5 full-system runs are out of scope here; what the DISCO evaluation
// actually consumes from a benchmark is (a) the L1-miss request stream —
// footprint, locality, read/write mix, sharing — and (b) the value content
// of cache blocks, which determines compressibility. Each profile encodes
// those properties; the numbers are calibrated so the per-algorithm
// compression ratios land near Table 1 (delta/BDI ~1.5-1.6x, FPC ~1.5x,
// SC2 ~2.4x) and L2 pressure spans cache-friendly to capacity-hungry, the
// way the real suite behaves. See DESIGN.md section 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace disco::workload {

/// Block value pattern classes produced by the synthesizer.
struct ValueMix {
  double zero = 0.0;       ///< all-zero blocks
  double narrow = 0.0;     ///< small 32-bit integers
  double low_delta = 0.0;  ///< 64-bit values clustered near a base (arrays/indices)
  double pointer = 0.0;    ///< pointer-like 64-bit values within a heap region
  double fp = 0.0;         ///< double-precision floats with shared exponents
  double random = 0.0;     ///< incompressible payloads

  double sum() const { return zero + narrow + low_delta + pointer + fp + random; }
};

struct BenchmarkProfile {
  std::string name;

  // --- request stream shape ---
  std::uint64_t footprint_blocks = 1 << 16;  ///< per-core private working set
  double hot_fraction = 0.8;      ///< accesses hitting the hot subset
  double hot_set_fraction = 0.1;  ///< size of the hot subset
  double sequential_prob = 0.5;   ///< continue a sequential run (spatial locality)
  double write_ratio = 0.3;
  double shared_fraction = 0.05;  ///< accesses into the globally shared region
  std::uint64_t shared_blocks = 1 << 12;
  double mem_op_rate = 0.25;      ///< memory ops per core cycle (gap control)

  ValueMix values;
};

/// The 13 PARSEC-2.1 workloads used in Figures 5-8.
const std::vector<BenchmarkProfile>& parsec_profiles();

/// Look up by name (throws std::invalid_argument).
const BenchmarkProfile& profile_by_name(const std::string& name);

}  // namespace disco::workload
