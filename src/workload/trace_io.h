// Trace recording and replay. The built-in generators are synthetic; a
// downstream user with real traces (e.g. PIN/gem5-derived) can drive the
// same system by writing them in this format. Text format, one op per
// line:
//
//   # comment
//   <core> <L|S> <hex addr> <gap>
//
// Replay preserves per-core ordering and gaps. The recorder wraps any
// generator so synthetic traces can be captured, inspected, and replayed
// bit-identically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/trace_gen.h"

namespace disco::workload {

struct RecordedOp {
  NodeId core = 0;
  TraceOp op;
};

/// Capture `ops_per_core` references per core from generators built for
/// `profile` (round-robin across cores, the order functional warmup uses).
std::vector<RecordedOp> record_trace(const BenchmarkProfile& profile,
                                     std::uint32_t cores,
                                     std::uint64_t ops_per_core,
                                     std::uint64_t seed);

void write_trace(std::ostream& os, const std::vector<RecordedOp>& trace);
std::vector<RecordedOp> read_trace(std::istream& is);

/// Per-core replay cursor with the TraceGenerator interface shape.
class TraceReplayer {
 public:
  TraceReplayer(std::vector<RecordedOp> trace, NodeId core);

  /// Next op for this core; loops when the recording is exhausted so
  /// replayed runs can outlast the capture.
  TraceOp next();

  std::size_t ops_for_core() const { return ops_.size(); }

 private:
  std::vector<TraceOp> ops_;
  std::size_t cursor_ = 0;
};

}  // namespace disco::workload
