#include "trace/trace.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "trace/invariants.h"

namespace disco::trace {

Category category_of(Event e) {
  switch (e) {
    case Event::BufferWrite:
    case Event::RouteCompute:
    case Event::VcAllocGrant:
    case Event::SwitchTraversal:
      return Category::Noc;
    case Event::CreditSend:
    case Event::CreditRecv:
    case Event::Rebuild:
      return Category::Credit;
    case Event::NiInject:
    case Event::NiFlitInject:
    case Event::NiCreditRecv:
    case Event::NiFlitEject:
    case Event::NiReassembled:
    case Event::NiDeliver:
      return Category::Ni;
    case Event::ConfidenceComp:
    case Event::ConfidenceDecomp:
    case Event::CompStart:
    case Event::DecompStart:
    case Event::CompAbort:
    case Event::DecompAbort:
    case Event::CompFinish:
    case Event::DecompFinish:
    case Event::ShadowRetire:
      return Category::Disco;
    case Event::L2Fill:
    case Event::L2Evict:
      return Category::Cache;
    case Event::TopoKill:
    case Event::TopoVcReset:
    case Event::TopoFlitsKilled:
    case Event::TopoReroute:
    case Event::TopoUnreachable:
    case Event::TopoBypass:
      return Category::Topo;
  }
  return Category::Noc;
}

const char* to_string(Event e) {
  switch (e) {
    case Event::BufferWrite: return "BW";
    case Event::RouteCompute: return "RC";
    case Event::VcAllocGrant: return "VA";
    case Event::SwitchTraversal: return "ST";
    case Event::CreditSend: return "CRS";
    case Event::CreditRecv: return "CRR";
    case Event::Rebuild: return "REB";
    case Event::NiInject: return "NIQ";
    case Event::NiFlitInject: return "NIF";
    case Event::NiCreditRecv: return "NIC";
    case Event::NiFlitEject: return "NIE";
    case Event::NiReassembled: return "NIR";
    case Event::NiDeliver: return "NID";
    case Event::ConfidenceComp: return "CCF";
    case Event::ConfidenceDecomp: return "DCF";
    case Event::CompStart: return "CST";
    case Event::DecompStart: return "DST";
    case Event::CompAbort: return "CAB";
    case Event::DecompAbort: return "DAB";
    case Event::CompFinish: return "CFN";
    case Event::DecompFinish: return "DFN";
    case Event::ShadowRetire: return "SRT";
    case Event::L2Fill: return "L2F";
    case Event::L2Evict: return "L2E";
    case Event::TopoKill: return "TKL";
    case Event::TopoVcReset: return "TVR";
    case Event::TopoFlitsKilled: return "TFK";
    case Event::TopoReroute: return "TRR";
    case Event::TopoUnreachable: return "TUN";
    case Event::TopoBypass: return "TBY";
  }
  return "?";
}

const char* to_string(Category c) {
  switch (c) {
    case Category::Noc: return "noc";
    case Category::Credit: return "credit";
    case Category::Ni: return "ni";
    case Category::Disco: return "disco";
    case Category::Cache: return "cache";
    case Category::Topo: return "topo";
  }
  return "?";
}

std::array<bool, kNumCategories> category_mask(const std::string& filter) {
  std::array<bool, kNumCategories> mask{};
  if (filter.empty()) {
    mask.fill(true);
    return mask;
  }
  std::size_t pos = 0;
  while (pos <= filter.size()) {
    const std::size_t comma = filter.find(',', pos);
    const std::string name =
        filter.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
    bool known = false;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      if (name == to_string(static_cast<Category>(c))) {
        mask[c] = true;
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument(
          "unknown trace category '" + name +
          "' (valid: noc, credit, ni, disco, cache, topo)");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return mask;
}

Tracer::Tracer(const TraceConfig& cfg) {
  if (cfg.enabled) {
    const auto mask = category_mask(cfg.filter);
    for (std::size_t e = 0; e < kNumEvents; ++e) {
      const auto cat =
          static_cast<std::size_t>(category_of(static_cast<Event>(e)));
      capture_[e] = mask[cat];
    }
    capacity_ = static_cast<std::size_t>(
        cfg.ring_capacity > 0 ? cfg.ring_capacity : 1);
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
  }
}

void Tracer::emit(Cycle cycle, NodeId node, Event e, std::uint8_t port,
                  std::uint8_t vc, std::uint64_t pkt, std::int64_t arg) {
  const TraceEvent ev{cycle, node, e, port, vc, pkt, arg};
  if (checker_ != nullptr) checker_->on_event(ev);
  if (!capture_[static_cast<std::size_t>(e)]) return;
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
    return;
  }
  // Full: overwrite the oldest slot (head_ walks the ring).
  ring_[head_] = ev;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_ || head_ == 0) {
    out = ring_;
  } else {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  }
  return out;
}

std::string canonical_line(const TraceEvent& e) {
  std::ostringstream os;
  os << e.cycle << ' ' << e.node << ' ' << to_string(e.event) << ' '
     << static_cast<unsigned>(e.port) << ' ' << static_cast<unsigned>(e.vc)
     << ' ' << e.pkt << ' ' << e.arg;
  return os.str();
}

void Tracer::write_canonical(std::ostream& os) const {
  if (dropped_events() > 0)
    os << "# " << dropped_events() << " oldest events dropped (ring wrap)\n";
  for (const TraceEvent& e : snapshot()) os << canonical_line(e) << '\n';
}

void Tracer::write_canonical_tail(std::ostream& os,
                                  std::size_t max_events) const {
  const std::vector<TraceEvent> all = snapshot();
  const std::size_t skip = all.size() > max_events ? all.size() - max_events : 0;
  if (dropped_events() + skip > 0)
    os << "# tail: last " << (all.size() - skip) << " of " << total_events()
       << " captured events\n";
  for (std::size_t i = skip; i < all.size(); ++i)
    os << canonical_line(all[i]) << '\n';
}

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : snapshot()) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << to_string(e.event) << "\",\"cat\":\""
       << to_string(category_of(e.event)) << "\",\"ph\":\"i\",\"s\":\"t\""
       << ",\"ts\":" << e.cycle << ",\"pid\":" << e.node
       << ",\"tid\":" << static_cast<unsigned>(e.port)
       << ",\"args\":{\"vc\":" << static_cast<unsigned>(e.vc)
       << ",\"pkt\":" << e.pkt << ",\"arg\":" << e.arg << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

void Tracer::save_state(snap::Writer& w) const {
  w.u64(capacity_);
  w.u64(ring_.size());
  for (const TraceEvent& e : ring_) {
    w.u64(e.cycle);
    w.u16(e.node);
    w.u8(static_cast<std::uint8_t>(e.event));
    w.u8(e.port);
    w.u8(e.vc);
    w.u64(e.pkt);
    w.i64(e.arg);
  }
  w.u64(head_);
  w.u64(total_);
}

void Tracer::restore_state(snap::Reader& r) {
  if (r.u64() != capacity_)
    throw snap::SnapshotError("snapshot: tracer capacity mismatch");
  ring_.clear();
  const std::uint64_t n = r.u64();
  if (n > capacity_)
    throw snap::SnapshotError("snapshot: tracer ring overflow");
  ring_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceEvent e;
    e.cycle = r.u64();
    e.node = static_cast<NodeId>(r.u16());
    e.event = static_cast<Event>(r.u8());
    e.port = r.u8();
    e.vc = r.u8();
    e.pkt = r.u64();
    e.arg = r.i64();
    ring_.push_back(e);
  }
  head_ = r.u64();
  total_ = r.u64();
}

}  // namespace disco::trace
