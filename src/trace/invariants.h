// Streaming invariant checker over the probe-event stream. It rebuilds
// event-driven models of the microarchitectural state the DISCO correctness
// argument depends on, and cross-checks them every cycle:
//   - credit conservation per (router, output port, VC): the credit pool
//     derived from ST / credit-receive events must stay within [0, depth]
//     (bonus credits from compression rebuilds and expansion credit debt
//     included), same for the NI injection pools;
//   - flit conservation: flits injected + rebuild deltas - flits ejected
//     must equal the structurally counted in-flight flits every cycle, so a
//     lost, duplicated or double-counted flit is caught without a drain;
//   - VC state-machine legality: Idle -> RC -> VcAlloc -> VA -> Active ->
//     tail ST -> Idle, no transition skipped or repeated;
//   - Eq.1/Eq.2 confidence bounds: every evaluated confidence must lie in
//     the interval implied by the coefficient signs and the mesh/buffer
//     geometry;
//   - shadow-packet lifetime: an armed engine's shadow is decided exactly
//     once (abort or finish) and only then retired, never re-armed first;
//   - ejection sanity: no flit sequence number is ejected twice for a live
//     packet, and L2 fills store a plausible byte count;
//   - dead-component silence: once a TopoKill declares a tile dead no
//     further pipeline/NI/cache event may fire there, and flits destroyed by
//     hard-fault scrubs enter the conservation equation explicitly.
//
// The checker depends only on plain parameters (no noc/disco headers), so
// the trace module stays at the bottom of the dependency graph.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.h"

namespace disco::trace {

/// Geometry + coefficient bounds the checker needs; fill from SystemConfig.
struct InvariantParams {
  std::uint32_t nodes = 16;
  std::uint32_t ports = 5;        ///< router ports (N/S/E/W/Local)
  std::uint32_t local_port = 4;   ///< index of the ejection port (inf credits)
  std::uint32_t num_vcs = 6;
  std::uint32_t vc_depth = 8;
  std::uint32_t max_hops = 6;     ///< mesh diameter: cols-1 + rows-1
  std::uint32_t block_flits = 9;  ///< max flits of a data packet (raw + tag)
  double gamma = 1.0;             ///< Eq.1 local-pressure coefficient
  double alpha = 1.0;             ///< Eq.2 local-pressure coefficient
  double beta = 2.0;              ///< Eq.2 distance coefficient
};

/// Per-run verdict; deterministic, so summaries compare across replays.
struct InvariantSummary {
  bool enabled = false;
  std::uint64_t events_checked = 0;
  std::uint64_t cycles_checked = 0;
  std::uint64_t violations = 0;
  std::uint64_t credit_violations = 0;        ///< pool under/overflow
  std::uint64_t conservation_violations = 0;  ///< per-cycle flit imbalance
  std::uint64_t vc_state_violations = 0;      ///< illegal stage transition
  std::uint64_t shadow_violations = 0;        ///< shadow lifetime broken
  std::uint64_t confidence_violations = 0;    ///< Eq.1/Eq.2 out of bounds
  std::uint64_t eject_violations = 0;         ///< duplicate flit ejection
  std::uint64_t cache_violations = 0;         ///< implausible L2 fill size
  std::uint64_t topology_violations = 0;      ///< activity at a dead component
  std::string first_violation;                ///< human-readable, first only

  bool clean() const { return violations == 0; }
};

class InvariantChecker {
 public:
  explicit InvariantChecker(const InvariantParams& p);

  void on_event(const TraceEvent& e);

  /// Structural reconciliation: called once per simulated cycle with the
  /// number of flits actually buffered in routers or in flight on links.
  void end_of_cycle(Cycle now, std::uint64_t structural_inflight);

  const InvariantSummary& summary() const { return summary_; }

  /// Checkpoint/restore of every running model and the summary, so a
  /// restored run's final verdict equals the uninterrupted run's.
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  enum class VcState : std::uint8_t { Idle, VcAlloc, Active };
  struct Shadow {
    std::uint64_t pkt = 0;
    bool decided = false;  ///< abort-or-commit seen, retire pending
  };

  std::size_t pool_index(NodeId node, std::uint8_t port, std::uint8_t vc) const {
    return (static_cast<std::size_t>(node) * p_.ports + port) * p_.num_vcs + vc;
  }
  std::size_t ni_index(NodeId node, std::uint8_t vc) const {
    return static_cast<std::size_t>(node) * p_.num_vcs + vc;
  }
  void violation(std::uint64_t& kind_counter, const TraceEvent& e,
                 const std::string& what);

  InvariantParams p_;
  InvariantSummary summary_;

  std::vector<std::uint32_t> credits_;     ///< router (node, out port, vc)
  std::vector<std::uint32_t> ni_credits_;  ///< NI injection (node, vc)
  std::vector<VcState> vc_state_;          ///< router (node, in port, vc)
  std::unordered_map<std::size_t, Shadow> shadows_;       ///< by VC key
  std::unordered_map<std::uint64_t, std::uint64_t> ejected_seqs_;  ///< by pkt

  std::vector<bool> dead_nodes_;           ///< tiles killed by TopoKill(router)

  std::uint64_t injected_flits_ = 0;
  std::uint64_t ejected_flits_ = 0;
  std::uint64_t killed_flits_ = 0;  ///< destroyed by hard-fault scrubs/filters
  std::int64_t rebuild_delta_ = 0;
  double conf_comp_max_ = 0;
  double conf_decomp_min_ = 0;
  double conf_decomp_max_ = 0;
};

}  // namespace disco::trace
