#include "trace/invariants.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace disco::trace {
namespace {

/// Fixed-point confidence events carry llround(c * 256); half a step of
/// slack absorbs the rounding at the interval edges.
constexpr double kConfSlack = 1.0 / 512.0;

}  // namespace

InvariantChecker::InvariantChecker(const InvariantParams& p) : p_(p) {
  summary_.enabled = true;
  credits_.assign(static_cast<std::size_t>(p_.nodes) * p_.ports * p_.num_vcs,
                  p_.vc_depth);
  ni_credits_.assign(static_cast<std::size_t>(p_.nodes) * p_.num_vcs,
                     p_.vc_depth);
  vc_state_.assign(static_cast<std::size_t>(p_.nodes) * p_.ports * p_.num_vcs,
                   VcState::Idle);
  dead_nodes_.assign(p_.nodes, false);
  // Interval bounds implied by Eq.1 / Eq.2: remote pressure is bounded by
  // the downstream buffer space, local pressure by the competing-VC count.
  const double max_remote =
      static_cast<double>(p_.num_vcs) * static_cast<double>(p_.vc_depth);
  const double max_local =
      static_cast<double>(p_.ports) * static_cast<double>(p_.num_vcs);
  conf_comp_max_ = max_remote + p_.gamma * max_local + kConfSlack;
  conf_decomp_max_ = max_remote + p_.alpha * max_local + kConfSlack;
  conf_decomp_min_ = -p_.beta * static_cast<double>(p_.max_hops) - kConfSlack;
}

void InvariantChecker::violation(std::uint64_t& kind_counter,
                                 const TraceEvent& e, const std::string& what) {
  ++kind_counter;
  ++summary_.violations;
  if (summary_.first_violation.empty()) {
    std::ostringstream os;
    os << what << " at " << canonical_line(e);
    summary_.first_violation = os.str();
  }
}

void InvariantChecker::on_event(const TraceEvent& e) {
  ++summary_.events_checked;
  if (e.node < dead_nodes_.size() && dead_nodes_[e.node] &&
      category_of(e.event) != Category::Topo) {
    violation(summary_.topology_violations, e, "event at a dead tile");
  }
  switch (e.event) {
    case Event::BufferWrite:
      break;

    case Event::RouteCompute: {
      VcState& st = vc_state_[pool_index(e.node, e.port, e.vc)];
      if (st != VcState::Idle)
        violation(summary_.vc_state_violations, e, "RC on a non-idle VC");
      st = VcState::VcAlloc;
      break;
    }

    case Event::VcAllocGrant: {
      VcState& st = vc_state_[pool_index(e.node, e.port, e.vc)];
      if (st != VcState::VcAlloc)
        violation(summary_.vc_state_violations, e, "VA grant without RC");
      st = VcState::Active;
      break;
    }

    case Event::SwitchTraversal: {
      VcState& st = vc_state_[pool_index(e.node, e.port, e.vc)];
      if (st != VcState::Active)
        violation(summary_.vc_state_violations, e, "ST from a non-active VC");
      if (st_tail(e.arg)) st = VcState::Idle;
      const std::uint8_t out = st_out_port(e.arg);
      if (out != p_.local_port) {
        std::uint32_t& pool = credits_[pool_index(e.node, out, st_out_vc(e.arg))];
        if (pool == 0) {
          violation(summary_.credit_violations, e,
                    "ST without a downstream credit");
        } else {
          --pool;
        }
      }
      break;
    }

    case Event::CreditSend:
      break;

    case Event::CreditRecv: {
      std::uint32_t& pool = credits_[pool_index(e.node, e.port, e.vc)];
      if (pool >= p_.vc_depth) {
        violation(summary_.credit_violations, e,
                  "credit pool above buffer depth");
      } else {
        ++pool;
      }
      break;
    }

    case Event::Rebuild:
      rebuild_delta_ += e.arg;
      if (e.arg < -static_cast<std::int64_t>(p_.block_flits) ||
          e.arg > static_cast<std::int64_t>(p_.block_flits)) {
        violation(summary_.conservation_violations, e,
                  "rebuild delta beyond a packet's flit span");
      }
      break;

    case Event::NiInject:
      break;

    case Event::NiFlitInject: {
      ++injected_flits_;
      std::uint32_t& pool = ni_credits_[ni_index(e.node, e.vc)];
      if (pool == 0) {
        violation(summary_.credit_violations, e,
                  "NI injection without a credit");
      } else {
        --pool;
      }
      break;
    }

    case Event::NiCreditRecv: {
      std::uint32_t& pool = ni_credits_[ni_index(e.node, e.vc)];
      if (pool >= p_.vc_depth) {
        violation(summary_.credit_violations, e,
                  "NI credit pool above buffer depth");
      } else {
        ++pool;
      }
      break;
    }

    case Event::NiFlitEject: {
      ++ejected_flits_;
      const std::uint32_t seq = static_cast<std::uint32_t>(e.arg);
      std::uint64_t& mask = ejected_seqs_[e.pkt];
      const std::uint64_t bit = 1ULL << (seq & 63U);
      if (mask & bit)
        violation(summary_.eject_violations, e, "duplicate flit ejection");
      mask |= bit;
      break;
    }

    case Event::NiReassembled:
      ejected_seqs_.erase(e.pkt);
      break;

    case Event::NiDeliver:
      break;

    case Event::ConfidenceComp:
    case Event::CompStart: {
      const double c = static_cast<double>(e.arg) / 256.0;
      if (c < -kConfSlack || c > conf_comp_max_)
        violation(summary_.confidence_violations, e,
                  "Eq.1 confidence out of bounds");
      if (e.event == Event::ConfidenceComp) break;
      auto [it, inserted] =
          shadows_.try_emplace(pool_index(e.node, e.port, e.vc),
                               Shadow{e.pkt, false});
      if (!inserted) {
        violation(summary_.shadow_violations, e,
                  "engine armed on a VC with a live shadow");
        it->second = Shadow{e.pkt, false};
      }
      break;
    }

    case Event::ConfidenceDecomp:
    case Event::DecompStart: {
      const double c = static_cast<double>(e.arg) / 256.0;
      if (c < conf_decomp_min_ || c > conf_decomp_max_)
        violation(summary_.confidence_violations, e,
                  "Eq.2 confidence out of bounds");
      if (e.event == Event::ConfidenceDecomp) break;
      auto [it, inserted] =
          shadows_.try_emplace(pool_index(e.node, e.port, e.vc),
                               Shadow{e.pkt, false});
      if (!inserted) {
        violation(summary_.shadow_violations, e,
                  "engine armed on a VC with a live shadow");
        it->second = Shadow{e.pkt, false};
      }
      break;
    }

    case Event::CompAbort:
    case Event::DecompAbort:
    case Event::CompFinish:
    case Event::DecompFinish: {
      auto it = shadows_.find(pool_index(e.node, e.port, e.vc));
      if (it == shadows_.end() || it->second.pkt != e.pkt ||
          it->second.decided) {
        violation(summary_.shadow_violations, e,
                  "abort/finish without a matching armed shadow");
      } else {
        it->second.decided = true;
      }
      break;
    }

    case Event::ShadowRetire: {
      auto it = shadows_.find(pool_index(e.node, e.port, e.vc));
      if (it == shadows_.end() || !it->second.decided) {
        violation(summary_.shadow_violations, e,
                  "shadow retired before abort-or-commit");
        if (it != shadows_.end()) shadows_.erase(it);
      } else {
        shadows_.erase(it);
      }
      break;
    }

    case Event::L2Fill:
      if (e.arg < 1 || e.arg > static_cast<std::int64_t>(kBlockBytes) + 1)
        violation(summary_.cache_violations, e,
                  "L2 fill with an implausible stored size");
      break;

    case Event::L2Evict:
      break;

    case Event::TopoKill:
      if (e.arg == static_cast<std::int64_t>(HardFaultKind::Router) &&
          e.node < dead_nodes_.size()) {
        dead_nodes_[e.node] = true;
      }
      break;

    case Event::TopoVcReset: {
      // A hard-fault scrub rewound this VC to Idle (its packet was condemned
      // before the tail traversed); the next RC on it is legal again.
      vc_state_[pool_index(e.node, e.port, e.vc)] = VcState::Idle;
      break;
    }

    case Event::TopoFlitsKilled:
      if (e.arg < 0) {
        violation(summary_.topology_violations, e,
                  "negative killed-flit count");
      } else {
        killed_flits_ += static_cast<std::uint64_t>(e.arg);
      }
      break;

    case Event::TopoReroute:
    case Event::TopoUnreachable:
    case Event::TopoBypass:
      break;
  }
}

void InvariantChecker::end_of_cycle(Cycle now, std::uint64_t structural_inflight) {
  ++summary_.cycles_checked;
  const std::int64_t modeled =
      static_cast<std::int64_t>(injected_flits_) + rebuild_delta_ -
      static_cast<std::int64_t>(ejected_flits_) -
      static_cast<std::int64_t>(killed_flits_);
  if (modeled != static_cast<std::int64_t>(structural_inflight)) {
    TraceEvent e;
    e.cycle = now;
    e.arg = modeled - static_cast<std::int64_t>(structural_inflight);
    violation(summary_.conservation_violations, e,
              "flit conservation broken (modeled - structural = " +
                  std::to_string(e.arg) + ")");
  }
}

void InvariantChecker::save_state(snap::Writer& w) const {
  w.b(summary_.enabled);
  for (const std::uint64_t v :
       {summary_.events_checked, summary_.cycles_checked, summary_.violations,
        summary_.credit_violations, summary_.conservation_violations,
        summary_.vc_state_violations, summary_.shadow_violations,
        summary_.confidence_violations, summary_.eject_violations,
        summary_.cache_violations, summary_.topology_violations})
    w.u64(v);
  w.str(summary_.first_violation);

  w.u64(credits_.size());
  for (const std::uint32_t c : credits_) w.u32(c);
  w.u64(ni_credits_.size());
  for (const std::uint32_t c : ni_credits_) w.u32(c);
  for (const VcState v : vc_state_) w.u8(static_cast<std::uint8_t>(v));
  for (const bool d : dead_nodes_) w.b(d);

  // Unordered maps serialize sorted by key for byte-deterministic saves.
  std::vector<std::uint64_t> keys;
  keys.reserve(shadows_.size());
  for (const auto& [k, sh] : shadows_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const std::uint64_t k : keys) {
    const Shadow& sh = shadows_.at(k);
    w.u64(k);
    w.u64(sh.pkt);
    w.b(sh.decided);
  }
  keys.clear();
  keys.reserve(ejected_seqs_.size());
  for (const auto& [k, v] : ejected_seqs_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const std::uint64_t k : keys) {
    w.u64(k);
    w.u64(ejected_seqs_.at(k));
  }

  w.u64(injected_flits_);
  w.u64(ejected_flits_);
  w.u64(killed_flits_);
  w.i64(rebuild_delta_);
  w.f64(conf_comp_max_);
  w.f64(conf_decomp_min_);
  w.f64(conf_decomp_max_);
}

void InvariantChecker::restore_state(snap::Reader& r) {
  summary_.enabled = r.b();
  for (std::uint64_t* v :
       {&summary_.events_checked, &summary_.cycles_checked,
        &summary_.violations, &summary_.credit_violations,
        &summary_.conservation_violations, &summary_.vc_state_violations,
        &summary_.shadow_violations, &summary_.confidence_violations,
        &summary_.eject_violations, &summary_.cache_violations,
        &summary_.topology_violations})
    *v = r.u64();
  summary_.first_violation = r.str();

  if (r.u64() != credits_.size())
    throw snap::SnapshotError("snapshot: checker geometry mismatch");
  for (std::uint32_t& c : credits_) c = r.u32();
  if (r.u64() != ni_credits_.size())
    throw snap::SnapshotError("snapshot: checker geometry mismatch");
  for (std::uint32_t& c : ni_credits_) c = r.u32();
  for (VcState& v : vc_state_) v = static_cast<VcState>(r.u8());
  for (std::size_t i = 0; i < dead_nodes_.size(); ++i) dead_nodes_[i] = r.b();

  shadows_.clear();
  const std::uint64_t n_shadows = r.u64();
  for (std::uint64_t i = 0; i < n_shadows; ++i) {
    const std::uint64_t k = r.u64();
    Shadow sh;
    sh.pkt = r.u64();
    sh.decided = r.b();
    shadows_.emplace(static_cast<std::size_t>(k), sh);
  }
  ejected_seqs_.clear();
  const std::uint64_t n_ej = r.u64();
  for (std::uint64_t i = 0; i < n_ej; ++i) {
    const std::uint64_t k = r.u64();
    ejected_seqs_[k] = r.u64();
  }

  injected_flits_ = r.u64();
  ejected_flits_ = r.u64();
  killed_flits_ = r.u64();
  rebuild_delta_ = r.i64();
  conf_comp_max_ = r.f64();
  conf_decomp_min_ = r.f64();
  conf_decomp_max_ = r.f64();
}

}  // namespace disco::trace
