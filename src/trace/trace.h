// Deterministic event-tracing layer. Probe points compiled into the hot
// paths of the router pipeline, the NIs, the DISCO unit and the L2 banks
// emit compact events through a Tracer owned by the enclosing system (one
// per experiment cell, so sweep cells never share a sink and the hot path
// needs no locks). Two backends consume the stream:
//   - a bounded ring buffer exported as canonical one-event-per-line text
//     (golden-trace diffing) or Chrome trace_event JSON (Perfetto), and
//   - a streaming InvariantChecker (see trace/invariants.h) that receives
//     every event unfiltered.
// When no tracer is attached every probe is a single null-pointer check, so
// tracing off costs nothing measurable and outputs stay bit-identical.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/snapshot.h"
#include "common/types.h"

namespace disco::trace {

enum class Event : std::uint8_t {
  // Router pipeline (category: noc).
  BufferWrite,      ///< flit written into an input VC (BW stage); arg = seq
  RouteCompute,     ///< head packet routed (RC stage); arg = out port
  VcAllocGrant,     ///< downstream VC granted (VA stage); arg = out<<8 | out_vc
  SwitchTraversal,  ///< flit switched out (ST); arg = st_arg() encoding
  // Credit flow control (category: credit).
  CreditSend,       ///< credit returned upstream for a popped flit
  CreditRecv,       ///< credit received for a downstream (port, vc)
  Rebuild,          ///< in-place flit rebuild; arg = new_flits - old_flits
  // Network interface (category: ni).
  NiInject,         ///< packet queued for injection; arg = vnet
  NiFlitInject,     ///< flit pushed into the local router; arg = seq
  NiCreditRecv,     ///< injection-side credit received from the router
  NiFlitEject,      ///< flit popped from the local router; arg = seq
  NiReassembled,    ///< all flits of a packet arrived; arg = flit count
  NiDeliver,        ///< packet handed to its sink (or NI-consumed control)
  // DISCO arbitrator + engines (category: disco).
  ConfidenceComp,   ///< Eq.1 evaluated; arg = llround(confidence * 256)
  ConfidenceDecomp, ///< Eq.2 evaluated; arg = llround(confidence * 256)
  CompStart,        ///< compression engine armed; arg = llround(conf * 256)
  DecompStart,      ///< decompression engine armed; arg = llround(conf * 256)
  CompAbort,        ///< shadow departed mid-compression
  DecompAbort,      ///< shadow departed mid-decompression
  CompFinish,       ///< compression applied; arg = new_flits - old_flits
  DecompFinish,     ///< decompression applied (or decode-failed; arg = delta)
  ShadowRetire,     ///< engine released after abort-or-commit
  // L2 bank (category: cache).
  L2Fill,           ///< line data (re)installed; arg = stored bytes
  L2Evict,          ///< line evicted; arg = 1 if dirty writeback
  // Hard faults / live topology (category: topo).
  TopoKill,         ///< component killed; arg = HardFaultKind, port = dir
  TopoVcReset,      ///< VC pipeline state scrubbed back to Idle after a kill
  TopoFlitsKilled,  ///< flits destroyed by a kill/doomed filter; arg = count
  TopoReroute,      ///< degraded (non-XY) route chosen at RC; arg = out port
  TopoUnreachable,  ///< packet dropped at source NI, dst unreachable/dead
  TopoBypass,       ///< NI flipped to uncompressed-bypass (engine hard fault)
};

inline constexpr std::size_t kNumEvents =
    static_cast<std::size_t>(Event::TopoBypass) + 1;

enum class Category : std::uint8_t { Noc, Credit, Ni, Disco, Cache, Topo };

inline constexpr std::size_t kNumCategories = 6;

Category category_of(Event e);
const char* to_string(Event e);
const char* to_string(Category c);

/// Capture mask from a comma-separated category list ("noc,disco"); empty
/// selects everything. Throws std::invalid_argument on an unknown name.
std::array<bool, kNumCategories> category_mask(const std::string& filter);

/// Pack the switch-traversal context into one arg so the hot path emits a
/// single event: tail flag, output port, downstream VC and flit seq.
inline std::int64_t st_arg(bool tail, std::uint8_t out_port,
                           std::uint8_t out_vc, std::uint32_t seq) {
  return static_cast<std::int64_t>(tail ? 1 : 0) |
         (static_cast<std::int64_t>(out_port) << 1) |
         (static_cast<std::int64_t>(out_vc) << 4) |
         (static_cast<std::int64_t>(seq) << 12);
}
inline bool st_tail(std::int64_t arg) { return (arg & 1) != 0; }
inline std::uint8_t st_out_port(std::int64_t arg) {
  return static_cast<std::uint8_t>((arg >> 1) & 0x7);
}
inline std::uint8_t st_out_vc(std::int64_t arg) {
  return static_cast<std::uint8_t>((arg >> 4) & 0xFF);
}
inline std::uint32_t st_seq(std::int64_t arg) {
  return static_cast<std::uint32_t>(arg >> 12);
}

struct TraceEvent {
  Cycle cycle = 0;
  NodeId node = 0;
  Event event = Event::BufferWrite;
  std::uint8_t port = 0;
  std::uint8_t vc = 0;
  std::uint64_t pkt = 0;
  std::int64_t arg = 0;

  bool operator==(const TraceEvent&) const = default;
};

class InvariantChecker;

class Tracer {
 public:
  explicit Tracer(const TraceConfig& cfg);

  /// Attach the streaming checker; it sees every event, filter or not.
  void set_checker(InvariantChecker* c) { checker_ = c; }
  InvariantChecker* checker() const { return checker_; }

  void emit(Cycle cycle, NodeId node, Event e, std::uint8_t port,
            std::uint8_t vc, std::uint64_t pkt, std::int64_t arg);

  /// Events that passed the capture filter (including overwritten ones).
  std::uint64_t total_events() const { return total_; }
  /// Filter-passing events lost to ring wrap-around.
  std::uint64_t dropped_events() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  /// Canonical one-event-per-line text: "cycle node event port vc pkt arg".
  /// Deterministic for a deterministic simulation, so two streams diff
  /// line-by-line (tools/trace_diff, golden-trace tests).
  void write_canonical(std::ostream& os) const;

  /// Canonical text of only the newest `max_events` retained events — the
  /// flight-recorder tail a postmortem black box embeds.
  void write_canonical_tail(std::ostream& os, std::size_t max_events) const;

  /// Chrome trace_event JSON (load in Perfetto / chrome://tracing): one
  /// instant event per probe, pid = node, tid = port.
  void write_chrome_json(std::ostream& os) const;

  /// Checkpoint/restore of the ring contents and sequence counters (the
  /// capture mask is config-derived and only geometry-checked).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::vector<TraceEvent> ring_;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;   ///< next write slot when the ring is full
  std::uint64_t total_ = 0;
  std::array<bool, kNumEvents> capture_{};
  InvariantChecker* checker_ = nullptr;
};

/// Canonical text for one event (no trailing newline).
std::string canonical_line(const TraceEvent& e);

}  // namespace disco::trace
