#include "fault/fault.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace disco::fault {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

std::uint8_t fold8(std::span<const std::uint8_t> bytes) {
  std::uint8_t f = 0;
  for (const std::uint8_t b : bytes) f ^= b;
  return f;
}

std::uint32_t checksum(std::span<const std::uint8_t> bytes, CrcMode mode) {
  return mode == CrcMode::Crc32 ? crc32(bytes)
                                : static_cast<std::uint32_t>(fold8(bytes));
}

namespace {

[[noreturn]] void spec_error(const std::string& token, const std::string& why) {
  throw std::invalid_argument("bad hard-fault token '" + token + "': " + why +
                              " (expected kind@cycle:node[:dir], kinds "
                              "link|router|engine|llc, dir N|S|E|W)");
}

std::uint64_t parse_u64(const std::string& token, const std::string& field,
                        const std::string& text) {
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos)
    spec_error(token, field + " must be a non-negative integer, got '" + text + "'");
  return std::stoull(text);
}

std::uint8_t parse_dir(const std::string& token, const std::string& text) {
  if (text == "N") return 0;
  if (text == "S") return 1;
  if (text == "E") return 2;
  if (text == "W") return 3;
  spec_error(token, "unknown direction '" + text + "'");
}

/// Canonical sort: by fire cycle, then kind, node, dir — stable under any
/// construction order, so explicit and rate-drawn events merge
/// deterministically.
bool event_less(const HardFaultEvent& a, const HardFaultEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.node != b.node) return a.node < b.node;
  return a.dir < b.dir;
}

}  // namespace

std::vector<HardFaultEvent> parse_hard_fault_spec(const std::string& spec) {
  std::vector<HardFaultEvent> events;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    const std::size_t at_pos = token.find('@');
    if (at_pos == std::string::npos) spec_error(token, "missing '@'");
    const std::string kind_s = token.substr(0, at_pos);

    HardFaultEvent e;
    if (kind_s == "link") e.kind = HardFaultKind::Link;
    else if (kind_s == "router") e.kind = HardFaultKind::Router;
    else if (kind_s == "engine") e.kind = HardFaultKind::DiscoEngine;
    else if (kind_s == "llc") e.kind = HardFaultKind::LlcBank;
    else spec_error(token, "unknown kind '" + kind_s + "'");

    const std::string rest = token.substr(at_pos + 1);
    const std::size_t c1 = rest.find(':');
    if (c1 == std::string::npos) spec_error(token, "missing ':node'");
    e.at = parse_u64(token, "cycle", rest.substr(0, c1));
    const std::size_t c2 = rest.find(':', c1 + 1);
    const std::string node_s =
        rest.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                    : c2 - c1 - 1);
    e.node = static_cast<std::uint32_t>(parse_u64(token, "node", node_s));
    if (c2 != std::string::npos) {
      if (e.kind != HardFaultKind::Link)
        spec_error(token, "only link faults take a direction");
      e.dir = parse_dir(token, rest.substr(c2 + 1));
    } else if (e.kind == HardFaultKind::Link) {
      spec_error(token, "link faults need a ':dir' (N|S|E|W)");
    }
    events.push_back(e);
  }
  std::sort(events.begin(), events.end(), event_less);
  return events;
}

std::string format_hard_fault_spec(const std::vector<HardFaultEvent>& events) {
  static constexpr const char* kDirs = "NSEW";
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const HardFaultEvent& e = events[i];
    if (i > 0) os << ',';
    os << to_string(e.kind) << '@' << e.at << ':' << e.node;
    if (e.kind == HardFaultKind::Link) os << ':' << kDirs[e.dir & 3];
  }
  return os.str();
}

std::vector<HardFaultEvent> build_hard_fault_schedule(
    const FaultConfig& cfg, std::uint64_t seed, std::uint32_t mesh_cols,
    std::uint32_t mesh_rows, std::uint64_t horizon) {
  std::vector<HardFaultEvent> events;
  for (const HardFaultEvent& e : cfg.hard_faults)
    if (e.at <= horizon) events.push_back(e);

  if (cfg.hard_fault_rate > 0.0) {
    // One independent draw per component from its own splitmix64-derived
    // stream: the failure time is a pure function of (seed, component id),
    // never of visit order, so the schedule replays bit-exactly.
    const std::uint32_t n = mesh_cols * mesh_rows;
    std::uint64_t component = 0;
    const auto draw = [&](HardFaultKind kind, std::uint32_t node,
                          std::uint8_t dir) {
      Rng rng(splitmix64(seed, 0x4A12DFA07ULL + component++));
      // Exponential failure time at `rate` failures/cycle; the 1-u guard
      // keeps log() away from 0.
      const double u = rng.next_double();
      const double t = -std::log(1.0 - u) / cfg.hard_fault_rate;
      if (!(t >= 0.0) || t > static_cast<double>(horizon)) return;
      const std::uint64_t at =
          std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(t)));
      if (at > horizon) return;
      events.push_back({kind, at, node, dir});
    };
    for (std::uint32_t node = 0; node < n; ++node) {
      draw(HardFaultKind::Router, node, 0);
      draw(HardFaultKind::DiscoEngine, node, 0);
      draw(HardFaultKind::LlcBank, node, 0);
      // Each undirected link once, from the sender side: South and East
      // cover every internal edge exactly once.
      const std::uint32_t x = node % mesh_cols, y = node / mesh_cols;
      if (y + 1 < mesh_rows) draw(HardFaultKind::Link, node, 1);  // S
      if (x + 1 < mesh_cols) draw(HardFaultKind::Link, node, 2);  // E
    }
  }

  std::sort(events.begin(), events.end(), event_less);
  return events;
}

}  // namespace disco::fault
