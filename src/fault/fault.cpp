#include "fault/fault.h"

#include <array>

namespace disco::fault {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

std::uint8_t fold8(std::span<const std::uint8_t> bytes) {
  std::uint8_t f = 0;
  for (const std::uint8_t b : bytes) f ^= b;
  return f;
}

std::uint32_t checksum(std::span<const std::uint8_t> bytes, CrcMode mode) {
  return mode == CrcMode::Crc32 ? crc32(bytes)
                                : static_cast<std::uint32_t>(fold8(bytes));
}

}  // namespace disco::fault
