// Deterministic fault injection for the resilience layer. One FaultInjector
// per simulated system, seeded from the cell seed through splitmix64, so a
// faulty run replays bit-exactly regardless of thread count (all injection
// sites are visited in simulation order by the single-threaded tick loop).
//
// The injector owns the per-site fault coins and the "faults injected"
// counters; detection/recovery counters live in NocStats next to the
// machinery that increments them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/rng.h"
#include "common/snapshot.h"

namespace disco::fault {

/// Parse a hard-fault spec: a comma-separated list of "kind@cycle:node" (or
/// "link@cycle:node:dir" with dir in {N,S,E,W}). Kinds: link, router,
/// engine, llc. Example: "engine@5000:3,link@9000:5:E,router@12000:10".
/// Throws std::invalid_argument with the offending token on a parse error.
std::vector<HardFaultEvent> parse_hard_fault_spec(const std::string& spec);

/// Canonical spec string for a schedule (round-trips through the parser).
std::string format_hard_fault_spec(const std::vector<HardFaultEvent>& events);

/// Materialize the full, deterministic kill schedule for one system: the
/// explicit events of `cfg.hard_faults` plus, when `cfg.hard_fault_rate` is
/// set, one exponential failure-time draw per component (router, engine and
/// bank per node; the N/S/E/W links of each node from the sender side). Each
/// component draws from its own splitmix64-derived stream, so the schedule
/// is a pure function of (seed, rate, mesh) — replayable bit-exactly under
/// any thread count. Events past `horizon` are discarded; the result is
/// sorted by (at, kind, node, dir).
std::vector<HardFaultEvent> build_hard_fault_schedule(
    const FaultConfig& cfg, std::uint64_t seed, std::uint32_t mesh_cols,
    std::uint32_t mesh_rows, std::uint64_t horizon);

/// Checksum over a raw 64B block, selected by FaultConfig::crc. Fold8 is
/// zero-extended so both modes fit the same 32-bit header field.
std::uint32_t checksum(std::span<const std::uint8_t> bytes, CrcMode mode);

/// IEEE CRC-32 (reflected, poly 0xEDB88320).
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// 8-bit XOR fold: catches any single-bit flip, may miss multi-bit patterns.
std::uint8_t fold8(std::span<const std::uint8_t> bytes);

/// Faults injected, by site.
struct FaultCounters {
  std::uint64_t link_bit_flips = 0;
  std::uint64_t llc_bit_flips = 0;
  std::uint64_t flit_drops = 0;
  std::uint64_t flit_duplicates = 0;
  std::uint64_t engine_stalls = 0;
  std::uint64_t engine_faults = 0;

  std::uint64_t total() const {
    return link_bit_flips + llc_bit_flips + flit_drops + flit_duplicates +
           engine_stalls + engine_faults;
  }
  /// Faults that corrupted an in-flight or stored payload (the population
  /// the "100% detected" acceptance criterion is measured against).
  std::uint64_t payload_faults() const {
    return link_bit_flips + llc_bit_flips + engine_faults;
  }
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), rng_(splitmix64(seed, 0xFA170ULL)) {}

  const FaultConfig& config() const { return cfg_; }
  bool enabled() const { return cfg_.enabled; }
  const FaultCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = FaultCounters{}; }

  /// Flip one random bit of a compressed payload traversing a link.
  /// Returns true when a fault was injected.
  bool corrupt_link_payload(std::vector<std::uint8_t>& bytes) {
    if (bytes.empty() || !rng_.chance(cfg_.link_bit_flip_rate)) return false;
    flip_random_bit(bytes);
    ++counters_.link_bit_flips;
    return true;
  }

  /// Flip one random bit of a compressed block read out of an L2 bank.
  bool corrupt_llc_payload(std::vector<std::uint8_t>& bytes) {
    if (bytes.empty() || !rng_.chance(cfg_.llc_bit_flip_rate)) return false;
    flip_random_bit(bytes);
    ++counters_.llc_bit_flips;
    return true;
  }

  /// Flip one random bit of a DISCO engine's compression output (a silent
  /// hardware fault in the compressor datapath).
  bool corrupt_engine_output(std::vector<std::uint8_t>& bytes) {
    if (bytes.empty() || !rng_.chance(cfg_.engine_fault_rate)) return false;
    flip_random_bit(bytes);
    ++counters_.engine_faults;
    return true;
  }

  bool should_drop_flit() {
    if (!rng_.chance(cfg_.flit_drop_rate)) return false;
    ++counters_.flit_drops;
    return true;
  }

  bool should_duplicate_flit() {
    if (!rng_.chance(cfg_.flit_duplicate_rate)) return false;
    ++counters_.flit_duplicates;
    return true;
  }

  bool should_stall_engine() {
    if (!rng_.chance(cfg_.engine_stall_rate)) return false;
    ++counters_.engine_stalls;
    return true;
  }

  /// Checkpoint/restore: the RNG stream position and the fault counters are
  /// the whole mutable state.
  void save_state(snap::Writer& w) const {
    for (const std::uint64_t s : rng_.state()) w.u64(s);
    w.u64(counters_.link_bit_flips);
    w.u64(counters_.llc_bit_flips);
    w.u64(counters_.flit_drops);
    w.u64(counters_.flit_duplicates);
    w.u64(counters_.engine_stalls);
    w.u64(counters_.engine_faults);
  }
  void restore_state(snap::Reader& r) {
    std::array<std::uint64_t, 4> s{};
    for (std::uint64_t& v : s) v = r.u64();
    rng_.set_state(s);
    counters_.link_bit_flips = r.u64();
    counters_.llc_bit_flips = r.u64();
    counters_.flit_drops = r.u64();
    counters_.flit_duplicates = r.u64();
    counters_.engine_stalls = r.u64();
    counters_.engine_faults = r.u64();
  }

 private:
  void flip_random_bit(std::vector<std::uint8_t>& bytes) {
    const std::uint64_t bit = rng_.next_below(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
  }

  FaultConfig cfg_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace disco::fault
