#include "noc/snapshot.h"

namespace disco::noc {

namespace {

void save_packet(snap::Writer& w, PacketTable& t, const Packet& p) {
  w.u64(p.id);
  w.u16(p.src);
  w.u16(p.dst);
  w.u8(static_cast<std::uint8_t>(p.src_unit));
  w.u8(static_cast<std::uint8_t>(p.dst_unit));
  w.u8(static_cast<std::uint8_t>(p.vnet));
  w.u8(p.proto_msg);
  w.u64(p.addr);
  w.b(p.has_data);
  w.b(p.compressible);
  w.b(p.critical);
  w.b(p.comp_failed);
  w.b(p.was_compressed);
  w.b(p.from_dram);
  w.b(p.decompressed_in_network);
  w.raw(std::span<const std::uint8_t>(p.data.data(), p.data.size()));
  save_opt_encoded(w, p.encoded);
  w.u32(p.payload_crc);
  w.b(p.crc_valid);
  w.u32(p.retry);
  w.u64(p.retransmit_of);
  w.u64(p.nack_for);
  t.save_ref(w, p.nack_ref);
  w.u8(p.route_phase);
  w.u32(p.route_epoch);
  w.u64(p.created);
  w.u64(p.injected);
  w.u64(p.ejected);
  w.u32(p.hops);
  w.u64(p.idle_cycles);
}

void load_packet(snap::Reader& r, const PacketTable& t, Packet& p) {
  p.id = r.u64();
  p.src = static_cast<NodeId>(r.u16());
  p.dst = static_cast<NodeId>(r.u16());
  p.src_unit = static_cast<UnitKind>(r.u8());
  p.dst_unit = static_cast<UnitKind>(r.u8());
  p.vnet = static_cast<VNet>(r.u8());
  p.proto_msg = r.u8();
  p.addr = r.u64();
  p.has_data = r.b();
  p.compressible = r.b();
  p.critical = r.b();
  p.comp_failed = r.b();
  p.was_compressed = r.b();
  p.from_dram = r.b();
  p.decompressed_in_network = r.b();
  r.raw(std::span<std::uint8_t>(p.data.data(), p.data.size()));
  p.encoded = load_opt_encoded(r);
  p.payload_crc = r.u32();
  p.crc_valid = r.b();
  p.retry = r.u32();
  p.retransmit_of = r.u64();
  p.nack_for = r.u64();
  p.nack_ref = t.load_ref(r);
  p.route_phase = r.u8();
  p.route_epoch = r.u32();
  p.created = r.u64();
  p.injected = r.u64();
  p.ejected = r.u64();
  p.hops = r.u32();
  p.idle_cycles = r.u64();
}

}  // namespace

std::uint32_t PacketTable::intern(const PacketPtr& p) {
  if (p == nullptr) return 0;
  const auto it = index_.find(p.get());
  if (it != index_.end()) return it->second;
  pkts_.push_back(p);
  const auto idx = static_cast<std::uint32_t>(pkts_.size());  // 1-based
  index_.emplace(p.get(), idx);
  return idx;
}

void PacketTable::save_table(snap::Writer& w) {
  // Writing a packet may intern another one through nack_ref, growing the
  // worklist; the count is therefore only known after the bodies are done.
  snap::Writer bodies;
  std::size_t i = 0;
  while (i < pkts_.size()) {
    save_packet(bodies, *this, *pkts_[i]);
    ++i;
  }
  w.u32(static_cast<std::uint32_t>(pkts_.size()));
  w.append(bodies);
}

void PacketTable::load_table(snap::Reader& r) {
  const std::uint32_t n = r.u32();
  pkts_.clear();
  pkts_.reserve(n);
  // Allocate first so forward/recursive references resolve while filling.
  for (std::uint32_t i = 0; i < n; ++i)
    pkts_.push_back(std::make_shared<Packet>());
  for (std::uint32_t i = 0; i < n; ++i) load_packet(r, *this, *pkts_[i]);
}

PacketPtr PacketTable::load_ref(snap::Reader& r) const {
  const std::uint32_t idx = r.u32();
  if (idx == 0) return nullptr;
  if (idx > pkts_.size())
    throw snap::SnapshotError("snapshot: packet reference out of range");
  return pkts_[idx - 1];
}

void save_encoded(snap::Writer& w, const compress::Encoded& e) {
  w.bytes(e.bytes);
  w.u64(e.overhead_bytes);
}

compress::Encoded load_encoded(snap::Reader& r) {
  compress::Encoded e;
  e.bytes = r.bytes();
  e.overhead_bytes = static_cast<std::size_t>(r.u64());
  return e;
}

void save_opt_encoded(snap::Writer& w, const std::optional<compress::Encoded>& e) {
  w.b(e.has_value());
  if (e.has_value()) save_encoded(w, *e);
}

std::optional<compress::Encoded> load_opt_encoded(snap::Reader& r) {
  if (!r.b()) return std::nullopt;
  return load_encoded(r);
}

void save_flit(snap::Writer& w, PacketTable& t, const Flit& f) {
  t.save_ref(w, f.pkt);
  w.u32(f.seq);
  w.u8(f.vc_tag);
  w.u64(f.arrival);
}

Flit load_flit(snap::Reader& r, const PacketTable& t) {
  Flit f;
  f.pkt = t.load_ref(r);
  f.seq = r.u32();
  f.vc_tag = r.u8();
  f.arrival = r.u64();
  return f;
}

void save_vc(snap::Writer& w, PacketTable& t, const VirtualChannel& vc) {
  w.u64(vc.buffer.size());
  for (const Flit& f : vc.buffer) save_flit(w, t, f);
  w.u8(static_cast<std::uint8_t>(vc.stage));
  w.u8(static_cast<std::uint8_t>(vc.out_port));
  w.u8(vc.out_vc);
  w.u32(vc.sent_flits);
  w.u64(vc.head_arrival);
  w.u32(vc.credit_debt);
  t.save_ref(w, vc.active_pkt);
  w.b(vc.engine_busy);
  w.b(vc.sa_inhibit);
}

void load_vc(snap::Reader& r, const PacketTable& t, VirtualChannel& vc) {
  vc.buffer.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) vc.buffer.push_back(load_flit(r, t));
  vc.stage = static_cast<VcStage>(r.u8());
  vc.out_port = static_cast<Port>(r.u8());
  vc.out_vc = r.u8();
  vc.sent_flits = r.u32();
  vc.head_arrival = r.u64();
  vc.credit_debt = r.u32();
  vc.active_pkt = t.load_ref(r);
  vc.engine_busy = r.b();
  vc.sa_inhibit = r.b();
}

void save_flit_link(snap::Writer& w, PacketTable& t, const FlitLink& l) {
  w.u64(l.size());
  l.for_each([&](Cycle ready, const Flit& f) {
    w.u64(ready);
    save_flit(w, t, f);
  });
  w.u64(l.last_push());
}

void load_flit_link(snap::Reader& r, const PacketTable& t, FlitLink& l) {
  l.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Cycle ready = r.u64();
    l.restore_push(ready, load_flit(r, t));
  }
  l.set_last_push(r.u64());
}

void save_credit_link(snap::Writer& w, const CreditLink& l) {
  w.u64(l.size());
  l.for_each([&](Cycle ready, const Credit& c) {
    w.u64(ready);
    w.u8(c.vc);
  });
}

void load_credit_link(snap::Reader& r, CreditLink& l) {
  l.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const Cycle ready = r.u64();
    l.restore_push(ready, Credit{r.u8()});
  }
}

void save_noc_stats(snap::Writer& w, const NocStats& s) {
  w.u64(s.buffer_writes);
  w.u64(s.buffer_reads);
  w.u64(s.crossbar_traversals);
  w.u64(s.link_flits);
  w.u64(s.alloc_ops);
  w.u64(s.credits_sent);
  w.u64(s.inflight_compressions);
  w.u64(s.inflight_decompressions);
  w.u64(s.source_compressions);
  w.u64(s.compression_aborts);
  w.u64(s.decompression_aborts);
  w.u64(s.engine_starts);
  w.u64(s.ni_compressions);
  w.u64(s.ni_decompressions);
  w.u64(s.exposed_decomp_cycles);
  w.u64(s.exposed_comp_cycles);
  w.u64(s.hidden_decomp_ops);
  w.u64(s.crc_checks);
  w.u64(s.corruptions_detected);
  w.u64(s.silent_corruptions);
  w.u64(s.flit_loss_timeouts);
  w.u64(s.nacks_sent);
  w.u64(s.retransmissions);
  w.u64(s.retransmit_deliveries);
  w.u64(s.backoff_cycles);
  w.u64(s.duplicate_flits_dropped);
  w.u64(s.duplicate_retransmissions);
  w.u64(s.unrecovered_deliveries);
  w.u64(s.engine_decode_errors);
  w.u64(s.engines_quarantined);
  w.u64(s.links_killed);
  w.u64(s.routers_killed);
  w.u64(s.engines_hard_failed);
  w.u64(s.banks_killed);
  w.u64(s.unreachable_drops);
  w.u64(s.dead_component_drops);
  w.u64(s.flits_destroyed);
  w.u64(s.severed_packets);
  w.u64(s.reroutes);
  w.u64(s.bypass_retransmits);
  w.u64(s.synth_completions);
  w.u64(s.packets_injected);
  w.u64(s.packets_ejected);
  w.u64(s.flits_injected);
  w.u64(s.sa_idle_losses);
  for (const auto& acc : s.packet_latency) acc.save_state(w);
  s.queueing_cycles.save_state(w);
}

void load_noc_stats(snap::Reader& r, NocStats& s) {
  s.buffer_writes = r.u64();
  s.buffer_reads = r.u64();
  s.crossbar_traversals = r.u64();
  s.link_flits = r.u64();
  s.alloc_ops = r.u64();
  s.credits_sent = r.u64();
  s.inflight_compressions = r.u64();
  s.inflight_decompressions = r.u64();
  s.source_compressions = r.u64();
  s.compression_aborts = r.u64();
  s.decompression_aborts = r.u64();
  s.engine_starts = r.u64();
  s.ni_compressions = r.u64();
  s.ni_decompressions = r.u64();
  s.exposed_decomp_cycles = r.u64();
  s.exposed_comp_cycles = r.u64();
  s.hidden_decomp_ops = r.u64();
  s.crc_checks = r.u64();
  s.corruptions_detected = r.u64();
  s.silent_corruptions = r.u64();
  s.flit_loss_timeouts = r.u64();
  s.nacks_sent = r.u64();
  s.retransmissions = r.u64();
  s.retransmit_deliveries = r.u64();
  s.backoff_cycles = r.u64();
  s.duplicate_flits_dropped = r.u64();
  s.duplicate_retransmissions = r.u64();
  s.unrecovered_deliveries = r.u64();
  s.engine_decode_errors = r.u64();
  s.engines_quarantined = r.u64();
  s.links_killed = r.u64();
  s.routers_killed = r.u64();
  s.engines_hard_failed = r.u64();
  s.banks_killed = r.u64();
  s.unreachable_drops = r.u64();
  s.dead_component_drops = r.u64();
  s.flits_destroyed = r.u64();
  s.severed_packets = r.u64();
  s.reroutes = r.u64();
  s.bypass_retransmits = r.u64();
  s.synth_completions = r.u64();
  s.packets_injected = r.u64();
  s.packets_ejected = r.u64();
  s.flits_injected = r.u64();
  s.sa_idle_losses = r.u64();
  for (auto& acc : s.packet_latency) acc.restore_state(r);
  s.queueing_cycles.restore_state(r);
}

}  // namespace disco::noc
