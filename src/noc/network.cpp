#include "noc/network.h"

#include <algorithm>
#include <cassert>

#include "noc/snapshot.h"

namespace disco::noc {
namespace {

Port opposite(Port p) { return opposite_port(p); }

}  // namespace

Network::Network(const NocConfig& cfg, NiPolicy ni_policy, NocStats& stats,
                 const ExtensionFactory& make_extension)
    : mesh_{cfg.mesh_cols, cfg.mesh_rows}, cfg_(cfg), stats_(stats),
      topo_(mesh_) {
  const std::uint32_t n = mesh_.num_nodes();
  routers_.reserve(n);
  nis_.reserve(n);
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, mesh_, cfg_, stats_));
    nis_.push_back(std::make_unique<NetworkInterface>(node, cfg_, ni_policy, stats_));
  }

  // Inter-router wiring: one flit link + one (reverse) credit link per
  // directed neighbour edge. Create each once, from the sender's side.
  for (NodeId node = 0; node < n; ++node) {
    for (Port dir : {Port::North, Port::South, Port::East, Port::West}) {
      const NodeId nb = mesh_.neighbor(node, dir);
      if (nb == kInvalidNode) continue;
      auto flit = std::make_unique<FlitLink>();
      auto credit = std::make_unique<CreditLink>();
      routers_[node]->connect_out_flit(dir, flit.get());
      routers_[nb]->connect_in_flit(opposite(dir), flit.get());
      routers_[nb]->connect_out_credit(opposite(dir), credit.get());
      routers_[node]->connect_in_credit(dir, credit.get());
      flit_links_.push_back(std::move(flit));
      credit_links_.push_back(std::move(credit));
    }

    // NI <-> router local port.
    auto inj = std::make_unique<FlitLink>();
    auto ej = std::make_unique<FlitLink>();
    auto inj_credit = std::make_unique<CreditLink>();
    nis_[node]->connect_to_router(inj.get());
    routers_[node]->connect_in_flit(Port::Local, inj.get());
    routers_[node]->connect_out_flit(Port::Local, ej.get());
    nis_[node]->connect_from_router(ej.get());
    routers_[node]->connect_out_credit(Port::Local, inj_credit.get());
    nis_[node]->connect_credits(inj_credit.get());
    flit_links_.push_back(std::move(inj));
    flit_links_.push_back(std::move(ej));
    credit_links_.push_back(std::move(inj_credit));
  }

  if (make_extension) {
    extensions_.reserve(n);
    for (NodeId node = 0; node < n; ++node) {
      extensions_.push_back(make_extension(*routers_[node]));
      routers_[node]->set_extension(extensions_.back().get());
    }
  }

  // Hard-fault wiring: pointers are always installed, but every degraded
  // check is behind a flag that only a kill can set.
  node_dead_.assign(n, false);
  const DoomedPacketFn doomed = [this](const PacketPtr& p, Cycle c) {
    note_doomed(p, c);
  };
  for (NodeId node = 0; node < n; ++node) {
    routers_[node]->set_topology(&topo_);
    routers_[node]->set_condemned(&condemned_);
    routers_[node]->set_doomed_callback(doomed);
    nis_[node]->set_topology(&topo_);
    nis_[node]->set_condemned(&condemned_);
    nis_[node]->set_doomed_callback(doomed);
  }
}

void Network::tick(Cycle now) {
  // Channels are 1-cycle pipelined, so intra-cycle ordering is immaterial.
  for (std::size_t i = 0; i < routers_.size(); ++i)
    if (!node_dead_[i]) routers_[i]->tick(now);
  for (std::size_t i = 0; i < nis_.size(); ++i)
    if (!node_dead_[i]) nis_[i]->tick(now);
}

StallCensus Network::stall_census() const {
  StallCensus c;
  for (const auto& r : routers_) r->stall_census(c);
  for (const auto& l : flit_links_) c.buffered_flits += l->size();
  c.pending_injections = pending_injections();
  return c;
}

bool Network::credits_quiescent() const {
  for (const auto& r : routers_)
    if (!r->credits_quiescent()) return false;
  return true;
}

bool Network::quiescent() const {
  for (const auto& r : routers_)
    if (!r->quiescent()) return false;
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& l : flit_links_)
    if (!l->empty()) return false;
  return true;
}

// --- permanent (hard) faults -----------------------------------------------

void Network::note_doomed(const PacketPtr& pkt, Cycle now) {
  if (pkt->nack_for != 0) return;  // recovery traffic needs no completion
  const PacketId oid = pkt->retransmit_of != 0 ? pkt->retransmit_of : pkt->id;
  if (!resolved_.insert(oid).second) return;
  if (unreachable_) unreachable_(pkt, now);
}

void Network::enter_degraded() {
  if (degraded_) return;
  degraded_ = true;
  for (auto& r : routers_) r->enter_degraded_mode();
  for (auto& ni : nis_) ni->enter_degraded_mode();
}

bool Network::doomed_from(NodeId at, const Packet& p) const {
  return !topo_.unit_alive(p.dst, p.dst_unit) || !topo_.reachable(at, p.dst);
}

bool Network::apply_hard_fault(const HardFaultEvent& e, Cycle now) {
  assert(e.node < mesh_.num_nodes());
  switch (e.kind) {
    case HardFaultKind::Link:
      return kill_link(e.node, static_cast<Port>(e.dir), now);
    case HardFaultKind::Router:
      return kill_router(e.node, now);
    case HardFaultKind::DiscoEngine:
      return kill_engine(e.node, now);
    case HardFaultKind::LlcBank:
      return kill_bank(e.node, now);
  }
  return false;
}

bool Network::kill_engine(NodeId n, Cycle now) {
  if (!topo_.kill_engine(n)) return false;
  enter_degraded();
  ++stats_.engines_hard_failed;
  // Abort in-flight engine work first: those events must precede the kill
  // marker (the invariant checker rejects non-topology events afterwards
  // only for full router deaths, but the ordering keeps traces readable).
  if (RouterExtension* ext = extension(n)) ext->on_hard_fault(now);
  if (tracer_ != nullptr)
    tracer_->emit(now, n, trace::Event::TopoKill, 0, 0, 0,
                  static_cast<std::int64_t>(HardFaultKind::DiscoEngine));
  nis_[n]->set_bypass(now);
  return true;
}

bool Network::kill_bank(NodeId n, Cycle now) {
  if (!topo_.kill_bank(n)) return false;
  enter_degraded();
  ++stats_.banks_killed;
  if (tracer_ != nullptr)
    tracer_->emit(now, n, trace::Event::TopoKill, 0, 0, 0,
                  static_cast<std::int64_t>(HardFaultKind::LlcBank));
  finish_topology_kill({}, now, /*routes_changed=*/false);
  return true;
}

bool Network::kill_link(NodeId n, Port dir, Cycle now) {
  if (!topo_.kill_link(n, dir)) return false;
  enter_degraded();
  ++stats_.links_killed;
  if (tracer_ != nullptr)
    tracer_->emit(now, n, trace::Event::TopoKill,
                  static_cast<std::uint8_t>(dir), 0, 0,
                  static_cast<std::int64_t>(HardFaultKind::Link));
  std::vector<PacketPtr> severed;
  sever_undirected_link(n, dir, severed, now);
  finish_topology_kill(std::move(severed), now, /*routes_changed=*/true);
  return true;
}

bool Network::kill_router(NodeId n, Cycle now) {
  if (!topo_.kill_router(n)) return false;
  enter_degraded();
  ++stats_.routers_killed;
  // Abort the tile's engines while their (non-topology) trace events are
  // still legal at this node, then mark it dead.
  if (RouterExtension* ext = extension(n)) ext->on_hard_fault(now);
  node_dead_[n] = true;
  if (tracer_ != nullptr)
    tracer_->emit(now, n, trace::Event::TopoKill, 0, 0, 0,
                  static_cast<std::int64_t>(HardFaultKind::Router));

  std::vector<PacketPtr> severed;
  for (Port dir : {Port::North, Port::South, Port::East, Port::West})
    sever_undirected_link(n, dir, severed, now);

  // Tile-internal wiring: whatever sat on the NI links dies with the tile.
  if (FlitLink* l = nis_[n]->to_router_link()) {
    const std::vector<Flit> flits = l->take_all();
    // Owners are this NI's active sends, surrendered as orphans below.
    stats_.flits_destroyed += flits.size();
    if (tracer_ != nullptr && !flits.empty())
      tracer_->emit(now, n, trace::Event::TopoFlitsKilled,
                    static_cast<std::uint8_t>(Port::Local), 0, 0,
                    static_cast<std::int64_t>(flits.size()));
  }
  if (FlitLink* l = nis_[n]->from_router_link()) {
    std::vector<Flit> flits = l->take_all();
    stats_.flits_destroyed += flits.size();
    if (tracer_ != nullptr && !flits.empty())
      tracer_->emit(now, n, trace::Event::TopoFlitsKilled,
                    static_cast<std::uint8_t>(Port::Local), 0, 0,
                    static_cast<std::int64_t>(flits.size()));
    for (Flit& f : flits) severed.push_back(std::move(f.pkt));
  }
  if (CreditLink* c = nis_[n]->credit_link()) c->clear();
  routers_[n]->drain_dead(severed, now);
  routers_[n]->disconnect_port(Port::Local);

  // Orphans: protocol packets queued or in flight at the dead tile. The
  // system layer synthesizes their completions so live requesters and
  // directories never wedge waiting for a dead peer.
  std::vector<PacketPtr> orphans;
  nis_[n]->collect_dead_orphans(orphans);
  nis_[n]->disconnect();
  for (const PacketPtr& p : orphans) note_doomed(p, now);

  finish_topology_kill(std::move(severed), now, /*routes_changed=*/true);
  return true;
}

void Network::drain_directed_link(Router& from, Port dir,
                                  std::vector<PacketPtr>& severed, Cycle now) {
  FlitLink* l = from.out_flit_link(dir);
  if (l == nullptr) return;
  std::vector<Flit> flits = l->take_all();
  if (flits.empty()) return;
  stats_.flits_destroyed += flits.size();
  if (tracer_ != nullptr)
    tracer_->emit(now, from.id(), trace::Event::TopoFlitsKilled,
                  static_cast<std::uint8_t>(dir), 0, 0,
                  static_cast<std::int64_t>(flits.size()));
  for (Flit& f : flits) severed.push_back(std::move(f.pkt));
}

void Network::sever_undirected_link(NodeId n, Port dir,
                                    std::vector<PacketPtr>& severed,
                                    Cycle now) {
  const NodeId nb = mesh_.neighbor(n, dir);
  const Port opp = opposite(dir);
  drain_directed_link(*routers_[n], dir, severed, now);
  if (nb != kInvalidNode) drain_directed_link(*routers_[nb], opp, severed, now);
  // Credit wires die with the data wires.
  if (CreditLink* c = routers_[n]->in_credit_link(dir)) c->clear();
  if (nb != kInvalidNode)
    if (CreditLink* c = routers_[nb]->in_credit_link(opp)) c->clear();
  routers_[n]->disconnect_port(dir);
  if (nb != kInvalidNode) routers_[nb]->disconnect_port(opp);
}

void Network::finish_topology_kill(std::vector<PacketPtr> severed, Cycle now,
                                   bool routes_changed) {
  const std::uint32_t n = mesh_.num_nodes();

  // Mid-wormhole packets stranded by an output link that just died.
  for (NodeId i = 0; i < n; ++i)
    if (!node_dead_[i]) routers_[i]->collect_severed(severed);

  // Packets buffered at live routers that can no longer be delivered from
  // where they sit (destination unit dead, or the component was cut).
  std::vector<PacketPtr> scratch;
  for (NodeId i = 0; i < n; ++i) {
    if (node_dead_[i]) continue;
    scratch.clear();
    routers_[i]->collect_buffered_packets(scratch);
    for (const PacketPtr& p : scratch) {
      if (!doomed_from(i, *p)) continue;
      condemned_.insert(p->id);
      note_doomed(p, now);
    }
  }

  // Classify the severed set: a packet with a live, attached destination is
  // recovered end to end (loss timeout -> NACK -> raw retransmission); the
  // rest are undeliverable and resolve through the doomed handler.
  for (const PacketPtr& p : severed) {
    if (!condemned_.insert(p->id).second) continue;  // already handled
    if (!node_dead_[p->dst] && topo_.unit_alive(p->dst, p->dst_unit) &&
        p->nack_for == 0) {
      ++stats_.severed_packets;
      nis_[p->dst]->note_severed(p, now);
    } else {
      note_doomed(p, now);
    }
  }

  // Destroy every condemned flit still buffered at a live router, then give
  // unsent packets a fresh route under the new tables.
  for (NodeId i = 0; i < n; ++i)
    if (!node_dead_[i]) routers_[i]->scrub_condemned(now);
  if (routes_changed)
    for (NodeId i = 0; i < n; ++i)
      if (!node_dead_[i]) routers_[i]->reset_unsent_vcs(now);

  // Source-side purges: queued/active sends that can no longer deliver.
  for (NodeId i = 0; i < n; ++i)
    if (!node_dead_[i]) nis_[i]->on_topology_change(now);
}

// --- checkpoint/restore -----------------------------------------------------

void Network::save_state(snap::Writer& w, PacketTable& t) const {
  topo_.save_state(w);
  w.b(degraded_);
  w.u64(node_dead_.size());
  for (const bool d : node_dead_) w.b(d);

  const auto save_id_set = [&](const std::unordered_set<PacketId>& s) {
    std::vector<PacketId> ids(s.begin(), s.end());
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (const PacketId id : ids) w.u64(id);
  };
  save_id_set(condemned_);
  save_id_set(resolved_);

  for (const auto& r : routers_) r->save_state(w, t);
  for (const auto& ni : nis_) ni->save_state(w, t);
  for (const auto& ext : extensions_) ext->save_state(w, t);

  w.u64(flit_links_.size());
  for (const auto& l : flit_links_) save_flit_link(w, t, *l);
  w.u64(credit_links_.size());
  for (const auto& l : credit_links_) save_credit_link(w, *l);
}

void Network::restore_state(snap::Reader& r, const PacketTable& t) {
  topo_.restore_state(r);
  degraded_ = r.b();
  if (r.u64() != node_dead_.size())
    throw snap::SnapshotError("snapshot: network geometry mismatch");
  for (std::size_t i = 0; i < node_dead_.size(); ++i) node_dead_[i] = r.b();

  const auto load_id_set = [&](std::unordered_set<PacketId>& s) {
    s.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) s.insert(r.u64());
  };
  load_id_set(condemned_);
  load_id_set(resolved_);

  for (const auto& rt : routers_) rt->restore_state(r, t);
  for (const auto& ni : nis_) ni->restore_state(r, t);
  for (const auto& ext : extensions_) ext->restore_state(r, t);

  if (r.u64() != flit_links_.size())
    throw snap::SnapshotError("snapshot: network link-count mismatch");
  for (const auto& l : flit_links_) load_flit_link(r, t, *l);
  if (r.u64() != credit_links_.size())
    throw snap::SnapshotError("snapshot: network link-count mismatch");
  for (const auto& l : credit_links_) load_credit_link(r, *l);

  // Re-apply the structural wiring effects of every kill recorded in the
  // restored topology: this process was constructed fully connected, but
  // the saved one had the dead wires severed.
  const std::uint32_t n = mesh_.num_nodes();
  for (NodeId i = 0; i < n; ++i) {
    for (Port dir : {Port::North, Port::South, Port::East, Port::West}) {
      if (mesh_.neighbor(i, dir) == kInvalidNode) continue;
      if (!topo_.link_alive(i, dir)) routers_[i]->disconnect_port(dir);
    }
    if (node_dead_[i]) {
      routers_[i]->disconnect_port(Port::Local);
      nis_[i]->disconnect();
    }
  }
}

}  // namespace disco::noc
