#include "noc/network.h"

namespace disco::noc {
namespace {

Port opposite(Port p) {
  switch (p) {
    case Port::North: return Port::South;
    case Port::South: return Port::North;
    case Port::East: return Port::West;
    case Port::West: return Port::East;
    case Port::Local: return Port::Local;
  }
  return Port::Local;
}

}  // namespace

Network::Network(const NocConfig& cfg, NiPolicy ni_policy, NocStats& stats,
                 const ExtensionFactory& make_extension)
    : mesh_{cfg.mesh_cols, cfg.mesh_rows}, cfg_(cfg), stats_(stats) {
  const std::uint32_t n = mesh_.num_nodes();
  routers_.reserve(n);
  nis_.reserve(n);
  for (NodeId node = 0; node < n; ++node) {
    routers_.push_back(std::make_unique<Router>(node, mesh_, cfg_, stats_));
    nis_.push_back(std::make_unique<NetworkInterface>(node, cfg_, ni_policy, stats_));
  }

  // Inter-router wiring: one flit link + one (reverse) credit link per
  // directed neighbour edge. Create each once, from the sender's side.
  for (NodeId node = 0; node < n; ++node) {
    for (Port dir : {Port::North, Port::South, Port::East, Port::West}) {
      const NodeId nb = mesh_.neighbor(node, dir);
      if (nb == kInvalidNode) continue;
      auto flit = std::make_unique<FlitLink>();
      auto credit = std::make_unique<CreditLink>();
      routers_[node]->connect_out_flit(dir, flit.get());
      routers_[nb]->connect_in_flit(opposite(dir), flit.get());
      routers_[nb]->connect_out_credit(opposite(dir), credit.get());
      routers_[node]->connect_in_credit(dir, credit.get());
      flit_links_.push_back(std::move(flit));
      credit_links_.push_back(std::move(credit));
    }

    // NI <-> router local port.
    auto inj = std::make_unique<FlitLink>();
    auto ej = std::make_unique<FlitLink>();
    auto inj_credit = std::make_unique<CreditLink>();
    nis_[node]->connect_to_router(inj.get());
    routers_[node]->connect_in_flit(Port::Local, inj.get());
    routers_[node]->connect_out_flit(Port::Local, ej.get());
    nis_[node]->connect_from_router(ej.get());
    routers_[node]->connect_out_credit(Port::Local, inj_credit.get());
    nis_[node]->connect_credits(inj_credit.get());
    flit_links_.push_back(std::move(inj));
    flit_links_.push_back(std::move(ej));
    credit_links_.push_back(std::move(inj_credit));
  }

  if (make_extension) {
    extensions_.reserve(n);
    for (NodeId node = 0; node < n; ++node) {
      extensions_.push_back(make_extension(*routers_[node]));
      routers_[node]->set_extension(extensions_.back().get());
    }
  }
}

void Network::tick(Cycle now) {
  // Channels are 1-cycle pipelined, so intra-cycle ordering is immaterial.
  for (auto& r : routers_) r->tick(now);
  for (auto& ni : nis_) ni->tick(now);
}

StallCensus Network::stall_census() const {
  StallCensus c;
  for (const auto& r : routers_) r->stall_census(c);
  for (const auto& l : flit_links_) c.buffered_flits += l->size();
  c.pending_injections = pending_injections();
  return c;
}

bool Network::credits_quiescent() const {
  for (const auto& r : routers_)
    if (!r->credits_quiescent()) return false;
  return true;
}

bool Network::quiescent() const {
  for (const auto& r : routers_)
    if (!r->quiescent()) return false;
  for (const auto& ni : nis_)
    if (!ni->idle()) return false;
  for (const auto& l : flit_links_)
    if (!l->empty()) return false;
  return true;
}

}  // namespace disco::noc
