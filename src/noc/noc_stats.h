// Aggregate NoC statistics and energy-relevant event counters. One instance
// is shared by all routers/NIs of a network; the energy model converts the
// event counts to joules after the run.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/types.h"

namespace disco::noc {

struct NocStats {
  // --- microarchitectural events (energy accounting) ---
  std::uint64_t buffer_writes = 0;
  std::uint64_t buffer_reads = 0;
  std::uint64_t crossbar_traversals = 0;
  std::uint64_t link_flits = 0;
  std::uint64_t alloc_ops = 0;          ///< VA+SA arbitration operations
  std::uint64_t credits_sent = 0;

  // --- compression events ---
  std::uint64_t inflight_compressions = 0;    ///< completed in-router compressions
  std::uint64_t inflight_decompressions = 0;  ///< completed in-router decompressions
  std::uint64_t source_compressions = 0;      ///< DISCO source-queue (local-port) compressions
  std::uint64_t compression_aborts = 0;       ///< shadow departed mid-compression
  std::uint64_t decompression_aborts = 0;     ///< shadow departed mid-decompression
  std::uint64_t engine_starts = 0;
  std::uint64_t ni_compressions = 0;          ///< NI-side (CNC/Ideal) compressions
  std::uint64_t ni_decompressions = 0;        ///< NI-side decompressions
  std::uint64_t exposed_decomp_cycles = 0;    ///< de/comp latency on the critical path at NIs
  std::uint64_t exposed_comp_cycles = 0;
  std::uint64_t hidden_decomp_ops = 0;        ///< decompressions fully overlapped with queuing

  // --- integrity / recovery (fault-injection mode) ---
  std::uint64_t crc_checks = 0;               ///< end-to-end verifications at ejecting NIs
  std::uint64_t corruptions_detected = 0;     ///< decode failure or CRC mismatch at an NI
  std::uint64_t silent_corruptions = 0;       ///< oracle-only: decode+CRC passed, data wrong
  std::uint64_t flit_loss_timeouts = 0;       ///< reassembly timeouts (dropped body flit)
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions = 0;          ///< raw clones injected by sources
  std::uint64_t retransmit_deliveries = 0;    ///< parked packets resolved by a clone
  std::uint64_t backoff_cycles = 0;           ///< cycles clones waited in backoff
  std::uint64_t duplicate_flits_dropped = 0;  ///< dedup hits at ejecting NIs
  std::uint64_t duplicate_retransmissions = 0;///< clones arriving after resolution
  std::uint64_t unrecovered_deliveries = 0;   ///< retries exhausted, fallback delivery
  std::uint64_t engine_decode_errors = 0;     ///< DISCO engine decode/CRC failures
  std::uint64_t engines_quarantined = 0;

  // --- permanent (hard) faults + graceful degradation ---
  std::uint64_t links_killed = 0;
  std::uint64_t routers_killed = 0;
  std::uint64_t engines_hard_failed = 0;      ///< whole tiles flipped to NI bypass
  std::uint64_t banks_killed = 0;
  std::uint64_t unreachable_drops = 0;        ///< dropped at the source NI: dst dead/cut off
  std::uint64_t dead_component_drops = 0;     ///< in-flight flits filtered at live routers
  std::uint64_t flits_destroyed = 0;          ///< flits scrubbed out of buffers/links by kills
  std::uint64_t severed_packets = 0;          ///< in-flight packets cut by a kill (recovered end-to-end)
  std::uint64_t reroutes = 0;                 ///< RC decisions diverging from XY (degraded routing)
  std::uint64_t bypass_retransmits = 0;       ///< compressed arrivals NACKed raw by a bypassed NI
  std::uint64_t synth_completions = 0;        ///< protocol responses synthesized for dead components

  // --- traffic / latency ---
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t flits_injected = 0;
  std::uint64_t sa_idle_losses = 0;  ///< packet-cycles spent losing allocation
  Accumulator packet_latency[kNumVNets];  ///< inject->eject per vnet
  Histogram queueing_cycles;              ///< per-packet idle cycles

  double avg_packet_latency() const {
    double sum = 0;
    std::uint64_t n = 0;
    for (const auto& acc : packet_latency) {
      sum += acc.sum();
      n += acc.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  }
};

}  // namespace disco::noc
