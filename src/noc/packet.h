// NoC packet and flit model. A packet is the unit of protocol transfer
// (request / response / coherence message); it is serialized into 8-byte
// flits for transmission. Data-bearing packets carry the ground-truth 64B
// block plus, when compressed, the actual encoded bytes — so every
// in-network de/compression is a real, checkable transformation.
//
// Flit accounting: the head flit carries routing info plus up to 8B of
// payload, so an uncompressed data packet is 8 flits (fits an 8-flit VC,
// Table 2) and a control packet is 1 flit.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "compress/algorithm.h"

namespace disco::noc {

using PacketId = std::uint64_t;

struct Packet {
  PacketId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  UnitKind src_unit = UnitKind::Core;
  UnitKind dst_unit = UnitKind::Core;
  VNet vnet = VNet::Request;

  /// Opaque protocol message id (cache layer defines the enum) and address.
  std::uint8_t proto_msg = 0;
  Addr addr = 0;

  bool has_data = false;
  bool compressible = false;  ///< response-class data packet (section 3.3C)
  bool critical = false;      ///< read request/response: scheduling priority
  bool comp_failed = false;   ///< a compression attempt found the block incompressible
  bool was_compressed = false;  ///< travelled compressed at some point (stats)
  bool from_dram = false;  ///< data grant whose fill required a DRAM access
  /// Decompressed by a router near the destination (Eq. 2): the arbitrator
  /// must not feed it back to a compressor, or the hidden latency would be
  /// re-exposed at the consumer NI.
  bool decompressed_in_network = false;

  /// Ground-truth uncompressed payload (valid when has_data).
  BlockBytes data{};
  /// Wire form when travelling compressed.
  std::optional<compress::Encoded> encoded;

  // --- integrity / recovery (fault-injection mode only) ---
  /// End-to-end checksum of `data`, computed at the injecting NI.
  std::uint32_t payload_crc = 0;
  bool crc_valid = false;
  /// Retry ordinal of a retransmitted clone (0 = original transmission).
  std::uint32_t retry = 0;
  /// Nonzero: this packet is a raw retransmission of the given original id.
  PacketId retransmit_of = 0;
  /// Nonzero: this is a NACK control packet for the given corrupted id.
  PacketId nack_for = 0;
  /// NACK only: the corrupted packet (models the source's retransmit buffer).
  std::shared_ptr<Packet> nack_ref;

  // --- degraded routing (hard-fault mode only) ---
  /// Up*/down* phase carried between hops: 0 = may still climb toward the
  /// spanning-tree root, 1 = descending only. Reset whenever route_epoch
  /// falls behind the live topology's epoch.
  std::uint8_t route_phase = 0;
  /// Topology epoch the phase belongs to (see Topology::epoch()).
  std::uint32_t route_epoch = 0;

  // --- timing bookkeeping (set by NIs / system) ---
  Cycle created = 0;
  Cycle injected = 0;
  Cycle ejected = 0;
  std::uint32_t hops = 0;
  /// Cycles spent losing SA (diagnostics). 64-bit: long-lived packets on a
  /// saturated network accumulate these across the whole run.
  std::uint64_t idle_cycles = 0;

  bool compressed() const { return encoded.has_value(); }

  std::size_t payload_bytes() const {
    if (!has_data) return 0;
    return compressed() ? encoded->size() : kBlockBytes;
  }

  /// Head flit + additional body flits; head carries the first 8B of payload.
  std::uint32_t flit_count() const {
    const std::size_t p = payload_bytes();
    if (p <= kFlitBytes) return 1;
    return 1 + static_cast<std::uint32_t>((p - kFlitBytes + kFlitBytes - 1) / kFlitBytes);
  }

  /// Apply a compression result (in-network or at an NI).
  void apply_compression(compress::Encoded enc) {
    assert(has_data && !compressed());
    encoded = std::move(enc);
    was_compressed = true;
  }

  /// Apply decompression: verifies losslessness against the ground truth.
  void apply_decompression(const compress::Algorithm& algo) {
    assert(has_data && compressed());
    [[maybe_unused]] const BlockBytes out = algo.decompress(
        std::span<const std::uint8_t>(encoded->bytes));
    assert(out == data && "lossy de/compression in flight");
    encoded.reset();
  }
};

using PacketPtr = std::shared_ptr<Packet>;

/// Callback invoked when a packet is discovered to be undeliverable under
/// the live topology (destination dead or cut off). The system layer uses
/// it to keep the cache protocol live by synthesizing completions.
using DoomedPacketFn = std::function<void(const PacketPtr&, Cycle)>;

/// A flit token referencing its parent packet. Rebuilt in place when an
/// in-network de/compression changes the packet's flit count.
struct Flit {
  PacketPtr pkt;
  std::uint32_t seq = 0;
  std::uint8_t vc_tag = 0;  ///< downstream VC assigned by the upstream VA
  Cycle arrival = 0;  ///< cycle this flit was written into the current buffer

  bool is_head() const { return seq == 0; }
  bool is_tail() const { return seq + 1 == pkt->flit_count(); }
};

}  // namespace disco::noc
