// Virtual-channel input buffer state. Each input port of a router has
// num_vcs of these; a VC holds flits of queued packets (wormhole: the flits
// of the packet at the head are contiguous at the front).
#pragma once

#include <cstdint>
#include <deque>

#include "noc/packet.h"
#include "noc/routing.h"

namespace disco::noc {

struct VcId {
  Port port = Port::Local;
  std::uint8_t vc = 0;

  bool operator==(const VcId&) const = default;
};

enum class VcStage : std::uint8_t {
  Idle,     ///< no packet (or head not yet seen)
  VcAlloc,  ///< route computed, waiting for a downstream VC
  Active,   ///< downstream VC granted, competing for the switch
};

class VirtualChannel {
 public:
  std::deque<Flit> buffer;
  VcStage stage = VcStage::Idle;
  Port out_port = Port::Local;
  std::uint8_t out_vc = 0;
  std::uint32_t sent_flits = 0;   ///< flits of the head packet already switched
  Cycle head_arrival = 0;         ///< arrival cycle of the head packet's head flit
  std::uint32_t credit_debt = 0;  ///< credits to swallow after an in-place expansion
  /// The packet currently streaming out of this VC (set while sent_flits > 0).
  /// Needed by hard-fault kill scans: a mid-wormhole VC may have an empty
  /// buffer while its packet's tail is still upstream.
  PacketPtr active_pkt;

  /// DISCO shadow-packet lock: head packet is copied into a compression
  /// engine; the copy in this buffer is the shadow (paper section 3.2 step 3).
  bool engine_busy = false;
  /// Set by the engine in blocking mode: the shadow may not be scheduled
  /// (shadow invalid bit held low until the operation completes).
  bool sa_inhibit = false;

  PacketPtr head_packet() const {
    return buffer.empty() ? nullptr : buffer.front().pkt;
  }

  /// Number of contiguous front flits belonging to the head packet.
  std::uint32_t buffered_flits_of_head() const {
    if (buffer.empty()) return 0;
    const Packet* pkt = buffer.front().pkt.get();
    std::uint32_t n = 0;
    for (const Flit& f : buffer) {
      if (f.pkt.get() != pkt) break;
      ++n;
    }
    return n;
  }

  /// True when every flit of the head packet sits in this buffer and none
  /// has departed — the precondition for whole-packet de/compression.
  bool whole_packet_resident() const {
    const PacketPtr pkt = head_packet();
    return pkt && sent_flits == 0 && buffered_flits_of_head() == pkt->flit_count();
  }
};

/// Scheduling priority classes (paper section 3.3B). Lower value = higher
/// priority. Read-critical packets first; compressible-but-uncompressed
/// packets last so they idle (and get compressed) more often.
inline int priority_class(const Packet& pkt, bool deprioritize_compressible) {
  if (deprioritize_compressible && pkt.compressible && !pkt.compressed() &&
      pkt.has_data) {
    return 2;
  }
  return pkt.critical ? 0 : 1;
}

}  // namespace disco::noc
