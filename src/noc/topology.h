// Live-topology model for permanent (hard) faults: which routers, links,
// DISCO engines and L2 banks are still alive, which node pairs can still
// reach each other, and how to route around the holes.
//
// Routing policy:
//   - While no router or link has died ("routing-healthy"), route() is
//     byte-for-byte the XY function the routers always used, so fault-free
//     runs reproduce every golden trace exactly.
//   - After the first router/link death the mesh routes by up*/down* over a
//     BFS spanning tree per connected component: every live edge is oriented
//     "up" toward the (lower-depth, lower-id) endpoint, a legal path climbs
//     zero or more up-edges then descends zero or more down-edges, and no
//     cyclic channel dependency can form — deadlock freedom without virtual
//     channels dedicated to escape routing.
//
// The per-destination next-hop tables are computed over the product graph
// (node, phase) where phase 0 = may still climb, phase 1 = descending only.
// A packet carries its phase (Packet::route_phase) between hops; the table
// entry both picks the output port and advances the phase. Tables are
// rebuilt on every topology epoch (router/link kill); engine and bank kills
// leave routing untouched. All tie-breaks are deterministic ((distance,
// port order N<S<E<W)), so schedules replay bit-exactly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/snapshot.h"
#include "common/types.h"
#include "noc/routing.h"

namespace disco::noc {

/// Sentinel next-hop table entry: no legal route exists.
inline constexpr std::uint8_t kNoRoute = 255;

inline Port opposite_port(Port p) {
  switch (p) {
    case Port::North: return Port::South;
    case Port::South: return Port::North;
    case Port::East: return Port::West;
    case Port::West: return Port::East;
    case Port::Local: return Port::Local;
  }
  return Port::Local;
}

class Topology {
 public:
  explicit Topology(const MeshShape& mesh);

  const MeshShape& mesh() const { return mesh_; }

  bool router_alive(NodeId n) const { return router_alive_[n]; }
  bool engine_alive(NodeId n) const { return engine_alive_[n]; }
  bool bank_alive(NodeId n) const { return bank_alive_[n]; }
  /// Directed edge leaving `n` through `dir` (kept symmetric with the
  /// reverse edge; a link kill severs both directions).
  bool link_alive(NodeId n, Port dir) const;

  /// True until the first router or link death; the routers take the exact
  /// XY fast path while this holds, so healthy runs stay byte-identical.
  bool routing_healthy() const { return routing_healthy_; }

  /// Bumped on every router/link kill; packets whose route_epoch differs
  /// restart their up*/down* phase at the next route computation.
  std::uint32_t epoch() const { return epoch_; }

  /// Kill operations. Each returns false (and changes nothing) when the
  /// target is already dead or, for links, leads off the mesh edge. A
  /// router kill also takes the tile's engine and bank down.
  bool kill_router(NodeId n);
  bool kill_link(NodeId n, Port dir);
  bool kill_engine(NodeId n);
  bool kill_bank(NodeId n);

  /// True when live routers `a` and `b` are in the same connected component
  /// of the live mesh (a node reaches itself iff its router is alive).
  bool reachable(NodeId a, NodeId b) const;

  /// Can a packet addressed to (n, unit) still be consumed there?
  bool unit_alive(NodeId n, UnitKind unit) const {
    if (!router_alive_[n]) return false;
    return unit != UnitKind::L2Bank || bank_alive_[n];
  }

  /// Next output port from `here` toward `dst`, advancing the caller's
  /// up*/down* phase in place. Exactly xy_route() while routing_healthy().
  /// Returns Port::Local for here == dst; asserts a route exists otherwise
  /// (callers must check reachable() first).
  Port route(NodeId here, NodeId dst, std::uint8_t& phase) const;

  /// Total kills applied so far, by class.
  std::uint32_t dead_routers() const { return dead_routers_; }
  std::uint32_t dead_links() const { return dead_links_; }

  /// Checkpoint/restore: the alive flags + epoch are the primary state; the
  /// component map and next-hop tables are recomputed on restore (they are a
  /// pure function of the alive sets, with deterministic tie-breaks).
  void save_state(snap::Writer& w) const;
  void restore_state(snap::Reader& r);

 private:
  std::size_t pair_index(NodeId here, NodeId dst) const {
    return static_cast<std::size_t>(here) * mesh_.num_nodes() + dst;
  }
  void recompute();

  MeshShape mesh_;
  std::vector<bool> router_alive_;
  std::vector<bool> engine_alive_;
  std::vector<bool> bank_alive_;
  /// Directed liveness per (node, N/S/E/W); symmetric by construction.
  std::vector<std::array<bool, 4>> link_alive_;

  bool routing_healthy_ = true;
  std::uint32_t epoch_ = 0;
  std::uint32_t dead_routers_ = 0;
  std::uint32_t dead_links_ = 0;

  /// Connected-component id per node (dead routers get kInvalidComp).
  std::vector<std::uint32_t> comp_;
  /// Up*/down* next-hop tables, indexed [phase][here * nodes + dst].
  std::array<std::vector<std::uint8_t>, 2> next_port_;
  std::array<std::vector<std::uint8_t>, 2> next_phase_;
};

}  // namespace disco::noc
