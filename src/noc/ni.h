// Network Interface (NI): packetizes protocol messages into flits, injects
// them into the local router port (respecting VC ownership and credits),
// reassembles ejected flits into packets, and applies the per-scheme NI
// compression policy:
//   - CNC:   compress every injected data packet, decompress every ejected one
//   - DISCO: decompress at ejection only if the packet is still compressed
//            and the consumer needs raw data (core L1, DRAM) — the exposed
//            penalty the in-network machinery tries to hide
//   - Ideal: CNC behaviour at zero latency
//
// With a fault injector attached (fault-injection mode), the NI also runs the
// end-to-end integrity layer: it stamps a payload checksum on every injected
// data packet, verifies every ejected one (non-throwing decode + checksum),
// and recovers from corruption or flit loss by NACKing the source, which
// retransmits the block raw with bounded retries and exponential backoff.
// All of it is gated on the injector so runs without one are byte-identical
// to a build that never had this layer.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "common/snapshot.h"
#include "fault/fault.h"
#include "noc/link.h"
#include "noc/noc_stats.h"
#include "noc/topology.h"
#include "noc/vc.h"
#include "trace/trace.h"

namespace disco::noc {

class PacketTable;

/// Endpoint consuming ejected packets (cache controllers, memory controller).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(PacketPtr pkt, Cycle now) = 0;
};

/// Per-scheme NI compression behaviour.
struct NiPolicy {
  const compress::Algorithm* algo = nullptr;
  bool compress_on_inject = false;
  bool decompress_on_eject_all = false;
  bool decompress_for_raw_consumers = false;
  /// DISCO: the router's local input port belongs to a DISCO router, so a
  /// compressible packet stalled at the source (waiting for a VC/credits
  /// behind other traffic) is an idling packet the in-router engine can
  /// compress — its wait time fully hides the compression latency. One
  /// operation per cycle, only after the packet has idled comp_cycles.
  bool compress_when_source_queued = false;
  std::uint32_t comp_cycles = 0;
  std::uint32_t decomp_cycles = 0;
};

class NetworkInterface {
 public:
  NetworkInterface(NodeId node, const NocConfig& cfg, NiPolicy policy, NocStats& stats);

  NodeId node() const { return node_; }

  void connect_to_router(FlitLink* link) { to_router_ = link; }
  void connect_from_router(FlitLink* link) { from_router_ = link; }
  void connect_credits(CreditLink* link) { credits_in_ = link; }

  void register_sink(UnitKind unit, PacketSink* sink) {
    sinks_[static_cast<std::size_t>(unit)] = sink;
  }

  /// Attach the system's fault injector; enables the integrity layer.
  void set_fault_injector(fault::FaultInjector* fi) { injector_ = fi; }

  /// Attach the system tracer (null = probes compile to a pointer check).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  // --- hard-fault support (wired by Network; inert until a kill) ---
  void set_topology(const Topology* t) { topo_ = t; }
  void set_condemned(const std::unordered_set<PacketId>* c) { condemned_ = c; }
  void set_doomed_callback(DoomedPacketFn fn) { doomed_cb_ = std::move(fn); }
  void enter_degraded_mode() { degraded_ = true; }

  /// The tile's compression hardware is permanently dead: stop compressing
  /// here; compressed arrivals that need raw delivery are NACKed for a raw
  /// retransmission instead of decoded locally.
  void set_bypass(Cycle now);
  bool bypassed() const { return bypass_; }

  /// An in-flight packet addressed here was cut apart by a kill: open a
  /// reassembly entry so the loss timeout fires and recovery runs.
  void note_severed(const PacketPtr& pkt, Cycle now);
  /// A kill-time repair path delivered transaction `oid` to the consumer out
  /// of band (system-level orphan resolution): retire any recovery state we
  /// still hold for it so the dead-peer fallback cannot deliver it twice.
  void note_external_completion(PacketId oid);
  /// Topology changed: drop queued/active sends that can no longer be
  /// delivered (destination dead or cut off).
  void on_topology_change(Cycle now);
  /// This NI's tile died: surrender every queued/in-flight protocol packet
  /// so the system layer can synthesize completions. Clears all state.
  void collect_dead_orphans(std::vector<PacketPtr>& out);

  FlitLink* to_router_link() const { return to_router_; }
  FlitLink* from_router_link() const { return from_router_; }
  CreditLink* credit_link() const { return credits_in_; }
  void disconnect() {
    to_router_ = nullptr;
    from_router_ = nullptr;
    credits_in_ = nullptr;
  }

  /// Deterministic id for a protocol packet originating at this node:
  /// (node << 40) | seq, disjoint from the ctrl (bit 63) and clone (bit 62)
  /// id spaces. Node-local so a cell's id sequence depends only on its own
  /// execution, never on concurrent cells — trace streams stay
  /// thread-count invariant (a process-global counter would not be).
  PacketId mint_protocol_id() {
    return (static_cast<PacketId>(node_) << 40) | proto_seq_++;
  }

  /// Queue a packet for injection. Applies the injection-side policy
  /// (possible NI compression latency) before the first flit can leave;
  /// `extra_delay` defers readiness further (retransmission backoff).
  void inject(PacketPtr pkt, Cycle now, Cycle extra_delay = 0);

  void tick(Cycle now);

  bool idle() const;
  std::size_t pending_injections() const;

  /// Checkpoint/restore of all mutable NI state (inject queues, active
  /// sends, credits, reassembly/recovery/dedup tables, id counters, mode
  /// flags). Unordered tables serialize in sorted key order so a save ->
  /// restore -> save round trip is byte-identical.
  void save_state(snap::Writer& w, PacketTable& t) const;
  void restore_state(snap::Reader& r, const PacketTable& t);

 private:
  struct PendingInject {
    PacketPtr pkt;
    Cycle ready_at;
    Cycle queued_at = 0;
  };
  struct ActiveSend {
    PacketPtr pkt;
    std::uint8_t vc = 0;
    std::uint32_t next_seq = 0;
  };
  struct PendingDeliver {
    PacketPtr pkt;
    Cycle deliver_at;
  };
  struct Reassembly {
    PacketPtr pkt;                  ///< fault mode only
    std::uint64_t seen_mask = 0;    ///< fault mode only (flit dedup)
    std::uint32_t have = 0;
    Cycle first = 0;
    bool nacked = false;            ///< a loss timeout already fired
  };
  /// A corrupted or flit-lossy packet awaiting a raw retransmission.
  struct Parked {
    PacketPtr pkt;
    std::uint32_t retries = 0;
    Cycle last_nack = 0;
  };

  bool fault_mode() const { return injector_ != nullptr && injector_->enabled(); }

  void pump_credits(Cycle now);
  void pump_ejection(Cycle now);
  void pump_delivery(Cycle now);
  void pump_injection(Cycle now);
  void pump_source_compression(Cycle now);
  void finish_ejection(PacketPtr pkt, Cycle now);

  // --- integrity / recovery (fault mode only) ---
  void process_ejected_flit(const Flit& f, Cycle now);
  void finish_ejection_fault(PacketPtr pkt, Cycle now);
  void park_and_nack(PacketPtr pkt, Cycle now);
  void send_nack(PacketId oid, Parked& parked, Cycle now);

  // --- hard-fault helpers (degraded mode only) ---
  bool dest_doomed(const Packet& pkt) const;
  bool peer_unreachable(const Packet& pkt) const;
  void drop_doomed(const PacketPtr& pkt, Cycle now);
  void handle_nack(const PacketPtr& nack, Cycle now);
  void scan_recovery(Cycle now);
  void forget_clones_of(PacketId oid);
  PacketId mint_ctrl_id() {
    return (1ULL << 63) | (static_cast<PacketId>(node_) << 40) | ctrl_seq_++;
  }
  PacketId mint_clone_id() {
    return (1ULL << 62) | (static_cast<PacketId>(node_) << 40) | clone_seq_++;
  }

  NodeId node_;
  NocConfig cfg_;
  NiPolicy policy_;
  NocStats& stats_;
  fault::FaultInjector* injector_ = nullptr;
  trace::Tracer* tracer_ = nullptr;

  FlitLink* to_router_ = nullptr;
  FlitLink* from_router_ = nullptr;
  CreditLink* credits_in_ = nullptr;

  std::array<std::deque<PendingInject>, kNumVNets> inject_q_;
  std::array<std::optional<ActiveSend>, kNumVNets> active_;
  std::vector<std::uint32_t> vc_credits_;
  std::vector<bool> vc_taken_;
  std::uint32_t rr_vnet_ = 0;

  std::unordered_map<PacketId, Reassembly> reassembly_;
  std::vector<PendingDeliver> delivery_;
  std::array<PacketSink*, 3> sinks_{};

  // Fault mode: packets whose delivery was blocked pending retransmission,
  // keyed by the *original* packet id (carried through clone chains).
  std::unordered_map<PacketId, Parked> parked_;
  // Fault mode: ids already delivered/resolved here, so late or duplicated
  // flits of the same packet can never re-open reassembly.
  std::unordered_set<PacketId> completed_;
  std::uint32_t ctrl_seq_ = 0;
  std::uint32_t clone_seq_ = 0;
  PacketId proto_seq_ = 1;  ///< id 0 stays "no packet" in trace events

  // Hard-fault state (all inert on the healthy path).
  const Topology* topo_ = nullptr;
  const std::unordered_set<PacketId>* condemned_ = nullptr;
  DoomedPacketFn doomed_cb_;
  bool degraded_ = false;
  bool bypass_ = false;
};

}  // namespace disco::noc
