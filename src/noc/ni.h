// Network Interface (NI): packetizes protocol messages into flits, injects
// them into the local router port (respecting VC ownership and credits),
// reassembles ejected flits into packets, and applies the per-scheme NI
// compression policy:
//   - CNC:   compress every injected data packet, decompress every ejected one
//   - DISCO: decompress at ejection only if the packet is still compressed
//            and the consumer needs raw data (core L1, DRAM) — the exposed
//            penalty the in-network machinery tries to hide
//   - Ideal: CNC behaviour at zero latency
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "noc/link.h"
#include "noc/noc_stats.h"
#include "noc/vc.h"

namespace disco::noc {

/// Endpoint consuming ejected packets (cache controllers, memory controller).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(PacketPtr pkt, Cycle now) = 0;
};

/// Per-scheme NI compression behaviour.
struct NiPolicy {
  const compress::Algorithm* algo = nullptr;
  bool compress_on_inject = false;
  bool decompress_on_eject_all = false;
  bool decompress_for_raw_consumers = false;
  /// DISCO: the router's local input port belongs to a DISCO router, so a
  /// compressible packet stalled at the source (waiting for a VC/credits
  /// behind other traffic) is an idling packet the in-router engine can
  /// compress — its wait time fully hides the compression latency. One
  /// operation per cycle, only after the packet has idled comp_cycles.
  bool compress_when_source_queued = false;
  std::uint32_t comp_cycles = 0;
  std::uint32_t decomp_cycles = 0;
};

class NetworkInterface {
 public:
  NetworkInterface(NodeId node, const NocConfig& cfg, NiPolicy policy, NocStats& stats);

  NodeId node() const { return node_; }

  void connect_to_router(FlitLink* link) { to_router_ = link; }
  void connect_from_router(FlitLink* link) { from_router_ = link; }
  void connect_credits(CreditLink* link) { credits_in_ = link; }

  void register_sink(UnitKind unit, PacketSink* sink) {
    sinks_[static_cast<std::size_t>(unit)] = sink;
  }

  /// Queue a packet for injection. Applies the injection-side policy
  /// (possible NI compression latency) before the first flit can leave.
  void inject(PacketPtr pkt, Cycle now);

  void tick(Cycle now);

  bool idle() const;
  std::size_t pending_injections() const;

 private:
  struct PendingInject {
    PacketPtr pkt;
    Cycle ready_at;
    Cycle queued_at = 0;
  };
  struct ActiveSend {
    PacketPtr pkt;
    std::uint8_t vc = 0;
    std::uint32_t next_seq = 0;
  };
  struct PendingDeliver {
    PacketPtr pkt;
    Cycle deliver_at;
  };

  void pump_credits(Cycle now);
  void pump_ejection(Cycle now);
  void pump_delivery(Cycle now);
  void pump_injection(Cycle now);
  void pump_source_compression(Cycle now);
  void finish_ejection(PacketPtr pkt, Cycle now);

  NodeId node_;
  NocConfig cfg_;
  NiPolicy policy_;
  NocStats& stats_;

  FlitLink* to_router_ = nullptr;
  FlitLink* from_router_ = nullptr;
  CreditLink* credits_in_ = nullptr;

  std::array<std::deque<PendingInject>, kNumVNets> inject_q_;
  std::array<std::optional<ActiveSend>, kNumVNets> active_;
  std::vector<std::uint32_t> vc_credits_;
  std::vector<bool> vc_taken_;
  std::uint32_t rr_vnet_ = 0;

  std::unordered_map<PacketId, std::uint32_t> reassembly_;
  std::vector<PendingDeliver> delivery_;
  std::array<PacketSink*, 3> sinks_{};
};

}  // namespace disco::noc
