// Three-stage virtual-channel wormhole router (Table 2): stage 1 buffer
// write + route computation, stage 2 VC allocation + switch allocation,
// stage 3 switch/link traversal. Credit-based flow control per VC, three
// virtual networks for protocol deadlock freedom, separable round-robin
// allocators with the paper's priority classes.
//
// The router exposes an introspection/extension interface (RouterExtension)
// through which the DISCO unit observes allocation losers, reads the
// credit/occupancy signals of Fig. 3, and swaps a packet's flits in place
// when a de/compression completes.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "common/snapshot.h"
#include "fault/fault.h"
#include "noc/link.h"
#include "noc/noc_stats.h"
#include "noc/routing.h"
#include "noc/topology.h"
#include "noc/vc.h"
#include "trace/trace.h"

namespace disco::noc {

class Router;
class PacketTable;

/// Structural snapshot of why a network might not be making progress, taken
/// by the no-progress watchdog when it trips. Aggregated over all routers
/// (and, at the Network level, NIs) so the failure report can distinguish a
/// credit deadlock (blocked active VCs) from allocation starvation (VCs
/// parked in VcAlloc) from sources that cannot inject at all.
struct StallCensus {
  std::uint64_t buffered_flits = 0;     ///< flits sitting in router input VCs
  std::uint32_t active_vcs = 0;         ///< VCs granted a downstream VC
  std::uint32_t blocked_vcs = 0;        ///< active VCs with zero downstream credits
  std::uint32_t waiting_alloc_vcs = 0;  ///< VCs stuck waiting for a VC grant
  std::uint64_t pending_injections = 0; ///< packets queued at NIs, not yet in-network
};

/// Hook interface for in-router machinery (the DISCO arbitrator + engines).
/// Called by the router at fixed points of its pipeline each cycle.
class RouterExtension {
 public:
  virtual ~RouterExtension() = default;
  /// After VA/SA: `losers` are VCs that requested allocation and lost.
  virtual void after_allocation(Cycle now, const std::vector<VcId>& losers) = 0;
  /// A shadow packet's first flit departed while an engine held its copy.
  virtual void on_shadow_departed(Cycle now, const VcId& vc) = 0;
  /// Advance engines (completions applied here).
  virtual void tick(Cycle now) = 0;
  /// The tile's compression hardware suffered a permanent fault: abort any
  /// in-flight operations and refuse all future work. Default: no hardware
  /// to lose (plain schemes).
  virtual void on_hard_fault(Cycle now) { static_cast<void>(now); }
  /// Checkpoint/restore of extension-private state (DISCO engines,
  /// thresholds). Default: stateless extension.
  virtual void save_state(snap::Writer& w, PacketTable& t) const {
    static_cast<void>(w);
    static_cast<void>(t);
  }
  virtual void restore_state(snap::Reader& r, const PacketTable& t) {
    static_cast<void>(r);
    static_cast<void>(t);
  }
};

class Router {
 public:
  Router(NodeId id, const MeshShape& mesh, const NocConfig& cfg, NocStats& stats);

  NodeId id() const { return id_; }
  const NocConfig& config() const { return cfg_; }
  const MeshShape& mesh() const { return mesh_; }

  /// Wiring (done by Network). Null links mean no neighbour (mesh edge).
  void connect_in_flit(Port p, FlitLink* link) { in_flit_[idx(p)] = link; }
  void connect_out_flit(Port p, FlitLink* link) { out_flit_[idx(p)] = link; }
  void connect_in_credit(Port p, CreditLink* link) { in_credit_[idx(p)] = link; }
  void connect_out_credit(Port p, CreditLink* link) { out_credit_[idx(p)] = link; }

  void set_extension(RouterExtension* ext) { ext_ = ext; }

  /// Attach the system's fault injector (link bit flips / flit drops at ST).
  void set_fault_injector(fault::FaultInjector* fi) { injector_ = fi; }

  /// Attach the system tracer (null = probes compile to a pointer check).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  trace::Tracer* tracer() const { return tracer_; }

  // --- hard-fault support (wired by Network; inert until a kill) ---
  void set_topology(const Topology* t) { topo_ = t; }
  void set_condemned(const std::unordered_set<PacketId>* c) { condemned_ = c; }
  void set_doomed_callback(DoomedPacketFn fn) { doomed_cb_ = std::move(fn); }
  /// Arm the receive-time dead-flit filter (first kill in the system).
  void enter_degraded_mode() { degraded_ = true; }

  FlitLink* out_flit_link(Port p) const { return out_flit_[idx(p)]; }
  FlitLink* in_flit_link(Port p) const { return in_flit_[idx(p)]; }
  CreditLink* out_credit_link(Port p) const { return out_credit_[idx(p)]; }
  CreditLink* in_credit_link(Port p) const { return in_credit_[idx(p)]; }
  /// Sever all four wires of a port (the link died).
  void disconnect_port(Port p);

  /// Mid-wormhole packets whose output link just died (state survives at
  /// this live router but the downstream path is gone).
  void collect_severed(std::vector<PacketPtr>& out) const;
  /// Every distinct packet with flits (or in-flight state) at this router.
  void collect_buffered_packets(std::vector<PacketPtr>& out) const;
  /// Destroy every buffered flit of a condemned packet and reset the
  /// pipeline state of VCs it owned. Returns flits destroyed.
  std::uint64_t scrub_condemned(Cycle now);
  /// Re-route VCs that have not sent a flit yet under the new tables.
  void reset_unsent_vcs(Cycle now);
  /// This router died: destroy all buffered flits, reporting every packet
  /// that had flits or in-flight state here. Returns flits destroyed.
  std::uint64_t drain_dead(std::vector<PacketPtr>& inflight, Cycle now);

  void tick(Cycle now);

  // --- introspection API used by the DISCO unit (Fig. 3 signals) ---
  VirtualChannel& vc(const VcId& v) { return input_[idx(v.port)][v.vc]; }
  const VirtualChannel& vc(const VcId& v) const { return input_[idx(v.port)][v.vc]; }

  /// Remote pressure: occupied flit slots in the downstream router's input
  /// buffers for `out`, estimated from outstanding credits (credit_in).
  std::uint32_t downstream_occupancy(Port out) const;

  /// Local pressure: other input VCs currently routed to the same output
  /// (credit_out / VA state in the paper's confidence counter).
  std::uint32_t competing_vcs(Port out, const VcId& self) const;

  /// Remaining XY hops from this router to `dst` (RC_Hop in Eq. 2).
  std::uint32_t hops_to(NodeId dst) const { return mesh_.hops(id_, dst); }

  /// Rebuild the head packet's flits after its encoding changed (in-place
  /// de/compression). `old_flit_count` is the flit count before the change.
  /// Returns false if the packet is no longer eligible (departed/evicted).
  bool rebuild_head_packet(const VcId& v, std::uint32_t old_flit_count, Cycle now);

  /// Total buffered flits across all input VCs (diagnostics/energy leakage).
  std::uint64_t total_buffered_flits() const;

  /// Accumulate this router's contribution to a stall census (watchdog).
  void stall_census(StallCensus& c) const;

  bool quiescent() const;

  /// Invariant check for drained networks: every non-ejection credit
  /// counter must be back at full buffer depth (no credit was leaked or
  /// double-returned by compression rebuilds), and no VC may still carry
  /// expansion debt.
  bool credits_quiescent() const;

  /// Checkpoint/restore of all mutable router state (VC buffers, credits,
  /// allocation round-robin pointers, degraded flag). Wires/links are
  /// serialized by the owning Network.
  void save_state(snap::Writer& w, PacketTable& t) const;
  void restore_state(snap::Reader& r, const PacketTable& t);

 private:
  static constexpr std::size_t idx(Port p) { return static_cast<std::size_t>(p); }

  void receive_credits(Cycle now);
  void receive_flits(Cycle now);
  void route_compute(Cycle now);
  void vc_allocate(Cycle now);
  void switch_allocate_and_traverse(Cycle now, std::vector<VcId>& losers);
  void send_credit_for_pop(const VcId& v, Cycle now);

  bool sa_eligible(const VirtualChannel& ch, Cycle now) const;

  /// Degraded mode only: true if the arriving flit must be destroyed
  /// (condemned packet, or destination dead/unreachable from here). Returns
  /// the buffer slot's credit upstream.
  bool filter_dead_flit(const Flit& f, std::size_t p, Cycle now);

  NodeId id_;
  MeshShape mesh_;
  NocConfig cfg_;
  NocStats& stats_;

  std::array<std::vector<VirtualChannel>, kNumPorts> input_;
  /// Credits available for each downstream (out port, vc).
  std::array<std::vector<std::uint32_t>, kNumPorts> credits_;
  /// Downstream VC ownership (held between VA grant and tail departure).
  std::array<std::vector<bool>, kNumPorts> out_vc_taken_;

  std::array<FlitLink*, kNumPorts> in_flit_{};
  std::array<FlitLink*, kNumPorts> out_flit_{};
  std::array<CreditLink*, kNumPorts> in_credit_{};
  std::array<CreditLink*, kNumPorts> out_credit_{};

  // Round-robin pointers for fairness.
  std::array<std::uint32_t, kNumPorts> va_rr_{};
  std::array<std::uint32_t, kNumPorts> sa_in_rr_{};
  std::array<std::uint32_t, kNumPorts> sa_out_rr_{};

  RouterExtension* ext_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  std::vector<VcId> losers_scratch_;

  // Hard-fault state (all inert on the healthy path).
  const Topology* topo_ = nullptr;
  const std::unordered_set<PacketId>* condemned_ = nullptr;
  DoomedPacketFn doomed_cb_;
  bool degraded_ = false;
};

}  // namespace disco::noc
