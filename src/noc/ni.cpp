#include "noc/ni.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "noc/snapshot.h"

namespace disco::noc {

NetworkInterface::NetworkInterface(NodeId node, const NocConfig& cfg,
                                   NiPolicy policy, NocStats& stats)
    : node_(node), cfg_(cfg), policy_(policy), stats_(stats) {
  vc_credits_.assign(cfg_.num_vcs(), cfg_.vc_depth_flits);
  vc_taken_.assign(cfg_.num_vcs(), false);
}

void NetworkInterface::inject(PacketPtr pkt, Cycle now, Cycle extra_delay) {
  if (fault_mode() && pkt->has_data && !pkt->crc_valid) {
    pkt->payload_crc = fault::checksum(
        std::span<const std::uint8_t>(pkt->data), injector_->config().crc);
    pkt->crc_valid = true;
  }
  Cycle ready = now + extra_delay;
  bool codec_ok = !bypass_;
  if (degraded_ && topo_ != nullptr && pkt->has_data &&
      !topo_->engine_alive(pkt->dst) &&
      (policy_.decompress_on_eject_all ||
       (policy_.decompress_for_raw_consumers &&
        pkt->dst_unit != UnitKind::L2Bank))) {
    // The destination NI can no longer decode: this block must travel (and
    // stay) raw end to end, so in-network engines must leave it alone too.
    pkt->compressible = false;
    codec_ok = false;
  }
  // Retransmission clones (retransmit_of set) always travel raw.
  if (codec_ok && policy_.compress_on_inject && pkt->has_data &&
      !pkt->compressed() && pkt->retransmit_of == 0) {
    assert(policy_.algo != nullptr);
    compress::Encoded enc = policy_.algo->compress(pkt->data);
    ++stats_.ni_compressions;
    stats_.exposed_comp_cycles += policy_.comp_cycles;
    ready += policy_.comp_cycles;
    if (enc.size() < kBlockBytes) pkt->apply_compression(std::move(enc));
    // Incompressible blocks travel raw; the compression attempt still cost
    // the pipeline latency and energy.
  }
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::NiInject, 0, 0, pkt->id,
                  static_cast<std::int64_t>(pkt->vnet));
  inject_q_[static_cast<std::size_t>(pkt->vnet)].push_back(
      {std::move(pkt), ready, now});
}

void NetworkInterface::tick(Cycle now) {
  pump_credits(now);
  pump_ejection(now);
  pump_delivery(now);
  if (fault_mode()) scan_recovery(now);
  if (policy_.compress_when_source_queued) pump_source_compression(now);
  pump_injection(now);
}

void NetworkInterface::pump_source_compression(Cycle now) {
  if (bypass_) return;  // the tile's compression hardware is dead
  // One engine operation per cycle: find the oldest queued compressible
  // packet whose wait already covers the compression latency.
  PendingInject* best = nullptr;
  for (auto& q : inject_q_) {
    for (auto& entry : q) {
      PacketPtr& pkt = entry.pkt;
      if (!pkt->has_data || !pkt->compressible || pkt->compressed() ||
          pkt->comp_failed) {
        continue;
      }
      if (now < entry.queued_at + policy_.comp_cycles) continue;
      if (best == nullptr || entry.queued_at < best->queued_at) best = &entry;
    }
  }
  if (best == nullptr) return;
  assert(policy_.algo != nullptr);
  compress::Encoded enc = policy_.algo->compress(best->pkt->data);
  ++stats_.source_compressions;
  if (enc.size() < kBlockBytes) {
    best->pkt->apply_compression(std::move(enc));
  } else {
    best->pkt->comp_failed = true;
  }
}

void NetworkInterface::pump_credits(Cycle now) {
  if (credits_in_ == nullptr) return;
  Credit c;
  while (credits_in_->try_pop(now, c)) {
    assert(c.vc < vc_credits_.size());
    ++vc_credits_[c.vc];
    if (tracer_ != nullptr)
      tracer_->emit(now, node_, trace::Event::NiCreditRecv, 0, c.vc, 0, 0);
  }
}

void NetworkInterface::pump_ejection(Cycle now) {
  if (from_router_ == nullptr) return;
  Flit f;
  while (from_router_->try_pop(now, f)) {
    if (tracer_ != nullptr)
      tracer_->emit(now, node_, trace::Event::NiFlitEject, 0, f.vc_tag,
                    f.pkt->id, static_cast<std::int64_t>(f.seq));
    if (fault_mode()) {
      const bool dup = injector_->should_duplicate_flit();
      process_ejected_flit(f, now);
      if (dup) process_ejected_flit(f, now);  // exercises the dedup path
    } else {
      Reassembly& r = reassembly_[f.pkt->id];
      if (++r.have == f.pkt->flit_count()) {
        PacketPtr pkt = f.pkt;
        reassembly_.erase(pkt->id);
        if (tracer_ != nullptr)
          tracer_->emit(now, node_, trace::Event::NiReassembled, 0, 0, pkt->id,
                        static_cast<std::int64_t>(pkt->flit_count()));
        finish_ejection(std::move(pkt), now);
      }
    }
  }
}

void NetworkInterface::process_ejected_flit(const Flit& f, Cycle now) {
  const PacketId id = f.pkt->id;
  if (completed_.count(id) > 0) {
    ++stats_.duplicate_flits_dropped;
    return;
  }
  Reassembly& r = reassembly_[id];
  if (r.pkt == nullptr) {
    r.pkt = f.pkt;
    r.first = now;
  }
  const std::uint64_t bit = 1ULL << (f.seq & 63U);
  if (r.seen_mask & bit) {
    ++stats_.duplicate_flits_dropped;
    return;
  }
  r.seen_mask |= bit;
  ++r.have;
  if (r.have < f.pkt->flit_count()) return;
  PacketPtr pkt = r.pkt;
  reassembly_.erase(id);
  completed_.insert(id);
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::NiReassembled, 0, 0, pkt->id,
                  static_cast<std::int64_t>(pkt->flit_count()));
  finish_ejection_fault(std::move(pkt), now);
}

void NetworkInterface::finish_ejection(PacketPtr pkt, Cycle now) {
  Cycle deliver_at = now;
  if (pkt->compressed()) {
    const bool raw_consumer = pkt->dst_unit != UnitKind::L2Bank;
    const bool must_decompress =
        policy_.decompress_on_eject_all ||
        (policy_.decompress_for_raw_consumers && raw_consumer);
    if (must_decompress) {
      assert(policy_.algo != nullptr);
      pkt->apply_decompression(*policy_.algo);
      ++stats_.ni_decompressions;
      stats_.exposed_decomp_cycles += policy_.decomp_cycles;
      deliver_at += policy_.decomp_cycles;
    }
  } else if (pkt->has_data && pkt->was_compressed &&
             pkt->dst_unit != UnitKind::L2Bank) {
    // A once-compressed packet arriving raw at a consumer: the in-network
    // decompression latency was fully hidden by queuing time.
    ++stats_.hidden_decomp_ops;
  }
  delivery_.push_back({std::move(pkt), deliver_at});
}

void NetworkInterface::finish_ejection_fault(PacketPtr pkt, Cycle now) {
  const FaultConfig& fc = injector_->config();
  if (bypass_ && pkt->has_data && pkt->compressed() &&
      (policy_.decompress_on_eject_all ||
       (policy_.decompress_for_raw_consumers &&
        pkt->dst_unit != UnitKind::L2Bank))) {
    // A compressed block reached a consumer whose decoder is dead (it was
    // in flight when the engine failed): ask the source for a raw copy.
    if (pkt->retransmit_of != 0 && parked_.count(pkt->retransmit_of) == 0) {
      ++stats_.duplicate_retransmissions;
      return;
    }
    ++stats_.bypass_retransmits;
    park_and_nack(std::move(pkt), now);
    return;
  }
  if (pkt->has_data) {
    // End-to-end verification: non-throwing decode + payload checksum. The
    // `dec != pkt->data` comparison is the simulator's oracle — a mismatch
    // the checksum failed to catch is a silent corruption.
    ++stats_.crc_checks;
    bool ok = true;
    if (pkt->compressed()) {
      assert(policy_.algo != nullptr);
      const std::optional<BlockBytes> dec = policy_.algo->try_decompress(
          std::span<const std::uint8_t>(pkt->encoded->bytes));
      if (!dec) {
        ok = false;
      } else if (pkt->crc_valid &&
                 fault::checksum(std::span<const std::uint8_t>(*dec), fc.crc) !=
                     pkt->payload_crc) {
        ok = false;
      } else if (*dec != pkt->data) {
        ++stats_.silent_corruptions;
      }
    } else if (pkt->crc_valid &&
               fault::checksum(std::span<const std::uint8_t>(pkt->data),
                               fc.crc) != pkt->payload_crc) {
      ok = false;
    }

    if (!ok) {
      ++stats_.corruptions_detected;
      if (pkt->retransmit_of != 0 && parked_.count(pkt->retransmit_of) == 0) {
        // A corrupted clone for an already-resolved packet: drop it.
        ++stats_.duplicate_retransmissions;
        return;
      }
      park_and_nack(std::move(pkt), now);
      return;
    }
  }

  // Retransmission bookkeeping applies to every packet, not just data-bearing
  // ones: a severed/lost request (GetM, acks, ...) is recovered by the same
  // NACK-clone machinery, and a late second clone of it must be dropped here
  // or the consumer services the transaction twice.
  if (pkt->retransmit_of != 0) {
    // A good clone resolves the parked original (or is a late duplicate).
    const PacketId oid = pkt->retransmit_of;
    if (parked_.erase(oid) == 0) {
      ++stats_.duplicate_retransmissions;
      return;
    }
    reassembly_.erase(oid);
    completed_.insert(oid);
    forget_clones_of(oid);
    ++stats_.retransmit_deliveries;
  } else {
    // A parked original that completed intact after all (spurious loss
    // timeout): deliver it; the clone will arrive as a duplicate.
    parked_.erase(pkt->id);
  }

  // Decompression policy — same timing semantics as the non-fault path, but
  // the decode already happened (and was verified) above.
  Cycle deliver_at = now;
  if (pkt->compressed()) {
    const bool raw_consumer = pkt->dst_unit != UnitKind::L2Bank;
    const bool must_decompress =
        policy_.decompress_on_eject_all ||
        (policy_.decompress_for_raw_consumers && raw_consumer);
    if (must_decompress) {
      pkt->encoded.reset();
      ++stats_.ni_decompressions;
      stats_.exposed_decomp_cycles += policy_.decomp_cycles;
      deliver_at += policy_.decomp_cycles;
    }
  } else if (pkt->has_data && pkt->was_compressed &&
             pkt->dst_unit != UnitKind::L2Bank) {
    ++stats_.hidden_decomp_ops;
  }
  delivery_.push_back({std::move(pkt), deliver_at});
}

void NetworkInterface::park_and_nack(PacketPtr pkt, Cycle now) {
  const PacketId oid = pkt->retransmit_of != 0 ? pkt->retransmit_of : pkt->id;
  auto [it, inserted] = parked_.try_emplace(oid);
  Parked& p = it->second;
  if (inserted) p.pkt = std::move(pkt);
  // A dead or cut-off source can never answer a NACK: leave the entry for
  // scan_recovery, which falls back to a ground-truth delivery immediately
  // instead of burning the whole retry budget against a dead sink.
  if (degraded_ && peer_unreachable(*p.pkt)) return;
  if (p.retries < injector_->config().max_retries) send_nack(oid, p, now);
}

void NetworkInterface::send_nack(PacketId oid, Parked& parked, Cycle now) {
  ++parked.retries;
  parked.last_nack = now;
  auto nack = std::make_shared<Packet>();
  nack->id = mint_ctrl_id();
  nack->src = node_;
  nack->dst = parked.pkt->src;
  nack->src_unit = parked.pkt->dst_unit;
  nack->dst_unit = parked.pkt->src_unit;
  nack->vnet = VNet::Coherence;
  nack->addr = parked.pkt->addr;
  nack->critical = true;
  nack->nack_for = oid;
  nack->nack_ref = parked.pkt;
  nack->retry = parked.retries;
  nack->created = now;
  ++stats_.nacks_sent;
  inject(std::move(nack), now);
}

void NetworkInterface::handle_nack(const PacketPtr& nack, Cycle now) {
  const FaultConfig& fc = injector_->config();
  if (nack->retry > fc.max_retries) return;
  const PacketPtr& ref = nack->nack_ref;
  assert(ref != nullptr && "NACK without a retransmit reference");
  auto clone = std::make_shared<Packet>();
  clone->id = mint_clone_id();
  clone->src = ref->src;
  clone->dst = ref->dst;
  clone->src_unit = ref->src_unit;
  clone->dst_unit = ref->dst_unit;
  clone->vnet = ref->vnet;
  clone->proto_msg = ref->proto_msg;
  clone->addr = ref->addr;
  clone->has_data = ref->has_data;
  clone->compressible = false;  // retransmit raw for maximum robustness
  clone->critical = ref->critical;
  clone->from_dram = ref->from_dram;
  clone->data = ref->data;
  clone->retry = nack->retry;
  clone->retransmit_of = ref->retransmit_of != 0 ? ref->retransmit_of : ref->id;
  clone->created = now;
  const Cycle backoff = static_cast<Cycle>(fc.retry_backoff_base)
                        << (nack->retry - 1);
  stats_.backoff_cycles += backoff;
  ++stats_.retransmissions;
  inject(std::move(clone), now, backoff);
}

void NetworkInterface::scan_recovery(Cycle now) {
  const FaultConfig& fc = injector_->config();
  // Both passes have side effects whose order is observable (ctrl-id minting,
  // delivery_ append order), so they walk the tables in sorted key order:
  // unordered_map iteration order is an implementation detail that must not
  // leak into the simulated schedule (it would also break the snapshot
  // determinism guarantee, since a restored process rebuilds the hash tables
  // with a different internal layout).
  std::vector<PacketId> keys;
  keys.reserve(reassembly_.size());
  for (const auto& [id, r] : reassembly_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  // Loss timeouts: a reassembly that has been waiting longer than any
  // congestion plausibly explains lost a flit in the network.
  for (const PacketId id : keys) {
    const auto it = reassembly_.find(id);
    if (it == reassembly_.end()) continue;
    Reassembly& r = it->second;
    if (r.nacked || r.pkt == nullptr ||
        now - r.first <= fc.reassembly_timeout_cycles) {
      continue;
    }
    if (r.pkt->retransmit_of != 0 && parked_.count(r.pkt->retransmit_of) == 0) {
      // Straggler clone of an already-resolved packet: discard, never
      // re-park (a re-park would eventually deliver the block twice).
      ++stats_.duplicate_retransmissions;
      reassembly_.erase(it);
      continue;
    }
    r.nacked = true;
    ++stats_.flit_loss_timeouts;
    park_and_nack(r.pkt, now);
  }
  // Parked packets: re-NACK periodically; after max_retries, fall back to
  // delivering the ground-truth block so the protocol stays live. Fallback
  // deliveries are the "unrecovered" population of the acceptance criteria.
  keys.clear();
  keys.reserve(parked_.size());
  for (const auto& [id, p] : parked_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  for (const PacketId oid : keys) {
    const auto it = parked_.find(oid);
    if (it == parked_.end()) continue;
    Parked& p = it->second;
    const bool dead_peer = degraded_ && peer_unreachable(*p.pkt);
    if (!dead_peer && now - p.last_nack <= fc.nack_retry_interval) continue;
    if (dead_peer || p.retries >= fc.max_retries) {
      PacketPtr pkt = std::move(p.pkt);
      parked_.erase(it);
      reassembly_.erase(oid);
      completed_.insert(oid);
      forget_clones_of(oid);
      pkt->encoded.reset();
      ++stats_.unrecovered_deliveries;
      delivery_.push_back({std::move(pkt), now});
      continue;
    }
    send_nack(oid, p, now);
  }
}

void NetworkInterface::forget_clones_of(PacketId oid) {
  // Partial reassemblies of other clones of the same packet will never
  // complete usefully; drop them so the NI can go idle. Any of their flits
  // still in flight re-create an entry that the timeout scan discards.
  for (auto it = reassembly_.begin(); it != reassembly_.end();) {
    if (it->second.pkt != nullptr && it->second.pkt->retransmit_of == oid) {
      it = reassembly_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetworkInterface::pump_delivery(Cycle now) {
  for (std::size_t i = 0; i < delivery_.size();) {
    if (delivery_[i].deliver_at > now) {
      ++i;
      continue;
    }
    PacketPtr pkt = std::move(delivery_[i].pkt);
    delivery_[i] = std::move(delivery_.back());
    delivery_.pop_back();

    pkt->ejected = now;
    ++stats_.packets_ejected;
    stats_.packet_latency[static_cast<std::size_t>(pkt->vnet)].add(
        static_cast<double>(now - pkt->injected));
    stats_.queueing_cycles.add(pkt->idle_cycles);
    if (tracer_ != nullptr)
      tracer_->emit(now, node_, trace::Event::NiDeliver, 0, 0, pkt->id,
                    static_cast<std::int64_t>(now - pkt->injected));

    if (pkt->nack_for != 0) {
      // Recovery control packet: consumed by the NI itself.
      handle_nack(pkt, now);
      continue;
    }

    if (degraded_ && topo_ != nullptr &&
        !topo_->unit_alive(node_, pkt->dst_unit)) {
      // The consuming unit died while the packet sat in the delivery queue.
      ++stats_.dead_component_drops;
      if (doomed_cb_) doomed_cb_(pkt, now);
      continue;
    }

    PacketSink* sink = sinks_[static_cast<std::size_t>(pkt->dst_unit)];
    assert(sink != nullptr && "packet delivered to unregistered unit");
    sink->deliver(std::move(pkt), now);
  }
}

void NetworkInterface::pump_injection(Cycle now) {
  // Start new sends: allocate a free VC in the vnet's range for queue heads.
  for (std::size_t vn = 0; vn < kNumVNets; ++vn) {
    if (active_[vn].has_value()) continue;
    auto& q = inject_q_[vn];
    if (degraded_) {
      // Never start a send that provably cannot be delivered: drop at the
      // source instead of hanging the network until the watchdog trips.
      while (!q.empty() && q.front().ready_at <= now &&
             dest_doomed(*q.front().pkt)) {
        drop_doomed(q.front().pkt, now);
        q.pop_front();
      }
    }
    if (q.empty() || q.front().ready_at > now) continue;
    const std::uint32_t lo = static_cast<std::uint32_t>(vn) * cfg_.vcs_per_vnet;
    const std::uint32_t hi = lo + cfg_.vcs_per_vnet;
    for (std::uint32_t v = lo; v < hi; ++v) {
      if (vc_taken_[v]) continue;
      vc_taken_[v] = true;
      active_[vn] = ActiveSend{std::move(q.front().pkt), static_cast<std::uint8_t>(v), 0};
      q.pop_front();
      break;
    }
  }

  // One flit per cycle across all vnets, round-robin.
  if (to_router_ == nullptr) return;
  for (std::size_t i = 0; i < kNumVNets; ++i) {
    const std::size_t vn = (rr_vnet_ + i) % kNumVNets;
    if (!active_[vn].has_value()) continue;
    ActiveSend& send = *active_[vn];
    std::uint32_t needed = 1;
    if (cfg_.flow_control == FlowControl::VirtualCutThrough &&
        send.next_seq == 0) {
      needed = send.pkt->flit_count();
    }
    if (vc_credits_[send.vc] < needed) continue;

    Flit f;
    f.pkt = send.pkt;
    f.seq = send.next_seq;
    f.vc_tag = send.vc;
    if (tracer_ != nullptr)
      tracer_->emit(now, node_, trace::Event::NiFlitInject, 0, send.vc,
                    send.pkt->id, static_cast<std::int64_t>(f.seq));
    to_router_->push(now, std::move(f));
    --vc_credits_[send.vc];
    ++stats_.flits_injected;
    if (send.next_seq == 0) {
      send.pkt->injected = now;
      ++stats_.packets_injected;
    }
    ++send.next_seq;
    if (send.next_seq == send.pkt->flit_count()) {
      vc_taken_[send.vc] = false;
      active_[vn].reset();
    }
    rr_vnet_ = static_cast<std::uint32_t>(vn + 1) % kNumVNets;
    break;
  }
}

bool NetworkInterface::idle() const {
  if (!reassembly_.empty() || !delivery_.empty() || !parked_.empty())
    return false;
  for (const auto& q : inject_q_)
    if (!q.empty()) return false;
  for (const auto& a : active_)
    if (a.has_value()) return false;
  return true;
}

std::size_t NetworkInterface::pending_injections() const {
  std::size_t n = 0;
  for (const auto& q : inject_q_) n += q.size();
  return n;
}

bool NetworkInterface::dest_doomed(const Packet& pkt) const {
  if (topo_ == nullptr) return false;
  return !topo_->unit_alive(pkt.dst, pkt.dst_unit) ||
         !topo_->reachable(node_, pkt.dst);
}

bool NetworkInterface::peer_unreachable(const Packet& pkt) const {
  if (topo_ == nullptr) return false;
  return !topo_->unit_alive(pkt.src, pkt.src_unit) ||
         !topo_->reachable(node_, pkt.src);
}

void NetworkInterface::drop_doomed(const PacketPtr& pkt, Cycle now) {
  ++stats_.unreachable_drops;
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::TopoUnreachable, 0, 0, pkt->id,
                  static_cast<std::int64_t>(pkt->dst));
  if (pkt->nack_for == 0 && doomed_cb_) doomed_cb_(pkt, now);
}

void NetworkInterface::set_bypass(Cycle now) {
  if (bypass_) return;
  bypass_ = true;
  if (tracer_ != nullptr)
    tracer_->emit(now, node_, trace::Event::TopoBypass, 0, 0, 0, 0);
}

void NetworkInterface::note_severed(const PacketPtr& pkt, Cycle now) {
  if (!fault_mode() || pkt->nack_for != 0) return;
  const PacketId oid = pkt->retransmit_of != 0 ? pkt->retransmit_of : pkt->id;
  if (completed_.count(pkt->id) > 0 || completed_.count(oid) > 0) return;
  if (parked_.count(oid) > 0) return;  // recovery already running
  Reassembly& r = reassembly_[pkt->id];
  if (r.pkt == nullptr) {
    r.pkt = pkt;
    r.first = now;
  }
}

void NetworkInterface::note_external_completion(PacketId oid) {
  if (!fault_mode()) return;
  completed_.insert(oid);
  parked_.erase(oid);
  reassembly_.erase(oid);
  forget_clones_of(oid);
}

void NetworkInterface::on_topology_change(Cycle now) {
  if (!degraded_) return;
  for (auto& q : inject_q_) {
    for (auto it = q.begin(); it != q.end();) {
      if (dest_doomed(*it->pkt)) {
        drop_doomed(it->pkt, now);
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Active sends whose packet was condemned or doomed stop mid-stream; the
  // flits already pushed are destroyed by the routers' filters/scrubs.
  for (auto& a : active_) {
    if (!a.has_value()) continue;
    const PacketPtr& pkt = a->pkt;
    const bool cond = condemned_ != nullptr && condemned_->count(pkt->id) > 0;
    const bool doomed = dest_doomed(*pkt);
    if (!cond && !doomed) continue;
    if (doomed && !cond) drop_doomed(pkt, now);
    vc_taken_[a->vc] = false;
    a.reset();
  }
}

void NetworkInterface::collect_dead_orphans(std::vector<PacketPtr>& out) {
  for (auto& q : inject_q_) {
    for (auto& e : q) out.push_back(std::move(e.pkt));
    q.clear();
  }
  for (auto& a : active_) {
    if (a.has_value()) out.push_back(std::move(a->pkt));
    a.reset();
  }
  for (auto& d : delivery_) out.push_back(std::move(d.pkt));
  delivery_.clear();
  // Surrender recovery-table packets in sorted id order: the caller
  // resolves these orphans with further side effects, so hash-table
  // iteration order must not leak into the schedule.
  std::vector<PacketId> keys;
  keys.reserve(reassembly_.size());
  for (const auto& [id, r] : reassembly_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  for (const PacketId id : keys) {
    Reassembly& r = reassembly_.at(id);
    if (r.pkt != nullptr) out.push_back(std::move(r.pkt));
  }
  reassembly_.clear();
  keys.clear();
  keys.reserve(parked_.size());
  for (const auto& [id, p] : parked_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  for (const PacketId id : keys) out.push_back(std::move(parked_.at(id).pkt));
  parked_.clear();
  std::fill(vc_taken_.begin(), vc_taken_.end(), false);
}

void NetworkInterface::save_state(snap::Writer& w, PacketTable& t) const {
  for (const auto& q : inject_q_) {
    w.u64(q.size());
    for (const PendingInject& e : q) {
      t.save_ref(w, e.pkt);
      w.u64(e.ready_at);
      w.u64(e.queued_at);
    }
  }
  for (const auto& a : active_) {
    w.b(a.has_value());
    if (a.has_value()) {
      t.save_ref(w, a->pkt);
      w.u8(a->vc);
      w.u32(a->next_seq);
    }
  }
  w.u64(vc_credits_.size());
  for (const std::uint32_t c : vc_credits_) w.u32(c);
  for (const bool taken : vc_taken_) w.b(taken);
  w.u32(rr_vnet_);

  // Unordered tables serialize in sorted key order so a save -> restore ->
  // save round trip is byte-identical.
  std::vector<PacketId> keys;
  keys.reserve(reassembly_.size());
  for (const auto& [id, r] : reassembly_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const PacketId id : keys) {
    const Reassembly& r = reassembly_.at(id);
    w.u64(id);
    t.save_ref(w, r.pkt);
    w.u64(r.seen_mask);
    w.u32(r.have);
    w.u64(r.first);
    w.b(r.nacked);
  }

  w.u64(delivery_.size());
  for (const PendingDeliver& d : delivery_) {
    t.save_ref(w, d.pkt);
    w.u64(d.deliver_at);
  }

  keys.clear();
  keys.reserve(parked_.size());
  for (const auto& [id, p] : parked_) keys.push_back(id);
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const PacketId id : keys) {
    const Parked& p = parked_.at(id);
    w.u64(id);
    t.save_ref(w, p.pkt);
    w.u32(p.retries);
    w.u64(p.last_nack);
  }

  keys.assign(completed_.begin(), completed_.end());
  std::sort(keys.begin(), keys.end());
  w.u64(keys.size());
  for (const PacketId id : keys) w.u64(id);

  w.u32(ctrl_seq_);
  w.u32(clone_seq_);
  w.u64(proto_seq_);
  w.b(degraded_);
  w.b(bypass_);
}

void NetworkInterface::restore_state(snap::Reader& r, const PacketTable& t) {
  for (auto& q : inject_q_) {
    q.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      PendingInject e;
      e.pkt = t.load_ref(r);
      e.ready_at = r.u64();
      e.queued_at = r.u64();
      q.push_back(std::move(e));
    }
  }
  for (auto& a : active_) {
    a.reset();
    if (r.b()) {
      ActiveSend s;
      s.pkt = t.load_ref(r);
      s.vc = r.u8();
      s.next_seq = r.u32();
      a = std::move(s);
    }
  }
  if (r.u64() != vc_credits_.size())
    throw snap::SnapshotError("snapshot: NI VC geometry mismatch");
  for (std::uint32_t& c : vc_credits_) c = r.u32();
  for (std::size_t i = 0; i < vc_taken_.size(); ++i) vc_taken_[i] = r.b();
  rr_vnet_ = r.u32();

  reassembly_.clear();
  const std::uint64_t n_reasm = r.u64();
  for (std::uint64_t i = 0; i < n_reasm; ++i) {
    const PacketId id = r.u64();
    Reassembly& re = reassembly_[id];
    re.pkt = t.load_ref(r);
    re.seen_mask = r.u64();
    re.have = r.u32();
    re.first = r.u64();
    re.nacked = r.b();
  }

  delivery_.clear();
  const std::uint64_t n_deliv = r.u64();
  for (std::uint64_t i = 0; i < n_deliv; ++i) {
    PendingDeliver d;
    d.pkt = t.load_ref(r);
    d.deliver_at = r.u64();
    delivery_.push_back(std::move(d));
  }

  parked_.clear();
  const std::uint64_t n_parked = r.u64();
  for (std::uint64_t i = 0; i < n_parked; ++i) {
    const PacketId id = r.u64();
    Parked& p = parked_[id];
    p.pkt = t.load_ref(r);
    p.retries = r.u32();
    p.last_nack = r.u64();
  }

  completed_.clear();
  const std::uint64_t n_done = r.u64();
  for (std::uint64_t i = 0; i < n_done; ++i) completed_.insert(r.u64());

  ctrl_seq_ = r.u32();
  clone_seq_ = r.u32();
  proto_seq_ = r.u64();
  degraded_ = r.b();
  bypass_ = r.b();
}

}  // namespace disco::noc
