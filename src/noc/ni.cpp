#include "noc/ni.h"

#include <algorithm>
#include <cassert>

namespace disco::noc {

NetworkInterface::NetworkInterface(NodeId node, const NocConfig& cfg,
                                   NiPolicy policy, NocStats& stats)
    : node_(node), cfg_(cfg), policy_(policy), stats_(stats) {
  vc_credits_.assign(cfg_.num_vcs(), cfg_.vc_depth_flits);
  vc_taken_.assign(cfg_.num_vcs(), false);
}

void NetworkInterface::inject(PacketPtr pkt, Cycle now) {
  Cycle ready = now;
  if (policy_.compress_on_inject && pkt->has_data && !pkt->compressed()) {
    assert(policy_.algo != nullptr);
    compress::Encoded enc = policy_.algo->compress(pkt->data);
    ++stats_.ni_compressions;
    stats_.exposed_comp_cycles += policy_.comp_cycles;
    ready += policy_.comp_cycles;
    if (enc.size() < kBlockBytes) pkt->apply_compression(std::move(enc));
    // Incompressible blocks travel raw; the compression attempt still cost
    // the pipeline latency and energy.
  }
  inject_q_[static_cast<std::size_t>(pkt->vnet)].push_back(
      {std::move(pkt), ready, now});
}

void NetworkInterface::tick(Cycle now) {
  pump_credits(now);
  pump_ejection(now);
  pump_delivery(now);
  if (policy_.compress_when_source_queued) pump_source_compression(now);
  pump_injection(now);
}

void NetworkInterface::pump_source_compression(Cycle now) {
  // One engine operation per cycle: find the oldest queued compressible
  // packet whose wait already covers the compression latency.
  PendingInject* best = nullptr;
  for (auto& q : inject_q_) {
    for (auto& entry : q) {
      PacketPtr& pkt = entry.pkt;
      if (!pkt->has_data || !pkt->compressible || pkt->compressed() ||
          pkt->comp_failed) {
        continue;
      }
      if (now < entry.queued_at + policy_.comp_cycles) continue;
      if (best == nullptr || entry.queued_at < best->queued_at) best = &entry;
    }
  }
  if (best == nullptr) return;
  assert(policy_.algo != nullptr);
  compress::Encoded enc = policy_.algo->compress(best->pkt->data);
  ++stats_.source_compressions;
  if (enc.size() < kBlockBytes) {
    best->pkt->apply_compression(std::move(enc));
  } else {
    best->pkt->comp_failed = true;
  }
}

void NetworkInterface::pump_credits(Cycle now) {
  if (credits_in_ == nullptr) return;
  Credit c;
  while (credits_in_->try_pop(now, c)) {
    assert(c.vc < vc_credits_.size());
    ++vc_credits_[c.vc];
  }
}

void NetworkInterface::pump_ejection(Cycle now) {
  if (from_router_ == nullptr) return;
  Flit f;
  while (from_router_->try_pop(now, f)) {
    const std::uint32_t have = ++reassembly_[f.pkt->id];
    if (have == f.pkt->flit_count()) {
      reassembly_.erase(f.pkt->id);
      finish_ejection(f.pkt, now);
    }
  }
}

void NetworkInterface::finish_ejection(PacketPtr pkt, Cycle now) {
  Cycle deliver_at = now;
  if (pkt->compressed()) {
    const bool raw_consumer = pkt->dst_unit != UnitKind::L2Bank;
    const bool must_decompress =
        policy_.decompress_on_eject_all ||
        (policy_.decompress_for_raw_consumers && raw_consumer);
    if (must_decompress) {
      assert(policy_.algo != nullptr);
      pkt->apply_decompression(*policy_.algo);
      ++stats_.ni_decompressions;
      stats_.exposed_decomp_cycles += policy_.decomp_cycles;
      deliver_at += policy_.decomp_cycles;
    }
  } else if (pkt->has_data && pkt->was_compressed &&
             pkt->dst_unit != UnitKind::L2Bank) {
    // A once-compressed packet arriving raw at a consumer: the in-network
    // decompression latency was fully hidden by queuing time.
    ++stats_.hidden_decomp_ops;
  }
  delivery_.push_back({std::move(pkt), deliver_at});
}

void NetworkInterface::pump_delivery(Cycle now) {
  for (std::size_t i = 0; i < delivery_.size();) {
    if (delivery_[i].deliver_at > now) {
      ++i;
      continue;
    }
    PacketPtr pkt = std::move(delivery_[i].pkt);
    delivery_[i] = std::move(delivery_.back());
    delivery_.pop_back();

    pkt->ejected = now;
    ++stats_.packets_ejected;
    stats_.packet_latency[static_cast<std::size_t>(pkt->vnet)].add(
        static_cast<double>(now - pkt->injected));
    stats_.queueing_cycles.add(pkt->idle_cycles);

    PacketSink* sink = sinks_[static_cast<std::size_t>(pkt->dst_unit)];
    assert(sink != nullptr && "packet delivered to unregistered unit");
    sink->deliver(std::move(pkt), now);
  }
}

void NetworkInterface::pump_injection(Cycle now) {
  // Start new sends: allocate a free VC in the vnet's range for queue heads.
  for (std::size_t vn = 0; vn < kNumVNets; ++vn) {
    if (active_[vn].has_value()) continue;
    auto& q = inject_q_[vn];
    if (q.empty() || q.front().ready_at > now) continue;
    const std::uint32_t lo = static_cast<std::uint32_t>(vn) * cfg_.vcs_per_vnet;
    const std::uint32_t hi = lo + cfg_.vcs_per_vnet;
    for (std::uint32_t v = lo; v < hi; ++v) {
      if (vc_taken_[v]) continue;
      vc_taken_[v] = true;
      active_[vn] = ActiveSend{std::move(q.front().pkt), static_cast<std::uint8_t>(v), 0};
      q.pop_front();
      break;
    }
  }

  // One flit per cycle across all vnets, round-robin.
  if (to_router_ == nullptr) return;
  for (std::size_t i = 0; i < kNumVNets; ++i) {
    const std::size_t vn = (rr_vnet_ + i) % kNumVNets;
    if (!active_[vn].has_value()) continue;
    ActiveSend& send = *active_[vn];
    std::uint32_t needed = 1;
    if (cfg_.flow_control == FlowControl::VirtualCutThrough &&
        send.next_seq == 0) {
      needed = send.pkt->flit_count();
    }
    if (vc_credits_[send.vc] < needed) continue;

    Flit f;
    f.pkt = send.pkt;
    f.seq = send.next_seq;
    f.vc_tag = send.vc;
    to_router_->push(now, std::move(f));
    --vc_credits_[send.vc];
    ++stats_.flits_injected;
    if (send.next_seq == 0) {
      send.pkt->injected = now;
      ++stats_.packets_injected;
    }
    ++send.next_seq;
    if (send.next_seq == send.pkt->flit_count()) {
      vc_taken_[send.vc] = false;
      active_[vn].reset();
    }
    rr_vnet_ = static_cast<std::uint32_t>(vn + 1) % kNumVNets;
    break;
  }
}

bool NetworkInterface::idle() const {
  if (!reassembly_.empty() || !delivery_.empty()) return false;
  for (const auto& q : inject_q_)
    if (!q.empty()) return false;
  for (const auto& a : active_)
    if (a.has_value()) return false;
  return true;
}

std::size_t NetworkInterface::pending_injections() const {
  std::size_t n = 0;
  for (const auto& q : inject_q_) n += q.size();
  return n;
}

}  // namespace disco::noc
