// The mesh network: owns routers, NIs and all inter-node wiring. The DISCO
// in-router machinery is attached through an extension factory so this
// module stays independent of src/disco.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/config.h"
#include "noc/ni.h"
#include "noc/router.h"
#include "noc/topology.h"

namespace disco::noc {

class Network {
 public:
  using ExtensionFactory =
      std::function<std::unique_ptr<RouterExtension>(Router&)>;

  /// `make_extension` may be null (plain routers: Baseline/CC/CNC/Ideal).
  Network(const NocConfig& cfg, NiPolicy ni_policy, NocStats& stats,
          const ExtensionFactory& make_extension = nullptr);

  const MeshShape& mesh() const { return mesh_; }
  const NocConfig& config() const { return cfg_; }

  Router& router(NodeId n) { return *routers_[n]; }
  NetworkInterface& ni(NodeId n) { return *nis_[n]; }

  void register_sink(NodeId n, UnitKind unit, PacketSink* sink) {
    nis_[n]->register_sink(unit, sink);
  }

  void inject(NodeId n, PacketPtr pkt, Cycle now) { nis_[n]->inject(std::move(pkt), now); }

  /// Attach the system's fault injector to every router and NI.
  void set_fault_injector(fault::FaultInjector* fi) {
    for (auto& r : routers_) r->set_fault_injector(fi);
    for (auto& ni : nis_) ni->set_fault_injector(fi);
  }

  /// Attach the system tracer to every router and NI.
  void set_tracer(trace::Tracer* t) {
    tracer_ = t;
    for (auto& r : routers_) r->set_tracer(t);
    for (auto& ni : nis_) ni->set_tracer(t);
  }

  // --- permanent (hard) faults ---
  const Topology& topology() const { return topo_; }
  bool node_dead(NodeId n) const { return node_dead_[n]; }
  RouterExtension* extension(NodeId n) {
    return extensions_.empty() ? nullptr : extensions_[n].get();
  }

  /// System-layer callback for packets that provably cannot be delivered
  /// (used to synthesize protocol completions). Deduplicated per original
  /// packet id, so clone chains resolve exactly once.
  void set_unreachable_handler(DoomedPacketFn h) { unreachable_ = std::move(h); }

  /// Apply one scheduled hard fault. Returns false if the target was
  /// already dead (the fault is a no-op).
  bool apply_hard_fault(const HardFaultEvent& e, Cycle now);
  bool kill_router(NodeId n, Cycle now);
  bool kill_link(NodeId n, Port dir, Cycle now);
  bool kill_engine(NodeId n, Cycle now);
  bool kill_bank(NodeId n, Cycle now);

  /// Structural flit census: flits buffered in routers plus flits in flight
  /// on links (the invariant checker reconciles this against the injected /
  /// ejected event counts every cycle).
  std::uint64_t inflight_flits() const {
    std::uint64_t n = 0;
    for (const auto& r : routers_) n += r->total_buffered_flits();
    for (const auto& l : flit_links_) n += l->size();
    return n;
  }

  /// Packets queued at NIs that have not entered the network yet (watchdog:
  /// distinguishes starved sources from an in-network deadlock).
  std::uint64_t pending_injections() const {
    std::uint64_t n = 0;
    for (const auto& ni : nis_) n += ni->pending_injections();
    return n;
  }

  /// Structural stall snapshot over every router plus the NI inject queues;
  /// link-resident flits are folded into buffered_flits so the census agrees
  /// with inflight_flits(). Taken by the no-progress watchdog when it trips.
  StallCensus stall_census() const;

  void tick(Cycle now);

  /// True when no flit is buffered or in flight anywhere.
  bool quiescent() const;

  /// True when every router's credit counters are back at full depth
  /// (call only when quiescent(); verifies credit conservation across all
  /// in-flight compressions/expansions of the run).
  bool credits_quiescent() const;

  /// Checkpoint/restore of the whole network: topology, routers, NIs,
  /// extensions, every link's in-flight contents, and the hard-fault
  /// bookkeeping. Restore re-applies the structural disconnections implied
  /// by the restored topology (dead routers/links have their wires severed
  /// exactly as the kill path left them).
  void save_state(snap::Writer& w, PacketTable& t) const;
  void restore_state(snap::Reader& r, const PacketTable& t);

 private:
  void note_doomed(const PacketPtr& pkt, Cycle now);
  void enter_degraded();
  bool doomed_from(NodeId at, const Packet& p) const;
  void drain_directed_link(Router& from, Port dir,
                           std::vector<PacketPtr>& severed, Cycle now);
  void sever_undirected_link(NodeId n, Port dir,
                             std::vector<PacketPtr>& severed, Cycle now);
  /// Common kill tail: find severed/doomed in-flight packets, condemn them,
  /// scrub every live router, re-route unsent VCs, purge NI queues.
  void finish_topology_kill(std::vector<PacketPtr> severed, Cycle now,
                            bool routes_changed);

  MeshShape mesh_;
  NocConfig cfg_;
  NocStats& stats_;
  Topology topo_;

  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<NetworkInterface>> nis_;
  std::vector<std::unique_ptr<RouterExtension>> extensions_;
  std::vector<std::unique_ptr<FlitLink>> flit_links_;
  std::vector<std::unique_ptr<CreditLink>> credit_links_;

  // Hard-fault state (all inert on the healthy path).
  trace::Tracer* tracer_ = nullptr;
  DoomedPacketFn unreachable_;
  bool degraded_ = false;
  std::vector<bool> node_dead_;
  /// Packets cut apart by a kill: their remaining flits are destroyed
  /// wherever they surface. Kept for the rest of the run (stragglers can
  /// arrive arbitrarily late through 1-cycle links).
  std::unordered_set<PacketId> condemned_;
  /// Original ids already routed through the unreachable handler.
  std::unordered_set<PacketId> resolved_;
};

}  // namespace disco::noc
