// One-cycle pipelined channels between routers: a flit link (one flit per
// cycle) and a credit link (several credits per cycle are possible when a
// DISCO compression retires buffer slots in bulk). Items pushed at cycle t
// become visible to the consumer at cycle t+1, which makes the simulation
// insensitive to component tick ordering.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.h"
#include "noc/packet.h"

namespace disco::noc {

template <typename T>
class PipelinedChannel {
 public:
  void push(Cycle now, T item) { queue_.push_back({now + 1, std::move(item)}); }

  /// Pop the next item that is visible at `now` (nullptr-like if none).
  bool try_pop(Cycle now, T& out) {
    if (queue_.empty() || queue_.front().ready > now) return false;
    out = std::move(queue_.front().item);
    queue_.pop_front();
    return true;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  /// Destroy everything in flight (hard-fault link/router kill).
  void clear() { queue_.clear(); }

  /// Drain all contents regardless of readiness (hard-fault kill scrub:
  /// the caller condemns the owning packets before destruction).
  std::vector<T> take_all() {
    std::vector<T> out;
    out.reserve(queue_.size());
    for (Entry& e : queue_) out.push_back(std::move(e.item));
    queue_.clear();
    return out;
  }

  /// Checkpoint support: visit every in-flight entry with its absolute
  /// ready cycle, oldest first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : queue_) fn(e.ready, e.item);
  }
  /// Checkpoint support: re-enqueue an entry with its saved ready cycle
  /// (push() would re-add the +1 pipeline delay).
  void restore_push(Cycle ready, T item) {
    queue_.push_back({ready, std::move(item)});
  }

 private:
  struct Entry {
    Cycle ready;
    T item;
  };
  std::deque<Entry> queue_;
};

/// Flit wire: at most one flit per cycle is pushed by the sender (enforced
/// by switch allocation, asserted here in debug builds).
class FlitLink {
 public:
  void push(Cycle now, Flit flit) {
    assert(last_push_ != now + 1 && "two flits on one link in one cycle");
    last_push_ = now + 1;
    chan_.push(now, std::move(flit));
  }
  bool try_pop(Cycle now, Flit& out) { return chan_.try_pop(now, out); }
  bool empty() const { return chan_.empty(); }
  std::size_t size() const { return chan_.size(); }
  void clear() { chan_.clear(); }
  std::vector<Flit> take_all() { return chan_.take_all(); }

  /// Checkpoint support (see PipelinedChannel::for_each/restore_push).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    chan_.for_each(fn);
  }
  void restore_push(Cycle ready, Flit f) { chan_.restore_push(ready, std::move(f)); }
  Cycle last_push() const { return last_push_; }
  void set_last_push(Cycle c) { last_push_ = c; }

 private:
  PipelinedChannel<Flit> chan_;
  Cycle last_push_ = static_cast<Cycle>(-1);
};

/// Credit wire: each event returns one buffer slot of one VC.
struct Credit {
  std::uint8_t vc = 0;
};

using CreditLink = PipelinedChannel<Credit>;

}  // namespace disco::noc
