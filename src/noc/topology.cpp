#include "noc/topology.h"

#include <cassert>
#include <deque>

namespace disco::noc {
namespace {

constexpr std::uint32_t kInvalidComp = 0xFFFFFFFFu;
constexpr Port kDirs[4] = {Port::North, Port::South, Port::East, Port::West};

}  // namespace

Topology::Topology(const MeshShape& mesh) : mesh_(mesh) {
  const std::uint32_t n = mesh_.num_nodes();
  router_alive_.assign(n, true);
  engine_alive_.assign(n, true);
  bank_alive_.assign(n, true);
  link_alive_.assign(n, {true, true, true, true});
  // Mesh-edge "links" do not exist; mark them dead so link_alive() answers
  // uniformly without re-deriving the geometry.
  for (NodeId node = 0; node < n; ++node)
    for (const Port d : kDirs)
      if (mesh_.neighbor(node, d) == kInvalidNode)
        link_alive_[node][static_cast<std::size_t>(d)] = false;
  comp_.assign(n, 0);
}

bool Topology::link_alive(NodeId n, Port dir) const {
  if (dir == Port::Local) return router_alive_[n];
  return link_alive_[n][static_cast<std::size_t>(dir)];
}

bool Topology::kill_router(NodeId n) {
  if (!router_alive_[n]) return false;
  router_alive_[n] = false;
  engine_alive_[n] = false;
  bank_alive_[n] = false;
  for (const Port d : kDirs) {
    const NodeId nb = mesh_.neighbor(n, d);
    if (nb == kInvalidNode) continue;
    link_alive_[n][static_cast<std::size_t>(d)] = false;
    link_alive_[nb][static_cast<std::size_t>(opposite_port(d))] = false;
  }
  ++dead_routers_;
  routing_healthy_ = false;
  ++epoch_;
  recompute();
  return true;
}

bool Topology::kill_link(NodeId n, Port dir) {
  if (dir == Port::Local) return false;
  const NodeId nb = mesh_.neighbor(n, dir);
  if (nb == kInvalidNode) return false;
  if (!link_alive_[n][static_cast<std::size_t>(dir)]) return false;
  link_alive_[n][static_cast<std::size_t>(dir)] = false;
  link_alive_[nb][static_cast<std::size_t>(opposite_port(dir))] = false;
  ++dead_links_;
  routing_healthy_ = false;
  ++epoch_;
  recompute();
  return true;
}

bool Topology::kill_engine(NodeId n) {
  if (!engine_alive_[n]) return false;
  engine_alive_[n] = false;
  return true;
}

bool Topology::kill_bank(NodeId n) {
  if (!bank_alive_[n]) return false;
  bank_alive_[n] = false;
  return true;
}

bool Topology::reachable(NodeId a, NodeId b) const {
  if (!router_alive_[a] || !router_alive_[b]) return false;
  if (routing_healthy_) return true;
  return comp_[a] == comp_[b];
}

Port Topology::route(NodeId here, NodeId dst, std::uint8_t& phase) const {
  if (routing_healthy_) return xy_route(mesh_, here, dst);
  if (here == dst) return Port::Local;
  std::uint8_t p = phase <= 1 ? phase : 0;
  std::uint8_t port = next_port_[p][pair_index(here, dst)];
  if (port == kNoRoute && p == 1) {
    // Should be unreachable: table moves only enter phase 1 when a
    // descending route exists. Fall back to the permissive phase rather
    // than strand the packet (the assert catches it in debug builds).
    assert(false && "phase-1 state with no descending route");
    p = 0;
    port = next_port_[0][pair_index(here, dst)];
  }
  assert(port != kNoRoute && "route() on an unreachable pair");
  phase = next_phase_[p][pair_index(here, dst)];
  return static_cast<Port>(port);
}

void Topology::recompute() {
  const std::uint32_t n = mesh_.num_nodes();

  // Connected components and BFS depth from each component's lowest-id live
  // router (the spanning-tree root).
  comp_.assign(n, kInvalidComp);
  std::vector<std::uint32_t> depth(n, 0);
  std::uint32_t num_comps = 0;
  std::deque<NodeId> queue;
  for (NodeId root = 0; root < n; ++root) {
    if (!router_alive_[root] || comp_[root] != kInvalidComp) continue;
    const std::uint32_t c = num_comps++;
    comp_[root] = c;
    depth[root] = 0;
    queue.clear();
    queue.push_back(root);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (const Port d : kDirs) {
        if (!link_alive_[u][static_cast<std::size_t>(d)]) continue;
        const NodeId v = mesh_.neighbor(u, d);
        if (comp_[v] != kInvalidComp) continue;
        comp_[v] = c;
        depth[v] = depth[u] + 1;
        queue.push_back(v);
      }
    }
  }

  // Up*/down* orientation: the edge endpoint with the lower (depth, id) is
  // "up". A legal path climbs up-edges first, then only descends.
  const auto is_up_move = [&](NodeId u, NodeId v) {
    return depth[v] < depth[u] || (depth[v] == depth[u] && v < u);
  };

  // Per-destination backward BFS over the product graph (node, phase):
  // phase 0 may climb or start descending, phase 1 only descends. dist is
  // the hop count to dst; the next-hop choice follows strictly decreasing
  // dist, so forwarding always terminates.
  const std::size_t states = static_cast<std::size_t>(n) * n;
  for (auto& t : next_port_) t.assign(states, kNoRoute);
  for (auto& t : next_phase_) t.assign(states, 0);

  constexpr std::uint32_t kInf = 0xFFFFFFFFu;
  std::vector<std::uint32_t> dist(2 * static_cast<std::size_t>(n));
  std::deque<std::uint32_t> sq;  // state ids: node * 2 + phase
  for (NodeId dst = 0; dst < n; ++dst) {
    if (!router_alive_[dst]) continue;
    dist.assign(2 * static_cast<std::size_t>(n), kInf);
    sq.clear();
    dist[2 * static_cast<std::size_t>(dst)] = 0;
    dist[2 * static_cast<std::size_t>(dst) + 1] = 0;
    sq.push_back(2 * static_cast<std::uint32_t>(dst));
    sq.push_back(2 * static_cast<std::uint32_t>(dst) + 1);
    while (!sq.empty()) {
      const std::uint32_t s = sq.front();
      sq.pop_front();
      const NodeId v = static_cast<NodeId>(s / 2);
      const std::uint8_t pv = static_cast<std::uint8_t>(s & 1);
      // Predecessors (u, pu) with a forward move (u, pu) -> (v, pv):
      // climbing an up-edge keeps phase 0; taking a down-edge lands in
      // phase 1 from either phase.
      for (const Port d : kDirs) {
        if (!link_alive_[v][static_cast<std::size_t>(d)]) continue;
        const NodeId u = mesh_.neighbor(v, d);
        const bool up_move = is_up_move(u, v);  // the move u -> v
        if (up_move) {
          if (pv != 0) continue;
          const std::size_t su = 2 * static_cast<std::size_t>(u);
          if (dist[su] == kInf) {
            dist[su] = dist[s] + 1;
            sq.push_back(static_cast<std::uint32_t>(su));
          }
        } else {
          if (pv != 1) continue;
          for (std::uint8_t pu = 0; pu <= 1; ++pu) {
            const std::size_t su = 2 * static_cast<std::size_t>(u) + pu;
            if (dist[su] == kInf) {
              dist[su] = dist[s] + 1;
              sq.push_back(static_cast<std::uint32_t>(su));
            }
          }
        }
      }
    }

    // Materialize next hops: first port (N<S<E<W) whose successor state has
    // the minimal distance.
    for (NodeId u = 0; u < n; ++u) {
      if (u == dst || !router_alive_[u] || comp_[u] != comp_[dst]) continue;
      for (std::uint8_t pu = 0; pu <= 1; ++pu) {
        std::uint32_t best = kInf;
        std::uint8_t best_port = kNoRoute;
        std::uint8_t best_phase = 0;
        for (const Port d : kDirs) {
          if (!link_alive_[u][static_cast<std::size_t>(d)]) continue;
          const NodeId v = mesh_.neighbor(u, d);
          const bool up_move = is_up_move(u, v);
          if (up_move && pu != 0) continue;
          const std::uint8_t pv = up_move ? 0 : 1;
          const std::uint32_t dv = dist[2 * static_cast<std::size_t>(v) + pv];
          // Strict improvement only: ties resolve to the first port in
          // N<S<E<W order, deterministically.
          if (dv == kInf || dv + 1 >= best) continue;
          best = dv + 1;
          best_port = static_cast<std::uint8_t>(d);
          best_phase = pv;
        }
        const std::size_t i = pair_index(u, dst);
        next_port_[pu][i] = best_port;
        next_phase_[pu][i] = best_phase;
      }
    }
  }
}

void Topology::save_state(snap::Writer& w) const {
  const auto save_flags = [&](const std::vector<bool>& v) {
    w.u64(v.size());
    for (const bool f : v) w.b(f);
  };
  save_flags(router_alive_);
  save_flags(engine_alive_);
  save_flags(bank_alive_);
  w.u64(link_alive_.size());
  for (const auto& dirs : link_alive_)
    for (const bool f : dirs) w.b(f);
  w.b(routing_healthy_);
  w.u32(epoch_);
  w.u32(dead_routers_);
  w.u32(dead_links_);
}

void Topology::restore_state(snap::Reader& r) {
  const auto load_flags = [&](std::vector<bool>& v) {
    if (r.u64() != v.size())
      throw snap::SnapshotError("snapshot: topology geometry mismatch");
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = r.b();
  };
  load_flags(router_alive_);
  load_flags(engine_alive_);
  load_flags(bank_alive_);
  if (r.u64() != link_alive_.size())
    throw snap::SnapshotError("snapshot: topology geometry mismatch");
  for (auto& dirs : link_alive_)
    for (bool& f : dirs) f = r.b();
  routing_healthy_ = r.b();
  epoch_ = r.u32();
  dead_routers_ = r.u32();
  dead_links_ = r.u32();
  recompute();
}

}  // namespace disco::noc
