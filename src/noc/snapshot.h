// NoC-layer snapshot helpers: packet-graph interning plus serializers for
// the value types (Encoded, Flit, VirtualChannel, links, NocStats) shared by
// every component that buffers packets.
//
// Packets are a shared object graph: one PacketPtr may be referenced from a
// VC buffer, a link, a DISCO engine and an NI recovery table at once, and a
// NACK packet holds a recursive nack_ref to the packet it covers. The
// PacketTable interns each distinct Packet* once; references serialize as a
// u32 index (0 = null). On restore the table allocates every packet first
// and then fills fields, so recursive references resolve in one pass and
// shared ownership is reconstructed exactly.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/snapshot.h"
#include "noc/link.h"
#include "noc/noc_stats.h"
#include "noc/packet.h"
#include "noc/vc.h"

namespace disco::noc {

class PacketTable {
 public:
  // --- save side ---
  /// Intern `p` (registering it for the table) and write its u32 reference.
  void save_ref(snap::Writer& w, const PacketPtr& p) { w.u32(intern(p)); }
  /// Serialize the table itself. Call after every component body has been
  /// written (interning is closed under nack_ref via a worklist).
  void save_table(snap::Writer& w);

  // --- restore side ---
  /// Deserialize the table: allocate-then-fill, so recursive references
  /// resolve. Call before restoring any component body.
  void load_table(snap::Reader& r);
  /// Read a u32 reference and resolve it against the loaded table.
  PacketPtr load_ref(snap::Reader& r) const;

  std::size_t size() const { return pkts_.size(); }

 private:
  std::uint32_t intern(const PacketPtr& p);
  std::unordered_map<const Packet*, std::uint32_t> index_;
  std::vector<PacketPtr> pkts_;
};

// Value-type serializers (all fields, declaration order, lossless).
void save_encoded(snap::Writer& w, const compress::Encoded& e);
compress::Encoded load_encoded(snap::Reader& r);
void save_opt_encoded(snap::Writer& w, const std::optional<compress::Encoded>& e);
std::optional<compress::Encoded> load_opt_encoded(snap::Reader& r);

void save_flit(snap::Writer& w, PacketTable& t, const Flit& f);
Flit load_flit(snap::Reader& r, const PacketTable& t);

void save_vc(snap::Writer& w, PacketTable& t, const VirtualChannel& vc);
void load_vc(snap::Reader& r, const PacketTable& t, VirtualChannel& vc);

void save_flit_link(snap::Writer& w, PacketTable& t, const FlitLink& l);
void load_flit_link(snap::Reader& r, const PacketTable& t, FlitLink& l);
void save_credit_link(snap::Writer& w, const CreditLink& l);
void load_credit_link(snap::Reader& r, CreditLink& l);

void save_noc_stats(snap::Writer& w, const NocStats& s);
void load_noc_stats(snap::Reader& r, NocStats& s);

}  // namespace disco::noc
