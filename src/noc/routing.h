// Mesh geometry and dimension-ordered (XY) routing.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/types.h"

namespace disco::noc {

/// Router port directions. Local is the NI-facing port.
enum class Port : std::uint8_t { North = 0, South = 1, East = 2, West = 3, Local = 4 };
inline constexpr std::size_t kNumPorts = 5;

inline const char* to_string(Port p) {
  switch (p) {
    case Port::North: return "N";
    case Port::South: return "S";
    case Port::East: return "E";
    case Port::West: return "W";
    case Port::Local: return "L";
  }
  return "?";
}

struct MeshShape {
  std::uint32_t cols = 4;
  std::uint32_t rows = 4;

  std::uint32_t num_nodes() const { return cols * rows; }
  std::uint32_t x_of(NodeId n) const { return n % cols; }
  std::uint32_t y_of(NodeId n) const { return n / cols; }
  NodeId node_at(std::uint32_t x, std::uint32_t y) const {
    return static_cast<NodeId>(y * cols + x);
  }
  bool valid(NodeId n) const { return n < num_nodes(); }

  /// Manhattan hop distance.
  std::uint32_t hops(NodeId a, NodeId b) const {
    const int dx = static_cast<int>(x_of(a)) - static_cast<int>(x_of(b));
    const int dy = static_cast<int>(y_of(a)) - static_cast<int>(y_of(b));
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
  }

  /// Neighbour in a direction, or kInvalidNode at the mesh edge.
  NodeId neighbor(NodeId n, Port dir) const {
    const std::uint32_t x = x_of(n), y = y_of(n);
    switch (dir) {
      case Port::North: return y > 0 ? node_at(x, y - 1) : kInvalidNode;
      case Port::South: return y + 1 < rows ? node_at(x, y + 1) : kInvalidNode;
      case Port::East: return x + 1 < cols ? node_at(x + 1, y) : kInvalidNode;
      case Port::West: return x > 0 ? node_at(x - 1, y) : kInvalidNode;
      case Port::Local: return n;
    }
    return kInvalidNode;
  }
};

/// Deterministic XY routing: traverse X fully, then Y (deadlock-free on a
/// mesh with this turn restriction).
inline Port xy_route(const MeshShape& mesh, NodeId here, NodeId dst) {
  const std::uint32_t hx = mesh.x_of(here), hy = mesh.y_of(here);
  const std::uint32_t dx = mesh.x_of(dst), dy = mesh.y_of(dst);
  if (dx > hx) return Port::East;
  if (dx < hx) return Port::West;
  if (dy > hy) return Port::South;
  if (dy < hy) return Port::North;
  return Port::Local;
}

}  // namespace disco::noc
