#include "noc/router.h"

#include <algorithm>
#include <cassert>

#include "noc/snapshot.h"

namespace disco::noc {
namespace {

/// Effectively infinite credit pool for the ejection (Local) output: the NI
/// reassembly buffer always sinks flits, which protocol-level deadlock
/// freedom relies on.
constexpr std::uint32_t kEjectionCredits = 1u << 30;

}  // namespace

Router::Router(NodeId id, const MeshShape& mesh, const NocConfig& cfg, NocStats& stats)
    : id_(id), mesh_(mesh), cfg_(cfg), stats_(stats) {
  const std::uint32_t vcs = cfg_.num_vcs();
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    input_[p].resize(vcs);
    out_vc_taken_[p].assign(vcs, false);
    const bool ejection = static_cast<Port>(p) == Port::Local;
    credits_[p].assign(vcs, ejection ? kEjectionCredits : cfg_.vc_depth_flits);
  }
}

void Router::tick(Cycle now) {
  receive_credits(now);
  receive_flits(now);
  route_compute(now);
  vc_allocate(now);

  losers_scratch_.clear();
  switch_allocate_and_traverse(now, losers_scratch_);

  if (ext_ != nullptr) {
    ext_->after_allocation(now, losers_scratch_);
    ext_->tick(now);
  }
}

void Router::receive_credits(Cycle now) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    if (in_credit_[p] == nullptr) continue;
    Credit c;
    while (in_credit_[p]->try_pop(now, c)) {
      assert(c.vc < credits_[p].size());
      ++credits_[p][c.vc];
      if (tracer_ != nullptr)
        tracer_->emit(now, id_, trace::Event::CreditRecv,
                      static_cast<std::uint8_t>(p), c.vc, 0, 0);
    }
  }
}

void Router::receive_flits(Cycle now) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    if (in_flit_[p] == nullptr) continue;
    Flit f;
    while (in_flit_[p]->try_pop(now, f)) {
      assert(f.vc_tag < input_[p].size());
      if (degraded_ && filter_dead_flit(f, p, now)) continue;
      f.arrival = now;
      if (tracer_ != nullptr)
        tracer_->emit(now, id_, trace::Event::BufferWrite,
                      static_cast<std::uint8_t>(p), f.vc_tag, f.pkt->id,
                      static_cast<std::int64_t>(f.seq));
      input_[p][f.vc_tag].buffer.push_back(std::move(f));
      ++stats_.buffer_writes;
    }
  }
}

void Router::route_compute(Cycle now) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < input_[p].size(); ++v) {
      auto& ch = input_[p][v];
      if (ch.stage != VcStage::Idle || ch.buffer.empty()) continue;
      const Flit& head = ch.buffer.front();
      assert(head.is_head() && "mid-packet flit at VC head in Idle stage");
      if (topo_ == nullptr || topo_->routing_healthy()) {
        ch.out_port = xy_route(mesh_, id_, head.pkt->dst);
      } else {
        Packet& pkt = *head.pkt;
        if (pkt.route_epoch != topo_->epoch()) {
          pkt.route_epoch = topo_->epoch();
          pkt.route_phase = 0;
        }
        ch.out_port = topo_->route(id_, pkt.dst, pkt.route_phase);
        if (ch.out_port != xy_route(mesh_, id_, pkt.dst)) {
          ++stats_.reroutes;
          if (tracer_ != nullptr)
            tracer_->emit(now, id_, trace::Event::TopoReroute,
                          static_cast<std::uint8_t>(p),
                          static_cast<std::uint8_t>(v), pkt.id,
                          static_cast<std::int64_t>(idx(ch.out_port)));
        }
      }
      ch.head_arrival = head.arrival;
      ch.stage = VcStage::VcAlloc;
      if (tracer_ != nullptr)
        tracer_->emit(now, id_, trace::Event::RouteCompute,
                      static_cast<std::uint8_t>(p),
                      static_cast<std::uint8_t>(v), head.pkt->id,
                      static_cast<std::int64_t>(idx(ch.out_port)));
    }
  }
}

void Router::vc_allocate(Cycle now) {
  // Collect requests per output port.
  std::array<std::vector<VcId>, kNumPorts> requests;
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < input_[p].size(); ++v) {
      VirtualChannel& ch = input_[p][v];
      if (ch.stage != VcStage::VcAlloc) continue;
      if (now <= ch.head_arrival) continue;  // stage-2 pipeline constraint
      requests[idx(ch.out_port)].push_back({static_cast<Port>(p), static_cast<std::uint8_t>(v)});
    }
  }

  for (std::size_t out = 0; out < kNumPorts; ++out) {
    auto& reqs = requests[out];
    if (reqs.empty()) continue;
    stats_.alloc_ops += reqs.size();
    // Priority class first, then round-robin position.
    const std::uint32_t rr = va_rr_[out];
    std::stable_sort(reqs.begin(), reqs.end(), [&](const VcId& a, const VcId& b) {
      const auto& ca = vc(a);
      const auto& cb = vc(b);
      const int pa = priority_class(*ca.head_packet(), cfg_.deprioritize_compressible);
      const int pb = priority_class(*cb.head_packet(), cfg_.deprioritize_compressible);
      if (pa != pb) return pa < pb;
      const std::uint32_t ia = (static_cast<std::uint32_t>(a.port) * 8u + a.vc + 64u - rr) % 64u;
      const std::uint32_t ib = (static_cast<std::uint32_t>(b.port) * 8u + b.vc + 64u - rr) % 64u;
      return ia < ib;
    });
    bool granted_any = false;
    for (const VcId& r : reqs) {
      VirtualChannel& ch = vc(r);
      const auto vnet = static_cast<std::uint32_t>(ch.head_packet()->vnet);
      const std::uint32_t lo = vnet * cfg_.vcs_per_vnet;
      const std::uint32_t hi = lo + cfg_.vcs_per_vnet;
      for (std::uint32_t ov = lo; ov < hi; ++ov) {
        if (out_vc_taken_[out][ov]) continue;
        out_vc_taken_[out][ov] = true;
        ch.out_vc = static_cast<std::uint8_t>(ov);
        ch.stage = VcStage::Active;
        granted_any = true;
        if (tracer_ != nullptr)
          tracer_->emit(now, id_, trace::Event::VcAllocGrant,
                        static_cast<std::uint8_t>(r.port), r.vc,
                        ch.head_packet()->id,
                        static_cast<std::int64_t>((out << 8) | ov));
        break;
      }
    }
    if (granted_any) va_rr_[out] = (va_rr_[out] + 1) % 64u;
  }
}

bool Router::sa_eligible(const VirtualChannel& ch, Cycle now) const {
  if (ch.stage != VcStage::Active || ch.buffer.empty()) return false;
  if (ch.sa_inhibit) return false;  // blocking-mode engine lock
  // Output link severed by a hard fault mid-allocation; the kill scrub
  // resets or condemns this VC before forwarding could resume, so this
  // only guards the same-cycle window. Never fires on a healthy mesh (XY
  // stays on-mesh).
  if (out_flit_[idx(ch.out_port)] == nullptr && ch.out_port != Port::Local)
    return false;
  return ch.buffer.front().arrival + 2 <= now;
}

void Router::switch_allocate_and_traverse(Cycle now, std::vector<VcId>& losers) {
  // Stage 1 (input arbitration): one candidate VC per input port.
  std::array<int, kNumPorts> chosen_vc;
  chosen_vc.fill(-1);
  std::vector<VcId> stalled;  // eligible work that cannot move this cycle

  for (std::size_t p = 0; p < kNumPorts; ++p) {
    int best = -1;
    int best_prio = 0;
    std::uint32_t best_rr = 0;
    const std::uint32_t vcs = static_cast<std::uint32_t>(input_[p].size());
    for (std::uint32_t v = 0; v < vcs; ++v) {
      VirtualChannel& ch = input_[p][v];
      if (!sa_eligible(ch, now)) {
        // VA-blocked packets are also idling candidates for DISCO.
        if (ch.stage == VcStage::VcAlloc && !ch.buffer.empty() &&
            now > ch.head_arrival)
          stalled.push_back({static_cast<Port>(p), static_cast<std::uint8_t>(v)});
        continue;
      }
      // Wormhole forwards flit by flit; virtual cut-through (section 3.3A)
      // only starts a packet when the downstream VC can hold all of it, so
      // packets always sit whole in one node.
      std::uint32_t needed_credits = 1;
      if (cfg_.flow_control == FlowControl::VirtualCutThrough &&
          ch.sent_flits == 0) {
        needed_credits = ch.head_packet()->flit_count();
      }
      if (credits_[idx(ch.out_port)][ch.out_vc] < needed_credits) {
        stalled.push_back({static_cast<Port>(p), static_cast<std::uint8_t>(v)});
        continue;
      }
      const int prio = priority_class(*ch.head_packet(), cfg_.deprioritize_compressible);
      const std::uint32_t rr_pos = (v + vcs - sa_in_rr_[p]) % vcs;
      if (best < 0 || prio < best_prio || (prio == best_prio && rr_pos < best_rr)) {
        if (best >= 0)
          stalled.push_back({static_cast<Port>(p), static_cast<std::uint8_t>(best)});
        best = static_cast<int>(v);
        best_prio = prio;
        best_rr = rr_pos;
      } else {
        stalled.push_back({static_cast<Port>(p), static_cast<std::uint8_t>(v)});
      }
    }
    chosen_vc[p] = best;
    if (best >= 0) stats_.alloc_ops += 1;
  }

  // Stage 2 (output arbitration): one input per output port.
  std::array<int, kNumPorts> winner_input;
  winner_input.fill(-1);
  for (std::size_t out = 0; out < kNumPorts; ++out) {
    int best_in = -1;
    int best_prio = 0;
    std::uint32_t best_rr = 0;
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      if (chosen_vc[p] < 0) continue;
      const VirtualChannel& ch = input_[p][static_cast<std::uint32_t>(chosen_vc[p])];
      if (idx(ch.out_port) != out) continue;
      const int prio = priority_class(*ch.head_packet(), cfg_.deprioritize_compressible);
      const std::uint32_t rr_pos =
          (static_cast<std::uint32_t>(p) + kNumPorts - sa_out_rr_[out]) % kNumPorts;
      if (best_in < 0 || prio < best_prio || (prio == best_prio && rr_pos < best_rr)) {
        if (best_in >= 0)
          stalled.push_back({static_cast<Port>(best_in),
                             static_cast<std::uint8_t>(chosen_vc[best_in])});
        best_in = static_cast<int>(p);
        best_prio = prio;
        best_rr = rr_pos;
      } else {
        stalled.push_back(
            {static_cast<Port>(p), static_cast<std::uint8_t>(chosen_vc[p])});
      }
    }
    winner_input[out] = best_in;
    if (best_in >= 0) sa_out_rr_[out] = (static_cast<std::uint32_t>(best_in) + 1) % kNumPorts;
  }

  // Stage 3: switch traversal for winners.
  for (std::size_t out = 0; out < kNumPorts; ++out) {
    const int p = winner_input[out];
    if (p < 0) continue;
    const VcId vid{static_cast<Port>(p), static_cast<std::uint8_t>(chosen_vc[p])};
    VirtualChannel& ch = vc(vid);
    sa_in_rr_[p] = (static_cast<std::uint32_t>(chosen_vc[p]) + 1) %
                   static_cast<std::uint32_t>(input_[p].size());

    Flit f = std::move(ch.buffer.front());
    ch.buffer.pop_front();
    const bool tail = f.is_tail();
    if (ch.sent_flits == 0) ch.active_pkt = f.pkt;
    f.vc_tag = ch.out_vc;

    bool dropped = false;
    if (injector_ != nullptr && injector_->enabled()) {
      // One bit-flip coin per packet per link hop, tossed at the head flit.
      if (f.seq == 0 && f.pkt->has_data && f.pkt->compressed())
        injector_->corrupt_link_payload(f.pkt->encoded->bytes);
      // Only body non-tail flits may be lost: the head keeps routing/VA
      // state sane downstream and the tail keeps wormhole framing intact.
      if (f.seq > 0 && !tail && f.pkt->has_data &&
          injector_->should_drop_flit())
        dropped = true;
    }

    ++stats_.buffer_reads;
    if (!dropped) {
      assert(out_flit_[out] != nullptr && "ST to unconnected port");
      if (tracer_ != nullptr)
        tracer_->emit(now, id_, trace::Event::SwitchTraversal,
                      static_cast<std::uint8_t>(p),
                      static_cast<std::uint8_t>(chosen_vc[p]), f.pkt->id,
                      trace::st_arg(tail, static_cast<std::uint8_t>(out),
                                    ch.out_vc, f.seq));
      out_flit_[out]->push(now, std::move(f));
      ++stats_.crossbar_traversals;
      ++stats_.link_flits;
      assert(credits_[out][ch.out_vc] > 0);
      --credits_[out][ch.out_vc];
    }
    // A dropped flit still frees its input buffer slot, so the upstream
    // credit must be returned either way (credit conservation).
    send_credit_for_pop(vid, now);

    ++ch.sent_flits;
    if (ch.engine_busy && ch.sent_flits == 1 && ext_ != nullptr) {
      ext_->on_shadow_departed(now, vid);
    }
    if (tail) {
      out_vc_taken_[out][ch.out_vc] = false;
      ch.stage = VcStage::Idle;
      ch.sent_flits = 0;
      ch.active_pkt.reset();
    }
  }

  // Report stalls: eligible-but-not-moved VCs idle this cycle.
  for (const VcId& v : stalled) {
    VirtualChannel& ch = vc(v);
    if (ch.buffer.empty()) continue;
    ++ch.head_packet()->idle_cycles;
    ++stats_.sa_idle_losses;
    losers.push_back(v);
  }
}

void Router::send_credit_for_pop(const VcId& v, Cycle now) {
  VirtualChannel& ch = vc(v);
  if (ch.credit_debt > 0) {
    --ch.credit_debt;  // absorb the slot consumed by an earlier expansion
    return;
  }
  if (out_credit_[idx(v.port)] == nullptr) return;
  out_credit_[idx(v.port)]->push(now, Credit{v.vc});
  ++stats_.credits_sent;
  if (tracer_ != nullptr)
    tracer_->emit(now, id_, trace::Event::CreditSend,
                  static_cast<std::uint8_t>(v.port), v.vc, 0, 0);
}

std::uint32_t Router::downstream_occupancy(Port out) const {
  if (out == Port::Local) return 0;
  const auto& pool = credits_[idx(out)];
  std::uint32_t occupied = 0;
  for (const std::uint32_t c : pool)
    occupied += cfg_.vc_depth_flits - std::min(c, cfg_.vc_depth_flits);
  return occupied;
}

std::uint32_t Router::competing_vcs(Port out, const VcId& self) const {
  std::uint32_t n = 0;
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < input_[p].size(); ++v) {
      const VirtualChannel& ch = input_[p][v];
      if (ch.stage == VcStage::Idle || ch.buffer.empty()) continue;
      if (ch.out_port != out) continue;
      if (static_cast<Port>(p) == self.port && v == self.vc) continue;
      ++n;
    }
  }
  return n;
}

bool Router::rebuild_head_packet(const VcId& v, std::uint32_t old_flit_count, Cycle now) {
  VirtualChannel& ch = vc(v);
  const PacketPtr pkt = ch.head_packet();
  if (!pkt || ch.sent_flits != 0) return false;
  if (ch.buffered_flits_of_head() != old_flit_count) return false;

  ch.buffer.erase(ch.buffer.begin(), ch.buffer.begin() + old_flit_count);
  const std::uint32_t new_count = pkt->flit_count();
  for (std::uint32_t i = new_count; i-- > 0;) {
    Flit f;
    f.pkt = pkt;
    f.seq = i;
    f.vc_tag = v.vc;
    f.arrival = now;
    ch.buffer.push_front(std::move(f));
  }

  if (tracer_ != nullptr)
    tracer_->emit(now, id_, trace::Event::Rebuild,
                  static_cast<std::uint8_t>(v.port), v.vc, pkt->id,
                  static_cast<std::int64_t>(new_count) -
                      static_cast<std::int64_t>(old_flit_count));
  if (new_count < old_flit_count) {
    // Compression shrank the packet: retrieve the saved buffer space by
    // sending bonus credits upstream (paper section 3.2 step 3).
    for (std::uint32_t i = 0; i < old_flit_count - new_count; ++i)
      send_credit_for_pop(v, now);
  } else {
    // Decompression grew the packet: swallow future credits until the
    // engine-staging overflow is paid back.
    ch.credit_debt += new_count - old_flit_count;
  }
  return true;
}

std::uint64_t Router::total_buffered_flits() const {
  std::uint64_t n = 0;
  for (const auto& port : input_)
    for (const auto& ch : port) n += ch.buffer.size();
  return n;
}

void Router::stall_census(StallCensus& c) const {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (const VirtualChannel& ch : input_[p]) {
      c.buffered_flits += ch.buffer.size();
      if (ch.stage == VcStage::VcAlloc) {
        ++c.waiting_alloc_vcs;
      } else if (ch.stage == VcStage::Active) {
        ++c.active_vcs;
        if (credits_[idx(ch.out_port)][ch.out_vc] == 0) ++c.blocked_vcs;
      }
    }
  }
}

bool Router::quiescent() const { return total_buffered_flits() == 0; }

bool Router::filter_dead_flit(const Flit& f, std::size_t p, Cycle now) {
  const PacketPtr& pkt = f.pkt;
  bool drop = condemned_ != nullptr && condemned_->count(pkt->id) > 0;
  if (!drop && topo_ != nullptr &&
      (!topo_->unit_alive(pkt->dst, pkt->dst_unit) ||
       !topo_->reachable(id_, pkt->dst))) {
    drop = true;
    if (doomed_cb_) doomed_cb_(pkt, now);
  }
  if (!drop) return false;
  ++stats_.dead_component_drops;
  // The flit never occupies a buffer slot, so the upstream sender's credit
  // comes straight back (conservation holds through the destruction).
  if (out_credit_[p] != nullptr) {
    out_credit_[p]->push(now, Credit{f.vc_tag});
    ++stats_.credits_sent;
    if (tracer_ != nullptr)
      tracer_->emit(now, id_, trace::Event::CreditSend,
                    static_cast<std::uint8_t>(p), f.vc_tag, 0, 0);
  }
  if (tracer_ != nullptr)
    tracer_->emit(now, id_, trace::Event::TopoFlitsKilled,
                  static_cast<std::uint8_t>(p), f.vc_tag, pkt->id, 1);
  return true;
}

void Router::disconnect_port(Port p) {
  in_flit_[idx(p)] = nullptr;
  out_flit_[idx(p)] = nullptr;
  in_credit_[idx(p)] = nullptr;
  out_credit_[idx(p)] = nullptr;
}

void Router::collect_severed(std::vector<PacketPtr>& out) const {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (const VirtualChannel& ch : input_[p]) {
      if (ch.sent_flits == 0 || ch.active_pkt == nullptr) continue;
      if (ch.out_port == Port::Local) continue;  // ejection never dies alone
      if (out_flit_[idx(ch.out_port)] != nullptr) continue;
      out.push_back(ch.active_pkt);
    }
  }
}

void Router::collect_buffered_packets(std::vector<PacketPtr>& out) const {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (const VirtualChannel& ch : input_[p]) {
      if (ch.sent_flits > 0 && ch.active_pkt != nullptr)
        out.push_back(ch.active_pkt);
      const Packet* last = nullptr;
      for (const Flit& f : ch.buffer) {
        if (f.pkt.get() == last) continue;  // runs are contiguous
        last = f.pkt.get();
        out.push_back(f.pkt);
      }
    }
  }
}

std::uint64_t Router::scrub_condemned(Cycle now) {
  if (condemned_ == nullptr || condemned_->empty()) return 0;
  std::uint64_t killed = 0;
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < input_[p].size(); ++v) {
      VirtualChannel& ch = input_[p][v];
      const VcId vid{static_cast<Port>(p), static_cast<std::uint8_t>(v)};
      // Reset the pipeline state if the packet owning it is condemned.
      const PacketPtr owner =
          ch.sent_flits > 0 ? ch.active_pkt : ch.head_packet();
      if (ch.stage != VcStage::Idle && owner != nullptr &&
          condemned_->count(owner->id) > 0) {
        if (ch.engine_busy && ext_ != nullptr)
          ext_->on_shadow_departed(now, vid);  // abort the engine's copy
        if (ch.stage == VcStage::Active)
          out_vc_taken_[idx(ch.out_port)][ch.out_vc] = false;
        ch.stage = VcStage::Idle;
        ch.sent_flits = 0;
        ch.active_pkt.reset();
        ch.sa_inhibit = false;
        if (tracer_ != nullptr)
          tracer_->emit(now, id_, trace::Event::TopoVcReset,
                        static_cast<std::uint8_t>(p),
                        static_cast<std::uint8_t>(v), owner->id, 0);
      }
      // Destroy every buffered flit of any condemned packet (head or a
      // queued run behind it). Per-flit credit returns keep conservation:
      // expansion debt is absorbed first, exactly as normal pops would.
      for (auto it = ch.buffer.begin(); it != ch.buffer.end();) {
        if (condemned_->count(it->pkt->id) > 0) {
          it = ch.buffer.erase(it);
          ++killed;
          send_credit_for_pop(vid, now);
        } else {
          ++it;
        }
      }
    }
  }
  if (killed > 0) {
    stats_.flits_destroyed += killed;
    if (tracer_ != nullptr)
      tracer_->emit(now, id_, trace::Event::TopoFlitsKilled, 0, 0, 0,
                    static_cast<std::int64_t>(killed));
  }
  return killed;
}

void Router::reset_unsent_vcs(Cycle now) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (std::uint32_t v = 0; v < input_[p].size(); ++v) {
      VirtualChannel& ch = input_[p][v];
      if (ch.stage == VcStage::Idle || ch.sent_flits > 0) continue;
      if (ch.stage == VcStage::Active)
        out_vc_taken_[idx(ch.out_port)][ch.out_vc] = false;
      ch.stage = VcStage::Idle;
      ch.active_pkt.reset();
      // engine_busy survives: the compression still targets the head
      // packet, which re-routes in place under the new tables.
      if (tracer_ != nullptr)
        tracer_->emit(now, id_, trace::Event::TopoVcReset,
                      static_cast<std::uint8_t>(p),
                      static_cast<std::uint8_t>(v),
                      ch.head_packet() ? ch.head_packet()->id : 0, 0);
    }
  }
}

std::uint64_t Router::drain_dead(std::vector<PacketPtr>& inflight, Cycle now) {
  std::uint64_t killed = 0;
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (VirtualChannel& ch : input_[p]) {
      if (ch.sent_flits > 0 && ch.active_pkt != nullptr)
        inflight.push_back(ch.active_pkt);
      const Packet* last = nullptr;
      for (const Flit& f : ch.buffer) {
        if (f.pkt.get() == last) continue;
        last = f.pkt.get();
        inflight.push_back(f.pkt);
      }
      killed += ch.buffer.size();
      ch.buffer.clear();
      ch.stage = VcStage::Idle;
      ch.sent_flits = 0;
      ch.credit_debt = 0;
      ch.engine_busy = false;
      ch.sa_inhibit = false;
      ch.active_pkt.reset();
    }
  }
  stats_.flits_destroyed += killed;
  if (killed > 0 && tracer_ != nullptr)
    tracer_->emit(now, id_, trace::Event::TopoFlitsKilled, 0, 0, 0,
                  static_cast<std::int64_t>(killed));
  return killed;
}

bool Router::credits_quiescent() const {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    if (static_cast<Port>(p) == Port::Local) continue;
    if (out_flit_[p] == nullptr) continue;  // mesh edge
    for (const std::uint32_t c : credits_[p]) {
      if (c != cfg_.vc_depth_flits) return false;
    }
  }
  for (const auto& port : input_) {
    for (const VirtualChannel& ch : port) {
      if (ch.credit_debt != 0) return false;
    }
  }
  return true;
}

void Router::save_state(snap::Writer& w, PacketTable& t) const {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (const VirtualChannel& ch : input_[p]) save_vc(w, t, ch);
    for (const std::uint32_t c : credits_[p]) w.u32(c);
    for (const bool taken : out_vc_taken_[p]) w.b(taken);
  }
  for (const std::uint32_t v : va_rr_) w.u32(v);
  for (const std::uint32_t v : sa_in_rr_) w.u32(v);
  for (const std::uint32_t v : sa_out_rr_) w.u32(v);
  w.b(degraded_);
}

void Router::restore_state(snap::Reader& r, const PacketTable& t) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    for (VirtualChannel& ch : input_[p]) load_vc(r, t, ch);
    for (std::uint32_t& c : credits_[p]) c = r.u32();
    for (std::size_t v = 0; v < out_vc_taken_[p].size(); ++v)
      out_vc_taken_[p][v] = r.b();
  }
  for (std::uint32_t& v : va_rr_) v = r.u32();
  for (std::uint32_t& v : sa_in_rr_) v = r.u32();
  for (std::uint32_t& v : sa_out_rr_) v = r.u32();
  degraded_ = r.b();
}

}  // namespace disco::noc
