#include "sim/json_export.h"

#include <ostream>

namespace disco::sim {
namespace {

void write_fields(std::ostream& os, const CellResult& r) {
  os << "{"
     << "\"workload\":\"" << r.workload << "\","
     << "\"algorithm\":\"" << r.algorithm << "\","
     << "\"scheme\":\"" << to_string(r.scheme) << "\","
     << "\"measured_cycles\":" << r.measured_cycles << ","
     << "\"core_ops\":" << r.core_ops << ","
     << "\"l1_misses\":" << r.l1_misses << ","
     << "\"avg_nuca_latency\":" << r.avg_nuca_latency << ","
     << "\"avg_miss_latency\":" << r.avg_miss_latency << ","
     << "\"avg_dram_latency\":" << r.avg_dram_latency << ","
     << "\"l2_miss_rate\":" << r.l2_miss_rate << ","
     << "\"avg_packet_latency\":" << r.avg_packet_latency << ","
     << "\"avg_stored_ratio\":" << r.avg_stored_ratio << ","
     << "\"link_flits\":" << r.link_flits << ","
     << "\"inflight_compressions\":" << r.inflight_compressions << ","
     << "\"inflight_decompressions\":" << r.inflight_decompressions << ","
     << "\"source_compressions\":" << r.source_compressions << ","
     << "\"compression_aborts\":" << r.compression_aborts << ","
     << "\"decompression_aborts\":" << r.decompression_aborts << ","
     << "\"hidden_decomp_ops\":" << r.hidden_decomp_ops << ","
     << "\"energy\":{"
     << "\"noc_dynamic_nj\":" << r.energy.noc_dynamic_nj << ","
     << "\"noc_leakage_nj\":" << r.energy.noc_leakage_nj << ","
     << "\"l2_dynamic_nj\":" << r.energy.l2_dynamic_nj << ","
     << "\"l2_leakage_nj\":" << r.energy.l2_leakage_nj << ","
     << "\"compressor_dynamic_nj\":" << r.energy.compressor_dynamic_nj << ","
     << "\"compressor_leakage_nj\":" << r.energy.compressor_leakage_nj << ","
     << "\"dram_nj\":" << r.energy.dram_nj << ","
     << "\"subsystem_nj\":" << r.energy.subsystem_nj() << "}";
  // Gated so fault-free runs keep byte-identical output to older builds.
  if (r.fault.enabled) {
    const FaultSummary& f = r.fault;
    os << ",\"fault\":{"
       << "\"link_bit_flips\":" << f.link_bit_flips << ","
       << "\"llc_bit_flips\":" << f.llc_bit_flips << ","
       << "\"flit_drops\":" << f.flit_drops << ","
       << "\"flit_duplicates\":" << f.flit_duplicates << ","
       << "\"engine_stalls\":" << f.engine_stalls << ","
       << "\"engine_faults\":" << f.engine_faults << ","
       << "\"crc_checks\":" << f.crc_checks << ","
       << "\"corruptions_detected\":" << f.corruptions_detected << ","
       << "\"silent_corruptions\":" << f.silent_corruptions << ","
       << "\"flit_loss_timeouts\":" << f.flit_loss_timeouts << ","
       << "\"nacks_sent\":" << f.nacks_sent << ","
       << "\"retransmissions\":" << f.retransmissions << ","
       << "\"retransmit_deliveries\":" << f.retransmit_deliveries << ","
       << "\"backoff_cycles\":" << f.backoff_cycles << ","
       << "\"duplicate_flits_dropped\":" << f.duplicate_flits_dropped << ","
       << "\"duplicate_retransmissions\":" << f.duplicate_retransmissions << ","
       << "\"unrecovered_deliveries\":" << f.unrecovered_deliveries << ","
       << "\"engine_decode_errors\":" << f.engine_decode_errors << ","
       << "\"engines_quarantined\":" << f.engines_quarantined << "}";
    // Nested gate: only cells run with a hard-fault schedule carry the
    // degradation block, so soft-fault-only output stays byte-identical.
    if (f.hard_enabled) {
      os << ",\"hard_fault\":{"
         << "\"applied\":" << f.hard_faults_applied << ","
         << "\"links_killed\":" << f.links_killed << ","
         << "\"routers_killed\":" << f.routers_killed << ","
         << "\"engines_hard_failed\":" << f.engines_hard_failed << ","
         << "\"banks_killed\":" << f.banks_killed << ","
         << "\"unreachable_drops\":" << f.unreachable_drops << ","
         << "\"dead_component_drops\":" << f.dead_component_drops << ","
         << "\"flits_destroyed\":" << f.flits_destroyed << ","
         << "\"severed_packets\":" << f.severed_packets << ","
         << "\"reroutes\":" << f.reroutes << ","
         << "\"bypass_retransmits\":" << f.bypass_retransmits << ","
         << "\"synth_completions\":" << f.synth_completions << "}";
    }
  }
  // Same gating rule: only runs with --check-invariants carry the object.
  if (r.invariants.enabled) {
    const trace::InvariantSummary& v = r.invariants;
    os << ",\"invariants\":{"
       << "\"events_checked\":" << v.events_checked << ","
       << "\"cycles_checked\":" << v.cycles_checked << ","
       << "\"violations\":" << v.violations << ","
       << "\"credit_violations\":" << v.credit_violations << ","
       << "\"conservation_violations\":" << v.conservation_violations << ","
       << "\"vc_state_violations\":" << v.vc_state_violations << ","
       << "\"shadow_violations\":" << v.shadow_violations << ","
       << "\"confidence_violations\":" << v.confidence_violations << ","
       << "\"eject_violations\":" << v.eject_violations << ","
       << "\"cache_violations\":" << v.cache_violations << ","
       << "\"first_violation\":\"" << v.first_violation << "\"}";
  }
  os << "}";
}

}  // namespace

void write_json(std::ostream& os, const CellResult& result) {
  write_fields(os, result);
  os << "\n";
}

void write_json(std::ostream& os, const std::vector<CellResult>& results) {
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << "  ";
    write_fields(os, results[i]);
    if (i + 1 < results.size()) os << ",";
    os << "\n";
  }
  os << "]\n";
}

}  // namespace disco::sim
