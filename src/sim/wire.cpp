#include "sim/wire.h"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace disco::sim::wire {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("wire: " + what);
}

// --- scanner ---------------------------------------------------------------

struct Scanner {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() &&
           (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }
  char peek() {
    if (pos >= s.size()) fail("unexpected end of input");
    return s[pos];
  }
  void expect(char c) {
    if (pos >= s.size() || s[pos] != c)
      fail(std::string("expected '") + c + "' at offset " + std::to_string(pos));
    ++pos;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= s.size()) fail("unterminated string");
      char c = s[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= s.size()) fail("unterminated escape");
      const char e = s[pos++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > s.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The encoder only ever emits \u00XX (control bytes); tolerate the
          // full BMP by truncating — nothing we wrote can hit that path.
          out.push_back(static_cast<char>(v & 0xFF));
          break;
        }
        default: fail(std::string("unknown escape \\") + e);
      }
    }
  }

  std::uint64_t parse_number() {
    if (pos >= s.size() || s[pos] < '0' || s[pos] > '9')
      fail("expected number at offset " + std::to_string(pos));
    std::uint64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
      const std::uint64_t d = static_cast<std::uint64_t>(s[pos] - '0');
      // A bit-flipped payload can splice digits into a number that no
      // encoder ever produced; reject overflow instead of wrapping quietly.
      if (v > (UINT64_MAX - d) / 10)
        fail("number overflow at offset " + std::to_string(pos));
      v = v * 10 + d;
      ++pos;
    }
    return v;
  }

  Value parse_value(unsigned depth) {
    if (depth > 8) fail("nesting too deep");
    skip_ws();
    Value v;
    const char c = peek();
    if (c == '{') {
      v = parse_obj(depth);
    } else if (c == '"') {
      v.kind = Value::Kind::Str;
      v.str = parse_string();
    } else {
      v.kind = Value::Kind::Num;
      v.num = parse_number();
    }
    return v;
  }

  Value parse_obj(unsigned depth) {
    Value v;
    v.kind = Value::Kind::Obj;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      Value member = parse_value(depth + 1);
      v.obj.emplace_back(std::move(key), std::move(member));
      skip_ws();
      const char t = peek();
      if (t == ',') {
        ++pos;
        continue;
      }
      expect('}');
      return v;
    }
  }
};

// --- CellResult field walk --------------------------------------------------

/// One canonical enumeration of every CellResult field, shared by the
/// encoder and the decoder so they can never drift apart.
template <class F>
void visit_result(CellResult& r, F&& f) {
  f.str("workload", r.workload);
  f.str("algorithm", r.algorithm);
  std::uint64_t scheme = static_cast<std::uint64_t>(r.scheme);
  f.u64("scheme", scheme);
  if (scheme > static_cast<std::uint64_t>(Scheme::Ideal))
    fail("scheme value out of range");
  r.scheme = static_cast<Scheme>(scheme);
  f.u64("measured_cycles", r.measured_cycles);
  f.u64("core_ops", r.core_ops);
  f.u64("l1_misses", r.l1_misses);
  f.dbl("avg_nuca_latency", r.avg_nuca_latency);
  f.dbl("avg_miss_latency", r.avg_miss_latency);
  f.dbl("avg_dram_latency", r.avg_dram_latency);
  f.dbl("l2_miss_rate", r.l2_miss_rate);
  f.dbl("avg_packet_latency", r.avg_packet_latency);
  f.dbl("avg_stored_ratio", r.avg_stored_ratio);
  f.u64("link_flits", r.link_flits);
  f.u64("inflight_compressions", r.inflight_compressions);
  f.u64("inflight_decompressions", r.inflight_decompressions);
  f.u64("source_compressions", r.source_compressions);
  f.u64("compression_aborts", r.compression_aborts);
  f.u64("decompression_aborts", r.decompression_aborts);
  f.u64("hidden_decomp_ops", r.hidden_decomp_ops);
  f.u64("exposed_decomp_cycles", r.exposed_decomp_cycles);
  f.dbl("energy.noc_dynamic_nj", r.energy.noc_dynamic_nj);
  f.dbl("energy.noc_leakage_nj", r.energy.noc_leakage_nj);
  f.dbl("energy.l2_dynamic_nj", r.energy.l2_dynamic_nj);
  f.dbl("energy.l2_leakage_nj", r.energy.l2_leakage_nj);
  f.dbl("energy.compressor_dynamic_nj", r.energy.compressor_dynamic_nj);
  f.dbl("energy.compressor_leakage_nj", r.energy.compressor_leakage_nj);
  f.dbl("energy.dram_nj", r.energy.dram_nj);
  f.boolean("fault.enabled", r.fault.enabled);
  f.u64("fault.link_bit_flips", r.fault.link_bit_flips);
  f.u64("fault.llc_bit_flips", r.fault.llc_bit_flips);
  f.u64("fault.flit_drops", r.fault.flit_drops);
  f.u64("fault.flit_duplicates", r.fault.flit_duplicates);
  f.u64("fault.engine_stalls", r.fault.engine_stalls);
  f.u64("fault.engine_faults", r.fault.engine_faults);
  f.u64("fault.crc_checks", r.fault.crc_checks);
  f.u64("fault.corruptions_detected", r.fault.corruptions_detected);
  f.u64("fault.silent_corruptions", r.fault.silent_corruptions);
  f.u64("fault.flit_loss_timeouts", r.fault.flit_loss_timeouts);
  f.u64("fault.nacks_sent", r.fault.nacks_sent);
  f.u64("fault.retransmissions", r.fault.retransmissions);
  f.u64("fault.retransmit_deliveries", r.fault.retransmit_deliveries);
  f.u64("fault.backoff_cycles", r.fault.backoff_cycles);
  f.u64("fault.duplicate_flits_dropped", r.fault.duplicate_flits_dropped);
  f.u64("fault.duplicate_retransmissions", r.fault.duplicate_retransmissions);
  f.u64("fault.unrecovered_deliveries", r.fault.unrecovered_deliveries);
  f.u64("fault.engine_decode_errors", r.fault.engine_decode_errors);
  f.u64("fault.engines_quarantined", r.fault.engines_quarantined);
  f.boolean("fault.hard_enabled", r.fault.hard_enabled);
  f.u64("fault.hard_faults_applied", r.fault.hard_faults_applied);
  f.u64("fault.links_killed", r.fault.links_killed);
  f.u64("fault.routers_killed", r.fault.routers_killed);
  f.u64("fault.engines_hard_failed", r.fault.engines_hard_failed);
  f.u64("fault.banks_killed", r.fault.banks_killed);
  f.u64("fault.unreachable_drops", r.fault.unreachable_drops);
  f.u64("fault.dead_component_drops", r.fault.dead_component_drops);
  f.u64("fault.flits_destroyed", r.fault.flits_destroyed);
  f.u64("fault.severed_packets", r.fault.severed_packets);
  f.u64("fault.reroutes", r.fault.reroutes);
  f.u64("fault.bypass_retransmits", r.fault.bypass_retransmits);
  f.u64("fault.synth_completions", r.fault.synth_completions);
  f.boolean("invariants.enabled", r.invariants.enabled);
  f.u64("invariants.events_checked", r.invariants.events_checked);
  f.u64("invariants.cycles_checked", r.invariants.cycles_checked);
  f.u64("invariants.violations", r.invariants.violations);
  f.u64("invariants.credit_violations", r.invariants.credit_violations);
  f.u64("invariants.conservation_violations",
        r.invariants.conservation_violations);
  f.u64("invariants.vc_state_violations", r.invariants.vc_state_violations);
  f.u64("invariants.shadow_violations", r.invariants.shadow_violations);
  f.u64("invariants.confidence_violations", r.invariants.confidence_violations);
  f.u64("invariants.eject_violations", r.invariants.eject_violations);
  f.u64("invariants.cache_violations", r.invariants.cache_violations);
  f.str("invariants.first_violation", r.invariants.first_violation);
  f.str("trace_text", r.trace_text);
}

struct Encoder {
  std::string out;
  bool first = true;

  void key(const char* name) {
    out.push_back(first ? '{' : ',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
  }
  void str(const char* name, const std::string& v) {
    key(name);
    append_json_string(out, v);
  }
  void u64(const char* name, const std::uint64_t& v) {
    key(name);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
    out += buf;
  }
  void dbl(const char* name, const double& v) {
    // Bit pattern, not decimal text: exact round trip by construction.
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    u64(name, bits);
  }
  void boolean(const char* name, const bool& v) {
    const std::uint64_t b = v ? 1 : 0;
    u64(name, b);
  }
};

struct Decoder {
  const Value& obj;

  const Value& get(const char* name, Value::Kind kind) const {
    const Value* v = obj.find(name);
    if (v == nullptr) fail(std::string("missing field ") + name);
    if (v->kind != kind) fail(std::string("wrong kind for field ") + name);
    return *v;
  }
  void str(const char* name, std::string& v) const {
    v = get(name, Value::Kind::Str).str;
  }
  void u64(const char* name, std::uint64_t& v) const {
    v = get(name, Value::Kind::Num).num;
  }
  void dbl(const char* name, double& v) const {
    v = std::bit_cast<double>(get(name, Value::Kind::Num).num);
  }
  void boolean(const char* name, bool& v) const {
    v = get(name, Value::Kind::Num).num != 0;
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Obj) return nullptr;
  for (const auto& [k, v] : obj)
    if (k == key) return &v;
  return nullptr;
}

std::uint64_t Value::num_or(std::string_view key, std::uint64_t dflt) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::Num ? v->num : dflt;
}

std::string Value::str_or(std::string_view key, std::string_view dflt) const {
  const Value* v = find(key);
  return v != nullptr && v->kind == Kind::Str ? v->str : std::string(dflt);
}

Value parse_object(std::string_view text) {
  Scanner sc{text};
  sc.skip_ws();
  Value v = sc.parse_obj(0);
  sc.skip_ws();
  if (sc.pos != text.size()) fail("trailing garbage after object");
  return v;
}

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string encode_result(const CellResult& r) {
  CellResult copy = r;
  Encoder enc;
  visit_result(copy, enc);
  enc.out.push_back('}');
  return enc.out;
}

CellResult decode_result(const Value& obj) {
  if (obj.kind != Value::Kind::Obj) fail("result is not an object");
  CellResult r;
  visit_result(r, Decoder{obj});
  return r;
}

}  // namespace disco::sim::wire
