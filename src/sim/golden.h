// Golden-trace scenario library. Each scenario is a small, fully
// deterministic simulation (fixed seeds, fixed injection schedule, bounded
// drain) that runs with tracing and invariant checking on and returns the
// canonical trace text. The checked-in files under tests/golden/ are the
// reference outputs; tools/trace_record regenerates them and
// tools/trace_diff + tests/test_trace_golden.cpp compare against them, so
// any change to router arbitration, credit flow, DISCO scheduling or cache
// fill order shows up as a reviewable trace diff instead of a silent
// behavior change.
#pragma once

#include <string>
#include <vector>

#include "trace/invariants.h"

namespace disco::sim {

struct GoldenRun {
  std::string trace;                    ///< canonical one-event-per-line text
  trace::InvariantSummary invariants;   ///< always enabled for scenarios
};

struct GoldenScenario {
  const char* name;
  const char* description;
  GoldenRun (*run)();
};

/// All registered scenarios, in a fixed order.
const std::vector<GoldenScenario>& golden_scenarios();

/// Run the scenario with the given name; throws std::invalid_argument
/// (listing valid names) if it does not exist.
GoldenRun run_golden_scenario(const std::string& name);

}  // namespace disco::sim
