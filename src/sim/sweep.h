// Parallel sweep engine: runs independent experiment cells (one run_cell
// each) on a work-queue thread pool. Every figure/table in the paper is a
// sweep over (scheme x algorithm x workload x mesh) cells and each cell is
// shared-nothing, so the evaluation matrix parallelizes embarrassingly.
//
// Guarantees:
//   - Determinism: each cell's RNG seed is splitmix64(base_seed, seed_group)
//     — a pure function of the cell's position in the sweep, never of
//     execution order — and results are aggregated in input order, so an
//     N-thread run emits bit-identical metrics to a serial run.
//   - Robustness: a cell that throws is retried up to max_attempts times and
//     then recorded as Failed (with the exception text) instead of aborting
//     the whole sweep; an optional wall-clock timeout records TimedOut.
//   - Sharding: `--shard i/k` splits a sweep across machines by cell group,
//     so rows that normalize against a sibling cell stay intact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "workload/profile.h"

namespace disco::sim {

struct SweepOptions {
  /// Worker threads; 0 means max(1, hardware_concurrency - 1).
  unsigned threads = 0;
  /// Per-cell seeds derive from this (see SweepCell::seed_group).
  std::uint64_t base_seed = 1;
  /// When false, cells keep the seed already in their SystemConfig.
  bool reseed_cells = true;
  /// Attempts per cell before it is recorded as Failed (>= 1).
  unsigned max_attempts = 2;
  /// Wall-clock budget per cell attempt; 0 disables the timeout.
  std::uint64_t cell_timeout_ms = 0;
  /// Run only cells whose group satisfies group % shard_count == shard_index;
  /// the rest are recorded as Skipped.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Progress reporting (cells done / total, ETA) on stderr.
  bool progress = true;
  std::string progress_label = "sweep";
  /// Fault-injection knobs (--fault-* flags); disabled unless any rate flag
  /// is given. Benches apply this to their cells via configure_faults().
  FaultConfig fault;
  /// Tracing / invariant-checking knobs (--trace, --trace-filter,
  /// --check-invariants). run_sweep applies them to every cell; out_path is
  /// expanded to <prefix>-cell<i>.json per cell.
  TraceConfig trace;
};

struct SweepCell {
  SystemConfig cfg;
  workload::BenchmarkProfile profile;
  RunOptions opt;

  static constexpr std::size_t kAuto = static_cast<std::size_t>(-1);
  /// Sharding granule. Cells sharing a group always land in the same shard,
  /// so a bench row that normalizes several schemes against each other is
  /// never split across machines. Defaults to the cell's own index.
  std::size_t group = kAuto;
  /// Seed granule: cells sharing a seed_group replay identical workload
  /// traffic (required when cells of a row are compared against each other).
  /// Defaults to `group`.
  std::size_t seed_group = kAuto;
};

enum class CellStatus : std::uint8_t { Ok, Failed, TimedOut, Skipped };

const char* to_string(CellStatus s);

struct SweepCellOutcome {
  std::size_t index = 0;
  std::size_t group = 0;
  CellStatus status = CellStatus::Skipped;
  unsigned attempts = 0;
  double wall_ms = 0;
  std::string error;    ///< exception text of the last failed attempt
  CellResult result;    ///< valid only when status == CellStatus::Ok

  bool ok() const { return status == CellStatus::Ok; }
};

struct SweepResult {
  std::vector<SweepCellOutcome> cells;  ///< input order, one per input cell
  std::size_t completed = 0;
  std::size_t failed = 0;   ///< Failed + TimedOut
  std::size_t skipped = 0;  ///< not in this shard
  double wall_ms = 0;

  bool all_ok() const { return failed == 0; }
  /// The Ok cell at `index`, or nullptr if it failed or was skipped.
  const CellResult* ok(std::size_t index) const;
  /// All Ok results in input order (failed/skipped cells omitted).
  std::vector<CellResult> ok_results() const;
};

SweepResult run_sweep(const std::vector<SweepCell>& cells,
                      const SweepOptions& opt);

/// Generic parallel map over [0, count) on the same thread pool with the
/// same ordered-completion progress reporting, for sweeps whose cells are
/// not run_cell invocations (network-only load/latency points, per-algorithm
/// corpus scans). `fn` must write its result into caller-owned, per-index
/// storage; no timeout/retry wrapping is applied.
void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 const SweepOptions& opt);

/// Parse the standard sweep flags (--threads N, --shard i/k, --seed S,
/// --no-progress, --timeout-ms T, --help) out of argv; every unrecognized
/// argument is appended to `positional` in order. Exits with a usage message
/// on malformed flags or --help.
SweepOptions parse_sweep_flags(int argc, char** argv,
                               std::vector<std::string>& positional);

}  // namespace disco::sim
