// Parallel sweep engine: runs independent experiment cells (one run_cell
// each) on a work-queue thread pool. Every figure/table in the paper is a
// sweep over (scheme x algorithm x workload x mesh) cells and each cell is
// shared-nothing, so the evaluation matrix parallelizes embarrassingly.
//
// Guarantees:
//   - Determinism: each cell's RNG seed is splitmix64(base_seed, seed_group)
//     — a pure function of the cell's position in the sweep, never of
//     execution order — and results are aggregated in input order, so an
//     N-thread run emits bit-identical metrics to a serial run.
//   - Robustness: a cell that throws is retried up to max_attempts times and
//     then recorded as Failed (with the exception text) instead of aborting
//     the whole sweep; an optional wall-clock timeout records TimedOut and
//     reclaims the worker via the cell's cooperative cancellation token.
//   - Crash resilience: with SupervisorOptions active (--isolate,
//     --checkpoint-dir, --resume) each cell runs in a forked child process,
//     so a SIGSEGV or a hard hang kills one cell — retried with backoff,
//     postmortem black box on disk — never the sweep. Completed cells are
//     journaled to an append-only manifest and --resume replays them
//     byte-identically (see supervisor.h).
//   - Sharding: `--shard i/k` splits a sweep across machines by cell group,
//     so rows that normalize against a sibling cell stay intact.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "workload/profile.h"

namespace disco::sim {

/// Crash-resilient execution knobs (see supervisor.h). The supervisor takes
/// over the sweep when any of these is set; with all defaults the sweep runs
/// on the classic in-process thread pool.
struct SupervisorOptions {
  /// Run each cell attempt in a forked child process; a crash or hard hang
  /// costs one cell attempt, never the sweep.
  bool isolate = false;
  /// Journal every finished cell to <dir>/manifest.jsonl (atomic rewrite +
  /// rename per cell) and write postmortem black boxes here.
  std::string checkpoint_dir;
  /// Path of a prior run's manifest: its Ok cells are adopted verbatim (the
  /// wire format is bit-exact) and only the rest are run.
  std::string resume_manifest;
  /// Extra attempts after the first for a crashed / timed-out / failed cell.
  unsigned max_retries = 1;
  /// Delay before retry r is retry_backoff_ms << (r - 1).
  std::uint64_t retry_backoff_ms = 100;
  /// After a timeout: SIGTERM (child) or cancellation-token (thread) grace
  /// before escalating to SIGKILL / detach.
  std::uint64_t hang_grace_ms = 2000;

  // --- mid-cell checkpointing ------------------------------------------
  /// When > 0 (and checkpoint_dir is set, isolated mode), each forked
  /// worker snapshots its full simulation state to
  /// <checkpoint_dir>/snap-cell<i>.bin every N measured cycles; a retried
  /// attempt (after a crash, SIGKILL or timeout) resumes from the last
  /// good snapshot instead of recomputing from cycle 0, byte-identically.
  /// Corrupted / mismatched snapshots are rejected by checksum and the
  /// retry falls back to a from-zero run. 0 = off.
  std::uint64_t snapshot_interval_cycles = 0;
  /// Resident-set cap per isolated child, in MiB: a worker whose RSS
  /// exceeds it is SIGKILLed and journaled as `resource_exhausted`
  /// (distinct from crashes and hangs), honoring retry/backoff. 0 = off.
  std::uint64_t max_rss_mb = 0;

  // --- deterministic fault hooks for tests and the CI recovery drill ---
  /// Cell index that SIGSEGVs (isolated) / throws (in-process); -1 = none.
  int debug_crash_cell = -1;
  /// Cell index that hangs until killed / cancelled; -1 = none.
  int debug_hang_cell = -1;
  /// Cell index that throws a non-std::exception value; -1 = none.
  int debug_throw_cell = -1;
  /// Cell index whose isolated child raises SIGKILL on itself right after
  /// the first snapshot at or past debug_kill_cycle (tests the
  /// kill-between-snapshots recovery path); -1 = none.
  int debug_kill_cell = -1;
  std::uint64_t debug_kill_cycle = 0;
  /// The hooks fire only while the cell's attempt number is <= this, so a
  /// retried cell recovers (set very high to exhaust retries instead).
  unsigned debug_crash_attempts = 1;

  bool active() const {
    return isolate || !checkpoint_dir.empty() || !resume_manifest.empty() ||
           snapshot_interval_cycles > 0 || max_rss_mb > 0 ||
           debug_crash_cell >= 0 || debug_hang_cell >= 0 ||
           debug_throw_cell >= 0 || debug_kill_cell >= 0;
  }
};

struct SweepOptions {
  /// Worker threads; 0 means max(1, hardware_concurrency - 1).
  unsigned threads = 0;
  /// Per-cell seeds derive from this (see SweepCell::seed_group).
  std::uint64_t base_seed = 1;
  /// When false, cells keep the seed already in their SystemConfig.
  bool reseed_cells = true;
  /// Attempts per cell before it is recorded as Failed (>= 1). The
  /// supervisor uses supervisor.max_retries instead.
  unsigned max_attempts = 2;
  /// Wall-clock budget per cell attempt; 0 disables the timeout.
  std::uint64_t cell_timeout_ms = 0;
  /// Run only cells whose group satisfies group % shard_count == shard_index;
  /// the rest are recorded as Skipped.
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  /// Progress reporting (cells done / total, ETA) on stderr.
  bool progress = true;
  std::string progress_label = "sweep";
  /// Fault-injection knobs (--fault-* flags); disabled unless any rate flag
  /// is given. Benches apply this to their cells via configure_faults().
  FaultConfig fault;
  /// Tracing / invariant-checking knobs (--trace, --trace-filter,
  /// --check-invariants). run_sweep applies them to every cell; out_path is
  /// expanded to <prefix>-cell<i>.json per cell.
  TraceConfig trace;
  /// In-sim no-progress watchdog (--progress-watchdog N): applied to every
  /// cell's SystemConfig so a deadlocked / livelocked cell fails with a
  /// classified NoProgressError instead of burning its wall-clock budget.
  std::uint64_t progress_watchdog_cycles = 0;
  /// Crash-resilient execution (--isolate, --checkpoint-dir, --resume, ...).
  SupervisorOptions supervisor;
};

struct SweepCell {
  SystemConfig cfg;
  workload::BenchmarkProfile profile;
  RunOptions opt;

  static constexpr std::size_t kAuto = static_cast<std::size_t>(-1);
  /// Sharding granule. Cells sharing a group always land in the same shard,
  /// so a bench row that normalizes several schemes against each other is
  /// never split across machines. Defaults to the cell's own index.
  std::size_t group = kAuto;
  /// Seed granule: cells sharing a seed_group replay identical workload
  /// traffic (required when cells of a row are compared against each other).
  /// Defaults to `group`.
  std::size_t seed_group = kAuto;
};

enum class CellStatus : std::uint8_t {
  Ok,
  Failed,       ///< threw (any type — rendered to a structured error string)
  TimedOut,     ///< exceeded the wall-clock budget; worker/child reclaimed
  Skipped,      ///< not in this shard
  Crashed,      ///< isolated child died on a signal (SIGSEGV, ...)
  Interrupted,  ///< SIGINT/SIGTERM shutdown before the cell could finish
  /// Isolated child exceeded its --max-rss-mb resident-set cap and was
  /// SIGKILLed by the supervisor — a resource outcome distinct from
  /// crashes and hangs, so memory regressions are visible in manifests.
  ResourceExhausted,
};

const char* to_string(CellStatus s);

struct SweepCellOutcome {
  std::size_t index = 0;
  std::size_t group = 0;
  CellStatus status = CellStatus::Skipped;
  unsigned attempts = 0;
  double wall_ms = 0;
  /// Measurement cycles recovered from a mid-cell snapshot by the attempt
  /// that finished this cell (0 = it ran from cycle 0). Journaled in the
  /// manifest so `manifest_inspect` can report work saved by checkpointing.
  std::uint64_t snap_saved_cycles = 0;
  std::string error;    ///< exception text of the last failed attempt
  CellResult result;    ///< valid only when status == CellStatus::Ok

  bool ok() const { return status == CellStatus::Ok; }
};

struct SweepResult {
  std::vector<SweepCellOutcome> cells;  ///< input order, one per input cell
  std::size_t completed = 0;
  std::size_t failed = 0;   ///< Failed + TimedOut + Crashed
  std::size_t crashed = 0;  ///< the Crashed subset of `failed`
  std::size_t skipped = 0;  ///< not in this shard
  /// A SIGINT/SIGTERM shutdown cut the sweep short; partial results and the
  /// checkpoint manifest (if any) were still flushed.
  bool interrupted = false;
  double wall_ms = 0;

  bool all_ok() const { return failed == 0 && !interrupted; }
  /// The Ok cell at `index`, or nullptr if it failed or was skipped.
  const CellResult* ok(std::size_t index) const;
  /// All Ok results in input order (failed/skipped cells omitted).
  std::vector<CellResult> ok_results() const;
};

/// Run the sweep. Dispatches to the crash-resilient supervisor
/// (run_sweep_supervised) when opt.supervisor.active(); may throw
/// std::runtime_error if a resume manifest does not match the sweep.
SweepResult run_sweep(const std::vector<SweepCell>& cells,
                      const SweepOptions& opt);

/// Generic parallel map over [0, count) on the same thread pool with the
/// same ordered-completion progress reporting, for sweeps whose cells are
/// not run_cell invocations (network-only load/latency points, per-algorithm
/// corpus scans). `fn` must write its result into caller-owned, per-index
/// storage; no timeout/retry wrapping is applied.
void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 const SweepOptions& opt);

/// Install SIGINT/SIGTERM handlers that raise the process interrupt flag
/// (common/interrupt.h): workers stop claiming cells, running cells unwind
/// via their cancellation tokens, partial results and the checkpoint
/// manifest are flushed, and drivers exit with code 130. A second signal
/// exits immediately.
void install_interrupt_handlers();

/// Parse the standard sweep flags (--threads N, --shard i/k, --seed S,
/// --no-progress, --timeout-ms T, --isolate, --checkpoint-dir D, --resume M,
/// --help, ...) out of argv; every unrecognized argument is appended to
/// `positional` in order. Exits with a usage message on malformed flags or
/// --help. The DISCO_DEBUG_{CRASH,HANG,THROW}_CELL / DISCO_DEBUG_CRASH_ATTEMPTS
/// environment variables seed the corresponding debug hooks.
SweepOptions parse_sweep_flags(int argc, char** argv,
                               std::vector<std::string>& positional);

}  // namespace disco::sim
