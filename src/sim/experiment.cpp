#include "sim/experiment.h"

#include <algorithm>
#include <csignal>
#include <cmath>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <unistd.h>

#include "common/snapshot.h"

namespace disco::sim {

std::uint64_t cell_digest(const SystemConfig& cfg,
                          const workload::BenchmarkProfile& profile,
                          const RunOptions& opt) {
  std::ostringstream id;
  id << cfg.summary() << '|' << cfg.seed << '|' << cfg.algorithm << '|'
     << static_cast<int>(cfg.scheme) << '|' << profile.name << '|'
     << opt.warmup_ops_per_core << '|' << opt.warmup_cycles << '|'
     << opt.measure_cycles;
  const std::string s = id.str();
  return snap::crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

namespace {

/// Restore-or-warmup, then the chunked measurement loop. Returns nothing;
/// on exit `sys` has simulated exactly opt.measure_cycles of measurement.
void run_measurement(cmp::CmpSystem& sys, const SystemConfig& cfg,
                     const workload::BenchmarkProfile& profile,
                     const RunOptions& opt) {
  const bool checkpointing =
      opt.snapshot_interval > 0 && !opt.snapshot_path.empty();
  if (!checkpointing) {
    sys.functional_warmup(opt.warmup_ops_per_core);
    sys.run(opt.warmup_cycles);
    sys.reset_stats();
    sys.run(opt.measure_cycles);
    return;
  }

  const std::uint64_t digest = cell_digest(cfg, profile, opt);
  Cycle done = 0;
  if (::access(opt.snapshot_path.c_str(), R_OK) == 0) {
    try {
      done = sys.restore_snapshot(opt.snapshot_path, digest);
      if (done > opt.measure_cycles) done = opt.measure_cycles;
    } catch (const snap::SnapshotError&) {
      // Corrupted / truncated / different-cell snapshot: fall back to a
      // from-zero run. The file is superseded by the next good snapshot.
      done = 0;
    }
  }
  if (opt.resumed_from_cycles) *opt.resumed_from_cycles = done;
  if (done == 0) {
    sys.functional_warmup(opt.warmup_ops_per_core);
    sys.run(opt.warmup_cycles);
    sys.reset_stats();
  }

  while (done < opt.measure_cycles) {
    const Cycle chunk =
        std::min<Cycle>(opt.snapshot_interval, opt.measure_cycles - done);
    sys.run(chunk);
    done += chunk;
    if (done < opt.measure_cycles) {
      sys.save_snapshot(opt.snapshot_path, done, digest);
      if (opt.debug_kill_at > 0 && done >= opt.debug_kill_at)
        ::raise(SIGKILL);  // crash drill: die right between snapshots
    }
  }
}

}  // namespace

CellResult run_cell(const SystemConfig& cfg,
                    const workload::BenchmarkProfile& profile,
                    const RunOptions& opt) {
  cmp::CmpSystem sys(cfg, profile);
  sys.set_cancel_token(opt.cancel);
  run_measurement(sys, cfg, profile, opt);

  const auto& cs = sys.cache_stats();
  const auto& ns = sys.noc_stats();

  CellResult r;
  r.workload = profile.name;
  r.algorithm = cfg.algorithm;
  r.scheme = cfg.scheme;
  r.measured_cycles = opt.measure_cycles;
  r.core_ops = sys.total_core_ops();
  r.l1_misses = cs.l1_misses;
  r.avg_nuca_latency = cs.nuca_latency.mean();
  r.avg_miss_latency = cs.miss_latency.mean();
  r.avg_dram_latency = cs.dram_latency.mean();
  r.l2_miss_rate = cs.l2_miss_rate();
  r.avg_packet_latency = ns.avg_packet_latency();
  r.avg_stored_ratio = cs.stored_line_bytes.count() > 0
                           ? static_cast<double>(kBlockBytes) /
                                 cs.stored_line_bytes.mean()
                           : 1.0;
  r.link_flits = ns.link_flits;
  r.inflight_compressions = ns.inflight_compressions;
  r.inflight_decompressions = ns.inflight_decompressions;
  r.source_compressions = ns.source_compressions;
  r.compression_aborts = ns.compression_aborts;
  r.decompression_aborts = ns.decompression_aborts;
  r.hidden_decomp_ops = ns.hidden_decomp_ops;
  r.exposed_decomp_cycles = ns.exposed_decomp_cycles;
  r.energy = energy::compute_energy(ns, cs, cfg, opt.measure_cycles,
                                    sys.algorithm().hardware_overhead() / 0.023);
  if (const fault::FaultInjector* fi = sys.fault_injector()) {
    const fault::FaultCounters& fc = fi->counters();
    r.fault.enabled = true;
    r.fault.link_bit_flips = fc.link_bit_flips;
    r.fault.llc_bit_flips = fc.llc_bit_flips;
    r.fault.flit_drops = fc.flit_drops;
    r.fault.flit_duplicates = fc.flit_duplicates;
    r.fault.engine_stalls = fc.engine_stalls;
    r.fault.engine_faults = fc.engine_faults;
    r.fault.crc_checks = ns.crc_checks;
    r.fault.corruptions_detected = ns.corruptions_detected;
    r.fault.silent_corruptions = ns.silent_corruptions;
    r.fault.flit_loss_timeouts = ns.flit_loss_timeouts;
    r.fault.nacks_sent = ns.nacks_sent;
    r.fault.retransmissions = ns.retransmissions;
    r.fault.retransmit_deliveries = ns.retransmit_deliveries;
    r.fault.backoff_cycles = ns.backoff_cycles;
    r.fault.duplicate_flits_dropped = ns.duplicate_flits_dropped;
    r.fault.duplicate_retransmissions = ns.duplicate_retransmissions;
    r.fault.unrecovered_deliveries = ns.unrecovered_deliveries;
    r.fault.engine_decode_errors = ns.engine_decode_errors;
    r.fault.engines_quarantined = ns.engines_quarantined;
    if (cfg.fault.hard_enabled()) {
      r.fault.hard_enabled = true;
      r.fault.hard_faults_applied = sys.hard_faults_applied();
      r.fault.links_killed = ns.links_killed;
      r.fault.routers_killed = ns.routers_killed;
      r.fault.engines_hard_failed = ns.engines_hard_failed;
      r.fault.banks_killed = ns.banks_killed;
      r.fault.unreachable_drops = ns.unreachable_drops;
      r.fault.dead_component_drops = ns.dead_component_drops;
      r.fault.flits_destroyed = ns.flits_destroyed;
      r.fault.severed_packets = ns.severed_packets;
      r.fault.reroutes = ns.reroutes;
      r.fault.bypass_retransmits = ns.bypass_retransmits;
      r.fault.synth_completions = ns.synth_completions;
    }
  }
  if (const trace::InvariantChecker* chk = sys.invariant_checker())
    r.invariants = chk->summary();
  if (trace::Tracer* t = sys.tracer(); t != nullptr && cfg.trace.enabled) {
    std::ostringstream os;
    t->write_canonical(os);
    r.trace_text = os.str();
    if (!cfg.trace.out_path.empty()) {
      std::ofstream f(cfg.trace.out_path);
      if (f) t->write_chrome_json(f);
    }
  }
  return r;
}

std::vector<CellResult> run_schemes(SystemConfig cfg,
                                    const workload::BenchmarkProfile& profile,
                                    const std::vector<Scheme>& schemes,
                                    const RunOptions& opt) {
  std::vector<CellResult> out;
  out.reserve(schemes.size());
  for (const Scheme s : schemes) {
    cfg.scheme = s;
    out.push_back(run_cell(cfg, profile, opt));
  }
  return out;
}

double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : v) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(v.size()));
}

}  // namespace disco::sim
