// Internals shared between the sweep engine (sweep.cpp) and the crash
// supervisor (supervisor.cpp): the thread pool, the per-attempt runner with
// cooperative-cancellation timeout handling, cell preparation and outcome
// accounting. Not part of the public sweep API; tests include it to poke at
// attempt-thread accounting.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace disco::sim::detail {

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

unsigned resolve_threads(unsigned requested);

/// Serialized stderr progress line: cells done / total, elapsed, ETA.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, const SweepOptions& opt)
      : total_(total), enabled_(opt.progress), label_(opt.progress_label),
        start_(Clock::now()) {}

  void cell_done() {
    if (!enabled_) return;
    const std::size_t done = ++done_;
    std::lock_guard<std::mutex> lock(mu_);
    const double elapsed_s = ms_since(start_) / 1000.0;
    const double eta_s =
        done > 0 ? elapsed_s * static_cast<double>(total_ - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::fprintf(stderr, "\r%s: %zu/%zu cells (%3.0f%%)  elapsed %.1fs  eta %.1fs ",
                 label_.c_str(), done, total_,
                 100.0 * static_cast<double>(done) / static_cast<double>(total_),
                 elapsed_s, eta_s);
    if (done == total_) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }

  void note(const std::string& line) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "\n%s: %s\n", label_.c_str(), line.c_str());
  }

 private:
  const std::size_t total_;
  const bool enabled_;
  const std::string label_;
  const Clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
};

/// Pull-based pool: workers claim task indices from a shared counter. With
/// one resolved thread the tasks run inline on the calling thread, so serial
/// and parallel execution share one code path. Workers stop claiming new
/// tasks once the process interrupt flag is raised.
void run_pool(std::size_t count, unsigned threads,
              const std::function<void(std::size_t)>& task);

/// Render the in-flight exception — whatever its type — as one line. Must be
/// called from inside a catch block. This is what keeps a cell that throws
/// `42` or a C string a structured CellResult error instead of a terminate().
std::string describe_current_exception();

/// Attempt threads currently alive (including detached, wedged ones). Tests
/// assert this returns to zero after a timed-out cell, proving the timeout
/// path reclaims its thread instead of leaking it.
std::size_t live_attempt_threads();

/// Optional per-attempt hook, run on the attempt thread (with that attempt's
/// cancellation token) just before run_cell. The supervisor injects its
/// debug crash/hang/throw faults through this.
using AttemptHook = std::function<void(const std::atomic<bool>* cancel)>;

/// One attempt at a cell. Returns Ok/Failed/Interrupted, or TimedOut when a
/// wall-clock budget is set and exceeded — the attempt's cancellation token
/// is then fired and the thread joined within `hang_grace_ms` (the sim loop
/// polls the token every few hundred cycles); only a truly wedged attempt is
/// detached.
CellStatus run_attempt(const SweepCell& cell, std::uint64_t timeout_ms,
                       std::uint64_t hang_grace_ms, const AttemptHook& hook,
                       CellResult& result, std::string& error);

/// Resolve groups / seeds / trace config / watchdog per cell, record
/// skipped-by-shard cells in `res`, and append the runnable cell indices to
/// `work` — everything order-dependent, done deterministically before any
/// worker runs.
std::vector<SweepCell> prepare_cells(const std::vector<SweepCell>& cells,
                                     const SweepOptions& opt, SweepResult& res,
                                     std::vector<std::size_t>& work);

/// Recompute completed/failed/crashed/skipped/interrupted from cell states.
void tally_outcomes(SweepResult& res);

}  // namespace disco::sim::detail
