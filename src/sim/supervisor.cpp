#include "sim/supervisor.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "cmp/system.h"
#include "common/interrupt.h"
#include "sim/sweep_internal.h"
#include "sim/wire.h"

namespace disco::sim {
namespace {

using detail::Clock;
using detail::ms_since;

// ---------------------------------------------------------------------------
// SIGINT/SIGTERM -> interrupt flag
// ---------------------------------------------------------------------------

std::atomic<int> g_interrupt_signals{0};

void on_interrupt(int) {
  interrupt_flag().store(true, std::memory_order_relaxed);
  // Second signal: the user really means it; skip the graceful flush.
  if (g_interrupt_signals.fetch_add(1, std::memory_order_relaxed) > 0)
    ::_exit(130);
}

const char* signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGINT: return "SIGINT";
    default: return "signal";
  }
}

// ---------------------------------------------------------------------------
// Manifest encoding
// ---------------------------------------------------------------------------

CellStatus status_from_name(const std::string& s) {
  for (const CellStatus c :
       {CellStatus::Ok, CellStatus::Failed, CellStatus::TimedOut,
        CellStatus::Skipped, CellStatus::Crashed, CellStatus::Interrupted,
        CellStatus::ResourceExhausted}) {
    if (s == to_string(c)) return c;
  }
  throw std::runtime_error("manifest: unknown cell status \"" + s + "\"");
}

std::string encode_header(std::size_t cells, const SweepOptions& opt) {
  return "{\"manifest\":1,\"cells\":" + std::to_string(cells) +
         ",\"base_seed\":" + std::to_string(opt.base_seed) +
         ",\"shard_index\":" + std::to_string(opt.shard_index) +
         ",\"shard_count\":" + std::to_string(std::max(1u, opt.shard_count)) +
         "}";
}

std::string encode_entry(const SweepCellOutcome& out) {
  std::string line = "{\"cell\":" + std::to_string(out.index) +
                     ",\"group\":" + std::to_string(out.group) +
                     ",\"status\":";
  wire::append_json_string(line, to_string(out.status));
  line += ",\"attempts\":" + std::to_string(out.attempts);
  if (out.snap_saved_cycles > 0)
    line += ",\"snap_saved_cycles\":" + std::to_string(out.snap_saved_cycles);
  line += ",\"error\":";
  wire::append_json_string(line, out.error);
  if (out.ok()) {
    line += ",\"result\":";
    line += wire::encode_result(out.result);
  }
  line += "}";
  return line;
}

std::string snapshot_path_for(const std::string& dir, std::size_t cell) {
  return dir + "/snap-cell" + std::to_string(cell) + ".bin";
}

/// Delete a cell's snapshot (and any torn tmp file) — called when the cell
/// reaches a terminal outcome, so checkpoint dirs never accumulate stale
/// mid-cell state. Interrupted cells keep theirs for the --resume rerun.
void gc_snapshot(const std::string& dir, std::size_t cell) {
  if (dir.empty()) return;
  const std::string path = snapshot_path_for(dir, cell);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

/// Append-only checkpoint journal with atomic replacement: the manifest is
/// rewritten to a tmp file and rename()d into place after every cell, so a
/// reader (or a resume after SIGKILL) only ever sees a complete, consistent
/// file.
class CheckpointJournal {
 public:
  void open(const std::string& dir, std::string header,
            std::vector<std::string> carried) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path_ = dir + "/manifest.jsonl";
    tmp_ = path_ + ".tmp";
    lines_.clear();
    lines_.push_back(std::move(header));
    for (auto& l : carried) lines_.push_back(std::move(l));
    flush();
  }

  bool active() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void append(std::string line) {
    if (!active()) return;
    std::lock_guard<std::mutex> lock(mu_);
    lines_.push_back(std::move(line));
    flush();
  }

 private:
  void flush() {
    std::ofstream f(tmp_, std::ios::trunc);
    for (const auto& l : lines_) f << l << '\n';
    f.flush();
    f.close();
    std::rename(tmp_.c_str(), path_.c_str());
  }

  std::string path_;
  std::string tmp_;
  std::vector<std::string> lines_;
  std::mutex mu_;
};

// ---------------------------------------------------------------------------
// Deterministic debug faults (tests + the CI recovery drill)
// ---------------------------------------------------------------------------

void debug_fault_hook(const SupervisorOptions& so, std::size_t cell,
                      unsigned attempt, bool in_child,
                      const std::atomic<bool>* cancel) {
  if (attempt > so.debug_crash_attempts) return;
  const auto is = [cell](int k) {
    return k >= 0 && static_cast<std::size_t>(k) == cell;
  };
  if (is(so.debug_crash_cell)) {
    if (in_child) std::raise(SIGSEGV);
    throw std::runtime_error("debug: injected crash");
  }
  if (is(so.debug_throw_cell)) throw 42;  // deliberately not a std::exception
  if (is(so.debug_hang_cell)) {
    if (in_child) {
      for (;;) ::pause();  // until the parent's SIGTERM/SIGKILL
    }
    while (cancel == nullptr || !cancel->load(std::memory_order_relaxed))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    throw cmp::CancelledError();
  }
}

// ---------------------------------------------------------------------------
// Child side of --isolate
// ---------------------------------------------------------------------------

// Postmortem destination for this child's signal handlers; set before the
// cell runs. The handlers are technically not async-signal-safe (they
// allocate while formatting the black box) — acceptable for a best-effort
// dump from a process that is dying anyway, and the parent's wall-clock
// budget backstops a handler that wedges.
std::string g_child_postmortem;
volatile std::sig_atomic_t g_in_fatal_handler = 0;

void write_child_postmortem(const char* reason) {
  if (g_child_postmortem.empty()) return;
  std::ofstream f(g_child_postmortem);
  if (!f) return;
  if (cmp::CmpSystem* sys = cmp::CmpSystem::current()) {
    sys->write_postmortem(f, reason);
  } else {
    f << "=== DISCO postmortem black box ===\nreason: " << reason
      << "\n(no live system at time of failure)\n";
  }
  f.flush();
}

void on_child_crash(int sig) {
  if (g_in_fatal_handler) ::_exit(128 + sig);
  g_in_fatal_handler = 1;
  write_child_postmortem(signal_name(sig));
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void on_child_term(int) {
  if (g_in_fatal_handler) ::_exit(124);
  g_in_fatal_handler = 1;
  write_child_postmortem("SIGTERM from supervisor (wall-clock budget or shutdown)");
  ::_exit(124);
}

void write_all(int fd, const std::string& payload) {
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

[[noreturn]] void child_main(SweepCell cell, std::size_t index,
                             unsigned attempt, const SweepOptions& opt,
                             int wfd) {
  // Fresh signal dispositions: the parent coordinates interactive shutdown
  // (it SIGTERMs us), so a terminal Ctrl-C must not hit children directly.
  std::signal(SIGINT, SIG_IGN);
  struct sigaction crash;
  std::memset(&crash, 0, sizeof crash);
  crash.sa_handler = on_child_crash;
  sigemptyset(&crash.sa_mask);
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT})
    ::sigaction(sig, &crash, nullptr);
  struct sigaction term;
  std::memset(&term, 0, sizeof term);
  term.sa_handler = on_child_term;
  sigemptyset(&term.sa_mask);
  ::sigaction(SIGTERM, &term, nullptr);

  if (!opt.supervisor.checkpoint_dir.empty()) {
    g_child_postmortem = opt.supervisor.checkpoint_dir + "/postmortem-cell" +
                         std::to_string(index) + "-attempt" +
                         std::to_string(attempt) + ".txt";
    cell.cfg.postmortem_path = g_child_postmortem;
  }

  // Black box: keep a small tracer ring live even when the user asked for no
  // tracing, so a postmortem always carries the last events. Tracing is pure
  // observation and trace_text is stripped below, so results stay
  // bit-identical to a non-isolated run.
  bool auto_trace = false;
  if (!cell.cfg.trace.active() && !opt.supervisor.checkpoint_dir.empty()) {
    auto_trace = true;
    cell.cfg.trace.enabled = true;
    cell.cfg.trace.ring_capacity = 4096;
    cell.cfg.trace.out_path.clear();
  }

  // Mid-cell checkpointing: snapshot into the checkpoint dir every N
  // measured cycles and resume from the last good snapshot on a retry.
  std::uint64_t resumed_cycles = 0;
  const bool snapshotting = opt.supervisor.snapshot_interval_cycles > 0 &&
                            !opt.supervisor.checkpoint_dir.empty();
  if (snapshotting) {
    cell.opt.snapshot_interval = opt.supervisor.snapshot_interval_cycles;
    cell.opt.snapshot_path =
        snapshot_path_for(opt.supervisor.checkpoint_dir, index);
    cell.opt.resumed_from_cycles = &resumed_cycles;
    if (opt.supervisor.debug_kill_cell >= 0 &&
        static_cast<std::size_t>(opt.supervisor.debug_kill_cell) == index &&
        attempt <= opt.supervisor.debug_crash_attempts)
      cell.opt.debug_kill_at = opt.supervisor.debug_kill_cycle;
  }

  std::string payload;
  int exit_code = 0;
  try {
    debug_fault_hook(opt.supervisor, index, attempt, /*in_child=*/true,
                     nullptr);
    CellResult r = run_cell(cell.cfg, cell.profile, cell.opt);
    if (auto_trace) r.trace_text.clear();
    payload = wire::encode_result(r);
    if (snapshotting) {
      // Ride the result object: the parent journals how many cycles this
      // attempt recovered from the snapshot instead of re-simulating.
      payload.pop_back();  // '}'
      payload +=
          ",\"snapshot_resume_cycle\":" + std::to_string(resumed_cycles) + "}";
    }
  } catch (...) {
    payload = "{\"error\":";
    wire::append_json_string(payload, detail::describe_current_exception());
    payload += "}";
    exit_code = 3;
  }
  write_all(wfd, payload);
  ::close(wfd);
  std::_Exit(exit_code);
}

// ---------------------------------------------------------------------------
// Parent side of --isolate: single-threaded poll() scheduler
// ---------------------------------------------------------------------------

struct ChildProc {
  pid_t pid = -1;
  int fd = -1;
  std::size_t windex = 0;  ///< index into the work list
  unsigned attempt = 1;
  Clock::time_point start;
  bool term_sent = false;       ///< SIGTERM sent for exceeding the budget
  bool interrupt_sent = false;  ///< SIGTERM sent for a sweep shutdown
  bool killed = false;          ///< escalated to SIGKILL
  bool rss_killed = false;      ///< SIGKILLed for exceeding --max-rss-mb
  std::uint64_t rss_mb = 0;     ///< RSS at the moment of the kill
  Clock::time_point term_at;
  std::string buf;  ///< accumulated pipe payload
};

struct PendingAttempt {
  std::size_t windex = 0;
  unsigned attempt = 1;
  Clock::time_point not_before;
};

class IsolatedScheduler {
 public:
  IsolatedScheduler(const std::vector<SweepCell>& prepared,
                    const std::vector<std::size_t>& work,
                    const SweepOptions& opt, unsigned max_attempts,
                    SweepResult& res, CheckpointJournal& journal,
                    detail::ProgressMeter& progress)
      : prepared_(prepared), work_(work), opt_(opt), so_(opt.supervisor),
        max_attempts_(max_attempts), res_(res), journal_(journal),
        progress_(progress), cell_start_(work.size()) {}

  void run() {
    // The scheduler itself stays single-threaded: forking from a process
    // with live worker threads can deadlock the child on allocator locks.
    const std::size_t slots =
        std::min<std::size_t>(detail::resolve_threads(opt_.threads),
                              std::max<std::size_t>(work_.size(), 1));
    const auto now0 = Clock::now();
    for (std::size_t w = 0; w < work_.size(); ++w)
      pending_.push_back({w, 1, now0});

    bool shutdown_sent = false;
    while (!running_.empty() || !pending_.empty()) {
      if (interrupt_requested() && !shutdown_sent) {
        shutdown_sent = true;
        begin_shutdown();
      }
      if (!interrupt_requested()) launch_ready(slots);
      if (running_.empty()) {
        if (pending_.empty()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      poll_children();
      enforce_deadlines();
    }
  }

 private:
  void launch_ready(std::size_t slots) {
    const auto now = Clock::now();
    for (auto it = pending_.begin();
         it != pending_.end() && running_.size() < slots;) {
      if (it->not_before <= now) {
        spawn(*it);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void spawn(const PendingAttempt& p) {
    const std::size_t i = work_[p.windex];
    if (p.attempt == 1) cell_start_[p.windex] = Clock::now();
    int fds[2];
    if (::pipe(fds) != 0) {
      record_final(p.windex, p.attempt, CellStatus::Failed,
                   std::string("pipe: ") + std::strerror(errno));
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      record_final(p.windex, p.attempt, CellStatus::Failed,
                   std::string("fork: ") + std::strerror(errno));
      return;
    }
    if (pid == 0) {
      ::close(fds[0]);
      child_main(prepared_[i], i, p.attempt, opt_, fds[1]);  // never returns
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ChildProc c;
    c.pid = pid;
    c.fd = fds[0];
    c.windex = p.windex;
    c.attempt = p.attempt;
    c.start = Clock::now();
    running_.push_back(std::move(c));
  }

  void poll_children() {
    std::vector<pollfd> fds(running_.size());
    for (std::size_t k = 0; k < running_.size(); ++k)
      fds[k] = {running_[k].fd, POLLIN, 0};
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);

    std::vector<std::size_t> closed;
    for (std::size_t k = 0; k < running_.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      ChildProc& c = running_[k];
      char tmp[4096];
      for (;;) {
        const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
        if (n > 0) {
          c.buf.append(tmp, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        closed.push_back(k);  // EOF (or hard read error): child is done
        break;
      }
    }
    for (auto it = closed.rbegin(); it != closed.rend(); ++it) reap(*it);
  }

  void reap(std::size_t k) {
    ChildProc c = std::move(running_[k]);
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(k));
    ::close(c.fd);
    int wstatus = 0;
    while (::waitpid(c.pid, &wstatus, 0) < 0 && errno == EINTR) {
    }

    CellStatus status;
    std::string error;
    CellResult result;
    std::uint64_t resumed_cycles = 0;
    classify_exit(c, wstatus, status, error, result, resumed_cycles);

    const bool retryable = status == CellStatus::Failed ||
                           status == CellStatus::Crashed ||
                           status == CellStatus::TimedOut ||
                           status == CellStatus::ResourceExhausted;
    if (retryable && c.attempt < max_attempts_ && !interrupt_requested()) {
      record_attempt(c.windex, c.attempt, status, error);
      const std::uint64_t backoff = so_.retry_backoff_ms << (c.attempt - 1);
      pending_.push_back(
          {c.windex, c.attempt + 1,
           Clock::now() + std::chrono::milliseconds(backoff)});
      progress_.note("cell " + std::to_string(work_[c.windex]) + " " +
                     to_string(status) + " (" + error + "); retry " +
                     std::to_string(c.attempt + 1) + "/" +
                     std::to_string(max_attempts_) + " in " +
                     std::to_string(backoff) + "ms");
      return;
    }
    SweepCellOutcome& out = res_.cells[work_[c.windex]];
    out.attempts = c.attempt;
    out.status = status;
    out.error = std::move(error);
    if (status == CellStatus::Ok) {
      out.result = std::move(result);
      out.snap_saved_cycles = resumed_cycles;
    }
    finalize(c.windex);
  }

  void classify_exit(const ChildProc& c, int wstatus, CellStatus& status,
                     std::string& error, CellResult& result,
                     std::uint64_t& resumed_cycles) const {
    if (c.interrupt_sent) {
      status = CellStatus::Interrupted;
      error = "sweep interrupted";
      return;
    }
    if (c.rss_killed) {
      status = CellStatus::ResourceExhausted;
      error = "child resident set " + std::to_string(c.rss_mb) +
              "MiB exceeded the " + std::to_string(so_.max_rss_mb) +
              "MiB --max-rss-mb cap (killed)";
      return;
    }
    if (c.term_sent) {
      status = CellStatus::TimedOut;
      error = "cell exceeded " + std::to_string(opt_.cell_timeout_ms) +
              "ms budget (child " + (c.killed ? "killed" : "terminated") + ")";
      return;
    }
    if (WIFSIGNALED(wstatus)) {
      const int sig = WTERMSIG(wstatus);
      status = CellStatus::Crashed;
      error = "child killed by signal " + std::to_string(sig) + " (" +
              signal_name(sig) + ")";
      return;
    }
    const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
    if (code == 0) {
      try {
        const wire::Value v = wire::parse_object(c.buf);
        result = wire::decode_result(v);
        resumed_cycles = v.num_or("snapshot_resume_cycle", 0);
        status = CellStatus::Ok;
      } catch (const std::exception& e) {
        status = CellStatus::Failed;
        error = std::string("truncated result from child: ") + e.what();
      }
      return;
    }
    if (code == 3) {
      status = CellStatus::Failed;
      try {
        error = wire::parse_object(c.buf).str_or("error", "unknown error");
      } catch (const std::exception&) {
        error = "child failed (unparseable error payload)";
      }
      return;
    }
    if (code == 124) {
      // The child acknowledged our SIGTERM (term_sent handled above, so this
      // is a stray 124 — treat it like a timeout ack all the same).
      status = CellStatus::TimedOut;
      error = "child acknowledged termination";
      return;
    }
    status = CellStatus::Crashed;
    error = "child exited with unexpected code " + std::to_string(code);
  }

  /// Resident set of `pid` in MiB via /proc/<pid>/statm (Linux; returns 0
  /// where /proc is unavailable, which disables the cap gracefully).
  static std::uint64_t read_rss_mb(pid_t pid) {
    char path[64];
    std::snprintf(path, sizeof path, "/proc/%d/statm", static_cast<int>(pid));
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) return 0;
    unsigned long long size = 0, resident = 0;
    const int n = std::fscanf(f, "%llu %llu", &size, &resident);
    std::fclose(f);
    if (n != 2) return 0;
    static const long page = ::sysconf(_SC_PAGESIZE);
    return resident * static_cast<unsigned long long>(page) / (1024 * 1024);
  }

  void enforce_deadlines() {
    const auto now = Clock::now();
    for (ChildProc& c : running_) {
      // Memory watchdog: a worker past the RSS cap is killed outright
      // (SIGTERM could be absorbed by an allocator stuck in swap-thrash)
      // and journaled as resource_exhausted, not conflated with hangs.
      if (so_.max_rss_mb > 0 && !c.term_sent && !c.interrupt_sent &&
          !c.rss_killed) {
        const std::uint64_t rss = read_rss_mb(c.pid);
        if (rss > so_.max_rss_mb) {
          ::kill(c.pid, SIGKILL);
          c.rss_killed = true;
          c.rss_mb = rss;
          continue;
        }
      }
      if (c.term_sent || c.interrupt_sent) {
        if (!c.killed &&
            ms_since(c.term_at) > static_cast<double>(so_.hang_grace_ms)) {
          ::kill(c.pid, SIGKILL);
          c.killed = true;
        }
        continue;
      }
      if (opt_.cell_timeout_ms > 0 &&
          std::chrono::duration<double, std::milli>(now - c.start).count() >
              static_cast<double>(opt_.cell_timeout_ms)) {
        ::kill(c.pid, SIGTERM);
        c.term_sent = true;
        c.term_at = now;
      }
    }
  }

  void begin_shutdown() {
    const auto now = Clock::now();
    for (ChildProc& c : running_) {
      if (!c.term_sent && !c.interrupt_sent) {
        ::kill(c.pid, SIGTERM);
        c.term_at = now;
      }
      c.interrupt_sent = true;
    }
    // Pending attempts never run: journal whatever state their cell is in.
    for (const PendingAttempt& p : pending_) {
      SweepCellOutcome& out = res_.cells[work_[p.windex]];
      if (out.attempts == 0) {
        out.status = CellStatus::Interrupted;
        out.error = "sweep interrupted before this cell ran";
      }
      finalize(p.windex);
    }
    pending_.clear();
  }

  /// Journal a non-final (to-be-retried) attempt's outcome into the live
  /// SweepCellOutcome so an interrupt mid-backoff still reports it.
  void record_attempt(std::size_t windex, unsigned attempt, CellStatus status,
                      const std::string& error) {
    SweepCellOutcome& out = res_.cells[work_[windex]];
    out.attempts = attempt;
    out.status = status;
    out.error = error;
  }

  void record_final(std::size_t windex, unsigned attempt, CellStatus status,
                    std::string error) {
    SweepCellOutcome& out = res_.cells[work_[windex]];
    out.attempts = attempt;
    out.status = status;
    out.error = std::move(error);
    finalize(windex);
  }

  void finalize(std::size_t windex) {
    SweepCellOutcome& out = res_.cells[work_[windex]];
    out.wall_ms = ms_since(cell_start_[windex]);
    journal_.append(encode_entry(out));
    // Terminal outcome: the cell's snapshot is no longer needed. An
    // interrupted cell keeps it — the --resume rerun picks it up mid-cell.
    if (out.status != CellStatus::Interrupted)
      gc_snapshot(so_.checkpoint_dir, out.index);
    if (!out.ok()) {
      progress_.note("cell " + std::to_string(out.index) + " (" +
                     prepared_[out.index].profile.name + "/" +
                     std::string(to_string(prepared_[out.index].cfg.scheme)) +
                     ") " + to_string(out.status) + ": " + out.error);
    }
    progress_.cell_done();
  }

  const std::vector<SweepCell>& prepared_;
  const std::vector<std::size_t>& work_;
  const SweepOptions& opt_;
  const SupervisorOptions& so_;
  const unsigned max_attempts_;
  SweepResult& res_;
  CheckpointJournal& journal_;
  detail::ProgressMeter& progress_;
  std::vector<Clock::time_point> cell_start_;
  std::deque<PendingAttempt> pending_;
  std::vector<ChildProc> running_;
};

// ---------------------------------------------------------------------------
// Supervised in-process execution (checkpoint / debug hooks, no fork)
// ---------------------------------------------------------------------------

void run_inprocess_cells(const std::vector<SweepCell>& prepared,
                         const std::vector<std::size_t>& work,
                         const SweepOptions& opt, unsigned max_attempts,
                         SweepResult& res, CheckpointJournal& journal,
                         detail::ProgressMeter& progress) {
  const SupervisorOptions& so = opt.supervisor;
  detail::run_pool(work.size(), opt.threads, [&](std::size_t w) {
    const std::size_t i = work[w];
    SweepCellOutcome& out = res.cells[i];
    const auto cell_t0 = Clock::now();
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1 && so.retry_backoff_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(
            so.retry_backoff_ms << (attempt - 2)));
      out.attempts = attempt;
      const detail::AttemptHook hook =
          [&so, i, attempt](const std::atomic<bool>* cancel) {
            debug_fault_hook(so, i, attempt, /*in_child=*/false, cancel);
          };
      out.status = detail::run_attempt(prepared[i], opt.cell_timeout_ms,
                                       so.hang_grace_ms, hook, out.result,
                                       out.error);
      // Unlike plain run_sweep, the supervisor retries timeouts too: with
      // backoff and process isolation a hang is often load-dependent.
      if (out.status == CellStatus::Ok ||
          out.status == CellStatus::Interrupted || interrupt_requested())
        break;
    }
    out.wall_ms = ms_since(cell_t0);
    journal.append(encode_entry(out));
    if (!out.ok()) {
      progress.note("cell " + std::to_string(i) + " (" +
                    prepared[i].profile.name + "/" +
                    std::string(to_string(prepared[i].cfg.scheme)) + ") " +
                    to_string(out.status) + ": " + out.error);
    }
    progress.cell_done();
  });
}

}  // namespace

void install_interrupt_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = on_interrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked poll()/read() must wake up
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

Manifest load_manifest(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open manifest: " + path);
  Manifest m;
  std::string line;
  bool have_header = false;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    wire::Value v;
    try {
      v = wire::parse_object(line);
    } catch (const std::exception&) {
      continue;  // torn line: that cell simply reruns
    }
    if (!have_header) {
      if (v.find("manifest") == nullptr)
        throw std::runtime_error("manifest: missing header line in " + path);
      m.cells = v.num_or("cells", 0);
      m.base_seed = v.num_or("base_seed", 0);
      m.shard_index = static_cast<unsigned>(v.num_or("shard_index", 0));
      m.shard_count = static_cast<unsigned>(v.num_or("shard_count", 1));
      have_header = true;
      continue;
    }
    // Per-entry fault containment: a bit-flipped or truncated-but-parseable
    // entry (unknown status name, wrong field kind, missing result field)
    // is dropped — that one cell reruns — instead of failing the resume.
    try {
      ManifestEntry e;
      e.cell = v.num_or("cell", 0);
      e.group = v.num_or("group", 0);
      e.status = status_from_name(v.str_or("status", "failed"));
      e.attempts = static_cast<unsigned>(v.num_or("attempts", 0));
      e.snap_saved_cycles = v.num_or("snap_saved_cycles", 0);
      e.error = v.str_or("error", "");
      if (const wire::Value* r = v.find("result")) {
        e.result = wire::decode_result(*r);
        e.has_result = true;
      }
      e.line = line;
      m.entries.push_back(std::move(e));
    } catch (const std::exception&) {
      continue;
    }
  }
  if (!have_header)
    throw std::runtime_error("manifest: empty or headerless: " + path);
  return m;
}

SweepResult run_sweep_supervised(const std::vector<SweepCell>& cells,
                                 const SweepOptions& opt) {
  const auto t0 = Clock::now();
  const SupervisorOptions& so = opt.supervisor;
  SweepResult res;
  std::vector<std::size_t> work;
  const std::vector<SweepCell> prepared =
      detail::prepare_cells(cells, opt, res, work);
  const unsigned max_attempts = 1 + so.max_retries;

  // Resume: adopt the prior run's Ok cells verbatim; everything else reruns.
  std::vector<std::string> carried;
  if (!so.resume_manifest.empty()) {
    Manifest m = load_manifest(so.resume_manifest);
    const unsigned shards = std::max(1u, opt.shard_count);
    if (m.cells != cells.size() || m.base_seed != opt.base_seed ||
        m.shard_index != opt.shard_index % shards || m.shard_count != shards) {
      throw std::runtime_error(
          "resume: manifest " + so.resume_manifest +
          " does not match this sweep (cells " + std::to_string(m.cells) +
          " vs " + std::to_string(cells.size()) + ", base_seed " +
          std::to_string(m.base_seed) + " vs " + std::to_string(opt.base_seed) +
          ", shard " + std::to_string(m.shard_index) + "/" +
          std::to_string(m.shard_count) + " vs " +
          std::to_string(opt.shard_index % shards) + "/" +
          std::to_string(shards) + ")");
    }
    for (ManifestEntry& e : m.entries) {
      if (e.status != CellStatus::Ok || !e.has_result) continue;
      if (e.cell >= res.cells.size()) continue;
      SweepCellOutcome& out = res.cells[e.cell];
      out.status = CellStatus::Ok;
      out.attempts = e.attempts;
      out.snap_saved_cycles = e.snap_saved_cycles;
      out.error = e.error;
      out.result = std::move(e.result);
      carried.push_back(std::move(e.line));
      work.erase(std::remove(work.begin(), work.end(), e.cell), work.end());
    }
  }

  // Snapshot-directory hygiene: a fresh (non-resume) sweep invalidates any
  // snapshots a previous run left in this checkpoint dir; on resume, only
  // the cells still to be run may keep one.
  if (!so.checkpoint_dir.empty()) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const bool still_to_run =
          !so.resume_manifest.empty() &&
          std::find(work.begin(), work.end(), i) != work.end();
      if (!still_to_run) gc_snapshot(so.checkpoint_dir, i);
    }
  }

  CheckpointJournal journal;
  if (!so.checkpoint_dir.empty())
    journal.open(so.checkpoint_dir, encode_header(cells.size(), opt),
                 std::move(carried));

  detail::ProgressMeter progress(work.size(), opt);
  if (so.isolate) {
    IsolatedScheduler(prepared, work, opt, max_attempts, res, journal,
                      progress)
        .run();
  } else {
    run_inprocess_cells(prepared, work, opt, max_attempts, res, journal,
                        progress);
  }

  // Cells never claimed before an interrupt shutdown.
  for (const std::size_t i : work) {
    SweepCellOutcome& out = res.cells[i];
    if (out.attempts == 0 && out.status == CellStatus::Skipped) {
      out.status = CellStatus::Interrupted;
      out.error = "sweep interrupted before this cell ran";
      journal.append(encode_entry(out));
    }
  }
  detail::tally_outcomes(res);
  res.wall_ms = ms_since(t0);
  return res;
}

}  // namespace disco::sim
