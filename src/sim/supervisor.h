// Crash-resilient sweep supervisor. Each cell attempt runs in a forked
// child process (--isolate) that reports its CellResult back over a pipe in
// the lossless wire format (wire.h); the parent is a single-threaded poll()
// scheduler that enforces wall-clock budgets with SIGTERM -> grace ->
// SIGKILL escalation, retries crashed / hung / failed cells with exponential
// backoff, and journals every finished cell to an append-only checkpoint
// manifest (atomic tmp + rename per cell). A later run with --resume adopts
// the manifest's Ok cells verbatim, so its aggregate output is
// byte-identical to an uninterrupted run. On a crash or hang the child
// flushes a postmortem black box (tracer ring tail, invariant summary,
// last-progress cycle, stall census) next to the manifest.
//
// The supervisor also runs without isolation (checkpoint/resume/debug hooks
// on the classic thread pool) — a crash then still kills the process, but
// checkpointing and the deterministic fault hooks keep working.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace disco::sim {

/// One journaled cell outcome from a checkpoint manifest.
struct ManifestEntry {
  std::size_t cell = 0;
  std::size_t group = 0;
  CellStatus status = CellStatus::Failed;
  unsigned attempts = 0;
  /// Measurement cycles the finishing attempt recovered from a mid-cell
  /// snapshot instead of re-simulating (0 = ran from cycle 0).
  std::uint64_t snap_saved_cycles = 0;
  std::string error;
  bool has_result = false;
  CellResult result;   ///< decoded bit-exactly; valid when has_result
  std::string line;    ///< original JSONL line, re-journaled verbatim on resume
};

/// Parsed checkpoint manifest: one header line (sweep shape) + one entry
/// line per finished cell.
struct Manifest {
  std::size_t cells = 0;
  std::uint64_t base_seed = 0;
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  std::vector<ManifestEntry> entries;
};

/// Load <path> (JSONL). Throws std::runtime_error when the file is missing
/// or has no valid header line; an unparseable entry line is dropped (the
/// cell simply reruns), never fatal.
Manifest load_manifest(const std::string& path);

/// Run a sweep under the supervisor. Called by run_sweep when
/// opt.supervisor.active(); callable directly by tests. Throws
/// std::runtime_error when a resume manifest does not match the sweep
/// (cell count, base seed or shard differ).
SweepResult run_sweep_supervised(const std::vector<SweepCell>& cells,
                                 const SweepOptions& opt);

}  // namespace disco::sim
