#include "sim/golden.h"

#include <cstring>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "noc/network.h"
#include "sim/experiment.h"
#include "trace/trace.h"
#include "workload/profile.h"

namespace disco::sim {
namespace {

class NullSink final : public noc::PacketSink {
 public:
  void deliver(noc::PacketPtr, Cycle) override {}
};

noc::PacketPtr make_data_packet(NodeId src, NodeId dst, std::uint64_t id,
                                Cycle now) {
  auto pkt = std::make_shared<noc::Packet>();
  pkt->id = id;
  pkt->src = src;
  pkt->dst = dst;
  pkt->src_unit = UnitKind::Core;
  pkt->dst_unit = UnitKind::Core;
  pkt->vnet = VNet::Response;
  pkt->created = now;
  pkt->has_data = true;
  pkt->compressible = true;
  // Compressible payload: per-packet base plus small deltas, a shape every
  // registered algorithm shrinks, so DISCO engines have real work.
  Rng rng(id * 1315423911ULL + 7);
  const std::uint64_t base = rng.next_u64();
  for (std::size_t f = 0; f < kWordsPerBlock; ++f) {
    const std::uint64_t v = base + rng.next_below(64);
    std::memcpy(pkt->data.data() + f * 8, &v, 8);
  }
  return pkt;
}

/// Shared scaffolding for the network-only scenarios: builds the trace +
/// checker pair for `cfg`, runs `drive`, and packages the canonical text.
template <typename DriveFn>
GoldenRun run_network_scenario(const NocConfig& cfg, const DiscoConfig& dcfg,
                               const noc::NiPolicy& policy,
                               const noc::Network::ExtensionFactory& factory,
                               const std::string& filter, DriveFn&& drive) {
  TraceConfig tc;
  tc.enabled = true;
  tc.check_invariants = true;
  tc.filter = filter;

  noc::NocStats stats;
  noc::Network net(cfg, policy, stats, factory);
  std::vector<NullSink> sinks(cfg.num_nodes());
  for (NodeId n = 0; n < cfg.num_nodes(); ++n)
    net.register_sink(n, UnitKind::Core, &sinks[n]);

  trace::Tracer tracer(tc);
  trace::InvariantParams p;
  p.nodes = cfg.num_nodes();
  p.ports = noc::kNumPorts;
  p.local_port = static_cast<std::uint32_t>(noc::Port::Local);
  p.num_vcs = cfg.num_vcs();
  p.vc_depth = cfg.vc_depth_flits;
  p.max_hops = (cfg.mesh_cols - 1) + (cfg.mesh_rows - 1);
  p.block_flits = 1 + static_cast<std::uint32_t>(kBlockBytes / kFlitBytes);
  p.gamma = dcfg.gamma;
  p.alpha = dcfg.alpha;
  p.beta = dcfg.beta;
  trace::InvariantChecker checker(p);
  tracer.set_checker(&checker);
  net.set_tracer(&tracer);

  drive(net, checker);

  GoldenRun out;
  std::ostringstream os;
  tracer.write_canonical(os);
  out.trace = os.str();
  out.invariants = checker.summary();
  return out;
}

/// A handful of request/data pings criss-crossing a 2x2 mesh, plain
/// routers. Covers BW/RC/VA/ST ordering, credit send/recv pairing and NI
/// inject/eject/reassembly on every node without DISCO in the picture.
GoldenRun ping_2x2() {
  NocConfig cfg;
  cfg.mesh_cols = 2;
  cfg.mesh_rows = 2;
  noc::NiPolicy policy;  // raw packets end to end
  return run_network_scenario(
      cfg, DiscoConfig{}, policy, {}, "",
      [&](noc::Network& net, trace::InvariantChecker& checker) {
        Cycle clock = 0;
        std::uint64_t id = 1;
        // Two waves: all-to-one (contention at node 0), then pairwise swaps.
        for (NodeId src = 1; src < cfg.num_nodes(); ++src)
          net.inject(src, make_data_packet(src, 0, id++, clock), clock);
        for (Cycle i = 0; i < 12; ++i) {
          net.tick(clock);
          checker.end_of_cycle(clock, net.inflight_flits());
          ++clock;
        }
        net.inject(0, make_data_packet(0, 3, id++, clock), clock);
        net.inject(3, make_data_packet(3, 0, id++, clock), clock);
        net.inject(1, make_data_packet(1, 2, id++, clock), clock);
        net.inject(2, make_data_packet(2, 1, id++, clock), clock);
        for (Cycle i = 0; i < 400 && !net.quiescent(); ++i) {
          net.tick(clock);
          checker.end_of_cycle(clock, net.inflight_flits());
          ++clock;
        }
      });
}

/// DISCO routers on a 2x2 mesh with thresholds lowered so bursty all-to-one
/// traffic queues long enough to arm engines: exercises the Eq.1/Eq.2
/// confidence probes, comp/decomp start-abort-finish and shadow retire.
GoldenRun disco_compress_2x2() {
  NocConfig cfg;
  cfg.mesh_cols = 2;
  cfg.mesh_rows = 2;
  DiscoConfig dcfg;
  dcfg.cc_threshold = 0.25;
  dcfg.cd_threshold = 0.5;

  noc::NocStats stats;  // outlives the network built inside the helper
  auto algo = compress::make_algorithm("delta");

  noc::NiPolicy policy;
  policy.algo = algo.get();
  policy.decompress_for_raw_consumers = true;
  policy.comp_cycles = algo->latency().comp_cycles;
  policy.decomp_cycles = algo->latency().decomp_cycles;
  // No source-side compression: packets travel raw so the in-router engines
  // (not the NI) do the compressing — that is the path this golden pins.

  noc::Network::ExtensionFactory factory = [&](noc::Router& r) {
    return std::make_unique<core::DiscoUnit>(r, dcfg, *algo, algo->latency(),
                                             stats);
  };
  return run_network_scenario(
      cfg, dcfg, policy, factory, "disco,ni",
      [&](noc::Network& net, trace::InvariantChecker& checker) {
        Cycle clock = 0;
        std::uint64_t id = 1;
        // Three bursts of all-to-one traffic; the backlog at node 0's
        // neighbors is what raises Eq.1 confidence above the threshold.
        for (int burst = 0; burst < 3; ++burst) {
          for (int k = 0; k < 4; ++k)
            for (NodeId src = 1; src < cfg.num_nodes(); ++src)
              net.inject(src, make_data_packet(src, 0, id++, clock), clock);
          for (Cycle i = 0; i < 30; ++i) {
            net.tick(clock);
            checker.end_of_cycle(clock, net.inflight_flits());
            ++clock;
          }
        }
        for (Cycle i = 0; i < 2000 && !net.quiescent(); ++i) {
          net.tick(clock);
          checker.end_of_cycle(clock, net.inflight_flits());
          ++clock;
        }
      });
}

/// A short full-CMP cell (cores + L1s + NUCA L2 + DRAM) under the DISCO
/// scheme, captured through the cache/disco filter: covers L2 fill/evict
/// probes and the in-network engines fed by real coherence traffic.
GoldenRun cmp_cache_2x2() {
  SystemConfig cfg;
  cfg.noc.mesh_cols = 2;
  cfg.noc.mesh_rows = 2;
  // L2 far smaller than the footprint so the capture includes evictions and
  // dirty writebacks, not just cold fills.
  cfg.l2.total_size_bytes = 64ULL * 1024;
  cfg.scheme = Scheme::DISCO;
  cfg.seed = 12345;
  cfg.trace.enabled = true;
  cfg.trace.check_invariants = true;
  cfg.trace.filter = "cache,disco";

  workload::BenchmarkProfile profile = workload::parsec_profiles().front();
  profile.footprint_blocks = 1 << 10;
  profile.mem_op_rate = 1.0;  // saturate the NoC so DISCO engines arm

  RunOptions opt;
  opt.warmup_ops_per_core = 2000;
  opt.warmup_cycles = 500;
  opt.measure_cycles = 4000;

  const CellResult r = run_cell(cfg, profile, opt);
  GoldenRun out;
  out.trace = r.trace_text;
  out.invariants = r.invariants;
  return out;
}

}  // namespace

const std::vector<GoldenScenario>& golden_scenarios() {
  static const std::vector<GoldenScenario> scenarios = {
      {"ping_2x2", "plain 2x2 mesh, request/data pings, full capture",
       &ping_2x2},
      {"disco_compress_2x2",
       "2x2 DISCO routers, low thresholds, bursty all-to-one (disco,ni)",
       &disco_compress_2x2},
      {"cmp_cache_2x2", "full 2x2 CMP cell under DISCO scheme (cache,disco)",
       &cmp_cache_2x2},
  };
  return scenarios;
}

GoldenRun run_golden_scenario(const std::string& name) {
  std::string valid;
  for (const auto& s : golden_scenarios()) {
    if (name == s.name) return s.run();
    valid += valid.empty() ? "" : ", ";
    valid += s.name;
  }
  throw std::invalid_argument("unknown golden scenario '" + name +
                              "' (valid: " + valid + ")");
}

}  // namespace disco::sim
