// Human-readable end-of-run reports: latency distributions, traffic and
// coherence breakdowns, compression-event accounting and the energy split.
// Used by the examples; benches print their own figure-specific tables.
#pragma once

#include <iosfwd>

#include "cmp/system.h"

namespace disco::sim {

/// Full diagnostic report for a system after a measured run of `cycles`.
void print_system_report(std::ostream& os, cmp::CmpSystem& sys, Cycle cycles);

}  // namespace disco::sim
