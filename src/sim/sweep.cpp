#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/rng.h"
#include "trace/trace.h"

namespace disco::sim {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

/// Serialized stderr progress line: cells done / total, elapsed, ETA.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, const SweepOptions& opt)
      : total_(total), enabled_(opt.progress), label_(opt.progress_label),
        start_(Clock::now()) {}

  void cell_done() {
    if (!enabled_) return;
    const std::size_t done = ++done_;
    std::lock_guard<std::mutex> lock(mu_);
    const double elapsed_s = ms_since(start_) / 1000.0;
    const double eta_s =
        done > 0 ? elapsed_s * static_cast<double>(total_ - done) /
                       static_cast<double>(done)
                 : 0.0;
    std::fprintf(stderr, "\r%s: %zu/%zu cells (%3.0f%%)  elapsed %.1fs  eta %.1fs ",
                 label_.c_str(), done, total_,
                 100.0 * static_cast<double>(done) / static_cast<double>(total_),
                 elapsed_s, eta_s);
    if (done == total_) std::fprintf(stderr, "\n");
    std::fflush(stderr);
  }

  void note(const std::string& line) {
    if (!enabled_) return;
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "\n%s: %s\n", label_.c_str(), line.c_str());
  }

 private:
  const std::size_t total_;
  const bool enabled_;
  const std::string label_;
  const Clock::time_point start_;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
};

/// Pull-based pool: workers claim task indices from a shared counter. With
/// one resolved thread the tasks run inline on the calling thread, so serial
/// and parallel execution share one code path.
void run_pool(std::size_t count, unsigned threads,
              const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1))
      task(i);
  };
  const unsigned n = std::min<std::size_t>(resolve_threads(threads), count);
  if (n <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

/// Completion slot shared with a (possibly outlived) attempt thread.
struct AttemptState {
  SweepCell cell;  ///< owned copy: must outlive a timed-out, detached attempt
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool threw = false;
  std::string error;
  CellResult result;
};

/// One attempt at a cell. Returns Ok/Failed, or TimedOut when a wall-clock
/// budget is set and exceeded — in that case the attempt thread is detached
/// and its eventual result discarded, so the sweep keeps moving.
CellStatus run_attempt(const SweepCell& cell, std::uint64_t timeout_ms,
                       CellResult& result, std::string& error) {
  if (timeout_ms == 0) {
    try {
      result = run_cell(cell.cfg, cell.profile, cell.opt);
      return CellStatus::Ok;
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown exception";
    }
    return CellStatus::Failed;
  }

  auto st = std::make_shared<AttemptState>();
  st->cell = cell;
  std::thread([st] {
    CellResult r;
    bool threw = false;
    std::string err;
    try {
      r = run_cell(st->cell.cfg, st->cell.profile, st->cell.opt);
    } catch (const std::exception& e) {
      threw = true;
      err = e.what();
    } catch (...) {
      threw = true;
      err = "unknown exception";
    }
    std::lock_guard<std::mutex> lock(st->mu);
    st->result = std::move(r);
    st->threw = threw;
    st->error = std::move(err);
    st->done = true;
    st->cv.notify_all();
  }).detach();

  std::unique_lock<std::mutex> lock(st->mu);
  if (!st->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return st->done; })) {
    error = "cell exceeded " + std::to_string(timeout_ms) + "ms budget";
    return CellStatus::TimedOut;
  }
  if (st->threw) {
    error = st->error;
    return CellStatus::Failed;
  }
  result = std::move(st->result);
  return CellStatus::Ok;
}

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--shard i/k] [--seed S]\n"
               "          [--timeout-ms T] [--no-progress] [--fault-* ...] [args...]\n"
               "  --threads N     worker threads (default: cores - 1)\n"
               "  --shard i/k     run shard i of k (0 <= i < k); cells are\n"
               "                  sharded by group so comparison rows stay whole\n"
               "  --seed S        base seed; per-cell seed = splitmix64(S, cell)\n"
               "  --timeout-ms T  per-cell wall-clock budget (0 = none)\n"
               "  --no-progress   suppress the stderr progress line\n"
               "tracing / invariants:\n"
               "  --trace PREFIX       capture probe events; writes Chrome JSON\n"
               "                       to <PREFIX>-cell<i>.json (Perfetto)\n"
               "  --trace-filter CATS  comma list: noc,credit,ni,disco,cache\n"
               "  --check-invariants   stream every event through the runtime\n"
               "                       invariant checker (summary per cell)\n"
               "fault injection (any rate flag enables the injector):\n"
               "  --fault-rate R         link + LLC payload bit-flip rate\n"
               "  --fault-link-rate R    per-hop compressed-payload bit-flip rate\n"
               "  --fault-llc-rate R     compressed-LLC-readout bit-flip rate\n"
               "  --fault-drop-rate R    per-flit body-flit drop rate\n"
               "  --fault-dup-rate R     per-flit ejection duplicate rate\n"
               "  --fault-engine-rate R  DISCO engine output corruption rate\n"
               "  --fault-stall-rate R   DISCO engine transient stall rate\n"
               "  --fault-crc M          payload checksum: crc32 (default) | fold8\n"
               "  --fault-retries N      max retransmission attempts per block\n"
               "  --fault-backoff B      retransmission backoff base (cycles)\n",
               prog);
  std::exit(code);
}

}  // namespace

const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::Ok: return "ok";
    case CellStatus::Failed: return "failed";
    case CellStatus::TimedOut: return "timed_out";
    case CellStatus::Skipped: return "skipped";
  }
  return "?";
}

const CellResult* SweepResult::ok(std::size_t index) const {
  return index < cells.size() && cells[index].ok() ? &cells[index].result
                                                   : nullptr;
}

std::vector<CellResult> SweepResult::ok_results() const {
  std::vector<CellResult> out;
  out.reserve(completed);
  for (const auto& c : cells)
    if (c.ok()) out.push_back(c.result);
  return out;
}

SweepResult run_sweep(const std::vector<SweepCell>& cells,
                      const SweepOptions& opt) {
  const auto t0 = Clock::now();
  SweepResult res;
  res.cells.resize(cells.size());

  // Resolve groups/seeds and the shard's work list up front, so everything
  // order-dependent happens deterministically before any thread runs.
  std::vector<SweepCell> prepared(cells);
  std::vector<std::size_t> work;
  const unsigned shards = std::max(1u, opt.shard_count);
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    SweepCell& c = prepared[i];
    if (c.group == SweepCell::kAuto) c.group = i;
    if (c.seed_group == SweepCell::kAuto) c.seed_group = c.group;
    if (opt.reseed_cells)
      c.cfg.seed = splitmix64(opt.base_seed,
                              static_cast<std::uint64_t>(c.seed_group));
    if (opt.trace.active()) {
      c.cfg.trace = opt.trace;
      if (!opt.trace.out_path.empty())
        c.cfg.trace.out_path =
            opt.trace.out_path + "-cell" + std::to_string(i) + ".json";
    }
    res.cells[i].index = i;
    res.cells[i].group = c.group;
    if (c.group % shards == opt.shard_index % shards) {
      work.push_back(i);
    } else {
      res.cells[i].status = CellStatus::Skipped;
      ++res.skipped;
    }
  }

  ProgressMeter progress(work.size(), opt);
  const unsigned max_attempts = std::max(1u, opt.max_attempts);

  run_pool(work.size(), opt.threads, [&](std::size_t w) {
    const std::size_t i = work[w];
    SweepCellOutcome& out = res.cells[i];
    const auto cell_t0 = Clock::now();
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      out.attempts = attempt;
      out.status = run_attempt(prepared[i], opt.cell_timeout_ms, out.result,
                               out.error);
      // A timed-out cell is not retried: the retry would spend the same
      // wall-clock budget again for the same deterministic outcome.
      if (out.status != CellStatus::Failed) break;
    }
    out.wall_ms = ms_since(cell_t0);
    if (!out.ok()) {
      progress.note("cell " + std::to_string(i) + " (" +
                    prepared[i].profile.name + "/" +
                    std::string(to_string(prepared[i].cfg.scheme)) + ") " +
                    to_string(out.status) + ": " + out.error);
    }
    progress.cell_done();
  });

  for (const auto& c : res.cells) {
    if (c.ok()) ++res.completed;
    else if (c.status != CellStatus::Skipped) ++res.failed;
  }
  res.wall_ms = ms_since(t0);
  return res;
}

void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 const SweepOptions& opt) {
  ProgressMeter progress(count, opt);
  run_pool(count, opt.threads, [&](std::size_t i) {
    fn(i);
    progress.cell_done();
  });
}

SweepOptions parse_sweep_flags(int argc, char** argv,
                               std::vector<std::string>& positional) {
  SweepOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.base_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      opt.cell_timeout_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--no-progress") {
      opt.progress = false;
    } else if (arg == "--trace") {
      opt.trace.out_path = value();
      opt.trace.enabled = true;
    } else if (arg == "--trace-filter") {
      opt.trace.filter = value();
      opt.trace.enabled = true;
      try {
        trace::category_mask(opt.trace.filter);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0], 2);
      }
    } else if (arg == "--check-invariants") {
      opt.trace.check_invariants = true;
    } else if (arg == "--fault-rate") {
      const double r = std::strtod(value(), nullptr);
      opt.fault.link_bit_flip_rate = r;
      opt.fault.llc_bit_flip_rate = r;
      opt.fault.enabled = true;
    } else if (arg == "--fault-link-rate") {
      opt.fault.link_bit_flip_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-llc-rate") {
      opt.fault.llc_bit_flip_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-drop-rate") {
      opt.fault.flit_drop_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-dup-rate") {
      opt.fault.flit_duplicate_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-engine-rate") {
      opt.fault.engine_fault_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-stall-rate") {
      opt.fault.engine_stall_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-crc") {
      const std::string m = value();
      if (m == "crc32") {
        opt.fault.crc = CrcMode::Crc32;
      } else if (m == "fold8") {
        opt.fault.crc = CrcMode::Fold8;
      } else {
        std::fprintf(stderr, "unknown --fault-crc mode: %s\n", m.c_str());
        usage(argv[0], 2);
      }
    } else if (arg == "--fault-retries") {
      opt.fault.max_retries =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--fault-backoff") {
      opt.fault.retry_backoff_base =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--shard") {
      const char* v = value();
      char* sep = nullptr;
      opt.shard_index = static_cast<unsigned>(std::strtoul(v, &sep, 10));
      if (!sep || (*sep != '/' && *sep != ':')) usage(argv[0], 2);
      opt.shard_count = static_cast<unsigned>(std::strtoul(sep + 1, nullptr, 10));
      if (opt.shard_count == 0 || opt.shard_index >= opt.shard_count)
        usage(argv[0], 2);
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0], 2);
    } else {
      positional.push_back(arg);
    }
  }
  return opt;
}

}  // namespace disco::sim
