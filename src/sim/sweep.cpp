#include "sim/sweep.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/interrupt.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "compress/decode_error.h"
#include "sim/supervisor.h"
#include "sim/sweep_internal.h"
#include "trace/trace.h"

namespace disco::sim {

namespace detail {

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw - 1 : 1;
}

void run_pool(std::size_t count, unsigned threads,
              const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      if (interrupt_requested()) return;
      task(i);
    }
  };
  const unsigned n = std::min<std::size_t>(resolve_threads(threads), count);
  if (n <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
}

std::string describe_current_exception() {
  try {
    throw;
  } catch (const compress::DecodeError& e) {
    return std::string("decode error: ") + e.what();
  } catch (const cmp::NoProgressError& e) {
    return e.what();
  } catch (const std::exception& e) {
    return e.what();
  } catch (const char* s) {
    return std::string("c-string exception: ") + s;
  } catch (const std::string& s) {
    return "string exception: " + s;
  } catch (int v) {
    return "int exception: " + std::to_string(v);
  } catch (long v) {
    return "long exception: " + std::to_string(v);
  } catch (...) {
    return "exception of unknown type";
  }
}

namespace {

/// Completion slot shared with a (possibly outlived) attempt thread.
struct AttemptState {
  SweepCell cell;  ///< owned copy: must outlive a wedged, detached attempt
  std::atomic<bool> cancel{false};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool threw = false;
  bool cancelled = false;  ///< CancelledError unwound the cell
  std::string error;
  CellResult result;
};

std::atomic<std::size_t> g_live_attempt_threads{0};

}  // namespace

std::size_t live_attempt_threads() {
  return g_live_attempt_threads.load(std::memory_order_acquire);
}

CellStatus run_attempt(const SweepCell& cell, std::uint64_t timeout_ms,
                       std::uint64_t hang_grace_ms, const AttemptHook& hook,
                       CellResult& result, std::string& error) {
  if (timeout_ms == 0) {
    try {
      if (hook) hook(cell.opt.cancel);
      result = run_cell(cell.cfg, cell.profile, cell.opt);
      return CellStatus::Ok;
    } catch (const cmp::CancelledError&) {
      error = "cell interrupted";
      return CellStatus::Interrupted;
    } catch (...) {
      error = describe_current_exception();
    }
    return CellStatus::Failed;
  }

  auto st = std::make_shared<AttemptState>();
  st->cell = cell;
  st->cell.opt.cancel = &st->cancel;
  g_live_attempt_threads.fetch_add(1, std::memory_order_acq_rel);
  std::thread worker([st, hook] {
    CellResult r;
    bool threw = false;
    bool cancelled = false;
    std::string err;
    try {
      if (hook) hook(&st->cancel);
      r = run_cell(st->cell.cfg, st->cell.profile, st->cell.opt);
    } catch (const cmp::CancelledError&) {
      cancelled = true;
    } catch (...) {
      threw = true;
      err = describe_current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->result = std::move(r);
      st->threw = threw;
      st->cancelled = cancelled;
      st->error = std::move(err);
      st->done = true;
    }
    st->cv.notify_all();
    g_live_attempt_threads.fetch_sub(1, std::memory_order_acq_rel);
  });

  std::unique_lock<std::mutex> lock(st->mu);
  if (!st->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return st->done; })) {
    // Budget exceeded: fire the cooperative cancellation token. The sim loop
    // polls it every few hundred cycles, so a bounded grace wait reclaims
    // the thread (and its pool slot); only a truly wedged attempt — one that
    // never reaches a poll point again — is detached.
    st->cancel.store(true, std::memory_order_release);
    const bool reclaimed = st->cv.wait_for(
        lock,
        std::chrono::milliseconds(std::max<std::uint64_t>(hang_grace_ms, 1)),
        [&] { return st->done; });
    lock.unlock();
    if (reclaimed) {
      worker.join();
    } else {
      worker.detach();
    }
    const bool interrupted = interrupt_requested();
    error = interrupted
                ? "cell interrupted"
                : "cell exceeded " + std::to_string(timeout_ms) + "ms budget";
    return interrupted ? CellStatus::Interrupted : CellStatus::TimedOut;
  }
  lock.unlock();
  worker.join();
  if (st->cancelled) {
    error = "cell interrupted";
    return CellStatus::Interrupted;
  }
  if (st->threw) {
    error = st->error;
    return CellStatus::Failed;
  }
  result = std::move(st->result);
  return CellStatus::Ok;
}

std::vector<SweepCell> prepare_cells(const std::vector<SweepCell>& cells,
                                     const SweepOptions& opt, SweepResult& res,
                                     std::vector<std::size_t>& work) {
  res.cells.resize(cells.size());
  std::vector<SweepCell> prepared(cells);
  const unsigned shards = std::max(1u, opt.shard_count);
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    SweepCell& c = prepared[i];
    if (c.group == SweepCell::kAuto) c.group = i;
    if (c.seed_group == SweepCell::kAuto) c.seed_group = c.group;
    if (opt.reseed_cells)
      c.cfg.seed = splitmix64(opt.base_seed,
                              static_cast<std::uint64_t>(c.seed_group));
    if (opt.trace.active()) {
      c.cfg.trace = opt.trace;
      if (!opt.trace.out_path.empty())
        c.cfg.trace.out_path =
            opt.trace.out_path + "-cell" + std::to_string(i) + ".json";
    }
    if (opt.progress_watchdog_cycles > 0)
      c.cfg.progress_watchdog_cycles = opt.progress_watchdog_cycles;
    res.cells[i].index = i;
    res.cells[i].group = c.group;
    if (c.group % shards == opt.shard_index % shards) {
      work.push_back(i);
    } else {
      res.cells[i].status = CellStatus::Skipped;
    }
  }
  return prepared;
}

void tally_outcomes(SweepResult& res) {
  res.completed = 0;
  res.failed = 0;
  res.crashed = 0;
  res.skipped = 0;
  for (const auto& c : res.cells) {
    switch (c.status) {
      case CellStatus::Ok: ++res.completed; break;
      case CellStatus::Skipped: ++res.skipped; break;
      case CellStatus::Interrupted: res.interrupted = true; break;
      case CellStatus::Crashed:
        ++res.crashed;
        ++res.failed;
        break;
      case CellStatus::Failed:
      case CellStatus::TimedOut:
      case CellStatus::ResourceExhausted: ++res.failed; break;
    }
  }
  if (interrupt_requested()) res.interrupted = true;
}

}  // namespace detail

namespace {

[[noreturn]] void usage(const char* prog, int code) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--shard i/k] [--seed S]\n"
               "          [--timeout-ms T] [--no-progress] [--isolate]\n"
               "          [--checkpoint-dir D] [--resume M] [--fault-* ...] [args...]\n"
               "  --threads N     worker threads (default: cores - 1)\n"
               "  --shard i/k     run shard i of k (0 <= i < k); cells are\n"
               "                  sharded by group so comparison rows stay whole\n"
               "  --seed S        base seed; per-cell seed = splitmix64(S, cell)\n"
               "  --timeout-ms T  per-cell wall-clock budget (0 = none)\n"
               "  --no-progress   suppress the stderr progress line\n"
               "crash resilience (sweep supervisor):\n"
               "  --isolate            run each cell in a forked child process;\n"
               "                       a SIGSEGV or hard hang costs one cell\n"
               "  --checkpoint-dir D   journal finished cells to D/manifest.jsonl\n"
               "                       and write postmortem black boxes into D\n"
               "  --resume M           adopt the Ok cells of manifest M verbatim\n"
               "                       (aggregate output is byte-identical to an\n"
               "                       uninterrupted run) and run only the rest\n"
               "  --max-retries R      extra attempts per crashed/hung/failed cell\n"
               "                       (default 1)\n"
               "  --retry-backoff-ms B backoff before retry r is B << (r-1)\n"
               "                       (default 100)\n"
               "  --hang-grace-ms G    grace between SIGTERM and SIGKILL for a\n"
               "                       timed-out child (default 2000)\n"
               "  --snapshot-interval-cycles N\n"
               "                       (with --isolate --checkpoint-dir) each\n"
               "                       worker snapshots its full simulation\n"
               "                       state every N measured cycles; retries\n"
               "                       resume from the last good snapshot\n"
               "                       byte-identically instead of recomputing\n"
               "                       from cycle 0 (0 = off)\n"
               "  --max-rss-mb M       SIGKILL an isolated child whose resident\n"
               "                       set exceeds M MiB; journaled as\n"
               "                       resource_exhausted (0 = off)\n"
               "  --progress-watchdog N fail a cell with a classified deadlock/\n"
               "                       livelock/starvation error if no packet\n"
               "                       moves for N cycles while work is pending\n"
               "  --debug-crash-cell K / --debug-hang-cell K / --debug-throw-cell K\n"
               "                       deterministically break cell K (tests/CI);\n"
               "                       --debug-crash-attempts A limits the hooks\n"
               "                       to the first A attempts (default 1)\n"
               "tracing / invariants:\n"
               "  --trace PREFIX       capture probe events; writes Chrome JSON\n"
               "                       to <PREFIX>-cell<i>.json (Perfetto)\n"
               "  --trace-filter CATS  comma list: noc,credit,ni,disco,cache\n"
               "  --check-invariants   stream every event through the runtime\n"
               "                       invariant checker (summary per cell)\n"
               "fault injection (any rate flag enables the injector):\n"
               "  --fault-rate R         link + LLC payload bit-flip rate\n"
               "  --fault-link-rate R    per-hop compressed-payload bit-flip rate\n"
               "  --fault-llc-rate R     compressed-LLC-readout bit-flip rate\n"
               "  --fault-drop-rate R    per-flit body-flit drop rate\n"
               "  --fault-dup-rate R     per-flit ejection duplicate rate\n"
               "  --fault-engine-rate R  DISCO engine output corruption rate\n"
               "  --fault-stall-rate R   DISCO engine transient stall rate\n"
               "  --fault-crc M          payload checksum: crc32 (default) | fold8\n"
               "  --fault-retries N      max retransmission attempts per block\n"
               "  --fault-backoff B      retransmission backoff base (cycles)\n"
               "permanent (hard) faults — graceful degradation:\n"
               "  --hard-fault SPEC      explicit kill schedule, comma-separated\n"
               "                         kind@cycle:node (link@cycle:node:DIR);\n"
               "                         kinds: link, router, engine, llc;\n"
               "                         e.g. engine@5000:3,link@9000:5:E\n"
               "  --hard-fault-rate R    per-component permanent-failure\n"
               "                         probability per cycle (seed-derived\n"
               "                         exponential draw per component)\n",
               prog);
  std::exit(code);
}

}  // namespace

const char* to_string(CellStatus s) {
  switch (s) {
    case CellStatus::Ok: return "ok";
    case CellStatus::Failed: return "failed";
    case CellStatus::TimedOut: return "timed_out";
    case CellStatus::Skipped: return "skipped";
    case CellStatus::Crashed: return "crashed";
    case CellStatus::Interrupted: return "interrupted";
    case CellStatus::ResourceExhausted: return "resource_exhausted";
  }
  return "?";
}

const CellResult* SweepResult::ok(std::size_t index) const {
  return index < cells.size() && cells[index].ok() ? &cells[index].result
                                                   : nullptr;
}

std::vector<CellResult> SweepResult::ok_results() const {
  std::vector<CellResult> out;
  out.reserve(completed);
  for (const auto& c : cells)
    if (c.ok()) out.push_back(c.result);
  return out;
}

SweepResult run_sweep(const std::vector<SweepCell>& cells,
                      const SweepOptions& opt) {
  if (opt.supervisor.active()) return run_sweep_supervised(cells, opt);

  const auto t0 = detail::Clock::now();
  SweepResult res;
  std::vector<std::size_t> work;
  const std::vector<SweepCell> prepared =
      detail::prepare_cells(cells, opt, res, work);

  detail::ProgressMeter progress(work.size(), opt);
  const unsigned max_attempts = std::max(1u, opt.max_attempts);

  detail::run_pool(work.size(), opt.threads, [&](std::size_t w) {
    const std::size_t i = work[w];
    SweepCellOutcome& out = res.cells[i];
    const auto cell_t0 = detail::Clock::now();
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
      out.attempts = attempt;
      out.status =
          detail::run_attempt(prepared[i], opt.cell_timeout_ms,
                              opt.supervisor.hang_grace_ms, nullptr,
                              out.result, out.error);
      // A timed-out cell is not retried: the retry would spend the same
      // wall-clock budget again for the same deterministic outcome.
      if (out.status != CellStatus::Failed) break;
    }
    out.wall_ms = detail::ms_since(cell_t0);
    if (!out.ok()) {
      progress.note("cell " + std::to_string(i) + " (" +
                    prepared[i].profile.name + "/" +
                    std::string(to_string(prepared[i].cfg.scheme)) + ") " +
                    to_string(out.status) + ": " + out.error);
    }
    progress.cell_done();
  });

  // Cells the pool never claimed (interrupt shutdown) are Interrupted, not
  // silently Skipped.
  for (const std::size_t i : work) {
    SweepCellOutcome& out = res.cells[i];
    if (out.attempts == 0 && out.status == CellStatus::Skipped) {
      out.status = CellStatus::Interrupted;
      out.error = "sweep interrupted before this cell ran";
    }
  }
  detail::tally_outcomes(res);
  res.wall_ms = detail::ms_since(t0);
  return res;
}

void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn,
                 const SweepOptions& opt) {
  detail::ProgressMeter progress(count, opt);
  detail::run_pool(count, opt.threads, [&](std::size_t i) {
    fn(i);
    progress.cell_done();
  });
}

SweepOptions parse_sweep_flags(int argc, char** argv,
                               std::vector<std::string>& positional) {
  SweepOptions opt;
  // Debug fault hooks are also settable from the environment so CI can break
  // a child without touching every bench's argv plumbing.
  if (const char* e = std::getenv("DISCO_DEBUG_CRASH_CELL"))
    opt.supervisor.debug_crash_cell = std::atoi(e);
  if (const char* e = std::getenv("DISCO_DEBUG_HANG_CELL"))
    opt.supervisor.debug_hang_cell = std::atoi(e);
  if (const char* e = std::getenv("DISCO_DEBUG_THROW_CELL"))
    opt.supervisor.debug_throw_cell = std::atoi(e);
  if (const char* e = std::getenv("DISCO_DEBUG_CRASH_ATTEMPTS"))
    opt.supervisor.debug_crash_attempts =
        static_cast<unsigned>(std::strtoul(e, nullptr, 10));
  if (const char* e = std::getenv("DISCO_DEBUG_KILL_CELL"))
    opt.supervisor.debug_kill_cell = std::atoi(e);
  if (const char* e = std::getenv("DISCO_DEBUG_KILL_CYCLE"))
    opt.supervisor.debug_kill_cycle = std::strtoull(e, nullptr, 10);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0], 2);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0], 0);
    } else if (arg == "--threads") {
      opt.threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--seed") {
      opt.base_seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      opt.cell_timeout_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--no-progress") {
      opt.progress = false;
    } else if (arg == "--isolate") {
      opt.supervisor.isolate = true;
    } else if (arg == "--checkpoint-dir") {
      opt.supervisor.checkpoint_dir = value();
    } else if (arg == "--resume") {
      opt.supervisor.resume_manifest = value();
    } else if (arg == "--max-retries") {
      opt.supervisor.max_retries =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--retry-backoff-ms") {
      opt.supervisor.retry_backoff_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--hang-grace-ms") {
      opt.supervisor.hang_grace_ms = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--snapshot-interval-cycles") {
      opt.supervisor.snapshot_interval_cycles =
          std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-rss-mb") {
      opt.supervisor.max_rss_mb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--progress-watchdog") {
      opt.progress_watchdog_cycles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--debug-crash-cell") {
      opt.supervisor.debug_crash_cell = std::atoi(value());
    } else if (arg == "--debug-hang-cell") {
      opt.supervisor.debug_hang_cell = std::atoi(value());
    } else if (arg == "--debug-throw-cell") {
      opt.supervisor.debug_throw_cell = std::atoi(value());
    } else if (arg == "--debug-kill-cell") {
      opt.supervisor.debug_kill_cell = std::atoi(value());
    } else if (arg == "--debug-kill-cycle") {
      opt.supervisor.debug_kill_cycle = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--debug-crash-attempts") {
      opt.supervisor.debug_crash_attempts =
          static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--trace") {
      opt.trace.out_path = value();
      opt.trace.enabled = true;
    } else if (arg == "--trace-filter") {
      opt.trace.filter = value();
      opt.trace.enabled = true;
      try {
        trace::category_mask(opt.trace.filter);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0], 2);
      }
    } else if (arg == "--check-invariants") {
      opt.trace.check_invariants = true;
    } else if (arg == "--fault-rate") {
      const double r = std::strtod(value(), nullptr);
      opt.fault.link_bit_flip_rate = r;
      opt.fault.llc_bit_flip_rate = r;
      opt.fault.enabled = true;
    } else if (arg == "--fault-link-rate") {
      opt.fault.link_bit_flip_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-llc-rate") {
      opt.fault.llc_bit_flip_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-drop-rate") {
      opt.fault.flit_drop_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-dup-rate") {
      opt.fault.flit_duplicate_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-engine-rate") {
      opt.fault.engine_fault_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-stall-rate") {
      opt.fault.engine_stall_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-crc") {
      const std::string m = value();
      if (m == "crc32") {
        opt.fault.crc = CrcMode::Crc32;
      } else if (m == "fold8") {
        opt.fault.crc = CrcMode::Fold8;
      } else {
        std::fprintf(stderr, "unknown --fault-crc mode: %s\n", m.c_str());
        usage(argv[0], 2);
      }
    } else if (arg == "--hard-fault") {
      try {
        opt.fault.hard_faults = fault::parse_hard_fault_spec(value());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0], 2);
      }
      opt.fault.enabled = true;
    } else if (arg == "--hard-fault-rate") {
      opt.fault.hard_fault_rate = std::strtod(value(), nullptr);
      opt.fault.enabled = true;
    } else if (arg == "--fault-retries") {
      opt.fault.max_retries =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--fault-backoff") {
      opt.fault.retry_backoff_base =
          static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    } else if (arg == "--shard") {
      const char* v = value();
      char* sep = nullptr;
      opt.shard_index = static_cast<unsigned>(std::strtoul(v, &sep, 10));
      if (!sep || (*sep != '/' && *sep != ':')) usage(argv[0], 2);
      opt.shard_count = static_cast<unsigned>(std::strtoul(sep + 1, nullptr, 10));
      if (opt.shard_count == 0 || opt.shard_index >= opt.shard_count)
        usage(argv[0], 2);
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0], 2);
    } else {
      positional.push_back(arg);
    }
  }
  return opt;
}

}  // namespace disco::sim
