// Lossless wire format for CellResult: the supervisor's forked workers send
// results back over a pipe as one JSON object, and the checkpoint manifest
// journals the same encoding, so a resumed sweep reconstructs bit-identical
// results (doubles travel as their IEEE-754 bit patterns, never as decimal
// text). Includes the minimal JSON value parser the supervisor needs for
// pipe payloads and manifest lines — flat objects of unsigned numbers,
// strings and nested objects; nothing else is ever emitted.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/experiment.h"

namespace disco::sim::wire {

/// Parsed JSON value (only the subset the wire format uses).
struct Value {
  enum class Kind : std::uint8_t { Num, Str, Obj };
  Kind kind = Kind::Num;
  std::uint64_t num = 0;
  std::string str;
  std::vector<std::pair<std::string, Value>> obj;  ///< insertion order kept

  /// Member lookup; null when absent or not an object.
  const Value* find(std::string_view key) const;
  std::uint64_t num_or(std::string_view key, std::uint64_t dflt) const;
  std::string str_or(std::string_view key, std::string_view dflt) const;
};

/// Parse one JSON object (as produced by this module). Throws
/// std::runtime_error on malformed input — truncated pipe payloads and torn
/// manifest lines surface as structured cell errors, never UB.
Value parse_object(std::string_view text);

/// Append `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_string(std::string& out, std::string_view s);

/// Encode a result as one JSON object. Exact: decode_result(parse_object(
/// encode_result(r))) reproduces every field bit-for-bit.
std::string encode_result(const CellResult& r);

/// Rebuild a result from its wire object. Throws std::runtime_error when a
/// required field is missing or of the wrong kind.
CellResult decode_result(const Value& obj);

}  // namespace disco::sim::wire
