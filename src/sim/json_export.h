// Machine-readable export of experiment results (minimal JSON writer, no
// external dependency) so plots/regressions can consume bench output.
#pragma once

#include <iosfwd>
#include <vector>

#include "sim/experiment.h"

namespace disco::sim {

/// Serialize one result as a JSON object.
void write_json(std::ostream& os, const CellResult& result);

/// Serialize a list of results as a JSON array.
void write_json(std::ostream& os, const std::vector<CellResult>& results);

}  // namespace disco::sim
