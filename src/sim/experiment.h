// Experiment harness: runs one (scheme x algorithm x workload x mesh) cell
// with warmup + measurement phases and extracts the metrics the paper's
// tables and figures report. Every bench binary is a thin driver over this.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "cmp/system.h"
#include "energy/energy_model.h"

namespace disco::sim {

/// Fault-injection and recovery counters for one cell (all zero — and
/// `enabled` false — when the cell ran without an injector).
struct FaultSummary {
  bool enabled = false;
  // Injected faults, by site (from the injector).
  std::uint64_t link_bit_flips = 0;
  std::uint64_t llc_bit_flips = 0;
  std::uint64_t flit_drops = 0;
  std::uint64_t flit_duplicates = 0;
  std::uint64_t engine_stalls = 0;
  std::uint64_t engine_faults = 0;
  // Detection / recovery (from NocStats).
  std::uint64_t crc_checks = 0;
  std::uint64_t corruptions_detected = 0;
  std::uint64_t silent_corruptions = 0;
  std::uint64_t flit_loss_timeouts = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t retransmit_deliveries = 0;
  std::uint64_t backoff_cycles = 0;
  std::uint64_t duplicate_flits_dropped = 0;
  std::uint64_t duplicate_retransmissions = 0;
  std::uint64_t unrecovered_deliveries = 0;
  std::uint64_t engine_decode_errors = 0;
  std::uint64_t engines_quarantined = 0;

  // Permanent (hard) faults + graceful degradation. `hard_enabled` is true
  // when the cell ran with a hard-fault schedule (--hard-fault /
  // --hard-fault-rate); the counters come from NocStats and the system.
  bool hard_enabled = false;
  std::uint64_t hard_faults_applied = 0;  ///< whole run, survives phase resets
  std::uint64_t links_killed = 0;
  std::uint64_t routers_killed = 0;
  std::uint64_t engines_hard_failed = 0;
  std::uint64_t banks_killed = 0;
  std::uint64_t unreachable_drops = 0;
  std::uint64_t dead_component_drops = 0;
  std::uint64_t flits_destroyed = 0;
  std::uint64_t severed_packets = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t bypass_retransmits = 0;
  std::uint64_t synth_completions = 0;

  std::uint64_t payload_faults() const {
    return link_bit_flips + llc_bit_flips + engine_faults;
  }
  /// Components lost over the whole run (the x-axis of the degradation
  /// tables: latency/energy vs. dead components).
  std::uint64_t components_killed() const {
    return links_killed + routers_killed + engines_hard_failed + banks_killed;
  }
};

struct CellResult {
  std::string workload;
  std::string algorithm;
  Scheme scheme = Scheme::Baseline;

  Cycle measured_cycles = 0;
  std::uint64_t core_ops = 0;
  std::uint64_t l1_misses = 0;

  /// The Fig. 5/6/8 metric (pre-normalization): average NUCA data access
  /// latency of L1 misses served on chip (NoC + bank), in cycles.
  double avg_nuca_latency = 0;
  /// All L1 misses including DRAM-served ones.
  double avg_miss_latency = 0;
  double avg_dram_latency = 0;
  double l2_miss_rate = 0;
  double avg_packet_latency = 0;
  double avg_stored_ratio = 0;  ///< compression ratio of resident L2 lines

  std::uint64_t link_flits = 0;
  std::uint64_t inflight_compressions = 0;
  std::uint64_t inflight_decompressions = 0;
  std::uint64_t source_compressions = 0;
  std::uint64_t compression_aborts = 0;
  std::uint64_t decompression_aborts = 0;
  std::uint64_t hidden_decomp_ops = 0;
  std::uint64_t exposed_decomp_cycles = 0;

  energy::EnergyBreakdown energy;
  FaultSummary fault;

  /// Invariant-checker verdict (enabled=false when checking was off).
  trace::InvariantSummary invariants;
  /// Canonical trace text of the measurement phase (empty unless tracing).
  std::string trace_text;
};

struct RunOptions {
  /// Functional (untimed) warmup: references replayed per core to populate
  /// caches, directory and backing store before the clock starts.
  std::uint64_t warmup_ops_per_core = 24000;
  /// Timed warmup after the functional phase (fills queues/MSHRs).
  Cycle warmup_cycles = 20000;
  Cycle measure_cycles = 100000;
  /// Cooperative cancellation token, polled by the simulation loop every few
  /// hundred cycles; when set the cell unwinds with cmp::CancelledError so a
  /// timed-out or interrupted cell releases its pool slot. Null = never.
  const std::atomic<bool>* cancel = nullptr;

  // --- Mid-cell checkpointing -------------------------------------------
  /// When both `snapshot_interval` and `snapshot_path` are set, the
  /// measurement phase runs in interval-sized chunks and a full-system
  /// snapshot is written to `snapshot_path` (atomically) after each
  /// non-final chunk. If a valid snapshot for this cell already exists at
  /// `snapshot_path` the run resumes from it — skipping warmup and the
  /// already-measured cycles — and still produces byte-identical results.
  /// A stale / corrupted / mismatched snapshot is ignored (from-zero run).
  Cycle snapshot_interval = 0;    ///< 0 = checkpointing off
  std::string snapshot_path;      ///< empty = checkpointing off
  /// Out-param: cycles of measurement recovered from a snapshot instead of
  /// re-simulated (0 when no snapshot was restored). Null = don't report.
  std::uint64_t* resumed_from_cycles = nullptr;
  /// Crash drill: raise SIGKILL immediately after the first snapshot whose
  /// progress cursor reaches this cycle count (tests the kill-between-
  /// snapshots recovery path). 0 = never.
  Cycle debug_kill_at = 0;
};

/// The cell-identity digest a snapshot is stamped with: hashes the full
/// config summary, seed, workload name and phase parameters so a snapshot
/// can never restore into a different experiment cell.
std::uint64_t cell_digest(const SystemConfig& cfg,
                          const workload::BenchmarkProfile& profile,
                          const RunOptions& opt);

CellResult run_cell(const SystemConfig& cfg,
                    const workload::BenchmarkProfile& profile,
                    const RunOptions& opt);

/// Run the same workload under several schemes (identical everything else)
/// and return results in scheme order.
std::vector<CellResult> run_schemes(SystemConfig cfg,
                                    const workload::BenchmarkProfile& profile,
                                    const std::vector<Scheme>& schemes,
                                    const RunOptions& opt);

/// Geometric mean over positive values.
double geomean(const std::vector<double>& v);

}  // namespace disco::sim
