#include "sim/report.h"

#include <ostream>

#include "common/table.h"
#include "energy/energy_model.h"

namespace disco::sim {
namespace {

void latency_section(std::ostream& os, const cache::CacheStats& cs) {
  os << "-- L1-miss latency --\n";
  TablePrinter t({"population", "count", "mean", "p50", "p95", "p99", "max"});
  const auto row = [&](const char* name, const Accumulator& acc,
                       const Histogram* hist) {
    t.add_row({name, std::to_string(acc.count()), TablePrinter::fmt(acc.mean(), 1),
               hist ? std::to_string(hist->approx_quantile(0.5)) : "-",
               hist ? std::to_string(hist->approx_quantile(0.95)) : "-",
               hist ? std::to_string(hist->approx_quantile(0.99)) : "-",
               TablePrinter::fmt(acc.max(), 0)});
  };
  row("NUCA-served (Fig.5 metric)", cs.nuca_latency, &cs.nuca_latency_hist);
  row("DRAM-served", cs.dram_latency, nullptr);
  row("all misses", cs.miss_latency, &cs.miss_latency_hist);
  t.print(os);
}

void cache_section(std::ostream& os, const cache::CacheStats& cs) {
  os << "-- cache hierarchy --\n";
  TablePrinter t({"counter", "value"});
  t.add_row({"L1 hit rate", TablePrinter::pct(1.0 - cs.l1_miss_rate())});
  t.add_row({"L2 hit rate", TablePrinter::pct(1.0 - cs.l2_miss_rate())});
  t.add_row({"L2 fills / evictions", std::to_string(cs.l2_fills) + " / " +
                                         std::to_string(cs.l2_evictions)});
  t.add_row({"invalidations / recalls", std::to_string(cs.invalidations_sent) +
                                            " / " + std::to_string(cs.recalls_sent)});
  t.add_row({"DRAM reads / writes", std::to_string(cs.dram_reads) + " / " +
                                        std::to_string(cs.dram_writes)});
  t.add_row({"bank comp / decomp ops", std::to_string(cs.bank_compressions) +
                                           " / " +
                                           std::to_string(cs.bank_decompressions)});
  if (cs.stored_line_bytes.count() > 0) {
    t.add_row({"effective stored ratio",
               TablePrinter::fmt(static_cast<double>(kBlockBytes) /
                                     cs.stored_line_bytes.mean(), 2)});
  }
  t.print(os);
}

void noc_section(std::ostream& os, const noc::NocStats& ns) {
  os << "-- network --\n";
  TablePrinter t({"counter", "value"});
  t.add_row({"packets (in/out)", std::to_string(ns.packets_injected) + " / " +
                                     std::to_string(ns.packets_ejected)});
  t.add_row({"link flits", std::to_string(ns.link_flits)});
  static const char* vnet_names[] = {"request", "response", "coherence"};
  for (std::size_t v = 0; v < kNumVNets; ++v) {
    t.add_row({std::string("avg latency (") + vnet_names[v] + ")",
               TablePrinter::fmt(ns.packet_latency[v].mean(), 1)});
  }
  t.add_row({"packet idle cycles p95",
             std::to_string(ns.queueing_cycles.approx_quantile(0.95))});
  t.print(os);

  os << "-- DISCO machinery --\n";
  TablePrinter d({"event", "count"});
  d.add_row({"engine starts", std::to_string(ns.engine_starts)});
  d.add_row({"in-router compressions", std::to_string(ns.inflight_compressions)});
  d.add_row({"in-router decompressions", std::to_string(ns.inflight_decompressions)});
  d.add_row({"source-queue compressions", std::to_string(ns.source_compressions)});
  d.add_row({"aborted compressions (non-blocking)",
             std::to_string(ns.compression_aborts)});
  d.add_row({"aborted decompressions (non-blocking)",
             std::to_string(ns.decompression_aborts)});
  d.add_row({"decompressions hidden at eject", std::to_string(ns.hidden_decomp_ops)});
  d.add_row({"NI compressions / decompressions",
             std::to_string(ns.ni_compressions) + " / " +
                 std::to_string(ns.ni_decompressions)});
  d.add_row({"exposed comp/decomp cycles",
             std::to_string(ns.exposed_comp_cycles) + " / " +
                 std::to_string(ns.exposed_decomp_cycles)});
  d.print(os);
}

void energy_section(std::ostream& os, cmp::CmpSystem& sys, Cycle cycles) {
  const auto e = energy::compute_energy(
      sys.noc_stats(), sys.cache_stats(), sys.config(), cycles,
      sys.algorithm().hardware_overhead() / 0.023);
  os << "-- energy (on-chip memory subsystem) --\n";
  TablePrinter t({"component", "uJ", "share"});
  const double total = e.subsystem_nj();
  const auto row = [&](const char* name, double nj) {
    t.add_row({name, TablePrinter::fmt(nj / 1000.0, 2),
               total > 0 ? TablePrinter::pct(nj / total) : "-"});
  };
  row("NoC dynamic", e.noc_dynamic_nj);
  row("NoC leakage", e.noc_leakage_nj);
  row("L2 dynamic", e.l2_dynamic_nj);
  row("L2 leakage", e.l2_leakage_nj);
  row("compressor dynamic", e.compressor_dynamic_nj);
  row("compressor leakage", e.compressor_leakage_nj);
  t.add_row({"subsystem total", TablePrinter::fmt(total / 1000.0, 2), "100%"});
  t.add_row({"DRAM (off-chip, informational)",
             TablePrinter::fmt(e.dram_nj / 1000.0, 2), "-"});
  t.print(os);
}

}  // namespace

void print_system_report(std::ostream& os, cmp::CmpSystem& sys, Cycle cycles) {
  os << "system: " << sys.config().summary() << "\n";
  os << "measured cycles: " << cycles
     << ", core memory ops: " << sys.total_core_ops() << "\n\n";
  latency_section(os, sys.cache_stats());
  cache_section(os, sys.cache_stats());
  noc_section(os, sys.noc_stats());
  energy_section(os, sys, cycles);
}

}  // namespace disco::sim
