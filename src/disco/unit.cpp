#include "disco/unit.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "noc/snapshot.h"

namespace disco::core {

using noc::VcId;
using noc::VirtualChannel;

namespace {

/// Confidence values travel in trace events as llround(c * 256) fixed-point.
std::int64_t conf_fixed(double c) { return std::llround(c * 256.0); }

}  // namespace

DiscoUnit::DiscoUnit(noc::Router& router, const DiscoConfig& cfg,
                     const compress::Algorithm& algo,
                     compress::LatencyModel latency, noc::NocStats& stats,
                     fault::FaultInjector* fi)
    : router_(router), cfg_(cfg), algo_(algo), latency_(latency), stats_(stats),
      fi_(fi) {
  engines_.resize(std::max<std::uint32_t>(cfg_.engines_per_router, 1));
  cc_th_ = cfg_.cc_threshold;
  cd_th_ = cfg_.cd_threshold;
  next_adapt_ = cfg_.adapt_window_cycles;
}

bool DiscoUnit::engine_available() const {
  return std::any_of(engines_.begin(), engines_.end(),
                     [](const Engine& e) { return !e.busy && !e.quarantined; });
}

std::size_t DiscoUnit::busy_engines() const {
  return static_cast<std::size_t>(
      std::count_if(engines_.begin(), engines_.end(),
                    [](const Engine& e) { return e.busy; }));
}

std::size_t DiscoUnit::quarantined_engines() const {
  return static_cast<std::size_t>(
      std::count_if(engines_.begin(), engines_.end(),
                    [](const Engine& e) { return e.quarantined; }));
}

double DiscoUnit::compression_confidence(const VcId& v) const {
  const VirtualChannel& ch = router_.vc(v);
  const double remote = router_.downstream_occupancy(ch.out_port);
  const double local = router_.competing_vcs(ch.out_port, v);
  return remote + cfg_.gamma * local;  // Eq. 1
}

double DiscoUnit::decompression_confidence(const VcId& v) const {
  const VirtualChannel& ch = router_.vc(v);
  const noc::PacketPtr pkt = ch.head_packet();
  const double remote = router_.downstream_occupancy(ch.out_port);
  const double local = router_.competing_vcs(ch.out_port, v);
  const double hops = pkt ? router_.hops_to(pkt->dst) : 0.0;
  return remote + cfg_.alpha * local - cfg_.beta * hops;  // Eq. 2
}

void DiscoUnit::after_allocation(Cycle now, const std::vector<VcId>& losers) {
  if (!engine_available() || losers.empty()) return;

  // Packet filter + confidence counter (Fig. 3).
  std::vector<Candidate> candidates;
  for (const VcId& v : losers) {
    VirtualChannel& ch = router_.vc(v);
    const noc::PacketPtr pkt = ch.head_packet();
    if (!pkt || !pkt->has_data || ch.engine_busy || ch.sent_flits != 0) continue;

    if (pkt->compressible && !pkt->compressed() && !pkt->comp_failed &&
        !pkt->decompressed_in_network) {
      // Compressing a block that is about to be consumed raw would only
      // re-expose decompression latency at the NI (packet-filter rule).
      if (pkt->dst_unit != UnitKind::L2Bank && router_.hops_to(pkt->dst) <= 1)
        continue;
      // Whole-packet residency is required unless separate-flit compression
      // (section 3.3A) is enabled; at least the head group must be here.
      const bool resident = ch.whole_packet_resident();
      if (!resident && !(cfg_.separate_flit_compression &&
                         ch.buffered_flits_of_head() >= 2)) {
        continue;
      }
      const double c = compression_confidence(v);
      if (auto* t = router_.tracer())
        t->emit(now, router_.id(), trace::Event::ConfidenceComp,
                static_cast<std::uint8_t>(v.port), v.vc, pkt->id,
                conf_fixed(c));
      if (c > cc_th_) {
        candidates.push_back({v, /*decompress=*/false, c});
      } else {
        ++window_rejections_;
      }
    } else if (pkt->compressed() && pkt->dst_unit != UnitKind::L2Bank) {
      // Decompress only blocks heading to a raw consumer (core L1 / DRAM);
      // bank-bound blocks are stored compressed, so early decompression
      // would only waste bandwidth (the RC_Hop rationale of Eq. 2).
      if (!ch.whole_packet_resident()) continue;
      const double c = decompression_confidence(v);
      if (auto* t = router_.tracer())
        t->emit(now, router_.id(), trace::Event::ConfidenceDecomp,
                static_cast<std::uint8_t>(v.port), v.vc, pkt->id,
                conf_fixed(c));
      if (c > cd_th_) {
        candidates.push_back({v, /*decompress=*/true, c});
      } else {
        ++window_rejections_;
      }
    }
  }
  if (candidates.empty()) return;

  // Dispatch the top-k losers, one per free engine. Each candidate is a
  // distinct VC (engine_busy VCs were filtered above), so winners never
  // contend for the same packet. stable_sort keeps the losers order on
  // confidence ties, which keeps the dispatch deterministic.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.confidence > b.confidence;
                   });
  std::size_t next = 0;
  for (Engine& eng : engines_) {
    if (next >= candidates.size()) break;
    if (!eng.busy && !eng.quarantined) start(eng, candidates[next++], now);
  }
}

void DiscoUnit::start(Engine& eng, const Candidate& cand, Cycle now) {
  VirtualChannel& ch = router_.vc(cand.vc);
  noc::PacketPtr pkt = ch.head_packet();
  assert(pkt);

  eng.busy = true;
  eng.decompress = cand.decompress;
  eng.vc = cand.vc;
  eng.pkt = pkt;
  eng.old_flit_count = pkt->flit_count();
  eng.awaiting_residency = !ch.whole_packet_resident();
  eng.done_at =
      now + (cand.decompress ? latency_.decomp_cycles : latency_.comp_cycles);
  if (fault_mode() && fi_->should_stall_engine()) {
    // Transient engine hang (clock-gating glitch model): the operation
    // completes late, which widens the abort window.
    eng.done_at += fi_->config().engine_stall_cycles;
  }

  if (!cand.decompress) {
    eng.result = algo_.compress(pkt->data);
    if (cfg_.separate_flit_compression && eng.awaiting_residency) {
      // Separately compressed flit groups carry concatenation tags so the
      // bubble between groups can be merged away (section 3.3A); model the
      // tag overhead as two extra bytes of framing. They occupy wire space
      // but are not part of the decodable stream, so they must not be
      // appended to `bytes` (decoders reject length-altered streams).
      eng.result.overhead_bytes += 2;
    }
    if (eng.result.size() >= kBlockBytes) {
      // Incompressible: the attempt still occupies the engine, and the
      // packet is marked so the arbitrator does not retry it every cycle.
      pkt->comp_failed = true;
    } else if (fault_mode()) {
      // Silent datapath fault in the compressor output; travels undetected
      // until the ejecting NI's end-to-end verification.
      fi_->corrupt_engine_output(eng.result.bytes);
    }
  }

  ch.engine_busy = true;
  ch.sa_inhibit = !cfg_.non_blocking;
  ++stats_.engine_starts;
  if (auto* t = router_.tracer())
    t->emit(now, router_.id(),
            cand.decompress ? trace::Event::DecompStart
                            : trace::Event::CompStart,
            static_cast<std::uint8_t>(cand.vc.port), cand.vc.vc, pkt->id,
            conf_fixed(cand.confidence));
}

void DiscoUnit::on_shadow_departed(Cycle now, const VcId& v) {
  for (Engine& eng : engines_) {
    if (!eng.busy || !(eng.vc == v)) continue;
    // Mis-predicted stall: the port freed up and the scheduler sent the
    // shadow packet; invalidate the flits under process (non-blocking op).
    ++(eng.decompress ? stats_.decompression_aborts : stats_.compression_aborts);
    ++window_aborts_;
    if (auto* t = router_.tracer())
      t->emit(now, router_.id(),
              eng.decompress ? trace::Event::DecompAbort
                             : trace::Event::CompAbort,
              static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc, eng.pkt->id,
              0);
    release(eng, now);
    return;
  }
}

void DiscoUnit::on_hard_fault(Cycle now) {
  for (Engine& eng : engines_) {
    if (eng.busy) {
      ++(eng.decompress ? stats_.decompression_aborts
                        : stats_.compression_aborts);
      ++window_aborts_;
      if (auto* t = router_.tracer())
        t->emit(now, router_.id(),
                eng.decompress ? trace::Event::DecompAbort
                               : trace::Event::CompAbort,
                static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc,
                eng.pkt->id, 0);
      release(eng, now);
    }
    eng.quarantined = true;
  }
}

void DiscoUnit::tick(Cycle now) {
  if (cfg_.adaptive_thresholds && now >= next_adapt_) adapt_thresholds(now);
  for (Engine& eng : engines_) {
    if (!eng.busy || eng.done_at > now) continue;
    VirtualChannel& ch = router_.vc(eng.vc);
    if (ch.head_packet() != eng.pkt || ch.sent_flits != 0) {
      // The shadow left between allocation and completion; treat as abort.
      ++(eng.decompress ? stats_.decompression_aborts : stats_.compression_aborts);
      ++window_aborts_;
      if (auto* t = router_.tracer())
        t->emit(now, router_.id(),
                eng.decompress ? trace::Event::DecompAbort
                               : trace::Event::CompAbort,
                static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc,
                eng.pkt->id, 0);
      release(eng, now);
      continue;
    }
    if (eng.awaiting_residency && !ch.whole_packet_resident()) {
      // Separate-flit mode: earlier groups are done, wait for the tail.
      eng.done_at = now + 1;
      continue;
    }
    complete(eng, now);
  }
}

void DiscoUnit::complete(Engine& eng, Cycle now) {
  noc::PacketPtr pkt = eng.pkt;
  const std::uint32_t old_count = pkt->flit_count();

  if (eng.decompress) {
    if (fault_mode()) {
      // Hardened decode path: a corrupted stream must not crash the engine.
      // On failure the packet continues compressed (the ejecting NI detects
      // and recovers) and the engine books an error towards quarantine.
      const FaultConfig& fc = fi_->config();
      const std::optional<BlockBytes> dec = algo_.try_decompress(
          std::span<const std::uint8_t>(pkt->encoded->bytes));
      bool valid = dec.has_value();
      if (valid && pkt->crc_valid &&
          fault::checksum(std::span<const std::uint8_t>(*dec), fc.crc) !=
              pkt->payload_crc) {
        valid = false;
      }
      if (!valid) {
        ++stats_.engine_decode_errors;
        ++eng.errors;
        if (!eng.quarantined && eng.errors >= fc.engine_quarantine_threshold) {
          eng.quarantined = true;
          ++stats_.engines_quarantined;
        }
        ++window_completions_;
        if (auto* t = router_.tracer())
          t->emit(now, router_.id(), trace::Event::DecompFinish,
                  static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc, pkt->id,
                  0);
        release(eng, now);
        return;
      }
      if (*dec != pkt->data) ++stats_.silent_corruptions;  // oracle only
      pkt->encoded.reset();
    } else {
      pkt->apply_decompression(algo_);
    }
    pkt->decompressed_in_network = true;
    const bool ok = router_.rebuild_head_packet(eng.vc, old_count, now);
    assert(ok && "decompression rebuild must succeed for a resident shadow");
    (void)ok;
    ++stats_.inflight_decompressions;
  } else if (eng.result.size() < kBlockBytes) {
    pkt->apply_compression(std::move(eng.result));
    const bool ok = router_.rebuild_head_packet(eng.vc, old_count, now);
    assert(ok && "compression rebuild must succeed for a resident shadow");
    (void)ok;
    ++stats_.inflight_compressions;
  }
  // else: incompressible attempt, nothing to apply.
  ++window_completions_;
  if (auto* t = router_.tracer())
    t->emit(now, router_.id(),
            eng.decompress ? trace::Event::DecompFinish
                           : trace::Event::CompFinish,
            static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc, pkt->id,
            static_cast<std::int64_t>(pkt->flit_count()) -
                static_cast<std::int64_t>(old_count));
  release(eng, now);
}

void DiscoUnit::adapt_thresholds(Cycle now) {
  next_adapt_ = now + cfg_.adapt_window_cycles;
  const std::uint64_t decided = window_aborts_ + window_completions_;
  if (decided >= 8) {
    const double abort_rate =
        static_cast<double>(window_aborts_) / static_cast<double>(decided);
    if (abort_rate > cfg_.adapt_target_abort_rate * 1.25) {
      // Hasty decisions: demand more evidence of a long stall.
      cc_th_ = std::min(cc_th_ * 1.5, 64.0);
      cd_th_ = std::min(cd_th_ * 1.5, 64.0);
    } else if (abort_rate < cfg_.adapt_target_abort_rate * 0.5 &&
               window_rejections_ > decided) {
      // Engines starved while candidates were rejected: loosen.
      cc_th_ = std::max(cc_th_ * 0.75, 0.25);
      cd_th_ = std::max(cd_th_ * 0.75, 0.25);
    }
  } else if (window_rejections_ > 32) {
    // No operations at all but plenty of rejected candidates: loosen.
    cc_th_ = std::max(cc_th_ * 0.75, 0.25);
    cd_th_ = std::max(cd_th_ * 0.75, 0.25);
  }
  window_aborts_ = window_completions_ = window_rejections_ = 0;
}

void DiscoUnit::release(Engine& eng, Cycle now) {
  VirtualChannel& ch = router_.vc(eng.vc);
  ch.engine_busy = false;
  ch.sa_inhibit = false;
  if (auto* t = router_.tracer())
    t->emit(now, router_.id(), trace::Event::ShadowRetire,
            static_cast<std::uint8_t>(eng.vc.port), eng.vc.vc,
            eng.pkt != nullptr ? eng.pkt->id : 0, 0);
  const std::uint32_t errors = eng.errors;
  const bool quarantined = eng.quarantined;
  eng = Engine{};
  eng.errors = errors;
  eng.quarantined = quarantined;
}

void DiscoUnit::save_state(snap::Writer& w, noc::PacketTable& t) const {
  w.u64(engines_.size());
  for (const Engine& e : engines_) {
    w.b(e.busy);
    w.b(e.decompress);
    w.b(e.awaiting_residency);
    w.u8(static_cast<std::uint8_t>(e.vc.port));
    w.u8(e.vc.vc);
    t.save_ref(w, e.pkt);
    w.u64(e.done_at);
    w.u32(e.old_flit_count);
    noc::save_encoded(w, e.result);
    w.u32(e.errors);
    w.b(e.quarantined);
  }
  w.f64(cc_th_);
  w.f64(cd_th_);
  w.u64(window_aborts_);
  w.u64(window_completions_);
  w.u64(window_rejections_);
  w.u64(next_adapt_);
}

void DiscoUnit::restore_state(snap::Reader& r, const noc::PacketTable& t) {
  if (r.u64() != engines_.size())
    throw snap::SnapshotError("snapshot: DISCO engine-count mismatch");
  for (Engine& e : engines_) {
    e.busy = r.b();
    e.decompress = r.b();
    e.awaiting_residency = r.b();
    e.vc.port = static_cast<noc::Port>(r.u8());
    e.vc.vc = r.u8();
    e.pkt = t.load_ref(r);
    e.done_at = r.u64();
    e.old_flit_count = r.u32();
    e.result = noc::load_encoded(r);
    e.errors = r.u32();
    e.quarantined = r.b();
  }
  cc_th_ = r.f64();
  cd_th_ = r.f64();
  window_aborts_ = r.u64();
  window_completions_ = r.u64();
  window_rejections_ = r.u64();
  next_adapt_ = r.u64();
}

}  // namespace disco::core
