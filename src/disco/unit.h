// The DISCO in-router machinery (paper section 3.2): a per-router
// arbitrator + compressor engine set attached to the generic VC router
// through the RouterExtension hooks.
//
// Step 1 — candidate selection: the router reports every VC that requested
//   but lost VC/switch allocation this cycle (the idling packets).
// Step 2 — confidence counting: for each candidate the arbitrator combines
//   remote pressure (credit_in of the packet's RC output), local pressure
//   (competing VCs, the credit_out proxy) and, for decompression, the
//   remaining hop count (RC_Hop), per Eq. 1 / Eq. 2:
//     C_comp   = credit_in + gamma * credit_out                > CCth
//     C_decomp = credit_in + alpha * credit_out - beta * hops  > CDth
// Step 3 — engine operation: the winning packet is copied into a free
//   engine; its flits stay in the VC as a schedulable shadow packet. If the
//   shadow departs first (non-blocking mode), the operation aborts; if the
//   engine finishes first, the shadow flits are replaced in place and the
//   freed buffer space is returned upstream as bonus credits.
#pragma once

#include <vector>

#include "common/config.h"
#include "compress/algorithm.h"
#include "fault/fault.h"
#include "noc/router.h"

namespace disco::core {

class DiscoUnit final : public noc::RouterExtension {
 public:
  /// `latency` is usually algo.latency(); experiments may override it.
  /// With a fault injector the engines can stall, produce corrupted output,
  /// and self-quarantine after repeated decode errors.
  DiscoUnit(noc::Router& router, const DiscoConfig& cfg,
            const compress::Algorithm& algo, compress::LatencyModel latency,
            noc::NocStats& stats, fault::FaultInjector* fi = nullptr);

  void after_allocation(Cycle now, const std::vector<noc::VcId>& losers) override;
  void on_shadow_departed(Cycle now, const noc::VcId& vc) override;
  void tick(Cycle now) override;
  /// Permanent engine-array failure: abort everything in flight and
  /// quarantine every engine forever (the NI flips to uncompressed bypass).
  void on_hard_fault(Cycle now) override;

  /// Checkpoint/restore of engine and adaptive-threshold state.
  void save_state(snap::Writer& w, noc::PacketTable& t) const override;
  void restore_state(snap::Reader& r, const noc::PacketTable& t) override;

  /// Confidence values (exposed for unit tests and threshold sweeps).
  double compression_confidence(const noc::VcId& v) const;
  double decompression_confidence(const noc::VcId& v) const;

  std::size_t busy_engines() const;
  std::size_t quarantined_engines() const;

  /// Current (possibly adapted) thresholds.
  double cc_threshold() const { return cc_th_; }
  double cd_threshold() const { return cd_th_; }

 private:
  struct Engine {
    bool busy = false;
    bool decompress = false;
    bool awaiting_residency = false;  ///< separate-flit mode: tail not yet here
    noc::VcId vc{};
    noc::PacketPtr pkt;
    Cycle done_at = 0;
    std::uint32_t old_flit_count = 0;
    compress::Encoded result;  ///< compression output, computed at start
    // Lifetime fault state: survives release(), see DiscoUnit::release.
    std::uint32_t errors = 0;  ///< decode/CRC failures observed by this engine
    bool quarantined = false;  ///< permanently taken out of service
  };

  struct Candidate {
    noc::VcId vc{};
    bool decompress = false;
    double confidence = 0.0;
  };

  bool engine_available() const;
  bool fault_mode() const { return fi_ != nullptr && fi_->enabled(); }
  void start(Engine& eng, const Candidate& cand, Cycle now);
  void complete(Engine& eng, Cycle now);
  void release(Engine& eng, Cycle now);
  void adapt_thresholds(Cycle now);

  noc::Router& router_;
  DiscoConfig cfg_;
  const compress::Algorithm& algo_;
  compress::LatencyModel latency_;
  noc::NocStats& stats_;
  fault::FaultInjector* fi_ = nullptr;
  std::vector<Engine> engines_;

  // Adaptive-threshold state (extension; see DiscoConfig).
  double cc_th_ = 0;
  double cd_th_ = 0;
  std::uint64_t window_aborts_ = 0;
  std::uint64_t window_completions_ = 0;
  std::uint64_t window_rejections_ = 0;  ///< candidates below threshold
  Cycle next_adapt_ = 0;
};

}  // namespace disco::core
