// Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012; paper
// reference [5]). Tries all (base size, delta size) encodings plus the
// special zero-block and repeated-value encodings and keeps the smallest.
// Like the production BDI design, each element may alternatively use the
// implicit zero base; a bitmask records the choice.
//
// Encoded layout: [tag][mask bytes][base: B bytes][N deltas of D bytes]
// with (B, D) per encoding id; zeros -> 1 byte; repeated 8B value -> 9 bytes.
#pragma once

#include "compress/algorithm.h"

namespace disco::compress {

class BdiAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "bdi"; }
  LatencyModel latency() const override { return {1, 3}; }  // Table 1: 1 / 1~5
  double hardware_overhead() const override { return 0.023; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

}  // namespace disco::compress
