// C-Pack cache compression (Chen et al., TVLSI 2010; paper reference [4]):
// combines static frequent patterns with a small build-as-you-go dictionary
// of recently seen 32-bit words. The decompressor reconstructs the same
// dictionary, so no dictionary state is stored in the encoding.
//
// Per-word codes (as in the C-Pack paper):
//   zzzz (00)            word == 0
//   xxxx (01) + 32b      raw word, pushed into dictionary
//   mmmm (10) + 4b       full dictionary match at index
//   mmxx (1100) + 4b+16b high halfword matches dict entry, low half literal;
//                        word pushed into dictionary
//   zzzx (1101) + 8b     only lowest byte non-zero
//   mmmx (1110) + 4b+8b  matches dict entry except lowest byte
#pragma once

#include "compress/algorithm.h"

namespace disco::compress {

class CpackAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "cpack"; }
  LatencyModel latency() const override { return {6, 8}; }  // Table 1 decomp 8
  /// Table 1 leaves C-Pack's overhead blank; the C-Pack paper reports ~6.7%
  /// of a 2MB L2 for a pair of (de)compressors.
  double hardware_overhead() const override { return 0.067; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

}  // namespace disco::compress
