// Recoverable decode failure: thrown by the hardened decoders on truncated,
// overlong or otherwise malformed streams and converted to std::nullopt by
// Algorithm::try_decompress. Valid streams never throw, so the lossless
// round-trip contract of the compressors is unchanged.
#pragma once

#include <stdexcept>

namespace disco::compress {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const char* what) : std::runtime_error(what) {}
};

}  // namespace disco::compress
