#include "compress/sc2.h"

#include <algorithm>
#include <cstring>

#include "common/rng.h"

namespace disco::compress {
namespace {

constexpr std::size_t kWords = kBlockBytes / 4;
constexpr std::uint8_t kSc2Tag = 0x00;

std::uint32_t load_word(const BlockBytes& b, std::size_t i) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + i * 4, 4);
  return v;
}

/// Deterministic generic training corpus: mixes the value populations that
/// dominate real workloads (zeros, small integers, pointer-like values,
/// repeated words) so an untrained SC² still behaves sensibly.
std::vector<BlockBytes> generic_corpus() {
  std::vector<BlockBytes> corpus;
  Rng rng(0xC0DEC0DEULL);
  for (int n = 0; n < 512; ++n) {
    BlockBytes b{};
    const int kind = n % 4;
    for (std::size_t w = 0; w < kWords; ++w) {
      std::uint32_t v = 0;
      switch (kind) {
        case 0: v = 0; break;
        case 1: v = static_cast<std::uint32_t>(rng.next_below(256)); break;
        case 2: v = 0x08000000U + static_cast<std::uint32_t>(rng.next_below(64)) * 8; break;
        default: v = rng.next_u32(); break;
      }
      std::memcpy(b.data() + w * 4, &v, 4);
    }
    corpus.push_back(b);
  }
  return corpus;
}

}  // namespace

Sc2Algorithm::Sc2Algorithm() {
  const auto corpus = generic_corpus();
  retrain(std::span<const BlockBytes>(corpus.data(), corpus.size()));
}

Sc2Algorithm::Sc2Algorithm(std::span<const BlockBytes> training_blocks) {
  retrain(training_blocks);
}

void Sc2Algorithm::retrain(std::span<const BlockBytes> training_blocks) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  std::uint64_t total_words = 0;
  for (const auto& block : training_blocks) {
    for (std::size_t w = 0; w < kWords; ++w) {
      ++counts[load_word(block, w)];
      ++total_words;
    }
  }

  // Keep the kTableWords most frequent words as symbols.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(counts.begin(),
                                                              counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  if (sorted.size() > kTableWords) sorted.resize(kTableWords);

  word_of_symbol_.clear();
  symbol_of_word_.clear();
  std::vector<std::uint64_t> freqs(kTableWords + 1, 0);
  std::uint64_t covered = 0;
  for (std::size_t s = 0; s < sorted.size(); ++s) {
    word_of_symbol_.push_back(sorted[s].first);
    symbol_of_word_[sorted[s].first] = static_cast<std::uint32_t>(s);
    freqs[s] = sorted[s].second;
    covered += sorted[s].second;
  }
  // Escape frequency = everything not covered by the table (at least 1 so
  // the escape path always has a code).
  freqs[kEscape] = std::max<std::uint64_t>(total_words - covered, 1);
  code_ = HuffmanCode::build(freqs);
}

Encoded Sc2Algorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::uint32_t w = load_word(block, i);
    const auto it = symbol_of_word_.find(w);
    if (it != symbol_of_word_.end()) {
      code_.encode(bw, it->second);
    } else {
      code_.encode(bw, kEscape);
      bw.put(w, 32);
    }
  }
  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.push_back(kSc2Tag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes Sc2Algorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty SC2 stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kSc2Tag) throw DecodeError("invalid SC2 tag");
  BitReader br(enc.subspan(1));
  BlockBytes out{};
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::size_t symbol = code_.decode(br);
    std::uint32_t w;
    if (symbol == kEscape) {
      w = static_cast<std::uint32_t>(br.get(32));
    } else {
      if (symbol >= word_of_symbol_.size())
        throw DecodeError("SC2 symbol out of table range");
      w = word_of_symbol_[symbol];
    }
    std::memcpy(out.data() + i * 4, &w, 4);
  }
  br.expect_no_trailing_bytes();
  return out;
}

}  // namespace disco::compress
