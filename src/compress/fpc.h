// Frequent Pattern Compression (Alameldeen & Wood, ISCA 2004; paper
// reference [2]). Each 32-bit word gets a 3-bit prefix selecting one of
// seven frequent patterns (zero runs, sign-extended narrow values, padded
// halfwords, repeated bytes) or a raw 32-bit fallback.
//
// SFPC is the paper's "simplified FPC" (Table 1): a 2-bit prefix over a
// reduced pattern set, trading compression ratio (1.33 vs 1.5) for a
// shallower decompressor pipeline (4 vs 5 cycles).
#pragma once

#include "compress/algorithm.h"

namespace disco::compress {

class FpcAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "fpc"; }
  LatencyModel latency() const override { return {3, 5}; }  // Table 1 decomp 5
  double hardware_overhead() const override { return 0.08; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

class SfpcAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "sfpc"; }
  LatencyModel latency() const override { return {2, 4}; }  // Table 1 decomp 4
  double hardware_overhead() const override { return 0.08; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

}  // namespace disco::compress
