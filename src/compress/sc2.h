// SC² statistical cache compression (Arelakis & Stenström, ISCA 2014; paper
// reference [3]): value-frequency sampling builds a Huffman code over the
// most frequent 32-bit words; rare words escape to a literal encoding. The
// paper reports ~2.4x average compression at 6-cycle compression and
// 8/14-cycle decompression.
//
// The code table is trained from sampled blocks — either the built-in
// generic corpus (constructor) or a workload sample via retrain(), mirroring
// SC²'s sampling phase.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "compress/algorithm.h"
#include "compress/huffman.h"

namespace disco::compress {

class Sc2Algorithm final : public Algorithm {
 public:
  /// Trains on a deterministic built-in corpus so the algorithm is usable
  /// out of the box; systems retrain on workload samples during warmup.
  Sc2Algorithm();
  explicit Sc2Algorithm(std::span<const BlockBytes> training_blocks);

  std::string_view name() const override { return "sc2"; }
  LatencyModel latency() const override { return {6, 14}; }  // worst of 8/14
  double hardware_overhead() const override { return 0.027; }  // mid of 1.46-3.9%

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;

  /// Rebuild the code table from a workload sample (SC² sampling phase).
  void retrain(std::span<const BlockBytes> training_blocks);

  std::size_t table_entries() const { return symbol_of_word_.size(); }

 private:
  static constexpr std::size_t kTableWords = 255;  ///< frequent-word symbols
  static constexpr std::size_t kEscape = kTableWords;  ///< escape symbol id

  HuffmanCode code_;
  std::vector<std::uint32_t> word_of_symbol_;
  std::unordered_map<std::uint32_t, std::uint32_t> symbol_of_word_;
};

}  // namespace disco::compress
