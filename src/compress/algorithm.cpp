#include "compress/algorithm.h"

#include <cassert>

namespace disco::compress {

Encoded encode_raw(const BlockBytes& block) {
  Encoded e;
  e.bytes.reserve(1 + kBlockBytes);
  e.bytes.push_back(kRawTag);
  e.bytes.insert(e.bytes.end(), block.begin(), block.end());
  return e;
}

bool is_raw(std::span<const std::uint8_t> enc) {
  return !enc.empty() && enc.front() == kRawTag;
}

BlockBytes decode_raw(std::span<const std::uint8_t> enc) {
  if (!is_raw(enc) || enc.size() != 1 + kBlockBytes)
    throw DecodeError("malformed raw encoding");
  BlockBytes b{};
  for (std::size_t i = 0; i < kBlockBytes; ++i) b[i] = enc[1 + i];
  return b;
}

std::optional<BlockBytes> Algorithm::try_decompress(
    std::span<const std::uint8_t> enc) const {
  if (enc.empty()) return std::nullopt;
  try {
    return decompress(enc);
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

double ratio_of(const Algorithm& algo, const BlockBytes& block) {
  const Encoded e = algo.compress(block);
  return static_cast<double>(kBlockBytes) / static_cast<double>(e.size());
}

}  // namespace disco::compress
