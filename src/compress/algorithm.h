// Abstract interface for cache-block compression algorithms. DISCO is
// algorithm-agnostic (paper section 2): every algorithm plugs into the same
// router/cache machinery through this interface. Compression is exact and
// lossless: decompress(compress(b)) == b for every 64-byte block, and the
// encoded size includes all metadata bits so compression ratios are honest.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "compress/decode_error.h"

namespace disco::compress {

/// De/compression pipeline timing, per Table 1 of the paper (cycles at the
/// router/cache clock).
struct LatencyModel {
  std::uint32_t comp_cycles = 1;
  std::uint32_t decomp_cycles = 3;
};

/// Encoded form of one cache block. `size()` is the storage/transfer size
/// used by the cache segment allocator and the flit packer; it includes
/// `overhead_bytes` of framing metadata (e.g. the concatenation tags of
/// separate-flit compression) that occupy wire/storage space but are not
/// part of the decodable stream in `bytes`.
struct Encoded {
  std::vector<std::uint8_t> bytes;
  std::size_t overhead_bytes = 0;
  std::size_t size() const { return bytes.size() + overhead_bytes; }
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string_view name() const = 0;
  virtual LatencyModel latency() const = 0;
  /// Fraction of router/cache area the hardware unit adds (Table 1 column
  /// "Hardware Overhead"); consumed by the area model.
  virtual double hardware_overhead() const = 0;

  /// Encode a block. Implementations must fall back to a raw encoding
  /// (1 tag byte + 64 data bytes) when compression would not help, so the
  /// result is never larger than kBlockBytes + 1.
  virtual Encoded compress(const BlockBytes& block) const = 0;

  /// Exact inverse of compress(). Throws DecodeError on malformed input
  /// (truncated, overlong or invalid streams) instead of asserting.
  virtual BlockBytes decompress(std::span<const std::uint8_t> enc) const = 0;

  /// Non-throwing decode for untrusted streams (fault injection, fuzzing):
  /// std::nullopt on any malformed input, the exact block otherwise.
  std::optional<BlockBytes> try_decompress(
      std::span<const std::uint8_t> enc) const;
};

/// Shared raw-fallback helpers (tag byte 0xFF == stored uncompressed).
inline constexpr std::uint8_t kRawTag = 0xFF;

Encoded encode_raw(const BlockBytes& block);
bool is_raw(std::span<const std::uint8_t> enc);
BlockBytes decode_raw(std::span<const std::uint8_t> enc);

/// Compression ratio of one block under an algorithm: original / encoded.
double ratio_of(const Algorithm& algo, const BlockBytes& block);

}  // namespace disco::compress
