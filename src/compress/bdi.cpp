#include "compress/bdi.h"

#include <cstring>
#include <optional>

namespace disco::compress {
namespace {

// Encoding ids (tag byte values). kRawTag=0xFF is the shared raw fallback.
enum Tag : std::uint8_t {
  kZeros = 0,
  kRep8 = 1,
  // base_bytes x delta_bytes:
  kB8D1 = 2,
  kB8D2 = 3,
  kB8D4 = 4,
  kB4D1 = 5,
  kB4D2 = 6,
  kB2D1 = 7,
};

struct Shape {
  unsigned base_bytes;
  unsigned delta_bytes;
};

std::optional<Shape> shape_of(std::uint8_t tag) {
  switch (tag) {
    case kB8D1: return Shape{8, 1};
    case kB8D2: return Shape{8, 2};
    case kB8D4: return Shape{8, 4};
    case kB4D1: return Shape{4, 1};
    case kB4D2: return Shape{4, 2};
    case kB2D1: return Shape{2, 1};
    default: return std::nullopt;
  }
}

std::uint64_t load_elem(const BlockBytes& b, unsigned base_bytes, std::size_t i) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + i * base_bytes, base_bytes);
  return v;
}

bool fits_signed(std::int64_t v, unsigned bytes) {
  const std::int64_t lo = -(1LL << (8 * bytes - 1));
  const std::int64_t hi = (1LL << (8 * bytes - 1)) - 1;
  return v >= lo && v <= hi;
}

std::int64_t as_signed(std::uint64_t v, unsigned bytes) {
  const unsigned shift = 64 - 8 * bytes;
  return static_cast<std::int64_t>(v << shift) >> shift;
}

/// Attempt one (base,delta) shape; returns encoded bytes or nullopt.
std::optional<Encoded> try_shape(const BlockBytes& block, std::uint8_t tag) {
  const Shape s = *shape_of(tag);
  const std::size_t n = kBlockBytes / s.base_bytes;
  const std::size_t mask_bytes = (n + 7) / 8;

  const std::uint64_t base = load_elem(block, s.base_bytes, 0);
  std::vector<std::uint8_t> mask(mask_bytes, 0);
  std::vector<std::int64_t> deltas(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = load_elem(block, s.base_bytes, i);
    const auto d_base = as_signed(v - base, s.base_bytes);
    const auto d_zero = as_signed(v, s.base_bytes);
    if (fits_signed(d_base, s.delta_bytes)) {
      deltas[i] = d_base;
    } else if (fits_signed(d_zero, s.delta_bytes)) {
      deltas[i] = d_zero;
      mask[i / 8] |= static_cast<std::uint8_t>(1U << (i % 8));
    } else {
      return std::nullopt;
    }
  }

  Encoded e;
  e.bytes.reserve(1 + mask_bytes + s.base_bytes + n * s.delta_bytes);
  e.bytes.push_back(tag);
  e.bytes.insert(e.bytes.end(), mask.begin(), mask.end());
  for (unsigned b = 0; b < s.base_bytes; ++b)
    e.bytes.push_back(static_cast<std::uint8_t>(base >> (8 * b)));
  for (const std::int64_t d : deltas) {
    const auto ud = static_cast<std::uint64_t>(d);
    for (unsigned b = 0; b < s.delta_bytes; ++b)
      e.bytes.push_back(static_cast<std::uint8_t>(ud >> (8 * b)));
  }
  return e;
}

}  // namespace

Encoded BdiAlgorithm::compress(const BlockBytes& block) const {
  bool all_zero = true;
  for (const auto byte : block) all_zero = all_zero && byte == 0;
  if (all_zero) return Encoded{{kZeros}};

  bool repeated = true;
  for (std::size_t i = 8; i < kBlockBytes && repeated; ++i)
    repeated = block[i] == block[i - 8];
  if (repeated) {
    Encoded e;
    e.bytes.push_back(kRep8);
    e.bytes.insert(e.bytes.end(), block.begin(), block.begin() + 8);
    return e;
  }

  std::optional<Encoded> best;
  for (std::uint8_t tag : {kB8D1, kB4D1, kB8D2, kB2D1, kB4D2, kB8D4}) {
    auto e = try_shape(block, tag);
    if (e && (!best || e->size() < best->size())) best = std::move(e);
  }
  if (best && best->size() < 1 + kBlockBytes) return std::move(*best);
  return encode_raw(block);
}

BlockBytes BdiAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty BDI stream");
  if (is_raw(enc)) return decode_raw(enc);
  const std::uint8_t tag = enc.front();
  if (tag == kZeros) {
    if (enc.size() != 1) throw DecodeError("overlong BDI zero encoding");
    return zero_block();
  }
  if (tag == kRep8) {
    if (enc.size() != 9) throw DecodeError("BDI rep8 length mismatch");
    BlockBytes out{};
    for (std::size_t i = 0; i < kBlockBytes; ++i) out[i] = enc[1 + (i % 8)];
    return out;
  }

  const std::optional<Shape> shape = shape_of(tag);
  if (!shape) throw DecodeError("invalid BDI tag");
  const Shape s = *shape;
  const std::size_t n = kBlockBytes / s.base_bytes;
  const std::size_t mask_bytes = (n + 7) / 8;
  if (enc.size() != 1 + mask_bytes + s.base_bytes + n * s.delta_bytes)
    throw DecodeError("BDI stream length mismatch");
  std::size_t pos = 1;
  const std::uint8_t* mask = enc.data() + pos;
  pos += mask_bytes;
  std::uint64_t base = 0;
  for (unsigned b = 0; b < s.base_bytes; ++b)
    base |= static_cast<std::uint64_t>(enc[pos + b]) << (8 * b);
  pos += s.base_bytes;

  BlockBytes out{};
  // Truncate base to its width so base+delta arithmetic wraps like hardware.
  const std::uint64_t width_mask =
      s.base_bytes == 8 ? ~0ULL : ((1ULL << (8 * s.base_bytes)) - 1);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t ud = 0;
    for (unsigned b = 0; b < s.delta_bytes; ++b)
      ud |= static_cast<std::uint64_t>(enc[pos + b]) << (8 * b);
    pos += s.delta_bytes;
    const std::int64_t d = as_signed(ud, s.delta_bytes);
    const bool zero_base = (mask[i / 8] >> (i % 8)) & 1U;
    const std::uint64_t v =
        ((zero_base ? 0ULL : base) + static_cast<std::uint64_t>(d)) & width_mask;
    std::memcpy(out.data() + i * s.base_bytes, &v, s.base_bytes);
  }
  return out;
}

}  // namespace disco::compress
