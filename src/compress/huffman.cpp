#include "compress/huffman.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace disco::compress {
namespace {

struct Node {
  std::uint64_t freq;
  int left = -1;   // node index, or -1 for leaf
  int right = -1;
  std::uint32_t symbol = 0;
};

}  // namespace

HuffmanCode HuffmanCode::build(const std::vector<std::uint64_t>& freqs) {
  HuffmanCode hc;
  hc.codes_.assign(freqs.size(), HuffCode{});

  std::vector<Node> nodes;
  using QElem = std::pair<std::uint64_t, int>;  // (freq, node index)
  std::priority_queue<QElem, std::vector<QElem>, std::greater<>> pq;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(Node{freqs[s], -1, -1, static_cast<std::uint32_t>(s)});
    pq.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
  }
  if (pq.empty()) return hc;
  if (pq.size() == 1) {  // degenerate alphabet: give the symbol a 1-bit code
    hc.codes_[nodes[0].symbol] = HuffCode{0, 1};
    hc.build_decode_tables();
    return hc;
  }
  while (pq.size() > 1) {
    const auto [fa, a] = pq.top(); pq.pop();
    const auto [fb, b] = pq.top(); pq.pop();
    nodes.push_back(Node{fa + fb, a, b, 0});
    pq.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
  }

  // Depth-first traversal to get code lengths.
  struct Frame { int node; std::uint8_t depth; };
  std::vector<Frame> stack{{pq.top().second, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(f.node)];
    if (n.left < 0) {
      hc.codes_[n.symbol].length = std::max<std::uint8_t>(f.depth, 1);
      continue;
    }
    stack.push_back({n.left, static_cast<std::uint8_t>(f.depth + 1)});
    stack.push_back({n.right, static_cast<std::uint8_t>(f.depth + 1)});
  }

  // Canonical assignment: sort symbols by (length, symbol id).
  std::vector<std::uint32_t> symbols;
  for (std::size_t s = 0; s < freqs.size(); ++s)
    if (hc.codes_[s].length > 0) symbols.push_back(static_cast<std::uint32_t>(s));
  std::sort(symbols.begin(), symbols.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (hc.codes_[a].length != hc.codes_[b].length)
      return hc.codes_[a].length < hc.codes_[b].length;
    return a < b;
  });
  std::uint64_t code = 0;
  std::uint8_t prev_len = 0;
  for (const std::uint32_t s : symbols) {
    const std::uint8_t len = hc.codes_[s].length;
    code <<= (len - prev_len);
    hc.codes_[s].bits = code;
    ++code;
    prev_len = len;
  }
  hc.build_decode_tables();
  return hc;
}

void HuffmanCode::build_decode_tables() {
  max_len_ = 0;
  for (const auto& c : codes_) max_len_ = std::max(max_len_, c.length);
  count_.assign(max_len_ + 1, 0);
  for (const auto& c : codes_)
    if (c.length > 0) ++count_[c.length];

  sorted_symbols_.clear();
  for (std::size_t s = 0; s < codes_.size(); ++s)
    if (codes_[s].length > 0) sorted_symbols_.push_back(static_cast<std::uint32_t>(s));
  std::sort(sorted_symbols_.begin(), sorted_symbols_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (codes_[a].length != codes_[b].length)
                return codes_[a].length < codes_[b].length;
              return a < b;
            });

  first_code_.assign(max_len_ + 1, 0);
  first_index_.assign(max_len_ + 1, 0);
  std::uint64_t code = 0;
  std::uint32_t index = 0;
  for (std::uint8_t len = 1; len <= max_len_; ++len) {
    code <<= 1;
    first_code_[len] = code;
    first_index_[len] = index;
    code += count_[len];
    index += count_[len];
  }
}

void HuffmanCode::encode(BitWriter& bw, std::size_t symbol) const {
  const HuffCode& c = codes_[symbol];
  assert(c.length > 0 && "encoding symbol without a code");
  bw.put(c.bits, c.length);
}

std::size_t HuffmanCode::decode(BitReader& br) const {
  std::uint64_t code = 0;
  for (std::uint8_t len = 1; len <= max_len_; ++len) {
    code = (code << 1) | (br.get_bit() ? 1ULL : 0ULL);
    const std::uint64_t first = first_code_[len];
    if (count_[len] > 0 && code < first + count_[len] && code >= first) {
      return sorted_symbols_[first_index_[len] + (code - first)];
    }
  }
  throw DecodeError("invalid Huffman stream");
}

}  // namespace disco::compress
