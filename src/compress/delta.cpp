#include "compress/delta.h"

#include <cstring>

namespace disco::compress {
namespace {

constexpr std::uint8_t kZeroTag = 0xFE;

std::uint64_t load_flit(const BlockBytes& b, std::size_t i) {
  std::uint64_t v;
  std::memcpy(&v, b.data() + i * kFlitBytes, sizeof(v));
  return v;
}

void store_flit(BlockBytes& b, std::size_t i, std::uint64_t v) {
  std::memcpy(b.data() + i * kFlitBytes, &v, sizeof(v));
}

/// Does the signed difference fit into `ds` bytes?
bool fits(std::int64_t delta, unsigned ds) {
  const std::int64_t lo = -(1LL << (8 * ds - 1));
  const std::int64_t hi = (1LL << (8 * ds - 1)) - 1;
  return delta >= lo && delta <= hi;
}

}  // namespace

Encoded DeltaAlgorithm::compress(const BlockBytes& block) const {
  std::uint64_t flits[kWordsPerBlock];
  bool all_zero = true;
  for (std::size_t i = 0; i < kWordsPerBlock; ++i) {
    flits[i] = load_flit(block, i);
    all_zero = all_zero && flits[i] == 0;
  }
  if (all_zero) return Encoded{{kZeroTag}};

  const std::uint64_t base = flits[0];
  for (unsigned ds_code = 0; ds_code < 3; ++ds_code) {
    const unsigned ds = 1U << ds_code;
    std::uint8_t mask = 0;
    std::int64_t deltas[7];
    bool ok = true;
    for (std::size_t i = 1; i < kWordsPerBlock && ok; ++i) {
      const auto d_base = static_cast<std::int64_t>(flits[i] - base);
      const auto d_zero = static_cast<std::int64_t>(flits[i]);
      if (fits(d_base, ds)) {
        deltas[i - 1] = d_base;
      } else if (fits(d_zero, ds)) {
        deltas[i - 1] = d_zero;
        mask |= static_cast<std::uint8_t>(1U << (i - 1));  // bit set -> zero base
      } else {
        ok = false;
      }
    }
    if (!ok) continue;

    Encoded e;
    e.bytes.reserve(2 + 8 + 7 * ds);
    e.bytes.push_back(static_cast<std::uint8_t>(ds_code));
    e.bytes.push_back(mask);
    for (unsigned b = 0; b < 8; ++b)
      e.bytes.push_back(static_cast<std::uint8_t>(base >> (8 * b)));
    for (const std::int64_t d : deltas) {
      const auto ud = static_cast<std::uint64_t>(d);
      for (unsigned b = 0; b < ds; ++b)
        e.bytes.push_back(static_cast<std::uint8_t>(ud >> (8 * b)));
    }
    return e;
  }
  return encode_raw(block);
}

BlockBytes DeltaAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty delta stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() == kZeroTag) {
    if (enc.size() != 1) throw DecodeError("overlong delta zero encoding");
    return zero_block();
  }
  if (enc[0] > 2) throw DecodeError("invalid delta size code");

  const unsigned ds = 1U << enc[0];
  if (enc.size() != 2 + 8 + 7 * ds)
    throw DecodeError("delta stream length mismatch");
  const std::uint8_t mask = enc[1];
  std::uint64_t base = 0;
  for (unsigned b = 0; b < 8; ++b)
    base |= static_cast<std::uint64_t>(enc[2 + b]) << (8 * b);

  BlockBytes out{};
  store_flit(out, 0, base);
  std::size_t pos = 10;
  for (std::size_t i = 1; i < kWordsPerBlock; ++i) {
    std::uint64_t ud = 0;
    for (unsigned b = 0; b < ds; ++b)
      ud |= static_cast<std::uint64_t>(enc[pos + b]) << (8 * b);
    pos += ds;
    // Sign-extend the ds-byte delta.
    const unsigned shift = 64 - 8 * ds;
    const auto d = static_cast<std::int64_t>(ud << shift) >> shift;
    const std::uint64_t chosen_base = (mask >> (i - 1)) & 1U ? 0ULL : base;
    store_flit(out, i, chosen_base + static_cast<std::uint64_t>(d));
  }
  return out;
}

}  // namespace disco::compress
