#include "compress/fvc.h"

#include <algorithm>
#include <cstring>

#include "compress/bitstream.h"

namespace disco::compress {
namespace {

constexpr std::size_t kWords = kBlockBytes / 4;
constexpr std::uint8_t kFvcTag = 0x00;
constexpr unsigned kIndexBits = 3;  // log2(kTableEntries)

std::uint32_t load_word(const BlockBytes& b, std::size_t i) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + i * 4, 4);
  return v;
}

}  // namespace

FvcAlgorithm::FvcAlgorithm() {
  table_ = {0x00000000u, 0x00000001u, 0xFFFFFFFFu, 0x00000002u,
            0x00000004u, 0x00000008u, 0x00000010u, 0x000000FFu};
  for (std::size_t i = 0; i < table_.size(); ++i)
    index_of_[table_[i]] = static_cast<std::uint32_t>(i);
}

FvcAlgorithm::FvcAlgorithm(std::span<const BlockBytes> sample) : FvcAlgorithm() {
  retrain(sample);
}

void FvcAlgorithm::retrain(std::span<const BlockBytes> sample) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const BlockBytes& b : sample)
    for (std::size_t w = 0; w < kWords; ++w) ++counts[load_word(b, w)];

  std::vector<std::pair<std::uint32_t, std::uint64_t>> sorted(counts.begin(),
                                                              counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  table_.clear();
  index_of_.clear();
  for (std::size_t i = 0; i < kTableEntries && i < sorted.size(); ++i) {
    table_.push_back(sorted[i].first);
    index_of_[sorted[i].first] = static_cast<std::uint32_t>(i);
  }
  while (table_.size() < kTableEntries) table_.push_back(0);
}

Encoded FvcAlgorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::uint32_t w = load_word(block, i);
    const auto it = index_of_.find(w);
    if (it != index_of_.end()) {
      bw.put_bit(true);
      bw.put(it->second, kIndexBits);
    } else {
      bw.put_bit(false);
      bw.put(w, 32);
    }
  }
  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.push_back(kFvcTag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes FvcAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty FVC stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kFvcTag) throw DecodeError("invalid FVC tag");
  BitReader br(enc.subspan(1));
  BlockBytes out{};
  for (std::size_t i = 0; i < kWords; ++i) {
    std::uint32_t w;
    if (br.get_bit()) {
      w = table_[static_cast<std::size_t>(br.get(kIndexBits))];
    } else {
      w = static_cast<std::uint32_t>(br.get(32));
    }
    std::memcpy(out.data() + i * 4, &w, 4);
  }
  br.expect_no_trailing_bytes();
  return out;
}

}  // namespace disco::compress
