// The paper's illustrative delta-based compressor (section 3.2, Fig. 4):
// the first 8-byte flit is base BF0, a zero flit is the second base, and the
// remaining seven flits are encoded as per-flit deltas against whichever
// base yields a fitting difference. Delta width is uniform per block
// (1, 2 or 4 bytes); a bitmask records the chosen base per flit.
//
// Encoded layout:
//   [tag][mask][base: 8B][7 deltas of ds bytes each]
//   tag: 0xFF raw fallback, 0xFE all-zero block, else ds code in bits[1:0]
//        (0 -> 1B, 1 -> 2B, 2 -> 4B deltas)
// Sizes: zero block = 1B; ds=1 -> 17B (the paper's "1BF + 7dF" form);
// ds=2 -> 24B; ds=4 -> 38B; incompressible -> 65B raw.
#pragma once

#include "compress/algorithm.h"

namespace disco::compress {

class DeltaAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "delta"; }
  LatencyModel latency() const override { return {1, 3}; }  // Table 2
  double hardware_overhead() const override { return 0.023; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

}  // namespace disco::compress
