#include "compress/registry.h"

#include <stdexcept>

#include "compress/bdi.h"
#include "compress/cpack.h"
#include "compress/delta.h"
#include "compress/fpc.h"
#include "compress/fvc.h"
#include "compress/sc2.h"
#include "compress/zerobit.h"

namespace disco::compress {

std::unique_ptr<Algorithm> make_algorithm(std::string_view name) {
  if (name == "delta") return std::make_unique<DeltaAlgorithm>();
  if (name == "bdi") return std::make_unique<BdiAlgorithm>();
  if (name == "fpc") return std::make_unique<FpcAlgorithm>();
  if (name == "sfpc") return std::make_unique<SfpcAlgorithm>();
  if (name == "cpack") return std::make_unique<CpackAlgorithm>();
  if (name == "sc2") return std::make_unique<Sc2Algorithm>();
  if (name == "fvc") return std::make_unique<FvcAlgorithm>();
  if (name == "zerobit") return std::make_unique<ZeroBitAlgorithm>();
  std::string msg = "unknown compression algorithm: " + std::string(name) +
                    " (available:";
  for (const std::string& n : algorithm_names()) msg += " " + n;
  msg += ")";
  throw std::invalid_argument(msg);
}

std::vector<std::string> algorithm_names() {
  return {"fpc", "sfpc", "bdi", "sc2", "cpack", "delta", "fvc", "zerobit"};
}

}  // namespace disco::compress
