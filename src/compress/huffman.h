// Canonical Huffman coding over a bounded symbol alphabet, used by the SC²
// statistical compressor. Codes are derived from symbol frequencies with the
// package-merge-free classic algorithm; canonical assignment makes encoder
// and decoder tables reproducible from code lengths alone.
#pragma once

#include <cstdint>
#include <vector>

#include "compress/bitstream.h"

namespace disco::compress {

struct HuffCode {
  std::uint64_t bits = 0;
  std::uint8_t length = 0;
};

class HuffmanCode {
 public:
  /// Build from per-symbol frequencies (size = alphabet size). Symbols with
  /// zero frequency get no code; encoding them is a caller bug.
  static HuffmanCode build(const std::vector<std::uint64_t>& freqs);

  std::size_t alphabet_size() const { return codes_.size(); }
  const HuffCode& code(std::size_t symbol) const { return codes_[symbol]; }
  bool has_code(std::size_t symbol) const { return codes_[symbol].length > 0; }

  void encode(BitWriter& bw, std::size_t symbol) const;
  /// Decode one symbol by walking the canonical table.
  std::size_t decode(BitReader& br) const;

 private:
  std::vector<HuffCode> codes_;
  // Canonical decode tables indexed by code length (1..max).
  std::vector<std::uint64_t> first_code_;    ///< first canonical code of each length
  std::vector<std::uint32_t> first_index_;   ///< index into sorted_symbols_
  std::vector<std::uint32_t> count_;         ///< number of codes of each length
  std::vector<std::uint32_t> sorted_symbols_;
  std::uint8_t max_len_ = 0;

  void build_decode_tables();
};

}  // namespace disco::compress
