// Zero-bit packing (Das et al., HPCA 2008 — the paper's reference [10]):
// network messages are compressed by eliding zero bytes. Each 32-bit word
// carries a 4-bit zero-byte mask followed by its non-zero bytes.
//
// Encoding: [tag][16 x (4-bit mask + nonzero bytes)]
#pragma once

#include "compress/algorithm.h"

namespace disco::compress {

class ZeroBitAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "zerobit"; }
  LatencyModel latency() const override { return {1, 2}; }
  double hardware_overhead() const override { return 0.03; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;
};

}  // namespace disco::compress
