// Frequent Value Compression (Jin/Zhou et al., the paper's NoC-compression
// references [7][8]): a small table of globally frequent 32-bit values;
// each word is either a short table index or an escaped literal. The table
// is trainable from sampled traffic like the hardware's profiling phase.
//
// Encoding: [tag][per-word: 1 bit hit/miss + (k-bit index | 32-bit literal)]
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "compress/algorithm.h"

namespace disco::compress {

class FvcAlgorithm final : public Algorithm {
 public:
  /// Default table: the values that dominate real traffic (zero, small
  /// constants, all-ones). retrain() replaces it from a sample.
  FvcAlgorithm();
  explicit FvcAlgorithm(std::span<const BlockBytes> sample);

  std::string_view name() const override { return "fvc"; }
  LatencyModel latency() const override { return {1, 2}; }
  double hardware_overhead() const override { return 0.04; }

  Encoded compress(const BlockBytes& block) const override;
  BlockBytes decompress(std::span<const std::uint8_t> enc) const override;

  void retrain(std::span<const BlockBytes> sample);

  static constexpr std::size_t kTableEntries = 8;  // 3-bit index

 private:
  std::vector<std::uint32_t> table_;
  std::unordered_map<std::uint32_t, std::uint32_t> index_of_;
};

}  // namespace disco::compress
