// Name-based factory for compression algorithms, so experiments select the
// algorithm by string (as the bench harness and SystemConfig do).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compress/algorithm.h"

namespace disco::compress {

/// Create an algorithm by name: "delta", "bdi", "fpc", "sfpc", "cpack",
/// "sc2". Throws std::invalid_argument for unknown names.
std::unique_ptr<Algorithm> make_algorithm(std::string_view name);

/// All registered algorithm names, in Table-1 order.
std::vector<std::string> algorithm_names();

}  // namespace disco::compress
