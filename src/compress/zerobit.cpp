#include "compress/zerobit.h"

#include "compress/bitstream.h"

namespace disco::compress {
namespace {

constexpr std::size_t kWords = kBlockBytes / 4;
constexpr std::uint8_t kZeroBitTag = 0x00;

}  // namespace

Encoded ZeroBitAlgorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  for (std::size_t w = 0; w < kWords; ++w) {
    unsigned mask = 0;
    for (unsigned byte = 0; byte < 4; ++byte) {
      if (block[w * 4 + byte] != 0) mask |= (1u << byte);
    }
    bw.put(mask, 4);
    for (unsigned byte = 0; byte < 4; ++byte) {
      if (mask & (1u << byte)) bw.put(block[w * 4 + byte], 8);
    }
  }
  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.push_back(kZeroBitTag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes ZeroBitAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty zero-bit stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kZeroBitTag) throw DecodeError("invalid zero-bit tag");
  BitReader br(enc.subspan(1));
  BlockBytes out{};
  for (std::size_t w = 0; w < kWords; ++w) {
    const auto mask = static_cast<unsigned>(br.get(4));
    for (unsigned byte = 0; byte < 4; ++byte) {
      if (mask & (1u << byte))
        out[w * 4 + byte] = static_cast<std::uint8_t>(br.get(8));
    }
  }
  br.expect_no_trailing_bytes();
  return out;
}

}  // namespace disco::compress
