#include "compress/fpc.h"

#include <cstring>

#include "compress/bitstream.h"

namespace disco::compress {
namespace {

constexpr std::size_t kWords = kBlockBytes / 4;  // 16 x 32-bit words
constexpr std::uint8_t kFpcTag = 0x00;

std::uint32_t load_word(const BlockBytes& b, std::size_t i) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + i * 4, 4);
  return v;
}

bool sign_fits(std::uint32_t w, unsigned bits) {
  const auto s = static_cast<std::int32_t>(w);
  return s >= -(1 << (bits - 1)) && s < (1 << (bits - 1));
}

// FPC 3-bit prefixes.
enum FpcPrefix : unsigned {
  kZeroRun = 0,       // + 3-bit run length (1..8 encoded as 0..7)
  kSignExt4 = 1,      // + 4 bits
  kSignExt8 = 2,      // + 8 bits
  kSignExt16 = 3,     // + 16 bits
  kZeroPadded = 4,    // + 16 bits: word == halfword << 16
  kTwoHalfBytes = 5,  // + 16 bits: each halfword is a sign-extended byte
  kRepBytes = 6,      // + 8 bits: word is 4 identical bytes
  kRawWord = 7,       // + 32 bits
};

bool half_is_sign_ext_byte(std::uint16_t h) {
  const auto s = static_cast<std::int16_t>(h);
  return s >= -128 && s < 128;
}

}  // namespace

Encoded FpcAlgorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  std::size_t i = 0;
  while (i < kWords) {
    const std::uint32_t w = load_word(block, i);
    if (w == 0) {
      std::size_t run = 1;
      while (i + run < kWords && run < 8 && load_word(block, i + run) == 0) ++run;
      bw.put(kZeroRun, 3);
      bw.put(run - 1, 3);
      i += run;
      continue;
    }
    if (sign_fits(w, 4)) {
      bw.put(kSignExt4, 3);
      bw.put(w & 0xF, 4);
    } else if (sign_fits(w, 8)) {
      bw.put(kSignExt8, 3);
      bw.put(w & 0xFF, 8);
    } else if (sign_fits(w, 16)) {
      bw.put(kSignExt16, 3);
      bw.put(w & 0xFFFF, 16);
    } else if ((w & 0xFFFF) == 0) {
      bw.put(kZeroPadded, 3);
      bw.put(w >> 16, 16);
    } else if (half_is_sign_ext_byte(static_cast<std::uint16_t>(w >> 16)) &&
               half_is_sign_ext_byte(static_cast<std::uint16_t>(w))) {
      bw.put(kTwoHalfBytes, 3);
      bw.put((w >> 16) & 0xFF, 8);
      bw.put(w & 0xFF, 8);
    } else {
      const std::uint8_t b0 = static_cast<std::uint8_t>(w);
      if (((w >> 8) & 0xFF) == b0 && ((w >> 16) & 0xFF) == b0 &&
          ((w >> 24) & 0xFF) == b0) {
        bw.put(kRepBytes, 3);
        bw.put(b0, 8);
      } else {
        bw.put(kRawWord, 3);
        bw.put(w, 32);
      }
    }
    ++i;
  }

  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.reserve(1 + bits.size());
  e.bytes.push_back(kFpcTag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes FpcAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty FPC stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kFpcTag) throw DecodeError("invalid FPC tag");
  BitReader br(enc.subspan(1));
  BlockBytes out{};
  std::size_t i = 0;
  while (i < kWords) {
    const auto prefix = static_cast<unsigned>(br.get(3));
    std::uint32_t w = 0;
    switch (prefix) {
      case kZeroRun: {
        const auto run = static_cast<std::size_t>(br.get(3)) + 1;
        if (i + run > kWords) throw DecodeError("FPC zero run overflows block");
        i += run;  // words already zero-initialized
        continue;
      }
      case kSignExt4: {
        const auto v = static_cast<std::uint32_t>(br.get(4));
        w = static_cast<std::uint32_t>(static_cast<std::int32_t>(v << 28) >> 28);
        break;
      }
      case kSignExt8: {
        const auto v = static_cast<std::uint32_t>(br.get(8));
        w = static_cast<std::uint32_t>(static_cast<std::int32_t>(v << 24) >> 24);
        break;
      }
      case kSignExt16: {
        const auto v = static_cast<std::uint32_t>(br.get(16));
        w = static_cast<std::uint32_t>(static_cast<std::int32_t>(v << 16) >> 16);
        break;
      }
      case kZeroPadded:
        w = static_cast<std::uint32_t>(br.get(16)) << 16;
        break;
      case kTwoHalfBytes: {
        const auto hi = static_cast<std::uint32_t>(br.get(8));
        const auto lo = static_cast<std::uint32_t>(br.get(8));
        const auto ext = [](std::uint32_t b) {
          return static_cast<std::uint16_t>(static_cast<std::int16_t>(
                     static_cast<std::int8_t>(b)));
        };
        w = (static_cast<std::uint32_t>(ext(hi)) << 16) | ext(lo);
        break;
      }
      case kRepBytes: {
        const auto b = static_cast<std::uint32_t>(br.get(8));
        w = b | (b << 8) | (b << 16) | (b << 24);
        break;
      }
      default:
        w = static_cast<std::uint32_t>(br.get(32));
        break;
    }
    std::memcpy(out.data() + i * 4, &w, 4);
    ++i;
  }
  br.expect_no_trailing_bytes();
  return out;
}

// ---------------------------------------------------------------------------
// SFPC: simplified FPC — the same 3-bit prefix format (so the decoder
// pipeline is one stage shorter, Table 1: 4 vs 5 cycles) but only a subset
// of the patterns: single zero word, sign-extended byte/halfword, raw.
// No zero-run coding and no padded/repeated patterns -> strictly lower
// compression ratio than FPC (Table 1: 1.33 vs 1.5).
namespace {
enum SfpcPrefix : unsigned { kSZero = 0, kSByte = 1, kSHalf = 2, kSRaw = 7 };
}

Encoded SfpcAlgorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::uint32_t w = load_word(block, i);
    if (w == 0) {
      bw.put(kSZero, 3);
    } else if (sign_fits(w, 8)) {
      bw.put(kSByte, 3);
      bw.put(w & 0xFF, 8);
    } else if (sign_fits(w, 16)) {
      bw.put(kSHalf, 3);
      bw.put(w & 0xFFFF, 16);
    } else {
      bw.put(kSRaw, 3);
      bw.put(w, 32);
    }
  }
  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.push_back(kFpcTag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes SfpcAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty SFPC stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kFpcTag) throw DecodeError("invalid SFPC tag");
  BitReader br(enc.subspan(1));
  BlockBytes out{};
  for (std::size_t i = 0; i < kWords; ++i) {
    std::uint32_t w = 0;
    switch (static_cast<unsigned>(br.get(3))) {
      case kSZero:
        break;
      case kSByte: {
        const auto v = static_cast<std::uint32_t>(br.get(8));
        w = static_cast<std::uint32_t>(static_cast<std::int32_t>(v << 24) >> 24);
        break;
      }
      case kSHalf: {
        const auto v = static_cast<std::uint32_t>(br.get(16));
        w = static_cast<std::uint32_t>(static_cast<std::int32_t>(v << 16) >> 16);
        break;
      }
      default:
        w = static_cast<std::uint32_t>(br.get(32));
        break;
    }
    std::memcpy(out.data() + i * 4, &w, 4);
  }
  br.expect_no_trailing_bytes();
  return out;
}

}  // namespace disco::compress
