#include "compress/cpack.h"

#include <cstring>

#include "compress/bitstream.h"

namespace disco::compress {
namespace {

constexpr std::size_t kWords = kBlockBytes / 4;
constexpr std::size_t kDictEntries = 16;
constexpr std::uint8_t kCpackTag = 0x00;

/// FIFO dictionary replicated by compressor and decompressor.
class Dict {
 public:
  void push(std::uint32_t w) {
    entries_[head_] = w;
    head_ = (head_ + 1) % kDictEntries;
    if (size_ < kDictEntries) ++size_;
  }
  std::size_t size() const { return size_; }
  std::uint32_t at(std::size_t physical_index) const { return entries_[physical_index]; }

  /// Best match: 2 = full word, 1 = high 3 bytes, 0 = high halfword only,
  /// -1 = none. Lowest physical index wins ties for determinism.
  int best_match(std::uint32_t w, std::size_t& index) const {
    int best = -1;
    for (std::size_t i = 0; i < size_; ++i) {
      const std::uint32_t e = entries_[i];
      int quality = -1;
      if (e == w) quality = 2;
      else if ((e & 0xFFFFFF00U) == (w & 0xFFFFFF00U)) quality = 1;
      else if ((e & 0xFFFF0000U) == (w & 0xFFFF0000U)) quality = 0;
      if (quality > best) {
        best = quality;
        index = i;
      }
    }
    return best;
  }

 private:
  std::uint32_t entries_[kDictEntries]{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

std::uint32_t load_word(const BlockBytes& b, std::size_t i) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + i * 4, 4);
  return v;
}

}  // namespace

Encoded CpackAlgorithm::compress(const BlockBytes& block) const {
  BitWriter bw;
  Dict dict;
  for (std::size_t i = 0; i < kWords; ++i) {
    const std::uint32_t w = load_word(block, i);
    if (w == 0) {
      bw.put(0b00, 2);  // zzzz
      continue;
    }
    if ((w & 0xFFFFFF00U) == 0) {
      bw.put(0b1101, 4);  // zzzx
      bw.put(w & 0xFF, 8);
      continue;
    }
    std::size_t idx = 0;
    const int match = dict.best_match(w, idx);
    if (match == 2) {
      bw.put(0b10, 2);  // mmmm
      bw.put(idx, 4);
    } else if (match == 1) {
      bw.put(0b1110, 4);  // mmmx
      bw.put(idx, 4);
      bw.put(w & 0xFF, 8);
    } else if (match == 0) {
      bw.put(0b1100, 4);  // mmxx
      bw.put(idx, 4);
      bw.put(w & 0xFFFF, 16);
      dict.push(w);
    } else {
      bw.put(0b01, 2);  // xxxx
      bw.put(w, 32);
      dict.push(w);
    }
  }
  std::vector<std::uint8_t> bits = bw.take();
  if (1 + bits.size() >= 1 + kBlockBytes) return encode_raw(block);
  Encoded e;
  e.bytes.push_back(kCpackTag);
  e.bytes.insert(e.bytes.end(), bits.begin(), bits.end());
  return e;
}

BlockBytes CpackAlgorithm::decompress(std::span<const std::uint8_t> enc) const {
  if (enc.empty()) throw DecodeError("empty C-Pack stream");
  if (is_raw(enc)) return decode_raw(enc);
  if (enc.front() != kCpackTag) throw DecodeError("invalid C-Pack tag");
  BitReader br(enc.subspan(1));
  Dict dict;
  const auto dict_word = [&dict](std::size_t idx) {
    if (idx >= dict.size()) throw DecodeError("invalid C-Pack dictionary index");
    return dict.at(idx);
  };
  BlockBytes out{};
  for (std::size_t i = 0; i < kWords; ++i) {
    std::uint32_t w = 0;
    const bool b0 = br.get_bit();
    const bool b1 = br.get_bit();
    if (!b0 && !b1) {  // 00 zzzz
      w = 0;
    } else if (!b0 && b1) {  // 01 xxxx
      w = static_cast<std::uint32_t>(br.get(32));
      dict.push(w);
    } else if (b0 && !b1) {  // 10 mmmm
      const auto idx = static_cast<std::size_t>(br.get(4));
      w = dict_word(idx);
    } else {  // 11xx four-bit codes
      const bool b2 = br.get_bit();
      const bool b3 = br.get_bit();
      if (!b2 && !b3) {  // 1100 mmxx
        const auto idx = static_cast<std::size_t>(br.get(4));
        const auto low = static_cast<std::uint32_t>(br.get(16));
        w = (dict_word(idx) & 0xFFFF0000U) | low;
        dict.push(w);
      } else if (!b2 && b3) {  // 1101 zzzx
        w = static_cast<std::uint32_t>(br.get(8));
      } else {  // 1110 mmmx
        const auto idx = static_cast<std::size_t>(br.get(4));
        const auto low = static_cast<std::uint32_t>(br.get(8));
        w = (dict_word(idx) & 0xFFFFFF00U) | low;
      }
    }
    std::memcpy(out.data() + i * 4, &w, 4);
  }
  br.expect_no_trailing_bytes();
  return out;
}

}  // namespace disco::compress
