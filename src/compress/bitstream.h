// Minimal MSB-first bit stream reader/writer used by the bit-granular
// algorithms (FPC, SFPC, C-Pack, SC²). Encoded sizes are rounded up to whole
// bytes, matching how a hardware packer would pad the last flit fragment.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "compress/decode_error.h"

namespace disco::compress {

class BitWriter {
 public:
  /// Append the low `nbits` of `value`, MSB first.
  void put(std::uint64_t value, unsigned nbits) {
    assert(nbits <= 64);
    for (unsigned i = nbits; i-- > 0;) put_bit((value >> i) & 1ULL);
  }

  void put_bit(bool bit) {
    if (bit_pos_ == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(1U << (7 - bit_pos_));
    bit_pos_ = (bit_pos_ + 1) & 7;
  }

  std::size_t bit_count() const {
    return bytes_.empty() ? 0 : (bytes_.size() - 1) * 8 + (bit_pos_ == 0 ? 8 : bit_pos_);
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  unsigned bit_pos_ = 0;  ///< next free bit within the last byte (0 == byte full/none)
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool get_bit() {
    if (pos_ / 8 >= data_.size()) throw DecodeError("bit stream truncated");
    const std::uint8_t byte = data_[pos_ / 8];
    const bool bit = (byte >> (7 - (pos_ & 7))) & 1U;
    ++pos_;
    return bit;
  }

  std::uint64_t get(unsigned nbits) {
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) v = (v << 1) | (get_bit() ? 1ULL : 0ULL);
    return v;
  }

  std::size_t bits_consumed() const { return pos_; }
  bool exhausted() const { return pos_ >= data_.size() * 8; }

  /// Bit-packed streams round up to whole bytes, so a well-formed stream
  /// leaves at most 7 padding bits. Called by decoders after the final
  /// symbol to reject overlong streams.
  void expect_no_trailing_bytes() const {
    if ((pos_ + 7) / 8 != data_.size()) throw DecodeError("overlong bit stream");
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace disco::compress
