// Quickstart: simulate a 4x4 DISCO CMP on one PARSEC-like workload and
// print the headline metrics. This is the smallest end-to-end use of the
// public API:
//
//   SystemConfig -> CmpSystem -> run -> stats / energy
//
// Build & run:  ./build/examples/quickstart [workload] [scheme] [--verbose]
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "workload/profile.h"

using namespace disco;

namespace {

Scheme parse_scheme(const std::string& s) {
  if (s == "baseline") return Scheme::Baseline;
  if (s == "cc") return Scheme::CC;
  if (s == "cnc") return Scheme::CNC;
  if (s == "ideal") return Scheme::Ideal;
  return Scheme::DISCO;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "canneal";
  const std::string scheme = argc > 2 ? argv[2] : "disco";

  SystemConfig cfg;
  cfg.scheme = parse_scheme(scheme);
  cfg.algorithm = "delta";

  const auto& profile = workload::profile_by_name(workload);
  std::printf("DISCO quickstart: %s\n", cfg.summary().c_str());
  std::printf("workload: %s (footprint %llu blocks/core, write ratio %.2f)\n\n",
              profile.name.c_str(),
              static_cast<unsigned long long>(profile.footprint_blocks),
              profile.write_ratio);

  const bool verbose = argc > 3 && std::string(argv[3]) == "--verbose";
  sim::RunOptions opt;
  opt.measure_cycles = 80000;
  if (verbose) {
    // Drive the system directly so the full report has access to it.
    cmp::CmpSystem sys(cfg, profile);
    sys.functional_warmup(opt.warmup_ops_per_core);
    sys.run(opt.warmup_cycles);
    sys.reset_stats();
    sys.run(opt.measure_cycles);
    sim::print_system_report(std::cout, sys, opt.measure_cycles);
    return 0;
  }
  const sim::CellResult r = sim::run_cell(cfg, profile, opt);

  TablePrinter t({"metric", "value"});
  t.add_row({"core memory ops", std::to_string(r.core_ops)});
  t.add_row({"L1 misses", std::to_string(r.l1_misses)});
  t.add_row({"avg NUCA access latency (cycles)", TablePrinter::fmt(r.avg_nuca_latency, 1)});
  t.add_row({"avg miss latency incl. DRAM-served", TablePrinter::fmt(r.avg_miss_latency, 1)});
  t.add_row({"L2 miss rate", TablePrinter::pct(r.l2_miss_rate)});
  t.add_row({"avg NoC packet latency", TablePrinter::fmt(r.avg_packet_latency, 1)});
  t.add_row({"avg stored compression ratio", TablePrinter::fmt(r.avg_stored_ratio, 2)});
  t.add_row({"link flits", std::to_string(r.link_flits)});
  t.add_row({"in-network compressions", std::to_string(r.inflight_compressions)});
  t.add_row({"in-network decompressions", std::to_string(r.inflight_decompressions)});
  t.add_row({"aborted (non-blocking) ops", std::to_string(r.compression_aborts)});
  t.add_row({"hidden decompressions at eject", std::to_string(r.hidden_decomp_ops)});
  t.add_row({"subsystem energy (uJ)", TablePrinter::fmt(r.energy.subsystem_nj() / 1000.0, 1)});
  t.print(std::cout);
  return 0;
}
