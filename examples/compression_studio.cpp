// Compression studio: feed hand-crafted or synthesized cache blocks through
// every registered algorithm and inspect the encodings — sizes, flit
// counts, and round-trip checks. Demonstrates the compress:: public API in
// isolation from the simulator.
//
// Run: ./build/examples/compression_studio [workload]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/table.h"
#include "compress/registry.h"
#include "noc/packet.h"
#include "workload/profile.h"
#include "workload/value_synth.h"

using namespace disco;

namespace {

BlockBytes demo_block(const char* kind) {
  BlockBytes b{};
  if (std::strcmp(kind, "zeros") == 0) return b;
  if (std::strcmp(kind, "counters") == 0) {
    for (std::size_t f = 0; f < 8; ++f) {
      const std::uint64_t v = 1000 + f * 3;
      std::memcpy(b.data() + f * 8, &v, 8);
    }
  } else if (std::strcmp(kind, "pointers") == 0) {
    for (std::size_t f = 0; f < 8; ++f) {
      const std::uint64_t v = 0x00007FFF'D0000000ULL + f * 0x40;
      std::memcpy(b.data() + f * 8, &v, 8);
    }
  } else {  // noise
    std::uint64_t x = 0x1234;
    for (std::size_t f = 0; f < 8; ++f) {
      x = splitmix64(x);
      std::memcpy(b.data() + f * 8, &x, 8);
    }
  }
  return b;
}

void show_block(const char* label, const BlockBytes& block) {
  std::printf("block '%s':\n", label);
  TablePrinter t({"algorithm", "encoded bytes", "ratio", "NoC flits",
                  "comp/decomp latency", "round-trip"});
  for (const auto& name : compress::algorithm_names()) {
    auto algo = compress::make_algorithm(name);
    const auto enc = algo->compress(block);
    const BlockBytes back =
        algo->decompress(std::span<const std::uint8_t>(enc.bytes));

    noc::Packet pkt;
    pkt.has_data = true;
    pkt.data = block;
    if (enc.size() < kBlockBytes) pkt.encoded = enc;
    const auto lat = algo->latency();
    t.add_row({name, std::to_string(enc.size()),
               TablePrinter::fmt(static_cast<double>(kBlockBytes) /
                                 static_cast<double>(enc.size()), 2),
               std::to_string(pkt.flit_count()) + " (raw: 8)",
               std::to_string(lat.comp_cycles) + "/" +
                   std::to_string(lat.decomp_cycles),
               back == block ? "exact" : "CORRUPT"});
  }
  t.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("DISCO compression studio\n\n");
  for (const char* kind : {"zeros", "counters", "pointers", "noise"})
    show_block(kind, demo_block(kind));

  // Per-workload average ratios (what the LLC and NoC actually see).
  const std::string wl = argc > 1 ? argv[1] : "canneal";
  const auto& profile = workload::profile_by_name(wl);
  workload::ValueSynthesizer synth(profile.values, 1);
  std::printf("workload '%s' value population (1000 blocks):\n", wl.c_str());
  TablePrinter t({"algorithm", "avg ratio", "avg NoC flits (raw: 8)"});
  for (const auto& name : compress::algorithm_names()) {
    auto algo = compress::make_algorithm(name);
    double bytes = 0;
    double flits = 0;
    for (Addr a = 0; a < 1000 * kBlockBytes; a += kBlockBytes) {
      const BlockBytes b = synth.block_for(a);
      const auto enc = algo->compress(b);
      bytes += static_cast<double>(enc.size());
      noc::Packet pkt;
      pkt.has_data = true;
      pkt.data = b;
      if (enc.size() < kBlockBytes) pkt.encoded = enc;
      flits += pkt.flit_count();
    }
    t.add_row({name, TablePrinter::fmt(64.0 * 1000 / bytes, 2),
               TablePrinter::fmt(flits / 1000, 2)});
  }
  t.print(std::cout);
  return 0;
}
