// NoC traffic explorer: drives the standalone network (no caches) with
// synthetic patterns — uniform random, transpose, hotspot — and sweeps the
// injection rate, comparing a plain mesh against one with DISCO routers.
// Shows the latency-vs-load curve and where in-network compression starts
// to pay.
//
// Run: ./build/examples/noc_traffic_explorer [pattern]   (uniform|transpose|hotspot)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>

#include "common/rng.h"
#include "common/table.h"
#include "compress/registry.h"
#include "disco/unit.h"
#include "noc/network.h"
#include "workload/synthetic.h"

using namespace disco;

namespace {

class CountingSink final : public noc::PacketSink {
 public:
  void deliver(noc::PacketPtr pkt, Cycle now) override {
    ++delivered;
    total_latency += static_cast<double>(now - pkt->injected);
  }
  std::uint64_t delivered = 0;
  double total_latency = 0;
};

struct Result {
  double avg_latency;
  std::uint64_t flits;
  std::uint64_t compressions;
};

Result run(const std::string& pattern, double rate, bool with_disco) {
  NocConfig cfg;
  noc::NocStats stats;
  auto algo = compress::make_algorithm("delta");
  DiscoConfig dcfg;  // default thresholds

  noc::NiPolicy policy;
  policy.algo = algo.get();
  policy.decompress_for_raw_consumers = true;
  policy.decomp_cycles = algo->latency().decomp_cycles;

  noc::Network::ExtensionFactory factory;
  if (with_disco) {
    factory = [&](noc::Router& r) {
      return std::make_unique<core::DiscoUnit>(r, dcfg, *algo, algo->latency(),
                                               stats);
    };
  }
  noc::Network net(cfg, policy, stats, factory);
  std::vector<CountingSink> sinks(cfg.num_nodes());
  for (NodeId node = 0; node < cfg.num_nodes(); ++node)
    net.register_sink(node, UnitKind::Core, &sinks[node]);

  Rng rng(1234);
  workload::TrafficChooser chooser(workload::traffic_pattern_from_name(pattern),
                                   4, 99);
  std::uint64_t id = 1;
  Cycle clock = 0;
  const Cycle horizon = 30000;
  for (; clock < horizon; ++clock) {
    for (NodeId src = 0; src < cfg.num_nodes(); ++src) {
      if (!rng.chance(rate)) continue;
      const NodeId dst = chooser.pick(src);
      net.inject(src,
                 workload::make_synthetic_packet(src, dst, id++, clock,
                                                 /*compressible=*/0.85, rng),
                 clock);
    }
    net.tick(clock);
  }
  // Drain.
  for (Cycle i = 0; i < 50000 && !net.quiescent(); ++i) net.tick(++clock);

  double total = 0;
  std::uint64_t delivered = 0;
  for (const auto& s : sinks) {
    total += s.total_latency;
    delivered += s.delivered;
  }
  return {delivered ? total / static_cast<double>(delivered) : 0,
          stats.link_flits, stats.inflight_compressions};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string pattern = argc > 1 ? argv[1] : "uniform";
  std::printf("NoC traffic explorer: 4x4 mesh, pattern = %s\n", pattern.c_str());
  std::printf("(data packets, delta-compressible payloads; rate = packets per"
              " node per cycle)\n\n");

  TablePrinter t({"inject rate", "plain: avg lat", "DISCO: avg lat",
                  "plain flits", "DISCO flits", "in-net compressions"});
  for (const double rate : {0.005, 0.01, 0.02, 0.03, 0.05}) {
    const Result plain = run(pattern, rate, false);
    const Result dsc = run(pattern, rate, true);
    t.add_row({TablePrinter::fmt(rate, 3), TablePrinter::fmt(plain.avg_latency, 1),
               TablePrinter::fmt(dsc.avg_latency, 1),
               std::to_string(plain.flits), std::to_string(dsc.flits),
               std::to_string(dsc.compressions)});
    std::printf("  rate %.3f done\n", rate);
  }
  std::printf("\n");
  t.print(std::cout);
  std::printf("\nAt low load packets rarely idle, so DISCO compresses little;"
              " as contention rises, idle time funds compression and the "
              "flit count (and queueing) drops.\n");
  return 0;
}
