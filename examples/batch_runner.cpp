// Batch runner: sweep (workloads x schemes) cells on the parallel sweep
// engine and emit machine-readable JSON for external plotting/regression
// tooling — the programmatic counterpart of the figure benches.
//
// Run: ./build/examples/batch_runner [--threads N] [--shard i/k] [--seed S]
//        [--isolate] [--checkpoint-dir D] [--resume M]
//        [algorithm] [out.json] [workload...]
//
// JSON output is aggregated in cell order regardless of thread count, so a
// run with --threads 8 is byte-identical to --threads 1 — and a run resumed
// from a checkpoint manifest is byte-identical to an uninterrupted one.
// SIGINT/SIGTERM flush partial JSON + manifest and exit 130.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/interrupt.h"
#include "sim/experiment.h"
#include "sim/json_export.h"
#include "sim/sweep.h"
#include "workload/profile.h"

using namespace disco;

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  sim::SweepOptions sweep_opt = sim::parse_sweep_flags(argc, argv, positional);
  sweep_opt.progress_label = "batch";
  sim::install_interrupt_handlers();

  SystemConfig cfg;
  cfg.algorithm = !positional.empty() ? positional[0] : "delta";
  try {
    (void)compress::make_algorithm(cfg.algorithm);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  cfg.fault = sweep_opt.fault;
  try {
    // Fail fast on degenerate meshes / out-of-mesh hard-fault targets before
    // spawning worker threads; every cell shares this base config.
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  const std::string out_path = positional.size() > 1 ? positional[1] : "results.json";

  std::vector<std::string> names(
      positional.begin() + std::min<std::size_t>(2, positional.size()),
      positional.end());
  if (names.empty()) names = {"canneal", "dedup", "streamcluster", "swaptions"};

  sim::RunOptions opt;
  opt.measure_cycles = 60000;

  const std::vector<Scheme> schemes = {Scheme::Baseline, Scheme::Ideal,
                                       Scheme::CC, Scheme::CNC, Scheme::DISCO};
  std::vector<sim::SweepCell> cells;
  for (std::size_t w = 0; w < names.size(); ++w) {
    const workload::BenchmarkProfile* profile = nullptr;
    try {
      profile = &workload::profile_by_name(names[w]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    for (const Scheme s : schemes) {
      sim::SweepCell c{cfg, *profile, opt};
      c.cfg.scheme = s;
      c.group = w;  // all schemes of a workload share a seed and a shard
      cells.push_back(std::move(c));
    }
  }

  sim::SweepResult sweep;
  try {
    sweep = sim::run_sweep(cells, sweep_opt);
  } catch (const std::runtime_error& e) {
    // A resume manifest that does not match this sweep's shape is a usage
    // error, not a crash.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  for (const auto& cell : sweep.cells) {
    if (!cell.ok()) continue;
    std::printf("  %-14s %-8s nuca=%.1f cycles\n", cell.result.workload.c_str(),
                to_string(cell.result.scheme), cell.result.avg_nuca_latency);
  }
  for (const auto& cell : sweep.cells) {
    if (cell.ok() || cell.status == sim::CellStatus::Skipped) continue;
    std::printf("  cell %zu %s: %s\n", cell.index, to_string(cell.status),
                cell.error.c_str());
  }

  const auto results = sweep.ok_results();
  std::ofstream out(out_path);
  sim::write_json(out, results);
  std::printf("\nwrote %zu cells to %s (%zu failed, %zu crashed, %zu in other"
              " shards)\n",
              results.size(), out_path.c_str(), sweep.failed, sweep.crashed,
              sweep.skipped);
  if (sweep.interrupted) {
    std::fprintf(stderr, "interrupted: partial results flushed to %s%s\n",
                 out_path.c_str(),
                 sweep_opt.supervisor.checkpoint_dir.empty()
                     ? ""
                     : "; resume from the checkpoint manifest");
    return 130;
  }
  return sweep.all_ok() ? 0 : 1;
}
