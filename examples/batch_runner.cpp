// Batch runner: sweep (workloads x schemes) cells and emit machine-readable
// JSON for external plotting/regression tooling — the programmatic
// counterpart of the figure benches.
//
// Run: ./build/examples/batch_runner [algorithm] [out.json] [workload...]
#include <cstdio>
#include <fstream>
#include <iostream>

#include "sim/experiment.h"
#include "sim/json_export.h"
#include "workload/profile.h"

using namespace disco;

int main(int argc, char** argv) {
  SystemConfig cfg;
  cfg.algorithm = argc > 1 ? argv[1] : "delta";
  const std::string out_path = argc > 2 ? argv[2] : "results.json";

  std::vector<std::string> names;
  for (int i = 3; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) names = {"canneal", "dedup", "streamcluster", "swaptions"};

  sim::RunOptions opt;
  opt.measure_cycles = 60000;

  std::vector<sim::CellResult> results;
  for (const auto& name : names) {
    const auto& profile = workload::profile_by_name(name);
    for (const Scheme s :
         {Scheme::Baseline, Scheme::Ideal, Scheme::CC, Scheme::CNC,
          Scheme::DISCO}) {
      SystemConfig cell = cfg;
      cell.scheme = s;
      results.push_back(sim::run_cell(cell, profile, opt));
      std::printf("  %-14s %-8s nuca=%.1f cycles\n", name.c_str(), to_string(s),
                  results.back().avg_nuca_latency);
    }
  }

  std::ofstream out(out_path);
  sim::write_json(out, results);
  std::printf("\nwrote %zu cells to %s\n", results.size(), out_path.c_str());
  return 0;
}
