// Coherence walkthrough: a narrated tour of the MOESI-style protocol on a
// full 4x4 DISCO CMP — exclusive grants, sharing, invalidation on write,
// home-mediated ownership migration, and a dirty writeback — with the
// protocol/NoC statistics printed after each step.
//
// Run: ./build/examples/coherence_walkthrough
#include <cstdio>

#include "cmp/system.h"
#include "workload/profile.h"

using namespace disco;

namespace {

void snapshot(cmp::CmpSystem& sys, const char* label) {
  const auto& cs = sys.cache_stats();
  const auto& ns = sys.noc_stats();
  std::printf("  [%s]\n", label);
  std::printf("    L1 misses=%llu  L2 hits=%llu misses=%llu  inv=%llu "
              "recalls=%llu  DRAM reads=%llu\n",
              static_cast<unsigned long long>(cs.l1_misses),
              static_cast<unsigned long long>(cs.l2_hits),
              static_cast<unsigned long long>(cs.l2_misses),
              static_cast<unsigned long long>(cs.invalidations_sent),
              static_cast<unsigned long long>(cs.recalls_sent),
              static_cast<unsigned long long>(cs.dram_reads));
  std::printf("    NoC packets=%llu  flits=%llu  in-net decompressions=%llu\n\n",
              static_cast<unsigned long long>(ns.packets_ejected),
              static_cast<unsigned long long>(ns.link_flits),
              static_cast<unsigned long long>(ns.inflight_decompressions));
}

/// Drive one access through a specific core's L1 and wait for completion.
void access(cmp::CmpSystem& sys, NodeId node, Addr addr, bool store,
            std::uint64_t value) {
  static std::uint64_t op = 1ULL << 40;
  auto& l1 = sys.l1(node);
  while (true) {
    const auto outcome = l1.access(op++, addr, store, value, sys.now());
    if (outcome != cache::L1Cache::Outcome::Blocked) break;
    sys.run(1);
  }
  sys.drain(50000);
}

const char* state_name(cache::L1State s) {
  switch (s) {
    case cache::L1State::I: return "I";
    case cache::L1State::S: return "S";
    case cache::L1State::E: return "E";
    case cache::L1State::M: return "M";
  }
  return "?";
}

void show_line(cmp::CmpSystem& sys, NodeId node, Addr addr) {
  const auto* line = sys.l1(node).peek(addr);
  std::printf("    core %u L1 state: %s\n", node,
              line != nullptr ? state_name(line->state) : "-");
}

}  // namespace

int main() {
  SystemConfig cfg;
  cfg.scheme = Scheme::DISCO;
  cmp::CmpSystem sys(cfg, workload::profile_by_name("dedup"));

  // Drive the L1s manually: detach the trace-driven cores by taking over
  // the completion callbacks (each core issues at most its window of misses
  // and then stays quiet, leaving the protocol to our scripted accesses).
  for (NodeId n = 0; n < 16; ++n)
    sys.l1(n).set_completion_handler([](std::uint64_t, Cycle) {});

  const Addr block = 0x1000 * kBlockBytes + 0x40;  // home bank = bank 1

  std::printf("DISCO coherence walkthrough (4x4 mesh, MOESI-style blocking "
              "directory, home bank %u)\n\n", sys.home_of(block));

  std::printf("1) Core 0 loads the block: L2 miss -> DRAM fill -> exclusive "
              "grant (DataE).\n");
  access(sys, 0, block, false, 0);
  show_line(sys, 0, block);
  snapshot(sys, "after first load");

  std::printf("2) Core 3 loads the same block: the home recalls core 0's "
              "copy and grants shared data.\n");
  access(sys, 3, block, false, 0);
  show_line(sys, 0, block);
  show_line(sys, 3, block);
  snapshot(sys, "after second reader");

  std::printf("3) Core 7 stores: the home invalidates the sharer(s) and "
              "grants modified (DataM).\n");
  access(sys, 7, block, true, 0xDEADBEEF);
  show_line(sys, 3, block);
  show_line(sys, 7, block);
  snapshot(sys, "after store");

  std::printf("4) Core 1 loads: ownership migrates home (RecallData carries "
              "the dirty block), then data is granted.\n");
  access(sys, 1, block, false, 0);
  const auto* line = sys.l1(1).peek(block);
  std::printf("    core 1 sees word0 = 0x%llX (expected 0xDEADBEEF)\n",
              line != nullptr
                  ? static_cast<unsigned long long>(
                        [&] { std::uint64_t v; std::memcpy(&v, line->data.data(), 8); return v; }())
                  : 0ULL);
  snapshot(sys, "after migration");

  std::printf("All transfers above rode the NoC as packets; under DISCO the "
              "data-bearing ones travelled compressed whenever the stored "
              "image or an idle router engine allowed it.\n");
  return 0;
}
