// Checkpoint-manifest inspector: summarize (or dump) a sweep supervisor
// manifest.jsonl — per-status counts, attempts, errors — so a failed nightly
// sweep can be triaged without parsing JSONL by hand.
//
// Usage: manifest_inspect <manifest.jsonl> [--cells]
//   --cells   also print one line per journaled cell
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "sim/supervisor.h"

using namespace disco;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <manifest.jsonl> [--cells]\n", argv[0]);
    return 2;
  }
  const bool show_cells = argc > 2 && std::strcmp(argv[2], "--cells") == 0;

  sim::Manifest m;
  try {
    m = sim::load_manifest(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("manifest: %s\n", argv[1]);
  std::printf("sweep: %zu cells, base_seed %llu, shard %u/%u\n", m.cells,
              static_cast<unsigned long long>(m.base_seed), m.shard_index,
              m.shard_count);

  std::map<std::string, std::size_t> by_status;
  unsigned retried = 0;
  for (const auto& e : m.entries) {
    ++by_status[to_string(e.status)];
    if (e.attempts > 1) ++retried;
  }
  std::printf("journaled: %zu of %zu cells (%zu outstanding)\n",
              m.entries.size(), m.cells,
              m.cells >= m.entries.size() ? m.cells - m.entries.size() : 0);
  for (const auto& [status, n] : by_status)
    std::printf("  %-12s %zu\n", status.c_str(), n);
  if (retried > 0) std::printf("  (%u cells needed retries)\n", retried);

  if (show_cells) {
    std::printf("\n%-6s %-6s %-12s %-8s %s\n", "cell", "group", "status",
                "attempts", "error");
    for (const auto& e : m.entries)
      std::printf("%-6zu %-6zu %-12s %-8u %s\n", e.cell, e.group,
                  to_string(e.status), e.attempts, e.error.c_str());
  }

  // Exit 1 when any journaled cell is not Ok, so scripts can gate on it.
  for (const auto& e : m.entries)
    if (e.status != sim::CellStatus::Ok) return 1;
  return 0;
}
