// Checkpoint-manifest inspector: summarize (or dump) a sweep supervisor
// manifest.jsonl — per-status counts, attempts, errors — so a failed nightly
// sweep can be triaged without parsing JSONL by hand.
//
// Cells are also classified into outcome classes: a cell that crashed,
// hung or failed "died"; an Ok cell that absorbed permanent hard faults
// (kills applied, traffic rerouted/synthesized around them) is "degraded
// by design" — expected under a --hard-fault schedule, not a triage item;
// everything else is "clean".
//
// Usage: manifest_inspect <manifest.jsonl> [--cells]
//   --cells   also print one line per journaled cell
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "sim/supervisor.h"

using namespace disco;

namespace {

/// Outcome class of a journaled cell (see header comment).
const char* outcome_of(const sim::ManifestEntry& e) {
  if (e.status != sim::CellStatus::Ok) return "died";
  if (e.has_result && e.result.fault.hard_enabled &&
      e.result.fault.hard_faults_applied > 0) {
    return "degraded";
  }
  return "clean";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <manifest.jsonl> [--cells]\n", argv[0]);
    return 2;
  }
  const bool show_cells = argc > 2 && std::strcmp(argv[2], "--cells") == 0;

  sim::Manifest m;
  try {
    m = sim::load_manifest(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::printf("manifest: %s\n", argv[1]);
  std::printf("sweep: %zu cells, base_seed %llu, shard %u/%u\n", m.cells,
              static_cast<unsigned long long>(m.base_seed), m.shard_index,
              m.shard_count);

  std::map<std::string, std::size_t> by_status;
  std::map<std::string, std::size_t> by_outcome;
  std::uint64_t kills_absorbed = 0;
  std::uint64_t snap_saved_total = 0;
  std::size_t snap_resumed_cells = 0;
  unsigned retried = 0;
  for (const auto& e : m.entries) {
    ++by_status[to_string(e.status)];
    ++by_outcome[outcome_of(e)];
    if (e.has_result) kills_absorbed += e.result.fault.components_killed();
    if (e.snap_saved_cycles > 0) {
      snap_saved_total += e.snap_saved_cycles;
      ++snap_resumed_cells;
    }
    if (e.attempts > 1) ++retried;
  }
  std::printf("journaled: %zu of %zu cells (%zu outstanding)\n",
              m.entries.size(), m.cells,
              m.cells >= m.entries.size() ? m.cells - m.entries.size() : 0);
  for (const auto& [status, n] : by_status)
    std::printf("  %-12s %zu\n", status.c_str(), n);
  if (retried > 0) std::printf("  (%u cells needed retries)\n", retried);

  std::printf("outcome classes:\n");
  for (const auto& [outcome, n] : by_outcome)
    std::printf("  %-12s %zu%s\n", outcome.c_str(), n,
                outcome == "degraded" ? "  (hard faults absorbed by design)"
                                      : "");
  if (kills_absorbed > 0)
    std::printf("  permanent components killed across sweep: %llu\n",
                static_cast<unsigned long long>(kills_absorbed));
  if (snap_resumed_cells > 0)
    std::printf(
        "checkpointing: %zu cells resumed mid-cell, %llu simulated cycles "
        "recovered from snapshots\n",
        snap_resumed_cells,
        static_cast<unsigned long long>(snap_saved_total));

  if (show_cells) {
    std::printf("\n%-6s %-6s %-18s %-9s %-8s %-12s %s\n", "cell", "group",
                "status", "outcome", "attempts", "snap_cycles", "error");
    for (const auto& e : m.entries)
      std::printf("%-6zu %-6zu %-18s %-9s %-8u %-12llu %s\n", e.cell, e.group,
                  to_string(e.status), outcome_of(e), e.attempts,
                  static_cast<unsigned long long>(e.snap_saved_cycles),
                  e.error.c_str());
  }

  // Exit 1 when any journaled cell is not Ok, so scripts can gate on it.
  for (const auto& e : m.entries)
    if (e.status != sim::CellStatus::Ok) return 1;
  return 0;
}
