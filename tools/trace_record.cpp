// Regenerates the checked-in golden traces under tests/golden/. Run after
// any intentional change to router arbitration, credit flow, DISCO
// scheduling or cache fill order, then review the diff like any other code
// change:
//   ./tools/trace_record --all --out ../tests/golden
//   git diff tests/golden/
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/golden.h"

namespace {

int usage(const char* prog, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s [--list] [--out DIR] [--all | SCENARIO...]\n"
               "  --list     print scenario names and descriptions\n"
               "  --out DIR  output directory (default: .)\n"
               "  --all      record every scenario\n",
               prog);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using disco::sim::golden_scenarios;
  std::string out_dir = ".";
  bool all = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return usage(argv[0], 0);
    if (a == "--list") {
      for (const auto& s : golden_scenarios())
        std::printf("%-22s %s\n", s.name, s.description);
      return 0;
    }
    if (a == "--all") {
      all = true;
    } else if (a == "--out") {
      if (++i >= argc) return usage(argv[0], 2);
      out_dir = argv[i];
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a.c_str());
      return usage(argv[0], 2);
    } else {
      names.push_back(a);
    }
  }
  if (all)
    for (const auto& s : golden_scenarios()) names.push_back(s.name);
  if (names.empty()) return usage(argv[0], 2);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  int rc = 0;
  for (const auto& name : names) {
    try {
      const auto run = disco::sim::run_golden_scenario(name);
      const std::string path = out_dir + "/" + name + ".trace";
      std::ofstream os(path, std::ios::binary);
      if (!os) {
        std::fprintf(stderr, "%s: cannot write %s\n", argv[0], path.c_str());
        rc = 1;
        continue;
      }
      os << run.trace;
      std::size_t lines = 0;
      for (char c : run.trace)
        if (c == '\n') ++lines;
      std::printf("%-22s %6zu events -> %s (%s)\n", name.c_str(), lines,
                  path.c_str(),
                  run.invariants.clean() ? "invariants clean"
                                         : "INVARIANT VIOLATIONS");
      if (!run.invariants.clean()) {
        std::fprintf(stderr, "%s: %s: %s\n", argv[0], name.c_str(),
                     run.invariants.first_violation.c_str());
        rc = 1;
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      rc = 2;
    }
  }
  return rc;
}
