// Line-oriented diff for canonical trace files. Blank lines and '#'
// comment lines (the ring-wrap marker trace_record may emit) are ignored,
// so a golden file and a fresh capture compare on events alone. Exit 0 on
// match, 1 on the first difference (printed with context), 2 on usage/IO
// errors.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

bool load_events(const char* path, std::vector<std::string>& out) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    out.push_back(line);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s GOLDEN.trace ACTUAL.trace\n", argv[0]);
    return 2;
  }
  std::vector<std::string> a, b;
  if (!load_events(argv[1], a)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], argv[1]);
    return 2;
  }
  if (!load_events(argv[2], b)) {
    std::fprintf(stderr, "%s: cannot read %s\n", argv[0], argv[2]);
    return 2;
  }
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) continue;
    std::printf("traces differ at event %zu:\n", i + 1);
    std::printf("  golden: %s\n", a[i].c_str());
    std::printf("  actual: %s\n", b[i].c_str());
    return 1;
  }
  if (a.size() != b.size()) {
    std::printf("traces differ in length: golden %zu events, actual %zu\n",
                a.size(), b.size());
    const auto& longer = a.size() > b.size() ? a : b;
    std::printf("  first extra (%s): %s\n",
                a.size() > b.size() ? "golden" : "actual", longer[n].c_str());
    return 1;
  }
  std::printf("traces match (%zu events)\n", a.size());
  return 0;
}
